#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <thread>

#include "core/engine.h"
#include "core/query_parser.h"
#include "data/salary_dataset.h"
#include "rtree/rtree.h"
#include "test_util.h"

namespace colarm {
namespace {

using testing_util::RandomDataset;
using testing_util::ReferenceLocalizedRules;

// ---------------------------------------------------------------------
// R-tree fuzz: random interleaving of inserts, removes and searches with
// invariants checked continuously against a shadow set.

class RTreeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RTreeFuzzTest, InterleavedOperationsKeepInvariants) {
  Rng rng(GetParam());
  const uint32_t dims = 3;
  const uint32_t domain = 20;
  RTree tree(dims);
  std::vector<RTreeEntry> shadow;
  uint32_t next_id = 0;

  auto random_box = [&rng, dims, domain]() {
    Rect box = Rect::MakeEmpty(dims);
    for (uint32_t d = 0; d < dims; ++d) {
      ValueId lo = static_cast<ValueId>(rng.Uniform(domain));
      ValueId hi = static_cast<ValueId>(
          std::min<uint64_t>(domain - 1, lo + rng.Uniform(6)));
      box.SetInterval(d, lo, hi);
    }
    return box;
  };

  for (int op = 0; op < 600; ++op) {
    double dice = rng.NextDouble();
    if (dice < 0.55 || shadow.empty()) {
      RTreeEntry entry{random_box(), next_id++,
                       static_cast<uint32_t>(rng.Uniform(100))};
      tree.Insert(entry);
      shadow.push_back(entry);
    } else if (dice < 0.85) {
      size_t victim = rng.Uniform(shadow.size());
      ASSERT_TRUE(tree.Remove(shadow[victim].box, shadow[victim].id));
      shadow.erase(shadow.begin() + static_cast<long>(victim));
    } else {
      Rect query = random_box();
      std::set<uint32_t> expected;
      for (const RTreeEntry& e : shadow) {
        if (query.Intersects(e.box)) expected.insert(e.id);
      }
      std::set<uint32_t> actual;
      tree.Search(query,
                  [&actual](const RTreeEntry& e, bool) { actual.insert(e.id); });
      ASSERT_EQ(actual, expected) << "at op " << op;
    }
    if (op % 50 == 0) {
      ASSERT_TRUE(tree.CheckInvariants()) << "at op " << op;
      ASSERT_EQ(tree.size(), shadow.size());
    }
  }
  EXPECT_TRUE(tree.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RTreeFuzzTest,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

// ---------------------------------------------------------------------
// Randomized plan equivalence over a wider query space than the focused
// plan_equivalence_test sweep (random vocabularies, random boxes).

class QueryFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryFuzzTest, RandomQueriesAllPlansMatchReference) {
  auto data = std::make_unique<Dataset>(
      RandomDataset(GetParam(), 120, 6, 3));
  auto index = MipIndex::Build(*data, {.primary_support = 0.2});
  ASSERT_TRUE(index.ok());
  Rng rng(GetParam() * 31 + 7);
  RuleGenOptions wide;
  wide.max_itemset_length = 31;

  for (int q = 0; q < 8; ++q) {
    LocalizedQuery query;
    query.minsupp = 0.2 + rng.NextDouble() * 0.7;
    query.minconf = 0.2 + rng.NextDouble() * 0.8;
    for (AttrId a = 0; a < 6; ++a) {
      if (rng.Bernoulli(0.4)) {
        ValueId lo = static_cast<ValueId>(rng.Uniform(3));
        ValueId hi = static_cast<ValueId>(
            std::min<uint64_t>(2, lo + rng.Uniform(2)));
        query.ranges.push_back({a, lo, hi});
      }
      if (rng.Bernoulli(0.5)) query.item_attrs.push_back(a);
    }
    RuleSet expected = ReferenceLocalizedRules(*index, query);
    for (PlanKind kind : kAllPlans) {
      auto result = ExecutePlan(kind, *index, query, wide);
      ASSERT_TRUE(result.ok());
      ASSERT_TRUE(result->rules.SameAs(expected))
          << PlanKindName(kind) << " on "
          << query.ToString(data->schema());
    }
    query.ranges.clear();
    query.item_attrs.clear();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryFuzzTest,
                         ::testing::Values(21, 22, 23, 24, 25));

// ---------------------------------------------------------------------
// Concurrency: query execution is const over the engine; parallel callers
// must get identical results with no data races.

TEST(ConcurrencyTest, ParallelQueriesMatchSerialExecution) {
  auto data = std::make_unique<Dataset>(RandomDataset(99, 300, 5, 3));
  EngineOptions options;
  options.index.primary_support = 0.2;
  options.calibrate = false;
  auto engine = Engine::Build(*data, options);
  ASSERT_TRUE(engine.ok());

  std::vector<LocalizedQuery> queries;
  for (ValueId v = 0; v < 3; ++v) {
    LocalizedQuery query;
    query.ranges = {{0, v, v}};
    query.minsupp = 0.35;
    query.minconf = 0.6;
    queries.push_back(query);
  }
  std::vector<RuleSet> serial(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    serial[i] = (*engine)->Execute(queries[i]).value().rules;
  }

  constexpr int kThreads = 4;
  constexpr int kRounds = 5;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      for (int round = 0; round < kRounds; ++round) {
        size_t pick = (static_cast<size_t>(t) + round) % queries.size();
        auto result = (*engine)->Execute(queries[pick]);
        if (!result.ok() || !result->rules.SameAs(serial[pick])) {
          ++mismatches[t];
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0);
}

// ---------------------------------------------------------------------
// Parser robustness: random token soup must produce errors, never crashes
// or accepted garbage.

TEST(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  Dataset data = MakeSalaryDataset();
  Rng rng(4242);
  const char* fragments[] = {
      "REPORT",   "LOCALIZED", "ASSOCIATION", "RULES", "WHERE",  "RANGE",
      "HAVING",   "AND",       "ITEM",        "ATTRIBUTES",      "minsupport",
      "minconfidence", "=",    "{",           "}",     ",",      ";",
      "Location", "Seattle",   "Gender",      "F",     "0.5",    "75%",
      "\"",       "bogus",     "123abc",      "(",     "<",
  };
  int accepted = 0;
  for (int trial = 0; trial < 500; ++trial) {
    std::string text;
    int len = 1 + static_cast<int>(rng.Uniform(24));
    for (int i = 0; i < len; ++i) {
      text += fragments[rng.Uniform(std::size(fragments))];
      text += ' ';
    }
    auto query = ParseQuery(data.schema(), text);
    if (query.ok()) {
      ++accepted;
      EXPECT_TRUE(query->Validate(data.schema()).ok());
    }
  }
  // Random soup essentially never forms a full valid statement.
  EXPECT_LT(accepted, 5);
}

TEST(ParserFuzzTest, DeepNestingAndLongInputsAreBounded) {
  Dataset data = MakeSalaryDataset();
  std::string text = "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE ";
  for (int i = 0; i < 2000; ++i) text += "{";
  auto query = ParseQuery(data.schema(), text);
  EXPECT_FALSE(query.ok());

  std::string long_word(100000, 'x');
  auto query2 = ParseQuery(data.schema(), long_word);
  EXPECT_FALSE(query2.ok());
}

}  // namespace
}  // namespace colarm
