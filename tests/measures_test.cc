#include <gtest/gtest.h>

#include "data/salary_dataset.h"
#include "mining/measures.h"
#include "test_util.h"

namespace colarm {
namespace {

using testing_util::RandomDataset;

// A balanced positive-association contingency: |DQ|=100, X=40, Y=40, XY=30.
RuleCounts Balanced() { return RuleCounts{30, 40, 40, 100}; }

TEST(MeasuresTest, LiftAboveOneForPositiveAssociation) {
  EXPECT_NEAR(Lift(Balanced()), 0.3 / (0.4 * 0.4), 1e-12);
  EXPECT_GT(Lift(Balanced()), 1.0);
}

TEST(MeasuresTest, LiftOneUnderIndependence) {
  // X=50, Y=40, XY=20 of 100: P(XY) = P(X)P(Y).
  RuleCounts counts{20, 50, 40, 100};
  EXPECT_NEAR(Lift(counts), 1.0, 1e-12);
  EXPECT_NEAR(Leverage(counts), 0.0, 1e-12);
}

TEST(MeasuresTest, CosineIsGeometricMeanOfConfidences) {
  RuleCounts counts = Balanced();
  double conf_xy = 30.0 / 40.0;
  double conf_yx = 30.0 / 40.0;
  EXPECT_NEAR(Cosine(counts), std::sqrt(conf_xy * conf_yx), 1e-12);
}

TEST(MeasuresTest, KulczynskiIsArithmeticMeanOfConfidences) {
  RuleCounts counts{30, 40, 60, 100};
  EXPECT_NEAR(Kulczynski(counts), (30.0 / 40.0 + 30.0 / 60.0) / 2.0, 1e-12);
}

TEST(MeasuresTest, AllAndMaxConfidenceBracketKulczynski) {
  RuleCounts counts{30, 40, 60, 100};
  EXPECT_NEAR(AllConfidence(counts), 30.0 / 60.0, 1e-12);
  EXPECT_NEAR(MaxConfidence(counts), 30.0 / 40.0, 1e-12);
  EXPECT_LE(AllConfidence(counts), Kulczynski(counts));
  EXPECT_LE(Kulczynski(counts), MaxConfidence(counts));
}

TEST(MeasuresTest, ImbalanceRatio) {
  RuleCounts counts{30, 40, 60, 100};
  EXPECT_NEAR(ImbalanceRatio(counts), 20.0 / 70.0, 1e-12);
  EXPECT_NEAR(ImbalanceRatio(Balanced()), 0.0, 1e-12);
}

// The defining property: null-invariant measures must not change when
// records containing neither X nor Y are added; lift/leverage must.
TEST(MeasuresTest, NullInvarianceUnderNullAddition) {
  RuleCounts before{30, 40, 60, 100};
  RuleCounts after = before;
  after.base += 900;  // 900 null transactions
  EXPECT_NEAR(Cosine(before), Cosine(after), 1e-12);
  EXPECT_NEAR(Kulczynski(before), Kulczynski(after), 1e-12);
  EXPECT_NEAR(AllConfidence(before), AllConfidence(after), 1e-12);
  EXPECT_NEAR(MaxConfidence(before), MaxConfidence(after), 1e-12);
  EXPECT_NE(Lift(before), Lift(after));
  EXPECT_NE(Leverage(before), Leverage(after));
}

TEST(MeasuresTest, DegenerateCountsAreSafe) {
  RuleCounts zero{0, 0, 0, 0};
  EXPECT_EQ(Lift(zero), 0.0);
  EXPECT_EQ(Cosine(zero), 0.0);
  EXPECT_EQ(Kulczynski(zero), 0.0);
  EXPECT_EQ(AllConfidence(zero), 0.0);
  EXPECT_EQ(MaxConfidence(zero), 0.0);
  EXPECT_EQ(ImbalanceRatio(zero), 0.0);
}

TEST(MeasuresTest, ComputeMeasuresAggregates) {
  RuleMeasures m = ComputeMeasures(Balanced());
  EXPECT_DOUBLE_EQ(m.lift, Lift(Balanced()));
  EXPECT_DOUBLE_EQ(m.cosine, Cosine(Balanced()));
  EXPECT_FALSE(m.ToString().empty());
}

TEST(MeasuresTest, CountsForRuleScansConsequent) {
  Dataset data = MakeSalaryDataset();
  const Schema& schema = data.schema();
  std::vector<Tid> all(data.num_records());
  for (Tid t = 0; t < data.num_records(); ++t) all[t] = t;
  // RG: Age=20-30 => Salary=90K-120K with counts 5 / 6 / 8 over 11.
  Rule rule{{schema.ItemOf(4, 0)}, {schema.ItemOf(5, 2)}, 5, 6, 11};
  RuleCounts counts = CountsForRule(data, all, rule);
  EXPECT_EQ(counts.both, 5u);
  EXPECT_EQ(counts.antecedent, 6u);
  EXPECT_EQ(counts.consequent, 8u);
  EXPECT_EQ(counts.base, 11u);
  RuleMeasures m = ComputeMeasures(counts);
  EXPECT_GT(m.lift, 1.0);  // RG is a positive association globally
}

TEST(MeasuresTest, RandomCountsStayInRange) {
  Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    uint32_t base = 1 + static_cast<uint32_t>(rng.Uniform(1000));
    uint32_t x = 1 + static_cast<uint32_t>(rng.Uniform(base));
    uint32_t y = 1 + static_cast<uint32_t>(rng.Uniform(base));
    uint32_t xy = static_cast<uint32_t>(rng.Uniform(std::min(x, y) + 1));
    RuleCounts counts{xy, x, y, base};
    EXPECT_GE(Cosine(counts), 0.0);
    EXPECT_LE(Cosine(counts), 1.0 + 1e-12);
    EXPECT_GE(Kulczynski(counts), 0.0);
    EXPECT_LE(Kulczynski(counts), 1.0 + 1e-12);
    EXPECT_LE(AllConfidence(counts), MaxConfidence(counts) + 1e-12);
    EXPECT_GE(ImbalanceRatio(counts), 0.0);
    EXPECT_LE(ImbalanceRatio(counts), 1.0 + 1e-12);
  }
}

}  // namespace
}  // namespace colarm
