#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace colarm {
namespace {

TEST(ThreadPoolTest, DefaultThreadsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1u);
}

TEST(ThreadPoolTest, ParallelismCountsCaller) {
  ThreadPool one(1);
  EXPECT_EQ(one.parallelism(), 1u);
  ThreadPool four(4);
  EXPECT_EQ(four.parallelism(), 4u);
}

TEST(ThreadPoolTest, SubmittedTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  constexpr int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  // Drain via a parallel region: its completion implies queue progress, and
  // the pool destructor joins workers, so by the end all tasks ran.
  ParallelFor(&pool, 16, [](size_t) {});
  while (done.load() < kTasks) std::this_thread::yield();
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolTest, ParallelChunksCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10'000;
  std::vector<int> hits(kN, 0);
  ParallelChunks(&pool, kN, 16, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(kN));
  EXPECT_EQ(*std::min_element(hits.begin(), hits.end()), 1);
  EXPECT_EQ(*std::max_element(hits.begin(), hits.end()), 1);
}

TEST(ThreadPoolTest, ChunkBoundariesIndependentOfPool) {
  // The determinism contract: boundaries depend only on (n, num_chunks).
  auto boundaries = [](ThreadPool* pool) {
    std::vector<std::pair<size_t, size_t>> out(7);
    ParallelChunks(pool, 103, 7, [&](size_t chunk, size_t begin, size_t end) {
      out[chunk] = {begin, end};
    });
    return out;
  };
  ThreadPool pool(8);
  EXPECT_EQ(boundaries(nullptr), boundaries(&pool));
}

TEST(ThreadPoolTest, NullPoolRunsInline) {
  std::vector<size_t> order;
  ParallelChunks(nullptr, 10, 3, [&](size_t chunk, size_t, size_t) {
    order.push_back(chunk);
  });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2}));
}

TEST(ThreadPoolTest, ZeroSizeRegionIsNoop) {
  ThreadPool pool(4);
  int calls = 0;
  ParallelChunks(&pool, 0, 8, [&](size_t, size_t, size_t) { ++calls; });
  ParallelFor(&pool, 0, [&](size_t) { ++calls; });
  ParallelChunks(&pool, 5, 0, [&](size_t, size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, MoreChunksThanElementsClamps) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  ParallelChunks(&pool, 3, 100, [&](size_t, size_t begin, size_t end) {
    EXPECT_EQ(end, begin + 1);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      ParallelFor(&pool, 100,
                  [](size_t i) {
                    if (i == 37) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionOnInlinePathPropagates) {
  EXPECT_THROW(ParallelFor(nullptr, 10,
                           [](size_t i) {
                             if (i == 5) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
}

TEST(ThreadPoolTest, PoolUsableAfterException) {
  ThreadPool pool(4);
  try {
    ParallelFor(&pool, 50, [](size_t) { throw std::runtime_error("boom"); });
  } catch (const std::runtime_error&) {
  }
  std::atomic<size_t> sum{0};
  ParallelFor(&pool, 100, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPoolTest, ConcurrentThrowsFromManyShardsPropagateExactlyOnce) {
  // Every shard throws, and a barrier makes sure several of them are
  // mid-flight simultaneously: the first-exception-only rethrow contract
  // must neither strand a shard (hang) nor leak a second exception
  // (terminate). Run at 2 and 8 threads to cover both a mostly-inline
  // pool and one where all throwers really are concurrent.
  for (unsigned threads : {2u, 8u}) {
    SCOPED_TRACE(threads);
    ThreadPool pool(threads);
    for (int round = 0; round < 20; ++round) {
      const size_t shards = threads;  // one shard per thread: all concurrent
      std::atomic<size_t> armed{0};
      std::atomic<int> thrown{0};
      int caught = 0;
      try {
        ParallelChunks(&pool, 1000, shards, [&](size_t, size_t, size_t) {
          armed.fetch_add(1);
          // Spin until every shard is running so the throws overlap.
          while (armed.load() < shards) std::this_thread::yield();
          thrown.fetch_add(1);
          throw std::runtime_error("shard boom");
        });
      } catch (const std::runtime_error&) {
        ++caught;
      }
      EXPECT_EQ(caught, 1);
      EXPECT_EQ(thrown.load(), static_cast<int>(shards));
      // The pool must come back clean: a full region with no throws.
      std::atomic<size_t> sum{0};
      ParallelFor(&pool, 100, [&](size_t i) { sum.fetch_add(i); });
      EXPECT_EQ(sum.load(), 4950u);
    }
  }
}

TEST(ThreadPoolTest, NestedParallelRegionsComplete) {
  // Inner regions on a saturated pool must run via caller participation
  // rather than deadlocking on queued helpers.
  ThreadPool pool(3);
  std::atomic<size_t> total{0};
  ParallelFor(&pool, 8, [&](size_t) {
    ParallelFor(&pool, 8, [&](size_t) {
      ParallelFor(&pool, 8, [&](size_t) { total.fetch_add(1); });
    });
  });
  EXPECT_EQ(total.load(), 8u * 8u * 8u);
}

TEST(ThreadPoolTest, ManyConcurrentRegions) {
  ThreadPool pool(8);
  std::vector<uint64_t> sums(32, 0);
  ParallelFor(&pool, sums.size(), [&](size_t r) {
    uint64_t local = 0;
    ParallelChunks(&pool, 1000, 8, [&](size_t, size_t begin, size_t end) {
      uint64_t chunk_sum = 0;
      for (size_t i = begin; i < end; ++i) chunk_sum += i;
      // Chunks of one region may run concurrently; serialize on the
      // region's accumulator via atomic ref-free reduction per chunk.
      static std::mutex m;
      std::lock_guard<std::mutex> lock(m);
      local += chunk_sum;
    });
    sums[r] = local;
  });
  for (uint64_t sum : sums) EXPECT_EQ(sum, 499500u);
}

}  // namespace
}  // namespace colarm
