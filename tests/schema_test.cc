#include <gtest/gtest.h>

#include "data/schema.h"

namespace colarm {
namespace {

Schema MakeTestSchema() {
  return Schema({
      {"color", {"red", "green", "blue"}},
      {"size", {"S", "M"}},
      {"shape", {"round", "square", "flat", "long"}},
  });
}

TEST(SchemaTest, Counts) {
  Schema schema = MakeTestSchema();
  EXPECT_EQ(schema.num_attributes(), 3u);
  EXPECT_EQ(schema.num_items(), 9u);
}

TEST(SchemaTest, ItemIdsAreDenseAndGroupedByAttribute) {
  Schema schema = MakeTestSchema();
  EXPECT_EQ(schema.item_base(0), 0u);
  EXPECT_EQ(schema.item_base(1), 3u);
  EXPECT_EQ(schema.item_base(2), 5u);
  EXPECT_EQ(schema.ItemOf(0, 2), 2u);
  EXPECT_EQ(schema.ItemOf(1, 0), 3u);
  EXPECT_EQ(schema.ItemOf(2, 3), 8u);
}

TEST(SchemaTest, InverseMappingRoundTrips) {
  Schema schema = MakeTestSchema();
  for (AttrId a = 0; a < schema.num_attributes(); ++a) {
    for (ValueId v = 0; v < schema.attribute(a).domain_size(); ++v) {
      ItemId item = schema.ItemOf(a, v);
      EXPECT_EQ(schema.AttrOfItem(item), a);
      EXPECT_EQ(schema.ValueOfItem(item), v);
    }
  }
}

TEST(SchemaTest, AttrIdByName) {
  Schema schema = MakeTestSchema();
  ASSERT_TRUE(schema.AttrIdByName("size").ok());
  EXPECT_EQ(schema.AttrIdByName("size").value(), 1u);
  EXPECT_FALSE(schema.AttrIdByName("missing").ok());
  EXPECT_EQ(schema.AttrIdByName("missing").status().code(),
            StatusCode::kNotFound);
}

TEST(SchemaTest, ValueIdByLabel) {
  Schema schema = MakeTestSchema();
  ASSERT_TRUE(schema.ValueIdByLabel(0, "blue").ok());
  EXPECT_EQ(schema.ValueIdByLabel(0, "blue").value(), 2u);
  EXPECT_FALSE(schema.ValueIdByLabel(0, "violet").ok());
  EXPECT_FALSE(schema.ValueIdByLabel(99, "red").ok());
}

TEST(SchemaTest, ItemToString) {
  Schema schema = MakeTestSchema();
  EXPECT_EQ(schema.ItemToString(schema.ItemOf(1, 1)), "size=M");
}

TEST(SchemaTest, EmptySchema) {
  Schema schema;
  EXPECT_EQ(schema.num_attributes(), 0u);
  EXPECT_EQ(schema.num_items(), 0u);
}

}  // namespace
}  // namespace colarm
