#include <gtest/gtest.h>

#include "data/salary_dataset.h"
#include "mining/itemset.h"

namespace colarm {
namespace {

TEST(ItemsetTest, Validity) {
  EXPECT_TRUE(ItemsetIsValid(Itemset{}));
  EXPECT_TRUE(ItemsetIsValid(Itemset{1, 3, 9}));
  EXPECT_FALSE(ItemsetIsValid(Itemset{3, 1}));
  EXPECT_FALSE(ItemsetIsValid(Itemset{2, 2}));
}

TEST(ItemsetTest, Union) {
  EXPECT_EQ(ItemsetUnion(Itemset{1, 3}, Itemset{2, 3, 5}),
            (Itemset{1, 2, 3, 5}));
  EXPECT_EQ(ItemsetUnion(Itemset{}, Itemset{4}), (Itemset{4}));
  EXPECT_EQ(ItemsetUnion(Itemset{}, Itemset{}), Itemset{});
}

TEST(ItemsetTest, Subset) {
  EXPECT_TRUE(ItemsetIsSubset(Itemset{}, Itemset{1, 2}));
  EXPECT_TRUE(ItemsetIsSubset(Itemset{2}, Itemset{1, 2, 3}));
  EXPECT_TRUE(ItemsetIsSubset(Itemset{1, 3}, Itemset{1, 2, 3}));
  EXPECT_FALSE(ItemsetIsSubset(Itemset{4}, Itemset{1, 2, 3}));
  EXPECT_FALSE(ItemsetIsSubset(Itemset{1, 2, 3}, Itemset{1, 2}));
}

TEST(ItemsetTest, Disjoint) {
  EXPECT_TRUE(ItemsetDisjoint(Itemset{1, 3}, Itemset{2, 4}));
  EXPECT_FALSE(ItemsetDisjoint(Itemset{1, 3}, Itemset{3}));
  EXPECT_TRUE(ItemsetDisjoint(Itemset{}, Itemset{1}));
}

TEST(ItemsetTest, ToString) {
  Dataset data = MakeSalaryDataset();
  const Schema& schema = data.schema();
  Itemset items = {schema.ItemOf(4, 0), schema.ItemOf(5, 2)};
  EXPECT_EQ(ItemsetToString(schema, items), "{Age=20-30, Salary=90K-120K}");
  EXPECT_EQ(ItemsetToString(schema, Itemset{}), "{}");
}

TEST(ItemsetTest, SortItemsets) {
  std::vector<FrequentItemset> sets = {{{3}, 1}, {{1, 2}, 5}, {{1}, 9}};
  SortItemsets(&sets);
  EXPECT_EQ(sets[0].items, (Itemset{1}));
  EXPECT_EQ(sets[1].items, (Itemset{1, 2}));
  EXPECT_EQ(sets[2].items, (Itemset{3}));
}

TEST(MinCountTest, ExactBoundaries) {
  // c / total >= fraction with the smallest such c.
  EXPECT_EQ(MinCount(0.5, 10), 5u);
  EXPECT_EQ(MinCount(0.51, 10), 6u);
  EXPECT_EQ(MinCount(0.05, 11), 1u);
  EXPECT_EQ(MinCount(1.0, 7), 7u);
  EXPECT_EQ(MinCount(0.0, 10), 1u);
  EXPECT_EQ(MinCount(0.3, 0), 1u);
}

TEST(MinCountTest, FloatingPointRobustness) {
  // 0.8 * 35 = 28.000000000000004 in binary; must not round up to 29.
  EXPECT_EQ(MinCount(0.8, 35), 28u);
  EXPECT_EQ(MinCount(0.7, 10), 7u);
}

}  // namespace
}  // namespace colarm
