#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace colarm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad thing");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 7);
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformWithinBound) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(6);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(8);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, ZipfPrefersLowRanks) {
  Rng rng(9);
  int low = 0;
  for (int i = 0; i < 2000; ++i) {
    if (rng.Zipf(10, 1.2) < 2) ++low;
  }
  EXPECT_GT(low, 800);  // the head must dominate
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = SplitString("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x \t\n"), "x");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLowerAscii("AbC-9"), "abc-9");
  EXPECT_TRUE(EqualsIgnoreCase("MinSupport", "minsupport"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abcd"));
}

TEST(StringUtilTest, ParseDouble) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble(" -1e3 ", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(ParseDouble("12x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(StringUtilTest, ParseUint64) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("42", &v));
  EXPECT_EQ(v, 42u);
  EXPECT_FALSE(ParseUint64("-1", &v));
  EXPECT_FALSE(ParseUint64("4.2", &v));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

TEST(TimerTest, ElapsedMonotonic) {
  Timer timer;
  int64_t a = timer.ElapsedNanos();
  int64_t b = timer.ElapsedNanos();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0);
}

}  // namespace
}  // namespace colarm
