#ifndef COLARM_TESTS_TEST_UTIL_H_
#define COLARM_TESTS_TEST_UTIL_H_

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "mining/brute_force.h"
#include "mining/rule.h"
#include "mip/mip_index.h"
#include "plans/query.h"

namespace colarm {
namespace testing_util {

/// Small random relational dataset for property tests: `n_attrs` attributes
/// with `domain` values each, mildly skewed so frequent itemsets exist.
inline Dataset RandomDataset(uint64_t seed, uint32_t records, uint32_t n_attrs,
                             uint32_t domain) {
  std::vector<Attribute> attrs;
  for (uint32_t a = 0; a < n_attrs; ++a) {
    Attribute attr;
    attr.name = "a" + std::to_string(a);
    for (uint32_t v = 0; v < domain; ++v) {
      attr.values.push_back("v" + std::to_string(v));
    }
    attrs.push_back(std::move(attr));
  }
  Dataset dataset{Schema(std::move(attrs))};
  Rng rng(seed);
  std::vector<ValueId> record(n_attrs);
  for (uint32_t r = 0; r < records; ++r) {
    for (uint32_t a = 0; a < n_attrs; ++a) {
      // Skew toward value 0 so itemsets clear realistic thresholds.
      record[a] = rng.Bernoulli(0.6)
                      ? 0
                      : static_cast<ValueId>(rng.Uniform(domain));
    }
    Status st = dataset.AddRecord(record);
    if (!st.ok()) std::abort();
  }
  return dataset;
}

/// Reference implementation of the localized-mining contract (DESIGN.md
/// §2): qualified prestored CFIs by exact local scans, rules by exhaustive
/// antecedent enumeration. Quadratic and proud of it — tests only.
inline RuleSet ReferenceLocalizedRules(const MipIndex& index,
                                       const LocalizedQuery& query) {
  const Dataset& dataset = index.dataset();
  const Schema& schema = dataset.schema();
  const Rect box = query.ToRect(schema);
  std::vector<Tid> tids;
  for (Tid t = 0; t < dataset.num_records(); ++t) {
    bool inside = true;
    for (AttrId a = 0; a < schema.num_attributes(); ++a) {
      ValueId v = dataset.Value(t, a);
      if (v < box.lo(a) || v > box.hi(a)) {
        inside = false;
        break;
      }
    }
    if (inside) tids.push_back(t);
  }
  RuleSet out;
  if (tids.empty()) return out;
  const uint32_t min_count =
      MinCount(query.minsupp, static_cast<uint32_t>(tids.size()));
  std::vector<bool> allowed = query.ItemAttrMask(schema);

  auto local_count = [&](std::span<const ItemId> items) {
    uint32_t count = 0;
    for (Tid t : tids) {
      if (dataset.ContainsAll(t, items)) ++count;
    }
    return count;
  };

  for (uint32_t id = 0; id < index.num_mips(); ++id) {
    const Mip& mip = index.mip(id);
    bool attrs_ok = true;
    for (ItemId item : mip.items) {
      if (!allowed[schema.AttrOfItem(item)]) {
        attrs_ok = false;
        break;
      }
    }
    if (!attrs_ok || mip.items.size() < 2 || mip.items.size() > 31) continue;
    uint32_t count = local_count(mip.items);
    if (count < min_count) continue;
    const uint32_t full = (1u << mip.items.size()) - 1;
    for (uint32_t mask = 1; mask < full; ++mask) {
      Itemset antecedent;
      Itemset consequent;
      for (size_t i = 0; i < mip.items.size(); ++i) {
        if (mask & (1u << i)) {
          antecedent.push_back(mip.items[i]);
        } else {
          consequent.push_back(mip.items[i]);
        }
      }
      uint32_t acount = local_count(antecedent);
      if (acount == 0) continue;
      double conf = static_cast<double>(count) / acount;
      if (conf + 1e-12 < query.minconf) continue;
      out.rules.push_back(Rule{antecedent, consequent, count, acount,
                               static_cast<uint32_t>(tids.size())});
    }
  }
  out.Canonicalize();
  return out;
}

}  // namespace testing_util
}  // namespace colarm

#endif  // COLARM_TESTS_TEST_UTIL_H_
