#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "common/thread_pool.h"
#include "core/batch.h"
#include "data/salary_dataset.h"
#include "mip/serialize.h"
#include "plans/plans.h"
#include "test_util.h"

namespace colarm {
namespace {

using testing_util::RandomDataset;
using testing_util::ReferenceLocalizedRules;

// The counters the determinism contract covers: parallel execution must
// report the exact effort the sequential path reports, not merely the same
// rules.
void ExpectSameEffort(const PlanStats& seq, const PlanStats& par,
                      const std::string& context) {
  EXPECT_EQ(seq.subset_size, par.subset_size) << context;
  EXPECT_EQ(seq.local_min_count, par.local_min_count) << context;
  EXPECT_EQ(seq.candidates_search, par.candidates_search) << context;
  EXPECT_EQ(seq.candidates_contained, par.candidates_contained) << context;
  EXPECT_EQ(seq.candidates_qualified, par.candidates_qualified) << context;
  EXPECT_EQ(seq.record_checks, par.record_checks) << context;
  EXPECT_EQ(seq.rtree_nodes_visited, par.rtree_nodes_visited) << context;
  EXPECT_EQ(seq.rtree_pruned_by_support, par.rtree_pruned_by_support)
      << context;
  EXPECT_EQ(seq.rules_considered, par.rules_considered) << context;
  EXPECT_EQ(seq.rules_emitted, par.rules_emitted) << context;
  EXPECT_EQ(seq.itemsets_skipped, par.itemsets_skipped) << context;
  EXPECT_EQ(seq.local_cfis, par.local_cfis) << context;
}

// Element-wise rule comparison (stronger than SameAs's set semantics: the
// canonical order itself must match, i.e. output is byte-identical).
void ExpectSameRules(const RuleSet& seq, const RuleSet& par,
                     const std::string& context) {
  ASSERT_EQ(seq.rules.size(), par.rules.size()) << context;
  for (size_t r = 0; r < seq.rules.size(); ++r) {
    EXPECT_EQ(seq.rules[r].antecedent, par.rules[r].antecedent) << context;
    EXPECT_EQ(seq.rules[r].consequent, par.rules[r].consequent) << context;
    EXPECT_EQ(seq.rules[r].itemset_count, par.rules[r].itemset_count)
        << context;
    EXPECT_EQ(seq.rules[r].antecedent_count, par.rules[r].antecedent_count)
        << context;
    EXPECT_EQ(seq.rules[r].base_count, par.rules[r].base_count) << context;
  }
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<LocalizedQuery> SweepQueries(uint64_t seed) {
  Rng rng(seed * 7919);
  std::vector<LocalizedQuery> queries;
  for (int q = 0; q < 4; ++q) {
    LocalizedQuery query;
    query.minsupp = 0.3 + 0.1 * (q % 3);
    query.minconf = 0.5 + 0.1 * (q % 4);
    uint32_t range_attrs = 1 + static_cast<uint32_t>(rng.Uniform(3));
    for (uint32_t i = 0; i < range_attrs; ++i) {
      AttrId attr = static_cast<AttrId>(rng.Uniform(5));
      bool already = false;
      for (const auto& r : query.ranges) already |= (r.attr == attr);
      if (already) continue;
      ValueId lo = static_cast<ValueId>(rng.Uniform(4));
      ValueId hi =
          static_cast<ValueId>(std::min<uint64_t>(3, lo + rng.Uniform(3)));
      query.ranges.push_back({attr, lo, hi});
    }
    if (rng.Bernoulli(0.4)) query.item_attrs = {0, 1, 2, 3};
    queries.push_back(std::move(query));
  }
  return queries;
}

class ParallelEquivalenceTest : public ::testing::TestWithParam<unsigned> {};

// Every plan, executed with a worker pool, returns rules in the same
// canonical order with the same counts and reports the same effort
// counters as the exact sequential path.
TEST_P(ParallelEquivalenceTest, PlansMatchSequentialByteForByte) {
  const unsigned num_threads = GetParam();
  auto data = std::make_unique<Dataset>(RandomDataset(11, 220, 5, 4));
  auto index = MipIndex::Build(*data, {.primary_support = 0.2});
  ASSERT_TRUE(index.ok());

  ThreadPool pool(num_threads);
  RuleGenOptions wide;
  wide.max_itemset_length = 31;

  for (const LocalizedQuery& query : SweepQueries(11)) {
    RuleSet expected = ReferenceLocalizedRules(*index, query);
    for (PlanKind kind : kAllPlans) {
      PlanExecOptions seq_exec;
      seq_exec.rulegen = wide;
      auto seq = ExecutePlan(kind, *index, query, seq_exec);
      ASSERT_TRUE(seq.ok()) << PlanKindName(kind);

      PlanExecOptions par_exec = seq_exec;
      par_exec.pool = &pool;
      auto par = ExecutePlan(kind, *index, query, par_exec);
      ASSERT_TRUE(par.ok()) << PlanKindName(kind);

      std::string context = std::string("plan ") + PlanKindName(kind) +
                            " threads=" + std::to_string(num_threads) +
                            " query " + query.ToString(data->schema());
      EXPECT_TRUE(seq->rules.SameAs(expected)) << context;
      ExpectSameRules(seq->rules, par->rules, context);
      ExpectSameEffort(seq->stats, par->stats, context);
    }
  }
}

// A parallel engine (index built with a pool, operators run with it) gives
// the same answers and effort as a sequential engine over the same data.
TEST_P(ParallelEquivalenceTest, EngineMatchesSequentialEngine) {
  const unsigned num_threads = GetParam();
  auto data = std::make_unique<Dataset>(RandomDataset(23, 220, 5, 4));

  EngineOptions seq_options;
  seq_options.index.primary_support = 0.2;
  seq_options.calibrate = false;
  seq_options.num_threads = 1;
  auto seq_engine = Engine::Build(*data, seq_options);
  ASSERT_TRUE(seq_engine.ok());

  EngineOptions par_options = seq_options;
  par_options.num_threads = num_threads;
  auto par_engine = Engine::Build(*data, par_options);
  ASSERT_TRUE(par_engine.ok());

  for (const LocalizedQuery& query : SweepQueries(23)) {
    for (PlanKind kind : kAllPlans) {
      auto seq = (*seq_engine)->ExecuteWithPlan(query, kind);
      auto par = (*par_engine)->ExecuteWithPlan(query, kind);
      ASSERT_TRUE(seq.ok());
      ASSERT_TRUE(par.ok());
      std::string context = std::string("plan ") + PlanKindName(kind) +
                            " threads=" + std::to_string(num_threads);
      ExpectSameRules(seq->rules, par->rules, context);
      ExpectSameEffort(seq->stats, par->stats, context);
      EXPECT_EQ(seq->decision.chosen, par->decision.chosen) << context;
    }
  }
}

// The offline build is deterministic too: a pool-built MIP-index serializes
// to exactly the same bytes as the sequential build (same CFIs, same order,
// same bounding boxes).
TEST_P(ParallelEquivalenceTest, IndexBuildMatchesSequentialBytes) {
  const unsigned num_threads = GetParam();
  auto data = std::make_unique<Dataset>(RandomDataset(37, 300, 5, 4));
  MipIndexOptions options;
  options.primary_support = 0.15;

  auto seq = MipIndex::Build(*data, options);
  ASSERT_TRUE(seq.ok());
  ThreadPool pool(num_threads);
  auto par = MipIndex::Build(*data, options, &pool);
  ASSERT_TRUE(par.ok());

  ASSERT_EQ(seq->num_mips(), par->num_mips());
  std::string seq_path =
      ::testing::TempDir() + "colarm_seq_" + std::to_string(num_threads);
  std::string par_path =
      ::testing::TempDir() + "colarm_par_" + std::to_string(num_threads);
  ASSERT_TRUE(SaveMipIndex(*seq, seq_path).ok());
  ASSERT_TRUE(SaveMipIndex(*par, par_path).ok());
  std::string seq_bytes = ReadFile(seq_path);
  std::string par_bytes = ReadFile(par_path);
  std::remove(seq_path.c_str());
  std::remove(par_path.c_str());
  ASSERT_FALSE(seq_bytes.empty());
  EXPECT_EQ(seq_bytes, par_bytes);
}

// The parallel batch executor preserves results, input order, and the
// sharing counters of the sequential loop.
TEST_P(ParallelEquivalenceTest, BatchMatchesSequentialLoop) {
  const unsigned num_threads = GetParam();
  auto data = std::make_unique<Dataset>(RandomDataset(41, 250, 5, 4));
  EngineOptions engine_options;
  engine_options.index.primary_support = 0.2;
  engine_options.calibrate = false;
  engine_options.num_threads = 1;
  auto engine = Engine::Build(*data, engine_options);
  ASSERT_TRUE(engine.ok());

  // Session mix: threshold sweep over one region, a second region, an
  // exact duplicate, and a vocabulary drill-down.
  std::vector<LocalizedQuery> queries;
  for (double minsupp : {0.3, 0.4, 0.5}) {
    LocalizedQuery q;
    q.ranges = {{0, 0, 1}};
    q.minsupp = minsupp;
    q.minconf = 0.6;
    queries.push_back(q);
  }
  LocalizedQuery other;
  other.ranges = {{1, 0, 0}};
  other.minsupp = 0.35;
  other.minconf = 0.55;
  queries.push_back(other);
  queries.push_back(queries[1]);
  LocalizedQuery drill = queries[0];
  drill.minsupp = 0.4;
  drill.item_attrs = {1, 2, 3};
  queries.push_back(drill);

  BatchExecutor executor(**engine);
  for (bool share : {true, false}) {
    for (bool reuse : {true, false}) {
      BatchOptions seq_options;
      seq_options.share_subsets = share;
      seq_options.reuse_duplicate_results = reuse;
      seq_options.num_threads = 1;
      auto seq = executor.Execute(queries, seq_options);
      ASSERT_TRUE(seq.ok());

      BatchOptions par_options = seq_options;
      par_options.num_threads = num_threads;
      auto par = executor.Execute(queries, par_options);
      ASSERT_TRUE(par.ok());

      std::string context = "share=" + std::to_string(share) +
                            " reuse=" + std::to_string(reuse) +
                            " threads=" + std::to_string(num_threads);
      EXPECT_EQ(seq->subsets_shared, par->subsets_shared) << context;
      EXPECT_EQ(seq->duplicates_reused, par->duplicates_reused) << context;
      ASSERT_EQ(seq->results.size(), par->results.size()) << context;
      for (size_t i = 0; i < seq->results.size(); ++i) {
        std::string qcontext = context + " query " + std::to_string(i);
        EXPECT_EQ(seq->results[i].plan_used, par->results[i].plan_used)
            << qcontext;
        ExpectSameRules(seq->results[i].rules, par->results[i].rules,
                        qcontext);
        ExpectSameEffort(seq->results[i].stats, par->results[i].stats,
                         qcontext);
      }
    }
  }
}

// A failing query fails the parallel batch exactly like the sequential one.
TEST_P(ParallelEquivalenceTest, BatchPropagatesValidationFailure) {
  const unsigned num_threads = GetParam();
  auto data = std::make_unique<Dataset>(MakeSalaryDataset());
  EngineOptions engine_options;
  engine_options.index.primary_support = 0.27;
  engine_options.calibrate = false;
  engine_options.num_threads = 1;
  auto engine = Engine::Build(*data, engine_options);
  ASSERT_TRUE(engine.ok());

  std::vector<LocalizedQuery> queries;
  LocalizedQuery good;
  good.ranges = {{2, 2, 2}};
  good.minsupp = 0.5;
  good.minconf = 0.5;
  queries.push_back(good);
  LocalizedQuery bad;
  bad.ranges = {{99, 0, 0}};
  queries.push_back(bad);

  BatchExecutor executor(**engine);
  BatchOptions options;
  options.num_threads = num_threads;
  EXPECT_FALSE(executor.Execute(queries, options).ok());
}

INSTANTIATE_TEST_SUITE_P(ThreadSweep, ParallelEquivalenceTest,
                         ::testing::Values(1u, 2u, 8u));

}  // namespace
}  // namespace colarm
