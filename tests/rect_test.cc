#include <gtest/gtest.h>

#include <cmath>

#include "data/salary_dataset.h"
#include "rtree/rect.h"

namespace colarm {
namespace {

Rect Box2(ValueId lo0, ValueId hi0, ValueId lo1, ValueId hi1) {
  Rect rect = Rect::MakeEmpty(2);
  rect.SetInterval(0, lo0, hi0);
  rect.SetInterval(1, lo1, hi1);
  return rect;
}

TEST(RectTest, EmptyByDefault) {
  EXPECT_TRUE(Rect().empty());
  EXPECT_TRUE(Rect::MakeEmpty(3).empty());
  EXPECT_EQ(Rect::MakeEmpty(3).dims(), 3u);
}

TEST(RectTest, FullDomainCoversSchema) {
  Dataset data = MakeSalaryDataset();
  Rect full = Rect::FullDomain(data.schema());
  EXPECT_EQ(full.dims(), 6u);
  EXPECT_EQ(full.lo(0), 0);
  EXPECT_EQ(full.hi(0), 3);  // four companies
  EXPECT_EQ(full.hi(5), 3);  // four salary bands
  EXPECT_FALSE(full.empty());
}

TEST(RectTest, FromPoint) {
  std::vector<ValueId> point = {2, 5};
  Rect rect = Rect::FromPoint(point);
  EXPECT_EQ(rect.lo(0), 2);
  EXPECT_EQ(rect.hi(0), 2);
  EXPECT_EQ(rect.Extent(1), 1u);
}

TEST(RectTest, ExpandToInclude) {
  Rect a = Box2(1, 2, 5, 6);
  a.ExpandToInclude(Box2(0, 1, 7, 9));
  EXPECT_EQ(a, Box2(0, 2, 5, 9));

  Rect empty = Rect::MakeEmpty(2);
  empty.ExpandToInclude(Box2(3, 4, 3, 4));
  EXPECT_EQ(empty, Box2(3, 4, 3, 4));
}

TEST(RectTest, ExpandToIncludePoint) {
  Rect rect = Box2(2, 2, 2, 2);
  std::vector<ValueId> point = {0, 5};
  rect.ExpandToIncludePoint(point);
  EXPECT_EQ(rect, Box2(0, 2, 2, 5));
}

TEST(RectTest, Intersects) {
  EXPECT_TRUE(Box2(0, 5, 0, 5).Intersects(Box2(5, 9, 5, 9)));  // touch
  EXPECT_FALSE(Box2(0, 4, 0, 9).Intersects(Box2(5, 9, 0, 9)));
  EXPECT_FALSE(Box2(0, 9, 0, 4).Intersects(Box2(0, 9, 5, 9)));
  EXPECT_FALSE(Rect::MakeEmpty(2).Intersects(Box2(0, 9, 0, 9)));
}

TEST(RectTest, Contains) {
  EXPECT_TRUE(Box2(0, 9, 0, 9).Contains(Box2(2, 3, 4, 5)));
  EXPECT_TRUE(Box2(0, 9, 0, 9).Contains(Box2(0, 9, 0, 9)));
  EXPECT_FALSE(Box2(0, 9, 0, 9).Contains(Box2(2, 10, 4, 5)));
  EXPECT_FALSE(Rect::MakeEmpty(2).Contains(Box2(1, 1, 1, 1)));
  EXPECT_TRUE(Box2(0, 9, 0, 9).Contains(Rect::MakeEmpty(2)));
}

TEST(RectTest, ContainsPoint) {
  std::vector<ValueId> inside = {3, 4};
  std::vector<ValueId> outside = {3, 10};
  EXPECT_TRUE(Box2(0, 9, 0, 9).ContainsPoint(inside));
  EXPECT_FALSE(Box2(0, 9, 0, 9).ContainsPoint(outside));
}

TEST(RectTest, ExtentAndNormalized) {
  Rect rect = Box2(2, 4, 1, 1);
  EXPECT_EQ(rect.Extent(0), 3u);
  EXPECT_EQ(rect.Extent(1), 1u);
  EXPECT_DOUBLE_EQ(rect.NormalizedExtent(0, 10), 0.3);
  EXPECT_DOUBLE_EQ(rect.NormalizedExtent(1, 4), 0.25);
}

TEST(RectTest, LogVolume) {
  Rect unit = Box2(3, 3, 7, 7);
  EXPECT_DOUBLE_EQ(unit.LogVolume(), 0.0);  // 1x1 box
  Rect bigger = Box2(0, 9, 0, 1);
  EXPECT_NEAR(bigger.LogVolume(), std::log(10.0) + std::log(2.0), 1e-12);
  EXPECT_TRUE(std::isinf(Rect::MakeEmpty(2).LogVolume()));
}

TEST(RectTest, ToString) {
  EXPECT_EQ(Box2(1, 2, 3, 4).ToString(), "[1..2 x 3..4]");
}

}  // namespace
}  // namespace colarm
