#include <gtest/gtest.h>

#include <memory>

#include "core/parameter_space.h"
#include "plans/plans.h"
#include "test_util.h"

namespace colarm {
namespace {

using testing_util::RandomDataset;

struct Env {
  std::unique_ptr<Dataset> data;
  std::unique_ptr<MipIndex> index;

  static Env Make(uint64_t seed) {
    Env env;
    env.data = std::make_unique<Dataset>(RandomDataset(seed, 200, 5, 3));
    auto built = MipIndex::Build(*env.data, {.primary_support = 0.2});
    EXPECT_TRUE(built.ok());
    env.index = std::make_unique<MipIndex>(std::move(built.value()));
    return env;
  }
};

LocalizedQuery Base() {
  LocalizedQuery base;
  base.ranges = {{0, 0, 1}};
  return base;
}

TEST(ParameterSpaceTest, RulesAtMatchesPlanExecution) {
  Env env = Env::Make(1);
  auto view = ParameterSpaceView::Build(*env.index, Base(),
                                        {.min_support_floor = 0.25});
  ASSERT_TRUE(view.ok());

  for (double minsupp : {0.3, 0.45, 0.6, 0.8}) {
    for (double minconf : {0.4, 0.7, 0.95}) {
      LocalizedQuery query = Base();
      query.minsupp = minsupp;
      query.minconf = minconf;
      auto expected = ExecutePlan(PlanKind::kSEV, *env.index, query);
      ASSERT_TRUE(expected.ok());
      auto actual = view->RulesAt(minsupp, minconf);
      ASSERT_TRUE(actual.ok());
      EXPECT_TRUE(actual->SameAs(expected->rules))
          << "at (" << minsupp << ", " << minconf << ")";
    }
  }
}

TEST(ParameterSpaceTest, BelowFloorIsRejected) {
  Env env = Env::Make(2);
  auto view = ParameterSpaceView::Build(*env.index, Base(),
                                        {.min_support_floor = 0.4});
  ASSERT_TRUE(view.ok());
  auto rules = view->RulesAt(0.2, 0.5);
  ASSERT_FALSE(rules.ok());
  EXPECT_EQ(rules.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(view->CountAt(0.2, 0.5).ok());
}

TEST(ParameterSpaceTest, CountsAreMonotoneInThresholds) {
  Env env = Env::Make(3);
  auto view = ParameterSpaceView::Build(*env.index, Base(),
                                        {.min_support_floor = 0.25});
  ASSERT_TRUE(view.ok());
  uint32_t prev = UINT32_MAX;
  for (double minsupp : {0.25, 0.4, 0.55, 0.7, 0.85}) {
    uint32_t count = view->CountAt(minsupp, 0.5).value();
    EXPECT_LE(count, prev);
    prev = count;
  }
  prev = UINT32_MAX;
  for (double minconf : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    uint32_t count = view->CountAt(0.3, minconf).value();
    EXPECT_LE(count, prev);
    prev = count;
  }
}

TEST(ParameterSpaceTest, CountGridMatchesPointQueries) {
  Env env = Env::Make(4);
  auto view = ParameterSpaceView::Build(*env.index, Base(),
                                        {.min_support_floor = 0.3});
  ASSERT_TRUE(view.ok());
  std::vector<double> supps = {0.2, 0.4, 0.7};  // first is below floor
  std::vector<double> confs = {0.5, 0.9};
  auto grid = view->CountGrid(supps, confs);
  ASSERT_EQ(grid.size(), 3u);
  ASSERT_EQ(grid[0].size(), 2u);
  EXPECT_EQ(grid[0][0], UINT32_MAX);  // below-floor marker
  EXPECT_EQ(grid[1][0], view->CountAt(0.4, 0.5).value());
  EXPECT_EQ(grid[2][1], view->CountAt(0.7, 0.9).value());
}

TEST(ParameterSpaceTest, EmptySubsetView) {
  Env env = Env::Make(5);
  // Probe for an impossible conjunction.
  LocalizedQuery base;
  base.ranges = {{0, 2, 2}, {1, 2, 2}, {2, 2, 2}, {3, 2, 2}, {4, 2, 2}};
  auto view = ParameterSpaceView::Build(*env.index, base,
                                        {.min_support_floor = 0.3});
  ASSERT_TRUE(view.ok());
  if (view->subset_size() == 0) {
    EXPECT_EQ(view->num_points(), 0u);
    EXPECT_TRUE(view->RulesAt(0.5, 0.5).value().rules.empty());
  }
}

TEST(ParameterSpaceTest, RejectsBadFloor) {
  Env env = Env::Make(6);
  EXPECT_FALSE(ParameterSpaceView::Build(*env.index, Base(),
                                         {.min_support_floor = 0.0})
                   .ok());
  EXPECT_FALSE(ParameterSpaceView::Build(*env.index, Base(),
                                         {.min_support_floor = 1.5})
                   .ok());
}

TEST(ParameterSpaceTest, ItemVocabularyRespected) {
  Env env = Env::Make(7);
  LocalizedQuery base = Base();
  base.item_attrs = {1, 2};
  auto view = ParameterSpaceView::Build(*env.index, base,
                                        {.min_support_floor = 0.25});
  ASSERT_TRUE(view.ok());
  auto rules = view->RulesAt(0.3, 0.3);
  ASSERT_TRUE(rules.ok());
  const Schema& schema = env.data->schema();
  for (const Rule& rule : rules->rules) {
    for (ItemId item : ItemsetUnion(rule.antecedent, rule.consequent)) {
      AttrId a = schema.AttrOfItem(item);
      EXPECT_TRUE(a == 1 || a == 2);
    }
  }
}

}  // namespace
}  // namespace colarm
