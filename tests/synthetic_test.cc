#include <gtest/gtest.h>

#include "data/histogram.h"
#include "data/synthetic.h"

namespace colarm {
namespace {

TEST(SyntheticTest, Deterministic) {
  SyntheticConfig config;
  config.num_records = 500;
  auto a = GenerateSynthetic(config);
  auto b = GenerateSynthetic(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_records(), b->num_records());
  for (Tid t = 0; t < a->num_records(); ++t) {
    for (AttrId at = 0; at < a->num_attributes(); ++at) {
      ASSERT_EQ(a->Value(t, at), b->Value(t, at));
    }
  }
}

TEST(SyntheticTest, SeedChangesData) {
  SyntheticConfig config;
  config.num_records = 500;
  auto a = GenerateSynthetic(config);
  config.seed += 1;
  auto b = GenerateSynthetic(config);
  ASSERT_TRUE(a.ok() && b.ok());
  int diffs = 0;
  for (Tid t = 0; t < a->num_records(); ++t) {
    for (AttrId at = 0; at < a->num_attributes(); ++at) {
      if (a->Value(t, at) != b->Value(t, at)) ++diffs;
    }
  }
  EXPECT_GT(diffs, 100);
}

TEST(SyntheticTest, ShapeMatchesConfig) {
  SyntheticConfig config;
  config.num_records = 321;
  config.num_attributes = 7;
  config.values_per_attribute = 5;
  config.region_domain = 13;
  auto data = GenerateSynthetic(config);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->num_records(), 321u);
  EXPECT_EQ(data->num_attributes(), 7u);
  EXPECT_EQ(data->schema().attribute(0).domain_size(), 13u);
  EXPECT_EQ(data->schema().attribute(3).domain_size(), 5u);
}

TEST(SyntheticTest, DominantValueDominates) {
  SyntheticConfig config;
  config.num_records = 3000;
  config.num_modes = 1;
  config.dominant_prob = 0.9;
  config.noise = 0.0;
  config.local_patterns.clear();
  auto data = GenerateSynthetic(config);
  ASSERT_TRUE(data.ok());
  ValueHistogram hist(*data, 2);
  // Mode-0 dominant value is value 0; it must clearly dominate.
  EXPECT_GT(hist.Selectivity(0, 0), 0.6);
}

TEST(SyntheticTest, RegionRoughlyUniform) {
  SyntheticConfig config;
  config.num_records = 5000;
  config.region_domain = 10;
  auto data = GenerateSynthetic(config);
  ASSERT_TRUE(data.ok());
  ValueHistogram hist(*data, 0);
  for (ValueId v = 0; v < 10; ++v) {
    EXPECT_NEAR(hist.Selectivity(v, v), 0.1, 0.03);
  }
}

TEST(SyntheticTest, LocalPatternIsLocallyDominantGloballyRare) {
  SyntheticConfig config;
  config.num_records = 6000;
  config.region_domain = 20;
  config.dominant_prob = 0.9;
  config.group_coherence = 0.0;
  config.noise = 0.0;
  config.local_patterns = {{0, 1, {4}, 3, 0.95}};
  auto data = GenerateSynthetic(config);
  ASSERT_TRUE(data.ok());
  uint32_t in_region = 0;
  uint32_t in_region_with_pattern = 0;
  uint32_t global_with_pattern = 0;
  for (Tid t = 0; t < data->num_records(); ++t) {
    bool pattern = data->Value(t, 4) == 3;
    if (pattern) ++global_with_pattern;
    if (data->Value(t, 0) <= 1) {
      ++in_region;
      if (pattern) ++in_region_with_pattern;
    }
  }
  ASSERT_GT(in_region, 0u);
  double local_frac =
      static_cast<double>(in_region_with_pattern) / in_region;
  double global_frac =
      static_cast<double>(global_with_pattern) / data->num_records();
  EXPECT_GT(local_frac, 0.85);
  EXPECT_LT(global_frac, 0.25);
}

TEST(SyntheticTest, RejectsBadConfigs) {
  SyntheticConfig config;
  config.num_records = 0;
  EXPECT_FALSE(GenerateSynthetic(config).ok());

  config = SyntheticConfig();
  config.num_attributes = 1;
  EXPECT_FALSE(GenerateSynthetic(config).ok());

  config = SyntheticConfig();
  config.local_patterns = {{5, 2, {1}, 0, 0.5}};  // inverted region
  EXPECT_FALSE(GenerateSynthetic(config).ok());

  config = SyntheticConfig();
  config.local_patterns = {{0, 1, {0}, 0, 0.5}};  // region attr in pattern
  EXPECT_FALSE(GenerateSynthetic(config).ok());

  config = SyntheticConfig();
  config.local_patterns = {{0, 1, {1}, 99, 0.5}};  // value out of domain
  EXPECT_FALSE(GenerateSynthetic(config).ok());
}

TEST(SyntheticTest, PresetsGenerate) {
  for (auto config : {ChessLikeConfig(0.05), MushroomLikeConfig(0.05),
                      PumsbLikeConfig(0.01)}) {
    auto data = GenerateSynthetic(config);
    ASSERT_TRUE(data.ok()) << config.name;
    EXPECT_GE(data->num_records(), 64u) << config.name;
  }
}

}  // namespace
}  // namespace colarm
