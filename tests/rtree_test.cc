#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/rng.h"
#include "rtree/rtree.h"

namespace colarm {
namespace {

Rect RandomBox(Rng& rng, uint32_t dims, uint32_t domain, uint32_t max_extent) {
  Rect box = Rect::MakeEmpty(dims);
  for (uint32_t d = 0; d < dims; ++d) {
    ValueId lo = static_cast<ValueId>(rng.Uniform(domain));
    ValueId hi = static_cast<ValueId>(
        std::min<uint64_t>(domain - 1, lo + rng.Uniform(max_extent)));
    box.SetInterval(d, lo, hi);
  }
  return box;
}

std::vector<RTreeEntry> RandomEntries(uint64_t seed, uint32_t count,
                                      uint32_t dims, uint32_t domain,
                                      uint32_t max_extent) {
  Rng rng(seed);
  std::vector<RTreeEntry> entries;
  for (uint32_t i = 0; i < count; ++i) {
    entries.push_back({RandomBox(rng, dims, domain, max_extent), i,
                       static_cast<uint32_t>(rng.Uniform(1000))});
  }
  return entries;
}

std::set<uint32_t> BruteForceSearch(const std::vector<RTreeEntry>& entries,
                                    const Rect& query) {
  std::set<uint32_t> hits;
  for (const RTreeEntry& e : entries) {
    if (query.Intersects(e.box)) hits.insert(e.id);
  }
  return hits;
}

std::set<uint32_t> TreeSearch(const RTree& tree, const Rect& query) {
  std::set<uint32_t> hits;
  tree.Search(query, [&hits](const RTreeEntry& e, bool) { hits.insert(e.id); });
  return hits;
}

using RTreeParam = std::tuple<uint64_t, uint32_t, uint32_t>;  // seed, n, dims

class RTreeSearchTest : public ::testing::TestWithParam<RTreeParam> {};

TEST_P(RTreeSearchTest, MatchesBruteForceAndKeepsInvariants) {
  auto [seed, count, dims] = GetParam();
  auto entries = RandomEntries(seed, count, dims, 40, 8);
  RTree tree(dims);
  for (const RTreeEntry& e : entries) tree.Insert(e);
  EXPECT_EQ(tree.size(), count);
  EXPECT_TRUE(tree.CheckInvariants());

  Rng rng(seed ^ 0xabcdef);
  for (int q = 0; q < 25; ++q) {
    Rect query = RandomBox(rng, dims, 40, 15);
    EXPECT_EQ(TreeSearch(tree, query), BruteForceSearch(entries, query));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RTreeSearchTest,
                         ::testing::Values(RTreeParam{1, 10, 2},
                                           RTreeParam{2, 100, 2},
                                           RTreeParam{3, 500, 3},
                                           RTreeParam{4, 300, 5},
                                           RTreeParam{5, 200, 8},
                                           RTreeParam{6, 64, 1},
                                           RTreeParam{7, 1000, 2}));

TEST(RTreeTest, EmptyTreeSearch) {
  RTree tree(3);
  Rect query = Rect::FullDomain(Schema({{"a", {"x", "y"}},
                                        {"b", {"x", "y"}},
                                        {"c", {"x", "y"}}}));
  EXPECT_TRUE(TreeSearch(tree, query).empty());
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.height(), 1u);
}

TEST(RTreeTest, ContainedFlagIsCorrect) {
  RTree tree(2);
  Rect inner = Rect::MakeEmpty(2);
  inner.SetInterval(0, 2, 3);
  inner.SetInterval(1, 2, 3);
  Rect crossing = Rect::MakeEmpty(2);
  crossing.SetInterval(0, 0, 9);
  crossing.SetInterval(1, 2, 3);
  tree.Insert({inner, 1, 10});
  tree.Insert({crossing, 2, 10});

  Rect query = Rect::MakeEmpty(2);
  query.SetInterval(0, 1, 5);
  query.SetInterval(1, 1, 5);
  std::map<uint32_t, bool> contained;
  tree.Search(query, [&](const RTreeEntry& e, bool c) {
    contained[e.id] = c;
  });
  ASSERT_EQ(contained.size(), 2u);
  EXPECT_TRUE(contained[1]);
  EXPECT_FALSE(contained[2]);
}

TEST(RTreeTest, SupportedSearchPrunesByCount) {
  const uint32_t dims = 2;
  auto entries = RandomEntries(42, 400, dims, 30, 6);
  RTree tree(dims);
  for (const RTreeEntry& e : entries) tree.Insert(e);

  Rng rng(43);
  for (int q = 0; q < 20; ++q) {
    Rect query = RandomBox(rng, dims, 30, 12);
    uint32_t min_count = static_cast<uint32_t>(rng.Uniform(1200));
    std::set<uint32_t> expected;
    for (const RTreeEntry& e : entries) {
      if (e.count >= min_count && query.Intersects(e.box)) {
        expected.insert(e.id);
      }
    }
    std::set<uint32_t> actual;
    RTree::SearchStats stats;
    tree.SearchSupported(query, min_count,
                         [&](const RTreeEntry& e, bool) { actual.insert(e.id); },
                         &stats);
    EXPECT_EQ(actual, expected);
  }
}

TEST(RTreeTest, SupportedSearchVisitsFewerNodes) {
  auto entries = RandomEntries(7, 800, 3, 50, 5);
  RTree tree(3);
  for (const RTreeEntry& e : entries) tree.Insert(e);
  Rect query = Rect::MakeEmpty(3);
  for (uint32_t d = 0; d < 3; ++d) query.SetInterval(d, 0, 49);

  RTree::SearchStats plain;
  tree.Search(query, [](const RTreeEntry&, bool) {}, &plain);
  RTree::SearchStats supported;
  tree.SearchSupported(query, 999,
                       [](const RTreeEntry&, bool) {}, &supported);
  EXPECT_GT(supported.entries_pruned_by_support, 0u);
  EXPECT_LE(supported.nodes_visited, plain.nodes_visited);
}

TEST(RTreeTest, RemoveDeletesExactly) {
  auto entries = RandomEntries(11, 120, 2, 25, 5);
  RTree tree(2);
  for (const RTreeEntry& e : entries) tree.Insert(e);

  // Remove every third entry and re-verify search + invariants.
  std::vector<RTreeEntry> kept;
  for (uint32_t i = 0; i < entries.size(); ++i) {
    if (i % 3 == 0) {
      EXPECT_TRUE(tree.Remove(entries[i].box, entries[i].id));
    } else {
      kept.push_back(entries[i]);
    }
  }
  EXPECT_EQ(tree.size(), kept.size());
  EXPECT_TRUE(tree.CheckInvariants());

  Rng rng(12);
  for (int q = 0; q < 15; ++q) {
    Rect query = RandomBox(rng, 2, 25, 10);
    EXPECT_EQ(TreeSearch(tree, query), BruteForceSearch(kept, query));
  }
}

TEST(RTreeTest, RemoveMissingReturnsFalse) {
  RTree tree(2);
  Rect box = Rect::MakeEmpty(2);
  box.SetInterval(0, 1, 2);
  box.SetInterval(1, 1, 2);
  tree.Insert({box, 5, 1});
  EXPECT_FALSE(tree.Remove(box, 6));     // wrong id
  Rect other = box;
  other.SetInterval(0, 0, 2);
  EXPECT_FALSE(tree.Remove(other, 5));   // wrong box
  EXPECT_TRUE(tree.Remove(box, 5));
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, RemoveAllThenReinsert) {
  auto entries = RandomEntries(13, 200, 2, 20, 4);
  RTree tree(2);
  for (const RTreeEntry& e : entries) tree.Insert(e);
  for (const RTreeEntry& e : entries) {
    ASSERT_TRUE(tree.Remove(e.box, e.id));
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.CheckInvariants());
  for (const RTreeEntry& e : entries) tree.Insert(e);
  EXPECT_EQ(tree.size(), entries.size());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, ForEachNodeLevelsAreConsistent) {
  auto entries = RandomEntries(17, 600, 2, 40, 6);
  RTree tree(2);
  for (const RTreeEntry& e : entries) tree.Insert(e);
  uint32_t max_level = 0;
  uint32_t leaf_level = UINT32_MAX;
  tree.ForEachNode([&](uint32_t level, const Rect&, bool leaf, uint32_t) {
    max_level = std::max(max_level, level);
    if (leaf) {
      if (leaf_level == UINT32_MAX) leaf_level = level;
      EXPECT_EQ(level, leaf_level);  // all leaves at same depth
    }
  });
  EXPECT_EQ(max_level + 1, tree.height());
}

TEST(RTreeTest, HeightGrowsLogarithmically) {
  auto entries = RandomEntries(19, 2000, 2, 60, 3);
  RTree tree(2);
  for (const RTreeEntry& e : entries) tree.Insert(e);
  EXPECT_GE(tree.height(), 3u);
  EXPECT_LE(tree.height(), 6u);
}

}  // namespace
}  // namespace colarm
