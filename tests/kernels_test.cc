#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "bitmap/bitmap.h"
#include "bitmap/kernels.h"
#include "common/cpu_features.h"
#include "common/rng.h"

namespace colarm {
namespace {

// Window lengths chosen to hit every tail shape: empty, sub-word, exactly
// the AVX2 (4-word) and AVX-512 (8-word) vector widths and their
// neighbours, the Harley-Seal 64-word block size and its neighbours, and
// sizes that leave every possible vector-body + scalar-tail split.
const std::vector<size_t> kWindowSizes = {
    0,  1,  2,  3,  4,  5,  7,  8,  9,  15, 16,  17,  31,   32,
    33, 63, 64, 65, 66, 96, 100, 127, 128, 129, 255, 256, 257, 1000};

// Word offsets that start a window mid-vector-register: a shard boundary
// produced by the thread pool can land anywhere, so the kernels must be
// exact from any alignment, not just from word 0 of an allocation.
const std::vector<size_t> kOffsets = {0, 1, 2, 3, 5, 7};

std::vector<const BitmapKernels*> AvailableTables() {
  std::vector<const BitmapKernels*> tables;
  for (int l = 0; l <= static_cast<int>(MaxSupportedSimdLevel()); ++l) {
    const BitmapKernels* table = KernelsForLevel(static_cast<SimdLevel>(l));
    EXPECT_NE(table, nullptr) << "supported level " << l << " has no table";
    if (table != nullptr) tables.push_back(table);
  }
  return tables;
}

std::vector<uint64_t> RandomWords(Rng* rng, size_t n) {
  std::vector<uint64_t> words(n);
  for (auto& w : words) w = rng->Next();
  return words;
}

// Guard sentinel wrapped around a window: catches any kernel that writes
// (or round-trips) a single word outside [p, p + n).
constexpr uint64_t kGuard = 0xdeadbeefcafef00dull;

class KernelsTest : public ::testing::Test {
 protected:
  Rng rng_{20260808};
};

TEST_F(KernelsTest, ScalarTableAlwaysAvailable) {
  EXPECT_EQ(KernelsForLevel(SimdLevel::kScalar), &kScalarKernels);
  EXPECT_TRUE(SimdLevelSupported(SimdLevel::kScalar));
}

TEST_F(KernelsTest, CountKernelsMatchScalarAtAnyOffsetAndLength) {
  const auto tables = AvailableTables();
  const size_t max_offset = kOffsets.back();
  const size_t slab = kWindowSizes.back() + max_offset;
  const auto a = RandomWords(&rng_, slab);
  const auto b = RandomWords(&rng_, slab);
  const auto c = RandomWords(&rng_, slab);
  for (size_t n : kWindowSizes) {
    for (size_t off : kOffsets) {
      const uint64_t* pa = a.data() + off;
      const uint64_t* pb = b.data() + off;
      const uint64_t* pc = c.data() + off;
      const uint64_t want_pop = kScalarKernels.popcount(pa, n);
      const uint64_t want_and = kScalarKernels.and_count(pa, pb, n);
      const uint64_t want_and3 = kScalarKernels.and3_count(pa, pb, pc, n);
      for (const BitmapKernels* table : tables) {
        EXPECT_EQ(table->popcount(pa, n), want_pop) << n << "+" << off;
        EXPECT_EQ(table->and_count(pa, pb, n), want_and) << n << "+" << off;
        EXPECT_EQ(table->and3_count(pa, pb, pc, n), want_and3)
            << n << "+" << off;
      }
    }
  }
}

TEST_F(KernelsTest, CountKernelsOnEmptyAndFullWindows) {
  for (size_t n : kWindowSizes) {
    const std::vector<uint64_t> zero(n, 0);
    const std::vector<uint64_t> full(n, ~0ull);
    for (const BitmapKernels* table : AvailableTables()) {
      EXPECT_EQ(table->popcount(zero.data(), n), 0u);
      EXPECT_EQ(table->popcount(full.data(), n), 64 * n);
      EXPECT_EQ(table->and_count(zero.data(), full.data(), n), 0u);
      EXPECT_EQ(table->and_count(full.data(), full.data(), n), 64 * n);
      EXPECT_EQ(table->and3_count(full.data(), full.data(), zero.data(), n),
                0u);
      EXPECT_EQ(table->and3_count(full.data(), full.data(), full.data(), n),
                64 * n);
    }
  }
}

TEST_F(KernelsTest, BooleanKernelsMatchScalarAndStayInsideWindow) {
  const auto tables = AvailableTables();
  for (size_t n : kWindowSizes) {
    for (size_t off : kOffsets) {
      const size_t slab = off + n + 2;  // one guard word each side
      auto src_slab = RandomWords(&rng_, slab);
      auto base_slab = RandomWords(&rng_, slab);
      const uint64_t* src = src_slab.data() + off + 1;

      struct Op {
        const char* name;
        void (*apply)(const BitmapKernels&, uint64_t*, const uint64_t*,
                      size_t);
      };
      const Op ops[] = {
          {"and", [](const BitmapKernels& k, uint64_t* d, const uint64_t* s,
                     size_t m) { k.and_inplace(d, s, m); }},
          {"or", [](const BitmapKernels& k, uint64_t* d, const uint64_t* s,
                    size_t m) { k.or_inplace(d, s, m); }},
          {"andnot", [](const BitmapKernels& k, uint64_t* d,
                        const uint64_t* s,
                        size_t m) { k.andnot_inplace(d, s, m); }},
      };
      for (const Op& op : ops) {
        std::vector<uint64_t> want = base_slab;
        op.apply(kScalarKernels, want.data() + off + 1, src, n);
        for (const BitmapKernels* table : tables) {
          std::vector<uint64_t> got = base_slab;
          got[off] = kGuard;
          got[off + n + 1] = kGuard;
          op.apply(*table, got.data() + off + 1, src, n);
          EXPECT_EQ(got[off], kGuard) << op.name << " " << n << "+" << off;
          EXPECT_EQ(got[off + n + 1], kGuard)
              << op.name << " " << n << "+" << off;
          EXPECT_EQ(std::memcmp(got.data() + off + 1, want.data() + off + 1,
                                n * sizeof(uint64_t)),
                    0)
              << op.name << " " << n << "+" << off;
        }
      }

      // and_into writes a third buffer; same guard discipline.
      std::vector<uint64_t> want_out(n + 2, 0);
      kScalarKernels.and_into(base_slab.data() + off + 1, src,
                              want_out.data() + 1, n);
      for (const BitmapKernels* table : tables) {
        std::vector<uint64_t> out(n + 2, kGuard);
        table->and_into(base_slab.data() + off + 1, src, out.data() + 1, n);
        EXPECT_EQ(out[0], kGuard) << n << "+" << off;
        EXPECT_EQ(out[n + 1], kGuard) << n << "+" << off;
        EXPECT_EQ(std::memcmp(out.data() + 1, want_out.data() + 1,
                              n * sizeof(uint64_t)),
                  0)
            << "and_into " << n << "+" << off;
      }
    }
  }
}

TEST_F(KernelsTest, LowerBoundMatchesScalarAcrossWindowShapes) {
  const auto tables = AvailableTables();
  for (size_t n : kWindowSizes) {
    if (n > 300) continue;  // the probe windows are small by construction
    // Sorted keys with duplicates and gaps; values spread so probes hit
    // below-front, between, on-duplicate, and past-back cases.
    std::vector<Tid> data(n);
    Tid v = 5;
    for (size_t i = 0; i < n; ++i) {
      data[i] = v;
      v += static_cast<Tid>(rng_.Uniform(3));  // 0 => duplicate run
    }
    std::vector<Tid> keys = {0, 5};
    if (n > 0) {
      keys.push_back(data.front());
      keys.push_back(data.back());
      keys.push_back(static_cast<Tid>(data.back() + 1));
      keys.push_back(data[n / 2]);
      if (data[n / 2] > 0) keys.push_back(static_cast<Tid>(data[n / 2] - 1));
    }
    for (int extra = 0; extra < 16; ++extra) {
      keys.push_back(static_cast<Tid>(rng_.Uniform(v + 2)));
    }
    for (Tid key : keys) {
      const size_t want = kScalarKernels.lower_bound(data.data(), n, key);
      for (const BitmapKernels* table : tables) {
        EXPECT_EQ(table->lower_bound(data.data(), n, key), want)
            << "n=" << n << " key=" << key;
      }
    }
  }
}

TEST_F(KernelsTest, LowerBoundHandlesUnsignedExtremes) {
  // Keys and data near 2^31 and 2^32 catch any signed-compare shortcut in
  // the vector scan (the AVX2 path biases to signed range on purpose).
  const std::vector<Tid> data = {0u,          1u,          0x7ffffffeu,
                                 0x7fffffffu, 0x80000000u, 0x80000001u,
                                 0xfffffffeu, 0xffffffffu};
  for (const BitmapKernels* table : AvailableTables()) {
    for (Tid key : data) {
      EXPECT_EQ(table->lower_bound(data.data(), data.size(), key),
                kScalarKernels.lower_bound(data.data(), data.size(), key))
          << key;
    }
    EXPECT_EQ(table->lower_bound(data.data(), data.size(), 0x80000002u), 6u);
    EXPECT_EQ(table->lower_bound(data.data(), 0, 42u), 0u);
  }
}

// Bitmap-level coverage: every dispatched level must preserve the
// tail-word slack invariant (bits past size() stay zero so Count and the
// range kernels are trustworthy) at non-multiple-of-64 sizes, and range
// operations split at arbitrary word boundaries must compose exactly.
TEST_F(KernelsTest, BitmapTailSlackAndShardSplitsAtEveryLevel) {
  const SimdLevel original = ActiveSimdLevel();
  for (int l = 0; l <= static_cast<int>(MaxSupportedSimdLevel()); ++l) {
    ASSERT_TRUE(SetActiveSimdLevel(static_cast<SimdLevel>(l)));
    for (uint32_t size : {1u, 63u, 64u, 65u, 100u, 129u, 1000u, 4097u}) {
      Bitmap a(size);
      Bitmap b(size);
      std::vector<bool> ref_a(size, false);
      std::vector<bool> ref_b(size, false);
      for (Tid t = 0; t < size; ++t) {
        if (rng_.Bernoulli(0.4)) {
          a.Set(t);
          ref_a[t] = true;
        }
        if (rng_.Bernoulli(0.6)) {
          b.Set(t);
          ref_b[t] = true;
        }
      }
      uint64_t want_and = 0;
      uint64_t want_a = 0;
      for (Tid t = 0; t < size; ++t) {
        want_a += ref_a[t];
        want_and += ref_a[t] && ref_b[t];
      }
      EXPECT_EQ(a.Count(), want_a) << size << " @level " << l;
      EXPECT_EQ(Bitmap::AndCount(a, b), want_and) << size << " @level " << l;

      // Shard the word range at every interior boundary a pool could pick:
      // per-shard counts must sum to the whole, mid-register or not.
      const size_t words = (size + 63) / 64;
      for (size_t split : {size_t{1}, words / 3, words / 2, words - 1}) {
        if (split == 0 || split >= words) continue;
        const uint32_t mid = static_cast<uint32_t>(split);
        const uint32_t end = static_cast<uint32_t>(words);
        EXPECT_EQ(a.CountRange(0, mid) + a.CountRange(mid, end), want_a)
            << size << " split " << split;
        EXPECT_EQ(Bitmap::AndCountRange(a, b, 0, mid) +
                      Bitmap::AndCountRange(a, b, mid, end),
                  want_and)
            << size << " split " << split;
      }

      Bitmap full(size);
      full.Fill();
      EXPECT_EQ(full.Count(), size) << size << " @level " << l;
      EXPECT_EQ(Bitmap::AndCount(full, a), want_a) << size << " @level " << l;
      Bitmap empty(size);
      EXPECT_EQ(Bitmap::AndCount(empty, full), 0u) << size << " @level " << l;
    }
  }
  SetActiveSimdLevel(original);
}

}  // namespace
}  // namespace colarm
