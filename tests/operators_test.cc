#include <gtest/gtest.h>

#include <set>

#include "plans/operators.h"
#include "test_util.h"

namespace colarm {
namespace {

using testing_util::RandomDataset;

// The index stores a pointer to the dataset, so the dataset's address must
// be stable: heap-allocate both.
struct Fixture {
  std::unique_ptr<Dataset> data;
  std::unique_ptr<MipIndex> owned_index;
  MipIndex& index;

  static Fixture Make(uint64_t seed, double primary) {
    auto data = std::make_unique<Dataset>(RandomDataset(seed, 150, 5, 4));
    auto built = MipIndex::Build(*data, {.primary_support = primary});
    EXPECT_TRUE(built.ok());
    auto owned = std::make_unique<MipIndex>(std::move(built.value()));
    MipIndex& ref = *owned;
    return Fixture{std::move(data), std::move(owned), ref};
  }
};

LocalizedQuery MakeQuery() {
  LocalizedQuery query;
  query.ranges = {{0, 0, 1}};
  query.minsupp = 0.3;
  query.minconf = 0.5;
  return query;
}

TEST(OperatorsTest, SearchFindsAllOverlappingMips) {
  Fixture fx = Fixture::Make(1, 0.2);
  LocalizedQuery query = MakeQuery();
  PlanContext ctx(fx.index, query, RuleGenOptions{});

  CandidateSet cands = OpSearch(&ctx);
  std::set<uint32_t> actual(cands.contained.begin(), cands.contained.end());
  actual.insert(cands.overlapped.begin(), cands.overlapped.end());

  std::set<uint32_t> expected;
  for (uint32_t id = 0; id < fx.index.num_mips(); ++id) {
    if (ctx.subset.box.Intersects(fx.index.mip(id).bbox)) expected.insert(id);
  }
  EXPECT_EQ(actual, expected);
  EXPECT_GT(ctx.rtree_stats.nodes_visited, 0u);
}

TEST(OperatorsTest, SearchSplitsContainmentCorrectly) {
  Fixture fx = Fixture::Make(2, 0.2);
  LocalizedQuery query = MakeQuery();
  PlanContext ctx(fx.index, query, RuleGenOptions{});
  CandidateSet cands = OpSearch(&ctx);
  for (uint32_t id : cands.contained) {
    EXPECT_TRUE(ctx.subset.box.Contains(fx.index.mip(id).bbox));
  }
  for (uint32_t id : cands.overlapped) {
    EXPECT_FALSE(ctx.subset.box.Contains(fx.index.mip(id).bbox));
    EXPECT_TRUE(ctx.subset.box.Intersects(fx.index.mip(id).bbox));
  }
}

TEST(OperatorsTest, SupportedSearchIsSubsetOfSearch) {
  Fixture fx = Fixture::Make(3, 0.15);
  LocalizedQuery query = MakeQuery();
  query.minsupp = 0.8;
  PlanContext ctx(fx.index, query, RuleGenOptions{});
  CandidateSet plain = OpSearch(&ctx);
  CandidateSet supported = OpSupportedSearch(&ctx);

  std::set<uint32_t> plain_set(plain.contained.begin(), plain.contained.end());
  plain_set.insert(plain.overlapped.begin(), plain.overlapped.end());
  std::set<uint32_t> supp_set(supported.contained.begin(),
                              supported.contained.end());
  supp_set.insert(supported.overlapped.begin(), supported.overlapped.end());

  EXPECT_LE(supp_set.size(), plain_set.size());
  for (uint32_t id : supp_set) {
    EXPECT_TRUE(plain_set.contains(id));
    EXPECT_GE(fx.index.mip(id).global_count, ctx.local_min_count);
  }
  // Everything pruned was genuinely below the bound (Lemma 4.4).
  for (uint32_t id : plain_set) {
    if (!supp_set.contains(id)) {
      EXPECT_LT(fx.index.mip(id).global_count, ctx.local_min_count);
    }
  }
}

TEST(OperatorsTest, EliminateComputesExactLocalCounts) {
  Fixture fx = Fixture::Make(4, 0.2);
  LocalizedQuery query = MakeQuery();
  PlanContext ctx(fx.index, query, RuleGenOptions{});
  CandidateSet cands = OpSearch(&ctx);
  std::vector<uint32_t> all = cands.contained;
  all.insert(all.end(), cands.overlapped.begin(), cands.overlapped.end());
  auto qualified = OpEliminate(&ctx, all);
  for (const QualifiedItemset& q : qualified) {
    uint32_t expected = 0;
    for (Tid t : ctx.subset.tids) {
      if (fx.index.dataset().ContainsAll(t, fx.index.mip(q.mip_id).items)) {
        ++expected;
      }
    }
    EXPECT_EQ(q.local_count, expected);
    EXPECT_GE(q.local_count, ctx.local_min_count);
  }
}

TEST(OperatorsTest, EliminateHonorsItemAttrFilter) {
  Fixture fx = Fixture::Make(5, 0.2);
  LocalizedQuery query = MakeQuery();
  query.item_attrs = {1, 2};
  PlanContext ctx(fx.index, query, RuleGenOptions{});
  CandidateSet cands = OpSearch(&ctx);
  std::vector<uint32_t> all = cands.contained;
  all.insert(all.end(), cands.overlapped.begin(), cands.overlapped.end());
  auto qualified = OpEliminate(&ctx, all);
  const Schema& schema = fx.index.dataset().schema();
  for (const QualifiedItemset& q : qualified) {
    for (ItemId item : fx.index.mip(q.mip_id).items) {
      AttrId a = schema.AttrOfItem(item);
      EXPECT_TRUE(a == 1 || a == 2);
    }
  }
}

TEST(OperatorsTest, QualifyContainedUsesGlobalCounts) {
  Fixture fx = Fixture::Make(6, 0.2);
  LocalizedQuery query = MakeQuery();
  PlanContext ctx(fx.index, query, RuleGenOptions{});
  CandidateSet cands = OpSupportedSearch(&ctx);
  auto qualified = QualifyContained(&ctx, cands.contained);
  for (const QualifiedItemset& q : qualified) {
    // Lemma 4.5: local count equals global count for contained MIPs.
    uint32_t expected = 0;
    for (Tid t : ctx.subset.tids) {
      if (fx.index.dataset().ContainsAll(t, fx.index.mip(q.mip_id).items)) {
        ++expected;
      }
    }
    EXPECT_EQ(q.local_count, fx.index.mip(q.mip_id).global_count);
    EXPECT_EQ(q.local_count, expected);
  }
}

TEST(OperatorsTest, UnionMergesAndSorts) {
  std::vector<QualifiedItemset> a = {{5, 1}, {1, 2}};
  std::vector<QualifiedItemset> b = {{3, 7}};
  auto merged = OpUnion(a, b);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].mip_id, 1u);
  EXPECT_EQ(merged[1].mip_id, 3u);
  EXPECT_EQ(merged[2].mip_id, 5u);
}

TEST(OperatorsTest, SupportedVerifyEqualsEliminateThenVerify) {
  Fixture fx = Fixture::Make(7, 0.2);
  LocalizedQuery query = MakeQuery();
  PlanContext ctx1(fx.index, query, RuleGenOptions{});
  CandidateSet cands1 = OpSearch(&ctx1);
  std::vector<uint32_t> all1 = cands1.contained;
  all1.insert(all1.end(), cands1.overlapped.begin(), cands1.overlapped.end());
  RuleSet via_ev;
  OpVerify(&ctx1, OpEliminate(&ctx1, all1), &via_ev);

  PlanContext ctx2(fx.index, query, RuleGenOptions{});
  CandidateSet cands2 = OpSearch(&ctx2);
  std::vector<uint32_t> all2 = cands2.contained;
  all2.insert(all2.end(), cands2.overlapped.begin(), cands2.overlapped.end());
  RuleSet via_vs;
  OpSupportedVerify(&ctx2, all2, &via_vs);

  EXPECT_TRUE(via_ev.SameAs(via_vs));
}

TEST(OperatorsTest, ArmMineMatchesEliminateQualification) {
  Fixture fx = Fixture::Make(8, 0.2);
  LocalizedQuery query = MakeQuery();
  PlanContext ctx1(fx.index, query, RuleGenOptions{});
  CandidateSet cands = OpSearch(&ctx1);
  std::vector<uint32_t> all = cands.contained;
  all.insert(all.end(), cands.overlapped.begin(), cands.overlapped.end());
  auto via_eliminate = OpEliminate(&ctx1, all);

  PlanContext ctx2(fx.index, query, RuleGenOptions{});
  auto via_arm = OpArmMine(&ctx2);
  EXPECT_GT(ctx2.local_cfis, 0u);

  ASSERT_EQ(via_arm.size(), via_eliminate.size());
  for (size_t i = 0; i < via_arm.size(); ++i) {
    EXPECT_EQ(via_arm[i].mip_id, via_eliminate[i].mip_id);
    EXPECT_EQ(via_arm[i].local_count, via_eliminate[i].local_count);
  }
}

TEST(OperatorsTest, FpGrowthArmVariantMatchesCharmArm) {
  Fixture fx = Fixture::Make(10, 0.2);
  LocalizedQuery query = MakeQuery();
  for (double minsupp : {0.25, 0.4, 0.6}) {
    query.minsupp = minsupp;
    PlanContext charm_ctx(fx.index, query, RuleGenOptions{});
    charm_ctx.arm_miner = ArmMinerKind::kCharm;
    auto via_charm = OpArmMine(&charm_ctx);

    PlanContext fp_ctx(fx.index, query, RuleGenOptions{});
    fp_ctx.arm_miner = ArmMinerKind::kFpGrowth;
    auto via_fp = OpArmMine(&fp_ctx);

    ASSERT_EQ(via_fp.size(), via_charm.size()) << "minsupp " << minsupp;
    for (size_t i = 0; i < via_fp.size(); ++i) {
      EXPECT_EQ(via_fp[i].mip_id, via_charm[i].mip_id);
      EXPECT_EQ(via_fp[i].local_count, via_charm[i].local_count);
    }
  }
}

TEST(OperatorsTest, FpGrowthArmHonorsItemAttrFilter) {
  Fixture fx = Fixture::Make(11, 0.2);
  LocalizedQuery query = MakeQuery();
  query.item_attrs = {1, 3};
  PlanContext ctx(fx.index, query, RuleGenOptions{});
  ctx.arm_miner = ArmMinerKind::kFpGrowth;
  auto qualified = OpArmMine(&ctx);
  const Schema& schema = fx.index.dataset().schema();
  for (const QualifiedItemset& q : qualified) {
    for (ItemId item : fx.index.mip(q.mip_id).items) {
      AttrId a = schema.AttrOfItem(item);
      EXPECT_TRUE(a == 1 || a == 3);
    }
  }
}

TEST(OperatorsTest, EmptySubsetShortCircuits) {
  Dataset data = RandomDataset(9, 50, 4, 4);
  auto index = MipIndex::Build(data, {.primary_support = 0.2});
  ASSERT_TRUE(index.ok());
  LocalizedQuery query;
  query.minsupp = 0.3;
  query.minconf = 0.5;
  // Choose an impossible conjunction by scanning for an absent pair.
  query.ranges = {{0, 3, 3}, {1, 3, 3}, {2, 3, 3}, {3, 3, 3}};
  PlanContext ctx(*index, query, RuleGenOptions{});
  if (ctx.subset.size() == 0) {
    auto arm = OpArmMine(&ctx);
    EXPECT_TRUE(arm.empty());
  }
}

}  // namespace
}  // namespace colarm
