#include <gtest/gtest.h>

#include "data/dataset.h"
#include "mining/itemset.h"

namespace colarm {
namespace {

Dataset MakeDataset() {
  Dataset dataset{Schema({
      {"a", {"x", "y"}},
      {"b", {"p", "q", "r"}},
  })};
  EXPECT_TRUE(dataset.AddRecord({0, 2}).ok());
  EXPECT_TRUE(dataset.AddRecord({1, 0}).ok());
  EXPECT_TRUE(dataset.AddRecord({0, 0}).ok());
  return dataset;
}

TEST(DatasetTest, AddAndRead) {
  Dataset dataset = MakeDataset();
  EXPECT_EQ(dataset.num_records(), 3u);
  EXPECT_EQ(dataset.Value(0, 0), 0);
  EXPECT_EQ(dataset.Value(0, 1), 2);
  EXPECT_EQ(dataset.Value(2, 1), 0);
}

TEST(DatasetTest, RejectsWrongArity) {
  Dataset dataset = MakeDataset();
  Status st = dataset.AddRecord({0});
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(dataset.num_records(), 3u);
}

TEST(DatasetTest, RejectsOutOfDomainValue) {
  Dataset dataset = MakeDataset();
  Status st = dataset.AddRecord({2, 0});
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(dataset.num_records(), 3u);
}

TEST(DatasetTest, RejectionLeavesColumnsConsistent) {
  Dataset dataset = MakeDataset();
  // The invalid value sits in the SECOND column; the first must not grow.
  Status st = dataset.AddRecord({0, 9});
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(dataset.Column(0).size(), dataset.Column(1).size());
}

TEST(DatasetTest, ContainsItem) {
  Dataset dataset = MakeDataset();
  const Schema& schema = dataset.schema();
  EXPECT_TRUE(dataset.ContainsItem(0, schema.ItemOf(0, 0)));
  EXPECT_FALSE(dataset.ContainsItem(0, schema.ItemOf(0, 1)));
  EXPECT_TRUE(dataset.ContainsItem(0, schema.ItemOf(1, 2)));
}

TEST(DatasetTest, ContainsAll) {
  Dataset dataset = MakeDataset();
  const Schema& schema = dataset.schema();
  Itemset both = {schema.ItemOf(0, 0), schema.ItemOf(1, 2)};
  EXPECT_TRUE(dataset.ContainsAll(0, both));
  EXPECT_FALSE(dataset.ContainsAll(1, both));
  EXPECT_TRUE(dataset.ContainsAll(1, Itemset{}));  // empty set always holds
}

TEST(DatasetTest, RecordItemsSortedOnePerAttribute) {
  Dataset dataset = MakeDataset();
  auto items = dataset.RecordItems(1);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_LT(items[0], items[1]);
  EXPECT_EQ(items[0], dataset.schema().ItemOf(0, 1));
  EXPECT_EQ(items[1], dataset.schema().ItemOf(1, 0));
}

}  // namespace
}  // namespace colarm
