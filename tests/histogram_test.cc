#include <gtest/gtest.h>

#include "data/histogram.h"

namespace colarm {
namespace {

Dataset MakeDataset() {
  Dataset dataset{Schema({
      {"a", {"v0", "v1", "v2", "v3"}},
      {"b", {"w0", "w1"}},
  })};
  // Column a: 0,0,1,2,2,2 — Column b: 0,1,0,1,0,1
  const ValueId rows[][2] = {{0, 0}, {0, 1}, {1, 0}, {2, 1}, {2, 0}, {2, 1}};
  for (const auto& row : rows) {
    EXPECT_TRUE(dataset.AddRecord({row[0], row[1]}).ok());
  }
  return dataset;
}

TEST(ValueHistogramTest, ExactCounts) {
  Dataset dataset = MakeDataset();
  ValueHistogram hist(dataset, 0);
  EXPECT_EQ(hist.total(), 6u);
  EXPECT_EQ(hist.count(0), 2u);
  EXPECT_EQ(hist.count(1), 1u);
  EXPECT_EQ(hist.count(2), 3u);
  EXPECT_EQ(hist.count(3), 0u);
}

TEST(ValueHistogramTest, RangeCount) {
  Dataset dataset = MakeDataset();
  ValueHistogram hist(dataset, 0);
  EXPECT_EQ(hist.RangeCount(0, 3), 6u);
  EXPECT_EQ(hist.RangeCount(1, 2), 4u);
  EXPECT_EQ(hist.RangeCount(3, 3), 0u);
  EXPECT_EQ(hist.RangeCount(2, 1), 0u);  // inverted interval
}

TEST(ValueHistogramTest, RangeCountClampsHighBound) {
  Dataset dataset = MakeDataset();
  ValueHistogram hist(dataset, 1);
  EXPECT_EQ(hist.RangeCount(0, 200), 6u);
}

TEST(ValueHistogramTest, Selectivity) {
  Dataset dataset = MakeDataset();
  ValueHistogram hist(dataset, 0);
  EXPECT_DOUBLE_EQ(hist.Selectivity(0, 0), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(hist.Selectivity(0, 3), 1.0);
}

TEST(DatasetHistogramsTest, CoversAllAttributes) {
  Dataset dataset = MakeDataset();
  DatasetHistograms hists(dataset);
  EXPECT_EQ(hists.num_attributes(), 2u);
  EXPECT_EQ(hists.attribute(1).count(0), 3u);
  EXPECT_EQ(hists.attribute(1).count(1), 3u);
}

TEST(JointHistogramTest, ExactPairCounts) {
  Dataset dataset = MakeDataset();
  JointHistogram joint(dataset, 0, 1);
  // Rows: (0,0),(0,1),(1,0),(2,1),(2,0),(2,1).
  EXPECT_EQ(joint.RangeCount(0, 0, 0, 0), 1u);
  EXPECT_EQ(joint.RangeCount(2, 2, 1, 1), 2u);
  EXPECT_EQ(joint.RangeCount(0, 3, 0, 1), 6u);
  EXPECT_EQ(joint.RangeCount(3, 3, 0, 1), 0u);
  EXPECT_EQ(joint.RangeCount(1, 0, 0, 1), 0u);  // inverted
  EXPECT_DOUBLE_EQ(joint.Selectivity(2, 2, 0, 1), 0.5);
}

TEST(JointHistogramTest, ClampsOutOfRangeBounds) {
  Dataset dataset = MakeDataset();
  JointHistogram joint(dataset, 0, 1);
  EXPECT_EQ(joint.RangeCount(0, 200, 0, 200), 6u);
}

TEST(DatasetHistogramsTest, JointBuiltWithinBudget) {
  Dataset dataset = MakeDataset();
  DatasetHistograms hists(dataset);  // 4x2 = 8 cells <= default budget
  EXPECT_EQ(hists.num_joint(), 1u);
  ASSERT_NE(hists.joint(0, 1), nullptr);
  EXPECT_NE(hists.joint(1, 0), nullptr);  // unordered lookup
  EXPECT_EQ(hists.joint(0, 0), nullptr);
}

TEST(DatasetHistogramsTest, JointBudgetZeroDisables) {
  Dataset dataset = MakeDataset();
  HistogramOptions options;
  options.max_joint_cells = 0;
  DatasetHistograms hists(dataset, options);
  EXPECT_EQ(hists.num_joint(), 0u);
  EXPECT_EQ(hists.joint(0, 1), nullptr);
}

}  // namespace
}  // namespace colarm
