#include <gtest/gtest.h>

#include "core/query_parser.h"
#include "data/salary_dataset.h"

namespace colarm {
namespace {

class QueryParserTest : public ::testing::Test {
 protected:
  Dataset data_ = MakeSalaryDataset();
  const Schema& schema() const { return data_.schema(); }
};

TEST_F(QueryParserTest, FullQuery) {
  auto query = ParseQuery(schema(),
                          "REPORT LOCALIZED ASSOCIATION RULES "
                          "FROM salary "
                          "WHERE RANGE Location = {Seattle} AND Gender = {F} "
                          "AND ITEM ATTRIBUTES {Age, Salary} "
                          "HAVING minsupport = 0.75 AND minconfidence = 0.9;");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_EQ(query->ranges.size(), 2u);
  EXPECT_EQ(query->ranges[0].attr, 2u);
  EXPECT_EQ(query->ranges[0].lo, 2);
  EXPECT_EQ(query->ranges[0].hi, 2);
  EXPECT_EQ(query->ranges[1].attr, 3u);
  EXPECT_EQ(query->item_attrs, (std::vector<AttrId>{4, 5}));
  EXPECT_DOUBLE_EQ(query->minsupp, 0.75);
  EXPECT_DOUBLE_EQ(query->minconf, 0.9);
}

TEST_F(QueryParserTest, PercentThresholdsAndCaseInsensitiveKeywords) {
  auto query = ParseQuery(schema(),
                          "report localized association rules "
                          "where range Gender = {M} "
                          "having MINSUPPORT = 60% and MinConfidence = 85%");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_DOUBLE_EQ(query->minsupp, 0.6);
  EXPECT_DOUBLE_EQ(query->minconf, 0.85);
  EXPECT_TRUE(query->item_attrs.empty());
}

TEST_F(QueryParserTest, MultiValueContiguousRange) {
  auto query = ParseQuery(schema(),
                          "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE "
                          "Age = {20-30, 30-40} "
                          "HAVING minsupport = 0.5 AND minconfidence = 0.5;");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_EQ(query->ranges.size(), 1u);
  EXPECT_EQ(query->ranges[0].lo, 0);
  EXPECT_EQ(query->ranges[0].hi, 1);
}

TEST_F(QueryParserTest, OutOfOrderValueListStillContiguous) {
  auto query = ParseQuery(schema(),
                          "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE "
                          "Age = {30-40, 20-30} "
                          "HAVING minsupport = 0.5 AND minconfidence = 0.5;");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->ranges[0].lo, 0);
  EXPECT_EQ(query->ranges[0].hi, 1);
}

TEST_F(QueryParserTest, NonContiguousValuesRejected) {
  auto query = ParseQuery(schema(),
                          "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE "
                          "Age = {20-30, 40-50} "
                          "HAVING minsupport = 0.5 AND minconfidence = 0.5;");
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(QueryParserTest, QuotedLabels) {
  auto query = ParseQuery(schema(),
                          "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE "
                          "Title = {\"Sw Engg\"} "
                          "HAVING minsupport = 0.5 AND minconfidence = 0.5;");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->ranges[0].attr, 1u);
  EXPECT_EQ(query->ranges[0].lo, 1);
}

TEST_F(QueryParserTest, UnknownAttributeRejected) {
  auto query = ParseQuery(schema(),
                          "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE "
                          "Bogus = {x} "
                          "HAVING minsupport = 0.5 AND minconfidence = 0.5;");
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kNotFound);
}

TEST_F(QueryParserTest, UnknownValueRejected) {
  auto query = ParseQuery(schema(),
                          "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE "
                          "Gender = {X} "
                          "HAVING minsupport = 0.5 AND minconfidence = 0.5;");
  EXPECT_FALSE(query.ok());
}

TEST_F(QueryParserTest, MissingHavingRejected) {
  auto query = ParseQuery(schema(),
                          "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE "
                          "Gender = {M}");
  EXPECT_FALSE(query.ok());
}

TEST_F(QueryParserTest, MissingOneThresholdRejected) {
  auto query = ParseQuery(schema(),
                          "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE "
                          "Gender = {M} HAVING minsupport = 0.5 AND "
                          "minsupport = 0.6");
  EXPECT_FALSE(query.ok());
}

TEST_F(QueryParserTest, MalformedThresholdRejected) {
  auto query = ParseQuery(schema(),
                          "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE "
                          "Gender = {M} HAVING minsupport = abc AND "
                          "minconfidence = 0.5");
  EXPECT_FALSE(query.ok());
}

TEST_F(QueryParserTest, TrailingGarbageRejected) {
  auto query = ParseQuery(schema(),
                          "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE "
                          "Gender = {M} HAVING minsupport = 0.5 AND "
                          "minconfidence = 0.5; bogus");
  EXPECT_FALSE(query.ok());
}

TEST_F(QueryParserTest, UnterminatedStringRejected) {
  auto query = ParseQuery(schema(),
                          "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE "
                          "Title = {\"Sw Engg} "
                          "HAVING minsupport = 0.5 AND minconfidence = 0.5");
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kParseError);
}

TEST_F(QueryParserTest, ShortThresholdAliases) {
  auto query = ParseQuery(schema(),
                          "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE "
                          "Gender = {M} HAVING minsupp = 0.5 AND "
                          "minconf = 0.7");
  ASSERT_TRUE(query.ok());
  EXPECT_DOUBLE_EQ(query->minsupp, 0.5);
  EXPECT_DOUBLE_EQ(query->minconf, 0.7);
}

// --- Negative paths: every malformed input must come back as a Status ---

TEST_F(QueryParserTest, MissingOpeningBraceRejected) {
  auto query = ParseQuery(schema(),
                          "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE "
                          "Gender = M} "
                          "HAVING minsupport = 0.5 AND minconfidence = 0.5");
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kParseError);
}

TEST_F(QueryParserTest, MissingClosingBraceRejected) {
  auto query = ParseQuery(schema(),
                          "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE "
                          "Gender = {M "
                          "HAVING minsupport = 0.5 AND minconfidence = 0.5");
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kParseError);
}

TEST_F(QueryParserTest, MissingEqualsInRangeRejected) {
  auto query = ParseQuery(schema(),
                          "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE "
                          "Gender {M} "
                          "HAVING minsupport = 0.5 AND minconfidence = 0.5");
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kParseError);
}

TEST_F(QueryParserTest, EmptyValueListRejected) {
  auto query = ParseQuery(schema(),
                          "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE "
                          "Gender = {} "
                          "HAVING minsupport = 0.5 AND minconfidence = 0.5");
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kParseError);
}

TEST_F(QueryParserTest, DanglingCommaInValueListRejected) {
  auto query = ParseQuery(schema(),
                          "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE "
                          "Age = {20-30,} "
                          "HAVING minsupport = 0.5 AND minconfidence = 0.5");
  EXPECT_FALSE(query.ok());
}

TEST_F(QueryParserTest, UnknownItemAttributeRejected) {
  auto query = ParseQuery(schema(),
                          "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE "
                          "Gender = {M} AND ITEM ATTRIBUTES {Bogus} "
                          "HAVING minsupport = 0.5 AND minconfidence = 0.5");
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kNotFound);
}

TEST_F(QueryParserTest, EmptyItemAttributeListRejected) {
  auto query = ParseQuery(schema(),
                          "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE "
                          "Gender = {M} AND ITEM ATTRIBUTES {} "
                          "HAVING minsupport = 0.5 AND minconfidence = 0.5");
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kParseError);
}

TEST_F(QueryParserTest, DuplicateItemAttributeRejected) {
  auto query = ParseQuery(schema(),
                          "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE "
                          "Gender = {M} AND ITEM ATTRIBUTES {Age, Age} "
                          "HAVING minsupport = 0.5 AND minconfidence = 0.5");
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(QueryParserTest, DuplicateRangeAttributeRejected) {
  auto query = ParseQuery(schema(),
                          "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE "
                          "Gender = {M} AND Gender = {F} "
                          "HAVING minsupport = 0.5 AND minconfidence = 0.5");
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(QueryParserTest, ThresholdAboveOneRejected) {
  auto query = ParseQuery(schema(),
                          "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE "
                          "Gender = {M} "
                          "HAVING minsupport = 1.5 AND minconfidence = 0.5");
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(QueryParserTest, ZeroThresholdRejected) {
  auto query = ParseQuery(schema(),
                          "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE "
                          "Gender = {M} "
                          "HAVING minsupport = 0.5 AND minconfidence = 0");
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(QueryParserTest, NegativeThresholdRejected) {
  auto query = ParseQuery(schema(),
                          "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE "
                          "Gender = {M} "
                          "HAVING minsupport = -0.5 AND minconfidence = 0.5");
  EXPECT_FALSE(query.ok());
}

TEST_F(QueryParserTest, PercentThresholdAboveHundredRejected) {
  auto query = ParseQuery(schema(),
                          "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE "
                          "Gender = {M} "
                          "HAVING minsupport = 150% AND minconfidence = 0.5");
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(QueryParserTest, EmptyInputRejected) {
  EXPECT_FALSE(ParseQuery(schema(), "").ok());
  EXPECT_FALSE(ParseQuery(schema(), "   \t\n  ").ok());
}

TEST_F(QueryParserTest, UnexpectedCharacterRejected) {
  auto query = ParseQuery(schema(),
                          "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE "
                          "Gender = {M} HAVING minsupport = 0.5 & "
                          "minconfidence = 0.5");
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kParseError);
}

TEST_F(QueryParserTest, ConstraintClausesParsed) {
  auto query = ParseQuery(
      schema(),
      "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Location = {Seattle} "
      "AND CONTAIN { Gender = F, Company = Google } "
      "AND EXCLUDE { Salary = 30K-60K } "
      "AND ANTECEDENT ATTRIBUTES { Age, Location } "
      "HAVING minsupport = 0.5 AND minconfidence = 0.6 "
      "AND minlift = 1.2 AND mincosine = 0.4 AND minkulczynski = 60%;");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  // Item lists come back sorted and duplicate-free (canonical form).
  Itemset contain = {schema().ItemOf(0, 1), schema().ItemOf(3, 1)};
  EXPECT_EQ(query->constraints.must_contain, contain);
  EXPECT_EQ(query->constraints.must_exclude,
            (Itemset{schema().ItemOf(5, 0)}));
  EXPECT_EQ(query->constraints.antecedent_only, (std::vector<AttrId>{2, 4}));
  EXPECT_DOUBLE_EQ(query->constraints.min_lift, 1.2);
  EXPECT_DOUBLE_EQ(query->constraints.min_cosine, 0.4);
  EXPECT_DOUBLE_EQ(query->constraints.min_kulczynski, 0.6);
  EXPECT_TRUE(query->Validate(schema()).ok());
}

TEST_F(QueryParserTest, DuplicateConstraintItemsCoalesced) {
  auto query = ParseQuery(
      schema(),
      "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Location = {Seattle} "
      "AND CONTAIN { Gender = F, Gender = F } "
      "AND ANTECEDENT ATTRIBUTES { Age, Age } "
      "HAVING minsupport = 0.5 AND minconfidence = 0.6;");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->constraints.must_contain,
            (Itemset{schema().ItemOf(3, 1)}));
  EXPECT_EQ(query->constraints.antecedent_only, (std::vector<AttrId>{4}));
}

TEST_F(QueryParserTest, UnknownValueInContainListRejected) {
  auto query = ParseQuery(
      schema(),
      "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Location = {Seattle} "
      "AND CONTAIN { Gender = X } "
      "HAVING minsupport = 0.5 AND minconfidence = 0.6;");
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kNotFound);
}

TEST_F(QueryParserTest, MissingEqualsInExcludeListRejected) {
  auto query = ParseQuery(
      schema(),
      "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Location = {Seattle} "
      "AND EXCLUDE { Gender F } "
      "HAVING minsupport = 0.5 AND minconfidence = 0.6;");
  EXPECT_FALSE(query.ok());
}

TEST_F(QueryParserTest, NonLabelValueInContainListNamesTheClause) {
  auto query = ParseQuery(
      schema(),
      "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Location = {Seattle} "
      "AND CONTAIN { Gender = { } "
      "HAVING minsupport = 0.5 AND minconfidence = 0.6;");
  ASSERT_FALSE(query.ok());
  EXPECT_NE(query.status().message().find("CONTAIN"), std::string::npos)
      << query.status().ToString();
}

TEST_F(QueryParserTest, UnknownAttrInAntecedentAttributesRejected) {
  auto query = ParseQuery(
      schema(),
      "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Location = {Seattle} "
      "AND ANTECEDENT ATTRIBUTES { Shoesize } "
      "HAVING minsupport = 0.5 AND minconfidence = 0.6;");
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kNotFound);
}

TEST_F(QueryParserTest, UnknownMeasureThresholdListsTheValidOnes) {
  auto query = ParseQuery(
      schema(),
      "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Location = {Seattle} "
      "HAVING minsupport = 0.5 AND minconfidence = 0.6 AND minwobble = 1;");
  ASSERT_FALSE(query.ok());
  EXPECT_NE(query.status().message().find("minkulczynski"),
            std::string::npos)
      << query.status().ToString();
  EXPECT_NE(query.status().message().find("minantsupp"), std::string::npos)
      << query.status().ToString();
}

TEST_F(QueryParserTest, AntecedentSupportFloorParsed) {
  auto query = ParseQuery(
      schema(),
      "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Location = {Seattle} "
      "HAVING minsupport = 0.5 AND minconfidence = 0.6 "
      "AND minantsupp = 0.4;");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_DOUBLE_EQ(query->constraints.min_antecedent_supp, 0.4);
  EXPECT_TRUE(query->constraints.HasMeasures());
  EXPECT_TRUE(query->Validate(schema()).ok());

  // Long-form alias and percent form land on the same floor.
  auto alias = ParseQuery(
      schema(),
      "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Location = {Seattle} "
      "HAVING minsupport = 0.5 AND minconfidence = 0.6 "
      "AND minantsupport = 40%;");
  ASSERT_TRUE(alias.ok()) << alias.status().ToString();
  EXPECT_DOUBLE_EQ(alias->constraints.min_antecedent_supp, 0.4);
}

TEST_F(QueryParserTest, AntecedentSupportFloorAboveOneRejected) {
  // A support fraction cannot exceed 1; the parser's validation pass
  // catches it with the clause's own name in the message.
  auto query = ParseQuery(
      schema(),
      "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Location = {Seattle} "
      "HAVING minsupport = 0.5 AND minconfidence = 0.6 "
      "AND minantsupp = 1.5;");
  ASSERT_FALSE(query.ok());
  EXPECT_NE(query.status().message().find("minantsupp"), std::string::npos)
      << query.status().ToString();
}

TEST_F(QueryParserTest, MeasureFloorsAloneDontSatisfyRequiredThresholds) {
  auto query = ParseQuery(
      schema(),
      "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Location = {Seattle} "
      "HAVING minlift = 1.0 AND mincosine = 0.5;");
  EXPECT_FALSE(query.ok());
}

TEST_F(QueryParserTest, ParsedQueryValidates) {
  auto query = ParseQuery(schema(),
                          "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE "
                          "Location = {Boston, SFO} "
                          "HAVING minsupport = 0.4 AND minconfidence = 0.6");
  ASSERT_TRUE(query.ok());
  EXPECT_TRUE(query->Validate(schema()).ok());
}

}  // namespace
}  // namespace colarm
