#include <gtest/gtest.h>

#include "data/salary_dataset.h"
#include "data/synthetic.h"
#include "mining/brute_force.h"
#include "mining/charm.h"
#include "mining/eclat.h"
#include "test_util.h"

namespace colarm {
namespace {

using testing_util::RandomDataset;

void ExpectSameClosedSets(std::vector<ClosedItemset> actual,
                          std::vector<ClosedItemset> expected) {
  SortClosedItemsets(&actual);
  SortClosedItemsets(&expected);
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].items, expected[i].items);
    EXPECT_EQ(actual[i].tids, expected[i].tids);
  }
}

using CharmParam = std::tuple<uint64_t, uint32_t, uint32_t, uint32_t, uint32_t>;

class CharmEquivalenceTest : public ::testing::TestWithParam<CharmParam> {};

TEST_P(CharmEquivalenceTest, MatchesBruteForceClosedSets) {
  auto [seed, records, attrs, domain, min_count] = GetParam();
  Dataset data = RandomDataset(seed, records, attrs, domain);
  ExpectSameClosedSets(MineCharm(data, min_count),
                       MineClosedBruteForce(data, min_count));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CharmEquivalenceTest,
    ::testing::Values(CharmParam{1, 40, 4, 3, 4}, CharmParam{2, 40, 4, 3, 12},
                      CharmParam{3, 60, 5, 2, 6}, CharmParam{4, 60, 5, 2, 30},
                      CharmParam{5, 30, 6, 3, 3}, CharmParam{6, 80, 3, 4, 8},
                      CharmParam{7, 100, 4, 2, 55},
                      CharmParam{8, 50, 5, 3, 20},
                      CharmParam{9, 25, 7, 2, 4},
                      CharmParam{10, 70, 4, 4, 10},
                      CharmParam{11, 120, 5, 3, 15},
                      CharmParam{12, 90, 6, 2, 45}));

TEST(CharmTest, EveryOutputIsClosedAndFrequent) {
  Dataset data = RandomDataset(77, 120, 6, 3);
  const uint32_t min_count = 12;
  auto closed = MineCharm(data, min_count);
  for (const ClosedItemset& c : closed) {
    EXPECT_GE(c.count(), min_count);
    EXPECT_EQ(CountSupport(data, c.items), c.count());
    // No single-item extension may preserve the support (closedness).
    for (ItemId item = 0; item < data.schema().num_items(); ++item) {
      if (std::binary_search(c.items.begin(), c.items.end(), item)) continue;
      Itemset extended = ItemsetUnion(c.items, Itemset{item});
      EXPECT_LT(CountSupport(data, extended), c.count())
          << "itemset not closed under item " << item;
    }
  }
}

TEST(CharmTest, TidsetsAreExact) {
  Dataset data = RandomDataset(42, 60, 5, 3);
  auto closed = MineCharm(data, 10);
  ASSERT_FALSE(closed.empty());
  for (const ClosedItemset& c : closed) {
    Tidset expected;
    for (Tid t = 0; t < data.num_records(); ++t) {
      if (data.ContainsAll(t, c.items)) expected.push_back(t);
    }
    EXPECT_EQ(c.tids, expected);
  }
}

TEST(CharmTest, NoDuplicateItemsets) {
  Dataset data = RandomDataset(31, 90, 5, 3);
  auto closed = MineCharm(data, 9);
  SortClosedItemsets(&closed);
  for (size_t i = 1; i < closed.size(); ++i) {
    EXPECT_NE(closed[i - 1].items, closed[i].items);
  }
}

TEST(CharmTest, SinkStreamingMatchesMaterialized) {
  Dataset data = RandomDataset(55, 70, 4, 3);
  VerticalView vertical(data);
  std::vector<ClosedItemset> streamed;
  MineCharm(vertical, 7, [&](const Itemset& items, const Tidset& tids) {
    streamed.push_back({items, tids});
  });
  ExpectSameClosedSets(std::move(streamed), MineCharm(vertical, 7));
}

TEST(CharmTest, ClosedSetsCompressFrequentSets) {
  Dataset data = RandomDataset(66, 100, 5, 2);
  const uint32_t min_count = 20;
  auto closed = MineCharm(data, min_count);
  auto frequent = MineEclat(data, min_count);
  EXPECT_LE(closed.size(), frequent.size());
  // Every frequent itemset's support must be recoverable as the max
  // support among closed supersets.
  for (const FrequentItemset& f : frequent) {
    uint32_t best = 0;
    for (const ClosedItemset& c : closed) {
      if (ItemsetIsSubset(f.items, c.items)) {
        best = std::max(best, c.count());
      }
    }
    EXPECT_EQ(best, f.count) << "closure property violated";
  }
}

TEST(CharmTest, SalaryClosedSetAroundRG) {
  Dataset data = MakeSalaryDataset();
  auto closed = MineCharm(data, 5);
  const Schema& schema = data.schema();
  // (Age=20-30, Salary=90K-120K) supports records 2..6 — closed at count 5.
  Itemset rg = {schema.ItemOf(4, 0), schema.ItemOf(5, 2)};
  bool found = false;
  for (const ClosedItemset& c : closed) {
    if (c.items == rg) {
      found = true;
      EXPECT_EQ(c.count(), 5u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(CharmTest, MushroomLikePresetRuns) {
  auto data = GenerateSynthetic(MushroomLikeConfig(0.02));
  ASSERT_TRUE(data.ok());
  auto closed = MineCharm(*data, MinCount(0.3, data->num_records()));
  EXPECT_FALSE(closed.empty());
}

}  // namespace
}  // namespace colarm
