# Configures a thread-sanitized build of the tree in BUILD_DIR, builds the
# cache-concurrency suite (parallel batch executor sharing the session
# cache, warm-vs-cold equivalence across thread counts), and runs it.
# Driven by the `tsan_equivalence` ctest entry (see tests/CMakeLists.txt);
# a failure at any step fails the test. Expects SOURCE_DIR and BUILD_DIR.

foreach(var SOURCE_DIR BUILD_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "tsan_equivalence.cmake requires -D${var}=...")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BUILD_DIR}
          -DCOLARM_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  RESULT_VARIABLE configure_result)
if(NOT configure_result EQUAL 0)
  message(FATAL_ERROR "TSan configure failed")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BUILD_DIR} --parallel
          --target batch_test session_cache_equivalence_test constraint_test
                   query_cache_test cache_persist_test
  RESULT_VARIABLE build_result)
if(NOT build_result EQUAL 0)
  message(FATAL_ERROR "TSan build failed")
endif()

foreach(test batch_test session_cache_equivalence_test constraint_test
             query_cache_test cache_persist_test)
  execute_process(
    COMMAND ${BUILD_DIR}/tests/${test}
    RESULT_VARIABLE run_result)
  if(NOT run_result EQUAL 0)
    message(FATAL_ERROR "${test} failed under ThreadSanitizer")
  endif()
endforeach()
