#include <gtest/gtest.h>

#include "data/csv_reader.h"

namespace colarm {
namespace {

TEST(CsvReaderTest, CategoricalColumns) {
  const std::string csv =
      "city,product\n"
      "boston,apple\n"
      "seattle,pear\n"
      "boston,apple\n";
  auto data = ReadCsvString(csv, CsvOptions{});
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->num_records(), 3u);
  EXPECT_EQ(data->schema().attribute(0).name, "city");
  EXPECT_EQ(data->schema().attribute(0).values,
            (std::vector<std::string>{"boston", "seattle"}));
  EXPECT_EQ(data->Value(2, 0), 0);
  EXPECT_EQ(data->Value(1, 1), 1);
}

TEST(CsvReaderTest, NumericColumnGetsDiscretized) {
  const std::string csv =
      "name,age\n"
      "a,10\n"
      "b,20\n"
      "c,30\n"
      "d,40\n";
  CsvOptions options;
  options.numeric_bins = 2;
  auto data = ReadCsvString(csv, options);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->schema().attribute(1).domain_size(), 2u);
  EXPECT_EQ(data->Value(0, 1), 0);
  EXPECT_EQ(data->Value(3, 1), 1);
}

TEST(CsvReaderTest, MixedNumericStringsStayCategorical) {
  const std::string csv =
      "code\n"
      "12\n"
      "x9\n"
      "12\n";
  auto data = ReadCsvString(csv, CsvOptions{});
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->schema().attribute(0).values,
            (std::vector<std::string>{"12", "x9"}));
}

TEST(CsvReaderTest, MissingValuesGetSentinel) {
  const std::string csv =
      "a,b\n"
      "x,1\n"
      ",2\n";
  auto data = ReadCsvString(csv, CsvOptions{});
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->schema().attribute(0).values[1], "<missing>");
  EXPECT_EQ(data->Value(1, 0), 1);
}

TEST(CsvReaderTest, NoHeaderSynthesizesNames) {
  const std::string csv = "x,y\nx,z\n";
  CsvOptions options;
  options.has_header = false;
  auto data = ReadCsvString(csv, options);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->schema().attribute(0).name, "col0");
  EXPECT_EQ(data->num_records(), 2u);
}

TEST(CsvReaderTest, CustomDelimiter) {
  const std::string csv = "a;b\nx;y\n";
  CsvOptions options;
  options.delimiter = ';';
  auto data = ReadCsvString(csv, options);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->num_attributes(), 2u);
}

TEST(CsvReaderTest, RaggedRowFails) {
  const std::string csv = "a,b\nx\n";
  auto data = ReadCsvString(csv, CsvOptions{});
  ASSERT_FALSE(data.ok());
  EXPECT_EQ(data.status().code(), StatusCode::kParseError);
}

TEST(CsvReaderTest, EmptyInputFails) {
  auto data = ReadCsvString("a,b\n", CsvOptions{});
  EXPECT_FALSE(data.ok());
}

TEST(CsvReaderTest, MissingFileFails) {
  auto data = ReadCsvFile("/nonexistent/path.csv", CsvOptions{});
  ASSERT_FALSE(data.ok());
  EXPECT_EQ(data.status().code(), StatusCode::kIoError);
}

TEST(CsvReaderTest, WhitespaceTrimmed) {
  const std::string csv = " a , b \n x , y \n";
  auto data = ReadCsvString(csv, CsvOptions{});
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->schema().attribute(0).name, "a");
  EXPECT_EQ(data->schema().attribute(0).values[0], "x");
}

// ---- RFC-4180 quote handling ----

TEST(CsvReaderTest, QuotedCellsDropQuotes) {
  const std::string csv =
      "city,product\n"
      "\"boston\",\"apple\"\n"
      "seattle,pear\n";
  auto data = ReadCsvString(csv, CsvOptions{});
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->schema().attribute(0).values,
            (std::vector<std::string>{"boston", "seattle"}));
}

TEST(CsvReaderTest, DelimiterInsideQuotes) {
  const std::string csv =
      "company,title\n"
      "\"Acme, Inc.\",engineer\n"
      "\"Globex, LLC\",manager\n";
  auto data = ReadCsvString(csv, CsvOptions{});
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->num_attributes(), 2u);
  EXPECT_EQ(data->schema().attribute(0).values,
            (std::vector<std::string>{"Acme, Inc.", "Globex, LLC"}));
}

TEST(CsvReaderTest, EscapedQuoteInsideQuotes) {
  const std::string csv =
      "name\n"
      "\"say \"\"hi\"\"\"\n"
      "plain\n";
  auto data = ReadCsvString(csv, CsvOptions{});
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->schema().attribute(0).values,
            (std::vector<std::string>{"say \"hi\"", "plain"}));
}

TEST(CsvReaderTest, NewlineInsideQuotes) {
  const std::string csv =
      "note,tag\n"
      "\"line one\nline two\",a\n"
      "short,b\n";
  auto data = ReadCsvString(csv, CsvOptions{});
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->num_records(), 2u);
  EXPECT_EQ(data->schema().attribute(0).values,
            (std::vector<std::string>{"line one\nline two", "short"}));
}

TEST(CsvReaderTest, WhitespacePreservedInsideQuotes) {
  const std::string csv =
      "a,b\n"
      "\" padded \", x \n";
  auto data = ReadCsvString(csv, CsvOptions{});
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->schema().attribute(0).values[0], " padded ");
  EXPECT_EQ(data->schema().attribute(1).values[0], "x");
}

TEST(CsvReaderTest, WhitespaceAroundQuotedSectionIgnored) {
  const std::string csv =
      "a,b\n"
      "  \"x\"  ,y\n";
  auto data = ReadCsvString(csv, CsvOptions{});
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->schema().attribute(0).values[0], "x");
}

TEST(CsvReaderTest, CrlfLineEndings) {
  const std::string csv = "a,b\r\nx,y\r\n\"q\",z\r\n";
  auto data = ReadCsvString(csv, CsvOptions{});
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->num_records(), 2u);
  EXPECT_EQ(data->schema().attribute(0).values,
            (std::vector<std::string>{"x", "q"}));
}

TEST(CsvReaderTest, QuotedEmptyCellIsEmptyNotMissingQuote) {
  const std::string csv =
      "a,b\n"
      "\"\",y\n";
  auto data = ReadCsvString(csv, CsvOptions{});
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->schema().attribute(0).values[0], "<missing>");
}

TEST(CsvReaderTest, UnterminatedQuoteFails) {
  const std::string csv =
      "a,b\n"
      "\"never closed,y\n";
  auto data = ReadCsvString(csv, CsvOptions{});
  ASSERT_FALSE(data.ok());
  EXPECT_EQ(data.status().code(), StatusCode::kParseError);
  EXPECT_NE(data.status().message().find("line 2"), std::string::npos);
}

TEST(CsvReaderTest, ContentAfterClosingQuoteFails) {
  const std::string csv =
      "a,b\n"
      "\"x\"tail,y\n";
  auto data = ReadCsvString(csv, CsvOptions{});
  ASSERT_FALSE(data.ok());
  EXPECT_EQ(data.status().code(), StatusCode::kParseError);
}

TEST(CsvReaderTest, QuoteMidFieldFails) {
  const std::string csv =
      "a,b\n"
      "x\"y\",z\n";
  auto data = ReadCsvString(csv, CsvOptions{});
  ASSERT_FALSE(data.ok());
  EXPECT_EQ(data.status().code(), StatusCode::kParseError);
}

TEST(CsvReaderTest, MultiLineCellKeepsLaterLineNumbersRight) {
  // The quoted cell spans lines 2-3, so the ragged row below it is line 4.
  const std::string csv =
      "a,b\n"
      "\"one\ntwo\",x\n"
      "lonely\n";
  auto data = ReadCsvString(csv, CsvOptions{});
  ASSERT_FALSE(data.ok());
  EXPECT_NE(data.status().message().find("line 4"), std::string::npos);
}

TEST(CsvReaderTest, BlankLinesStillSkippedAndFinalLineMayLackNewline) {
  const std::string csv = "a,b\n\n   \nx,y\nq,r";
  auto data = ReadCsvString(csv, CsvOptions{});
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->num_records(), 2u);
  EXPECT_EQ(data->schema().attribute(0).values,
            (std::vector<std::string>{"x", "q"}));
}

TEST(CsvReaderTest, QuotedDelimiterWithCustomDelimiter) {
  const std::string csv = "a;b\n\"x;1\";y\n";
  CsvOptions options;
  options.delimiter = ';';
  auto data = ReadCsvString(csv, options);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->schema().attribute(0).values[0], "x;1");
}

}  // namespace
}  // namespace colarm
