#include <gtest/gtest.h>

#include "data/csv_reader.h"

namespace colarm {
namespace {

TEST(CsvReaderTest, CategoricalColumns) {
  const std::string csv =
      "city,product\n"
      "boston,apple\n"
      "seattle,pear\n"
      "boston,apple\n";
  auto data = ReadCsvString(csv, CsvOptions{});
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->num_records(), 3u);
  EXPECT_EQ(data->schema().attribute(0).name, "city");
  EXPECT_EQ(data->schema().attribute(0).values,
            (std::vector<std::string>{"boston", "seattle"}));
  EXPECT_EQ(data->Value(2, 0), 0);
  EXPECT_EQ(data->Value(1, 1), 1);
}

TEST(CsvReaderTest, NumericColumnGetsDiscretized) {
  const std::string csv =
      "name,age\n"
      "a,10\n"
      "b,20\n"
      "c,30\n"
      "d,40\n";
  CsvOptions options;
  options.numeric_bins = 2;
  auto data = ReadCsvString(csv, options);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->schema().attribute(1).domain_size(), 2u);
  EXPECT_EQ(data->Value(0, 1), 0);
  EXPECT_EQ(data->Value(3, 1), 1);
}

TEST(CsvReaderTest, MixedNumericStringsStayCategorical) {
  const std::string csv =
      "code\n"
      "12\n"
      "x9\n"
      "12\n";
  auto data = ReadCsvString(csv, CsvOptions{});
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->schema().attribute(0).values,
            (std::vector<std::string>{"12", "x9"}));
}

TEST(CsvReaderTest, MissingValuesGetSentinel) {
  const std::string csv =
      "a,b\n"
      "x,1\n"
      ",2\n";
  auto data = ReadCsvString(csv, CsvOptions{});
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->schema().attribute(0).values[1], "<missing>");
  EXPECT_EQ(data->Value(1, 0), 1);
}

TEST(CsvReaderTest, NoHeaderSynthesizesNames) {
  const std::string csv = "x,y\nx,z\n";
  CsvOptions options;
  options.has_header = false;
  auto data = ReadCsvString(csv, options);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->schema().attribute(0).name, "col0");
  EXPECT_EQ(data->num_records(), 2u);
}

TEST(CsvReaderTest, CustomDelimiter) {
  const std::string csv = "a;b\nx;y\n";
  CsvOptions options;
  options.delimiter = ';';
  auto data = ReadCsvString(csv, options);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->num_attributes(), 2u);
}

TEST(CsvReaderTest, RaggedRowFails) {
  const std::string csv = "a,b\nx\n";
  auto data = ReadCsvString(csv, CsvOptions{});
  ASSERT_FALSE(data.ok());
  EXPECT_EQ(data.status().code(), StatusCode::kParseError);
}

TEST(CsvReaderTest, EmptyInputFails) {
  auto data = ReadCsvString("a,b\n", CsvOptions{});
  EXPECT_FALSE(data.ok());
}

TEST(CsvReaderTest, MissingFileFails) {
  auto data = ReadCsvFile("/nonexistent/path.csv", CsvOptions{});
  ASSERT_FALSE(data.ok());
  EXPECT_EQ(data.status().code(), StatusCode::kIoError);
}

TEST(CsvReaderTest, WhitespaceTrimmed) {
  const std::string csv = " a , b \n x , y \n";
  auto data = ReadCsvString(csv, CsvOptions{});
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->schema().attribute(0).name, "a");
  EXPECT_EQ(data->schema().attribute(0).values[0], "x");
}

}  // namespace
}  // namespace colarm
