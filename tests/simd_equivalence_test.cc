#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bitmap/kernels.h"
#include "common/cpu_features.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "data/salary_dataset.h"
#include "plans/plans.h"
#include "test_util.h"

namespace colarm {
namespace {

using testing_util::RandomDataset;

RuleGenOptions WideRuleGen() {
  RuleGenOptions options;
  options.max_itemset_length = 31;
  return options;
}

std::vector<uint64_t> Effort(const PlanStats& stats) {
  return {stats.subset_size,          stats.local_min_count,
          stats.candidates_search,    stats.candidates_contained,
          stats.candidates_qualified, stats.record_checks,
          stats.rtree_nodes_visited,  stats.rtree_pruned_by_support,
          stats.rules_considered,     stats.rules_emitted,
          stats.itemsets_skipped};
}

std::vector<SimdLevel> SupportedLevels() {
  std::vector<SimdLevel> levels;
  for (int l = 0; l <= static_cast<int>(MaxSupportedSimdLevel()); ++l) {
    levels.push_back(static_cast<SimdLevel>(l));
  }
  return levels;
}

// Restores the entry SIMD level even when an assertion bails out early.
class SimdEquivalenceTest : public ::testing::Test {
 protected:
  void TearDown() override { SetActiveSimdLevel(entry_level_); }
  const SimdLevel entry_level_ = ActiveSimdLevel();
};

TEST_F(SimdEquivalenceTest, LevelNamesRoundTrip) {
  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    auto parsed = SimdLevelFromName(SimdLevelName(level));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(SimdLevelFromName("").has_value());
  EXPECT_FALSE(SimdLevelFromName("AVX2").has_value());
  EXPECT_FALSE(SimdLevelFromName("sse").has_value());
}

TEST_F(SimdEquivalenceTest, ResolveSimdLevelClampsToHost) {
  const SimdLevel max = MaxSupportedSimdLevel();
  // No override, empty, or garbage: use the best the host offers.
  EXPECT_EQ(ResolveSimdLevel(nullptr, max), max);
  EXPECT_EQ(ResolveSimdLevel("", max), max);
  EXPECT_EQ(ResolveSimdLevel("turbo", max), max);
  // A recognized name is honoured but never exceeds the host.
  EXPECT_EQ(ResolveSimdLevel("scalar", max), SimdLevel::kScalar);
  EXPECT_EQ(ResolveSimdLevel("avx512", SimdLevel::kScalar),
            SimdLevel::kScalar);
  EXPECT_EQ(ResolveSimdLevel("avx2", SimdLevel::kAvx512), SimdLevel::kAvx2);
}

TEST_F(SimdEquivalenceTest, SetActiveRejectsUnsupportedLevels) {
  EXPECT_TRUE(SetActiveSimdLevel(SimdLevel::kScalar));
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  for (SimdLevel level : SupportedLevels()) {
    EXPECT_TRUE(SetActiveSimdLevel(level));
    EXPECT_EQ(ActiveSimdLevel(), level);
    EXPECT_NE(KernelsForLevel(level), nullptr);
  }
  if (MaxSupportedSimdLevel() != SimdLevel::kAvx512) {
    EXPECT_FALSE(SetActiveSimdLevel(SimdLevel::kAvx512));
  }
}

// Every plan, on both execution backends, at 1/2/8 threads, must produce
// byte-identical rules and effort counters at every SIMD level the host
// can run. The scalar-kernel run is the reference.
void ExpectLevelsEquivalent(const MipIndex& index,
                            const std::vector<LocalizedQuery>& queries) {
  ThreadPool pool2(2);
  ThreadPool pool8(8);
  std::vector<ThreadPool*> pools = {nullptr, &pool2, &pool8};
  const std::vector<SimdLevel> levels = SupportedLevels();

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const LocalizedQuery& query = queries[qi];
    ASSERT_TRUE(query.Validate(index.dataset().schema()).ok());
    for (PlanKind kind : kAllPlans) {
      for (ExecBackend backend :
           {ExecBackend::kScalar, ExecBackend::kBitmap}) {
        ASSERT_TRUE(SetActiveSimdLevel(SimdLevel::kScalar));
        PlanExecOptions exec;
        exec.rulegen = WideRuleGen();
        exec.backend = backend;
        auto reference = ExecutePlan(kind, index, query, exec);
        ASSERT_TRUE(reference.ok()) << PlanKindName(kind);

        for (SimdLevel level : levels) {
          if (level == SimdLevel::kScalar) continue;
          ASSERT_TRUE(SetActiveSimdLevel(level));
          for (ThreadPool* pool : pools) {
            PlanExecOptions vec_exec;
            vec_exec.rulegen = WideRuleGen();
            vec_exec.backend = backend;
            vec_exec.pool = pool;
            auto run = ExecutePlan(kind, index, query, vec_exec);
            ASSERT_TRUE(run.ok()) << PlanKindName(kind);
            const unsigned threads = pool ? pool->parallelism() : 1;
            EXPECT_TRUE(run->rules.SameAs(reference->rules))
                << PlanKindName(kind) << " " << ExecBackendName(backend)
                << " @" << SimdLevelName(level) << " x" << threads
                << " query " << qi << ": " << run->rules.rules.size()
                << " rules vs " << reference->rules.rules.size();
            EXPECT_EQ(Effort(run->stats), Effort(reference->stats))
                << PlanKindName(kind) << " " << ExecBackendName(backend)
                << " @" << SimdLevelName(level) << " x" << threads
                << " query " << qi;
          }
        }
      }
    }
  }
}

LocalizedQuery MakeQuery(double minsupp, double minconf,
                         std::vector<RangeSelection> ranges) {
  LocalizedQuery query;
  query.minsupp = minsupp;
  query.minconf = minconf;
  query.ranges = std::move(ranges);
  return query;
}

TEST_F(SimdEquivalenceTest, RandomDataset) {
  // 500 records => bitmaps span several vector registers plus a tail word,
  // and tidsets are skewed enough to trigger the galloping probe.
  Dataset dataset = RandomDataset(11, 500, 5, 4);
  auto index = MipIndex::Build(dataset, {.primary_support = 0.08});
  ASSERT_TRUE(index.ok());
  std::vector<LocalizedQuery> queries = {
      MakeQuery(0.1, 0.5, {{0, 0, 1}}),
      MakeQuery(0.05, 0.3, {{0, 0, 2}, {2, 1, 3}}),
      MakeQuery(0.1, 0.5, {}),  // unconstrained box
  };
  ExpectLevelsEquivalent(*index, queries);
}

TEST_F(SimdEquivalenceTest, SalaryDataset) {
  Dataset dataset = MakeSalaryDataset();
  auto index = MipIndex::Build(dataset, {.primary_support = 0.2});
  ASSERT_TRUE(index.ok());
  std::vector<LocalizedQuery> queries = {
      MakeQuery(0.3, 0.6, {{2, 1, 1}, {3, 1, 1}}),
      MakeQuery(0.3, 0.6, {}),
  };
  ExpectLevelsEquivalent(*index, queries);
}

// The engine path: a calibrated engine rebuilt at each SIMD level answers
// every query with the same rules (the optimizer may legally pick a
// different plan when the kernel costs shift, so only rules are compared
// here; forced-plan effort equality is covered above).
TEST_F(SimdEquivalenceTest, CalibratedEngineRulesStableAcrossLevels) {
  Dataset dataset = RandomDataset(23, 400, 5, 4);
  std::vector<LocalizedQuery> queries = {
      MakeQuery(0.1, 0.5, {{0, 0, 1}}),
      MakeQuery(0.05, 0.3, {{1, 0, 2}}),
  };

  ASSERT_TRUE(SetActiveSimdLevel(SimdLevel::kScalar));
  EngineOptions options;
  options.index.primary_support = 0.08;
  options.rulegen = WideRuleGen();
  options.calibrate = true;
  auto reference = Engine::Build(dataset, options);
  ASSERT_TRUE(reference.ok());
  std::vector<RuleSet> expected;
  for (const LocalizedQuery& query : queries) {
    auto result = (*reference)->Execute(query);
    ASSERT_TRUE(result.ok());
    expected.push_back(result->rules);
  }

  for (SimdLevel level : SupportedLevels()) {
    if (level == SimdLevel::kScalar) continue;
    ASSERT_TRUE(SetActiveSimdLevel(level));
    auto engine = Engine::Build(dataset, options);
    ASSERT_TRUE(engine.ok());
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      auto result = (*engine)->Execute(queries[qi]);
      ASSERT_TRUE(result.ok());
      EXPECT_TRUE(result->rules.SameAs(expected[qi]))
          << "query " << qi << " @" << SimdLevelName(level);
    }
  }
}

}  // namespace
}  // namespace colarm
