#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <set>
#include <string>

#include "core/engine.h"
#include "data/salary_dataset.h"
#include "test_util.h"

namespace colarm {
namespace {

using testing_util::RandomDataset;
using testing_util::ReferenceLocalizedRules;

std::unique_ptr<Engine> BuildEngine(const Dataset& data, double primary) {
  EngineOptions options;
  options.index.primary_support = primary;
  options.calibrate = false;
  auto engine = Engine::Build(data, options);
  EXPECT_TRUE(engine.ok());
  return std::move(engine.value());
}

TEST(EngineTest, BuildExposesIndex) {
  auto data = std::make_unique<Dataset>(RandomDataset(1, 150, 4, 3));
  auto engine = BuildEngine(*data, 0.25);
  EXPECT_GT(engine->index().num_mips(), 0u);
  EXPECT_EQ(&engine->index().dataset(), data.get());
}

TEST(EngineTest, ExecuteReturnsOptimizerChoice) {
  auto data = std::make_unique<Dataset>(RandomDataset(2, 200, 5, 3));
  auto engine = BuildEngine(*data, 0.2);
  LocalizedQuery query;
  query.ranges = {{0, 0, 1}};
  query.minsupp = 0.4;
  query.minconf = 0.6;
  auto result = engine->Execute(query);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->chosen_by_optimizer);
  EXPECT_EQ(result->plan_used, result->decision.chosen);
  EXPECT_EQ(result->stats.plan, result->plan_used);
}

TEST(EngineTest, ExecuteMatchesReference) {
  auto data = std::make_unique<Dataset>(RandomDataset(3, 180, 5, 3));
  auto engine = BuildEngine(*data, 0.2);
  LocalizedQuery query;
  query.ranges = {{1, 0, 0}};
  query.minsupp = 0.35;
  query.minconf = 0.5;
  auto result = engine->Execute(query);
  ASSERT_TRUE(result.ok());
  RuleSet expected = ReferenceLocalizedRules(engine->index(), query);
  EXPECT_TRUE(result->rules.SameAs(expected));
}

TEST(EngineTest, ForcedPlanMatchesOptimizedResult) {
  auto data = std::make_unique<Dataset>(RandomDataset(4, 150, 4, 3));
  auto engine = BuildEngine(*data, 0.25);
  LocalizedQuery query;
  query.ranges = {{0, 0, 1}};
  query.minsupp = 0.4;
  query.minconf = 0.7;
  auto optimized = engine->Execute(query);
  ASSERT_TRUE(optimized.ok());
  for (PlanKind kind : kAllPlans) {
    auto forced = engine->ExecuteWithPlan(query, kind);
    ASSERT_TRUE(forced.ok());
    EXPECT_FALSE(forced->chosen_by_optimizer);
    EXPECT_EQ(forced->plan_used, kind);
    EXPECT_TRUE(forced->rules.SameAs(optimized->rules)) << PlanKindName(kind);
  }
}

TEST(EngineTest, ExplainWithoutExecution) {
  auto data = std::make_unique<Dataset>(RandomDataset(5, 120, 4, 3));
  auto engine = BuildEngine(*data, 0.25);
  LocalizedQuery query;
  query.minsupp = 0.5;
  query.minconf = 0.8;
  auto decision = engine->Explain(query);
  ASSERT_TRUE(decision.ok());
  EXPECT_GT(decision->chosen_estimate().total, 0.0);
}

TEST(EngineTest, RejectsInvalidQueries) {
  auto data = std::make_unique<Dataset>(MakeSalaryDataset());
  auto engine = BuildEngine(*data, 0.27);
  LocalizedQuery query;
  query.ranges = {{99, 0, 0}};
  EXPECT_FALSE(engine->Execute(query).ok());
  EXPECT_FALSE(engine->ExecuteWithPlan(query, PlanKind::kSEV).ok());
  EXPECT_FALSE(engine->Explain(query).ok());
}

TEST(EngineTest, RejectsBadBuildOptions) {
  auto data = std::make_unique<Dataset>(MakeSalaryDataset());
  EngineOptions options;
  options.index.primary_support = 0.0;
  EXPECT_FALSE(Engine::Build(*data, options).ok());
}

TEST(EngineTest, SalaryEndToEnd) {
  auto data = std::make_unique<Dataset>(MakeSalaryDataset());
  auto engine = BuildEngine(*data, 0.27);
  LocalizedQuery query;
  query.ranges = {{2, 2, 2}, {3, 1, 1}};
  query.minsupp = 0.75;
  query.minconf = 1.0;
  auto result = engine->Execute(query);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->rules.rules.empty());
  // All rules hold at 100% confidence in the 4-record subset.
  for (const Rule& rule : result->rules.rules) {
    EXPECT_EQ(rule.base_count, 4u);
    EXPECT_DOUBLE_EQ(rule.confidence(), 1.0);
    EXPECT_GE(rule.support(), 0.75);
  }
}

TEST(EngineTest, IndexCacheRoundTrips) {
  auto data = std::make_unique<Dataset>(RandomDataset(7, 200, 5, 3));
  std::string cache = ::testing::TempDir() + "colarm_engine_cache_rt";
  std::remove(cache.c_str());

  EngineOptions options;
  options.index.primary_support = 0.25;
  options.calibrate = false;
  options.index_cache_path = cache;
  auto first = Engine::Build(*data, options);
  ASSERT_TRUE(first.ok());
  auto second = Engine::Build(*data, options);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*first)->index().num_mips(), (*second)->index().num_mips());
  std::remove(cache.c_str());
}

// Regression: a cached index built under *different* options must be
// rebuilt, not silently served. (The cache used to compare only the
// dataset fingerprint, so changing e.g. primary_support or the R-tree
// packing between runs kept answering from the stale file.)
TEST(EngineTest, IndexCacheIgnoredWhenOptionsDiffer) {
  auto data = std::make_unique<Dataset>(RandomDataset(8, 200, 5, 3));
  std::string cache = ::testing::TempDir() + "colarm_engine_cache_opts";
  std::remove(cache.c_str());

  EngineOptions options;
  options.index.primary_support = 0.4;
  options.calibrate = false;
  options.index_cache_path = cache;
  auto coarse = Engine::Build(*data, options);
  ASSERT_TRUE(coarse.ok());
  ASSERT_EQ((*coarse)->index().options().primary_support, 0.4);

  // Lower primary support: strictly more CFIs qualify, so serving the
  // cached 0.4 index would visibly change (drop) answers.
  options.index.primary_support = 0.2;
  auto fine = Engine::Build(*data, options);
  ASSERT_TRUE(fine.ok());
  EXPECT_EQ((*fine)->index().options().primary_support, 0.2);
  EXPECT_GT((*fine)->index().num_mips(), (*coarse)->index().num_mips());

  // Different R-tree shape / packing flag must also miss the cache.
  options.index.use_str_packing = false;
  auto repacked = Engine::Build(*data, options);
  ASSERT_TRUE(repacked.ok());
  EXPECT_TRUE((*repacked)->index().options() == options.index);
  std::remove(cache.c_str());
}

TEST(EngineTest, CalibratedBuildWorks) {
  auto data = std::make_unique<Dataset>(RandomDataset(6, 400, 5, 3));
  EngineOptions options;
  options.index.primary_support = 0.25;
  options.calibrate = true;
  auto engine = Engine::Build(*data, options);
  ASSERT_TRUE(engine.ok());
  LocalizedQuery query;
  query.minsupp = 0.5;
  query.minconf = 0.8;
  EXPECT_TRUE(engine.value()->Execute(query).ok());
}

}  // namespace
}  // namespace colarm
