// Constraint-pushdown semantics tests (DESIGN.md §6.7): item constraints
// and measure floors pushed into execution must equal the post-filter
// reference FilterRules(unconstrained run), including the degenerate
// corners — contradictory constraint sets, constraints that eliminate
// every item, empty vocabularies — and ratio-exact measure boundaries
// where the floor sits exactly on a rule's computed measure.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "mining/constraints.h"
#include "mining/measures.h"
#include "plans/plans.h"
#include "test_util.h"

namespace colarm {
namespace {

using testing_util::RandomDataset;

RuleGenOptions WideRuleGen() {
  RuleGenOptions options;
  options.max_itemset_length = 31;
  return options;
}

/// The focal subset straight from the RANGE predicates.
std::vector<Tid> DqTids(const Dataset& dataset, const LocalizedQuery& query) {
  std::vector<Tid> tids;
  for (Tid t = 0; t < dataset.num_records(); ++t) {
    bool inside = true;
    for (const RangeSelection& range : query.ranges) {
      const ValueId v = dataset.Value(t, range.attr);
      if (v < range.lo || v > range.hi) {
        inside = false;
        break;
      }
    }
    if (inside) tids.push_back(t);
  }
  return tids;
}

/// Post-filter reference: mine the unconstrained twin, then FilterRules.
RuleSet FilteredReference(const MipIndex& index, const LocalizedQuery& query) {
  LocalizedQuery twin = query;
  twin.constraints = RuleConstraints{};
  auto unconstrained =
      ExecutePlan(PlanKind::kSEV, index, twin, WideRuleGen());
  EXPECT_TRUE(unconstrained.ok());
  const std::vector<Tid> dq = DqTids(index.dataset(), query);
  return FilterRules(index.dataset(), dq, unconstrained->rules,
                     query.constraints);
}

/// All six plans must return exactly the post-filter reference.
void ExpectAllPlansMatchFiltered(const MipIndex& index,
                                 const LocalizedQuery& query) {
  const RuleSet expected = FilteredReference(index, query);
  for (PlanKind kind : kAllPlans) {
    auto result = ExecutePlan(kind, index, query, WideRuleGen());
    ASSERT_TRUE(result.ok()) << PlanKindName(kind);
    EXPECT_TRUE(result->rules.SameAs(expected))
        << PlanKindName(kind) << " on "
        << query.ToString(index.dataset().schema()) << ": got "
        << result->rules.rules.size() << " rules, filtered reference "
        << expected.rules.size();
  }
}

bool ContainsRule(const RuleSet& rules, const Rule& rule) {
  return std::any_of(rules.rules.begin(), rules.rules.end(),
                     [&](const Rule& r) { return r.SameRule(rule); });
}

LocalizedQuery BaseQuery() {
  LocalizedQuery query;
  query.ranges = {{0, 0, 1}};
  query.minsupp = 0.25;
  query.minconf = 0.4;
  return query;
}

// An Empty() constraint set must leave execution byte-identical to the
// unconstrained engine: same rules AND same effort counters, so every
// pushdown site is provably gated on Empty().
TEST(ConstraintTest, EmptyConstraintsAreByteIdentical) {
  Dataset data = RandomDataset(101, 90, 4, 3);
  auto index = MipIndex::Build(data, {.primary_support = 0.2});
  ASSERT_TRUE(index.ok());
  LocalizedQuery plain = BaseQuery();
  LocalizedQuery wired = plain;
  wired.constraints = RuleConstraints{};  // explicitly-empty constraint set
  ASSERT_TRUE(wired.constraints.Empty());
  for (PlanKind kind : kAllPlans) {
    auto a = ExecutePlan(kind, *index, plain, WideRuleGen());
    auto b = ExecutePlan(kind, *index, wired, WideRuleGen());
    ASSERT_TRUE(a.ok() && b.ok()) << PlanKindName(kind);
    EXPECT_TRUE(a->rules.SameAs(b->rules)) << PlanKindName(kind);
    EXPECT_EQ(a->stats.record_checks, b->stats.record_checks)
        << PlanKindName(kind);
    EXPECT_EQ(a->stats.rules_considered, b->stats.rules_considered)
        << PlanKindName(kind);
    EXPECT_EQ(a->stats.rules_emitted, b->stats.rules_emitted)
        << PlanKindName(kind);
    EXPECT_EQ(a->stats.itemsets_skipped, b->stats.itemsets_skipped)
        << PlanKindName(kind);
    EXPECT_EQ(a->stats.local_cfis, b->stats.local_cfis)
        << PlanKindName(kind);
  }
}

// An item in both CONTAIN and EXCLUDE is well-formed but denotes the empty
// rule set; every plan must short-circuit to zero rules without scanning.
TEST(ConstraintTest, ContradictoryContainExcludeYieldsNothing) {
  Dataset data = RandomDataset(102, 90, 4, 3);
  auto index = MipIndex::Build(data, {.primary_support = 0.2});
  ASSERT_TRUE(index.ok());
  const ItemId item = data.schema().ItemOf(1, 0);
  LocalizedQuery query = BaseQuery();
  query.constraints.must_contain = {item};
  query.constraints.must_exclude = {item};
  ASSERT_TRUE(query.constraints.Validate(data.schema()).ok());
  ASSERT_TRUE(query.ConstraintsPrecludeRules(data.schema()));
  for (PlanKind kind : kAllPlans) {
    auto result = ExecutePlan(kind, *index, query, WideRuleGen());
    ASSERT_TRUE(result.ok()) << PlanKindName(kind);
    EXPECT_TRUE(result->rules.rules.empty()) << PlanKindName(kind);
    EXPECT_EQ(result->stats.rules_considered, 0u) << PlanKindName(kind);
  }
  ExpectAllPlansMatchFiltered(*index, query);
}

// Two CONTAIN items on one attribute can never co-occur in a record.
TEST(ConstraintTest, TwoContainItemsOnOneAttributePrecludeRules) {
  Dataset data = RandomDataset(103, 90, 4, 3);
  auto index = MipIndex::Build(data, {.primary_support = 0.2});
  ASSERT_TRUE(index.ok());
  LocalizedQuery query = BaseQuery();
  query.constraints.must_contain = {data.schema().ItemOf(2, 0),
                                    data.schema().ItemOf(2, 1)};
  ASSERT_TRUE(query.ConstraintsPrecludeRules(data.schema()));
  ExpectAllPlansMatchFiltered(*index, query);
}

// CONTAIN item whose value the focal box excludes: no DQ record can hold
// it, so the plan short-circuits before touching the R-tree.
TEST(ConstraintTest, ContainOutsideFocalBoxPrecludesRules) {
  Dataset data = RandomDataset(104, 90, 4, 3);
  auto index = MipIndex::Build(data, {.primary_support = 0.2});
  ASSERT_TRUE(index.ok());
  LocalizedQuery query = BaseQuery();  // attr 0 restricted to [0, 1]
  query.constraints.must_contain = {data.schema().ItemOf(0, 2)};
  ASSERT_TRUE(query.ConstraintsPrecludeRules(data.schema()));
  ExpectAllPlansMatchFiltered(*index, query);
}

// CONTAIN item of an attribute outside the item vocabulary ("empty vocab"
// for that constraint): no emitted itemset can ever contain it.
TEST(ConstraintTest, ContainOutsideVocabularyPrecludesRules) {
  Dataset data = RandomDataset(105, 90, 4, 3);
  auto index = MipIndex::Build(data, {.primary_support = 0.2});
  ASSERT_TRUE(index.ok());
  LocalizedQuery query = BaseQuery();
  query.item_attrs = {0, 1};  // vocabulary excludes attributes 2 and 3
  query.constraints.must_contain = {data.schema().ItemOf(3, 0)};
  ASSERT_TRUE(query.ConstraintsPrecludeRules(data.schema()));
  ExpectAllPlansMatchFiltered(*index, query);
}

// EXCLUDE covering every item of the schema eliminates the whole
// vocabulary: zero rules on every plan, matching the filtered reference.
TEST(ConstraintTest, ExcludeAllItemsEliminatesEverything) {
  Dataset data = RandomDataset(106, 90, 4, 3);
  auto index = MipIndex::Build(data, {.primary_support = 0.2});
  ASSERT_TRUE(index.ok());
  LocalizedQuery query = BaseQuery();
  for (ItemId item = 0; item < data.schema().num_items(); ++item) {
    query.constraints.must_exclude.push_back(item);
  }
  ASSERT_TRUE(query.constraints.Validate(data.schema()).ok());
  const RuleSet expected = FilteredReference(*index, query);
  EXPECT_TRUE(expected.rules.empty());
  ExpectAllPlansMatchFiltered(*index, query);
}

// ANTECEDENT ATTRIBUTES pinning: the pinned attribute never appears in a
// consequent, and the result still equals the post-filter reference.
TEST(ConstraintTest, AntecedentOnlyPinsAttributeToLeftSide) {
  for (uint64_t seed : {111u, 112u, 113u}) {
    Dataset data = RandomDataset(seed, 90, 4, 3);
    auto index = MipIndex::Build(data, {.primary_support = 0.2});
    ASSERT_TRUE(index.ok());
    LocalizedQuery query = BaseQuery();
    query.constraints.antecedent_only = {1};
    ExpectAllPlansMatchFiltered(*index, query);
    auto result = ExecutePlan(PlanKind::kSEV, *index, query, WideRuleGen());
    ASSERT_TRUE(result.ok());
    for (const Rule& rule : result->rules.rules) {
      for (ItemId item : rule.consequent) {
        EXPECT_NE(data.schema().AttrOfItem(item), 1u)
            << "pinned attribute leaked into a consequent";
      }
    }
  }
}

// CONTAIN / EXCLUDE on live items: results must equal the post-filter
// reference, and every surviving rule's itemset obeys the constraints.
TEST(ConstraintTest, ContainAndExcludeMatchPostFilter) {
  for (uint64_t seed : {121u, 122u, 123u, 124u}) {
    Dataset data = RandomDataset(seed, 90, 4, 3);
    auto index = MipIndex::Build(data, {.primary_support = 0.2});
    ASSERT_TRUE(index.ok());
    LocalizedQuery query = BaseQuery();
    query.constraints.must_contain = {data.schema().ItemOf(1, 0)};
    query.constraints.must_exclude = {data.schema().ItemOf(3, 1)};
    ASSERT_TRUE(query.constraints.Validate(data.schema()).ok());
    ExpectAllPlansMatchFiltered(*index, query);
    auto result = ExecutePlan(PlanKind::kARM, *index, query, WideRuleGen());
    ASSERT_TRUE(result.ok());
    for (const Rule& rule : result->rules.rules) {
      Itemset itemset = rule.antecedent;
      itemset.insert(itemset.end(), rule.consequent.begin(),
                     rule.consequent.end());
      std::sort(itemset.begin(), itemset.end());
      EXPECT_TRUE(ItemsetSatisfiesConstraints(itemset, query.constraints));
    }
  }
}

/// Ratio-exact boundary check for one measure floor: with the floor set to
/// the rule's exactly-computed measure the rule survives (the +1e-12 slack
/// mirrors minconfidence), and with the floor nudged above the slack it is
/// dropped. Both sides must still equal the post-filter reference.
void CheckMeasureBoundary(const MipIndex& index, const LocalizedQuery& base,
                          double RuleConstraints::* floor,
                          double (*measure)(const RuleCounts&)) {
  auto unconstrained =
      ExecutePlan(PlanKind::kSEV, index, base, WideRuleGen());
  ASSERT_TRUE(unconstrained.ok());
  ASSERT_FALSE(unconstrained->rules.rules.empty());
  const std::vector<Tid> dq = DqTids(index.dataset(), base);

  // Pick the rule with the largest measure so "floor == measure" keeps it
  // and any nudge above the slack drops it.
  const Rule* pick = nullptr;
  double value = 0.0;
  for (const Rule& rule : unconstrained->rules.rules) {
    const double m = measure(CountsForRule(index.dataset(), dq, rule));
    if (pick == nullptr || m > value) {
      pick = &rule;
      value = m;
    }
  }
  ASSERT_NE(pick, nullptr);
  ASSERT_GT(value, 0.0);

  LocalizedQuery exact = base;
  exact.constraints.*floor = value;  // floor sits exactly on the measure
  ExpectAllPlansMatchFiltered(index, exact);
  auto kept = ExecutePlan(PlanKind::kSEV, index, exact, WideRuleGen());
  ASSERT_TRUE(kept.ok());
  EXPECT_TRUE(ContainsRule(kept->rules, *pick))
      << "rule dropped at floor == its exact measure " << value;

  LocalizedQuery above = base;
  above.constraints.*floor = value + 1e-6;  // clears the 1e-12 slack
  ExpectAllPlansMatchFiltered(index, above);
  auto dropped = ExecutePlan(PlanKind::kSEV, index, above, WideRuleGen());
  ASSERT_TRUE(dropped.ok());
  EXPECT_FALSE(ContainsRule(dropped->rules, *pick))
      << "rule survived a floor above its measure " << value;
}

TEST(ConstraintTest, LiftFloorIsRatioExact) {
  Dataset data = RandomDataset(131, 90, 4, 3);
  auto index = MipIndex::Build(data, {.primary_support = 0.2});
  ASSERT_TRUE(index.ok());
  CheckMeasureBoundary(*index, BaseQuery(), &RuleConstraints::min_lift,
                       &Lift);
}

TEST(ConstraintTest, CosineFloorIsRatioExact) {
  Dataset data = RandomDataset(132, 90, 4, 3);
  auto index = MipIndex::Build(data, {.primary_support = 0.2});
  ASSERT_TRUE(index.ok());
  CheckMeasureBoundary(*index, BaseQuery(), &RuleConstraints::min_cosine,
                       &Cosine);
}

TEST(ConstraintTest, KulczynskiFloorIsRatioExact) {
  Dataset data = RandomDataset(133, 90, 4, 3);
  auto index = MipIndex::Build(data, {.primary_support = 0.2});
  ASSERT_TRUE(index.ok());
  CheckMeasureBoundary(*index, BaseQuery(),
                       &RuleConstraints::min_kulczynski, &Kulczynski);
}

// HAVING minantsupp: the antecedent-support floor pushed into rule
// generation must equal the post-filter reference on every plan, and the
// generator must prune floored antecedents *before* the rules_considered
// counter (cheaper than confidence, so it runs first).
TEST(ConstraintTest, AntecedentSupportFloorMatchesPostFilter) {
  for (uint64_t seed : {151u, 152u, 153u}) {
    Dataset data = RandomDataset(seed, 90, 4, 3);
    auto index = MipIndex::Build(data, {.primary_support = 0.2});
    ASSERT_TRUE(index.ok());
    LocalizedQuery query = BaseQuery();
    query.constraints.min_antecedent_supp = 0.45;
    ASSERT_TRUE(query.Validate(data.schema()).ok());
    ExpectAllPlansMatchFiltered(*index, query);

    LocalizedQuery twin = query;
    twin.constraints = RuleConstraints{};
    auto constrained =
        ExecutePlan(PlanKind::kSEV, *index, query, WideRuleGen());
    auto unconstrained =
        ExecutePlan(PlanKind::kSEV, *index, twin, WideRuleGen());
    ASSERT_TRUE(constrained.ok() && unconstrained.ok());
    EXPECT_LE(constrained->stats.rules_considered,
              unconstrained->stats.rules_considered);
    for (const Rule& rule : constrained->rules.rules) {
      EXPECT_GE(rule.antecedent_count,
                MinCount(query.constraints.min_antecedent_supp,
                         rule.base_count));
    }
  }
}

// The floor is count-exact (integer MinCount semantics, like minsupport):
// a floor sitting exactly on a rule's antecedent support keeps it, the
// next representable step above drops it.
TEST(ConstraintTest, AntecedentSupportFloorIsCountExact) {
  Dataset data = RandomDataset(154, 90, 4, 3);
  auto index = MipIndex::Build(data, {.primary_support = 0.2});
  ASSERT_TRUE(index.ok());
  const LocalizedQuery base = BaseQuery();
  auto unconstrained =
      ExecutePlan(PlanKind::kSEV, *index, base, WideRuleGen());
  ASSERT_TRUE(unconstrained.ok());
  ASSERT_FALSE(unconstrained->rules.rules.empty());

  const Rule* pick = nullptr;
  for (const Rule& rule : unconstrained->rules.rules) {
    if (pick == nullptr || rule.antecedent_count > pick->antecedent_count) {
      pick = &rule;
    }
  }
  ASSERT_NE(pick, nullptr);
  const double n = static_cast<double>(pick->base_count);

  LocalizedQuery exact = base;
  exact.constraints.min_antecedent_supp =
      static_cast<double>(pick->antecedent_count) / n;
  ExpectAllPlansMatchFiltered(*index, exact);
  auto kept = ExecutePlan(PlanKind::kSEV, *index, exact, WideRuleGen());
  ASSERT_TRUE(kept.ok());
  EXPECT_TRUE(ContainsRule(kept->rules, *pick))
      << "rule dropped at floor == its exact antecedent support";

  LocalizedQuery above = base;
  above.constraints.min_antecedent_supp =
      (static_cast<double>(pick->antecedent_count) + 0.5) / n;
  ExpectAllPlansMatchFiltered(*index, above);
  auto dropped = ExecutePlan(PlanKind::kSEV, *index, above, WideRuleGen());
  ASSERT_TRUE(dropped.ok());
  EXPECT_FALSE(ContainsRule(dropped->rules, *pick))
      << "rule survived a floor above its antecedent support";
}

TEST(ConstraintTest, AntecedentSupportFloorValidationAndCacheKey) {
  Dataset data = RandomDataset(155, 60, 4, 3);
  RuleConstraints floor;
  floor.min_antecedent_supp = 0.3;
  EXPECT_TRUE(floor.Validate(data.schema()).ok());
  EXPECT_TRUE(floor.HasMeasures());
  EXPECT_FALSE(floor.Empty());

  RuleConstraints over;
  over.min_antecedent_supp = 1.5;  // a support fraction cannot exceed 1
  EXPECT_FALSE(over.Validate(data.schema()).ok());
  RuleConstraints negative;
  negative.min_antecedent_supp = -0.1;
  EXPECT_FALSE(negative.Validate(data.schema()).ok());

  // Distinct floors key distinct memo namespaces in the session cache.
  EXPECT_NE(floor.CacheKey(), RuleConstraints{}.CacheKey());
  RuleConstraints other;
  other.min_antecedent_supp = 0.4;
  EXPECT_NE(floor.CacheKey(), other.CacheKey());
}

// Combined constraint sets across several seeds and focal boxes — the
// small deterministic sweep the sanitizer tiers replay.
TEST(ConstraintTest, CombinedConstraintSweepMatchesPostFilter) {
  for (uint64_t seed : {141u, 142u, 143u}) {
    Dataset data = RandomDataset(seed, 80, 4, 3);
    auto index = MipIndex::Build(data, {.primary_support = 0.2});
    ASSERT_TRUE(index.ok());
    LocalizedQuery query;
    query.ranges = {{static_cast<AttrId>(seed % 4), 0, 1}};
    query.minsupp = 0.2;
    query.minconf = 0.3;
    query.constraints.must_contain = {data.schema().ItemOf(1, 0)};
    query.constraints.must_exclude = {data.schema().ItemOf(2, 2)};
    query.constraints.antecedent_only = {3};
    query.constraints.min_kulczynski = 0.4;
    query.constraints.min_antecedent_supp = 0.3;
    ASSERT_TRUE(query.Validate(data.schema()).ok());
    ExpectAllPlansMatchFiltered(*index, query);
  }
}

}  // namespace
}  // namespace colarm
