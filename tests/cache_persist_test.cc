// Persistence-format v4 hardening tests for the session cache, mirroring
// the serialize v3 discipline: a full-state round trip, truncation at
// every offset, a single-bit-flip sweep over the whole file, bounded
// counts, version/fingerprint rejection, and clean cold fallback on every
// failure.
#include "core/cache_persist.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>

#include "test_util.h"

namespace colarm {
namespace {

using testing_util::RandomDataset;

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void Spit(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
}

struct Env {
  std::unique_ptr<Dataset> data;
  std::unique_ptr<MipIndex> index;

  static Env Make(uint64_t seed, uint32_t records = 250, uint32_t attrs = 5,
                  uint32_t domain = 4) {
    Env env;
    env.data =
        std::make_unique<Dataset>(RandomDataset(seed, records, attrs, domain));
    auto built = MipIndex::Build(*env.data, {.primary_support = 0.2});
    EXPECT_TRUE(built.ok());
    env.index = std::make_unique<MipIndex>(std::move(built.value()));
    return env;
  }

  Rect Box(std::vector<RangeSelection> ranges) const {
    LocalizedQuery query;
    query.ranges = std::move(ranges);
    return query.ToRect(data->schema());
  }
};

QueryCacheOptions Enabled() {
  QueryCacheOptions options;
  options.enabled = true;
  options.byte_budget = size_t{64} << 20;
  return options;
}

/// Populates `cache` with a mix of state the format must carry: a cold
/// entry, a containment-derived entry (giving the source a derivation and
/// 2Q promotion), an exact hit (per-entry hit count), and a committed
/// count memo holding both a full-count and a table record.
void Populate(const Env& env, QueryCache* cache) {
  uint64_t ignored = 0;
  Rect outer = env.Box({{0, 0, 2}});
  Rect inner = env.Box({{0, 0, 1}, {2, 0, 1}});
  cache->Acquire(outer, ExecBackend::kScalar, nullptr, &ignored);
  cache->Acquire(inner, ExecBackend::kScalar, nullptr, &ignored);
  cache->Acquire(inner, ExecBackend::kScalar, nullptr, &ignored);  // exact hit
  auto txn = cache->BeginTxn(inner);
  txn->RecordFull(2, 9);
  txn->RecordTable(5, 17, std::vector<uint32_t>{40, 30, 21, 17});
  cache->Commit(txn.get());
}

TEST(CachePersistTest, RoundTripPreservesEntries) {
  Env env = Env::Make(21);
  QueryCache cache(*env.index, Enabled());
  Populate(env, &cache);
  const std::string path = TempPath("cache_roundtrip.ccache");
  ASSERT_TRUE(SaveQueryCache(cache, *env.index, path).ok());

  QueryCache reloaded(*env.index, Enabled());
  Status loaded = LoadQueryCache(*env.index, path, &reloaded);
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();

  const auto before = cache.Snapshot();
  const auto after = reloaded.Snapshot();
  ASSERT_EQ(after.size(), before.size());
  ASSERT_GT(before.size(), 0u);
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i].box, before[i].box) << "entry " << i;
    EXPECT_EQ(after[i].subset->tids, before[i].subset->tids) << "entry " << i;
    EXPECT_EQ(after[i].is_protected, before[i].is_protected) << "entry " << i;
    EXPECT_EQ(after[i].hits, before[i].hits) << "entry " << i;
    EXPECT_EQ(after[i].derivations, before[i].derivations) << "entry " << i;
    ASSERT_EQ(after[i].memos.size(), before[i].memos.size()) << "entry " << i;
    for (size_t m = 0; m < before[i].memos.size(); ++m) {
      EXPECT_EQ(after[i].memos[m].first, before[i].memos[m].first);
      EXPECT_EQ(after[i].memos[m].second->full_count,
                before[i].memos[m].second->full_count);
      EXPECT_EQ(after[i].memos[m].second->superset_counts,
                before[i].memos[m].second->superset_counts);
    }
  }
  // Byte accounting is recomputed, not trusted from the file, and must
  // land on the identical resident footprint.
  EXPECT_EQ(reloaded.telemetry().bytes, cache.telemetry().bytes);
  EXPECT_EQ(reloaded.telemetry().entries, cache.telemetry().entries);

  // The warm cache serves the persisted boxes as exact hits and replays
  // the memo without recounting.
  EXPECT_EQ(reloaded.Probe(env.Box({{0, 0, 2}})).tier, CacheTier::kExact);
  Rect inner = env.Box({{0, 0, 1}, {2, 0, 1}});
  EXPECT_EQ(reloaded.Probe(inner).tier, CacheTier::kExact);
  auto memo = reloaded.MemoLookup(CanonicalBoxKey(inner), "", 5);
  ASSERT_NE(memo, nullptr);
  EXPECT_EQ(memo->full_count, 17u);
  EXPECT_EQ(memo->superset_counts, (std::vector<uint32_t>{40, 30, 21, 17}));
  std::remove(path.c_str());
}

TEST(CachePersistTest, EmptyCacheRoundTrips) {
  Env env = Env::Make(22, 60, 3, 3);
  QueryCache cache(*env.index, Enabled());
  const std::string path = TempPath("cache_empty.ccache");
  ASSERT_TRUE(SaveQueryCache(cache, *env.index, path).ok());
  QueryCache reloaded(*env.index, Enabled());
  Status loaded = LoadQueryCache(*env.index, path, &reloaded);
  EXPECT_TRUE(loaded.ok()) << loaded.ToString();
  EXPECT_EQ(reloaded.telemetry().entries, 0u);
  EXPECT_EQ(reloaded.telemetry().bytes, 0u);
  std::remove(path.c_str());
}

// A prefix of any length must fail with a clean Status and leave the
// target cache untouched — the warm-restart path degrades to cold.
TEST(CachePersistTest, TruncationAtEveryOffsetFailsCleanly) {
  Env env = Env::Make(23, 60, 3, 3);
  QueryCache cache(*env.index, Enabled());
  Populate(env, &cache);
  const std::string path = TempPath("cache_truncate.ccache");
  ASSERT_TRUE(SaveQueryCache(cache, *env.index, path).ok());
  const std::string full = Slurp(path);
  ASSERT_GT(full.size(), 32u);

  for (size_t keep = 0; keep < full.size(); ++keep) {
    Spit(path, full.substr(0, keep));
    QueryCache fresh(*env.index, Enabled());
    Status loaded = LoadQueryCache(*env.index, path, &fresh);
    EXPECT_FALSE(loaded.ok()) << "prefix of " << keep << " bytes loaded";
    EXPECT_EQ(fresh.telemetry().entries, 0u) << "prefix of " << keep;
  }
  Spit(path, full);
  QueryCache fresh(*env.index, Enabled());
  EXPECT_TRUE(LoadQueryCache(*env.index, path, &fresh).ok());
  std::remove(path.c_str());
}

// Flipping any single bit must be rejected: header flips structurally,
// padding by the zero check, payloads by the per-section checksum, the
// trailing checksum by its own mismatch.
TEST(CachePersistTest, SingleBitFlipsAreAlwaysRejected) {
  Env env = Env::Make(24, 40, 3, 3);
  QueryCache cache(*env.index, Enabled());
  Populate(env, &cache);
  const std::string path = TempPath("cache_bitflip.ccache");
  ASSERT_TRUE(SaveQueryCache(cache, *env.index, path).ok());
  const std::string full = Slurp(path);

  for (size_t byte = 0; byte < full.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = full;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      Spit(path, flipped);
      QueryCache fresh(*env.index, Enabled());
      Status loaded = LoadQueryCache(*env.index, path, &fresh);
      EXPECT_FALSE(loaded.ok())
          << "flip of bit " << bit << " in byte " << byte << " loaded";
    }
  }
  std::remove(path.c_str());
}

// A cache saved against one index must not load against another: the
// engine rebuilt (different data or options) means every tid is suspect.
TEST(CachePersistTest, FingerprintMismatchFallsBackCold) {
  Env env = Env::Make(25, 80, 4, 3);
  Env other = Env::Make(26, 80, 4, 3);
  QueryCache cache(*env.index, Enabled());
  Populate(env, &cache);
  const std::string path = TempPath("cache_fingerprint.ccache");
  ASSERT_TRUE(SaveQueryCache(cache, *env.index, path).ok());

  QueryCache fresh(*other.index, Enabled());
  Status loaded = LoadQueryCache(*other.index, path, &fresh);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(loaded.ToString().find("different index"), std::string::npos)
      << loaded.ToString();
  EXPECT_EQ(fresh.telemetry().entries, 0u);
  std::remove(path.c_str());
}

TEST(CachePersistTest, WrongMagicIsNotACacheFile) {
  Env env = Env::Make(27, 40, 3, 3);
  const std::string path = TempPath("cache_magic.ccache");
  Spit(path, "definitely not a session cache, but long enough to read");
  QueryCache fresh(*env.index, Enabled());
  Status loaded = LoadQueryCache(*env.index, path, &fresh);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.ToString().find("is not a COLARM cache file"),
            std::string::npos)
      << loaded.ToString();
  std::remove(path.c_str());
}

TEST(CachePersistTest, WrongVersionIsRejected) {
  Env env = Env::Make(28, 40, 3, 3);
  QueryCache cache(*env.index, Enabled());
  Populate(env, &cache);
  const std::string path = TempPath("cache_version.ccache");
  ASSERT_TRUE(SaveQueryCache(cache, *env.index, path).ok());
  std::string full = Slurp(path);
  const uint32_t old_version = 3;  // the version field sits after the magic
  std::memcpy(&full[4], &old_version, sizeof(old_version));
  Spit(path, full);
  QueryCache fresh(*env.index, Enabled());
  Status loaded = LoadQueryCache(*env.index, path, &fresh);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.ToString().find("unsupported cache version"),
            std::string::npos)
      << loaded.ToString();
  std::remove(path.c_str());
}

// An entry count inflated far beyond what the file holds must be bounded
// before the loader allocates anything for the claimed entries.
TEST(CachePersistTest, HugeEntryCountIsRejectedBeforeAllocation) {
  Env env = Env::Make(29, 40, 3, 3);
  QueryCache cache(*env.index, Enabled());
  Populate(env, &cache);
  const std::string path = TempPath("cache_huge_count.ccache");
  ASSERT_TRUE(SaveQueryCache(cache, *env.index, path).ok());
  std::string full = Slurp(path);
  const uint32_t huge = 0xfffffff0u;  // entry_count sits at offset 20
  std::memcpy(&full[20], &huge, sizeof(huge));
  Spit(path, full);
  QueryCache fresh(*env.index, Enabled());
  Status loaded = LoadQueryCache(*env.index, path, &fresh);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(CachePersistTest, TrailingGarbageIsRejected) {
  Env env = Env::Make(30, 40, 3, 3);
  QueryCache cache(*env.index, Enabled());
  Populate(env, &cache);
  const std::string path = TempPath("cache_trailing.ccache");
  ASSERT_TRUE(SaveQueryCache(cache, *env.index, path).ok());
  Spit(path, Slurp(path) + "x");
  QueryCache fresh(*env.index, Enabled());
  EXPECT_FALSE(LoadQueryCache(*env.index, path, &fresh).ok());
  std::remove(path.c_str());
}

TEST(CachePersistTest, MissingFileFails) {
  Env env = Env::Make(31, 40, 3, 3);
  QueryCache fresh(*env.index, Enabled());
  Status loaded = LoadQueryCache(
      *env.index, TempPath("cache_does_not_exist.ccache"), &fresh);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), StatusCode::kIoError);
}

// A load replaces prior residency wholesale (like Clear + insert), so a
// stale warm state cannot leak through a restore.
TEST(CachePersistTest, LoadReplacesExistingResidency) {
  Env env = Env::Make(32);
  QueryCache source(*env.index, Enabled());
  Populate(env, &source);
  const std::string path = TempPath("cache_replace.ccache");
  ASSERT_TRUE(SaveQueryCache(source, *env.index, path).ok());

  QueryCache target(*env.index, Enabled());
  uint64_t ignored = 0;
  Rect stale = env.Box({{1, 0, 1}});
  target.Acquire(stale, ExecBackend::kScalar, nullptr, &ignored);
  ASSERT_EQ(target.Probe(stale).tier, CacheTier::kExact);

  ASSERT_TRUE(LoadQueryCache(*env.index, path, &target).ok());
  EXPECT_EQ(target.Probe(stale).tier, CacheTier::kNone);
  EXPECT_EQ(target.telemetry().entries, source.telemetry().entries);
  EXPECT_EQ(target.telemetry().bytes, source.telemetry().bytes);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace colarm
