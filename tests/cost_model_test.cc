#include <gtest/gtest.h>

#include <memory>

#include "cost/cost_model.h"
#include "data/histogram.h"
#include "test_util.h"

namespace colarm {
namespace {

using testing_util::RandomDataset;

struct Fixture {
  std::unique_ptr<Dataset> data;
  std::unique_ptr<MipIndex> index;
  std::unique_ptr<CardinalityEstimator> cardinality;
  std::unique_ptr<CostModel> model;

  static Fixture Make(uint64_t seed) {
    Fixture fx;
    fx.data = std::make_unique<Dataset>(RandomDataset(seed, 300, 5, 4));
    auto built = MipIndex::Build(*fx.data, {.primary_support = 0.2});
    EXPECT_TRUE(built.ok());
    fx.index = std::make_unique<MipIndex>(std::move(built.value()));
    fx.cardinality = std::make_unique<CardinalityEstimator>(
        fx.data->schema(), fx.index->histograms(), fx.data->num_records());
    fx.model = std::make_unique<CostModel>(fx.index->stats(), *fx.cardinality,
                                           CostConstants{});
    return fx;
  }
};

LocalizedQuery Query(double minsupp, std::vector<RangeSelection> ranges) {
  LocalizedQuery query;
  query.minsupp = minsupp;
  query.minconf = 0.8;
  query.ranges = std::move(ranges);
  return query;
}

TEST(CardinalityTest, FullDomainSelectsAll) {
  Fixture fx = Fixture::Make(1);
  LocalizedQuery query = Query(0.5, {});
  EXPECT_DOUBLE_EQ(fx.cardinality->SubsetFraction(query), 1.0);
  EXPECT_DOUBLE_EQ(fx.cardinality->SubsetSize(query),
                   fx.data->num_records());
}

TEST(CardinalityTest, SingleAttributeExactFromHistogram) {
  Fixture fx = Fixture::Make(2);
  LocalizedQuery query = Query(0.5, {{0, 0, 0}});
  uint32_t actual = 0;
  for (Tid t = 0; t < fx.data->num_records(); ++t) {
    if (fx.data->Value(t, 0) == 0) ++actual;
  }
  EXPECT_NEAR(fx.cardinality->SubsetSize(query), actual, 1e-9);
}

TEST(CardinalityTest, PairPredicatesUseExactJointStatistics) {
  // Attribute domains here are small, so a joint histogram covers the
  // pair: the two-attribute estimate must be *exact*, not the
  // independence product.
  Fixture fx = Fixture::Make(3);
  LocalizedQuery query = Query(0.5, {{0, 0, 1}, {1, 0, 1}});
  uint32_t actual = 0;
  for (Tid t = 0; t < fx.data->num_records(); ++t) {
    if (fx.data->Value(t, 0) <= 1 && fx.data->Value(t, 1) <= 1) ++actual;
  }
  EXPECT_NEAR(fx.cardinality->SubsetSize(query), actual, 1e-9);
}

TEST(CardinalityTest, JointStatisticsCatchCorrelation) {
  // A perfectly correlated pair: independence would square the
  // selectivity; the joint histogram must see through it.
  Dataset data{Schema(std::vector<Attribute>{
      {"x", {"a", "b"}},
      {"y", {"a", "b"}},
  })};
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(data.AddRecord({0, 0}).ok());
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(data.AddRecord({1, 1}).ok());
  DatasetHistograms hists(data);
  CardinalityEstimator est(data.schema(), hists, data.num_records());
  LocalizedQuery query = Query(0.5, {{0, 0, 0}, {1, 0, 0}});
  // True selectivity is 0.5 (x=a implies y=a); independence says 0.25.
  EXPECT_NEAR(est.SubsetFraction(query), 0.5, 1e-12);
}

TEST(CardinalityTest, QueryExtentsNormalized) {
  Fixture fx = Fixture::Make(4);
  auto extents = fx.cardinality->QueryExtents(Query(0.5, {{2, 0, 1}}));
  ASSERT_EQ(extents.size(), 5u);
  EXPECT_DOUBLE_EQ(extents[2], 0.5);  // 2 of 4 values
  EXPECT_DOUBLE_EQ(extents[0], 1.0);
}

TEST(CostModelTest, AllPlansGetPositiveFiniteCosts) {
  Fixture fx = Fixture::Make(5);
  auto all = fx.model->EstimateAll(Query(0.5, {{0, 0, 1}}));
  for (const PlanCostEstimate& est : all) {
    EXPECT_GT(est.total, 0.0) << PlanKindName(est.plan);
    EXPECT_TRUE(std::isfinite(est.total)) << PlanKindName(est.plan);
    EXPECT_FALSE(est.ToString().empty());
  }
}

TEST(CostModelTest, SupportedSearchNeverCostsMoreCandidates) {
  Fixture fx = Fixture::Make(6);
  for (double minsupp : {0.3, 0.5, 0.8, 0.95}) {
    auto sev = fx.model->Estimate(PlanKind::kSEV, Query(minsupp, {{0, 0, 1}}));
    auto ssev =
        fx.model->Estimate(PlanKind::kSSEV, Query(minsupp, {{0, 0, 1}}));
    EXPECT_LE(ssev.est_candidates, sev.est_candidates + 1e-9);
  }
}

TEST(CostModelTest, HigherMinsuppShrinksSupportedCandidates) {
  Fixture fx = Fixture::Make(7);
  auto low = fx.model->Estimate(PlanKind::kSSEV, Query(0.3, {{0, 0, 1}}));
  auto high = fx.model->Estimate(PlanKind::kSSEV, Query(0.95, {{0, 0, 1}}));
  EXPECT_LE(high.est_candidates, low.est_candidates + 1e-9);
}

TEST(CostModelTest, SmallerSubsetReducesArmCost) {
  Fixture fx = Fixture::Make(8);
  auto narrow =
      fx.model->Estimate(PlanKind::kARM, Query(0.5, {{0, 0, 0}, {1, 0, 0}}));
  auto wide = fx.model->Estimate(PlanKind::kARM, Query(0.5, {}));
  EXPECT_LT(narrow.mine, wide.mine);
  EXPECT_LE(narrow.est_subset_size, wide.est_subset_size);
}

TEST(CostModelTest, ContainedEstimateBounded) {
  Fixture fx = Fixture::Make(9);
  auto est = fx.model->Estimate(PlanKind::kSSEUV, Query(0.4, {{0, 0, 2}}));
  EXPECT_GE(est.est_contained, 0.0);
  EXPECT_LE(est.est_contained, est.est_candidates + 1e-9);
}

TEST(CostModelTest, EstimatesDependOnConstants) {
  Fixture fx = Fixture::Make(10);
  CostConstants expensive;
  expensive.record_item_check_ns = 1000.0;
  CostModel pricey(fx.index->stats(), *fx.cardinality, expensive);
  auto cheap_est = fx.model->Estimate(PlanKind::kSEV, Query(0.4, {{0, 0, 1}}));
  auto pricey_est = pricey.Estimate(PlanKind::kSEV, Query(0.4, {{0, 0, 1}}));
  EXPECT_GT(pricey_est.eliminate, cheap_est.eliminate);
}

TEST(CalibrationTest, ProducesPositiveConstants) {
  Dataset data = RandomDataset(11, 500, 5, 4);
  CostConstants constants = Calibrate(data);
  EXPECT_GT(constants.record_item_check_ns, 0.0);
  EXPECT_GT(constants.rtree_box_check_ns, 0.0);
  EXPECT_GT(constants.mine_cell_ns, 0.0);
  EXPECT_GT(constants.rule_check_ns, 0.0);
  EXPECT_GT(constants.select_record_ns, 0.0);
}

TEST(CalibrationTest, DegenerateDatasetFallsBackToDefaults) {
  Dataset tiny{Schema({{"a", {"x"}}, {"b", {"y"}}})};
  ASSERT_TRUE(tiny.AddRecord({0, 0}).ok());
  CostConstants constants = Calibrate(tiny);
  CostConstants defaults;
  EXPECT_DOUBLE_EQ(constants.record_item_check_ns,
                   defaults.record_item_check_ns);
}

}  // namespace
}  // namespace colarm
