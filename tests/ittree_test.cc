#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "ittree/ittree.h"

namespace colarm {
namespace {

TEST(ITTreeTest, InsertAndFind) {
  ITTree tree;
  uint32_t a = tree.Insert({1, 3, 5}, 10);
  uint32_t b = tree.Insert({1, 3}, 12);
  uint32_t c = tree.Insert({2}, 30);
  EXPECT_EQ(tree.size(), 3u);

  ASSERT_TRUE(tree.Find(Itemset{1, 3, 5}).has_value());
  EXPECT_EQ(*tree.Find(Itemset{1, 3, 5}), a);
  EXPECT_EQ(*tree.Find(Itemset{1, 3}), b);
  EXPECT_EQ(*tree.Find(Itemset{2}), c);
  EXPECT_FALSE(tree.Find(Itemset{1}).has_value());
  EXPECT_FALSE(tree.Find(Itemset{1, 3, 5, 7}).has_value());
  EXPECT_FALSE(tree.Find(Itemset{9}).has_value());
}

TEST(ITTreeTest, ItemsAndCountsRoundTrip) {
  ITTree tree;
  uint32_t id = tree.Insert({4, 8}, 77);
  EXPECT_EQ(tree.items(id), (Itemset{4, 8}));
  EXPECT_EQ(tree.count(id), 77u);
}

TEST(ITTreeTest, MaxSupersetCount) {
  ITTree tree;
  tree.Insert({1, 3, 5}, 10);
  tree.Insert({1, 3}, 12);
  tree.Insert({3, 5, 7}, 8);
  // Supersets of {3}: all three -> max 12.
  EXPECT_EQ(tree.MaxSupersetCount(Itemset{3}), 12u);
  // Supersets of {5}: {1,3,5} and {3,5,7} -> max 10.
  EXPECT_EQ(tree.MaxSupersetCount(Itemset{5}), 10u);
  // Supersets of {1,5}: only {1,3,5}.
  EXPECT_EQ(tree.MaxSupersetCount(Itemset{1, 5}), 10u);
  // No superset stored.
  EXPECT_EQ(tree.MaxSupersetCount(Itemset{2}), 0u);
  EXPECT_EQ(tree.MaxSupersetCount(Itemset{1, 3, 5, 9}), 0u);
}

TEST(ITTreeTest, EmptyItemsetIsSubsetOfEverything) {
  ITTree tree;
  tree.Insert({2, 4}, 5);
  tree.Insert({7}, 9);
  EXPECT_EQ(tree.MaxSupersetCount(Itemset{}), 9u);
}

TEST(ITTreeTest, ForEachSupersetEnumeratesExactly) {
  ITTree tree;
  Rng rng(5);
  std::vector<Itemset> stored;
  for (int i = 0; i < 200; ++i) {
    Itemset items;
    for (ItemId item = 0; item < 12; ++item) {
      if (rng.Bernoulli(0.3)) items.push_back(item);
    }
    if (items.empty()) items.push_back(static_cast<ItemId>(rng.Uniform(12)));
    if (!tree.Find(items).has_value()) {
      tree.Insert(items, static_cast<uint32_t>(rng.Uniform(100)));
      stored.push_back(items);
    }
  }
  for (int q = 0; q < 60; ++q) {
    Itemset probe;
    for (ItemId item = 0; item < 12; ++item) {
      if (rng.Bernoulli(0.2)) probe.push_back(item);
    }
    std::set<uint32_t> expected;
    for (uint32_t id = 0; id < tree.size(); ++id) {
      if (ItemsetIsSubset(probe, tree.items(id))) expected.insert(id);
    }
    std::set<uint32_t> actual;
    tree.ForEachSuperset(probe, [&actual](uint32_t id) { actual.insert(id); });
    EXPECT_EQ(actual, expected);
  }
}

TEST(ITTreeTest, ForEachSubsetOfEnumeratesExactly) {
  ITTree tree;
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    Itemset items;
    for (ItemId item = 0; item < 12; ++item) {
      if (rng.Bernoulli(0.3)) items.push_back(item);
    }
    if (items.empty()) items.push_back(static_cast<ItemId>(rng.Uniform(12)));
    if (!tree.Find(items).has_value()) {
      tree.Insert(items, static_cast<uint32_t>(rng.Uniform(100)));
    }
  }
  for (int q = 0; q < 60; ++q) {
    Itemset probe;
    for (ItemId item = 0; item < 12; ++item) {
      if (rng.Bernoulli(0.5)) probe.push_back(item);
    }
    std::set<uint32_t> expected;
    for (uint32_t id = 0; id < tree.size(); ++id) {
      if (ItemsetIsSubset(tree.items(id), probe)) expected.insert(id);
    }
    std::set<uint32_t> actual;
    tree.ForEachSubsetOf(probe, [&actual](uint32_t id) { actual.insert(id); });
    EXPECT_EQ(actual, expected) << "probe size " << probe.size();
  }
}

TEST(ITTreeTest, SubsetWalkVisitsEachEntryOnce) {
  ITTree tree;
  tree.Insert({1, 2}, 5);
  tree.Insert({1}, 9);
  tree.Insert({2}, 7);
  int visits = 0;
  tree.ForEachSubsetOf(Itemset{1, 2, 3}, [&visits](uint32_t) { ++visits; });
  EXPECT_EQ(visits, 3);
}

TEST(ITTreeTest, ForEachVisitsAll) {
  ITTree tree;
  tree.Insert({1}, 1);
  tree.Insert({2}, 2);
  tree.Insert({1, 2}, 3);
  int visits = 0;
  tree.ForEach([&visits](uint32_t) { ++visits; });
  EXPECT_EQ(visits, 3);
}

TEST(ITTreeTest, SharedPrefixesShareNodes) {
  ITTree tree;
  tree.Insert({1, 2, 3}, 1);
  tree.Insert({1, 2, 4}, 1);
  tree.Insert({1, 2}, 1);
  // Root + path 1,2 (2 nodes) + leaves 3 and 4 = 5 nodes.
  EXPECT_EQ(tree.num_nodes(), 5u);
}

}  // namespace
}  // namespace colarm
