#include <gtest/gtest.h>

#include "data/salary_dataset.h"
#include "mining/brute_force.h"
#include "mip/mip_index.h"
#include "test_util.h"

namespace colarm {
namespace {

using testing_util::RandomDataset;

MipIndexOptions Options(double primary) {
  MipIndexOptions options;
  options.primary_support = primary;
  return options;
}

TEST(MipIndexTest, MipsAreExactlyTheClosedFrequentItemsets) {
  Dataset data = RandomDataset(1, 80, 5, 3);
  auto index = MipIndex::Build(data, Options(0.2));
  ASSERT_TRUE(index.ok());
  auto expected = MineClosedBruteForce(data, index->primary_count());
  ASSERT_EQ(index->num_mips(), expected.size());
  // Index is itemset-sorted; brute force output too.
  for (uint32_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(index->mip(i).items, expected[i].items);
    EXPECT_EQ(index->mip(i).global_count, expected[i].tids.size());
  }
}

TEST(MipIndexTest, BoundingBoxesAreTight) {
  Dataset data = RandomDataset(2, 60, 4, 4);
  auto index = MipIndex::Build(data, Options(0.25));
  ASSERT_TRUE(index.ok());
  const Schema& schema = data.schema();
  for (uint32_t id = 0; id < index->num_mips(); ++id) {
    const Mip& mip = index->mip(id);
    // Recompute the exact per-attribute min/max over supporting records.
    Rect expected = Rect::MakeEmpty(schema.num_attributes());
    for (Tid t = 0; t < data.num_records(); ++t) {
      if (!data.ContainsAll(t, mip.items)) continue;
      std::vector<ValueId> point(schema.num_attributes());
      for (AttrId a = 0; a < schema.num_attributes(); ++a) {
        point[a] = data.Value(t, a);
      }
      expected.ExpandToIncludePoint(point);
    }
    EXPECT_EQ(mip.bbox, expected) << "MIP " << id;
  }
}

TEST(MipIndexTest, TightBoundingBoxHelper) {
  Dataset data = MakeSalaryDataset();
  const Schema& schema = data.schema();
  // Records supporting (Age=20-30, Salary=90K-120K) are 1..5 (0-based).
  Itemset items = {schema.ItemOf(4, 0), schema.ItemOf(5, 2)};
  Tidset tids = {1, 2, 3, 4, 5};
  Rect box = TightBoundingBox(data, items, tids);
  EXPECT_EQ(box.lo(4), 0);
  EXPECT_EQ(box.hi(4), 0);  // Age fixed at 20-30
  EXPECT_EQ(box.lo(5), 2);
  EXPECT_EQ(box.hi(5), 2);  // Salary fixed
  EXPECT_EQ(box.lo(0), 0);
  EXPECT_EQ(box.hi(0), 1);  // companies IBM..Google
  EXPECT_EQ(box.lo(2), 0);
  EXPECT_EQ(box.hi(2), 1);  // locations Boston..SFO
}

TEST(MipIndexTest, GlobalCountViaClosedSupersets) {
  Dataset data = RandomDataset(3, 70, 5, 3);
  auto index = MipIndex::Build(data, Options(0.15));
  ASSERT_TRUE(index.ok());
  auto frequent = MineFrequentBruteForce(data, index->primary_count());
  for (const FrequentItemset& f : frequent) {
    EXPECT_EQ(index->GlobalCount(f.items), f.count)
        << ItemsetToString(data.schema(), f.items);
  }
}

TEST(MipIndexTest, GlobalCountZeroBelowPrimary) {
  Dataset data = RandomDataset(4, 50, 4, 3);
  auto index = MipIndex::Build(data, Options(0.9));
  ASSERT_TRUE(index.ok());
  // An itemset combining two different non-dominant values is far below a
  // 90% primary threshold.
  const Schema& schema = data.schema();
  Itemset rare = {schema.ItemOf(0, 1), schema.ItemOf(1, 2)};
  EXPECT_EQ(index->GlobalCount(rare), 0u);
}

TEST(MipIndexTest, RTreeHoldsOneEntryPerMip) {
  Dataset data = RandomDataset(5, 60, 5, 3);
  auto index = MipIndex::Build(data, Options(0.2));
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->rtree().size(), index->num_mips());
  EXPECT_TRUE(index->rtree().CheckInvariants());
  EXPECT_EQ(index->ittree().size(), index->num_mips());
}

TEST(MipIndexTest, StatsAreConsistent) {
  Dataset data = RandomDataset(6, 90, 5, 3);
  auto index = MipIndex::Build(data, Options(0.2));
  ASSERT_TRUE(index.ok());
  const IndexStats& stats = index->stats();
  EXPECT_EQ(stats.num_mips, index->num_mips());
  EXPECT_EQ(stats.num_records, data.num_records());
  EXPECT_EQ(stats.rtree_height, index->rtree().height());
  EXPECT_EQ(stats.sorted_counts.size(), index->num_mips());
  EXPECT_TRUE(std::is_sorted(stats.sorted_counts.begin(),
                             stats.sorted_counts.end()));
  // Length histogram sums to the MIP count.
  uint64_t total = 0;
  for (uint32_t c : stats.length_histogram) total += c;
  EXPECT_EQ(total, index->num_mips());
  EXPECT_GT(stats.avg_itemset_length, 0.0);
  // Every MIP satisfies the primary threshold.
  EXPECT_GE(stats.sorted_counts.front(), index->primary_count());

  EXPECT_DOUBLE_EQ(stats.FractionWithCountAtLeast(0), 1.0);
  EXPECT_DOUBLE_EQ(
      stats.FractionWithCountAtLeast(stats.sorted_counts.back() + 1), 0.0);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(MipIndexTest, PackedAndStrVariantsIndexSameMips) {
  Dataset data = RandomDataset(7, 70, 4, 3);
  MipIndexOptions str = Options(0.2);
  MipIndexOptions packed = Options(0.2);
  packed.use_str_packing = false;
  auto a = MipIndex::Build(data, str);
  auto b = MipIndex::Build(data, packed);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_mips(), b->num_mips());
  EXPECT_TRUE(b->rtree().CheckInvariants());
}

TEST(MipIndexTest, RejectsBadInputs) {
  Dataset data = RandomDataset(8, 20, 3, 2);
  EXPECT_FALSE(MipIndex::Build(data, Options(0.0)).ok());
  EXPECT_FALSE(MipIndex::Build(data, Options(1.5)).ok());
  Dataset empty{Schema(std::vector<Attribute>{{"a", {"x"}}})};
  EXPECT_FALSE(MipIndex::Build(empty, Options(0.5)).ok());
}

TEST(MipIndexTest, SalaryIndexAtPaperThreshold) {
  Dataset data = MakeSalaryDataset();
  // Primary support 27% (3/11): low enough to capture RG and RL itemsets.
  auto index = MipIndex::Build(data, Options(0.27));
  ASSERT_TRUE(index.ok());
  const Schema& schema = data.schema();
  Itemset rg = {schema.ItemOf(4, 0), schema.ItemOf(5, 2)};
  EXPECT_EQ(index->GlobalCount(rg), 5u);
  EXPECT_GT(index->num_mips(), 0u);
}

}  // namespace
}  // namespace colarm
