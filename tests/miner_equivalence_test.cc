#include <gtest/gtest.h>

#include <map>

#include "data/salary_dataset.h"
#include "mining/apriori.h"
#include "mining/brute_force.h"
#include "mining/declat.h"
#include "mining/eclat.h"
#include "mining/fpgrowth.h"
#include "test_util.h"

namespace colarm {
namespace {

using testing_util::RandomDataset;

// (seed, records, attrs, domain, min_count)
using MinerParam = std::tuple<uint64_t, uint32_t, uint32_t, uint32_t, uint32_t>;

class MinerEquivalenceTest : public ::testing::TestWithParam<MinerParam> {};

TEST_P(MinerEquivalenceTest, AllMinersAgreeWithBruteForce) {
  auto [seed, records, attrs, domain, min_count] = GetParam();
  Dataset data = RandomDataset(seed, records, attrs, domain);

  auto expected = MineFrequentBruteForce(data, min_count);
  auto apriori = MineApriori(data, min_count);
  auto eclat = MineEclat(data, min_count);
  auto declat = MineDEclat(data, min_count);
  auto fp = MineFpGrowth(data, min_count);

  EXPECT_EQ(apriori, expected) << "Apriori mismatch";
  EXPECT_EQ(eclat, expected) << "Eclat mismatch";
  EXPECT_EQ(declat, expected) << "dEclat mismatch";
  EXPECT_EQ(fp, expected) << "FP-growth mismatch";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MinerEquivalenceTest,
    ::testing::Values(MinerParam{1, 40, 4, 3, 4}, MinerParam{2, 40, 4, 3, 10},
                      MinerParam{3, 60, 5, 2, 6}, MinerParam{4, 60, 5, 2, 30},
                      MinerParam{5, 30, 6, 3, 3}, MinerParam{6, 80, 3, 4, 8},
                      MinerParam{7, 100, 4, 2, 50},
                      MinerParam{8, 50, 5, 3, 25},
                      MinerParam{9, 25, 7, 2, 5},
                      MinerParam{10, 70, 4, 4, 7}));

TEST(MinerTest, SalaryDatasetSingletons) {
  Dataset data = MakeSalaryDataset();
  auto frequent = MineEclat(data, 5);
  // Items with support >= 5: Location=Boston (5), Gender=M (5)... verify a
  // few hand-counted entries from Table 1.
  const Schema& schema = data.schema();
  auto find = [&](const Itemset& items) -> int {
    for (const auto& f : frequent) {
      if (f.items == items) return static_cast<int>(f.count);
    }
    return -1;
  };
  EXPECT_EQ(find({schema.ItemOf(2, 0)}), 5);              // Boston x5
  EXPECT_EQ(find({schema.ItemOf(4, 0)}), 6);              // Age 20-30 x6
  EXPECT_EQ(find({schema.ItemOf(5, 2)}), 8);              // Salary 90-120 x8
  EXPECT_EQ(find({schema.ItemOf(4, 0), schema.ItemOf(5, 2)}), 5);  // RG pair
  EXPECT_EQ(find({schema.ItemOf(0, 0)}), -1);             // IBM only x3
}

TEST(MinerTest, ThresholdOneReturnsEverySupportedItemset) {
  Dataset data = RandomDataset(99, 12, 3, 2);
  auto all = MineEclat(data, 1);
  auto expected = MineFrequentBruteForce(data, 1);
  EXPECT_EQ(all, expected);
  EXPECT_FALSE(all.empty());
}

TEST(MinerTest, ThresholdAboveDatasetYieldsNothing) {
  Dataset data = RandomDataset(13, 20, 3, 3);
  EXPECT_TRUE(MineEclat(data, 21).empty());
  EXPECT_TRUE(MineDEclat(data, 21).empty());
  EXPECT_TRUE(MineApriori(data, 21).empty());
  EXPECT_TRUE(MineFpGrowth(data, 21).empty());
}

TEST(MinerTest, DEclatMatchesEclatOnDenseData) {
  // The diffset trade-off targets dense data; verify equality there too.
  Dataset data = RandomDataset(55, 300, 6, 2);
  for (uint32_t min_count : {30u, 90u, 180u}) {
    EXPECT_EQ(MineDEclat(data, min_count), MineEclat(data, min_count))
        << "min_count " << min_count;
  }
}

TEST(MinerTest, SupportsAreDownwardClosed) {
  Dataset data = RandomDataset(21, 60, 5, 3);
  auto frequent = MineEclat(data, 6);
  // Build a lookup for subset-support checks.
  std::map<Itemset, uint32_t> by_items;
  for (const auto& f : frequent) by_items[f.items] = f.count;
  for (const auto& f : frequent) {
    if (f.items.size() < 2) continue;
    for (size_t drop = 0; drop < f.items.size(); ++drop) {
      Itemset sub;
      for (size_t i = 0; i < f.items.size(); ++i) {
        if (i != drop) sub.push_back(f.items[i]);
      }
      auto it = by_items.find(sub);
      ASSERT_NE(it, by_items.end())
          << "subset of a frequent itemset missing from output";
      EXPECT_GE(it->second, f.count);
    }
  }
}

}  // namespace
}  // namespace colarm
