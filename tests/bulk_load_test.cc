#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "rtree/bulk_load.h"

namespace colarm {
namespace {

std::vector<RTreeEntry> RandomEntries(uint64_t seed, uint32_t count,
                                      uint32_t dims, uint32_t domain) {
  Rng rng(seed);
  std::vector<RTreeEntry> entries;
  for (uint32_t i = 0; i < count; ++i) {
    Rect box = Rect::MakeEmpty(dims);
    for (uint32_t d = 0; d < dims; ++d) {
      ValueId lo = static_cast<ValueId>(rng.Uniform(domain));
      ValueId hi = static_cast<ValueId>(
          std::min<uint64_t>(domain - 1, lo + rng.Uniform(5)));
      box.SetInterval(d, lo, hi);
    }
    entries.push_back({box, i, static_cast<uint32_t>(rng.Uniform(500))});
  }
  return entries;
}

std::set<uint32_t> Hits(const RTree& tree, const Rect& query) {
  std::set<uint32_t> out;
  tree.Search(query, [&out](const RTreeEntry& e, bool) { out.insert(e.id); });
  return out;
}

std::set<uint32_t> BruteHits(const std::vector<RTreeEntry>& entries,
                             const Rect& query) {
  std::set<uint32_t> out;
  for (const RTreeEntry& e : entries) {
    if (query.Intersects(e.box)) out.insert(e.id);
  }
  return out;
}

class BulkLoadTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BulkLoadTest, STRSearchMatchesBruteForce) {
  const uint32_t count = GetParam();
  auto entries = RandomEntries(100 + count, count, 3, 30);
  RTree tree = BulkLoadSTR(3, entries);
  EXPECT_EQ(tree.size(), count);
  EXPECT_TRUE(tree.CheckInvariants());
  Rng rng(3);
  for (int q = 0; q < 20; ++q) {
    Rect query = Rect::MakeEmpty(3);
    for (uint32_t d = 0; d < 3; ++d) {
      ValueId lo = static_cast<ValueId>(rng.Uniform(30));
      query.SetInterval(d, lo,
                        static_cast<ValueId>(
                            std::min<uint64_t>(29, lo + rng.Uniform(12))));
    }
    EXPECT_EQ(Hits(tree, query), BruteHits(entries, query));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BulkLoadTest,
                         ::testing::Values(1, 5, 16, 17, 33, 100, 257, 1000));

TEST(BulkLoadTest, PackedSearchMatchesBruteForce) {
  auto entries = RandomEntries(7, 500, 2, 40);
  RTree tree = BulkLoadPacked(2, entries);
  EXPECT_EQ(tree.size(), 500u);
  EXPECT_TRUE(tree.CheckInvariants());
  Rng rng(8);
  for (int q = 0; q < 20; ++q) {
    Rect query = Rect::MakeEmpty(2);
    for (uint32_t d = 0; d < 2; ++d) {
      ValueId lo = static_cast<ValueId>(rng.Uniform(40));
      query.SetInterval(d, lo,
                        static_cast<ValueId>(
                            std::min<uint64_t>(39, lo + rng.Uniform(15))));
    }
    EXPECT_EQ(Hits(tree, query), BruteHits(entries, query));
  }
}

TEST(BulkLoadTest, EmptyInput) {
  RTree tree = BulkLoadSTR(2, {});
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BulkLoadTest, PackingAchievesHighUtilization) {
  auto entries = RandomEntries(9, 1024, 2, 50);
  RTree tree = BulkLoadSTR(2, entries);
  uint32_t leaves = 0;
  tree.ForEachNode([&](uint32_t, const Rect&, bool leaf, uint32_t) {
    if (leaf) ++leaves;
  });
  // 1024 entries at fanout 16: a packed build needs exactly 64 leaves; a
  // dynamic build typically needs far more.
  EXPECT_EQ(leaves, 64u);
}

TEST(BulkLoadTest, PackedTreeIsShallowerOrEqual) {
  auto entries = RandomEntries(10, 2000, 3, 50);
  RTree packed = BulkLoadSTR(3, entries);
  RTree dynamic(3);
  for (const RTreeEntry& e : entries) dynamic.Insert(e);
  EXPECT_LE(packed.height(), dynamic.height());
}

TEST(BulkLoadTest, SupportedSearchWorksOnPackedTree) {
  auto entries = RandomEntries(11, 300, 2, 30);
  RTree tree = BulkLoadSTR(2, entries);
  Rect query = Rect::MakeEmpty(2);
  query.SetInterval(0, 0, 29);
  query.SetInterval(1, 0, 29);
  std::set<uint32_t> expected;
  for (const RTreeEntry& e : entries) {
    if (e.count >= 250) expected.insert(e.id);
  }
  std::set<uint32_t> actual;
  tree.SearchSupported(query, 250,
                       [&](const RTreeEntry& e, bool) { actual.insert(e.id); });
  EXPECT_EQ(actual, expected);
}

TEST(BulkLoadTest, HighDimensionalBuild) {
  auto entries = RandomEntries(12, 400, 20, 8);
  RTree tree = BulkLoadSTR(20, entries);
  EXPECT_TRUE(tree.CheckInvariants());
  Rect query = Rect::MakeEmpty(20);
  for (uint32_t d = 0; d < 20; ++d) query.SetInterval(d, 0, 7);
  EXPECT_EQ(Hits(tree, query).size(), 400u);  // full-domain query hits all
}

}  // namespace
}  // namespace colarm
