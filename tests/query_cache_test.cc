#include "core/query_cache.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/engine.h"
#include "test_util.h"

namespace colarm {
namespace {

using testing_util::RandomDataset;

struct Env {
  std::unique_ptr<Dataset> data;
  std::unique_ptr<MipIndex> index;

  static Env Make(uint64_t seed) {
    Env env;
    env.data = std::make_unique<Dataset>(RandomDataset(seed, 250, 5, 4));
    auto built = MipIndex::Build(*env.data, {.primary_support = 0.2});
    EXPECT_TRUE(built.ok());
    env.index = std::make_unique<MipIndex>(std::move(built.value()));
    return env;
  }

  Rect Box(std::vector<RangeSelection> ranges) const {
    LocalizedQuery query;
    query.ranges = std::move(ranges);
    return query.ToRect(data->schema());
  }
};

QueryCacheOptions Enabled(size_t budget = size_t{64} << 20) {
  QueryCacheOptions options;
  options.enabled = true;
  options.byte_budget = budget;
  return options;
}

TEST(QueryCacheTest, ColdMissThenExactHit) {
  Env env = Env::Make(1);
  QueryCache cache(*env.index, Enabled());
  Rect box = env.Box({{0, 0, 1}});

  EXPECT_EQ(cache.Probe(box).tier, CacheTier::kNone);
  uint64_t checks = 0;
  auto cold = cache.Acquire(box, ExecBackend::kScalar, nullptr, &checks);
  EXPECT_EQ(cold.tier, CacheTier::kNone);
  EXPECT_EQ(checks, env.data->num_records());
  FocalSubset expected = FocalSubset::Materialize(*env.data, box);
  EXPECT_EQ(cold.subset.tids, expected.tids);

  // Second acquisition: exact hit, identical subset, same cold price.
  CacheHint hint = cache.Probe(box);
  EXPECT_EQ(hint.tier, CacheTier::kExact);
  EXPECT_EQ(hint.cached_size, static_cast<double>(expected.tids.size()));
  checks = 0;
  auto warm = cache.Acquire(box, ExecBackend::kScalar, nullptr, &checks);
  EXPECT_EQ(warm.tier, CacheTier::kExact);
  EXPECT_EQ(checks, env.data->num_records());
  EXPECT_EQ(warm.subset.tids, expected.tids);

  CacheTelemetry t = cache.telemetry();
  EXPECT_EQ(t.misses, 1u);
  EXPECT_EQ(t.hits_exact, 1u);
  EXPECT_EQ(t.entries, 1u);
  EXPECT_GT(t.bytes, 0u);
}

TEST(QueryCacheTest, UnconstrainedBoxChargesNothing) {
  Env env = Env::Make(2);
  QueryCache cache(*env.index, Enabled());
  Rect box = env.Box({});  // full-domain box: the cold scan is free too
  uint64_t checks = 0;
  auto lease = cache.Acquire(box, ExecBackend::kScalar, nullptr, &checks);
  EXPECT_EQ(checks, 0u);
  EXPECT_EQ(lease.subset.tids.size(), env.data->num_records());
}

class ContainmentTest : public ::testing::TestWithParam<ExecBackend> {};

TEST_P(ContainmentTest, DerivedSubsetMatchesColdMaterialization) {
  const ExecBackend backend = GetParam();
  Env env = Env::Make(3);
  QueryCache cache(*env.index, Enabled());

  Rect outer = env.Box({{0, 0, 2}});
  uint64_t ignored = 0;
  cache.Acquire(outer, backend, nullptr, &ignored);

  // Drill-downs narrowing one and two attributes, both contained in outer.
  for (const auto& ranges :
       {std::vector<RangeSelection>{{0, 0, 1}},
        std::vector<RangeSelection>{{0, 1, 2}, {2, 0, 1}}}) {
    Rect inner = env.Box(ranges);
    CacheHint hint = cache.Probe(inner);
    ASSERT_EQ(hint.tier, CacheTier::kContainment);
    auto lease = cache.Acquire(inner, backend, nullptr, &ignored);
    EXPECT_EQ(lease.tier, CacheTier::kContainment);
    FocalSubset expected = FocalSubset::Materialize(*env.data, inner);
    EXPECT_EQ(lease.subset.tids, expected.tids);
    // The derived subset is now resident: the same box hits exactly.
    EXPECT_EQ(cache.Probe(inner).tier, CacheTier::kExact);
  }
  EXPECT_EQ(cache.telemetry().hits_containment, 2u);
}

INSTANTIATE_TEST_SUITE_P(Backends, ContainmentTest,
                         ::testing::Values(ExecBackend::kScalar,
                                           ExecBackend::kBitmap));

TEST(QueryCacheTest, ContainmentPrefersSmallestSource) {
  Env env = Env::Make(4);
  QueryCache cache(*env.index, Enabled());
  uint64_t ignored = 0;
  auto wide = cache.Acquire(env.Box({{0, 0, 3}}), ExecBackend::kScalar,
                            nullptr, &ignored);
  auto tight = cache.Acquire(env.Box({{0, 0, 2}}), ExecBackend::kScalar,
                             nullptr, &ignored);
  ASSERT_LT(tight.subset.tids.size(), wide.subset.tids.size());
  CacheHint hint = cache.Probe(env.Box({{0, 0, 1}}));
  ASSERT_EQ(hint.tier, CacheTier::kContainment);
  EXPECT_EQ(hint.cached_size, static_cast<double>(tight.subset.tids.size()));
}

TEST(QueryCacheTest, LruEvictionUnderTightBudget) {
  Env env = Env::Make(5);
  // Budget fits roughly one subset: every new box evicts the stalest.
  QueryCache cache(*env.index, Enabled(1500));
  uint64_t ignored = 0;
  Rect a = env.Box({{0, 0, 1}});
  Rect b = env.Box({{1, 0, 1}});
  cache.Acquire(a, ExecBackend::kScalar, nullptr, &ignored);
  cache.Acquire(b, ExecBackend::kScalar, nullptr, &ignored);
  CacheTelemetry t = cache.telemetry();
  EXPECT_GT(t.evictions, 0u);
  EXPECT_LE(t.bytes, 1500u);
  // `a` was evicted (least recently used): probing it misses.
  EXPECT_EQ(cache.Probe(a).tier, CacheTier::kNone);
}

TEST(QueryCacheTest, DeterministicStateAcrossInstances) {
  Env env = Env::Make(6);
  auto run = [&](QueryCache* cache) {
    uint64_t ignored = 0;
    for (const auto& ranges :
         {std::vector<RangeSelection>{{0, 0, 2}},
          std::vector<RangeSelection>{{0, 0, 1}},
          std::vector<RangeSelection>{{1, 0, 1}},
          std::vector<RangeSelection>{{0, 0, 2}}}) {
      cache->Acquire(env.Box(ranges), ExecBackend::kScalar, nullptr,
                     &ignored);
    }
    return cache->telemetry();
  };
  QueryCache scalar_cache(*env.index, Enabled());
  QueryCache bitmap_like(*env.index, Enabled());
  CacheTelemetry one = run(&scalar_cache);
  CacheTelemetry two = run(&bitmap_like);
  EXPECT_EQ(one.hits_exact, two.hits_exact);
  EXPECT_EQ(one.hits_containment, two.hits_containment);
  EXPECT_EQ(one.misses, two.misses);
  EXPECT_EQ(one.bytes, two.bytes);
  EXPECT_EQ(one.entries, two.entries);
}

TEST(QueryCacheTest, MemoCommitAndReplay) {
  Env env = Env::Make(7);
  QueryCache cache(*env.index, Enabled());
  Rect box = env.Box({{0, 0, 1}});
  uint64_t ignored = 0;
  cache.Acquire(box, ExecBackend::kScalar, nullptr, &ignored);
  const std::string key = CanonicalBoxKey(box);

  EXPECT_EQ(cache.MemoLookup(key, "", 3), nullptr);
  auto txn = cache.BeginTxn(box);
  txn->RecordFull(3, 17);
  // Nothing visible until commit.
  EXPECT_EQ(cache.MemoLookup(key, "", 3), nullptr);
  cache.Commit(txn.get());
  auto memo = cache.MemoLookup(key, "", 3);
  ASSERT_NE(memo, nullptr);
  EXPECT_EQ(memo->full_count, 17u);
  EXPECT_TRUE(memo->superset_counts.empty());

  // Upgrade to a table; never downgrade back to full-only.
  const std::vector<uint32_t> table{20, 18, 17, 17};
  auto upgrade = cache.BeginTxn(box);
  upgrade->RecordTable(3, 17, table);
  cache.Commit(upgrade.get());
  auto upgraded = cache.MemoLookup(key, "", 3);
  ASSERT_NE(upgraded, nullptr);
  EXPECT_EQ(upgraded->superset_counts, table);
  auto downgrade = cache.BeginTxn(box);
  downgrade->RecordFull(3, 17);
  cache.Commit(downgrade.get());
  EXPECT_FALSE(cache.MemoLookup(key, "", 3)->superset_counts.empty());
}

TEST(QueryCacheTest, MemoCounterReplaysTableExactly) {
  auto memo = std::make_shared<const CountMemoEntry>(
      CountMemoEntry{40, {50, 45, 43, 40}});
  MemoSubsetCounter counter({4, 9}, memo, 60);
  EXPECT_EQ(counter.CountFull(), 40u);
  EXPECT_EQ(counter.base_size(), 60u);
  EXPECT_EQ(counter.record_checks(), 60u);
  EXPECT_EQ(counter.CountOf(std::vector<ItemId>{}), 50u);
  EXPECT_EQ(counter.CountOf(std::vector<ItemId>{4}), 45u);
  EXPECT_EQ(counter.CountOf(std::vector<ItemId>{9}), 43u);
  EXPECT_EQ(counter.CountOf(std::vector<ItemId>{4, 9}), 40u);
  // Items outside the base itemset can never be subsets: count 0.
  EXPECT_EQ(counter.CountOf(std::vector<ItemId>{7}), 0u);
}

TEST(QueryCacheTest, CommitToEvictedBoxIsDropped) {
  Env env = Env::Make(8);
  QueryCache cache(*env.index, Enabled(1500));
  Rect a = env.Box({{0, 0, 1}});
  uint64_t ignored = 0;
  cache.Acquire(a, ExecBackend::kScalar, nullptr, &ignored);
  auto txn = cache.BeginTxn(a);
  txn->RecordFull(1, 5);
  // Evict `a` by inserting another box under the one-subset budget.
  cache.Acquire(env.Box({{1, 0, 1}}), ExecBackend::kScalar, nullptr,
                &ignored);
  ASSERT_EQ(cache.Probe(a).tier, CacheTier::kNone);
  cache.Commit(txn.get());  // must not resurrect the entry
  EXPECT_EQ(cache.MemoLookup(CanonicalBoxKey(a), "", 1), nullptr);
  EXPECT_EQ(cache.Probe(a).tier, CacheTier::kNone);
}

TEST(QueryCacheTest, ClearDropsResidencyButKeepsTotals) {
  Env env = Env::Make(9);
  QueryCache cache(*env.index, Enabled());
  uint64_t ignored = 0;
  cache.Acquire(env.Box({{0, 0, 1}}), ExecBackend::kScalar, nullptr,
                &ignored);
  cache.Clear();
  CacheTelemetry t = cache.telemetry();
  EXPECT_EQ(t.bytes, 0u);
  EXPECT_EQ(t.entries, 0u);
  EXPECT_EQ(t.misses, 1u);
}

TEST(QueryCacheTest, EngineGatesCacheOnOptions) {
  Env env = Env::Make(10);
  EngineOptions off;  // defaults: cache disabled
  off.index.primary_support = 0.2;
  off.calibrate = false;
  auto engine_off = Engine::Build(*env.data, off);
  ASSERT_TRUE(engine_off.ok());
  EXPECT_EQ((*engine_off)->cache(), nullptr);

  EngineOptions zero = off;
  zero.cache.enabled = true;
  zero.cache.byte_budget = 0;  // explicit 0 budget also disables
  auto engine_zero = Engine::Build(*env.data, zero);
  ASSERT_TRUE(engine_zero.ok());
  EXPECT_EQ((*engine_zero)->cache(), nullptr);

  EngineOptions on = off;
  on.cache.enabled = true;
  auto engine_on = Engine::Build(*env.data, on);
  ASSERT_TRUE(engine_on.ok());
  ASSERT_NE((*engine_on)->cache(), nullptr);

  // Telemetry flows into results: a repeated query is an exact hit.
  LocalizedQuery query;
  query.ranges = {{0, 0, 1}};
  query.minsupp = 0.4;
  query.minconf = 0.6;
  auto first = (*engine_on)->Execute(query);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->cache.misses, 1u);
  EXPECT_EQ(first->cache.hits_exact, 0u);
  auto second = (*engine_on)->Execute(query);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->cache.hits_exact, 1u);
  EXPECT_EQ(second->cache.misses, 0u);
  EXPECT_GT(second->cache.bytes, 0u);
}

}  // namespace
}  // namespace colarm
