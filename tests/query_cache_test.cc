#include "core/query_cache.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "common/thread_pool.h"
#include "core/engine.h"
#include "test_util.h"

namespace colarm {
namespace {

using testing_util::RandomDataset;

struct Env {
  std::unique_ptr<Dataset> data;
  std::unique_ptr<MipIndex> index;

  static Env Make(uint64_t seed) {
    Env env;
    env.data = std::make_unique<Dataset>(RandomDataset(seed, 250, 5, 4));
    auto built = MipIndex::Build(*env.data, {.primary_support = 0.2});
    EXPECT_TRUE(built.ok());
    env.index = std::make_unique<MipIndex>(std::move(built.value()));
    return env;
  }

  Rect Box(std::vector<RangeSelection> ranges) const {
    LocalizedQuery query;
    query.ranges = std::move(ranges);
    return query.ToRect(data->schema());
  }
};

QueryCacheOptions Enabled(size_t budget = size_t{64} << 20) {
  QueryCacheOptions options;
  options.enabled = true;
  options.byte_budget = budget;
  return options;
}

TEST(QueryCacheTest, ColdMissThenExactHit) {
  Env env = Env::Make(1);
  QueryCache cache(*env.index, Enabled());
  Rect box = env.Box({{0, 0, 1}});

  EXPECT_EQ(cache.Probe(box).tier, CacheTier::kNone);
  uint64_t checks = 0;
  auto cold = cache.Acquire(box, ExecBackend::kScalar, nullptr, &checks);
  EXPECT_EQ(cold.tier, CacheTier::kNone);
  EXPECT_EQ(checks, env.data->num_records());
  FocalSubset expected = FocalSubset::Materialize(*env.data, box);
  EXPECT_EQ(cold.subset.tids, expected.tids);

  // Second acquisition: exact hit, identical subset, same cold price.
  CacheHint hint = cache.Probe(box);
  EXPECT_EQ(hint.tier, CacheTier::kExact);
  EXPECT_EQ(hint.cached_size, static_cast<double>(expected.tids.size()));
  checks = 0;
  auto warm = cache.Acquire(box, ExecBackend::kScalar, nullptr, &checks);
  EXPECT_EQ(warm.tier, CacheTier::kExact);
  EXPECT_EQ(checks, env.data->num_records());
  EXPECT_EQ(warm.subset.tids, expected.tids);

  CacheTelemetry t = cache.telemetry();
  EXPECT_EQ(t.misses, 1u);
  EXPECT_EQ(t.hits_exact, 1u);
  EXPECT_EQ(t.entries, 1u);
  EXPECT_GT(t.bytes, 0u);
}

TEST(QueryCacheTest, UnconstrainedBoxChargesNothing) {
  Env env = Env::Make(2);
  QueryCache cache(*env.index, Enabled());
  Rect box = env.Box({});  // full-domain box: the cold scan is free too
  uint64_t checks = 0;
  auto lease = cache.Acquire(box, ExecBackend::kScalar, nullptr, &checks);
  EXPECT_EQ(checks, 0u);
  EXPECT_EQ(lease.subset.tids.size(), env.data->num_records());
}

class ContainmentTest : public ::testing::TestWithParam<ExecBackend> {};

TEST_P(ContainmentTest, DerivedSubsetMatchesColdMaterialization) {
  const ExecBackend backend = GetParam();
  Env env = Env::Make(3);
  QueryCache cache(*env.index, Enabled());

  Rect outer = env.Box({{0, 0, 2}});
  uint64_t ignored = 0;
  cache.Acquire(outer, backend, nullptr, &ignored);

  // Drill-downs narrowing one and two attributes, both contained in outer.
  for (const auto& ranges :
       {std::vector<RangeSelection>{{0, 0, 1}},
        std::vector<RangeSelection>{{0, 1, 2}, {2, 0, 1}}}) {
    Rect inner = env.Box(ranges);
    CacheHint hint = cache.Probe(inner);
    ASSERT_EQ(hint.tier, CacheTier::kContainment);
    auto lease = cache.Acquire(inner, backend, nullptr, &ignored);
    EXPECT_EQ(lease.tier, CacheTier::kContainment);
    FocalSubset expected = FocalSubset::Materialize(*env.data, inner);
    EXPECT_EQ(lease.subset.tids, expected.tids);
    // The derived subset is now resident: the same box hits exactly.
    EXPECT_EQ(cache.Probe(inner).tier, CacheTier::kExact);
  }
  EXPECT_EQ(cache.telemetry().hits_containment, 2u);
}

INSTANTIATE_TEST_SUITE_P(Backends, ContainmentTest,
                         ::testing::Values(ExecBackend::kScalar,
                                           ExecBackend::kBitmap));

TEST(QueryCacheTest, ContainmentPrefersSmallestSource) {
  Env env = Env::Make(4);
  QueryCache cache(*env.index, Enabled());
  uint64_t ignored = 0;
  auto wide = cache.Acquire(env.Box({{0, 0, 3}}), ExecBackend::kScalar,
                            nullptr, &ignored);
  auto tight = cache.Acquire(env.Box({{0, 0, 2}}), ExecBackend::kScalar,
                             nullptr, &ignored);
  ASSERT_LT(tight.subset.tids.size(), wide.subset.tids.size());
  CacheHint hint = cache.Probe(env.Box({{0, 0, 1}}));
  ASSERT_EQ(hint.tier, CacheTier::kContainment);
  EXPECT_EQ(hint.cached_size, static_cast<double>(tight.subset.tids.size()));
}

TEST(QueryCacheTest, LruEvictionUnderTightBudget) {
  Env env = Env::Make(5);
  // Budget fits roughly one subset: every new box evicts the stalest.
  QueryCache cache(*env.index, Enabled(1500));
  uint64_t ignored = 0;
  Rect a = env.Box({{0, 0, 1}});
  Rect b = env.Box({{1, 0, 1}});
  cache.Acquire(a, ExecBackend::kScalar, nullptr, &ignored);
  cache.Acquire(b, ExecBackend::kScalar, nullptr, &ignored);
  CacheTelemetry t = cache.telemetry();
  EXPECT_GT(t.evictions, 0u);
  EXPECT_LE(t.bytes, 1500u);
  // `a` was evicted (least recently used): probing it misses.
  EXPECT_EQ(cache.Probe(a).tier, CacheTier::kNone);
}

TEST(QueryCacheTest, DeterministicStateAcrossInstances) {
  Env env = Env::Make(6);
  auto run = [&](QueryCache* cache) {
    uint64_t ignored = 0;
    for (const auto& ranges :
         {std::vector<RangeSelection>{{0, 0, 2}},
          std::vector<RangeSelection>{{0, 0, 1}},
          std::vector<RangeSelection>{{1, 0, 1}},
          std::vector<RangeSelection>{{0, 0, 2}}}) {
      cache->Acquire(env.Box(ranges), ExecBackend::kScalar, nullptr,
                     &ignored);
    }
    return cache->telemetry();
  };
  QueryCache scalar_cache(*env.index, Enabled());
  QueryCache bitmap_like(*env.index, Enabled());
  CacheTelemetry one = run(&scalar_cache);
  CacheTelemetry two = run(&bitmap_like);
  EXPECT_EQ(one.hits_exact, two.hits_exact);
  EXPECT_EQ(one.hits_containment, two.hits_containment);
  EXPECT_EQ(one.misses, two.misses);
  EXPECT_EQ(one.bytes, two.bytes);
  EXPECT_EQ(one.entries, two.entries);
}

TEST(QueryCacheTest, MemoCommitAndReplay) {
  Env env = Env::Make(7);
  QueryCache cache(*env.index, Enabled());
  Rect box = env.Box({{0, 0, 1}});
  uint64_t ignored = 0;
  cache.Acquire(box, ExecBackend::kScalar, nullptr, &ignored);
  const std::string key = CanonicalBoxKey(box);

  EXPECT_EQ(cache.MemoLookup(key, "", 3), nullptr);
  auto txn = cache.BeginTxn(box);
  txn->RecordFull(3, 17);
  // Nothing visible until commit.
  EXPECT_EQ(cache.MemoLookup(key, "", 3), nullptr);
  cache.Commit(txn.get());
  auto memo = cache.MemoLookup(key, "", 3);
  ASSERT_NE(memo, nullptr);
  EXPECT_EQ(memo->full_count, 17u);
  EXPECT_TRUE(memo->superset_counts.empty());

  // Upgrade to a table; never downgrade back to full-only.
  const std::vector<uint32_t> table{20, 18, 17, 17};
  auto upgrade = cache.BeginTxn(box);
  upgrade->RecordTable(3, 17, table);
  cache.Commit(upgrade.get());
  auto upgraded = cache.MemoLookup(key, "", 3);
  ASSERT_NE(upgraded, nullptr);
  EXPECT_EQ(upgraded->superset_counts, table);
  auto downgrade = cache.BeginTxn(box);
  downgrade->RecordFull(3, 17);
  cache.Commit(downgrade.get());
  EXPECT_FALSE(cache.MemoLookup(key, "", 3)->superset_counts.empty());
}

TEST(QueryCacheTest, MemoCounterReplaysTableExactly) {
  auto memo = std::make_shared<const CountMemoEntry>(
      CountMemoEntry{40, {50, 45, 43, 40}});
  MemoSubsetCounter counter({4, 9}, memo, 60);
  EXPECT_EQ(counter.CountFull(), 40u);
  EXPECT_EQ(counter.base_size(), 60u);
  EXPECT_EQ(counter.record_checks(), 60u);
  EXPECT_EQ(counter.CountOf(std::vector<ItemId>{}), 50u);
  EXPECT_EQ(counter.CountOf(std::vector<ItemId>{4}), 45u);
  EXPECT_EQ(counter.CountOf(std::vector<ItemId>{9}), 43u);
  EXPECT_EQ(counter.CountOf(std::vector<ItemId>{4, 9}), 40u);
  // Items outside the base itemset can never be subsets: count 0.
  EXPECT_EQ(counter.CountOf(std::vector<ItemId>{7}), 0u);
}

TEST(QueryCacheTest, CommitToEvictedBoxIsDropped) {
  Env env = Env::Make(8);
  QueryCache cache(*env.index, Enabled(1500));
  Rect a = env.Box({{0, 0, 1}});
  uint64_t ignored = 0;
  cache.Acquire(a, ExecBackend::kScalar, nullptr, &ignored);
  auto txn = cache.BeginTxn(a);
  txn->RecordFull(1, 5);
  // Evict `a` by inserting another box under the one-subset budget.
  cache.Acquire(env.Box({{1, 0, 1}}), ExecBackend::kScalar, nullptr,
                &ignored);
  ASSERT_EQ(cache.Probe(a).tier, CacheTier::kNone);
  cache.Commit(txn.get());  // must not resurrect the entry
  EXPECT_EQ(cache.MemoLookup(CanonicalBoxKey(a), "", 1), nullptr);
  EXPECT_EQ(cache.Probe(a).tier, CacheTier::kNone);
}

TEST(QueryCacheTest, ClearDropsResidencyButKeepsTotals) {
  Env env = Env::Make(9);
  QueryCache cache(*env.index, Enabled());
  uint64_t ignored = 0;
  cache.Acquire(env.Box({{0, 0, 1}}), ExecBackend::kScalar, nullptr,
                &ignored);
  cache.Clear();
  CacheTelemetry t = cache.telemetry();
  EXPECT_EQ(t.bytes, 0u);
  EXPECT_EQ(t.entries, 0u);
  EXPECT_EQ(t.misses, 1u);
}

// ---------------------------------------------------------------------
// Tier 2.5: cost-gated composition from overlapping resident boxes.
// ---------------------------------------------------------------------

/// Fully deterministic relation where each cell is a pure function of
/// (record, attribute) — lets the tests below pick subset sizes that make
/// the compose cost gate provably fire (or provably refuse).
Dataset CraftedDataset(uint32_t records, uint32_t n_attrs, uint32_t domain,
                       const std::function<ValueId(uint32_t, AttrId)>& value) {
  std::vector<Attribute> attrs;
  for (uint32_t a = 0; a < n_attrs; ++a) {
    Attribute attr;
    attr.name = "a" + std::to_string(a);
    for (uint32_t v = 0; v < domain; ++v) {
      attr.values.push_back("v" + std::to_string(v));
    }
    attrs.push_back(std::move(attr));
  }
  Dataset dataset{Schema(std::move(attrs))};
  std::vector<ValueId> record(n_attrs);
  for (uint32_t r = 0; r < records; ++r) {
    for (uint32_t a = 0; a < n_attrs; ++a) record[a] = value(r, a);
    Status st = dataset.AddRecord(record);
    if (!st.ok()) std::abort();
  }
  return dataset;
}

struct CraftedEnv {
  std::unique_ptr<Dataset> data;
  std::unique_ptr<MipIndex> index;

  static CraftedEnv Make(Dataset dataset) {
    CraftedEnv env;
    env.data = std::make_unique<Dataset>(std::move(dataset));
    auto built = MipIndex::Build(*env.data, {.primary_support = 0.2});
    EXPECT_TRUE(built.ok());
    env.index = std::make_unique<MipIndex>(std::move(built.value()));
    return env;
  }

  Rect Box(std::vector<RangeSelection> ranges) const {
    LocalizedQuery query;
    query.ranges = std::move(ranges);
    return query.ToRect(data->schema());
  }
};

/// 250 records, 5 attributes, domain 4. Attribute 0 splits 60 / 40 / 150
/// across [0,1] / {2} / {3}, so with W=[0,2] (100 tids) and S=[2,2] (40
/// tids) resident, Q=[0,1] prices difference at 100+40=140 — strictly
/// under both the containment filter (100x2=200) and the cold scan (250).
/// Attribute 1 never takes value 3, so [0,2] on that axis is a constrained
/// box covering all 250 records: any slab union prices exactly at the cold
/// scan and the strict `<` gate must refuse it.
Dataset DifferenceDataset() {
  return CraftedDataset(250, 5, 4, [](uint32_t rec, AttrId attr) -> ValueId {
    if (attr == 0) {
      if (rec < 60) return static_cast<ValueId>(rec % 2);
      return rec < 100 ? 2 : 3;
    }
    if (attr == 1) return static_cast<ValueId>(rec % 3);
    return static_cast<ValueId>(rec % 2);
  });
}

/// 250 records, 5 attributes, domain 4, built so that for A = attrs 0-2 in
/// [0,1] (31 tids) and B = attrs 3-4 in [0,1] (28 tids), the query box
/// Q = A's box meet B's box holds exactly 20 records. Intersecting prices
/// at 31+28+min(31,28)x1 = 87, strictly under every single-source filter
/// (filtering A re-tests 2 attrs: 31x3=93; the planner's pick is the
/// smallest containing subset, B, at 28x4=112) and the cold scan (250).
Dataset IntersectDataset() {
  return CraftedDataset(250, 5, 4, [](uint32_t rec, AttrId attr) -> ValueId {
    if (rec < 20) return static_cast<ValueId>(rec % 2);   // in A, B, and Q
    if (rec < 31) return attr < 3 ? static_cast<ValueId>(rec % 2) : 3;  // A only
    if (rec < 39) return attr < 3 ? 3 : static_cast<ValueId>(rec % 2);  // B only
    return static_cast<ValueId>(2 + rec % 2);             // outside both
  });
}

class ComposeTest : public ::testing::TestWithParam<ExecBackend> {};

TEST_P(ComposeTest, UnionAssemblesAdjacentSlabs) {
  const ExecBackend backend = GetParam();
  Env env = Env::Make(11);
  QueryCache cache(*env.index, Enabled());
  uint64_t ignored = 0;
  cache.Acquire(env.Box({{0, 0, 1}}), backend, nullptr, &ignored);
  cache.Acquire(env.Box({{0, 2, 2}}), backend, nullptr, &ignored);

  Rect q = env.Box({{0, 0, 2}});
  FocalSubset expected = FocalSubset::Materialize(*env.data, q);
  // The union prices below the cold scan only because records fall outside
  // [0,2] on attribute 0; the skewed generator makes that certain here.
  ASSERT_LT(expected.tids.size(), env.data->num_records());

  CacheHint hint = cache.Probe(q);
  ASSERT_EQ(hint.tier, CacheTier::kCompose);
  EXPECT_EQ(hint.compose_sources, 2u);
  // Disjoint slabs tiling q: the summed runs are exactly |T_q|.
  EXPECT_EQ(hint.cached_size, static_cast<double>(expected.tids.size()));

  uint64_t checks = 0;
  auto lease = cache.Acquire(q, backend, nullptr, &checks);
  EXPECT_EQ(lease.tier, CacheTier::kCompose);
  EXPECT_EQ(checks, env.data->num_records());  // warm charges the cold price
  EXPECT_EQ(lease.subset.tids, expected.tids);
  EXPECT_EQ(cache.telemetry().hits_compose, 1u);
  // The composed subset is itself resident now.
  EXPECT_EQ(cache.Probe(q).tier, CacheTier::kExact);
}

TEST_P(ComposeTest, DifferenceSubtractsComplementSlab) {
  const ExecBackend backend = GetParam();
  CraftedEnv env = CraftedEnv::Make(DifferenceDataset());
  QueryCache cache(*env.index, Enabled());
  uint64_t ignored = 0;
  // Slab first, outer second, so neither acquisition derives from the
  // other and both land as independent cold entries.
  cache.Acquire(env.Box({{0, 2, 2}}), backend, nullptr, &ignored);
  cache.Acquire(env.Box({{0, 0, 2}}), backend, nullptr, &ignored);
  ASSERT_EQ(cache.telemetry().misses, 2u);

  Rect q = env.Box({{0, 0, 1}});
  CacheHint hint = cache.Probe(q);
  ASSERT_EQ(hint.tier, CacheTier::kCompose);
  EXPECT_EQ(hint.compose_sources, 2u);   // outer + one complement slab
  EXPECT_EQ(hint.cached_size, 140.0);    // |T_W| + |T_S| = 100 + 40

  auto lease = cache.Acquire(q, backend, nullptr, &ignored);
  EXPECT_EQ(lease.tier, CacheTier::kCompose);
  FocalSubset expected = FocalSubset::Materialize(*env.data, q);
  ASSERT_EQ(expected.tids.size(), 60u);
  EXPECT_EQ(lease.subset.tids, expected.tids);
  EXPECT_EQ(cache.telemetry().hits_compose, 1u);

  // Both sources earned derivation credit (and with it, 2Q promotion).
  uint64_t derivations = 0;
  for (const auto& entry : cache.Snapshot()) derivations += entry.derivations;
  EXPECT_EQ(derivations, 2u);
}

TEST_P(ComposeTest, IntersectionMeetsAtTheQueryBox) {
  const ExecBackend backend = GetParam();
  CraftedEnv env = CraftedEnv::Make(IntersectDataset());
  QueryCache cache(*env.index, Enabled());
  uint64_t ignored = 0;
  auto a = cache.Acquire(env.Box({{0, 0, 1}, {1, 0, 1}, {2, 0, 1}}), backend,
                         nullptr, &ignored);
  auto b = cache.Acquire(env.Box({{3, 0, 1}, {4, 0, 1}}), backend, nullptr,
                         &ignored);
  ASSERT_EQ(a.subset.tids.size(), 31u);
  ASSERT_EQ(b.subset.tids.size(), 28u);
  ASSERT_EQ(cache.telemetry().misses, 2u);

  // Q is exactly the meet of the two resident boxes: zero residual attrs,
  // so the AND of the tid lists needs no re-testing at all.
  Rect q = env.Box({{0, 0, 1}, {1, 0, 1}, {2, 0, 1}, {3, 0, 1}, {4, 0, 1}});
  CacheHint hint = cache.Probe(q);
  ASSERT_EQ(hint.tier, CacheTier::kCompose);
  EXPECT_EQ(hint.compose_sources, 2u);
  EXPECT_EQ(hint.delta_attrs, 0u);
  EXPECT_EQ(hint.cached_size, 87.0);  // 31 + 28 + min(31,28) * (0+1)

  auto lease = cache.Acquire(q, backend, nullptr, &ignored);
  EXPECT_EQ(lease.tier, CacheTier::kCompose);
  FocalSubset expected = FocalSubset::Materialize(*env.data, q);
  ASSERT_EQ(expected.tids.size(), 20u);
  EXPECT_EQ(lease.subset.tids, expected.tids);
  EXPECT_EQ(cache.telemetry().hits_compose, 1u);
}

INSTANTIATE_TEST_SUITE_P(Backends, ComposeTest,
                         ::testing::Values(ExecBackend::kScalar,
                                           ExecBackend::kBitmap));

TEST(QueryCacheComposeTest, CostGateRefusesBreakEvenUnion) {
  CraftedEnv env = CraftedEnv::Make(DifferenceDataset());
  QueryCache cache(*env.index, Enabled());
  uint64_t ignored = 0;
  cache.Acquire(env.Box({{1, 0, 1}}), ExecBackend::kScalar, nullptr, &ignored);
  cache.Acquire(env.Box({{1, 2, 2}}), ExecBackend::kScalar, nullptr, &ignored);

  // Attribute 1 never takes value 3, so [0,2] is a constrained box that
  // still covers every record: the resident slabs tile it geometrically,
  // but their summed runs equal the cold scan and the gate demands
  // strictly cheaper. The probe must fall through to a plain miss.
  Rect q = env.Box({{1, 0, 2}});
  ASSERT_EQ(FocalSubset::Materialize(*env.data, q).tids.size(),
            env.data->num_records());
  EXPECT_EQ(cache.Probe(q).tier, CacheTier::kNone);

  auto lease = cache.Acquire(q, ExecBackend::kScalar, nullptr, &ignored);
  EXPECT_EQ(lease.tier, CacheTier::kNone);
  EXPECT_EQ(cache.telemetry().hits_compose, 0u);
  EXPECT_EQ(cache.telemetry().misses, 3u);
}

TEST(QueryCacheComposeTest, DeterministicAcrossBackendsAndPools) {
  CraftedEnv env = CraftedEnv::Make(DifferenceDataset());
  struct Outcome {
    std::vector<std::vector<Tid>> tids;
    CacheTelemetry telemetry;
  };
  // Exercises miss, containment (S from W), difference compose, and an
  // exact hit — through the scalar merges and the word-parallel bitmap
  // kernels at several pool widths. State and bytes must not depend on
  // the execution route.
  auto run = [&](ExecBackend backend, ThreadPool* pool) {
    QueryCache cache(*env.index, Enabled());
    uint64_t ignored = 0;
    Outcome out;
    for (const auto& ranges : {std::vector<RangeSelection>{{0, 0, 2}},
                               std::vector<RangeSelection>{{0, 2, 2}},
                               std::vector<RangeSelection>{{0, 0, 1}},
                               std::vector<RangeSelection>{{0, 0, 2}}}) {
      out.tids.push_back(
          cache.Acquire(env.Box(ranges), backend, pool, &ignored).subset.tids);
    }
    out.telemetry = cache.telemetry();
    return out;
  };
  ThreadPool pool2(2);
  ThreadPool pool8(8);
  const Outcome base = run(ExecBackend::kScalar, nullptr);
  EXPECT_EQ(base.telemetry.misses, 1u);
  EXPECT_EQ(base.telemetry.hits_containment, 1u);
  EXPECT_EQ(base.telemetry.hits_compose, 1u);
  EXPECT_EQ(base.telemetry.hits_exact, 1u);
  std::vector<Outcome> variants;
  variants.push_back(run(ExecBackend::kBitmap, nullptr));
  variants.push_back(run(ExecBackend::kBitmap, &pool2));
  variants.push_back(run(ExecBackend::kBitmap, &pool8));
  for (const Outcome& variant : variants) {
    EXPECT_EQ(variant.tids, base.tids);
    EXPECT_EQ(variant.telemetry.hits_exact, base.telemetry.hits_exact);
    EXPECT_EQ(variant.telemetry.hits_containment,
              base.telemetry.hits_containment);
    EXPECT_EQ(variant.telemetry.hits_compose, base.telemetry.hits_compose);
    EXPECT_EQ(variant.telemetry.misses, base.telemetry.misses);
    EXPECT_EQ(variant.telemetry.evictions, base.telemetry.evictions);
    EXPECT_EQ(variant.telemetry.admission_rejects,
              base.telemetry.admission_rejects);
    EXPECT_EQ(variant.telemetry.bytes, base.telemetry.bytes);
    EXPECT_EQ(variant.telemetry.entries, base.telemetry.entries);
  }
}

// ---------------------------------------------------------------------
// Scan-resistant admission: TinyLFU sketch + 2Q segments.
// ---------------------------------------------------------------------

TEST(QueryCacheTest, ScanResistantAdmissionKeepsHotEntries) {
  Env env = Env::Make(12);
  Rect h1 = env.Box({{0, 0, 1}});
  Rect h2 = env.Box({{1, 0, 1}});

  // Measure the two hot entries' resident footprint with a roomy cache.
  size_t b1 = 0;
  size_t b2 = 0;
  {
    QueryCache probe(*env.index, Enabled());
    uint64_t ignored = 0;
    probe.Acquire(h1, ExecBackend::kScalar, nullptr, &ignored);
    b1 = probe.telemetry().bytes;
    probe.Acquire(h2, ExecBackend::kScalar, nullptr, &ignored);
    b2 = probe.telemetry().bytes - b1;
  }
  ASSERT_GT(b1, 0u);
  ASSERT_GT(b2, 0u);

  // A budget that fits exactly the two hot boxes, which a drill-down
  // session then makes sketch-hot (three requests each).
  QueryCache cache(*env.index, Enabled(b1 + b2));
  uint64_t ignored = 0;
  for (int i = 0; i < 3; ++i) {
    cache.Acquire(h1, ExecBackend::kScalar, nullptr, &ignored);
  }
  for (int i = 0; i < 3; ++i) {
    cache.Acquire(h2, ExecBackend::kScalar, nullptr, &ignored);
  }
  ASSERT_EQ(cache.telemetry().entries, 2u);
  ASSERT_EQ(cache.telemetry().evictions, 0u);

  // A one-off sweep across the remaining axes. Pure LRU would flush the
  // drill-down set; the TinyLFU gate compares each probation victim's
  // sketch frequency (3) against the newcomer's (1) and drops the
  // newcomer instead.
  const std::vector<Rect> sweep = {env.Box({{2, 0, 1}}), env.Box({{3, 0, 1}}),
                                   env.Box({{4, 0, 1}})};
  for (const Rect& box : sweep) {
    cache.Acquire(box, ExecBackend::kScalar, nullptr, &ignored);
  }

  CacheTelemetry t = cache.telemetry();
  EXPECT_EQ(t.admission_rejects, 3u);
  EXPECT_EQ(t.evictions, 0u);
  EXPECT_EQ(t.entries, 2u);
  EXPECT_EQ(cache.Probe(h1).tier, CacheTier::kExact);
  EXPECT_EQ(cache.Probe(h2).tier, CacheTier::kExact);
  for (const Rect& box : sweep) {
    EXPECT_EQ(cache.Probe(box).tier, CacheTier::kNone);
  }
}

TEST(QueryCacheTest, EngineGatesCacheOnOptions) {
  Env env = Env::Make(10);
  EngineOptions off;  // defaults: cache disabled
  off.index.primary_support = 0.2;
  off.calibrate = false;
  auto engine_off = Engine::Build(*env.data, off);
  ASSERT_TRUE(engine_off.ok());
  EXPECT_EQ((*engine_off)->cache(), nullptr);

  EngineOptions zero = off;
  zero.cache.enabled = true;
  zero.cache.byte_budget = 0;  // explicit 0 budget also disables
  auto engine_zero = Engine::Build(*env.data, zero);
  ASSERT_TRUE(engine_zero.ok());
  EXPECT_EQ((*engine_zero)->cache(), nullptr);

  EngineOptions on = off;
  on.cache.enabled = true;
  auto engine_on = Engine::Build(*env.data, on);
  ASSERT_TRUE(engine_on.ok());
  ASSERT_NE((*engine_on)->cache(), nullptr);

  // Telemetry flows into results: a repeated query is an exact hit.
  LocalizedQuery query;
  query.ranges = {{0, 0, 1}};
  query.minsupp = 0.4;
  query.minconf = 0.6;
  auto first = (*engine_on)->Execute(query);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->cache.misses, 1u);
  EXPECT_EQ(first->cache.hits_exact, 0u);
  auto second = (*engine_on)->Execute(query);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->cache.hits_exact, 1u);
  EXPECT_EQ(second->cache.misses, 0u);
  EXPECT_GT(second->cache.bytes, 0u);
}

}  // namespace
}  // namespace colarm
