#include <gtest/gtest.h>

#include <memory>

#include "core/batch.h"
#include "test_util.h"

namespace colarm {
namespace {

using testing_util::RandomDataset;

struct Env {
  std::unique_ptr<Dataset> data;
  std::unique_ptr<Engine> engine;

  static Env Make(uint64_t seed) {
    Env env;
    env.data = std::make_unique<Dataset>(RandomDataset(seed, 250, 5, 4));
    EngineOptions options;
    options.index.primary_support = 0.2;
    options.calibrate = false;
    env.engine = std::move(Engine::Build(*env.data, options).value());
    return env;
  }
};

std::vector<LocalizedQuery> SessionQueries() {
  // An exploration session: same region at three thresholds, a second
  // region, one exact duplicate, one drill-down with an item vocabulary.
  LocalizedQuery base;
  base.ranges = {{0, 0, 1}};
  base.minconf = 0.6;

  std::vector<LocalizedQuery> queries;
  for (double minsupp : {0.3, 0.4, 0.5}) {
    LocalizedQuery q = base;
    q.minsupp = minsupp;
    queries.push_back(q);
  }
  LocalizedQuery other;
  other.ranges = {{1, 0, 0}};
  other.minsupp = 0.35;
  other.minconf = 0.55;
  queries.push_back(other);
  queries.push_back(queries[1]);  // exact duplicate of the 0.4 query
  LocalizedQuery drill = base;
  drill.minsupp = 0.4;
  drill.item_attrs = {1, 2, 3};
  queries.push_back(drill);
  return queries;
}

TEST(BatchTest, ResultsMatchStandaloneExecution) {
  Env env = Env::Make(1);
  auto queries = SessionQueries();
  BatchExecutor executor(*env.engine);
  auto batch = executor.Execute(queries);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->results.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto standalone = env.engine->Execute(queries[i]);
    ASSERT_TRUE(standalone.ok());
    EXPECT_TRUE(batch->results[i].rules.SameAs(standalone->rules))
        << "query " << i;
  }
}

TEST(BatchTest, SharesSubsetsAcrossQueries) {
  Env env = Env::Make(2);
  auto queries = SessionQueries();
  BatchExecutor executor(*env.engine);
  auto batch = executor.Execute(queries);
  ASSERT_TRUE(batch.ok());
  // Six queries over two distinct boxes (the duplicate is served from
  // cache): at least three materializations saved.
  EXPECT_GE(batch->subsets_shared, 3u);
  EXPECT_EQ(batch->duplicates_reused, 1u);
}

TEST(BatchTest, DuplicateReuseCanBeDisabled) {
  Env env = Env::Make(3);
  auto queries = SessionQueries();
  BatchOptions options;
  options.reuse_duplicate_results = false;
  BatchExecutor executor(*env.engine);
  auto batch = executor.Execute(queries, options);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->duplicates_reused, 0u);
  ASSERT_EQ(batch->results.size(), queries.size());
  EXPECT_TRUE(batch->results[4].rules.SameAs(batch->results[1].rules));
}

TEST(BatchTest, SharingCanBeDisabled) {
  Env env = Env::Make(4);
  auto queries = SessionQueries();
  BatchOptions options;
  options.share_subsets = false;
  BatchExecutor executor(*env.engine);
  auto batch = executor.Execute(queries, options);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->subsets_shared, 0u);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto standalone = env.engine->Execute(queries[i]);
    ASSERT_TRUE(standalone.ok());
    EXPECT_TRUE(batch->results[i].rules.SameAs(standalone->rules));
  }
}

TEST(BatchTest, ForcedPlanApplies) {
  Env env = Env::Make(5);
  auto queries = SessionQueries();
  BatchOptions options;
  options.use_optimizer = false;
  options.forced_plan = PlanKind::kSEV;
  BatchExecutor executor(*env.engine);
  auto batch = executor.Execute(queries, options);
  ASSERT_TRUE(batch.ok());
  for (const QueryResult& result : batch->results) {
    EXPECT_EQ(result.plan_used, PlanKind::kSEV);
  }
}

TEST(BatchTest, InvalidQueryFailsWholeBatchUpFront) {
  Env env = Env::Make(6);
  auto queries = SessionQueries();
  LocalizedQuery bad;
  bad.ranges = {{99, 0, 0}};
  queries.push_back(bad);
  BatchExecutor executor(*env.engine);
  auto batch = executor.Execute(queries);
  EXPECT_FALSE(batch.ok());
}

TEST(BatchTest, EmptyBatch) {
  Env env = Env::Make(7);
  BatchExecutor executor(*env.engine);
  auto batch = executor.Execute({});
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->results.empty());
  EXPECT_EQ(batch->subsets_shared, 0u);
}

}  // namespace
}  // namespace colarm
