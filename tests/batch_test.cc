#include <gtest/gtest.h>

#include <memory>

#include "core/batch.h"
#include "test_util.h"

namespace colarm {
namespace {

using testing_util::RandomDataset;

struct Env {
  std::unique_ptr<Dataset> data;
  std::unique_ptr<Engine> engine;

  static Env Make(uint64_t seed) {
    Env env;
    env.data = std::make_unique<Dataset>(RandomDataset(seed, 250, 5, 4));
    EngineOptions options;
    options.index.primary_support = 0.2;
    options.calibrate = false;
    env.engine = std::move(Engine::Build(*env.data, options).value());
    return env;
  }
};

std::vector<LocalizedQuery> SessionQueries() {
  // An exploration session: same region at three thresholds, a second
  // region, one exact duplicate, one drill-down with an item vocabulary.
  LocalizedQuery base;
  base.ranges = {{0, 0, 1}};
  base.minconf = 0.6;

  std::vector<LocalizedQuery> queries;
  for (double minsupp : {0.3, 0.4, 0.5}) {
    LocalizedQuery q = base;
    q.minsupp = minsupp;
    queries.push_back(q);
  }
  LocalizedQuery other;
  other.ranges = {{1, 0, 0}};
  other.minsupp = 0.35;
  other.minconf = 0.55;
  queries.push_back(other);
  queries.push_back(queries[1]);  // exact duplicate of the 0.4 query
  LocalizedQuery drill = base;
  drill.minsupp = 0.4;
  drill.item_attrs = {1, 2, 3};
  queries.push_back(drill);
  return queries;
}

TEST(BatchTest, ResultsMatchStandaloneExecution) {
  Env env = Env::Make(1);
  auto queries = SessionQueries();
  BatchExecutor executor(*env.engine);
  auto batch = executor.Execute(queries);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->results.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto standalone = env.engine->Execute(queries[i]);
    ASSERT_TRUE(standalone.ok());
    EXPECT_TRUE(batch->results[i].rules.SameAs(standalone->rules))
        << "query " << i;
  }
}

TEST(BatchTest, SharesSubsetsAcrossQueries) {
  Env env = Env::Make(2);
  auto queries = SessionQueries();
  BatchExecutor executor(*env.engine);
  auto batch = executor.Execute(queries);
  ASSERT_TRUE(batch.ok());
  // Six queries over two distinct boxes (the duplicate is served from
  // cache): at least three materializations saved.
  EXPECT_GE(batch->subsets_shared, 3u);
  EXPECT_EQ(batch->duplicates_reused, 1u);
}

TEST(BatchTest, DuplicateReuseCanBeDisabled) {
  Env env = Env::Make(3);
  auto queries = SessionQueries();
  BatchOptions options;
  options.reuse_duplicate_results = false;
  BatchExecutor executor(*env.engine);
  auto batch = executor.Execute(queries, options);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->duplicates_reused, 0u);
  ASSERT_EQ(batch->results.size(), queries.size());
  EXPECT_TRUE(batch->results[4].rules.SameAs(batch->results[1].rules));
}

TEST(BatchTest, SharingCanBeDisabled) {
  Env env = Env::Make(4);
  auto queries = SessionQueries();
  BatchOptions options;
  options.share_subsets = false;
  BatchExecutor executor(*env.engine);
  auto batch = executor.Execute(queries, options);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->subsets_shared, 0u);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto standalone = env.engine->Execute(queries[i]);
    ASSERT_TRUE(standalone.ok());
    EXPECT_TRUE(batch->results[i].rules.SameAs(standalone->rules));
  }
}

TEST(BatchTest, ForcedPlanApplies) {
  Env env = Env::Make(5);
  auto queries = SessionQueries();
  BatchOptions options;
  options.use_optimizer = false;
  options.forced_plan = PlanKind::kSEV;
  BatchExecutor executor(*env.engine);
  auto batch = executor.Execute(queries, options);
  ASSERT_TRUE(batch.ok());
  for (const QueryResult& result : batch->results) {
    EXPECT_EQ(result.plan_used, PlanKind::kSEV);
  }
}

TEST(BatchTest, InvalidQueryFailsWholeBatchUpFront) {
  Env env = Env::Make(6);
  auto queries = SessionQueries();
  LocalizedQuery bad;
  bad.ranges = {{99, 0, 0}};
  queries.push_back(bad);
  BatchExecutor executor(*env.engine);
  auto batch = executor.Execute(queries);
  EXPECT_FALSE(batch.ok());
}

Env MakeCachedEnv(uint64_t seed) {
  Env env;
  env.data = std::make_unique<Dataset>(RandomDataset(seed, 250, 5, 4));
  EngineOptions options;
  options.index.primary_support = 0.2;
  options.calibrate = false;
  options.cache.enabled = true;
  env.engine = std::move(Engine::Build(*env.data, options).value());
  return env;
}

TEST(BatchTest, SessionCacheTelemetryAccumulatesAcrossBatches) {
  Env env = MakeCachedEnv(8);
  auto queries = SessionQueries();
  BatchExecutor executor(*env.engine);

  auto first = executor.Execute(queries);
  ASSERT_TRUE(first.ok());
  // A fresh cache: the batch's distinct boxes are misses, nothing more.
  EXPECT_GT(first->cache.misses, 0u);
  EXPECT_EQ(first->cache.hits_exact, 0u);
  EXPECT_GT(first->cache.bytes, 0u);
  EXPECT_GT(first->cache.entries, 0u);

  // The same session again: every acquisition is now an exact hit and the
  // threshold sweep replays memoized counts.
  auto second = executor.Execute(queries);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->cache.misses, 0u);
  EXPECT_GT(second->cache.hits_exact, 0u);
  EXPECT_GT(second->cache.hits_count_memo, 0u);
  ASSERT_EQ(second->results.size(), first->results.size());
  for (size_t i = 0; i < first->results.size(); ++i) {
    EXPECT_TRUE(second->results[i].rules.SameAs(first->results[i].rules));
    EXPECT_EQ(second->results[i].stats.record_checks,
              first->results[i].stats.record_checks);
  }
}

TEST(BatchTest, CachedBatchMatchesStandaloneColdExecution) {
  Env cached = MakeCachedEnv(9);
  Env cold = Env::Make(9);  // same seed, no cache
  auto queries = SessionQueries();
  BatchExecutor executor(*cached.engine);
  for (int pass = 0; pass < 2; ++pass) {
    auto batch = executor.Execute(queries);
    ASSERT_TRUE(batch.ok());
    for (size_t i = 0; i < queries.size(); ++i) {
      auto standalone = cold.engine->Execute(queries[i]);
      ASSERT_TRUE(standalone.ok());
      EXPECT_TRUE(batch->results[i].rules.SameAs(standalone->rules))
          << "pass " << pass << " query " << i;
      EXPECT_EQ(batch->results[i].plan_used, standalone->plan_used);
    }
  }
}

TEST(BatchTest, CacheConcurrencySweepIsDeterministic) {
  // The same two-batch session over fresh engines at 1, 2, and 8 threads
  // must produce identical results AND identical cache state transitions:
  // acquisitions and commits happen at sequential points regardless of the
  // execution parallelism.
  auto queries = SessionQueries();
  std::vector<BatchResult> firsts;
  std::vector<BatchResult> seconds;
  for (unsigned threads : {1u, 2u, 8u}) {
    Env env = MakeCachedEnv(10);
    BatchExecutor executor(*env.engine);
    BatchOptions options;
    options.num_threads = threads;
    auto first = executor.Execute(queries, options);
    ASSERT_TRUE(first.ok());
    auto second = executor.Execute(queries, options);
    ASSERT_TRUE(second.ok());
    firsts.push_back(std::move(first.value()));
    seconds.push_back(std::move(second.value()));
  }
  auto expect_same = [&](const BatchResult& a, const BatchResult& b,
                         const std::string& context) {
    ASSERT_EQ(a.results.size(), b.results.size()) << context;
    for (size_t i = 0; i < a.results.size(); ++i) {
      EXPECT_TRUE(a.results[i].rules.SameAs(b.results[i].rules)) << context;
      EXPECT_EQ(a.results[i].plan_used, b.results[i].plan_used) << context;
      EXPECT_EQ(a.results[i].stats.record_checks,
                b.results[i].stats.record_checks)
          << context;
    }
    EXPECT_EQ(a.subsets_shared, b.subsets_shared) << context;
    EXPECT_EQ(a.cache.hits_exact, b.cache.hits_exact) << context;
    EXPECT_EQ(a.cache.hits_containment, b.cache.hits_containment) << context;
    EXPECT_EQ(a.cache.hits_count_memo, b.cache.hits_count_memo) << context;
    EXPECT_EQ(a.cache.misses, b.cache.misses) << context;
    EXPECT_EQ(a.cache.evictions, b.cache.evictions) << context;
    EXPECT_EQ(a.cache.bytes, b.cache.bytes) << context;
    EXPECT_EQ(a.cache.entries, b.cache.entries) << context;
  };
  for (size_t t = 1; t < firsts.size(); ++t) {
    expect_same(firsts[0], firsts[t], "first batch, sweep " +
                                          std::to_string(t));
    expect_same(seconds[0], seconds[t], "second batch, sweep " +
                                            std::to_string(t));
  }
}

TEST(BatchTest, CacheWithUnsharedSubsetsKeepsColdCharges) {
  Env cached = MakeCachedEnv(11);
  Env cold = Env::Make(11);
  auto queries = SessionQueries();
  BatchOptions options;
  options.share_subsets = false;
  auto warm = BatchExecutor(*cached.engine).Execute(queries, options);
  auto reference = BatchExecutor(*cold.engine).Execute(queries, options);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(reference.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(warm->results[i].stats.record_checks,
              reference->results[i].stats.record_checks)
        << "query " << i;
    EXPECT_TRUE(warm->results[i].rules.SameAs(reference->results[i].rules));
  }
}

TEST(BatchTest, EmptyBatch) {
  Env env = Env::Make(7);
  BatchExecutor executor(*env.engine);
  auto batch = executor.Execute({});
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->results.empty());
  EXPECT_EQ(batch->subsets_shared, 0u);
}

}  // namespace
}  // namespace colarm
