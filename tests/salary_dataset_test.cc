#include <gtest/gtest.h>

#include "data/salary_dataset.h"
#include "mining/brute_force.h"

namespace colarm {
namespace {

TEST(SalaryDatasetTest, ShapeMatchesTable1) {
  Dataset data = MakeSalaryDataset();
  EXPECT_EQ(data.num_records(), 11u);
  EXPECT_EQ(data.num_attributes(), 6u);
  EXPECT_EQ(data.schema().attribute(0).name, "Company");
  EXPECT_EQ(data.schema().attribute(5).name, "Salary");
}

// The paper's running example: global rule RG = (Age=20-30 => Salary=90K-
// 120K) has 45% support (5/11) and 83% confidence (5/6).
TEST(SalaryDatasetTest, GlobalRuleRG) {
  Dataset data = MakeSalaryDataset();
  const Schema& schema = data.schema();
  ItemId age_a0 = schema.ItemOf(4, 0);     // Age=20-30
  ItemId salary_s2 = schema.ItemOf(5, 2);  // Salary=90K-120K
  uint32_t both = CountSupport(data, std::vector<ItemId>{age_a0, salary_s2});
  uint32_t age_only = CountSupport(data, std::vector<ItemId>{age_a0});
  EXPECT_EQ(both, 5u);
  EXPECT_EQ(age_only, 6u);
}

// Localized rule RL = (Age=30-40 => Salary=90K-120K) for female Seattle
// employees: 75% support (3/4), 100% confidence (3/3).
TEST(SalaryDatasetTest, LocalizedRuleRL) {
  Dataset data = MakeSalaryDataset();
  const Schema& schema = data.schema();
  ItemId age_a1 = schema.ItemOf(4, 1);     // Age=30-40
  ItemId salary_s2 = schema.ItemOf(5, 2);  // Salary=90K-120K

  // Focal subset: Location=Seattle AND Gender=F (the last four records).
  std::vector<Tid> subset;
  for (Tid t = 0; t < data.num_records(); ++t) {
    if (data.Value(t, 2) == 2 && data.Value(t, 3) == 1) subset.push_back(t);
  }
  ASSERT_EQ(subset.size(), 4u);

  uint32_t both = 0;
  uint32_t age_only = 0;
  for (Tid t : subset) {
    bool age = data.ContainsItem(t, age_a1);
    if (age) ++age_only;
    if (age && data.ContainsItem(t, salary_s2)) ++both;
  }
  EXPECT_EQ(both, 3u);
  EXPECT_EQ(age_only, 3u);
}

// The global rule RG does NOT hold in the female-Seattle subset (the
// Simpson's-paradox flip the paper's introduction walks through).
TEST(SalaryDatasetTest, GlobalRuleFlipsLocally) {
  Dataset data = MakeSalaryDataset();
  const Schema& schema = data.schema();
  ItemId age_a0 = schema.ItemOf(4, 0);
  ItemId salary_s2 = schema.ItemOf(5, 2);
  uint32_t both = 0;
  for (Tid t = 0; t < data.num_records(); ++t) {
    if (data.Value(t, 2) == 2 && data.Value(t, 3) == 1 &&
        data.ContainsItem(t, age_a0) && data.ContainsItem(t, salary_s2)) {
      ++both;
    }
  }
  EXPECT_EQ(both, 0u);  // RG has zero local support
}

}  // namespace
}  // namespace colarm
