#include <gtest/gtest.h>

#include <memory>

#include "core/engine.h"
#include "common/string_util.h"
#include "core/export.h"
#include "data/salary_dataset.h"
#include "test_util.h"

namespace colarm {
namespace {

struct Env {
  std::unique_ptr<Dataset> data;
  RuleSet rules;
  FocalSubset subset;

  static Env Make() {
    Env env;
    env.data = std::make_unique<Dataset>(MakeSalaryDataset());
    EngineOptions options;
    options.index.primary_support = 0.27;
    options.calibrate = false;
    auto engine = Engine::Build(*env.data, options);
    EXPECT_TRUE(engine.ok());
    LocalizedQuery query;
    query.ranges = {{2, 2, 2}, {3, 1, 1}};
    query.minsupp = 0.75;
    query.minconf = 1.0;
    auto result = (*engine)->Execute(query);
    EXPECT_TRUE(result.ok());
    env.rules = result->rules;
    env.subset = FocalSubset::Materialize(
        *env.data, query.ToRect(env.data->schema()));
    return env;
  }
};

TEST(ExportTest, CsvHasHeaderAndOneLinePerRule) {
  Env env = Env::Make();
  std::string csv = RulesToCsvString(*env.data, env.rules, env.subset);
  auto lines = colarm::SplitString(csv, '\n');
  // header + rules + trailing empty fragment
  ASSERT_EQ(lines.size(), env.rules.rules.size() + 2);
  EXPECT_EQ(lines[0],
            "antecedent,consequent,support,confidence,itemset_count,"
            "antecedent_count,base_count");
  EXPECT_NE(lines[1].find("Location=Seattle"), std::string::npos);
}

TEST(ExportTest, CsvWithMeasuresAddsColumns) {
  Env env = Env::Make();
  ExportOptions options;
  options.with_measures = true;
  std::string csv =
      RulesToCsvString(*env.data, env.rules, env.subset, options);
  auto lines = colarm::SplitString(csv, '\n');
  EXPECT_NE(lines[0].find("kulczynski"), std::string::npos);
  // Column count consistent across header and data rows.
  size_t header_cols = colarm::SplitString(lines[0], ',').size();
  EXPECT_EQ(header_cols, 14u);
}

TEST(ExportTest, CsvQuotesFieldsWithCommas) {
  Dataset data{Schema(std::vector<Attribute>{
      {"a", {"x,y", "plain"}},
      {"b", {"v\"q", "w"}},
  })};
  ASSERT_TRUE(data.AddRecord({0, 0}).ok());
  RuleSet rules;
  rules.rules.push_back(
      Rule{{data.schema().ItemOf(0, 0)}, {data.schema().ItemOf(1, 0)}, 1, 1,
           1});
  FocalSubset subset;
  subset.tids = {0};
  std::string csv = RulesToCsvString(data, rules, subset);
  EXPECT_NE(csv.find("\"a=x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"b=v\"\"q\""), std::string::npos);
}

TEST(ExportTest, JsonIsWellFormedish) {
  Env env = Env::Make();
  std::string json = RulesToJsonString(*env.data, env.rules, env.subset);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
  // One object per rule.
  size_t objects = 0;
  for (size_t pos = json.find("{\"antecedent\""); pos != std::string::npos;
       pos = json.find("{\"antecedent\"", pos + 1)) {
    ++objects;
  }
  EXPECT_EQ(objects, env.rules.rules.size());
  // Balanced braces.
  int depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(ExportTest, JsonEscapesSpecials) {
  Dataset data{Schema(std::vector<Attribute>{
      {"a", {"quote\"inside", "plain"}},
      {"b", {"back\\slash", "w"}},
  })};
  ASSERT_TRUE(data.AddRecord({0, 0}).ok());
  RuleSet rules;
  rules.rules.push_back(
      Rule{{data.schema().ItemOf(0, 0)}, {data.schema().ItemOf(1, 0)}, 1, 1,
           1});
  FocalSubset subset;
  subset.tids = {0};
  std::string json = RulesToJsonString(data, rules, subset);
  EXPECT_NE(json.find("quote\\\"inside"), std::string::npos);
  EXPECT_NE(json.find("back\\\\slash"), std::string::npos);
}

TEST(ExportTest, EmptyRuleSet) {
  Env env = Env::Make();
  RuleSet empty;
  FocalSubset subset;
  std::string csv = RulesToCsvString(*env.data, empty, subset);
  EXPECT_EQ(colarm::SplitString(csv, '\n').size(), 2u);  // header only
  std::string json = RulesToJsonString(*env.data, empty, subset);
  EXPECT_EQ(json, "[\n]\n");
}

TEST(ExportTest, JsonMeasuresIncluded) {
  Env env = Env::Make();
  ExportOptions options;
  options.with_measures = true;
  std::string json =
      RulesToJsonString(*env.data, env.rules, env.subset, options);
  EXPECT_NE(json.find("\"kulczynski\""), std::string::npos);
  EXPECT_NE(json.find("\"lift\""), std::string::npos);
}

}  // namespace
}  // namespace colarm
