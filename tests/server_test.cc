// In-process tests of the multi-tenant query server: byte-identity with a
// direct Engine replay, protocol negative paths over real sockets (torn
// frames, oversized lines, pre-HELLO commands, double QUIT, parse errors),
// admission control, per-request deadlines, concurrent clients, and
// graceful shutdown.
#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/query_parser.h"
#include "data/salary_dataset.h"
#include "server/protocol.h"

namespace colarm {
namespace {

constexpr double kPrimarySupport = 0.27;

const char* const kDrillDown[] = {
    "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Location = {Seattle} "
    "HAVING minsupport = 0.5 AND minconfidence = 0.6;",
    "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Location = {Seattle} "
    "AND Gender = {F} HAVING minsupport = 0.5 AND minconfidence = 0.6;",
    "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Location = {Seattle} "
    "HAVING minsupport = 0.5 AND minconfidence = 0.6;",
    "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Gender = {M} "
    "HAVING minsupport = 0.4 AND minconfidence = 0.5;",
};

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = std::make_unique<Dataset>(MakeSalaryDataset());
    EngineOptions options;
    options.index.primary_support = kPrimarySupport;
    options.calibrate = false;  // deterministic plan choice
    auto engine = Engine::Build(*data_, options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(engine.value());
  }

  std::unique_ptr<Server> StartServer(ServerOptions options = {}) {
    auto server = std::make_unique<Server>(*engine_, options);
    Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    EXPECT_NE(server->port(), 0);
    return server;
  }

  std::unique_ptr<Dataset> data_;
  std::unique_ptr<Engine> engine_;
};

/// Minimal blocking protocol client over one TCP connection.
class Client {
 public:
  explicit Client(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
  }
  ~Client() { Close(); }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  void Send(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off, 0);
      ASSERT_GT(n, 0);
      off += static_cast<size_t>(n);
    }
  }

  /// One full framed response, raw bytes ("OK <n>\n<payload>" or
  /// "ERR ...\n"). Empty string on EOF.
  std::string ReadResponse() {
    std::string header = ReadLine();
    if (header.empty()) return header;
    if (header.rfind("OK ", 0) == 0) {
      size_t nbytes = std::stoul(header.substr(3));
      std::string payload = ReadExactly(nbytes);
      return header + "\n" + payload;
    }
    return header + "\n";
  }

  /// True when the peer has cleanly closed (no stray bytes first).
  bool AtEof() {
    if (pos_ < buf_.size()) return false;
    char c;
    ssize_t n = ::recv(fd_, &c, 1, 0);
    if (n == 1) {
      buf_ = std::string(1, c);
      pos_ = 0;
      return false;
    }
    return n == 0;
  }

 private:
  std::string ReadLine() {
    std::string line;
    for (;;) {
      while (pos_ < buf_.size()) {
        char c = buf_[pos_++];
        if (c == '\n') return line;
        line.push_back(c);
      }
      if (!Fill()) return line;  // EOF: return what we have (maybe empty)
    }
  }

  std::string ReadExactly(size_t n) {
    std::string out;
    while (out.size() < n) {
      while (pos_ < buf_.size() && out.size() < n) out.push_back(buf_[pos_++]);
      if (out.size() < n && !Fill()) break;
    }
    EXPECT_EQ(out.size(), n) << "short read";
    return out;
  }

  bool Fill() {
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buf_.assign(chunk, static_cast<size_t>(n));
    pos_ = 0;
    return true;
  }

  int fd_ = -1;
  std::string buf_;
  size_t pos_ = 0;
};

TEST_F(ServerTest, ResponsesByteIdenticalToDirectEngine) {
  auto server = StartServer();
  Client client(server->port());
  client.Send("HELLO alice\n");
  EXPECT_EQ(client.ReadResponse(), OkResponse("hello alice\n"));

  // Direct replay: same cache options, same query sequence, rendered with
  // the same protocol functions. The server must not add or perturb a byte.
  QueryCache replay_cache(engine_->index(),
                          server->service().options().tenant_cache);
  for (const char* text : kDrillDown) {
    client.Send(std::string("MINE ") + text + "\n");
    std::string via_server = client.ReadResponse();

    auto query = ParseQuery(data_->schema(), text);
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    auto direct =
        engine_->Execute(*query, SessionContext{&replay_cache, nullptr});
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    std::string expected =
        OkResponse(RenderMineResult(data_->schema(), direct.value()));
    EXPECT_EQ(via_server, expected) << text;
  }

  // EXPLAIN must match a direct Explain under the same session cache.
  client.Send(std::string("EXPLAIN ") + kDrillDown[0] + "\n");
  auto query = ParseQuery(data_->schema(), kDrillDown[0]);
  ASSERT_TRUE(query.ok());
  auto decision =
      engine_->Explain(*query, SessionContext{&replay_cache, nullptr});
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(client.ReadResponse(),
            OkResponse(RenderExplain(decision.value())));
}

TEST_F(ServerTest, StatsReflectTenantActivity) {
  auto server = StartServer();
  Client client(server->port());
  client.Send("HELLO bob\n");
  client.ReadResponse();
  client.Send(std::string("MINE ") + kDrillDown[0] + "\n");
  std::string mine = client.ReadResponse();
  ASSERT_EQ(mine.rfind("OK ", 0), 0u);
  client.Send("STATS\n");
  std::string stats = client.ReadResponse();
  EXPECT_NE(stats.find("tenant bob\n"), std::string::npos) << stats;
  EXPECT_NE(stats.find("mines 1 "), std::string::npos) << stats;
  // The worker decrements the in-flight counters after the MINE response is
  // queued, so a pipelined STATS can observe the drain still in progress.
  for (int i = 0;
       i < 100 &&
       stats.find("inflight tenant 0 global 0") == std::string::npos;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    client.Send("STATS\n");
    stats = client.ReadResponse();
  }
  EXPECT_NE(stats.find("inflight tenant 0 global 0"), std::string::npos)
      << stats;
}

TEST_F(ServerTest, StatsReportPerTenantCacheTelemetry) {
  ServerOptions options;
  options.service.tenant_cache.enabled = true;
  auto server = StartServer(options);
  Client client(server->port());
  client.Send("HELLO carol\n");
  client.ReadResponse();
  // The same query twice: one cold miss, one exact hit.
  for (int i = 0; i < 2; ++i) {
    client.Send(std::string("MINE ") + kDrillDown[0] + "\n");
    ASSERT_EQ(client.ReadResponse().rfind("OK ", 0), 0u);
  }
  client.Send("STATS\n");
  std::string stats = client.ReadResponse();
  EXPECT_NE(stats.find("cache exact 1 "), std::string::npos) << stats;
  EXPECT_NE(stats.find(" misses 1 "), std::string::npos) << stats;
  // The tier-2.5 and admission counters are part of the wire format even
  // when zero, so dashboards can rely on the fields being present.
  EXPECT_NE(stats.find(" compose 0 "), std::string::npos) << stats;
  EXPECT_NE(stats.find(" admitrej 0 "), std::string::npos) << stats;
  EXPECT_EQ(stats.find("cache disabled"), std::string::npos) << stats;
}

TEST_F(ServerTest, TenantCachePersistsAcrossRestartViaCacheDir) {
  const std::string cache_dir = ::testing::TempDir();
  const std::string cache_file = cache_dir + "/dave.ccache";
  std::remove(cache_file.c_str());

  ServerOptions options;
  options.service.tenant_cache.enabled = true;
  options.service.cache_dir = cache_dir;

  std::string first_response;
  {
    auto server = StartServer(options);
    Client client(server->port());
    client.Send("HELLO dave\n");
    client.ReadResponse();
    client.Send(std::string("MINE ") + kDrillDown[0] + "\n");
    first_response = client.ReadResponse();
    ASSERT_EQ(first_response.rfind("OK ", 0), 0u);
    client.Close();
    server->Shutdown();
    // The drain persisted the tenant's session cache (v4 file).
    EXPECT_EQ(server->service().PersistCaches(), 1u);
  }

  // A restarted server warm-starts the tenant from the cache dir: the
  // replayed query returns byte-identical rules — only the provenance
  // annotation may differ ("cache none" cold, "cache exact" warm) — and
  // is served as an exact hit with zero misses.
  auto server = StartServer(options);
  Client client(server->port());
  client.Send("HELLO dave\n");
  client.ReadResponse();
  client.Send(std::string("MINE ") + kDrillDown[0] + "\n");
  const std::string warm_response = client.ReadResponse();
  auto rules_of = [](const std::string& response) {
    // Skip the framing header and the plan/provenance line.
    size_t pos = response.find('\n');
    pos = response.find('\n', pos + 1);
    return response.substr(pos + 1);
  };
  EXPECT_EQ(rules_of(warm_response), rules_of(first_response));
  EXPECT_NE(warm_response.find("cache exact\n"), std::string::npos)
      << warm_response;
  EXPECT_NE(first_response.find("cache none\n"), std::string::npos)
      << first_response;
  client.Send("STATS\n");
  std::string stats = client.ReadResponse();
  EXPECT_NE(stats.find("cache exact 1 "), std::string::npos) << stats;
  EXPECT_NE(stats.find(" misses 0 "), std::string::npos) << stats;
  std::remove(cache_file.c_str());
}

TEST_F(ServerTest, CommandsBeforeHelloRejectedSessionUsable) {
  auto server = StartServer();
  Client client(server->port());
  for (const char* line : {"MINE x\n", "EXPLAIN x\n", "STATS\n"}) {
    client.Send(line);
    std::string resp = client.ReadResponse();
    EXPECT_EQ(resp.rfind("ERR NOHELLO", 0), 0u) << resp;
  }
  // The connection is not poisoned: HELLO then STATS still work.
  client.Send("HELLO late\nSTATS\n");
  EXPECT_EQ(client.ReadResponse(), OkResponse("hello late\n"));
  EXPECT_EQ(client.ReadResponse().rfind("OK ", 0), 0u);
}

TEST_F(ServerTest, SecondHelloRejected) {
  auto server = StartServer();
  Client client(server->port());
  client.Send("HELLO a\nHELLO b\n");
  EXPECT_EQ(client.ReadResponse(), OkResponse("hello a\n"));
  EXPECT_EQ(client.ReadResponse().rfind("ERR REHELLO", 0), 0u);
  client.Send("STATS\n");  // still tenant a, still usable
  std::string stats = client.ReadResponse();
  EXPECT_NE(stats.find("tenant a\n"), std::string::npos);
}

TEST_F(ServerTest, MineParseErrorKeepsSessionUsable) {
  auto server = StartServer();
  Client client(server->port());
  client.Send("HELLO t\n");
  client.ReadResponse();
  client.Send("MINE this is not a query\n");
  EXPECT_EQ(client.ReadResponse().rfind("ERR PARSE", 0), 0u);
  client.Send(std::string("MINE ") + kDrillDown[0] + "\n");
  EXPECT_EQ(client.ReadResponse().rfind("OK ", 0), 0u);
}

TEST_F(ServerTest, UnknownAndMalformedCommands) {
  auto server = StartServer();
  Client client(server->port());
  client.Send("FROBNICATE\n");
  EXPECT_EQ(client.ReadResponse().rfind("ERR BADCMD", 0), 0u);
  client.Send("STATS now\n");
  EXPECT_EQ(client.ReadResponse().rfind("ERR BADCMD", 0), 0u);
  client.Send("HELLO bad tenant name\n");
  EXPECT_EQ(client.ReadResponse().rfind("ERR BADCMD", 0), 0u);
  EXPECT_GE(server->stats().protocol_errors.load(), 3u);
}

TEST_F(ServerTest, TornFramesReassembled) {
  auto server = StartServer();
  Client client(server->port());
  const std::string request =
      std::string("HELLO torn\nMINE ") + kDrillDown[0] + "\n";
  // Dribble the pipelined requests a few bytes at a time.
  for (size_t i = 0; i < request.size(); i += 3) {
    client.Send(request.substr(i, 3));
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  EXPECT_EQ(client.ReadResponse(), OkResponse("hello torn\n"));
  EXPECT_EQ(client.ReadResponse().rfind("OK ", 0), 0u);
}

TEST_F(ServerTest, OversizedLineDiscardedSessionUsable) {
  ServerOptions options;
  options.max_line_bytes = 128;
  auto server = StartServer(options);
  Client client(server->port());
  client.Send("HELLO big\n");
  client.ReadResponse();
  client.Send(std::string(4096, 'x') + "\n");
  EXPECT_EQ(client.ReadResponse().rfind("ERR TOOLONG", 0), 0u);
  client.Send("STATS\n");
  EXPECT_EQ(client.ReadResponse().rfind("OK ", 0), 0u);
  EXPECT_GE(server->stats().oversized_lines.load(), 1u);
}

TEST_F(ServerTest, DoubleQuitAnsweredThenClosed) {
  auto server = StartServer();
  Client client(server->port());
  client.Send("QUIT\nQUIT\n");  // pipelined: both must be answered
  EXPECT_EQ(client.ReadResponse(), OkResponse("bye\n"));
  EXPECT_EQ(client.ReadResponse().rfind("ERR BADCMD", 0), 0u);
  EXPECT_TRUE(client.AtEof());
}

TEST_F(ServerTest, EmptyLinesIgnored) {
  auto server = StartServer();
  Client client(server->port());
  client.Send("\n\r\nHELLO quiet\n\nSTATS\n");
  EXPECT_EQ(client.ReadResponse(), OkResponse("hello quiet\n"));
  EXPECT_EQ(client.ReadResponse().rfind("OK ", 0), 0u);
}

TEST_F(ServerTest, TinyDeadlineAnswersDeadline) {
  ServerOptions options;
  options.service.deadline_ms = 0.0001;  // expires before execution starts
  auto server = StartServer(options);
  Client client(server->port());
  client.Send("HELLO rushed\n");
  client.ReadResponse();
  client.Send(std::string("MINE ") + kDrillDown[0] + "\n");
  EXPECT_EQ(client.ReadResponse().rfind("ERR DEADLINE", 0), 0u);
  client.Send("STATS\n");  // deadline counts as a mine error
  std::string stats = client.ReadResponse();
  EXPECT_NE(stats.find("mines 1 errors 1 "), std::string::npos) << stats;
}

// A constrained MINE is answered byte-identically to a direct engine
// replay, and differs from the unconstrained MINE of the same box.
TEST_F(ServerTest, ConstrainedMineMatchesEngineAndDiffersFromPlain) {
  const char* plain =
      "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Location = {Seattle} "
      "HAVING minsupport = 0.5 AND minconfidence = 0.6;";
  const char* constrained =
      "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Location = {Seattle} "
      "AND EXCLUDE { Salary = 90K-120K } "
      "HAVING minsupport = 0.5 AND minconfidence = 0.6;";
  auto server = StartServer();
  Client client(server->port());
  client.Send("HELLO carol\n");
  client.ReadResponse();

  client.Send(std::string("MINE ") + plain + "\n");
  std::string plain_resp = client.ReadResponse();
  ASSERT_EQ(plain_resp.rfind("OK ", 0), 0u);
  client.Send(std::string("MINE ") + constrained + "\n");
  std::string constrained_resp = client.ReadResponse();
  ASSERT_EQ(constrained_resp.rfind("OK ", 0), 0u);
  EXPECT_NE(plain_resp, constrained_resp);

  QueryCache replay_cache(engine_->index(),
                          server->service().options().tenant_cache);
  auto query = ParseQuery(data_->schema(), constrained);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_FALSE(query->constraints.Empty());
  // Replay the session's query order so cache state matches.
  auto first = ParseQuery(data_->schema(), plain);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(
      engine_->Execute(*first, SessionContext{&replay_cache, nullptr}).ok());
  auto direct =
      engine_->Execute(*query, SessionContext{&replay_cache, nullptr});
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  EXPECT_EQ(constrained_resp,
            OkResponse(RenderMineResult(data_->schema(), direct.value())));
}

// A malformed constraint clause is an ERR PARSE naming the offending
// token, and the session stays usable.
TEST_F(ServerTest, MalformedConstraintClauseIsParseError) {
  auto server = StartServer();
  Client client(server->port());
  client.Send("HELLO dave\n");
  client.ReadResponse();
  const char* bad[] = {
      // Unknown value label in the CONTAIN item list.
      "MINE REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Location = "
      "{Seattle} AND CONTAIN { Gender = X } HAVING minsupport = 0.5 AND "
      "minconfidence = 0.6;\n",
      // Unknown attribute in ANTECEDENT ATTRIBUTES.
      "MINE REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Location = "
      "{Seattle} AND ANTECEDENT ATTRIBUTES { Shoesize } HAVING "
      "minsupport = 0.5 AND minconfidence = 0.6;\n",
      // Unknown measure threshold name.
      "MINE REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Location = "
      "{Seattle} HAVING minsupport = 0.5 AND minconfidence = 0.6 AND "
      "minwobble = 0.5;\n",
  };
  for (const char* line : bad) {
    client.Send(line);
    std::string resp = client.ReadResponse();
    EXPECT_EQ(resp.rfind("ERR PARSE", 0), 0u) << resp;
  }
  client.Send(std::string("MINE ") + kDrillDown[0] + "\n");
  EXPECT_EQ(client.ReadResponse().rfind("OK ", 0), 0u);
}

// EXPLAIN of a constrained query carries the constraint provenance the
// optimizer recorded (which clauses were pushed into the plan).
TEST_F(ServerTest, ExplainShowsConstraintProvenance) {
  auto server = StartServer();
  Client client(server->port());
  client.Send("HELLO erin\n");
  client.ReadResponse();
  client.Send(
      "EXPLAIN REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Location = "
      "{Seattle} AND CONTAIN { Gender = F } AND ANTECEDENT ATTRIBUTES "
      "{ Age } HAVING minsupport = 0.5 AND minconfidence = 0.6 AND "
      "minkulczynski = 0.5;\n");
  std::string resp = client.ReadResponse();
  ASSERT_EQ(resp.rfind("OK ", 0), 0u) << resp;
  EXPECT_NE(resp.find("constraints pushed into plan:"), std::string::npos)
      << resp;
  EXPECT_NE(resp.find("CONTAIN {Gender=F}"), std::string::npos) << resp;
  EXPECT_NE(resp.find("ANTECEDENT ATTRIBUTES {Age}"), std::string::npos)
      << resp;
  EXPECT_NE(resp.find("minkulczynski"), std::string::npos) << resp;
}

// The per-request deadline holds for constrained mines too: the constraint
// pushdown path polls the same deadline checks as the plain one.
TEST_F(ServerTest, TinyDeadlineHonoredMidConstrainedMine) {
  ServerOptions options;
  options.service.deadline_ms = 0.0001;  // expires before execution starts
  auto server = StartServer(options);
  Client client(server->port());
  client.Send("HELLO frank\n");
  client.ReadResponse();
  client.Send(
      "MINE REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Location = "
      "{Seattle} AND CONTAIN { Gender = F } HAVING minsupport = 0.5 AND "
      "minconfidence = 0.6;\n");
  EXPECT_EQ(client.ReadResponse().rfind("ERR DEADLINE", 0), 0u);
  client.Send("STATS\n");
  std::string stats = client.ReadResponse();
  EXPECT_NE(stats.find("mines 1 errors 1 "), std::string::npos) << stats;
}

TEST(ServiceAdmissionTest, BoundsEnforcedDeterministically) {
  auto data = std::make_unique<Dataset>(MakeSalaryDataset());
  EngineOptions engine_options;
  engine_options.index.primary_support = kPrimarySupport;
  engine_options.calibrate = false;
  auto engine = Engine::Build(*data, engine_options);
  ASSERT_TRUE(engine.ok());

  ServiceOptions options;
  options.max_inflight = 3;
  options.max_tenant_inflight = 2;
  Service service(**engine, options);
  auto a = service.GetTenant("a");
  auto b = service.GetTenant("b");

  // Tenant fairness: a's third admit fails even though the global bound
  // still has room.
  EXPECT_TRUE(service.Admit(a.get()));
  EXPECT_TRUE(service.Admit(a.get()));
  EXPECT_FALSE(service.Admit(a.get()));
  // Global bound: with 2 slots held by a, b gets one, then the cap.
  EXPECT_TRUE(service.Admit(b.get()));
  EXPECT_FALSE(service.Admit(b.get()));
  EXPECT_EQ(service.inflight(), 3u);
  // Release restores both bounds.
  service.Release(a.get());
  EXPECT_TRUE(service.Admit(b.get()));
  service.Release(a.get());
  service.Release(b.get());
  service.Release(b.get());
  EXPECT_EQ(service.inflight(), 0u);
  EXPECT_EQ(a->inflight(), 0u);
  EXPECT_EQ(b->inflight(), 0u);
}

TEST_F(ServerTest, ConcurrentClientsGetWellFormedResponses) {
  // 8 clients, each its own tenant and connection, hammering pipelined
  // MINE/STATS/EXPLAIN traffic. This is the tsan_server workload: the
  // assertion here is well-formedness and rule-count agreement; the nested
  // TSan build asserts the absence of data races.
  auto server = StartServer();
  constexpr int kClients = 8;
  constexpr int kRounds = 6;

  // Sequential reference: the rule listing per drill-down step. Rules are
  // cache-independent (the plan-equivalence invariant); the plan/cache
  // summary line is not compared here because batching and cross-round
  // cache state legitimately change the tier the optimizer reports.
  std::vector<std::string> expected_rules;
  for (const char* text : kDrillDown) {
    auto query = ParseQuery(data_->schema(), text);
    ASSERT_TRUE(query.ok());
    auto direct = engine_->Execute(*query);
    ASSERT_TRUE(direct.ok());
    std::string payload = RenderMineResult(data_->schema(), direct.value());
    expected_rules.push_back(payload.substr(payload.find('\n') + 1));
  }

  std::vector<std::thread> threads;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client(server->port());
      client.Send("HELLO tenant" + std::to_string(c) + "\n");
      if (client.ReadResponse().rfind("OK ", 0) != 0) {
        failures[c]++;
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        // Pipeline the whole drill-down, then read all responses back.
        std::string burst;
        for (const char* text : kDrillDown) {
          burst += std::string("MINE ") + text + "\n";
        }
        burst += "STATS\n";
        client.Send(burst);
        for (size_t q = 0; q < std::size(kDrillDown); ++q) {
          std::string resp = client.ReadResponse();
          // BUSY is a legal fast-fail under concurrent load; anything
          // else must carry exactly the reference rule listing.
          if (resp.rfind("ERR BUSY", 0) == 0) continue;
          if (resp.rfind("OK ", 0) != 0) {
            failures[c]++;
            continue;
          }
          // Skip the "OK <n>" header line and the plan/cache summary line.
          size_t header_end = resp.find('\n');
          size_t summary_end = resp.find('\n', header_end + 1);
          if (resp.substr(summary_end + 1) != expected_rules[q]) failures[c]++;
        }
        if (client.ReadResponse().rfind("OK ", 0) != 0) failures[c]++;
      }
      client.Send("QUIT\n");
      if (client.ReadResponse() != OkResponse("bye\n")) failures[c]++;
    });
  }
  for (auto& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0) << "client " << c;
  }
}

TEST_F(ServerTest, BatchedPipelineMatchesSequentialRules) {
  // A pipelined burst from one connection lands in the dispatcher as one
  // same-tenant group and runs through the BatchExecutor; the rules must
  // still be identical to sequential execution.
  auto server = StartServer();
  Client client(server->port());
  client.Send("HELLO burst\n");
  client.ReadResponse();
  std::string burst;
  for (const char* text : kDrillDown) {
    burst += std::string("MINE ") + text + "\n";
  }
  client.Send(burst);

  QueryCache cache(engine_->index(), server->service().options().tenant_cache);
  for (const char* text : kDrillDown) {
    std::string resp = client.ReadResponse();
    ASSERT_EQ(resp.rfind("OK ", 0), 0u) << resp;
    auto query = ParseQuery(data_->schema(), text);
    ASSERT_TRUE(query.ok());
    auto direct = engine_->Execute(*query, SessionContext{&cache, nullptr});
    ASSERT_TRUE(direct.ok());
    // Batched counting may commit memos at a different time than the
    // sequential replay, which can legitimately change the cache-tier
    // line; the rule listing itself must match byte-for-byte.
    std::string direct_payload =
        RenderMineResult(data_->schema(), direct.value());
    std::string server_rules = resp.substr(resp.find("\n", resp.find("\n") +
                                                     1) + 1);
    std::string direct_rules =
        direct_payload.substr(direct_payload.find('\n') + 1);
    EXPECT_EQ(server_rules, direct_rules) << text;
  }
}

TEST_F(ServerTest, HalfCloseStillAnswersThenCloses) {
  // nc-style client: send everything, shutdown(WR), then read all output.
  auto server = StartServer();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server->port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request =
      std::string("HELLO nc\nMINE ") + kDrillDown[0] + "\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  ::shutdown(fd, SHUT_WR);
  std::string all;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    all.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_EQ(all.rfind(OkResponse("hello nc\n"), 0), 0u) << all;
  EXPECT_NE(all.find("plan "), std::string::npos) << all;
}

TEST_F(ServerTest, GracefulShutdownDrainsAndRejectsNewWork) {
  auto server = StartServer();
  Client client(server->port());
  client.Send("HELLO drain\n");
  client.ReadResponse();
  client.Send(std::string("MINE ") + kDrillDown[0] + "\n");
  EXPECT_EQ(client.ReadResponse().rfind("OK ", 0), 0u);

  std::thread stopper([&] { server->Shutdown(); });
  server->Wait();
  stopper.join();
  EXPECT_EQ(server->service().inflight(), 0u);

  // The listener is gone: new connections are refused.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server->port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_NE(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ::close(fd);

  // Shutdown is idempotent.
  server->Shutdown();
}

TEST_F(ServerTest, ShutdownWhileMinesInFlightStillStops) {
  auto server = StartServer();
  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client(server->port());
      client.Send("HELLO race" + std::to_string(c) + "\n");
      client.ReadResponse();
      for (int i = 0; i < 20; ++i) {
        client.Send(std::string("MINE ") + kDrillDown[i % 4] + "\n");
        std::string resp = client.ReadResponse();
        if (resp.empty()) return;  // connection closed by shutdown
        // OK, BUSY, SHUTDOWN, and DEADLINE (kill-switch) are all legal.
        EXPECT_TRUE(resp.rfind("OK ", 0) == 0 ||
                    resp.rfind("ERR BUSY", 0) == 0 ||
                    resp.rfind("ERR SHUTDOWN", 0) == 0 ||
                    resp.rfind("ERR DEADLINE", 0) == 0)
            << resp;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server->Shutdown();
  for (auto& t : threads) t.join();
  EXPECT_EQ(server->service().inflight(), 0u);
}

}  // namespace
}  // namespace colarm
