// The bench env knobs must hard-error on misparse instead of silently
// defaulting: a typo'd COLARM_BENCH_SCALE or COLARM_BENCH_THREADS would
// otherwise publish numbers labelled with parameters that never ran.
#include <gtest/gtest.h>

#include <cstdlib>

#include "harness.h"

namespace colarm {
namespace bench {
namespace {

class BenchEnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv("COLARM_BENCH_SCALE");
    ::unsetenv("COLARM_BENCH_THREADS");
    ::unsetenv("COLARM_BENCH_BACKEND");
  }
};

TEST_F(BenchEnvTest, UnsetAndEmptyMeanDefaults) {
  ::unsetenv("COLARM_BENCH_SCALE");
  ::unsetenv("COLARM_BENCH_THREADS");
  ::unsetenv("COLARM_BENCH_BACKEND");
  EXPECT_DOUBLE_EQ(ScaleFromEnv(), 1.0);
  EXPECT_EQ(ThreadsFromEnv(), 0u);
  EXPECT_EQ(BackendFromEnv(), ExecBackend::kScalar);

  ::setenv("COLARM_BENCH_SCALE", "", 1);
  ::setenv("COLARM_BENCH_THREADS", "", 1);
  ::setenv("COLARM_BENCH_BACKEND", "", 1);
  EXPECT_DOUBLE_EQ(ScaleFromEnv(), 1.0);
  EXPECT_EQ(ThreadsFromEnv(), 0u);
  EXPECT_EQ(BackendFromEnv(), ExecBackend::kScalar);
}

TEST_F(BenchEnvTest, ValidValuesParse) {
  ::setenv("COLARM_BENCH_SCALE", "0.25", 1);
  EXPECT_DOUBLE_EQ(ScaleFromEnv(), 0.25);
  ::setenv("COLARM_BENCH_THREADS", "8", 1);
  EXPECT_EQ(ThreadsFromEnv(), 8u);
  ::setenv("COLARM_BENCH_BACKEND", "bitmap", 1);
  EXPECT_EQ(BackendFromEnv(), ExecBackend::kBitmap);
  ::setenv("COLARM_BENCH_BACKEND", "scalar", 1);
  EXPECT_EQ(BackendFromEnv(), ExecBackend::kScalar);
}

using BenchEnvDeathTest = BenchEnvTest;

TEST_F(BenchEnvDeathTest, MalformedScaleDies) {
  ::setenv("COLARM_BENCH_SCALE", "O.5", 1);  // letter O, the classic typo
  EXPECT_EXIT(ScaleFromEnv(), ::testing::ExitedWithCode(2),
              "COLARM_BENCH_SCALE");
}

TEST_F(BenchEnvDeathTest, TrailingJunkScaleDies) {
  ::setenv("COLARM_BENCH_SCALE", "0.5x", 1);
  EXPECT_EXIT(ScaleFromEnv(), ::testing::ExitedWithCode(2),
              "COLARM_BENCH_SCALE");
}

TEST_F(BenchEnvDeathTest, NonPositiveScaleDies) {
  ::setenv("COLARM_BENCH_SCALE", "0", 1);
  EXPECT_EXIT(ScaleFromEnv(), ::testing::ExitedWithCode(2),
              "COLARM_BENCH_SCALE");
  ::setenv("COLARM_BENCH_SCALE", "-1", 1);
  EXPECT_EXIT(ScaleFromEnv(), ::testing::ExitedWithCode(2),
              "COLARM_BENCH_SCALE");
}

TEST_F(BenchEnvDeathTest, MalformedThreadsDies) {
  ::setenv("COLARM_BENCH_THREADS", "1x", 1);
  EXPECT_EXIT(ThreadsFromEnv(), ::testing::ExitedWithCode(2),
              "COLARM_BENCH_THREADS");
}

TEST_F(BenchEnvDeathTest, NegativeThreadsDies) {
  ::setenv("COLARM_BENCH_THREADS", "-4", 1);
  EXPECT_EXIT(ThreadsFromEnv(), ::testing::ExitedWithCode(2),
              "COLARM_BENCH_THREADS");
}

TEST_F(BenchEnvDeathTest, OverflowingThreadsDies) {
  ::setenv("COLARM_BENCH_THREADS", "99999999999999999999", 1);
  EXPECT_EXIT(ThreadsFromEnv(), ::testing::ExitedWithCode(2),
              "COLARM_BENCH_THREADS");
}

TEST_F(BenchEnvDeathTest, UnknownBackendDies) {
  ::setenv("COLARM_BENCH_BACKEND", "cuda", 1);
  EXPECT_EXIT(BackendFromEnv(), ::testing::ExitedWithCode(2),
              "COLARM_BENCH_BACKEND");
}

}  // namespace
}  // namespace bench
}  // namespace colarm
