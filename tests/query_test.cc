#include <gtest/gtest.h>

#include "data/salary_dataset.h"
#include "plans/query.h"

namespace colarm {
namespace {

TEST(QueryTest, ToRectDefaultsToFullDomain) {
  Dataset data = MakeSalaryDataset();
  LocalizedQuery query;
  Rect box = query.ToRect(data.schema());
  EXPECT_EQ(box, Rect::FullDomain(data.schema()));
}

TEST(QueryTest, ToRectAppliesRanges) {
  Dataset data = MakeSalaryDataset();
  LocalizedQuery query;
  query.ranges = {{2, 2, 2}, {3, 1, 1}};  // Seattle, F
  Rect box = query.ToRect(data.schema());
  EXPECT_EQ(box.lo(2), 2);
  EXPECT_EQ(box.hi(2), 2);
  EXPECT_EQ(box.lo(3), 1);
  EXPECT_EQ(box.hi(3), 1);
  EXPECT_EQ(box.lo(0), 0);
  EXPECT_EQ(box.hi(0), 3);  // unconstrained
}

TEST(QueryTest, ItemAttrMaskDefaultsToAll) {
  Dataset data = MakeSalaryDataset();
  LocalizedQuery query;
  auto mask = query.ItemAttrMask(data.schema());
  EXPECT_EQ(mask.size(), 6u);
  for (bool allowed : mask) EXPECT_TRUE(allowed);
}

TEST(QueryTest, ItemAttrMaskRestricts) {
  Dataset data = MakeSalaryDataset();
  LocalizedQuery query;
  query.item_attrs = {4, 5};
  auto mask = query.ItemAttrMask(data.schema());
  EXPECT_FALSE(mask[0]);
  EXPECT_TRUE(mask[4]);
  EXPECT_TRUE(mask[5]);
}

TEST(QueryTest, ValidateAcceptsGoodQuery) {
  Dataset data = MakeSalaryDataset();
  LocalizedQuery query;
  query.ranges = {{2, 0, 2}};
  query.item_attrs = {4, 5};
  query.minsupp = 0.5;
  query.minconf = 0.9;
  EXPECT_TRUE(query.Validate(data.schema()).ok());
}

TEST(QueryTest, ValidateRejectsBadRanges) {
  Dataset data = MakeSalaryDataset();
  LocalizedQuery query;

  query.ranges = {{99, 0, 0}};
  EXPECT_FALSE(query.Validate(data.schema()).ok());

  query.ranges = {{2, 2, 1}};  // inverted
  EXPECT_FALSE(query.Validate(data.schema()).ok());

  query.ranges = {{2, 0, 9}};  // beyond domain
  EXPECT_FALSE(query.Validate(data.schema()).ok());

  query.ranges = {{2, 0, 1}, {2, 1, 2}};  // duplicate attribute
  EXPECT_FALSE(query.Validate(data.schema()).ok());
}

TEST(QueryTest, ValidateRejectsBadItemAttrs) {
  Dataset data = MakeSalaryDataset();
  LocalizedQuery query;
  query.item_attrs = {9};
  EXPECT_FALSE(query.Validate(data.schema()).ok());
  query.item_attrs = {4, 4};
  EXPECT_FALSE(query.Validate(data.schema()).ok());
}

TEST(QueryTest, ValidateRejectsBadThresholds) {
  Dataset data = MakeSalaryDataset();
  LocalizedQuery query;
  query.minsupp = 0.0;
  EXPECT_FALSE(query.Validate(data.schema()).ok());
  query.minsupp = 0.5;
  query.minconf = 1.2;
  EXPECT_FALSE(query.Validate(data.schema()).ok());
}

TEST(QueryTest, ToStringReadable) {
  Dataset data = MakeSalaryDataset();
  LocalizedQuery query;
  query.ranges = {{2, 2, 2}};
  query.item_attrs = {4, 5};
  query.minsupp = 0.75;
  query.minconf = 0.9;
  std::string text = query.ToString(data.schema());
  EXPECT_NE(text.find("Location=[Seattle..Seattle]"), std::string::npos);
  EXPECT_NE(text.find("Age"), std::string::npos);
  EXPECT_NE(text.find("minsupport=0.75"), std::string::npos);
}

}  // namespace
}  // namespace colarm
