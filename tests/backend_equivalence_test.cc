#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/engine.h"
#include "data/salary_dataset.h"
#include "data/synthetic.h"
#include "plans/plans.h"
#include "test_util.h"

namespace colarm {
namespace {

using testing_util::RandomDataset;

RuleGenOptions WideRuleGen() {
  RuleGenOptions options;
  options.max_itemset_length = 31;
  return options;
}

// Deterministic effort counters of a plan run; timings excluded. The
// backends must agree on every one of these, not just on the rules.
std::vector<uint64_t> Effort(const PlanStats& stats) {
  return {stats.subset_size,          stats.local_min_count,
          stats.candidates_search,    stats.candidates_contained,
          stats.candidates_qualified, stats.record_checks,
          stats.rtree_nodes_visited,  stats.rtree_pruned_by_support,
          stats.rules_considered,     stats.rules_emitted,
          stats.itemsets_skipped};
}

// Runs every plan on both backends at 1, 2, and 8 threads and demands
// byte-identical rule sets and effort counters everywhere. `queries` come
// from the caller so each dataset exercises its interesting boxes.
void ExpectBackendsEquivalent(const MipIndex& index,
                              const std::vector<LocalizedQuery>& queries) {
  ThreadPool pool2(2);
  ThreadPool pool8(8);
  std::vector<ThreadPool*> pools = {nullptr, &pool2, &pool8};

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const LocalizedQuery& query = queries[qi];
    ASSERT_TRUE(query.Validate(index.dataset().schema()).ok());
    for (PlanKind kind : kAllPlans) {
      PlanExecOptions scalar_exec;
      scalar_exec.rulegen = WideRuleGen();
      auto scalar = ExecutePlan(kind, index, query, scalar_exec);
      ASSERT_TRUE(scalar.ok()) << PlanKindName(kind);

      for (ThreadPool* pool : pools) {
        for (ExecBackend backend :
             {ExecBackend::kScalar, ExecBackend::kBitmap}) {
          PlanExecOptions exec;
          exec.rulegen = WideRuleGen();
          exec.pool = pool;
          exec.backend = backend;
          auto run = ExecutePlan(kind, index, query, exec);
          ASSERT_TRUE(run.ok()) << PlanKindName(kind);
          const char* label = ExecBackendName(backend);
          const unsigned threads = pool ? pool->parallelism() : 1;
          EXPECT_TRUE(run->rules.SameAs(scalar->rules))
              << PlanKindName(kind) << " " << label << " x" << threads
              << " query " << qi << ": " << run->rules.rules.size()
              << " rules vs " << scalar->rules.rules.size();
          EXPECT_EQ(Effort(run->stats), Effort(scalar->stats))
              << PlanKindName(kind) << " " << label << " x" << threads
              << " query " << qi;
        }
      }
    }
  }
}

LocalizedQuery MakeQuery(double minsupp, double minconf,
                         std::vector<RangeSelection> ranges,
                         std::vector<AttrId> item_attrs = {}) {
  LocalizedQuery query;
  query.minsupp = minsupp;
  query.minconf = minconf;
  query.ranges = std::move(ranges);
  query.item_attrs = std::move(item_attrs);
  return query;
}

TEST(BackendEquivalenceTest, RandomDatasets) {
  for (uint64_t seed : {3u, 17u}) {
    Dataset dataset = RandomDataset(seed, 400, 5, 4);
    auto index = MipIndex::Build(dataset, {.primary_support = 0.08});
    ASSERT_TRUE(index.ok());
    std::vector<LocalizedQuery> queries = {
        MakeQuery(0.1, 0.5, {{0, 0, 1}}),
        MakeQuery(0.05, 0.3, {{0, 0, 2}, {2, 1, 3}}),
        MakeQuery(0.2, 0.8, {{1, 0, 0}}),
        MakeQuery(0.1, 0.5, {}),                       // unconstrained box
        MakeQuery(0.1, 0.5, {{3, 0, 1}}, {0, 1, 2, 3}),
    };
    ExpectBackendsEquivalent(*index, queries);
  }
}

TEST(BackendEquivalenceTest, SalaryDataset) {
  Dataset dataset = MakeSalaryDataset();
  auto index = MipIndex::Build(dataset, {.primary_support = 0.2});
  ASSERT_TRUE(index.ok());
  // The paper's running example: the female Seattle subset (plus the
  // trivial unconstrained query).
  std::vector<LocalizedQuery> queries = {
      MakeQuery(0.3, 0.6, {{2, 1, 1}, {3, 1, 1}}),
      MakeQuery(0.3, 0.6, {}),
  };
  ExpectBackendsEquivalent(*index, queries);
}

TEST(BackendEquivalenceTest, SyntheticPlantedPattern) {
  SyntheticConfig config;
  config.seed = 5;
  config.num_records = 1500;
  config.num_attributes = 8;
  config.region_domain = 10;
  config.local_patterns = {{0, 2, {2, 3, 4}, 1, 0.9}};
  auto dataset = GenerateSynthetic(config);
  ASSERT_TRUE(dataset.ok());
  auto index = MipIndex::Build(*dataset, {.primary_support = 0.05});
  ASSERT_TRUE(index.ok());
  std::vector<LocalizedQuery> queries = {
      MakeQuery(0.15, 0.6, {{0, 0, 2}}),   // inside the planted region
      MakeQuery(0.15, 0.6, {{0, 3, 9}}),   // outside it
      MakeQuery(0.05, 0.3, {{0, 0, 4}, {1, 0, 1}}),
  };
  ExpectBackendsEquivalent(*index, queries);
}

// Constraint pushdown must stay byte-identical across backends and pool
// sizes: constrained CHARM seeding, the vertical-view EXCLUDE projection,
// VERIFY short-circuits, and measure gates all run inside the per-backend
// operators, so each constraint shape sweeps the full matrix.
TEST(BackendEquivalenceTest, ConstrainedQueries) {
  for (uint64_t seed : {7u, 23u}) {
    Dataset dataset = RandomDataset(seed, 300, 5, 4);
    const Schema& schema = dataset.schema();
    auto index = MipIndex::Build(dataset, {.primary_support = 0.08});
    ASSERT_TRUE(index.ok());

    LocalizedQuery contain = MakeQuery(0.1, 0.4, {{0, 0, 1}});
    contain.constraints.must_contain = {schema.ItemOf(1, 0)};

    LocalizedQuery exclude = MakeQuery(0.05, 0.3, {{0, 0, 2}});
    exclude.constraints.must_exclude = {schema.ItemOf(2, 1),
                                        schema.ItemOf(4, 0)};

    LocalizedQuery pinned = MakeQuery(0.1, 0.4, {{1, 0, 1}});
    pinned.constraints.antecedent_only = {0, 3};

    LocalizedQuery measures = MakeQuery(0.05, 0.3, {{2, 0, 2}});
    measures.constraints.min_lift = 1.0;
    measures.constraints.min_kulczynski = 0.5;

    LocalizedQuery combined = MakeQuery(0.05, 0.3, {{0, 0, 2}});
    combined.constraints.must_contain = {schema.ItemOf(3, 0)};
    combined.constraints.must_exclude = {schema.ItemOf(4, 2)};
    combined.constraints.antecedent_only = {1};
    combined.constraints.min_cosine = 0.4;

    LocalizedQuery contradictory = MakeQuery(0.1, 0.4, {{0, 0, 1}});
    contradictory.constraints.must_contain = {schema.ItemOf(1, 0)};
    contradictory.constraints.must_exclude = {schema.ItemOf(1, 0)};

    ExpectBackendsEquivalent(
        *index,
        {contain, exclude, pinned, measures, combined, contradictory});
  }
}

// The engine-level knob: two engines differing only in `backend` agree on
// every optimizer-chosen answer, and the bitmap engine agrees with the
// scalar reference per forced plan.
TEST(BackendEquivalenceTest, EngineBackendKnob) {
  Dataset dataset = RandomDataset(29, 300, 5, 4);
  EngineOptions scalar_options;
  scalar_options.index.primary_support = 0.08;
  scalar_options.num_threads = 1;
  scalar_options.rulegen = WideRuleGen();
  EngineOptions bitmap_options = scalar_options;
  bitmap_options.backend = ExecBackend::kBitmap;

  auto scalar = Engine::Build(dataset, scalar_options);
  auto bitmap = Engine::Build(dataset, bitmap_options);
  ASSERT_TRUE(scalar.ok());
  ASSERT_TRUE(bitmap.ok());

  std::vector<LocalizedQuery> queries = {
      MakeQuery(0.1, 0.5, {{0, 0, 1}}),
      MakeQuery(0.05, 0.4, {{1, 0, 2}, {4, 0, 1}}),
  };
  for (const LocalizedQuery& query : queries) {
    auto a = (*scalar)->Execute(query);
    auto b = (*bitmap)->Execute(query);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(b->rules.SameAs(a->rules));
    for (PlanKind kind : kAllPlans) {
      auto fa = (*scalar)->ExecuteWithPlan(query, kind);
      auto fb = (*bitmap)->ExecuteWithPlan(query, kind);
      ASSERT_TRUE(fa.ok());
      ASSERT_TRUE(fb.ok());
      EXPECT_TRUE(fb->rules.SameAs(fa->rules)) << PlanKindName(kind);
      EXPECT_EQ(Effort(fb->stats), Effort(fa->stats)) << PlanKindName(kind);
    }
  }
}

}  // namespace
}  // namespace colarm
