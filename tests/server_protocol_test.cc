// Socket-free tests of the server wire protocol: the line framer's torn
// and oversized frames, command parsing negatives, and response builders.
#include "server/protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace colarm {
namespace {

using Event = LineFramer::Event;

std::vector<std::string> DrainLines(LineFramer* framer) {
  std::vector<std::string> lines;
  std::string line;
  for (;;) {
    Event e = framer->Next(&line);
    if (e == Event::kNeedMore) return lines;
    if (e == Event::kLine) lines.push_back(line);
    // kOversized: keep draining; the framer resynchronizes itself.
  }
}

TEST(LineFramerTest, SplitsCompleteLines) {
  LineFramer framer(64);
  const std::string bytes = "HELLO a\nSTATS\nQUIT\n";
  framer.Append(bytes.data(), bytes.size());
  EXPECT_EQ(DrainLines(&framer),
            (std::vector<std::string>{"HELLO a", "STATS", "QUIT"}));
  EXPECT_EQ(framer.buffered_bytes(), 0u);
}

TEST(LineFramerTest, TornFrameReassembledAcrossAppends) {
  LineFramer framer(64);
  // One line arriving a byte at a time — the worst-case torn frame.
  const std::string bytes = "HELLO tenant\n";
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    framer.Append(&bytes[i], 1);
    std::string line;
    EXPECT_EQ(framer.Next(&line), Event::kNeedMore);
  }
  framer.Append(&bytes[bytes.size() - 1], 1);
  std::string line;
  ASSERT_EQ(framer.Next(&line), Event::kLine);
  EXPECT_EQ(line, "HELLO tenant");
}

TEST(LineFramerTest, CrlfStripped) {
  LineFramer framer(64);
  const std::string bytes = "STATS\r\n";
  framer.Append(bytes.data(), bytes.size());
  std::string line;
  ASSERT_EQ(framer.Next(&line), Event::kLine);
  EXPECT_EQ(line, "STATS");
}

TEST(LineFramerTest, OversizedLineReportedOnceThenDiscarded) {
  LineFramer framer(8);
  const std::string big(100, 'x');
  framer.Append(big.data(), big.size());
  std::string line;
  EXPECT_EQ(framer.Next(&line), Event::kOversized);
  EXPECT_EQ(framer.Next(&line), Event::kNeedMore);
  // More junk on the same monster line: still discarding, no second report.
  framer.Append(big.data(), big.size());
  EXPECT_EQ(framer.Next(&line), Event::kNeedMore);
  // The newline ends the discard; the next line frames normally.
  const std::string tail = "\nQUIT\n";
  framer.Append(tail.data(), tail.size());
  ASSERT_EQ(framer.Next(&line), Event::kLine);
  EXPECT_EQ(line, "QUIT");
  EXPECT_EQ(framer.Next(&line), Event::kNeedMore);
}

TEST(LineFramerTest, OversizedLineArrivingWholeStillResynchronizes) {
  LineFramer framer(8);
  // Cap blown and newline present in the same Append.
  const std::string bytes = std::string(50, 'y') + "\nSTATS\n";
  framer.Append(bytes.data(), bytes.size());
  std::string line;
  EXPECT_EQ(framer.Next(&line), Event::kOversized);
  ASSERT_EQ(framer.Next(&line), Event::kLine);
  EXPECT_EQ(line, "STATS");
}

TEST(LineFramerTest, BufferNeverExceedsCapWhileDiscarding) {
  LineFramer framer(8);
  LineFramer* f = &framer;
  std::string chunk(1024, 'z');
  for (int i = 0; i < 64; ++i) {
    f->Append(chunk.data(), chunk.size());
    std::string line;
    while (f->Next(&line) != Event::kNeedMore) {
    }
    EXPECT_LE(f->buffered_bytes(), 8u + 1u);
  }
}

TEST(ParseCommandLineTest, VerbsAreCaseInsensitive) {
  auto cmd = ParseCommandLine("hello Alice");
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd->verb, Verb::kHello);
  EXPECT_EQ(cmd->arg, "Alice");
  EXPECT_EQ(ParseCommandLine("qUiT")->verb, Verb::kQuit);
  EXPECT_EQ(ParseCommandLine("Stats")->verb, Verb::kStats);
}

TEST(ParseCommandLineTest, MineKeepsQueryTextVerbatim) {
  auto cmd = ParseCommandLine("MINE region = Seattle minsupp 0.1");
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd->verb, Verb::kMine);
  EXPECT_EQ(cmd->arg, "region = Seattle minsupp 0.1");
}

TEST(ParseCommandLineTest, UnknownVerbFails) {
  auto cmd = ParseCommandLine("FROBNICATE now");
  ASSERT_FALSE(cmd.ok());
  EXPECT_EQ(cmd.status().code(), StatusCode::kParseError);
}

TEST(ParseCommandLineTest, MissingArgumentsFail) {
  EXPECT_FALSE(ParseCommandLine("HELLO").ok());
  EXPECT_FALSE(ParseCommandLine("MINE").ok());
  EXPECT_FALSE(ParseCommandLine("EXPLAIN").ok());
  EXPECT_FALSE(ParseCommandLine("").ok());
}

TEST(ParseCommandLineTest, ExtraArgumentsOnNullaryVerbsFail) {
  EXPECT_FALSE(ParseCommandLine("STATS please").ok());
  EXPECT_FALSE(ParseCommandLine("QUIT now").ok());
}

TEST(ParseCommandLineTest, TenantNameValidation) {
  EXPECT_TRUE(ParseCommandLine("HELLO tenant_1.a-b").ok());
  EXPECT_FALSE(ParseCommandLine("HELLO two words").ok());
  EXPECT_FALSE(ParseCommandLine("HELLO bad/slash").ok());
  EXPECT_FALSE(ParseCommandLine("HELLO " + std::string(65, 'a')).ok());
  EXPECT_TRUE(ParseCommandLine("HELLO " + std::string(64, 'a')).ok());
}

TEST(ResponseTest, OkResponseFramesPayloadLength) {
  EXPECT_EQ(OkResponse("hello x\n"), "OK 8\nhello x\n");
  EXPECT_EQ(OkResponse(""), "OK 0\n");
}

TEST(ResponseTest, ErrResponseFlattensNewlines) {
  const std::string err = ErrResponse("EXEC", "two\nlines");
  EXPECT_EQ(err, "ERR EXEC two lines\n");
}

TEST(ResponseTest, StatusErrCodeMapping) {
  EXPECT_STREQ(StatusErrCode(Status::ParseError("x")), "PARSE");
  EXPECT_STREQ(StatusErrCode(Status::DeadlineExceeded("x")), "DEADLINE");
  EXPECT_STREQ(StatusErrCode(Status::InvalidArgument("x")), "EXEC");
  EXPECT_STREQ(StatusErrCode(Status::IoError("x")), "EXEC");
}

}  // namespace
}  // namespace colarm
