#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bitmap/bitmap.h"
#include "bitmap/bitmap_counter.h"
#include "bitmap/hybrid_tidset.h"
#include "bitmap/vertical_index.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "mining/local_counter.h"
#include "plans/focal_subset.h"
#include "test_util.h"

namespace colarm {
namespace {

using testing_util::RandomDataset;

// A random bitmap over a deliberately non-word-aligned universe, paired
// with its reference membership vector.
std::pair<Bitmap, std::vector<bool>> RandomBitmap(Rng* rng, uint32_t size,
                                                  double density) {
  Bitmap bits(size);
  std::vector<bool> ref(size, false);
  for (Tid t = 0; t < size; ++t) {
    if (rng->Bernoulli(density)) {
      bits.Set(t);
      ref[t] = true;
    }
  }
  return {std::move(bits), std::move(ref)};
}

TEST(BitmapTest, FromTidsRoundTrip) {
  Tidset tids = {0, 1, 5, 63, 64, 65, 127, 129};
  Bitmap bits = Bitmap::FromTids(tids, 130);
  EXPECT_EQ(bits.size(), 130u);
  EXPECT_EQ(bits.Count(), tids.size());
  for (Tid t : tids) EXPECT_TRUE(bits.Test(t));
  EXPECT_FALSE(bits.Test(2));
  EXPECT_FALSE(bits.Test(128));
  EXPECT_EQ(bits.ToTids(), tids);
}

TEST(BitmapTest, FillKeepsSlackBitsZero) {
  for (uint32_t size : {1u, 63u, 64u, 65u, 130u, 257u}) {
    Bitmap bits(size);
    bits.Fill();
    EXPECT_EQ(bits.Count(), size) << size;
    EXPECT_EQ(bits.ToTids().size(), size) << size;
    // The slack invariant is what makes Count/SumOfBits trustworthy.
    Bitmap other(size);
    other.Fill();
    EXPECT_EQ(Bitmap::AndCount(bits, other), size) << size;
  }
}

TEST(BitmapTest, KernelsMatchReference) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const uint32_t size = 70 + static_cast<uint32_t>(rng.Uniform(200));
    auto [a, ref_a] = RandomBitmap(&rng, size, 0.4);
    auto [b, ref_b] = RandomBitmap(&rng, size, 0.3);
    auto [c, ref_c] = RandomBitmap(&rng, size, 0.5);

    uint64_t and_count = 0, and3_count = 0, sum = 0;
    for (Tid t = 0; t < size; ++t) {
      and_count += ref_a[t] && ref_b[t];
      and3_count += ref_a[t] && ref_b[t] && ref_c[t];
      if (ref_a[t]) sum += t;
    }
    EXPECT_EQ(Bitmap::AndCount(a, b), and_count);
    EXPECT_EQ(Bitmap::And3Count(a, b, c), and3_count);
    EXPECT_EQ(a.SumOfBits(), sum);
    EXPECT_EQ(a.CountRange(0, a.num_words()), a.Count());

    Bitmap out(size);
    Bitmap::AndInto(a, b, &out);
    EXPECT_EQ(out.Count(), and_count);

    Bitmap and_copy = a;
    and_copy.AndWith(b);
    EXPECT_EQ(and_copy, out);

    Bitmap or_copy = a;
    or_copy.OrWith(b);
    Bitmap not_copy = a;
    not_copy.AndNotWith(b);
    for (Tid t = 0; t < size; ++t) {
      EXPECT_EQ(or_copy.Test(t), ref_a[t] || ref_b[t]);
      EXPECT_EQ(not_copy.Test(t), ref_a[t] && !ref_b[t]);
    }
  }
}

TEST(BitmapTest, RangeKernelsShardConsistently) {
  Rng rng(13);
  const uint32_t size = 513;
  auto [a, ref_a] = RandomBitmap(&rng, size, 0.4);
  auto [b, ref_b] = RandomBitmap(&rng, size, 0.4);

  // Sharding any kernel by word ranges recombines to the whole-array
  // result — the property DQ materialization's parallel split relies on.
  uint64_t total = 0;
  const uint32_t words = a.num_words();
  for (uint32_t begin = 0; begin < words; begin += 3) {
    total += Bitmap::AndCountRange(a, b, begin, std::min(begin + 3, words));
  }
  EXPECT_EQ(total, Bitmap::AndCount(a, b));

  Bitmap sharded = a;
  for (uint32_t begin = 0; begin < words; begin += 2) {
    sharded.AndWithRange(b, begin, std::min(begin + 2, words));
  }
  Bitmap whole = a;
  whole.AndWith(b);
  EXPECT_EQ(sharded, whole);
}

TEST(VerticalIndexTest, MatchesDatasetOneHot) {
  Dataset dataset = RandomDataset(21, 150, 4, 3);
  const Schema& schema = dataset.schema();
  VerticalIndex vertical = VerticalIndex::Build(dataset, nullptr);
  ASSERT_FALSE(vertical.empty());
  EXPECT_EQ(vertical.num_records(), dataset.num_records());
  EXPECT_EQ(vertical.num_items(), schema.num_items());
  for (AttrId a = 0; a < schema.num_attributes(); ++a) {
    for (Tid t = 0; t < dataset.num_records(); ++t) {
      ItemId item = schema.ItemOf(a, dataset.Value(t, a));
      EXPECT_TRUE(vertical.item(item).Test(t));
    }
  }
  // Each attribute's value bitmaps partition the records.
  for (AttrId a = 0; a < schema.num_attributes(); ++a) {
    uint64_t total = 0;
    for (ValueId v = 0; v < schema.attribute(a).domain_size(); ++v) {
      total += vertical.item(schema.ItemOf(a, v)).Count();
    }
    EXPECT_EQ(total, dataset.num_records());
  }
}

TEST(VerticalIndexTest, ParallelBuildIsIdentical) {
  Dataset dataset = RandomDataset(22, 300, 5, 4);
  VerticalIndex sequential = VerticalIndex::Build(dataset, nullptr);
  ThreadPool pool(4);
  VerticalIndex parallel = VerticalIndex::Build(dataset, &pool);
  ASSERT_EQ(parallel.num_items(), sequential.num_items());
  for (ItemId i = 0; i < sequential.num_items(); ++i) {
    EXPECT_EQ(parallel.item(i), sequential.item(i)) << "item " << i;
  }
}

TEST(VerticalIndexTest, MaterializeDqMatchesScalarScan) {
  Dataset dataset = RandomDataset(23, 400, 5, 4);
  const Schema& schema = dataset.schema();
  ThreadPool pool(4);
  VerticalIndex vertical = VerticalIndex::Build(dataset, nullptr);
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    Rect box = Rect::FullDomain(schema);
    for (AttrId a = 0; a < schema.num_attributes(); ++a) {
      if (!rng.Bernoulli(0.5)) continue;
      ValueId lo = static_cast<ValueId>(rng.Uniform(4));
      ValueId hi = static_cast<ValueId>(
          std::min<uint64_t>(3, lo + rng.Uniform(3)));
      box.SetInterval(a, lo, hi);
    }
    FocalSubset scalar = FocalSubset::Materialize(dataset, box);
    EXPECT_EQ(vertical.MaterializeDq(schema, box, nullptr).ToTids(),
              scalar.tids);
    EXPECT_EQ(vertical.MaterializeDq(schema, box, &pool).ToTids(),
              scalar.tids);
  }
  // Unconstrained box: every record.
  Bitmap all = vertical.MaterializeDq(schema, Rect::FullDomain(schema),
                                      nullptr);
  EXPECT_EQ(all.Count(), dataset.num_records());
}

TEST(BitmapCounterTest, LocalCountMatchesRowScan) {
  Dataset dataset = RandomDataset(31, 250, 4, 3);
  const Schema& schema = dataset.schema();
  VerticalIndex vertical = VerticalIndex::Build(dataset, nullptr);
  Rect box = Rect::FullDomain(schema);
  box.SetInterval(0, 0, 1);
  FocalSubset subset = FocalSubset::Materialize(dataset, box);
  Bitmap dq = Bitmap::FromTids(subset.tids, dataset.num_records());
  Bitmap scratch(dataset.num_records());

  Rng rng(41);
  for (int trial = 0; trial < 30; ++trial) {
    Itemset items;
    for (AttrId a = 0; a < schema.num_attributes(); ++a) {
      if (rng.Bernoulli(0.5)) {
        items.push_back(schema.ItemOf(a, static_cast<ValueId>(rng.Uniform(3))));
      }
    }
    std::sort(items.begin(), items.end());
    uint32_t expected = 0;
    for (Tid t : subset.tids) expected += dataset.ContainsAll(t, items);
    EXPECT_EQ(BitmapLocalCount(vertical, dq, items, &scratch), expected);
  }
}

// BitmapSubsetCounter must agree with LocalSubsetCounter on every subset of
// every itemset, across both of its internal strategies (lattice DFS vs
// row-probe + zeta; the cost switch flips with |DQ| and itemset length) and
// the long-itemset AND-chain fallback.
TEST(BitmapCounterTest, SubsetCounterMatchesScalarCounter) {
  Dataset dataset = RandomDataset(51, 500, 6, 4);
  const Schema& schema = dataset.schema();
  VerticalIndex vertical = VerticalIndex::Build(dataset, nullptr);

  Rng rng(61);
  for (uint32_t subset_extent : {0u, 1u, 3u}) {
    Rect box = Rect::FullDomain(schema);
    if (subset_extent > 0) box.SetInterval(0, 0, subset_extent - 1);
    FocalSubset subset = FocalSubset::Materialize(dataset, box);
    Bitmap dq = Bitmap::FromTids(subset.tids, dataset.num_records());

    for (size_t len : {0ul, 1ul, 2ul, 4ul, 8ul, 12ul}) {
      Itemset items;
      while (items.size() < len) {
        ItemId item = static_cast<ItemId>(rng.Uniform(schema.num_items()));
        if (std::find(items.begin(), items.end(), item) == items.end()) {
          items.push_back(item);
        }
      }
      std::sort(items.begin(), items.end());

      LocalSubsetCounter scalar(dataset, items, subset.tids);
      BitmapSubsetCounter bitmap(vertical, dq, items, subset.tids);
      EXPECT_EQ(bitmap.CountFull(), scalar.CountFull());
      EXPECT_EQ(bitmap.base_size(), scalar.base_size());
      EXPECT_EQ(bitmap.record_checks(), scalar.record_checks());

      // Every subset via bitmask enumeration (capped for the longer sets).
      const uint32_t full = len == 0 ? 0 : (1u << len) - 1;
      const uint32_t step = len > 8 ? 37 : 1;
      for (uint32_t mask = 0; mask <= full; mask += step) {
        Itemset sub;
        for (size_t i = 0; i < len; ++i) {
          if (mask & (1u << i)) sub.push_back(items[i]);
        }
        EXPECT_EQ(bitmap.CountOf(sub), scalar.CountOf(sub))
            << "len " << len << " mask " << mask;
      }
      EXPECT_EQ(bitmap.record_checks(), scalar.record_checks());
    }
  }
}

TEST(BitmapCounterTest, LongItemsetFallbackMatches) {
  Dataset dataset = RandomDataset(71, 120, 6, 4);
  const Schema& schema = dataset.schema();
  VerticalIndex vertical = VerticalIndex::Build(dataset, nullptr);
  FocalSubset subset =
      FocalSubset::Materialize(dataset, Rect::FullDomain(schema));
  Bitmap dq = Bitmap::FromTids(subset.tids, dataset.num_records());

  // 22 items exceeds kMaxMaskItems, forcing the per-query AND-chain.
  Itemset items;
  for (ItemId i = 0; i < 22; ++i) items.push_back(i);
  ASSERT_GT(items.size(), BitmapSubsetCounter::kMaxMaskItems);

  LocalSubsetCounter scalar(dataset, items, subset.tids);
  BitmapSubsetCounter bitmap(vertical, dq, items, subset.tids);
  EXPECT_EQ(bitmap.CountFull(), scalar.CountFull());
  EXPECT_EQ(bitmap.record_checks(), scalar.record_checks());
  Rng rng(81);
  for (int trial = 0; trial < 10; ++trial) {
    Itemset sub;
    for (ItemId item : items) {
      if (rng.Bernoulli(0.3)) sub.push_back(item);
    }
    EXPECT_EQ(bitmap.CountOf(sub), scalar.CountOf(sub));
    EXPECT_EQ(bitmap.record_checks(), scalar.record_checks());
  }
}

TEST(HybridTidsetTest, PicksRepresentationByDensity) {
  // 4 tids over 256 records: 4 * 64 = 256 >= 256, the dense boundary.
  Tidset boundary = {0, 64, 128, 192};
  EXPECT_TRUE(HybridTidset::FromTids(boundary, 256).dense());
  Tidset sparse = {0, 64, 128};
  EXPECT_FALSE(HybridTidset::FromTids(sparse, 256).dense());
}

TEST(HybridTidsetTest, IntersectMatchesMergeAcrossRepresentations) {
  Rng rng(91);
  const uint32_t universe = 300;
  // Densities straddling the 1/64 threshold give all four representation
  // pairings across trials.
  const double densities[] = {0.005, 0.02, 0.3, 0.9};
  for (double da : densities) {
    for (double db : densities) {
      Tidset ta, tb;
      for (Tid t = 0; t < universe; ++t) {
        if (rng.Bernoulli(da)) ta.push_back(t);
        if (rng.Bernoulli(db)) tb.push_back(t);
      }
      HybridTidset a = HybridTidset::FromTids(ta, universe);
      HybridTidset b = HybridTidset::FromTids(tb, universe);
      Tidset expected = TidsetIntersect(ta, tb);
      HybridTidset got = HybridTidset::Intersect(a, b);
      EXPECT_EQ(got.size(), expected.size());
      EXPECT_EQ(got.ToTids(), expected);
      EXPECT_EQ(got.Sum(), TidsetSum(expected));
      EXPECT_EQ(a.ToTids(), ta);
      EXPECT_EQ(a.Sum(), TidsetSum(ta));
    }
  }
}

TEST(HybridTidsetTest, ClearDropsStorage) {
  Tidset tids;
  for (Tid t = 0; t < 200; ++t) tids.push_back(t);
  HybridTidset dense = HybridTidset::FromTids(tids, 200);
  ASSERT_TRUE(dense.dense());
  dense.clear();
  EXPECT_EQ(dense.size(), 0u);
  EXPECT_TRUE(dense.ToTids().empty());
}

}  // namespace
}  // namespace colarm
