#include <gtest/gtest.h>

#include <memory>

#include "core/explain.h"
#include "data/salary_dataset.h"
#include "test_util.h"

namespace colarm {
namespace {

using testing_util::RandomDataset;

std::unique_ptr<Engine> BuildEngine(const Dataset& data) {
  EngineOptions options;
  options.index.primary_support = 0.25;
  options.calibrate = false;
  auto engine = Engine::Build(data, options);
  EXPECT_TRUE(engine.ok());
  return std::move(engine.value());
}

TEST(ExplainTest, DecisionTableListsAllPlansAndMarksChoice) {
  auto data = std::make_unique<Dataset>(RandomDataset(1, 150, 4, 3));
  auto engine = BuildEngine(*data);
  LocalizedQuery query;
  query.minsupp = 0.5;
  query.minconf = 0.8;
  auto decision = engine->Explain(query);
  ASSERT_TRUE(decision.ok());
  std::string table = FormatDecision(*decision);
  for (PlanKind kind : kAllPlans) {
    EXPECT_NE(table.find(PlanKindName(kind)), std::string::npos);
  }
  EXPECT_NE(table.find("<== chosen"), std::string::npos);
}

TEST(ExplainTest, PlanSummaryTableMatchesTable4) {
  std::string table = FormatPlanSummaryTable();
  EXPECT_NE(table.find("S-E-V"), std::string::npos);
  EXPECT_NE(table.find("SS-E-U-V"), std::string::npos);
  EXPECT_NE(table.find("Supported R-tree filter"), std::string::npos);
  EXPECT_NE(table.find("COST(SS) + COST(E) + COST(U) + COST(V)"),
            std::string::npos);
}

TEST(ExplainTest, FormatRulesSortsBySupport) {
  Dataset data = MakeSalaryDataset();
  RuleSet rules;
  rules.rules.push_back(Rule{{data.schema().ItemOf(4, 0)},
                             {data.schema().ItemOf(5, 2)},
                             2,
                             4,
                             10});
  rules.rules.push_back(Rule{{data.schema().ItemOf(4, 1)},
                             {data.schema().ItemOf(5, 2)},
                             8,
                             9,
                             10});
  std::string text = FormatRules(data.schema(), rules);
  size_t high = text.find("Age=30-40");
  size_t low = text.find("Age=20-30");
  ASSERT_NE(high, std::string::npos);
  ASSERT_NE(low, std::string::npos);
  EXPECT_LT(high, low);  // higher support printed first
}

TEST(ExplainTest, FormatRulesHonorsLimit) {
  Dataset data = MakeSalaryDataset();
  RuleSet rules;
  for (int i = 0; i < 5; ++i) {
    rules.rules.push_back(Rule{{data.schema().ItemOf(4, 0)},
                               {data.schema().ItemOf(5, 2)},
                               static_cast<uint32_t>(i + 1),
                               10,
                               10});
  }
  std::string text = FormatRules(data.schema(), rules, 2);
  EXPECT_NE(text.find("and 3 more rules"), std::string::npos);
}

// Constrained queries surface their provenance on both console surfaces:
// EXPLAIN's decision table and the query-result summary. Unconstrained
// output stays byte-identical (no constraints line at all).
TEST(ExplainTest, ConstraintProvenanceOnBothSurfaces) {
  Dataset data = MakeSalaryDataset();
  EngineOptions options;
  options.index.primary_support = 0.27;
  options.calibrate = false;
  auto engine = Engine::Build(data, options);
  ASSERT_TRUE(engine.ok());

  LocalizedQuery query;
  query.ranges = {{2, 2, 2}};  // Seattle
  query.minsupp = 0.5;
  query.minconf = 0.6;
  query.constraints.must_contain = {data.schema().ItemOf(3, 1)};
  query.constraints.antecedent_only = {4};
  query.constraints.min_kulczynski = 0.5;

  auto decision = engine.value()->Explain(query);
  ASSERT_TRUE(decision.ok());
  std::string table = FormatDecision(*decision);
  EXPECT_NE(table.find("constraints pushed into plan:"), std::string::npos)
      << table;
  EXPECT_NE(table.find("CONTAIN {Gender=F}"), std::string::npos) << table;
  EXPECT_NE(table.find("ANTECEDENT ATTRIBUTES {Age}"), std::string::npos)
      << table;
  EXPECT_NE(table.find("minkulczynski"), std::string::npos) << table;

  auto result = engine.value()->Execute(query);
  ASSERT_TRUE(result.ok());
  std::string text = FormatQueryResult(data.schema(), *result);
  EXPECT_NE(text.find("constraints: CONTAIN {Gender=F}"), std::string::npos)
      << text;

  LocalizedQuery plain = query;
  plain.constraints = RuleConstraints{};
  auto plain_decision = engine.value()->Explain(plain);
  ASSERT_TRUE(plain_decision.ok());
  EXPECT_EQ(FormatDecision(*plain_decision).find("constraints"),
            std::string::npos);
  auto plain_result = engine.value()->Execute(plain);
  ASSERT_TRUE(plain_result.ok());
  EXPECT_EQ(FormatQueryResult(data.schema(), *plain_result)
                .find("constraints"),
            std::string::npos);
}

TEST(ExplainTest, FormatQueryResultEndToEnd) {
  auto data = std::make_unique<Dataset>(MakeSalaryDataset());
  EngineOptions options;
  options.index.primary_support = 0.27;
  options.calibrate = false;
  auto engine = Engine::Build(*data, options);
  ASSERT_TRUE(engine.ok());
  LocalizedQuery query;
  query.ranges = {{2, 2, 2}, {3, 1, 1}};
  query.item_attrs = {4, 5};
  query.minsupp = 0.75;
  query.minconf = 1.0;
  auto result = engine.value()->Execute(query);
  ASSERT_TRUE(result.ok());
  std::string text = FormatQueryResult(data->schema(), *result);
  EXPECT_NE(text.find("localized rule"), std::string::npos);
  EXPECT_NE(text.find("|DQ|=4"), std::string::npos);
}

}  // namespace
}  // namespace colarm
