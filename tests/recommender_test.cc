#include <gtest/gtest.h>

#include <memory>

#include "core/recommender.h"
#include "data/synthetic.h"
#include "plans/plans.h"
#include "test_util.h"

namespace colarm {
namespace {

// Dataset with one strong planted pattern in regions 0..4 of 40.
struct Planted {
  std::unique_ptr<Dataset> data;
  std::unique_ptr<MipIndex> index;

  static Planted Make() {
    SyntheticConfig config;
    config.seed = 555;
    config.num_records = 3000;
    config.num_attributes = 8;
    config.values_per_attribute = 4;
    config.region_domain = 40;
    config.dominant_prob = 0.9;
    config.group_coherence = 0.0;
    config.noise = 0.0;
    config.local_patterns = {{0, 4, {3, 4}, 2, 0.95}};
    Planted p;
    p.data = std::make_unique<Dataset>(GenerateSynthetic(config).value());
    auto built = MipIndex::Build(*p.data, {.primary_support = 0.05});
    EXPECT_TRUE(built.ok());
    p.index = std::make_unique<MipIndex>(std::move(built.value()));
    return p;
  }
};

TEST(RecommenderTest, TopSuggestionCoversPlantedRegion) {
  Planted p = Planted::Make();
  ParameterRecommender recommender(*p.index);
  auto suggestions = recommender.Suggest();
  ASSERT_FALSE(suggestions.empty());

  const RegionSuggestion& top = suggestions.front();
  ASSERT_EQ(top.query.ranges.size(), 1u);
  EXPECT_EQ(top.query.ranges[0].attr, 0u);  // the region attribute
  // The suggested window must overlap the planted regions 0..4.
  EXPECT_LE(top.query.ranges[0].lo, 4);
  EXPECT_GT(top.fresh_itemsets, 0u);
  EXPECT_GT(top.freshness, 0.0);
  EXPECT_FALSE(top.ToString(p.data->schema()).empty());
}

TEST(RecommenderTest, SuggestionsActuallyYieldFreshRules) {
  Planted p = Planted::Make();
  ParameterRecommender recommender(*p.index);
  auto suggestions = recommender.Suggest();
  ASSERT_FALSE(suggestions.empty());
  // Executing the top suggestion produces rules whose itemsets are
  // globally infrequent at the suggested threshold.
  const RegionSuggestion& top = suggestions.front();
  auto result = ExecutePlan(PlanKind::kSSEUV, *p.index, top.query);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->rules.rules.empty());
  const uint32_t m = p.data->num_records();
  bool any_fresh = false;
  for (const Rule& rule : result->rules.rules) {
    Itemset itemset = ItemsetUnion(rule.antecedent, rule.consequent);
    uint32_t global = p.index->GlobalCount(itemset);
    if (static_cast<double>(global) / m < top.query.minsupp) any_fresh = true;
  }
  EXPECT_TRUE(any_fresh);
}

TEST(RecommenderTest, ScoresAreSortedDescending) {
  Planted p = Planted::Make();
  ParameterRecommender recommender(*p.index);
  RecommenderOptions options;
  options.max_suggestions = 50;
  auto suggestions = recommender.Suggest(options);
  for (size_t i = 1; i < suggestions.size(); ++i) {
    EXPECT_GE(suggestions[i - 1].score, suggestions[i].score);
  }
}

TEST(RecommenderTest, RespectsMaxSuggestions) {
  Planted p = Planted::Make();
  ParameterRecommender recommender(*p.index);
  RecommenderOptions options;
  options.max_suggestions = 2;
  auto suggestions = recommender.Suggest(options);
  EXPECT_LE(suggestions.size(), 2u);
}

TEST(RecommenderTest, NoPatternsMeansWeakOrNoSuggestions) {
  // Pattern-free uniform-ish data: any suggestion must carry a much lower
  // score than the planted case.
  SyntheticConfig config;
  config.seed = 556;
  config.num_records = 2000;
  config.num_attributes = 8;
  config.values_per_attribute = 4;
  config.region_domain = 40;
  config.dominant_prob = 0.9;
  config.group_coherence = 0.0;
  config.noise = 0.0;
  config.local_patterns.clear();
  auto data = std::make_unique<Dataset>(GenerateSynthetic(config).value());
  auto index = MipIndex::Build(*data, {.primary_support = 0.05});
  ASSERT_TRUE(index.ok());
  ParameterRecommender flat(*index);
  auto flat_suggestions = flat.Suggest();

  Planted p = Planted::Make();
  auto planted_suggestions = ParameterRecommender(*p.index).Suggest();
  ASSERT_FALSE(planted_suggestions.empty());
  if (!flat_suggestions.empty()) {
    EXPECT_LT(flat_suggestions.front().score,
              planted_suggestions.front().score);
  }
}

TEST(RecommenderTest, EmptyGridGivesNothing) {
  Planted p = Planted::Make();
  RecommenderOptions options;
  options.minsupp_grid.clear();
  EXPECT_TRUE(ParameterRecommender(*p.index).Suggest(options).empty());
}

}  // namespace
}  // namespace colarm
