# Configures a UBSan build of the tree in BUILD_DIR, builds the kernel and
# equivalence suites, and runs them once per SIMD level with COLARM_SIMD
# forced — the per-ISA intrinsics TUs execute under
# -fsanitize=undefined at every dispatch level the host can reach (the env
# override clamps to the host maximum, so forcing "avx512" on an AVX2-only
# machine degrades to a redundant-but-valid rerun rather than a failure).
# Driven by the `ubsan_simd` ctest entry; any step failing fails the test.
# Expects SOURCE_DIR and BUILD_DIR.

foreach(var SOURCE_DIR BUILD_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "ubsan_simd.cmake requires -D${var}=...")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BUILD_DIR}
          -DCOLARM_SANITIZE=undefined -DCMAKE_BUILD_TYPE=RelWithDebInfo
  RESULT_VARIABLE configure_result)
if(NOT configure_result EQUAL 0)
  message(FATAL_ERROR "UBSan configure failed")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BUILD_DIR} --parallel
          --target bitmap_test kernels_test simd_equivalence_test
  RESULT_VARIABLE build_result)
if(NOT build_result EQUAL 0)
  message(FATAL_ERROR "UBSan build failed")
endif()

foreach(level scalar avx2 avx512)
  foreach(test bitmap_test kernels_test simd_equivalence_test)
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E env COLARM_SIMD=${level}
              ${BUILD_DIR}/tests/${test}
      RESULT_VARIABLE run_result)
    if(NOT run_result EQUAL 0)
      message(FATAL_ERROR
              "${test} failed under UBSan with COLARM_SIMD=${level}")
    endif()
  endforeach()
endforeach()
