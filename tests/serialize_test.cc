#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>

#include "core/engine.h"
#include "mip/serialize.h"
#include "test_util.h"

namespace colarm {
namespace {

using testing_util::RandomDataset;

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SerializeTest, RoundTripPreservesEveryMip) {
  auto data = std::make_unique<Dataset>(RandomDataset(1, 150, 5, 4));
  auto built = MipIndex::Build(*data, {.primary_support = 0.2});
  ASSERT_TRUE(built.ok());
  std::string path = TempPath("roundtrip.clrm");
  ASSERT_TRUE(SaveMipIndex(*built, path).ok());

  auto loaded = LoadMipIndex(*data, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_mips(), built->num_mips());
  EXPECT_EQ(loaded->primary_count(), built->primary_count());
  for (uint32_t id = 0; id < built->num_mips(); ++id) {
    EXPECT_EQ(loaded->mip(id).items, built->mip(id).items);
    EXPECT_EQ(loaded->mip(id).global_count, built->mip(id).global_count);
    EXPECT_EQ(loaded->mip(id).bbox, built->mip(id).bbox);
  }
  EXPECT_TRUE(loaded->rtree().CheckInvariants());
  EXPECT_EQ(loaded->ittree().size(), built->ittree().size());
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadedIndexAnswersQueriesIdentically) {
  auto data = std::make_unique<Dataset>(RandomDataset(2, 200, 5, 3));
  auto built = MipIndex::Build(*data, {.primary_support = 0.2});
  ASSERT_TRUE(built.ok());
  std::string path = TempPath("queries.clrm");
  ASSERT_TRUE(SaveMipIndex(*built, path).ok());
  auto loaded = LoadMipIndex(*data, path);
  ASSERT_TRUE(loaded.ok());

  LocalizedQuery query;
  query.ranges = {{0, 0, 1}};
  query.minsupp = 0.4;
  query.minconf = 0.6;
  for (PlanKind kind : kAllPlans) {
    auto a = ExecutePlan(kind, *built, query);
    auto b = ExecutePlan(kind, *loaded, query);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(a->rules.SameAs(b->rules)) << PlanKindName(kind);
  }
  std::remove(path.c_str());
}

// Format v3 persists the vertical bitmap index; a load must hand back
// bitmaps identical to a fresh build and serve the kBitmap backend
// without rebuilding anything.
TEST(SerializeTest, RoundTripPreservesVerticalIndex) {
  auto data = std::make_unique<Dataset>(RandomDataset(14, 200, 5, 3));
  auto built = MipIndex::Build(*data, {.primary_support = 0.2});
  ASSERT_TRUE(built.ok());
  std::string path = TempPath("vertical.clrm");
  ASSERT_TRUE(SaveMipIndex(*built, path).ok());
  auto loaded = LoadMipIndex(*data, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const VerticalIndex& a = built->vertical();
  const VerticalIndex& b = loaded->vertical();
  ASSERT_FALSE(b.empty());
  ASSERT_EQ(b.num_records(), a.num_records());
  ASSERT_EQ(b.num_items(), a.num_items());
  for (ItemId i = 0; i < a.num_items(); ++i) {
    EXPECT_EQ(b.item(i), a.item(i)) << "item " << i;
  }

  LocalizedQuery query;
  query.ranges = {{0, 0, 1}};
  query.minsupp = 0.3;
  query.minconf = 0.5;
  for (PlanKind kind : kAllPlans) {
    PlanExecOptions exec;
    exec.backend = ExecBackend::kBitmap;
    auto scalar = ExecutePlan(kind, *built, query);
    auto bitmap = ExecutePlan(kind, *loaded, query, exec);
    ASSERT_TRUE(scalar.ok());
    ASSERT_TRUE(bitmap.ok());
    EXPECT_TRUE(bitmap->rules.SameAs(scalar->rules)) << PlanKindName(kind);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsWrongDataset) {
  auto data = std::make_unique<Dataset>(RandomDataset(3, 100, 4, 3));
  auto other = std::make_unique<Dataset>(RandomDataset(4, 100, 4, 3));
  auto built = MipIndex::Build(*data, {.primary_support = 0.25});
  ASSERT_TRUE(built.ok());
  std::string path = TempPath("wrong_dataset.clrm");
  ASSERT_TRUE(SaveMipIndex(*built, path).ok());
  auto loaded = LoadMipIndex(*other, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsGarbageAndTruncation) {
  auto data = std::make_unique<Dataset>(RandomDataset(5, 80, 4, 3));
  std::string path = TempPath("garbage.clrm");
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not an index";
  }
  EXPECT_FALSE(LoadMipIndex(*data, path).ok());

  auto built = MipIndex::Build(*data, {.primary_support = 0.25});
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(SaveMipIndex(*built, path).ok());
  // Truncate the file to half its size.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() / 2));
  }
  EXPECT_FALSE(LoadMipIndex(*data, path).ok());
  std::remove(path.c_str());
}

// Reads the whole file into memory so corruption tests can mutate bytes.
std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void Spit(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
}

// A prefix of any length must fail with a clean Status: no crash, no
// allocation blow-up, no partially-valid index.
TEST(SerializeTest, TruncationAtEveryOffsetFailsCleanly) {
  auto data = std::make_unique<Dataset>(RandomDataset(10, 80, 4, 3));
  auto built = MipIndex::Build(*data, {.primary_support = 0.25});
  ASSERT_TRUE(built.ok());
  ASSERT_GT(built->num_mips(), 0u);
  std::string path = TempPath("truncate_sweep.clrm");
  ASSERT_TRUE(SaveMipIndex(*built, path).ok());
  const std::string full = Slurp(path);
  ASSERT_GT(full.size(), 53u);

  for (size_t keep = 0; keep < full.size(); ++keep) {
    Spit(path, full.substr(0, keep));
    auto loaded = LoadMipIndex(*data, path);
    EXPECT_FALSE(loaded.ok()) << "prefix of " << keep << " bytes loaded";
  }
  // The untouched file still loads, so the sweep exercised real content.
  Spit(path, full);
  EXPECT_TRUE(LoadMipIndex(*data, path).ok());
  std::remove(path.c_str());
}

// Flipping any single bit anywhere in the file must be rejected: header
// flips by the structural checks, payload flips by the checksum, checksum
// flips by the mismatch itself.
TEST(SerializeTest, SingleBitFlipsAreAlwaysRejected) {
  auto data = std::make_unique<Dataset>(RandomDataset(11, 80, 4, 3));
  auto built = MipIndex::Build(*data, {.primary_support = 0.25});
  ASSERT_TRUE(built.ok());
  ASSERT_GT(built->num_mips(), 0u);
  std::string path = TempPath("bitflip.clrm");
  ASSERT_TRUE(SaveMipIndex(*built, path).ok());
  const std::string full = Slurp(path);

  for (size_t byte = 0; byte < full.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = full;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      Spit(path, flipped);
      auto loaded = LoadMipIndex(*data, path);
      EXPECT_FALSE(loaded.ok())
          << "flip of bit " << bit << " in byte " << byte << " loaded";
    }
  }
  std::remove(path.c_str());
}

// A count field inflated to claim far more MIPs than the file holds must
// be bounded before the loader reserves memory for them.
TEST(SerializeTest, HugeMipCountIsRejectedBeforeAllocation) {
  auto data = std::make_unique<Dataset>(RandomDataset(12, 60, 4, 3));
  auto built = MipIndex::Build(*data, {.primary_support = 0.25});
  ASSERT_TRUE(built.ok());
  std::string path = TempPath("huge_count.clrm");
  ASSERT_TRUE(SaveMipIndex(*built, path).ok());
  std::string full = Slurp(path);
  // num_mips is the last header field, at offset 41 (header is 45 bytes).
  const uint32_t huge = 0xfffffff0u;
  std::memcpy(&full[41], &huge, sizeof(huge));
  Spit(path, full);
  auto loaded = LoadMipIndex(*data, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

// Appending garbage after the checksum must fail: the format owns the
// whole file, and trailing bytes indicate a mangled write.
TEST(SerializeTest, TrailingGarbageIsRejected) {
  auto data = std::make_unique<Dataset>(RandomDataset(13, 60, 4, 3));
  auto built = MipIndex::Build(*data, {.primary_support = 0.25});
  ASSERT_TRUE(built.ok());
  std::string path = TempPath("trailing.clrm");
  ASSERT_TRUE(SaveMipIndex(*built, path).ok());
  Spit(path, Slurp(path) + "x");
  EXPECT_FALSE(LoadMipIndex(*data, path).ok());
  std::remove(path.c_str());
}

// A v2 cache (no vertical section) is rejected with a clean version error
// rather than misparsed...
TEST(SerializeTest, OlderVersionIsRejected) {
  auto data = std::make_unique<Dataset>(RandomDataset(15, 80, 4, 3));
  auto built = MipIndex::Build(*data, {.primary_support = 0.25});
  ASSERT_TRUE(built.ok());
  std::string path = TempPath("old_version.clrm");
  ASSERT_TRUE(SaveMipIndex(*built, path).ok());
  std::string full = Slurp(path);
  const uint32_t old_version = 2;  // version field sits after the magic
  std::memcpy(&full[4], &old_version, sizeof(old_version));
  Spit(path, full);
  auto loaded = LoadMipIndex(*data, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("unsupported index version"),
            std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

// ...and the engine treats such a cache as absent: it rebuilds, refreshes
// the file in the current format, and answers normally.
TEST(SerializeTest, EngineFallsBackFromOlderCacheVersion) {
  auto data = std::make_unique<Dataset>(RandomDataset(16, 120, 4, 3));
  std::string path = TempPath("old_cache.clrm");

  EngineOptions options;
  options.index.primary_support = 0.25;
  options.calibrate = false;
  options.index_cache_path = path;
  auto first = Engine::Build(*data, options);
  ASSERT_TRUE(first.ok());

  // Downgrade the cache's version field in place.
  std::string full = Slurp(path);
  const uint32_t old_version = 2;
  std::memcpy(&full[4], &old_version, sizeof(old_version));
  Spit(path, full);

  auto second = Engine::Build(*data, options);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*second)->index().num_mips(), (*first)->index().num_mips());

  // The rebuild refreshed the cache: it loads again in the current format.
  auto reloaded = LoadMipIndex(*data, path);
  EXPECT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFails) {
  auto data = std::make_unique<Dataset>(RandomDataset(6, 50, 3, 2));
  auto loaded = LoadMipIndex(*data, TempPath("does_not_exist.clrm"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(SerializeTest, FingerprintSensitivity) {
  Dataset a = RandomDataset(7, 60, 4, 3);
  Dataset b = RandomDataset(7, 60, 4, 3);
  EXPECT_EQ(DatasetFingerprint(a), DatasetFingerprint(b));  // deterministic
  Dataset c = RandomDataset(8, 60, 4, 3);
  EXPECT_NE(DatasetFingerprint(a), DatasetFingerprint(c));
  Dataset d = RandomDataset(7, 61, 4, 3);
  EXPECT_NE(DatasetFingerprint(a), DatasetFingerprint(d));
}

TEST(SerializeTest, EngineIndexCache) {
  auto data = std::make_unique<Dataset>(RandomDataset(9, 150, 5, 3));
  std::string path = TempPath("engine_cache.clrm");
  std::remove(path.c_str());

  EngineOptions options;
  options.index.primary_support = 0.25;
  options.calibrate = false;
  options.index_cache_path = path;

  // First build mines and writes the cache.
  auto first = Engine::Build(*data, options);
  ASSERT_TRUE(first.ok());
  std::ifstream probe(path, std::ios::binary);
  EXPECT_TRUE(probe.good());
  probe.close();

  // Second build loads it; results must be identical.
  auto second = Engine::Build(*data, options);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*second)->index().num_mips(), (*first)->index().num_mips());

  LocalizedQuery query;
  query.ranges = {{0, 0, 0}};
  query.minsupp = 0.4;
  query.minconf = 0.6;
  auto ra = (*first)->Execute(query);
  auto rb = (*second)->Execute(query);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_TRUE(ra->rules.SameAs(rb->rules));

  // A different primary support must bypass the stale cache.
  options.index.primary_support = 0.5;
  auto third = Engine::Build(*data, options);
  ASSERT_TRUE(third.ok());
  EXPECT_LE((*third)->index().num_mips(), (*first)->index().num_mips());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace colarm
