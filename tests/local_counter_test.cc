#include <gtest/gtest.h>

#include "mining/local_counter.h"
#include "test_util.h"

namespace colarm {
namespace {

using testing_util::RandomDataset;

uint32_t NaiveCount(const Dataset& data, std::span<const Tid> tids,
                    std::span<const ItemId> items) {
  uint32_t count = 0;
  for (Tid t : tids) {
    if (data.ContainsAll(t, items)) ++count;
  }
  return count;
}

TEST(LocalSubsetCounterTest, FullCountMatchesNaive) {
  Dataset data = RandomDataset(3, 80, 5, 3);
  const Schema& schema = data.schema();
  std::vector<Tid> tids;
  for (Tid t = 0; t < data.num_records(); t += 2) tids.push_back(t);
  Itemset itemset = {schema.ItemOf(0, 0), schema.ItemOf(2, 0),
                     schema.ItemOf(4, 0)};
  LocalSubsetCounter counter(data, itemset, tids);
  EXPECT_EQ(counter.CountFull(), NaiveCount(data, tids, itemset));
  EXPECT_EQ(counter.base_size(), tids.size());
}

TEST(LocalSubsetCounterTest, EverySubsetMatchesNaive) {
  Dataset data = RandomDataset(4, 60, 6, 3);
  const Schema& schema = data.schema();
  std::vector<Tid> tids;
  for (Tid t = 10; t < 50; ++t) tids.push_back(t);
  Itemset itemset = {schema.ItemOf(1, 0), schema.ItemOf(3, 0),
                     schema.ItemOf(4, 1), schema.ItemOf(5, 0)};
  LocalSubsetCounter counter(data, itemset, tids);
  const uint32_t full = (1u << itemset.size()) - 1;
  for (uint32_t mask = 1; mask <= full; ++mask) {
    Itemset subset;
    for (size_t i = 0; i < itemset.size(); ++i) {
      if (mask & (1u << i)) subset.push_back(itemset[i]);
    }
    EXPECT_EQ(counter.CountOf(subset), NaiveCount(data, tids, subset))
        << "mask " << mask;
  }
}

TEST(LocalSubsetCounterTest, EmptySubsetCountsEverything) {
  Dataset data = RandomDataset(5, 30, 4, 2);
  std::vector<Tid> tids = {0, 5, 7, 9};
  Itemset itemset = {data.schema().ItemOf(0, 0)};
  LocalSubsetCounter counter(data, itemset, tids);
  EXPECT_EQ(counter.CountOf(Itemset{}), tids.size());
}

TEST(LocalSubsetCounterTest, UnknownItemCountsZero) {
  Dataset data = RandomDataset(6, 30, 4, 2);
  const Schema& schema = data.schema();
  std::vector<Tid> tids = {0, 1, 2};
  LocalSubsetCounter counter(data, {schema.ItemOf(0, 0)}, tids);
  EXPECT_EQ(counter.CountOf(Itemset{schema.ItemOf(1, 0)}), 0u);
}

TEST(LocalSubsetCounterTest, EmptyTidList) {
  Dataset data = RandomDataset(7, 20, 4, 2);
  LocalSubsetCounter counter(data, {data.schema().ItemOf(0, 0)}, {});
  EXPECT_EQ(counter.CountFull(), 0u);
  EXPECT_EQ(counter.base_size(), 0u);
}

TEST(LocalSubsetCounterTest, LongItemsetFallbackPath) {
  // 22 attributes so the itemset exceeds kMaxMaskItems and exercises the
  // direct-scan fallback.
  Dataset data = RandomDataset(8, 50, 22, 2);
  const Schema& schema = data.schema();
  Itemset itemset;
  for (AttrId a = 0; a < 22; ++a) itemset.push_back(schema.ItemOf(a, 0));
  std::vector<Tid> tids;
  for (Tid t = 0; t < data.num_records(); ++t) tids.push_back(t);
  LocalSubsetCounter counter(data, itemset, tids);
  EXPECT_EQ(counter.CountFull(), NaiveCount(data, tids, itemset));
  Itemset sub = {itemset[0], itemset[10], itemset[21]};
  EXPECT_EQ(counter.CountOf(sub), NaiveCount(data, tids, sub));
}

TEST(LocalSubsetCounterTest, RecordChecksAccumulate) {
  Dataset data = RandomDataset(9, 40, 4, 2);
  std::vector<Tid> tids = {0, 1, 2, 3, 4};
  LocalSubsetCounter counter(data, {data.schema().ItemOf(0, 0)}, tids);
  EXPECT_EQ(counter.record_checks(), tids.size());
}

}  // namespace
}  // namespace colarm
