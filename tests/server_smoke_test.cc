// End-to-end smoke of the real colarm_server binary (tier-1 ctest entry
// `server_smoke`): spawn it on an ephemeral port, drive a scripted
// multi-tenant session over TCP, and diff every response byte-for-byte
// against a direct Engine replay with the same per-tenant session caches.
// Finishes with a SIGTERM and asserts a clean graceful-drain exit.
//
// argv[1] is the path to the colarm_server binary (passed by CMake as
// $<TARGET_FILE:colarm_server>).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/query_parser.h"
#include "data/salary_dataset.h"
#include "server/server.h"

namespace colarm {
namespace {

const char* g_server_binary = nullptr;

/// The server process under test, spawned with its stdout on a pipe so the
/// test can learn the ephemeral port from the LISTENING line.
class ServerProcess {
 public:
  // Spawning lives outside the constructor so ASSERTs can bail out.
  void Spawn() {
    int out[2];
    ASSERT_EQ(::pipe(out), 0);
    pid_ = ::fork();
    ASSERT_GE(pid_, 0);
    if (pid_ == 0) {
      ::dup2(out[1], STDOUT_FILENO);
      ::dup2(out[1], STDERR_FILENO);  // drain messages go to stderr
      ::close(out[0]);
      ::close(out[1]);
      ::execl(g_server_binary, g_server_binary, "--no-calibrate", "--port",
              "0", static_cast<char*>(nullptr));
      _exit(127);  // exec failed
    }
    ::close(out[1]);
    stdout_fd_ = out[0];
    // Skip startup chatter (the built-in-dataset note) up to LISTENING.
    std::string line = ReadLineContaining("LISTENING ");
    ASSERT_EQ(line.rfind("LISTENING ", 0), 0u) << line;
    port_ = static_cast<uint16_t>(std::stoul(line.substr(10)));
  }

  ~ServerProcess() {
    if (stdout_fd_ >= 0) ::close(stdout_fd_);
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, nullptr, 0);
    }
  }

  uint16_t port() const { return port_; }

  std::string ReadStdoutLine() {
    std::string line;
    char c;
    while (::read(stdout_fd_, &c, 1) == 1) {
      if (c == '\n') return line;
      line.push_back(c);
    }
    return line;
  }

  /// Reads output lines until one contains `needle` (or EOF); returns it.
  std::string ReadLineContaining(const char* needle) {
    for (int i = 0; i < 50; ++i) {
      std::string line = ReadStdoutLine();
      if (line.find(needle) != std::string::npos || line.empty()) return line;
    }
    return "";
  }

  /// SIGTERM, then assert the drain messages and a zero exit status.
  void TerminateGracefully() {
    ASSERT_EQ(::kill(pid_, SIGTERM), 0);
    EXPECT_NE(ReadLineContaining("draining").find("draining"),
              std::string::npos);
    EXPECT_NE(ReadLineContaining("drained").find("drained"),
              std::string::npos);
    int status = 0;
    ASSERT_EQ(::waitpid(pid_, &status, 0), pid_);
    EXPECT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
    pid_ = -1;
  }

 private:
  pid_t pid_ = -1;
  int stdout_fd_ = -1;
  uint16_t port_ = 0;
};

/// Minimal blocking protocol client (one framed response per request).
class Client {
 public:
  explicit Client(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  std::string Request(const std::string& line) {
    std::string bytes = line + "\n";
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off, 0);
      EXPECT_GT(n, 0);
      off += static_cast<size_t>(n);
    }
    std::string header = ReadLine();
    if (header.rfind("OK ", 0) == 0) {
      return header + "\n" + ReadExactly(std::stoul(header.substr(3)));
    }
    return header + "\n";
  }

 private:
  std::string ReadLine() {
    std::string line;
    char c;
    while (Read(&c)) {
      if (c == '\n') return line;
      line.push_back(c);
    }
    return line;
  }
  std::string ReadExactly(size_t n) {
    std::string out;
    char c;
    while (out.size() < n && Read(&c)) out.push_back(c);
    EXPECT_EQ(out.size(), n);
    return out;
  }
  bool Read(char* c) {
    if (pos_ >= buf_.size()) {
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buf_.assign(chunk, static_cast<size_t>(n));
      pos_ = 0;
    }
    *c = buf_[pos_++];
    return true;
  }

  int fd_ = -1;
  std::string buf_;
  size_t pos_ = 0;
};

/// Direct-engine replica of one tenant session: same engine configuration
/// as the spawned binary (salary dataset, primary 0.27, no calibration),
/// same cache options, rendered with the same protocol functions.
class DirectReplay {
 public:
  explicit DirectReplay(const Engine& engine)
      : engine_(&engine),
        cache_(engine.index(), ServiceOptions{}.tenant_cache) {}

  std::string Mine(const std::string& text) {
    auto query = ParseQuery(schema(), text);
    if (!query.ok()) {
      return ErrResponse("PARSE", query.status().message());
    }
    auto result = engine_->Execute(*query, SessionContext{&cache_, nullptr});
    if (!result.ok()) {
      return ErrResponse(StatusErrCode(result.status()),
                         result.status().message());
    }
    return OkResponse(RenderMineResult(schema(), result.value()));
  }

  std::string Explain(const std::string& text) {
    auto query = ParseQuery(schema(), text);
    if (!query.ok()) {
      return ErrResponse("PARSE", query.status().message());
    }
    auto decision = engine_->Explain(*query, SessionContext{&cache_, nullptr});
    if (!decision.ok()) {
      return ErrResponse(StatusErrCode(decision.status()),
                         decision.status().message());
    }
    return OkResponse(RenderExplain(decision.value()));
  }

 private:
  const Schema& schema() const {
    return engine_->index().dataset().schema();
  }
  const Engine* engine_;
  QueryCache cache_;
};

TEST(ServerSmokeTest, MultiTenantSessionByteIdenticalThenDrains) {
  ASSERT_NE(g_server_binary, nullptr)
      << "usage: server_smoke_test <path-to-colarm_server>";
  ServerProcess server;
  server.Spawn();
  ASSERT_NE(server.port(), 0);

  // The replica of the binary's engine: salary dataset, primary support
  // 0.27, portable cost constants (the binary runs --no-calibrate).
  Dataset data = MakeSalaryDataset();
  EngineOptions engine_options;
  engine_options.index.primary_support = 0.27;
  engine_options.calibrate = false;
  auto engine = Engine::Build(data, engine_options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  const std::string drill[] = {
      "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Location = {Seattle} "
      "HAVING minsupport = 0.5 AND minconfidence = 0.6;",
      "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Location = {Seattle} "
      "AND Gender = {F} HAVING minsupport = 0.5 AND minconfidence = 0.6;",
      "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Gender = {M} "
      "HAVING minsupport = 0.4 AND minconfidence = 0.5;",
  };

  // Two tenants on separate connections, requests interleaved. Each tenant
  // owns a session cache, so its replay evolves independently of the
  // other's traffic.
  Client alice(server.port());
  Client bob(server.port());
  DirectReplay alice_replay(**engine);
  DirectReplay bob_replay(**engine);

  EXPECT_EQ(alice.Request("HELLO alice"), OkResponse("hello alice\n"));
  EXPECT_EQ(bob.Request("HELLO bob"), OkResponse("hello bob\n"));

  for (const std::string& text : drill) {
    EXPECT_EQ(alice.Request("MINE " + text), alice_replay.Mine(text)) << text;
    EXPECT_EQ(bob.Request("MINE " + text), bob_replay.Mine(text)) << text;
  }
  // alice repeats her first query: exact cache hit, still byte-identical.
  EXPECT_EQ(alice.Request("MINE " + drill[0]), alice_replay.Mine(drill[0]));
  EXPECT_EQ(alice.Request("EXPLAIN " + drill[1]),
            alice_replay.Explain(drill[1]));

  // Negative paths through the real binary.
  EXPECT_EQ(bob.Request("MINE not a query").rfind("ERR PARSE", 0), 0u);
  EXPECT_EQ(bob.Request("HELLO again").rfind("ERR REHELLO", 0), 0u);
  {
    Client anon(server.port());
    EXPECT_EQ(anon.Request("STATS").rfind("ERR NOHELLO", 0), 0u);
    EXPECT_EQ(anon.Request("QUIT"), OkResponse("bye\n"));
  }

  EXPECT_EQ(alice.Request("QUIT"), OkResponse("bye\n"));
  EXPECT_EQ(bob.Request("QUIT"), OkResponse("bye\n"));

  server.TerminateGracefully();
}

}  // namespace
}  // namespace colarm

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (argc > 1) colarm::g_server_binary = argv[1];
  return RUN_ALL_TESTS();
}
