#include <gtest/gtest.h>

#include "data/salary_dataset.h"
#include "plans/focal_subset.h"
#include "plans/query.h"
#include "test_util.h"

namespace colarm {
namespace {

using testing_util::RandomDataset;

TEST(FocalSubsetTest, FullDomainSelectsEverything) {
  Dataset data = MakeSalaryDataset();
  FocalSubset subset =
      FocalSubset::Materialize(data, Rect::FullDomain(data.schema()));
  EXPECT_EQ(subset.size(), data.num_records());
  for (Tid t = 0; t < data.num_records(); ++t) {
    EXPECT_EQ(subset.tids[t], t);
  }
}

TEST(FocalSubsetTest, SeattleFemales) {
  Dataset data = MakeSalaryDataset();
  LocalizedQuery query;
  query.ranges = {{2, 2, 2}, {3, 1, 1}};
  FocalSubset subset =
      FocalSubset::Materialize(data, query.ToRect(data.schema()));
  EXPECT_EQ(subset.tids, (std::vector<Tid>{7, 8, 9, 10}));
}

TEST(FocalSubsetTest, EmptySelection) {
  Dataset data = MakeSalaryDataset();
  LocalizedQuery query;
  query.ranges = {{0, 3, 3}, {2, 1, 1}};  // Facebook in SFO: none
  FocalSubset subset =
      FocalSubset::Materialize(data, query.ToRect(data.schema()));
  EXPECT_EQ(subset.size(), 0u);
}

TEST(FocalSubsetTest, TidsAreSortedUnique) {
  Dataset data = RandomDataset(5, 200, 4, 4);
  LocalizedQuery query;
  query.ranges = {{1, 0, 1}};
  FocalSubset subset =
      FocalSubset::Materialize(data, query.ToRect(data.schema()));
  for (size_t i = 1; i < subset.tids.size(); ++i) {
    EXPECT_LT(subset.tids[i - 1], subset.tids[i]);
  }
}

TEST(FocalSubsetTest, MatchesBruteForceMembership) {
  Dataset data = RandomDataset(6, 300, 5, 4);
  LocalizedQuery query;
  query.ranges = {{0, 1, 2}, {3, 0, 1}};
  Rect box = query.ToRect(data.schema());
  FocalSubset subset = FocalSubset::Materialize(data, box);
  std::vector<Tid> expected;
  for (Tid t = 0; t < data.num_records(); ++t) {
    ValueId v0 = data.Value(t, 0);
    ValueId v3 = data.Value(t, 3);
    if (v0 >= 1 && v0 <= 2 && v3 <= 1) expected.push_back(t);
  }
  EXPECT_EQ(subset.tids, expected);
}

TEST(FocalSubsetTest, RecordChecksCounted) {
  Dataset data = RandomDataset(7, 100, 3, 3);
  LocalizedQuery query;
  query.ranges = {{0, 0, 0}};
  uint64_t checks = 0;
  FocalSubset::Materialize(data, query.ToRect(data.schema()), &checks);
  EXPECT_EQ(checks, data.num_records());
}

}  // namespace
}  // namespace colarm
