#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "mining/tidset.h"

namespace colarm {
namespace {

TEST(TidsetTest, Intersect) {
  EXPECT_EQ(TidsetIntersect(Tidset{1, 3, 5, 7}, Tidset{2, 3, 7, 9}),
            (Tidset{3, 7}));
  EXPECT_EQ(TidsetIntersect(Tidset{}, Tidset{1}), Tidset{});
  EXPECT_EQ(TidsetIntersect(Tidset{1, 2}, Tidset{1, 2}), (Tidset{1, 2}));
}

TEST(TidsetTest, IntersectIntoReusesBuffer) {
  Tidset out = {99, 98};
  TidsetIntersectInto(Tidset{1, 2, 3}, Tidset{2, 3, 4}, &out);
  EXPECT_EQ(out, (Tidset{2, 3}));
}

TEST(TidsetTest, IntersectSizeMatchesIntersect) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    Tidset a;
    Tidset b;
    for (Tid t = 0; t < 200; ++t) {
      if (rng.Bernoulli(0.3)) a.push_back(t);
      if (rng.Bernoulli(0.3)) b.push_back(t);
    }
    EXPECT_EQ(TidsetIntersectSize(a, b), TidsetIntersect(a, b).size());
  }
}

TEST(TidsetTest, Subset) {
  EXPECT_TRUE(TidsetIsSubset(Tidset{}, Tidset{1}));
  EXPECT_TRUE(TidsetIsSubset(Tidset{2, 4}, Tidset{1, 2, 3, 4}));
  EXPECT_FALSE(TidsetIsSubset(Tidset{2, 5}, Tidset{1, 2, 3, 4}));
}

// Size-skewed operands route through the galloping (exponential-probe)
// path; heavily random trials pin it to the merge loop's answers.
TEST(TidsetTest, GallopingIntersectSizeMatchesMerge) {
  Rng rng(17);
  for (int trial = 0; trial < 40; ++trial) {
    Tidset small;
    Tidset big;
    // |big| > 32 * |small| forces the gallop on every call.
    for (Tid t = 0; t < 4000; ++t) {
      if (rng.Bernoulli(0.5)) big.push_back(t);
      if (rng.Bernoulli(0.005)) small.push_back(t);
    }
    EXPECT_EQ(TidsetIntersectSize(small, big),
              TidsetIntersect(small, big).size());
    EXPECT_EQ(TidsetIntersectSize(big, small),
              TidsetIntersect(small, big).size());
  }
  // Edge shapes: empty probe side, probe past the end of the big side,
  // single elements before, inside, and after the big side's range.
  Tidset big;
  for (Tid t = 100; t < 2100; ++t) big.push_back(t);
  EXPECT_EQ(TidsetIntersectSize(Tidset{}, big), 0u);
  EXPECT_EQ(TidsetIntersectSize(Tidset{5}, big), 0u);
  EXPECT_EQ(TidsetIntersectSize(Tidset{100}, big), 1u);
  EXPECT_EQ(TidsetIntersectSize(Tidset{2099}, big), 1u);
  EXPECT_EQ(TidsetIntersectSize(Tidset{3000}, big), 0u);
  EXPECT_EQ(TidsetIntersectSize(Tidset{5, 150, 3000}, big), 1u);
}

TEST(TidsetTest, GallopingSubsetMatchesIncludes) {
  Rng rng(19);
  for (int trial = 0; trial < 40; ++trial) {
    Tidset big;
    Tidset sub;
    for (Tid t = 0; t < 4000; ++t) {
      if (rng.Bernoulli(0.5)) {
        big.push_back(t);
        if (rng.Bernoulli(0.01)) sub.push_back(t);
      }
    }
    EXPECT_TRUE(TidsetIsSubset(sub, big));
    if (!sub.empty()) {
      // Perturb one element off the big set: no longer a subset.
      Tidset broken = sub;
      broken[broken.size() / 2] += 1;
      std::sort(broken.begin(), broken.end());
      bool expected = std::includes(big.begin(), big.end(), broken.begin(),
                                    broken.end());
      EXPECT_EQ(TidsetIsSubset(broken, big), expected);
    }
  }
  // A larger "subset" can never qualify.
  EXPECT_FALSE(TidsetIsSubset(Tidset{1, 2, 3}, Tidset{1, 2}));
}

TEST(TidsetTest, Sum) {
  EXPECT_EQ(TidsetSum(Tidset{}), 0u);
  EXPECT_EQ(TidsetSum(Tidset{1, 2, 3}), 6u);
}

}  // namespace
}  // namespace colarm
