#include <gtest/gtest.h>

#include "common/rng.h"
#include "mining/tidset.h"

namespace colarm {
namespace {

TEST(TidsetTest, Intersect) {
  EXPECT_EQ(TidsetIntersect(Tidset{1, 3, 5, 7}, Tidset{2, 3, 7, 9}),
            (Tidset{3, 7}));
  EXPECT_EQ(TidsetIntersect(Tidset{}, Tidset{1}), Tidset{});
  EXPECT_EQ(TidsetIntersect(Tidset{1, 2}, Tidset{1, 2}), (Tidset{1, 2}));
}

TEST(TidsetTest, IntersectIntoReusesBuffer) {
  Tidset out = {99, 98};
  TidsetIntersectInto(Tidset{1, 2, 3}, Tidset{2, 3, 4}, &out);
  EXPECT_EQ(out, (Tidset{2, 3}));
}

TEST(TidsetTest, IntersectSizeMatchesIntersect) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    Tidset a;
    Tidset b;
    for (Tid t = 0; t < 200; ++t) {
      if (rng.Bernoulli(0.3)) a.push_back(t);
      if (rng.Bernoulli(0.3)) b.push_back(t);
    }
    EXPECT_EQ(TidsetIntersectSize(a, b), TidsetIntersect(a, b).size());
  }
}

TEST(TidsetTest, Subset) {
  EXPECT_TRUE(TidsetIsSubset(Tidset{}, Tidset{1}));
  EXPECT_TRUE(TidsetIsSubset(Tidset{2, 4}, Tidset{1, 2, 3, 4}));
  EXPECT_FALSE(TidsetIsSubset(Tidset{2, 5}, Tidset{1, 2, 3, 4}));
}

TEST(TidsetTest, Sum) {
  EXPECT_EQ(TidsetSum(Tidset{}), 0u);
  EXPECT_EQ(TidsetSum(Tidset{1, 2, 3}), 6u);
}

}  // namespace
}  // namespace colarm
