#include <gtest/gtest.h>

#include <cmath>

#include "data/discretizer.h"

namespace colarm {
namespace {

TEST(DiscretizerTest, EquiWidthBins) {
  std::vector<double> column = {0, 1, 2, 3, 4, 5, 6, 7, 8, 10};
  auto disc = Discretizer::Fit(column, 5, BinningScheme::kEquiWidth);
  ASSERT_TRUE(disc.ok());
  EXPECT_EQ(disc->num_bins(), 5u);
  EXPECT_EQ(disc->Bin(0.0), 0);
  EXPECT_EQ(disc->Bin(1.9), 0);
  EXPECT_EQ(disc->Bin(2.0), 1);
  EXPECT_EQ(disc->Bin(9.9), 4);
  EXPECT_EQ(disc->Bin(10.0), 4);  // max lands in the final (closed) bin
}

TEST(DiscretizerTest, OutOfRangeClamps) {
  std::vector<double> column = {0, 10};
  auto disc = Discretizer::Fit(column, 2, BinningScheme::kEquiWidth);
  ASSERT_TRUE(disc.ok());
  EXPECT_EQ(disc->Bin(-100.0), 0);
  EXPECT_EQ(disc->Bin(1000.0), disc->num_bins() - 1);
}

TEST(DiscretizerTest, EquiDepthBalancesCounts) {
  std::vector<double> column;
  for (int i = 0; i < 100; ++i) column.push_back(i);       // uniform 0..99
  for (int i = 0; i < 100; ++i) column.push_back(i * 0.01);  // pile near 0
  auto disc = Discretizer::Fit(column, 4, BinningScheme::kEquiDepth);
  ASSERT_TRUE(disc.ok());
  std::vector<int> counts(disc->num_bins(), 0);
  for (double v : column) ++counts[disc->Bin(v)];
  // Equi-depth: no bin may be wildly over-full.
  for (int c : counts) EXPECT_LE(c, 120);
}

TEST(DiscretizerTest, EquiDepthCollapsesTies) {
  std::vector<double> column(50, 5.0);
  column.push_back(9.0);
  auto disc = Discretizer::Fit(column, 10, BinningScheme::kEquiDepth);
  ASSERT_TRUE(disc.ok());
  EXPECT_LE(disc->num_bins(), 10u);
  EXPECT_GE(disc->num_bins(), 1u);
  EXPECT_EQ(disc->Bin(5.0), 0);
}

TEST(DiscretizerTest, ConstantColumn) {
  std::vector<double> column(10, 3.0);
  auto disc = Discretizer::Fit(column, 4, BinningScheme::kEquiWidth);
  ASSERT_TRUE(disc.ok());
  EXPECT_EQ(disc->num_bins(), 1u);
  EXPECT_EQ(disc->Bin(3.0), 0);
}

TEST(DiscretizerTest, RejectsEmptyColumn) {
  std::vector<double> column;
  auto disc = Discretizer::Fit(column, 4, BinningScheme::kEquiWidth);
  EXPECT_FALSE(disc.ok());
}

TEST(DiscretizerTest, RejectsZeroBins) {
  std::vector<double> column = {1.0};
  auto disc = Discretizer::Fit(column, 0, BinningScheme::kEquiWidth);
  EXPECT_FALSE(disc.ok());
}

TEST(DiscretizerTest, RejectsNaN) {
  std::vector<double> column = {1.0, std::nan("")};
  auto disc = Discretizer::Fit(column, 2, BinningScheme::kEquiWidth);
  EXPECT_FALSE(disc.ok());
}

TEST(DiscretizerTest, LabelsMatchBinCount) {
  std::vector<double> column = {0, 1, 2, 3, 4};
  auto disc = Discretizer::Fit(column, 3, BinningScheme::kEquiWidth);
  ASSERT_TRUE(disc.ok());
  EXPECT_EQ(disc->labels().size(), disc->num_bins());
  EXPECT_EQ(disc->edges().size(), disc->num_bins() + 1);
}

TEST(DiscretizerTest, BinsAreOrderedByValue) {
  std::vector<double> column = {0, 25, 50, 75, 100};
  auto disc = Discretizer::Fit(column, 4, BinningScheme::kEquiWidth);
  ASSERT_TRUE(disc.ok());
  ValueId prev = 0;
  for (double v = 0; v <= 100; v += 5) {
    ValueId bin = disc->Bin(v);
    EXPECT_GE(bin, prev);
    prev = bin;
  }
}

}  // namespace
}  // namespace colarm
