#include "testing/generator.h"

#include <gtest/gtest.h>

namespace colarm {
namespace {

// The generator is the replay key of the whole subsystem: the same seed
// must expand into the same bytes, forever.
TEST(GeneratorTest, DeterministicInSeed) {
  for (uint64_t seed : {1u, 7u, 1234u}) {
    fuzzing::FuzzCase a = fuzzing::GenerateFuzzCase(seed);
    fuzzing::FuzzCase b = fuzzing::GenerateFuzzCase(seed);
    ASSERT_EQ(a.dataset.num_records(), b.dataset.num_records());
    ASSERT_EQ(a.dataset.num_attributes(), b.dataset.num_attributes());
    for (Tid t = 0; t < a.dataset.num_records(); ++t) {
      for (AttrId attr = 0; attr < a.dataset.num_attributes(); ++attr) {
        ASSERT_EQ(a.dataset.Value(t, attr), b.dataset.Value(t, attr));
      }
    }
    EXPECT_EQ(a.primary_support, b.primary_support);
    ASSERT_EQ(a.queries.size(), b.queries.size());
    for (size_t q = 0; q < a.queries.size(); ++q) {
      EXPECT_EQ(a.queries[q].ToString(a.dataset.schema()),
                b.queries[q].ToString(b.dataset.schema()));
    }
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  fuzzing::FuzzCase a = fuzzing::GenerateFuzzCase(1);
  fuzzing::FuzzCase b = fuzzing::GenerateFuzzCase(2);
  bool differs = a.dataset.num_records() != b.dataset.num_records() ||
                 a.dataset.num_attributes() != b.dataset.num_attributes() ||
                 a.primary_support != b.primary_support;
  if (!differs) {
    for (Tid t = 0; t < a.dataset.num_records() && !differs; ++t) {
      for (AttrId attr = 0; attr < a.dataset.num_attributes(); ++attr) {
        differs |= a.dataset.Value(t, attr) != b.dataset.Value(t, attr);
      }
    }
  }
  EXPECT_TRUE(differs);
}

// Every generated query must satisfy the engine's own validator, stay in
// the limits envelope, and carry thresholds in (0, 1].
TEST(GeneratorTest, CasesAreWellFormedAndWithinLimits) {
  fuzzing::FuzzLimits limits;
  limits.max_records = 40;
  limits.max_attrs = 5;
  limits.max_domain = 4;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    fuzzing::FuzzCase fuzz_case = fuzzing::GenerateFuzzCase(seed, limits);
    EXPECT_GE(fuzz_case.dataset.num_records(), limits.min_records);
    EXPECT_LE(fuzz_case.dataset.num_records(), limits.max_records);
    EXPECT_GE(fuzz_case.dataset.num_attributes(), limits.min_attrs);
    EXPECT_LE(fuzz_case.dataset.num_attributes(), limits.max_attrs);
    EXPECT_GT(fuzz_case.primary_support, 0.0);
    EXPECT_LE(fuzz_case.primary_support, 1.0);
    EXPECT_EQ(fuzz_case.queries.size(), limits.queries_per_case);
    for (const LocalizedQuery& query : fuzz_case.queries) {
      EXPECT_TRUE(query.Validate(fuzz_case.dataset.schema()).ok())
          << "seed " << seed << ": "
          << query.ToString(fuzz_case.dataset.schema());
    }
  }
}

// The boundary shapes the generator promises must actually occur within a
// modest seed budget: full-domain boxes, point boxes, single-attribute
// vocabularies, and thresholds at exactly 1.0.
TEST(GeneratorTest, BoundaryShapesOccur) {
  bool saw_full_domain = false;
  bool saw_point_box = false;
  bool saw_single_item_attr = false;
  bool saw_threshold_one = false;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    fuzzing::FuzzCase fuzz_case = fuzzing::GenerateFuzzCase(seed);
    const uint32_t n_attrs = fuzz_case.dataset.num_attributes();
    for (const LocalizedQuery& query : fuzz_case.queries) {
      saw_full_domain |= query.ranges.empty();
      bool all_points = query.ranges.size() == n_attrs;
      for (const auto& range : query.ranges) {
        all_points &= (range.lo == range.hi);
      }
      saw_point_box |= all_points && !query.ranges.empty();
      saw_single_item_attr |= query.item_attrs.size() == 1;
      saw_threshold_one |= query.minsupp == 1.0 || query.minconf == 1.0;
    }
  }
  EXPECT_TRUE(saw_full_domain);
  EXPECT_TRUE(saw_point_box);
  EXPECT_TRUE(saw_single_item_attr);
  EXPECT_TRUE(saw_threshold_one);
}

}  // namespace
}  // namespace colarm
