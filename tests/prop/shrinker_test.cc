#include "testing/shrinker.h"

#include <gtest/gtest.h>

#include "testing/generator.h"

namespace colarm {
namespace {

fuzzing::CheckOptions FastOracleOnly() {
  fuzzing::CheckOptions options;
  options.thread_counts.clear();
  options.check_threads = false;
  options.check_serialize = false;
  options.check_monotonic = false;
  options.check_containment = false;
  return options;
}

// The acceptance demo of the subsystem: inject a threshold off-by-one
// (oracle counts as if the system used > instead of >=), let the fuzz loop
// catch it, and shrink the catch to a <=10-record reproducer.
TEST(ShrinkerTest, InjectedOffByOneIsCaughtAndShrunkToTinyCase) {
  fuzzing::CheckOptions options = FastOracleOnly();
  options.oracle.inject_min_count_bias = 1;

  fuzzing::FuzzLimits limits;
  limits.max_records = 50;
  limits.max_attrs = 5;
  limits.max_domain = 4;

  bool caught = false;
  for (uint64_t seed = 1; seed <= 40 && !caught; ++seed) {
    fuzzing::FuzzCase fuzz_case = fuzzing::GenerateFuzzCase(seed, limits);
    if (fuzzing::CheckCase(fuzz_case, options).empty()) continue;
    caught = true;

    fuzzing::FuzzCase shrunk = fuzzing::ShrinkCase(fuzz_case, options);
    EXPECT_LE(shrunk.dataset.num_records(), 10u)
        << "seed " << seed << " did not shrink below 10 records";
    EXPECT_LE(shrunk.dataset.num_records(), fuzz_case.dataset.num_records());
    EXPECT_EQ(shrunk.queries.size(), 1u);
    // The shrunk case must still reproduce the violation...
    EXPECT_FALSE(fuzzing::CheckCase(shrunk, options).empty());
    // ...and vanish when the injected bug is removed (it is a real
    // boundary case, not a broken reduction).
    fuzzing::CheckOptions clean = FastOracleOnly();
    EXPECT_TRUE(fuzzing::CheckCase(shrunk, clean).empty());

    const std::string repro = fuzzing::FormatReproducer(shrunk);
    EXPECT_NE(repro.find("TEST(FuzzRegression,"), std::string::npos);
    EXPECT_NE(repro.find("AddRecord"), std::string::npos);
    EXPECT_NE(repro.find("CheckCase"), std::string::npos);
  }
  EXPECT_TRUE(caught)
      << "no seed in the budget hit a minsupport boundary; widen the sweep";
}

// Shrinking a passing case is the identity.
TEST(ShrinkerTest, PassingCaseIsReturnedUnchanged) {
  fuzzing::FuzzLimits limits;
  limits.max_records = 30;
  fuzzing::FuzzCase fuzz_case = fuzzing::GenerateFuzzCase(1, limits);
  fuzzing::CheckOptions options = FastOracleOnly();
  ASSERT_TRUE(fuzzing::CheckCase(fuzz_case, options).empty());
  fuzzing::FuzzCase same = fuzzing::ShrinkCase(fuzz_case, options);
  EXPECT_EQ(same.dataset.num_records(), fuzz_case.dataset.num_records());
  EXPECT_EQ(same.queries.size(), fuzz_case.queries.size());
}

TEST(ShrinkerTest, ReproducerIsSelfContained) {
  fuzzing::FuzzLimits limits;
  limits.max_records = 10;
  limits.min_records = 4;
  limits.queries_per_case = 1;
  fuzzing::FuzzCase fuzz_case = fuzzing::GenerateFuzzCase(9, limits);
  const std::string repro = fuzzing::FormatReproducer(fuzz_case);
  // One AddRecord line per record, both thresholds, and the case header.
  size_t add_records = 0;
  for (size_t pos = repro.find("AddRecord"); pos != std::string::npos;
       pos = repro.find("AddRecord", pos + 1)) {
    ++add_records;
  }
  EXPECT_EQ(add_records, fuzz_case.dataset.num_records());
  EXPECT_NE(repro.find("minsupp"), std::string::npos);
  EXPECT_NE(repro.find("minconf"), std::string::npos);
  EXPECT_NE(repro.find("primary_support"), std::string::npos);
}

}  // namespace
}  // namespace colarm
