// Boundary-semantics tests: the exact spots where >= vs > threshold bugs
// live. Every case pins all six plans to the brute-force oracle.
#include <gtest/gtest.h>

#include <memory>

#include "data/salary_dataset.h"
#include "plans/plans.h"
#include "testing/oracle.h"
#include "../test_util.h"

namespace colarm {
namespace {

using testing_util::RandomDataset;

RuleGenOptions WideRuleGen() {
  RuleGenOptions options;
  options.max_itemset_length = 31;
  return options;
}

/// Runs all six plans and asserts each matches the oracle for the same
/// primary support.
void ExpectAllPlansMatchOracle(const Dataset& dataset, double primary,
                               const LocalizedQuery& query) {
  auto index = MipIndex::Build(dataset, {.primary_support = primary});
  ASSERT_TRUE(index.ok());
  auto oracle = fuzzing::OracleLocalizedRules(dataset, primary, query);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  for (PlanKind kind : kAllPlans) {
    auto result = ExecutePlan(kind, *index, query, WideRuleGen());
    ASSERT_TRUE(result.ok()) << PlanKindName(kind);
    EXPECT_TRUE(result->rules.SameAs(*oracle))
        << PlanKindName(kind) << " on " << query.ToString(dataset.schema())
        << ": got " << result->rules.rules.size() << " rules, oracle "
        << oracle->rules.size();
  }
}

TEST(BoundaryTest, EmptyFocalSubset) {
  Dataset data = MakeSalaryDataset();
  LocalizedQuery query;
  query.ranges = {{0, 3, 3}, {2, 1, 1}};  // Facebook in SFO: no such record
  query.minsupp = 0.5;
  query.minconf = 0.5;
  ExpectAllPlansMatchOracle(data, 0.27, query);

  auto oracle = fuzzing::OracleLocalizedRules(data, 0.27, query);
  ASSERT_TRUE(oracle.ok());
  EXPECT_TRUE(oracle->rules.empty());
}

TEST(BoundaryTest, MinSupportExactlyOne) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    Dataset data = RandomDataset(seed, 80, 4, 3);
    LocalizedQuery query;
    query.ranges = {{0, 0, 0}};
    query.minsupp = 1.0;  // only itemsets present in every DQ record
    query.minconf = 0.5;
    ExpectAllPlansMatchOracle(data, 0.2, query);
  }
}

TEST(BoundaryTest, MinConfidenceExactlyOne) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    Dataset data = RandomDataset(seed, 80, 4, 3);
    LocalizedQuery query;
    query.ranges = {{1, 0, 1}};
    query.minsupp = 0.4;
    query.minconf = 1.0;  // only exact implications survive
    ExpectAllPlansMatchOracle(data, 0.2, query);
  }
}

// minsupp sitting exactly on k/|DQ| — the classic >= vs > divergence spot.
TEST(BoundaryTest, MinSupportOnExactCountRatio) {
  Dataset data = RandomDataset(31, 60, 4, 3);
  LocalizedQuery probe;
  probe.ranges = {{0, 0, 0}};
  auto index = MipIndex::Build(data, {.primary_support = 0.2});
  ASSERT_TRUE(index.ok());
  auto sized = ExecutePlan(PlanKind::kSEV, *index, probe, WideRuleGen());
  ASSERT_TRUE(sized.ok());
  const uint32_t dq = sized->stats.subset_size;
  ASSERT_GT(dq, 2u);
  for (uint32_t k : {1u, dq / 2, dq - 1, dq}) {
    if (k == 0) continue;
    LocalizedQuery query = probe;
    query.minsupp = static_cast<double>(k) / dq;
    query.minconf = 0.5;
    ExpectAllPlansMatchOracle(data, 0.2, query);
  }
}

TEST(BoundaryTest, SingleRecordFocalBox) {
  Dataset data = MakeSalaryDataset();
  // Pin every attribute to record 0's values: DQ == exactly that record.
  LocalizedQuery query;
  for (AttrId a = 0; a < data.num_attributes(); ++a) {
    const ValueId v = data.Value(0, a);
    query.ranges.push_back({a, v, v});
  }
  query.minsupp = 1.0;
  query.minconf = 1.0;
  ExpectAllPlansMatchOracle(data, 0.27, query);
}

TEST(BoundaryTest, SingleAttributeItemVocabulary) {
  // With one item attribute no rule can have disjoint non-empty sides, so
  // every plan must return exactly nothing — not crash, not fabricate.
  Dataset data = RandomDataset(41, 70, 4, 3);
  for (AttrId a = 0; a < 4; ++a) {
    LocalizedQuery query;
    query.ranges = {{0, 0, 1}};
    query.item_attrs = {a};
    query.minsupp = 0.3;
    query.minconf = 0.3;
    ExpectAllPlansMatchOracle(data, 0.2, query);

    auto oracle = fuzzing::OracleLocalizedRules(data, 0.2, query);
    ASSERT_TRUE(oracle.ok());
    EXPECT_TRUE(oracle->rules.empty());
  }
}

}  // namespace
}  // namespace colarm
