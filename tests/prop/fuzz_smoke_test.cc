// In-process slice of the colarm_fuzz smoke pass: a fixed seed range
// through the full invariant battery. The CLI ctest entry (`fuzz_smoke`)
// covers 200 seeds with pools of 2 and 8; this test keeps a smaller sweep
// inside the test binary so a violation shrinks and prints its reproducer
// right in the gtest log.
#include <gtest/gtest.h>

#include "testing/generator.h"
#include "testing/invariants.h"
#include "testing/shrinker.h"

namespace colarm {
namespace {

TEST(FuzzSmokeTest, FixedSeedsPassAllInvariants) {
  fuzzing::FuzzLimits limits;
  limits.max_records = 60;
  limits.max_attrs = 5;
  limits.max_domain = 4;
  limits.queries_per_case = 2;

  fuzzing::CheckOptions options;
  options.thread_counts = {2};

  for (uint64_t seed = 1; seed <= 25; ++seed) {
    fuzzing::FuzzCase fuzz_case = fuzzing::GenerateFuzzCase(seed, limits);
    std::vector<fuzzing::Violation> violations =
        fuzzing::CheckCase(fuzz_case, options);
    if (violations.empty()) continue;
    for (const auto& violation : violations) {
      ADD_FAILURE() << "seed " << seed << ": " << violation.ToString();
    }
    fuzzing::FuzzCase shrunk = fuzzing::ShrinkCase(fuzz_case, options);
    ADD_FAILURE() << "reproducer:\n" << fuzzing::FormatReproducer(shrunk);
    break;
  }
}

}  // namespace
}  // namespace colarm
