#include "testing/oracle.h"

#include <gtest/gtest.h>

#include <memory>

#include "data/salary_dataset.h"
#include "mining/itemset.h"
#include "plans/plans.h"
#include "../test_util.h"

namespace colarm {
namespace {

using testing_util::RandomDataset;
using testing_util::ReferenceLocalizedRules;

// The independent threshold implementation must agree with the production
// MinCount on every (fraction, total) pair a query can produce, including
// the exact k/n boundaries.
TEST(OracleMinCountTest, MatchesProductionSemantics) {
  for (uint32_t total = 1; total <= 64; ++total) {
    for (uint32_t k = 1; k <= total; ++k) {
      const double fraction = static_cast<double>(k) / total;
      EXPECT_EQ(fuzzing::OracleMinCount(fraction, total),
                MinCount(fraction, total))
          << k << "/" << total;
    }
    EXPECT_EQ(fuzzing::OracleMinCount(1.0, total), MinCount(1.0, total));
    EXPECT_EQ(fuzzing::OracleMinCount(1e-9, total), MinCount(1e-9, total));
  }
  EXPECT_EQ(fuzzing::OracleMinCount(0.5, 0), 1u);
}

// The oracle re-derives the prestored family and the rule set with zero
// shared machinery; it must still agree with the test_util reference
// (which walks the built MIP-index) on random workloads.
TEST(OracleTest, AgreesWithIndexWalkingReference) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    auto data = std::make_unique<Dataset>(RandomDataset(seed, 120, 4, 3));
    const double primary = 0.25;
    auto index = MipIndex::Build(*data, {.primary_support = primary});
    ASSERT_TRUE(index.ok());

    LocalizedQuery query;
    query.ranges = {{static_cast<AttrId>(seed % 4), 0, 1}};
    query.minsupp = 0.3 + 0.1 * static_cast<double>(seed % 4);
    query.minconf = 0.5;

    RuleSet expected = ReferenceLocalizedRules(*index, query);
    auto oracle = fuzzing::OracleLocalizedRules(*data, primary, query);
    ASSERT_TRUE(oracle.ok());
    EXPECT_TRUE(oracle->SameAs(expected))
        << "seed " << seed << ": oracle " << oracle->rules.size()
        << " rules, reference " << expected.rules.size();
  }
}

// And with the actual plans, on the paper's salary fixture.
TEST(OracleTest, AgreesWithAllPlansOnSalaryData) {
  auto data = std::make_unique<Dataset>(MakeSalaryDataset());
  const double primary = 0.27;
  auto index = MipIndex::Build(*data, {.primary_support = primary});
  ASSERT_TRUE(index.ok());

  LocalizedQuery query;
  query.ranges = {{2, 2, 2}, {3, 1, 1}};  // Seattle females
  query.minsupp = 0.75;
  query.minconf = 1.0;

  auto oracle = fuzzing::OracleLocalizedRules(*data, primary, query);
  ASSERT_TRUE(oracle.ok());
  EXPECT_FALSE(oracle->rules.empty());
  for (PlanKind kind : kAllPlans) {
    RuleGenOptions wide;
    wide.max_itemset_length = 31;
    auto result = ExecutePlan(kind, *index, query, wide);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->rules.SameAs(*oracle)) << PlanKindName(kind);
  }
}

TEST(OracleTest, RejectsInvalidQuery) {
  auto data = std::make_unique<Dataset>(MakeSalaryDataset());
  LocalizedQuery query;
  query.ranges = {{99, 0, 0}};
  EXPECT_FALSE(fuzzing::OracleLocalizedRules(*data, 0.3, query).ok());
}

// The injection hook exists to prove the differential loop catches
// threshold off-by-ones: a +1 bias must be able to change the answer.
TEST(OracleTest, InjectedBiasPerturbsBoundaryQueries) {
  auto data = std::make_unique<Dataset>(RandomDataset(3, 60, 4, 3));
  bool diverged = false;
  for (uint64_t attempt = 0; attempt < 8 && !diverged; ++attempt) {
    LocalizedQuery query;
    query.ranges = {{static_cast<AttrId>(attempt % 4), 0, 0}};
    query.minsupp = 0.25 + 0.1 * static_cast<double>(attempt % 5);
    query.minconf = 0.3;
    auto clean = fuzzing::OracleLocalizedRules(*data, 0.2, query);
    fuzzing::OracleOptions biased;
    biased.inject_min_count_bias = 1;
    auto bumped = fuzzing::OracleLocalizedRules(*data, 0.2, query, biased);
    ASSERT_TRUE(clean.ok());
    ASSERT_TRUE(bumped.ok());
    diverged |= !clean->SameAs(*bumped);
  }
  EXPECT_TRUE(diverged);
}

}  // namespace
}  // namespace colarm
