#include "testing/invariants.h"

#include <gtest/gtest.h>

#include "data/salary_dataset.h"

namespace colarm {
namespace {

fuzzing::FuzzCase SalaryCase() {
  fuzzing::FuzzCase fuzz_case;
  fuzz_case.seed = 0;
  fuzz_case.dataset = MakeSalaryDataset();
  fuzz_case.primary_support = 0.27;
  LocalizedQuery query;
  query.ranges = {{2, 2, 2}, {3, 1, 1}};  // Seattle females
  query.minsupp = 0.75;
  query.minconf = 1.0;
  fuzz_case.queries.push_back(query);
  LocalizedQuery broad;
  broad.minsupp = 0.5;
  broad.minconf = 0.6;
  fuzz_case.queries.push_back(broad);
  return fuzz_case;
}

// A healthy engine on the paper's fixture: every invariant holds,
// including thread sweeps and the serialize round-trip.
TEST(InvariantsTest, SalaryFixturePassesAllInvariants) {
  fuzzing::CheckOptions options;
  options.thread_counts = {2, 8};
  std::vector<fuzzing::Violation> violations =
      fuzzing::CheckCase(SalaryCase(), options);
  for (const auto& violation : violations) {
    ADD_FAILURE() << violation.ToString();
  }
}

// The checker itself must detect a wrong system: biasing the oracle's
// threshold models a plan-side off-by-one, and plan-vs-oracle must fire.
TEST(InvariantsTest, DetectsInjectedThresholdOffByOne) {
  fuzzing::CheckOptions options;
  options.thread_counts.clear();
  options.check_threads = false;
  options.check_serialize = false;
  options.check_monotonic = false;
  options.check_containment = false;
  options.oracle.inject_min_count_bias = 1;

  // Boundary query: minsupp = 3/4 with |DQ| = 4 makes the local threshold
  // land exactly on a count, so a +1 bias flips the answer.
  fuzzing::FuzzCase fuzz_case = SalaryCase();
  fuzz_case.queries.resize(1);
  std::vector<fuzzing::Violation> violations =
      fuzzing::CheckCase(fuzz_case, options);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].invariant, "plan-vs-oracle");
}

// Disabled invariants stay disabled (the CLI's --no-serialize etc. depend
// on this), and an all-off run over a valid case reports nothing.
TEST(InvariantsTest, DisabledChecksReportNothing) {
  fuzzing::CheckOptions options;
  options.check_oracle = false;
  options.check_threads = false;
  options.check_serialize = false;
  options.check_monotonic = false;
  options.check_containment = false;
  EXPECT_TRUE(fuzzing::CheckCase(SalaryCase(), options).empty());
}

TEST(InvariantsTest, ViolationToStringMentionsInvariantAndQuery) {
  fuzzing::Violation violation{"plan-vs-oracle", 3, "detail text"};
  const std::string rendered = violation.ToString();
  EXPECT_NE(rendered.find("plan-vs-oracle"), std::string::npos);
  EXPECT_NE(rendered.find("#3"), std::string::npos);
  EXPECT_NE(rendered.find("detail text"), std::string::npos);
}

}  // namespace
}  // namespace colarm
