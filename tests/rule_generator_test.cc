#include <gtest/gtest.h>

#include "data/salary_dataset.h"
#include "mining/rule_generator.h"
#include "test_util.h"

namespace colarm {
namespace {

using testing_util::RandomDataset;

std::vector<Tid> AllTids(const Dataset& data) {
  std::vector<Tid> tids(data.num_records());
  for (Tid t = 0; t < data.num_records(); ++t) tids[t] = t;
  return tids;
}

TEST(RuleTest, SupportAndConfidence) {
  Rule rule{{1}, {2}, 3, 4, 10};
  EXPECT_DOUBLE_EQ(rule.support(), 0.3);
  EXPECT_DOUBLE_EQ(rule.confidence(), 0.75);
}

TEST(RuleTest, DegenerateCountsAreSafe) {
  Rule rule{{1}, {2}, 0, 0, 0};
  EXPECT_DOUBLE_EQ(rule.support(), 0.0);
  EXPECT_DOUBLE_EQ(rule.confidence(), 0.0);
}

TEST(RuleSetTest, SameAsIgnoresOrder) {
  Rule a{{1}, {2}, 3, 4, 10};
  Rule b{{2}, {1}, 3, 3, 10};
  RuleSet x{{a, b}};
  RuleSet y{{b, a}};
  EXPECT_TRUE(x.SameAs(y));
}

TEST(RuleSetTest, SameAsDetectsCountDifferences) {
  Rule a{{1}, {2}, 3, 4, 10};
  Rule b{{1}, {2}, 3, 5, 10};
  EXPECT_FALSE(RuleSet{{a}}.SameAs(RuleSet{{b}}));
  EXPECT_FALSE(RuleSet{{a}}.SameAs(RuleSet{}));
}

TEST(RuleGeneratorTest, GeneratesAllConfidentPartitions) {
  Dataset data = MakeSalaryDataset();
  const Schema& schema = data.schema();
  // (Age=20-30, Salary=90K-120K): count 5, Age count 6, Salary count 8.
  Itemset itemset = {schema.ItemOf(4, 0), schema.ItemOf(5, 2)};
  LocalSubsetCounter counter(data, itemset, AllTids(data));
  RuleSet rules;
  RuleGenStats stats;
  GenerateRulesForItemset(counter, 0.5, RuleGenOptions{}, &rules, &stats);
  ASSERT_EQ(rules.rules.size(), 2u);
  rules.Canonicalize();
  // Age => Salary: 5/6; Salary => Age: 5/8.
  EXPECT_EQ(rules.rules[0].antecedent, (Itemset{schema.ItemOf(4, 0)}));
  EXPECT_EQ(rules.rules[0].antecedent_count, 6u);
  EXPECT_EQ(rules.rules[1].antecedent, (Itemset{schema.ItemOf(5, 2)}));
  EXPECT_EQ(rules.rules[1].antecedent_count, 8u);
  EXPECT_EQ(stats.rules_considered, 2u);
  EXPECT_EQ(stats.rules_emitted, 2u);
}

TEST(RuleGeneratorTest, MinconfFilters) {
  Dataset data = MakeSalaryDataset();
  const Schema& schema = data.schema();
  Itemset itemset = {schema.ItemOf(4, 0), schema.ItemOf(5, 2)};
  LocalSubsetCounter counter(data, itemset, AllTids(data));
  RuleSet rules;
  RuleGenStats stats;
  // 5/6 = 0.833, 5/7 = 0.714: only the first passes at 0.8.
  GenerateRulesForItemset(counter, 0.8, RuleGenOptions{}, &rules, &stats);
  ASSERT_EQ(rules.rules.size(), 1u);
  EXPECT_EQ(rules.rules[0].antecedent, (Itemset{schema.ItemOf(4, 0)}));
}

TEST(RuleGeneratorTest, ExactMinconfBoundaryIncluded) {
  Dataset data = MakeSalaryDataset();
  const Schema& schema = data.schema();
  Itemset itemset = {schema.ItemOf(4, 0), schema.ItemOf(5, 2)};
  LocalSubsetCounter counter(data, itemset, AllTids(data));
  RuleSet rules;
  RuleGenStats stats;
  GenerateRulesForItemset(counter, 5.0 / 6.0, RuleGenOptions{}, &rules,
                          &stats);
  EXPECT_EQ(rules.rules.size(), 1u);  // 5/6 meets minconf exactly
}

TEST(RuleGeneratorTest, SingletonItemsetYieldsNoRules) {
  Dataset data = MakeSalaryDataset();
  LocalSubsetCounter counter(data, {data.schema().ItemOf(4, 0)},
                             AllTids(data));
  RuleSet rules;
  RuleGenStats stats;
  GenerateRulesForItemset(counter, 0.1, RuleGenOptions{}, &rules, &stats);
  EXPECT_TRUE(rules.rules.empty());
}

TEST(RuleGeneratorTest, ThreeItemPartitionCount) {
  Dataset data = RandomDataset(17, 100, 4, 2);
  const Schema& schema = data.schema();
  Itemset itemset = {schema.ItemOf(0, 0), schema.ItemOf(1, 0),
                     schema.ItemOf(2, 0)};
  LocalSubsetCounter counter(data, itemset, AllTids(data));
  RuleSet rules;
  RuleGenStats stats;
  GenerateRulesForItemset(counter, 0.0001, RuleGenOptions{}, &rules, &stats);
  EXPECT_EQ(stats.rules_considered, 6u);  // 2^3 - 2 partitions
}

TEST(RuleGeneratorTest, LengthCapSkips) {
  Dataset data = RandomDataset(18, 20, 6, 2);
  const Schema& schema = data.schema();
  Itemset itemset;
  for (AttrId a = 0; a < 6; ++a) itemset.push_back(schema.ItemOf(a, 0));
  LocalSubsetCounter counter(data, itemset, AllTids(data));
  RuleGenOptions options;
  options.max_itemset_length = 4;
  RuleSet rules;
  RuleGenStats stats;
  GenerateRulesForItemset(counter, 0.1, options, &rules, &stats);
  EXPECT_TRUE(rules.rules.empty());
  EXPECT_EQ(stats.itemsets_skipped, 1u);
}

TEST(RuleGeneratorTest, AntecedentConsequentDisjointAndCoverItemset) {
  Dataset data = RandomDataset(19, 80, 5, 2);
  const Schema& schema = data.schema();
  Itemset itemset = {schema.ItemOf(0, 0), schema.ItemOf(2, 0),
                     schema.ItemOf(4, 0)};
  LocalSubsetCounter counter(data, itemset, AllTids(data));
  RuleSet rules;
  RuleGenStats stats;
  GenerateRulesForItemset(counter, 0.0001, RuleGenOptions{}, &rules, &stats);
  for (const Rule& rule : rules.rules) {
    EXPECT_TRUE(ItemsetDisjoint(rule.antecedent, rule.consequent));
    EXPECT_EQ(ItemsetUnion(rule.antecedent, rule.consequent), itemset);
    EXPECT_FALSE(rule.antecedent.empty());
    EXPECT_FALSE(rule.consequent.empty());
  }
}

}  // namespace
}  // namespace colarm
