#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "data/salary_dataset.h"
#include "data/synthetic.h"
#include "plans/plans.h"
#include "test_util.h"

namespace colarm {
namespace {

using testing_util::RandomDataset;
using testing_util::ReferenceLocalizedRules;

RuleGenOptions WideRuleGen() {
  RuleGenOptions options;
  options.max_itemset_length = 31;  // match the reference's exhaustive cap
  return options;
}

// (seed, primary_support, minsupp, minconf, range_attr_count)
using PlanParam = std::tuple<uint64_t, double, double, double, uint32_t>;

class PlanEquivalenceTest : public ::testing::TestWithParam<PlanParam> {};

// THE core invariant of the paper: all six execution plans compute exactly
// the same localized rule set, and that set matches the brute-force
// reference of the query contract.
TEST_P(PlanEquivalenceTest, AllPlansMatchReference) {
  auto [seed, primary, minsupp, minconf, range_attrs] = GetParam();
  auto data =
      std::make_unique<Dataset>(RandomDataset(seed, 160, 5, 4));
  auto index = MipIndex::Build(*data, {.primary_support = primary});
  ASSERT_TRUE(index.ok());

  Rng rng(seed * 7919);
  for (int q = 0; q < 6; ++q) {
    LocalizedQuery query;
    query.minsupp = minsupp;
    query.minconf = minconf;
    for (uint32_t i = 0; i < range_attrs; ++i) {
      AttrId attr = static_cast<AttrId>(rng.Uniform(5));
      bool already = false;
      for (const auto& r : query.ranges) already |= (r.attr == attr);
      if (already) continue;
      ValueId lo = static_cast<ValueId>(rng.Uniform(4));
      ValueId hi = static_cast<ValueId>(
          std::min<uint64_t>(3, lo + rng.Uniform(3)));
      query.ranges.push_back({attr, lo, hi});
    }
    if (rng.Bernoulli(0.4)) {
      query.item_attrs = {0, 1, 2, 3};  // drop attribute 4 from vocabulary
    }

    RuleSet expected = ReferenceLocalizedRules(*index, query);
    for (PlanKind kind : kAllPlans) {
      auto result = ExecutePlan(kind, *index, query, WideRuleGen());
      ASSERT_TRUE(result.ok()) << PlanKindName(kind);
      EXPECT_TRUE(result->rules.SameAs(expected))
          << "plan " << PlanKindName(kind) << " diverges on query "
          << query.ToString(data->schema()) << " (got "
          << result->rules.rules.size() << " rules, expected "
          << expected.rules.size() << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlanEquivalenceTest,
    ::testing::Values(PlanParam{1, 0.20, 0.30, 0.50, 1},
                      PlanParam{2, 0.20, 0.50, 0.70, 1},
                      PlanParam{3, 0.15, 0.40, 0.60, 2},
                      PlanParam{4, 0.25, 0.60, 0.80, 2},
                      PlanParam{5, 0.30, 0.35, 0.55, 3},
                      PlanParam{6, 0.15, 0.25, 0.90, 1},
                      PlanParam{7, 0.35, 0.70, 0.60, 2},
                      PlanParam{8, 0.20, 0.45, 0.65, 0},
                      PlanParam{9, 0.25, 0.30, 0.40, 3},
                      PlanParam{10, 0.18, 0.55, 0.75, 2}));

TEST(PlanEquivalenceTest, SyntheticPresetAllPlansAgree) {
  auto data = std::make_unique<Dataset>(
      GenerateSynthetic(ChessLikeConfig(0.05)).value());
  auto index = MipIndex::Build(*data, {.primary_support = 0.5});
  ASSERT_TRUE(index.ok());

  LocalizedQuery query;
  query.ranges = {{0, 0, 24}};  // first quarter of the region domain
  query.minsupp = 0.7;
  query.minconf = 0.8;

  RuleSet baseline;
  bool first = true;
  for (PlanKind kind : kAllPlans) {
    auto result = ExecutePlan(kind, *index, query, WideRuleGen());
    ASSERT_TRUE(result.ok());
    if (first) {
      baseline = result->rules;
      first = false;
    } else {
      EXPECT_TRUE(result->rules.SameAs(baseline)) << PlanKindName(kind);
    }
  }
  EXPECT_FALSE(baseline.rules.empty());
}

TEST(PlanEquivalenceTest, SalarySeattleFemalesFindsLocalizedRule) {
  auto data = std::make_unique<Dataset>(MakeSalaryDataset());
  auto index = MipIndex::Build(*data, {.primary_support = 0.27});
  ASSERT_TRUE(index.ok());
  const Schema& schema = data->schema();

  LocalizedQuery query;
  query.ranges = {{2, 2, 2}, {3, 1, 1}};  // Seattle females
  query.minsupp = 0.75;
  query.minconf = 1.0;

  RuleSet expected = ReferenceLocalizedRules(*index, query);
  for (PlanKind kind : kAllPlans) {
    auto result = ExecutePlan(kind, *index, query, WideRuleGen());
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(result->rules.SameAs(expected)) << PlanKindName(kind);
    // The paper's RL = (Age=30-40 => Salary=90K-120K) at 75% / 100%.
    // {A1, S2} is not itself closed — its closure adds Location=Seattle
    // and Gender=F — so RL surfaces in closed form: antecedent Age=30-40,
    // consequent containing Salary=90K-120K, with the same counts.
    bool found_rl = false;
    for (const Rule& rule : result->rules.rules) {
      if (rule.antecedent == Itemset{schema.ItemOf(4, 1)} &&
          std::binary_search(rule.consequent.begin(), rule.consequent.end(),
                             schema.ItemOf(5, 2))) {
        found_rl = true;
        EXPECT_EQ(rule.itemset_count, 3u);
        EXPECT_EQ(rule.antecedent_count, 3u);
        EXPECT_EQ(rule.base_count, 4u);
      }
    }
    EXPECT_TRUE(found_rl) << PlanKindName(kind);
  }
}

TEST(PlanEquivalenceTest, EmptySubsetGivesEmptyRules) {
  auto data = std::make_unique<Dataset>(MakeSalaryDataset());
  auto index = MipIndex::Build(*data, {.primary_support = 0.27});
  ASSERT_TRUE(index.ok());
  LocalizedQuery query;
  query.ranges = {{0, 3, 3}, {2, 1, 1}};  // Facebook in SFO: empty
  query.minsupp = 0.5;
  query.minconf = 0.5;
  for (PlanKind kind : kAllPlans) {
    auto result = ExecutePlan(kind, *index, query);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->rules.rules.empty()) << PlanKindName(kind);
    EXPECT_EQ(result->stats.subset_size, 0u);
  }
}

TEST(PlanEquivalenceTest, InvalidQueryRejectedByAllPlans) {
  auto data = std::make_unique<Dataset>(MakeSalaryDataset());
  auto index = MipIndex::Build(*data, {.primary_support = 0.27});
  ASSERT_TRUE(index.ok());
  LocalizedQuery query;
  query.ranges = {{99, 0, 0}};
  for (PlanKind kind : kAllPlans) {
    EXPECT_FALSE(ExecutePlan(kind, *index, query).ok());
  }
}

TEST(PlanEquivalenceTest, StatsArePopulated) {
  auto data = std::make_unique<Dataset>(RandomDataset(42, 200, 5, 3));
  auto index = MipIndex::Build(*data, {.primary_support = 0.2});
  ASSERT_TRUE(index.ok());
  LocalizedQuery query;
  query.ranges = {{0, 0, 1}};
  query.minsupp = 0.4;
  query.minconf = 0.5;

  auto sev = ExecutePlan(PlanKind::kSEV, *index, query);
  ASSERT_TRUE(sev.ok());
  EXPECT_GT(sev->stats.candidates_search, 0u);
  EXPECT_GT(sev->stats.record_checks, 0u);
  EXPECT_GT(sev->stats.rtree_nodes_visited, 0u);
  EXPECT_GT(sev->stats.subset_size, 0u);
  EXPECT_FALSE(sev->stats.ToString().empty());

  auto arm = ExecutePlan(PlanKind::kARM, *index, query);
  ASSERT_TRUE(arm.ok());
  EXPECT_GT(arm->stats.local_cfis, 0u);
  EXPECT_EQ(arm->stats.rtree_nodes_visited, 0u);
}

}  // namespace
}  // namespace colarm
