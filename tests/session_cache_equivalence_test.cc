#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <tuple>

#include "core/cache_persist.h"
#include "core/engine.h"
#include "test_util.h"

namespace colarm {
namespace {

using testing_util::RandomDataset;
using testing_util::ReferenceLocalizedRules;

// The cache's headline contract: a warm engine answers every query byte-
// identically to a cold one — same rules in the same canonical order, same
// effort counters, same chosen plan. Only wall time and the decision's
// cache-provenance field may differ.

void ExpectSameEffort(const PlanStats& cold, const PlanStats& warm,
                      const std::string& context) {
  EXPECT_EQ(cold.subset_size, warm.subset_size) << context;
  EXPECT_EQ(cold.local_min_count, warm.local_min_count) << context;
  EXPECT_EQ(cold.candidates_search, warm.candidates_search) << context;
  EXPECT_EQ(cold.candidates_contained, warm.candidates_contained) << context;
  EXPECT_EQ(cold.candidates_qualified, warm.candidates_qualified) << context;
  EXPECT_EQ(cold.record_checks, warm.record_checks) << context;
  EXPECT_EQ(cold.rtree_nodes_visited, warm.rtree_nodes_visited) << context;
  EXPECT_EQ(cold.rtree_pruned_by_support, warm.rtree_pruned_by_support)
      << context;
  EXPECT_EQ(cold.rules_considered, warm.rules_considered) << context;
  EXPECT_EQ(cold.rules_emitted, warm.rules_emitted) << context;
  EXPECT_EQ(cold.itemsets_skipped, warm.itemsets_skipped) << context;
  EXPECT_EQ(cold.local_cfis, warm.local_cfis) << context;
}

void ExpectSameRules(const RuleSet& cold, const RuleSet& warm,
                     const std::string& context) {
  ASSERT_EQ(cold.rules.size(), warm.rules.size()) << context;
  for (size_t r = 0; r < cold.rules.size(); ++r) {
    EXPECT_EQ(cold.rules[r].antecedent, warm.rules[r].antecedent) << context;
    EXPECT_EQ(cold.rules[r].consequent, warm.rules[r].consequent) << context;
    EXPECT_EQ(cold.rules[r].itemset_count, warm.rules[r].itemset_count)
        << context;
    EXPECT_EQ(cold.rules[r].antecedent_count, warm.rules[r].antecedent_count)
        << context;
    EXPECT_EQ(cold.rules[r].base_count, warm.rules[r].base_count) << context;
  }
}

// An exploration session covering every reuse tier: a base region, a
// threshold sweep over it (count-memo hits), a drill-down contained in it
// (containment derivation), an exact repeat (exact hit), a disjoint
// region, and a vocabulary-restricted refinement.
std::vector<LocalizedQuery> SessionQueries() {
  std::vector<LocalizedQuery> queries;
  LocalizedQuery base;
  base.ranges = {{0, 0, 2}};
  base.minsupp = 0.3;
  base.minconf = 0.6;
  queries.push_back(base);
  for (double minsupp : {0.4, 0.5}) {
    LocalizedQuery sweep = base;
    sweep.minsupp = minsupp;
    queries.push_back(sweep);
  }
  LocalizedQuery drill;
  drill.ranges = {{0, 0, 1}, {2, 0, 2}};
  drill.minsupp = 0.35;
  drill.minconf = 0.55;
  queries.push_back(drill);
  queries.push_back(base);  // exact repeat
  LocalizedQuery other;
  other.ranges = {{1, 1, 3}};
  other.minsupp = 0.4;
  other.minconf = 0.5;
  queries.push_back(other);
  LocalizedQuery vocab = base;
  vocab.minsupp = 0.45;
  vocab.item_attrs = {1, 2, 3, 4};
  queries.push_back(vocab);
  return queries;
}

class SessionCacheEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<ExecBackend, unsigned>> {};

TEST_P(SessionCacheEquivalenceTest, WarmMatchesColdByteForByte) {
  const auto [backend, num_threads] = GetParam();
  auto data = std::make_unique<Dataset>(RandomDataset(51, 260, 5, 4));

  EngineOptions cold_options;
  cold_options.index.primary_support = 0.2;
  cold_options.calibrate = false;
  cold_options.backend = backend;
  cold_options.num_threads = 1;
  auto cold_engine = Engine::Build(*data, cold_options);
  ASSERT_TRUE(cold_engine.ok());

  EngineOptions warm_options = cold_options;
  warm_options.num_threads = num_threads;
  warm_options.cache.enabled = true;
  auto warm_engine = Engine::Build(*data, warm_options);
  ASSERT_TRUE(warm_engine.ok());
  ASSERT_NE((*warm_engine)->cache(), nullptr);

  auto queries = SessionQueries();
  // Two passes through the warm engine: the first populates the cache, the
  // second runs fully hot. Both must match cold standalone execution.
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < queries.size(); ++i) {
      auto cold = (*cold_engine)->Execute(queries[i]);
      auto warm = (*warm_engine)->Execute(queries[i]);
      ASSERT_TRUE(cold.ok());
      ASSERT_TRUE(warm.ok());
      std::string context =
          "backend=" + std::to_string(static_cast<int>(backend)) +
          " threads=" + std::to_string(num_threads) + " pass=" +
          std::to_string(pass) + " query " + std::to_string(i);
      EXPECT_TRUE(
          cold->rules.SameAs(ReferenceLocalizedRules((*cold_engine)->index(),
                                                     queries[i])))
          << context;
      ExpectSameRules(cold->rules, warm->rules, context);
      ExpectSameEffort(cold->stats, warm->stats, context);
      EXPECT_EQ(cold->plan_used, warm->plan_used) << context;
      EXPECT_EQ(cold->decision.chosen, warm->decision.chosen) << context;
      // Only the SELECT term may be repriced by the cache hint; every
      // other per-plan estimate field is hint-independent.
      for (size_t p = 0; p < cold->decision.estimates.size(); ++p) {
        const auto& ce = cold->decision.estimates[p];
        const auto& we = warm->decision.estimates[p];
        EXPECT_EQ(ce.plan, we.plan) << context;
        EXPECT_DOUBLE_EQ(ce.search, we.search) << context;
        EXPECT_DOUBLE_EQ(ce.eliminate, we.eliminate) << context;
        EXPECT_DOUBLE_EQ(ce.verify, we.verify) << context;
        EXPECT_DOUBLE_EQ(ce.mine, we.mine) << context;
      }
    }
  }

  // The hot pass actually reused state: every query's box is resident by
  // then, so all second-pass acquisitions were exact hits.
  CacheTelemetry t = (*warm_engine)->cache()->telemetry();
  EXPECT_GT(t.hits_exact, 0u);
  EXPECT_GT(t.hits_count_memo, 0u);
}

TEST_P(SessionCacheEquivalenceTest, ForcedPlansMatchColdAcrossAllSix) {
  const auto [backend, num_threads] = GetParam();
  auto data = std::make_unique<Dataset>(RandomDataset(52, 220, 5, 4));

  EngineOptions cold_options;
  cold_options.index.primary_support = 0.2;
  cold_options.calibrate = false;
  cold_options.backend = backend;
  cold_options.num_threads = 1;
  auto cold_engine = Engine::Build(*data, cold_options);
  ASSERT_TRUE(cold_engine.ok());

  EngineOptions warm_options = cold_options;
  warm_options.num_threads = num_threads;
  warm_options.cache.enabled = true;
  auto warm_engine = Engine::Build(*data, warm_options);
  ASSERT_TRUE(warm_engine.ok());

  LocalizedQuery outer;
  outer.ranges = {{0, 0, 2}};
  outer.minsupp = 0.35;
  outer.minconf = 0.6;
  LocalizedQuery inner = outer;
  inner.ranges = {{0, 0, 1}};
  inner.minsupp = 0.45;

  for (int pass = 0; pass < 2; ++pass) {
    for (const LocalizedQuery& query : {outer, inner}) {
      for (PlanKind kind : kAllPlans) {
        auto cold = (*cold_engine)->ExecuteWithPlan(query, kind);
        auto warm = (*warm_engine)->ExecuteWithPlan(query, kind);
        ASSERT_TRUE(cold.ok());
        ASSERT_TRUE(warm.ok());
        std::string context = std::string("plan ") + PlanKindName(kind) +
                              " threads=" + std::to_string(num_threads) +
                              " pass=" + std::to_string(pass);
        ExpectSameRules(cold->rules, warm->rules, context);
        ExpectSameEffort(cold->stats, warm->stats, context);
      }
    }
  }
}

// Constrained queries through the session cache: a warm engine replaying a
// constrained exploration session (CONTAIN / EXCLUDE / pinned attributes /
// measure floors over shared and repeated boxes) answers byte-identically
// to a cold cache-less engine, on both backends at every pool size.
TEST_P(SessionCacheEquivalenceTest, ConstrainedSessionMatchesCold) {
  const auto [backend, num_threads] = GetParam();
  auto data = std::make_unique<Dataset>(RandomDataset(54, 240, 5, 4));
  const Schema& schema = data->schema();

  EngineOptions cold_options;
  cold_options.index.primary_support = 0.2;
  cold_options.calibrate = false;
  cold_options.backend = backend;
  cold_options.num_threads = 1;
  auto cold_engine = Engine::Build(*data, cold_options);
  ASSERT_TRUE(cold_engine.ok());

  EngineOptions warm_options = cold_options;
  warm_options.num_threads = num_threads;
  warm_options.cache.enabled = true;
  auto warm_engine = Engine::Build(*data, warm_options);
  ASSERT_TRUE(warm_engine.ok());

  // One box explored under shifting constraint sets — the interactive
  // loop's canonical shape — plus an unconstrained baseline of the same
  // box so every cache tier (exact, containment, memo) gets exercised
  // across the constraint-key boundary.
  LocalizedQuery base;
  base.ranges = {{0, 0, 2}};
  base.minsupp = 0.3;
  base.minconf = 0.5;
  std::vector<LocalizedQuery> queries = {base};
  LocalizedQuery contain = base;
  contain.constraints.must_contain = {schema.ItemOf(1, 0)};
  queries.push_back(contain);
  LocalizedQuery exclude = base;
  exclude.constraints.must_exclude = {schema.ItemOf(2, 1)};
  queries.push_back(exclude);
  LocalizedQuery pinned = base;
  pinned.constraints.antecedent_only = {3};
  queries.push_back(pinned);
  LocalizedQuery measured = base;
  measured.constraints.min_lift = 1.0;
  measured.constraints.min_cosine = 0.3;
  queries.push_back(measured);
  LocalizedQuery drill = contain;  // contained box, same constraint set
  drill.ranges = {{0, 0, 1}};
  drill.minsupp = 0.35;
  queries.push_back(drill);
  queries.push_back(contain);  // exact repeat of a constrained query

  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < queries.size(); ++i) {
      auto cold = (*cold_engine)->Execute(queries[i]);
      auto warm = (*warm_engine)->Execute(queries[i]);
      ASSERT_TRUE(cold.ok());
      ASSERT_TRUE(warm.ok());
      std::string context =
          "backend=" + std::to_string(static_cast<int>(backend)) +
          " threads=" + std::to_string(num_threads) + " pass=" +
          std::to_string(pass) + " constrained query " + std::to_string(i);
      ExpectSameRules(cold->rules, warm->rules, context);
      ExpectSameEffort(cold->stats, warm->stats, context);
      EXPECT_EQ(cold->plan_used, warm->plan_used) << context;
    }
  }
  CacheTelemetry t = (*warm_engine)->cache()->telemetry();
  EXPECT_GT(t.hits_exact, 0u);
}

// Tier 2.5 end to end: an overlap-shaped session — adjacent slices later
// recombined (union), a wide region plus a slab later trimmed
// (difference) — answers byte-identically to a cold cache-less engine,
// and the optimizer's plan choice is untouched by composition repricing.
TEST_P(SessionCacheEquivalenceTest, OverlapSessionMatchesCold) {
  const auto [backend, num_threads] = GetParam();
  auto data = std::make_unique<Dataset>(RandomDataset(56, 260, 5, 4));

  EngineOptions cold_options;
  cold_options.index.primary_support = 0.2;
  cold_options.calibrate = false;
  cold_options.backend = backend;
  cold_options.num_threads = 1;
  auto cold_engine = Engine::Build(*data, cold_options);
  ASSERT_TRUE(cold_engine.ok());

  EngineOptions warm_options = cold_options;
  warm_options.num_threads = num_threads;
  warm_options.cache.enabled = true;
  auto warm_engine = Engine::Build(*data, warm_options);
  ASSERT_TRUE(warm_engine.ok());

  auto make = [](std::vector<RangeSelection> ranges, double minsupp) {
    LocalizedQuery query;
    query.ranges = std::move(ranges);
    query.minsupp = minsupp;
    query.minconf = 0.5;
    return query;
  };
  const std::vector<LocalizedQuery> queries = {
      make({{0, 0, 1}}, 0.35),          // left slice
      make({{0, 2, 2}}, 0.4),           // right slice
      make({{0, 0, 2}}, 0.3),           // their union: tier-2.5 kUnion
      make({{1, 0, 2}}, 0.3),           // wide region
      make({{1, 2, 2}}, 0.4),           // slab carved out of it
      make({{1, 0, 1}}, 0.35),          // wide minus slab: difference or
                                        // filter, whichever prices lower
      make({{0, 0, 2}}, 0.45),          // union box again: exact + memo
  };

  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < queries.size(); ++i) {
      auto cold = (*cold_engine)->Execute(queries[i]);
      auto warm = (*warm_engine)->Execute(queries[i]);
      ASSERT_TRUE(cold.ok());
      ASSERT_TRUE(warm.ok());
      std::string context =
          "backend=" + std::to_string(static_cast<int>(backend)) +
          " threads=" + std::to_string(num_threads) + " pass=" +
          std::to_string(pass) + " overlap query " + std::to_string(i);
      ExpectSameRules(cold->rules, warm->rules, context);
      ExpectSameEffort(cold->stats, warm->stats, context);
      EXPECT_EQ(cold->plan_used, warm->plan_used) << context;
      EXPECT_EQ(cold->decision.chosen, warm->decision.chosen) << context;
    }
  }
  // The union query genuinely composed (the slices tile its box and the
  // dataset has records outside it, so the gate prices the combine under
  // the cold scan).
  CacheTelemetry t = (*warm_engine)->cache()->telemetry();
  EXPECT_GT(t.hits_compose, 0u);
}

// Persisted warm start end to end: populate a cache, save it (format v4),
// load it into a *fresh* engine, and replay — every answer byte-identical
// to a cold cache-less engine, with the restored residency serving exact
// hits from the first query on.
TEST_P(SessionCacheEquivalenceTest, PersistedWarmMatchesCold) {
  const auto [backend, num_threads] = GetParam();
  auto data = std::make_unique<Dataset>(RandomDataset(57, 240, 5, 4));
  const std::string path = ::testing::TempDir() + "/session_warm_" +
                           std::to_string(static_cast<int>(backend)) + "_" +
                           std::to_string(num_threads) + ".ccache";

  EngineOptions cold_options;
  cold_options.index.primary_support = 0.2;
  cold_options.calibrate = false;
  cold_options.backend = backend;
  cold_options.num_threads = 1;
  auto cold_engine = Engine::Build(*data, cold_options);
  ASSERT_TRUE(cold_engine.ok());

  EngineOptions warm_options = cold_options;
  warm_options.num_threads = num_threads;
  warm_options.cache.enabled = true;
  auto queries = SessionQueries();
  {
    auto first_session = Engine::Build(*data, warm_options);
    ASSERT_TRUE(first_session.ok());
    for (const LocalizedQuery& query : queries) {
      ASSERT_TRUE((*first_session)->Execute(query).ok());
    }
    ASSERT_TRUE(SaveQueryCache(*(*first_session)->cache(),
                               (*first_session)->index(), path)
                    .ok());
  }

  auto restarted = Engine::Build(*data, warm_options);
  ASSERT_TRUE(restarted.ok());
  Status loaded = LoadQueryCache((*restarted)->index(), path,
                                 (*restarted)->cache());
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();

  for (size_t i = 0; i < queries.size(); ++i) {
    auto cold = (*cold_engine)->Execute(queries[i]);
    auto warm = (*restarted)->Execute(queries[i]);
    ASSERT_TRUE(cold.ok());
    ASSERT_TRUE(warm.ok());
    std::string context =
        "backend=" + std::to_string(static_cast<int>(backend)) +
        " threads=" + std::to_string(num_threads) + " restarted query " +
        std::to_string(i);
    ExpectSameRules(cold->rules, warm->rules, context);
    ExpectSameEffort(cold->stats, warm->stats, context);
    EXPECT_EQ(cold->plan_used, warm->plan_used) << context;
    EXPECT_EQ(cold->decision.chosen, warm->decision.chosen) << context;
  }
  // The restored residency served the replay warm, not cold.
  CacheTelemetry t = (*restarted)->cache()->telemetry();
  EXPECT_GT(t.hits_exact, 0u);
  EXPECT_GT(t.hits_count_memo, 0u);
  std::remove(path.c_str());
}

// ARM mining memo: a repeated ARM-plan execution replays its qualified
// set from the tier-3 memo instead of re-running CHARM/FP-growth — with
// byte-identical rules and effort counters — both in-session and across a
// v4 save/load restart.
TEST_P(SessionCacheEquivalenceTest, ArmMineMemoReplayMatchesCold) {
  const auto [backend, num_threads] = GetParam();
  auto data = std::make_unique<Dataset>(RandomDataset(58, 240, 5, 4));
  const std::string path = ::testing::TempDir() + "/arm_memo_" +
                           std::to_string(static_cast<int>(backend)) + "_" +
                           std::to_string(num_threads) + ".ccache";

  EngineOptions cold_options;
  cold_options.index.primary_support = 0.2;
  cold_options.calibrate = false;
  cold_options.backend = backend;
  cold_options.num_threads = 1;
  auto cold_engine = Engine::Build(*data, cold_options);
  ASSERT_TRUE(cold_engine.ok());

  EngineOptions warm_options = cold_options;
  warm_options.num_threads = num_threads;
  warm_options.cache.enabled = true;
  auto warm_engine = Engine::Build(*data, warm_options);
  ASSERT_TRUE(warm_engine.ok());

  LocalizedQuery query;
  query.ranges = {{0, 0, 2}};
  query.minsupp = 0.35;
  query.minconf = 0.6;

  auto cold = (*cold_engine)->ExecuteWithPlan(query, PlanKind::kARM);
  ASSERT_TRUE(cold.ok());
  auto first = (*warm_engine)->ExecuteWithPlan(query, PlanKind::kARM);
  ASSERT_TRUE(first.ok());
  const uint64_t memo_before =
      (*warm_engine)->cache()->telemetry().hits_count_memo;
  auto replay = (*warm_engine)->ExecuteWithPlan(query, PlanKind::kARM);
  ASSERT_TRUE(replay.ok());
  std::string context =
      "backend=" + std::to_string(static_cast<int>(backend)) +
      " threads=" + std::to_string(num_threads);
  // The second run served the mining result from the memo...
  EXPECT_GT((*warm_engine)->cache()->telemetry().hits_count_memo,
            memo_before)
      << context;
  // ...and stayed byte-identical to cold execution.
  ExpectSameRules(cold->rules, replay->rules, context);
  ExpectSameEffort(cold->stats, replay->stats, context);

  // The ARM memo survives persistence: a restarted engine replays the
  // mining result on its *first* execution of the query.
  ASSERT_TRUE(SaveQueryCache(*(*warm_engine)->cache(),
                             (*warm_engine)->index(), path)
                  .ok());
  auto restarted = Engine::Build(*data, warm_options);
  ASSERT_TRUE(restarted.ok());
  ASSERT_TRUE(
      LoadQueryCache((*restarted)->index(), path, (*restarted)->cache())
          .ok());
  auto warm_restart = (*restarted)->ExecuteWithPlan(query, PlanKind::kARM);
  ASSERT_TRUE(warm_restart.ok());
  EXPECT_GT((*restarted)->cache()->telemetry().hits_count_memo, 0u)
      << context;
  ExpectSameRules(cold->rules, warm_restart->rules, context);
  ExpectSameEffort(cold->stats, warm_restart->stats, context);
  std::remove(path.c_str());
}

// Count-memo isolation: memo entries are namespaced by the constraint
// cache key, so a query must never consume memos written under a
// different constraint set for the same box — and must hit its own.
TEST(SessionCacheEquivalenceTest, MemoEntriesNeverLeakAcrossConstraintKeys) {
  auto data = std::make_unique<Dataset>(RandomDataset(55, 240, 5, 4));
  const Schema& schema = data->schema();

  EngineOptions options;
  options.index.primary_support = 0.2;
  options.calibrate = false;
  options.num_threads = 1;
  options.cache.enabled = true;
  auto engine = Engine::Build(*data, options);
  ASSERT_TRUE(engine.ok());
  QueryCache* cache = (*engine)->cache();
  ASSERT_NE(cache, nullptr);
  ASSERT_TRUE(cache->options().count_memo);

  LocalizedQuery plain;
  plain.ranges = {{0, 0, 2}};
  plain.minsupp = 0.3;
  plain.minconf = 0.5;
  LocalizedQuery constrained = plain;
  constrained.constraints.must_contain = {schema.ItemOf(1, 0)};
  LocalizedQuery other = plain;
  other.constraints.must_exclude = {schema.ItemOf(2, 1)};

  // Populate memos under the unconstrained ("") key.
  ASSERT_TRUE((*engine)->Execute(plain).ok());
  const uint64_t after_plain = cache->telemetry().hits_count_memo;

  // Same box, different constraint keys: neither run may consume the
  // unconstrained memos (or each other's).
  ASSERT_TRUE((*engine)->Execute(constrained).ok());
  EXPECT_EQ(cache->telemetry().hits_count_memo, after_plain)
      << "constrained query consumed unconstrained count memos";
  ASSERT_TRUE((*engine)->Execute(other).ok());
  EXPECT_EQ(cache->telemetry().hits_count_memo, after_plain)
      << "EXCLUDE query consumed a foreign constraint key's memos";

  // Replaying each query hits its OWN namespace.
  ASSERT_TRUE((*engine)->Execute(plain).ok());
  const uint64_t plain_hot = cache->telemetry().hits_count_memo;
  EXPECT_GT(plain_hot, after_plain);
  ASSERT_TRUE((*engine)->Execute(constrained).ok());
  const uint64_t constrained_hot = cache->telemetry().hits_count_memo;
  EXPECT_GT(constrained_hot, plain_hot)
      << "constrained replay missed its own memo namespace";
}

INSTANTIATE_TEST_SUITE_P(
    BackendsAndThreads, SessionCacheEquivalenceTest,
    ::testing::Combine(::testing::Values(ExecBackend::kScalar,
                                         ExecBackend::kBitmap),
                       ::testing::Values(1u, 2u, 8u)));

// Default options build no cache at all: behaviour (including telemetry
// fields) is exactly the cache-less engine's.
TEST(SessionCacheEquivalenceTest, DefaultOptionsStayCacheless) {
  auto data = std::make_unique<Dataset>(RandomDataset(53, 200, 4, 4));
  EngineOptions options;
  options.index.primary_support = 0.2;
  options.calibrate = false;
  auto engine = Engine::Build(*data, options);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->cache(), nullptr);
  LocalizedQuery query;
  query.ranges = {{0, 0, 1}};
  query.minsupp = 0.4;
  query.minconf = 0.6;
  auto result = (*engine)->Execute(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cache.misses, 0u);
  EXPECT_EQ(result->cache.hits_exact, 0u);
  EXPECT_EQ(result->cache.bytes, 0u);
  EXPECT_EQ(result->decision.cache.tier, CacheTier::kNone);
}

}  // namespace
}  // namespace colarm
