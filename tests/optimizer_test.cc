#include <gtest/gtest.h>

#include <memory>

#include "core/engine.h"
#include "data/synthetic.h"
#include "test_util.h"

namespace colarm {
namespace {

using testing_util::RandomDataset;

std::unique_ptr<Engine> BuildEngine(const Dataset& data, double primary) {
  EngineOptions options;
  options.index.primary_support = primary;
  options.calibrate = false;  // deterministic defaults for tests
  auto engine = Engine::Build(data, options);
  EXPECT_TRUE(engine.ok());
  return std::move(engine.value());
}

TEST(OptimizerTest, ChoosesMinimumEstimate) {
  auto data = std::make_unique<Dataset>(RandomDataset(1, 250, 5, 4));
  auto engine = BuildEngine(*data, 0.2);
  LocalizedQuery query;
  query.ranges = {{0, 0, 1}};
  query.minsupp = 0.5;
  query.minconf = 0.8;
  OptimizerDecision decision = engine->optimizer().Choose(query);
  for (const PlanCostEstimate& est : decision.estimates) {
    EXPECT_GE(est.total, decision.chosen_estimate().total);
  }
}

TEST(OptimizerTest, EstimatesCoverAllSixPlans) {
  auto data = std::make_unique<Dataset>(RandomDataset(2, 200, 4, 3));
  auto engine = BuildEngine(*data, 0.25);
  LocalizedQuery query;
  query.minsupp = 0.5;
  query.minconf = 0.8;
  OptimizerDecision decision = engine->optimizer().Choose(query);
  std::set<PlanKind> seen;
  for (const PlanCostEstimate& est : decision.estimates) seen.insert(est.plan);
  EXPECT_EQ(seen.size(), 6u);
}

// The headline claim (Section 5.1): the optimizer picks the genuinely
// fastest plan in the overwhelming majority of scenarios; when it misses,
// the chosen plan must not be catastrophically worse. We assert a relaxed
// regret bound rather than the paper's 93% hit rate because wall-clock
// rankings on a tiny CI dataset are noisy.
TEST(OptimizerTest, LowRegretAgainstMeasuredBestPlan) {
  auto data = std::make_unique<Dataset>(
      GenerateSynthetic(ChessLikeConfig(0.1)).value());
  EngineOptions options;
  options.index.primary_support = 0.55;
  options.calibrate = true;  // use real machine constants for timing match
  auto engine_result = Engine::Build(*data, options);
  ASSERT_TRUE(engine_result.ok());
  auto& engine = *engine_result.value();

  int scenarios = 0;
  double total_regret = 0.0;
  for (ValueId lo : {0, 40}) {
    for (ValueId width : {9, 49}) {
      for (double minsupp : {0.75, 0.85}) {
        LocalizedQuery query;
        query.ranges = {{0, lo, static_cast<ValueId>(lo + width)}};
        query.minsupp = minsupp;
        query.minconf = 0.85;

        // Measure all plans (best of 2 runs each to damp noise).
        double best_ms = 1e100;
        double chosen_ms = 1e100;
        PlanKind chosen = engine.Explain(query).value().chosen;
        for (PlanKind kind : kAllPlans) {
          double ms = 1e100;
          for (int rep = 0; rep < 2; ++rep) {
            auto result = engine.ExecuteWithPlan(query, kind);
            ASSERT_TRUE(result.ok());
            ms = std::min(ms, result->stats.total_ms);
          }
          best_ms = std::min(best_ms, ms);
          if (kind == chosen) chosen_ms = ms;
        }
        ++scenarios;
        total_regret += (chosen_ms - best_ms) / std::max(best_ms, 1e-6);
      }
    }
  }
  // Average regret across scenarios must be small: the optimizer's picks
  // track the fastest plan.
  EXPECT_LT(total_regret / scenarios, 3.0);
}

TEST(OptimizerTest, ArmBecomesAttractiveForTinyIndexes) {
  // With a near-empty MIP-index the index-based plans have little to offer;
  // the estimates must not make ARM absurdly expensive relative to them.
  auto data = std::make_unique<Dataset>(RandomDataset(3, 100, 4, 3));
  auto engine = BuildEngine(*data, 0.95);
  LocalizedQuery query;
  query.ranges = {{0, 0, 0}};
  query.minsupp = 0.4;
  query.minconf = 0.6;
  OptimizerDecision decision = engine->optimizer().Choose(query);
  double arm = decision.estimates[static_cast<size_t>(PlanKind::kARM)].total;
  double sev = decision.estimates[static_cast<size_t>(PlanKind::kSEV)].total;
  EXPECT_LT(arm, sev * 1000.0);
}

// SELECT is plan-uniform and additive, so a cache hint reprices every
// plan's total by the same amount: the chosen plan never changes, only the
// SELECT term shrinks and the provenance field records the tier.
TEST(OptimizerTest, CacheHintNeverChangesChosenPlan) {
  auto data = std::make_unique<Dataset>(RandomDataset(4, 250, 5, 4));
  auto engine = BuildEngine(*data, 0.2);
  for (uint64_t q = 0; q < 6; ++q) {
    LocalizedQuery query;
    query.ranges = {{static_cast<AttrId>(q % 5), 0,
                     static_cast<ValueId>(1 + q % 3)}};
    query.minsupp = 0.3 + 0.05 * static_cast<double>(q);
    query.minconf = 0.6;
    OptimizerDecision cold = engine->optimizer().Choose(query);

    CacheHint exact;
    exact.tier = CacheTier::kExact;
    exact.cached_size = cold.estimates[0].est_subset_size;
    OptimizerDecision warm = engine->optimizer().Choose(query, &exact);
    EXPECT_EQ(warm.chosen, cold.chosen) << "query " << q;
    EXPECT_EQ(warm.cache.tier, CacheTier::kExact);
    EXPECT_EQ(warm.cache.cached_size, exact.cached_size);

    CacheHint contain;
    contain.tier = CacheTier::kContainment;
    contain.cached_size = cold.estimates[0].est_subset_size * 2.0;
    contain.delta_attrs = 1;
    OptimizerDecision derived = engine->optimizer().Choose(query, &contain);
    EXPECT_EQ(derived.chosen, cold.chosen) << "query " << q;
    EXPECT_EQ(derived.cache.tier, CacheTier::kContainment);

    // Tier 2.5: a multi-source composition reprices SELECT by the summed
    // run length plus the residual filter — still plan-uniform, so the
    // choice cannot move.
    CacheHint compose;
    compose.tier = CacheTier::kCompose;
    compose.cached_size = cold.estimates[0].est_subset_size * 2.5;
    compose.delta_attrs = 1;
    compose.compose_sources = 3;
    OptimizerDecision composed = engine->optimizer().Choose(query, &compose);
    EXPECT_EQ(composed.chosen, cold.chosen) << "query " << q;
    EXPECT_EQ(composed.cache.tier, CacheTier::kCompose);
    EXPECT_EQ(composed.cache.compose_sources, 3u);

    for (size_t p = 0; p < cold.estimates.size(); ++p) {
      // A small cached subset beats the relation scan in the estimate...
      EXPECT_LE(warm.estimates[p].select, cold.estimates[p].select)
          << "query " << q;
      // ...and the repricing leaves all other terms untouched.
      EXPECT_DOUBLE_EQ(warm.estimates[p].search, cold.estimates[p].search);
      EXPECT_DOUBLE_EQ(warm.estimates[p].eliminate,
                       cold.estimates[p].eliminate);
      EXPECT_DOUBLE_EQ(warm.estimates[p].verify, cold.estimates[p].verify);
      EXPECT_DOUBLE_EQ(warm.estimates[p].mine, cold.estimates[p].mine);
      EXPECT_DOUBLE_EQ(composed.estimates[p].search,
                       cold.estimates[p].search);
      EXPECT_DOUBLE_EQ(composed.estimates[p].eliminate,
                       cold.estimates[p].eliminate);
      EXPECT_DOUBLE_EQ(composed.estimates[p].verify,
                       cold.estimates[p].verify);
      EXPECT_DOUBLE_EQ(composed.estimates[p].mine, cold.estimates[p].mine);
    }
  }
}

TEST(OptimizerTest, NullHintMatchesNoHint) {
  auto data = std::make_unique<Dataset>(RandomDataset(5, 200, 4, 3));
  auto engine = BuildEngine(*data, 0.25);
  LocalizedQuery query;
  query.ranges = {{0, 0, 1}};
  query.minsupp = 0.4;
  query.minconf = 0.7;
  OptimizerDecision plain = engine->optimizer().Choose(query);
  OptimizerDecision with_null = engine->optimizer().Choose(query, nullptr);
  CacheHint none;  // tier kNone behaves exactly like no hint
  OptimizerDecision with_none = engine->optimizer().Choose(query, &none);
  EXPECT_EQ(plain.chosen, with_null.chosen);
  EXPECT_EQ(plain.chosen, with_none.chosen);
  for (size_t p = 0; p < plain.estimates.size(); ++p) {
    EXPECT_DOUBLE_EQ(plain.estimates[p].total, with_null.estimates[p].total);
    EXPECT_DOUBLE_EQ(plain.estimates[p].total, with_none.estimates[p].total);
    EXPECT_DOUBLE_EQ(plain.estimates[p].select,
                     with_none.estimates[p].select);
  }
  EXPECT_EQ(with_none.cache.tier, CacheTier::kNone);
}

}  // namespace
}  // namespace colarm
