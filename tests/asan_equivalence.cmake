# Configures an address-sanitized build of the tree in BUILD_DIR, builds
# the backend-equivalence suite, and runs it. Driven by the
# `asan_equivalence` ctest entry (see tests/CMakeLists.txt); a failure at
# any step fails the test. Expects SOURCE_DIR and BUILD_DIR.

foreach(var SOURCE_DIR BUILD_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "asan_equivalence.cmake requires -D${var}=...")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BUILD_DIR}
          -DCOLARM_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
  RESULT_VARIABLE configure_result)
if(NOT configure_result EQUAL 0)
  message(FATAL_ERROR "ASan configure failed")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BUILD_DIR} --parallel
          --target bitmap_test kernels_test backend_equivalence_test
                  constraint_test query_cache_test cache_persist_test
  RESULT_VARIABLE build_result)
if(NOT build_result EQUAL 0)
  message(FATAL_ERROR "ASan build failed")
endif()

# Default dispatch (host-best kernels) plus a forced-scalar pass: the
# scalar table is the reference every other level is compared against, so
# it gets the same memory-safety gate as the vector paths.
foreach(level "" scalar)
  foreach(test bitmap_test kernels_test backend_equivalence_test
                 constraint_test query_cache_test cache_persist_test)
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E env COLARM_SIMD=${level}
              ${BUILD_DIR}/tests/${test}
      RESULT_VARIABLE run_result)
    if(NOT run_result EQUAL 0)
      message(FATAL_ERROR
              "${test} failed under AddressSanitizer (COLARM_SIMD='${level}')")
    endif()
  endforeach()
endforeach()
