#include <gtest/gtest.h>

#include <memory>

#include "core/engine.h"
#include "data/synthetic.h"

namespace colarm {
namespace {

// End-to-end Simpson's-paradox study on a planted dataset (Section 5.3 of
// the paper): rules that are locally dominant must be discovered by
// localized queries while being invisible at the same thresholds globally.
class SimpsonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig config;
    config.seed = 4242;
    config.num_records = 4000;
    config.num_attributes = 8;
    config.values_per_attribute = 4;
    config.region_domain = 20;
    config.dominant_prob = 0.9;
    config.group_coherence = 0.0;
    config.noise = 0.0;
    // Regions 0..2 flip attributes 3 and 4 to value 2 with high strength.
    config.local_patterns = {{0, 2, {3, 4}, 2, 0.95}};
    data_ = std::make_unique<Dataset>(GenerateSynthetic(config).value());

    EngineOptions options;
    options.index.primary_support = 0.05;  // low primary captures local CFIs
    options.calibrate = false;
    auto engine = Engine::Build(*data_, options);
    ASSERT_TRUE(engine.ok());
    engine_ = std::move(engine.value());
  }

  LocalizedQuery LocalQuery() const {
    LocalizedQuery query;
    query.ranges = {{0, 0, 2}};  // the planted region
    query.item_attrs = {3, 4};
    query.minsupp = 0.8;
    query.minconf = 0.8;
    return query;
  }

  std::unique_ptr<Dataset> data_;
  std::unique_ptr<Engine> engine_;
};

TEST_F(SimpsonTest, LocalizedRuleFoundInRegion) {
  auto result = engine_->Execute(LocalQuery());
  ASSERT_TRUE(result.ok());
  const Schema& schema = data_->schema();
  // Expected localized rule: a3=v2 <=> a4=v2 within the region.
  bool found = false;
  for (const Rule& rule : result->rules.rules) {
    if (rule.antecedent == Itemset{schema.ItemOf(3, 2)} &&
        rule.consequent == Itemset{schema.ItemOf(4, 2)}) {
      found = true;
      EXPECT_GE(rule.support(), 0.8);
      EXPECT_GE(rule.confidence(), 0.8);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(SimpsonTest, SameRuleHiddenGlobally) {
  // Run the same thresholds over the FULL dataset: the planted pattern
  // covers ~15% of records, far below the 80% minsupport.
  LocalizedQuery global = LocalQuery();
  global.ranges.clear();
  auto result = engine_->Execute(global);
  ASSERT_TRUE(result.ok());
  const Schema& schema = data_->schema();
  for (const Rule& rule : result->rules.rules) {
    EXPECT_FALSE(rule.antecedent == Itemset{schema.ItemOf(3, 2)} &&
                 rule.consequent == Itemset{schema.ItemOf(4, 2)})
        << "planted local rule leaked into the global result";
  }
}

TEST_F(SimpsonTest, FreshLocalItemsetsQuantified) {
  // Count qualified local CFIs that fail the same support check globally —
  // the paper's "fresh local vs repeated global" measure (Figure 13).
  auto result = engine_->Execute(LocalQuery());
  ASSERT_TRUE(result.ok());
  const uint32_t m = data_->num_records();
  uint32_t fresh = 0;
  uint32_t repeated = 0;
  std::set<Itemset> seen;
  for (const Rule& rule : result->rules.rules) {
    Itemset itemset = ItemsetUnion(rule.antecedent, rule.consequent);
    if (!seen.insert(itemset).second) continue;
    uint32_t global_count = engine_->index().GlobalCount(itemset);
    double global_frac = static_cast<double>(global_count) / m;
    if (global_frac < 0.8) {
      ++fresh;
    } else {
      ++repeated;
    }
  }
  EXPECT_GT(fresh, 0u);  // strong Simpson's paradox evidence
  (void)repeated;
}

TEST_F(SimpsonTest, GlobalRuleWeakenedInRegion) {
  // Globally, a3=v0 dominates; inside the planted region it does not.
  const Schema& schema = data_->schema();
  uint32_t global_v0 = 0;
  uint32_t region_records = 0;
  uint32_t region_v0 = 0;
  for (Tid t = 0; t < data_->num_records(); ++t) {
    bool v0 = data_->Value(t, 3) == 0;
    if (v0) ++global_v0;
    if (data_->Value(t, 0) <= 2) {
      ++region_records;
      if (v0) ++region_v0;
    }
  }
  double global_frac = static_cast<double>(global_v0) / data_->num_records();
  double region_frac = static_cast<double>(region_v0) / region_records;
  EXPECT_GT(global_frac, 0.7);
  EXPECT_LT(region_frac, 0.2);
  (void)schema;
}

}  // namespace
}  // namespace colarm
