#include <gtest/gtest.h>

#include "data/salary_dataset.h"
#include "mining/vertical.h"
#include "test_util.h"

namespace colarm {
namespace {

using testing_util::RandomDataset;

TEST(VerticalViewTest, TidsetsPartitionEachAttribute) {
  Dataset data = RandomDataset(1, 120, 4, 3);
  VerticalView vertical(data);
  EXPECT_EQ(vertical.num_items(), data.schema().num_items());
  EXPECT_EQ(vertical.num_records(), data.num_records());
  // Per attribute, the item tidsets partition all records.
  for (AttrId a = 0; a < data.num_attributes(); ++a) {
    size_t total = 0;
    for (ValueId v = 0; v < data.schema().attribute(a).domain_size(); ++v) {
      total += vertical.tidset(data.schema().ItemOf(a, v)).size();
    }
    EXPECT_EQ(total, data.num_records());
  }
}

TEST(VerticalViewTest, TidsetsAreSortedAndExact) {
  Dataset data = RandomDataset(2, 80, 3, 3);
  VerticalView vertical(data);
  for (ItemId item = 0; item < vertical.num_items(); ++item) {
    const Tidset& tids = vertical.tidset(item);
    EXPECT_TRUE(std::is_sorted(tids.begin(), tids.end()));
    for (Tid t : tids) {
      EXPECT_TRUE(data.ContainsItem(t, item));
    }
    EXPECT_EQ(vertical.support(item), tids.size());
  }
}

TEST(VerticalViewTest, SubsetViewKeepsOriginalTids) {
  Dataset data = MakeSalaryDataset();
  std::vector<Tid> subset = {7, 8, 9, 10};  // Seattle females
  VerticalView vertical(data, subset);
  EXPECT_EQ(vertical.num_records(), 4u);
  const Schema& schema = data.schema();
  // Gender=F holds for all four subset records.
  EXPECT_EQ(vertical.tidset(schema.ItemOf(3, 1)), (Tidset{7, 8, 9, 10}));
  // Age=30-40 holds for records 7, 8, 9.
  EXPECT_EQ(vertical.tidset(schema.ItemOf(4, 1)), (Tidset{7, 8, 9}));
  // Location=Boston never occurs inside the subset.
  EXPECT_TRUE(vertical.tidset(schema.ItemOf(2, 0)).empty());
}

TEST(VerticalViewTest, EmptySubset) {
  Dataset data = MakeSalaryDataset();
  VerticalView vertical(data, std::span<const Tid>{});
  EXPECT_EQ(vertical.num_records(), 0u);
  for (ItemId item = 0; item < vertical.num_items(); ++item) {
    EXPECT_TRUE(vertical.tidset(item).empty());
  }
}

}  // namespace
}  // namespace colarm
