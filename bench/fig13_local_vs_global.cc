// Figure 13 analog: for each dataset and focal subset size, how many of
// the qualified closed frequent itemsets are *fresh local* discoveries
// (their global support fraction is below the query minsupport — they
// would be missed by any global run at the same threshold) versus
// *repeated global* itemsets. Paper shape: the majority of qualified CFIs
// in localized queries are fresh local ones — Simpson's-paradox evidence.
#include <cstdio>

#include "harness.h"
#include "plans/operators.h"

namespace colarm {
namespace bench {
namespace {

struct Split {
  uint64_t fresh = 0;
  uint64_t repeated = 0;
};

Split CountSplit(const Engine& engine, const LocalizedQuery& query) {
  Split split;
  PlanContext ctx(engine.index(), query, RuleGenOptions{});
  if (ctx.subset.size() == 0) return split;
  CandidateSet cands = OpSupportedSearch(&ctx);
  std::vector<uint32_t> all = cands.contained;
  all.insert(all.end(), cands.overlapped.begin(), cands.overlapped.end());
  auto qualified = OpEliminate(&ctx, all);
  const uint32_t m = engine.index().dataset().num_records();
  const uint32_t global_min = MinCount(query.minsupp, m);
  for (const QualifiedItemset& q : qualified) {
    if (engine.index().mip(q.mip_id).global_count < global_min) {
      ++split.fresh;
    } else {
      ++split.repeated;
    }
  }
  return split;
}

void Run() {
  std::printf(
      "Figure 13 analog: fresh-local vs repeated-global qualified CFIs\n"
      "(fresh = local support clears minsupp but global support does "
      "not)\n\n");
  BenchDataset datasets[] = {MakeChess(), MakeMushroom(), MakePumsb()};
  for (const BenchDataset& dataset : datasets) {
    auto engine = BuildEngine(dataset);
    const double minsupp = dataset.minsupps.front();
    std::printf("%s (minsupp=%s, minconf=%s):\n", dataset.name.c_str(),
                FractionLabel(minsupp).c_str(),
                FractionLabel(dataset.minconf).c_str());
    std::printf("  %-8s %14s %18s\n", "DQ", "fresh-local",
                "repeated-global");
    for (double dq : {0.01, 0.1, 0.2, 0.5}) {
      Split total;
      auto queries = MakeQueries(*dataset.data, dq, minsupp, dataset.minconf,
                                 /*placements=*/3);
      for (const LocalizedQuery& query : queries) {
        Split s = CountSplit(*engine, query);
        total.fresh += s.fresh;
        total.repeated += s.repeated;
      }
      std::printf("  %-8s %14.1f %18.1f\n", FractionLabel(dq).c_str(),
                  static_cast<double>(total.fresh) / queries.size(),
                  static_cast<double>(total.repeated) / queries.size());
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace colarm

int main() {
  colarm::bench::Run();
  return 0;
}
