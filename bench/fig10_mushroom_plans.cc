// Figure 10 analog: average execution time of the six mining plans on the
// mushroom-like dataset (primary support 5%), varying focal subset size
// and minsupport (70/75/80%) at minconf 85%. Paper shape: same ordering as
// chess, with SS-E-U-V lowest among the index plans.
#include "harness.h"

int main() {
  colarm::bench::RunPlanFigure(colarm::bench::MakeMushroom(),
                               "Figure 10 analog");
  return 0;
}
