// Ablation (beyond the paper's figures): where does the from-scratch ARM
// baseline cross over the MIP-index plans? The paper's testbed put ARM
// behind the index plans throughout chess/mushroom; on our in-memory
// substrate ARM is much stronger, and the crossover moves to query
// minsupports near the primary threshold — when the local lattice ARM must
// re-explore approaches the prestored index size (see EXPERIMENTS.md).
// This bench sweeps the query minsupport from just above the primary
// support upward and reports the index-best plan vs ARM.
#include <cstdio>

#include "harness.h"

namespace colarm {
namespace bench {
namespace {

void Sweep(const BenchDataset& dataset, const std::vector<double>& minsupps) {
  auto engine = BuildEngine(dataset);
  std::printf("%s (primary=%s, %u MIPs), DQ = 50%%:\n", dataset.name.c_str(),
              FractionLabel(dataset.primary_support).c_str(),
              engine->index().num_mips());
  std::printf("  %-9s %12s %12s   %s\n", "minsupp", "best-index(ms)",
              "ARM(ms)", "winner");
  for (double minsupp : minsupps) {
    ScenarioResult r =
        RunScenario(*engine, 0.5, minsupp, dataset.minconf, /*placements=*/1);
    double best_index = r.avg_ms[0];
    for (size_t i = 1; i < 5; ++i) best_index = std::min(best_index, r.avg_ms[i]);
    double arm = r.avg_ms[static_cast<size_t>(PlanKind::kARM)];
    std::printf("  %-9s %12.1f %12.1f   %s\n", FractionLabel(minsupp).c_str(),
                best_index, arm, best_index <= arm ? "MIP-index" : "ARM");
  }
  std::printf("\n");
}

void Run() {
  std::printf("ARM-vs-index crossover ablation (query minsupp sweep, from "
              "near the primary support upward)\n\n");
  Sweep(MakeChess(), {0.62, 0.65, 0.70, 0.75, 0.80, 0.90});
  Sweep(MakePumsb(), {0.82, 0.85, 0.88, 0.91, 0.95});
}

}  // namespace
}  // namespace bench
}  // namespace colarm

int main() {
  colarm::bench::Run();
  return 0;
}
