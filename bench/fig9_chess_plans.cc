// Figure 9 analog: average execution time of the six mining plans on the
// chess-like dataset, varying focal subset size (50/20/10/1% of |D|) and
// minsupport (80/85/90%) at minconf 85%. Paper shape: MIP-index plans beat
// ARM throughout; SS-E-U-V is the best plan; costs fall as DQ shrinks.
#include "harness.h"

int main() {
  colarm::bench::RunPlanFigure(colarm::bench::MakeChess(), "Figure 9 analog");
  return 0;
}
