// fig_constraints — what constraint pushdown buys over post-filtering.
//
// Each scenario runs the same constrained workload two ways over the chess
// analog:
//
//   pushdown     the constraints ride inside the query: CONTAIN seeds the
//                miner's focal subset, EXCLUDE projects the vertical view,
//                ANTECEDENT ATTRIBUTES and the measure floors gate rule
//                generation before materialization
//   post-filter  the unconstrained twin executes in full, then FilterRules
//                applies the same constraint set to the finished rule set
//                (the reference semantics the equivalence tests pin)
//
// The rule sets are identical by construction; this figure measures what
// the pushdown saves — wall time and, more durably, the deterministic
// effort counters (record checks, rules considered, local CFIs) — and
// appends one JSON line per scenario to the bench sink.
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/timer.h"
#include "harness.h"
#include "mining/constraints.h"

namespace colarm {
namespace bench {
namespace {

struct Scenario {
  const char* name;
  RuleConstraints constraints;
};

/// Constraint items come from the workload's own top rule (highest local
/// support in a probe run) so CONTAIN keeps a live sub-lattice and EXCLUDE
/// actually removes one — constraints over items absent from the frequent
/// structure would make both scenarios trivially empty or no-ops.
std::vector<Scenario> MakeScenarios(const Dataset& data,
                                    const RuleSet& probe) {
  const Schema& schema = data.schema();
  ItemId contain_item = schema.ItemOf(1, data.Value(0, 1));
  ItemId exclude_item = schema.ItemOf(2, data.Value(0, 2));
  const Rule* top = nullptr;
  for (const Rule& rule : probe.rules) {
    if (top == nullptr || rule.itemset_count > top->itemset_count) {
      top = &rule;
    }
  }
  if (top != nullptr) {
    contain_item = top->antecedent.front();
    exclude_item = top->consequent.front();
  }

  std::vector<Scenario> out;
  Scenario contain{"contain", {}};
  contain.constraints.must_contain = {contain_item};
  out.push_back(contain);
  Scenario exclude{"exclude", {}};
  exclude.constraints.must_exclude = {exclude_item};
  out.push_back(exclude);
  Scenario pinned{"antecedent-only", {}};
  pinned.constraints.antecedent_only = {schema.AttrOfItem(contain_item)};
  out.push_back(pinned);
  Scenario measures{"measure-floors", {}};
  measures.constraints.min_lift = 1.1;
  measures.constraints.min_kulczynski = 0.6;
  out.push_back(measures);
  return out;
}

struct Side {
  double ms = 0.0;
  uint64_t record_checks = 0;
  uint64_t rules_considered = 0;
  uint64_t local_cfis = 0;
  size_t rules = 0;
};

void Accumulate(Side* side, const PlanStats& stats) {
  side->record_checks += stats.record_checks;
  side->rules_considered += stats.rules_considered;
  side->local_cfis += stats.local_cfis;
}

std::vector<Tid> DqTids(const Dataset& data, const LocalizedQuery& query) {
  std::vector<Tid> tids;
  for (Tid t = 0; t < data.num_records(); ++t) {
    bool inside = true;
    for (const RangeSelection& range : query.ranges) {
      const ValueId v = data.Value(t, range.attr);
      if (v < range.lo || v > range.hi) {
        inside = false;
        break;
      }
    }
    if (inside) tids.push_back(t);
  }
  return tids;
}

void AppendJson(const BenchDataset& dataset, const Engine& engine,
                const char* scenario, size_t queries, const Side& push,
                const Side& post) {
  std::string path = JsonSinkPath();
  if (path.empty()) return;
  std::FILE* out = std::fopen(path.c_str(), "a");
  if (out == nullptr) {
    std::fprintf(stderr, "BENCH json sink %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return;
  }
  std::fprintf(
      out,
      "{\"dataset\":\"%s\",\"figure\":\"constraints\",\"records\":%u,"
      "\"scale\":%g,\"num_threads\":%u,\"backend\":\"%s\","
      "\"scenario\":\"%s\",\"queries\":%zu,\"rules\":%zu,"
      "\"pushdown_ms\":%.3f,\"postfilter_ms\":%.3f,\"speedup\":%.2f,"
      "\"pushdown_effort\":{\"record_checks\":%llu,"
      "\"rules_considered\":%llu,\"local_cfis\":%llu},"
      "\"postfilter_effort\":{\"record_checks\":%llu,"
      "\"rules_considered\":%llu,\"local_cfis\":%llu}}\n",
      dataset.name.c_str(), dataset.data->num_records(), ScaleFromEnv(),
      engine.pool() != nullptr
          ? static_cast<unsigned>(engine.pool()->parallelism())
          : 1u,
      ExecBackendName(engine.options().backend), scenario, queries,
      push.rules, push.ms, post.ms, post.ms / std::max(push.ms, 1e-9),
      static_cast<unsigned long long>(push.record_checks),
      static_cast<unsigned long long>(push.rules_considered),
      static_cast<unsigned long long>(push.local_cfis),
      static_cast<unsigned long long>(post.record_checks),
      static_cast<unsigned long long>(post.rules_considered),
      static_cast<unsigned long long>(post.local_cfis));
  std::fclose(out);
}

int Main() {
  BenchDataset dataset = MakeChess();
  auto engine = BuildEngine(dataset);
  const Dataset& data = *dataset.data;

  // A drill-down workload per scenario: three focal placements at the
  // loosest paper minsupport, where rule volume (and thus the filtering
  // work the pushdown avoids) is largest.
  std::vector<LocalizedQuery> queries = MakeQueries(
      data, 0.2, dataset.minsupps.front(), dataset.minconf, 3);

  auto probe = engine->Execute(queries.front());
  if (!probe.ok()) {
    std::fprintf(stderr, "probe query failed: %s\n",
                 probe.status().ToString().c_str());
    return 1;
  }

  std::printf("constraint pushdown vs post-filter — %s, %zu quer(ies)\n",
              dataset.name.c_str(), queries.size());
  std::printf("%-16s %12s %12s %8s %16s %16s\n", "scenario", "push ms",
              "post ms", "speedup", "rules considered", "(post-filter)");

  for (const Scenario& scenario : MakeScenarios(data, probe->rules)) {
    Side push;
    Side post;
    const int kReps = 3;
    for (int rep = 0; rep < kReps; ++rep) {
      for (const LocalizedQuery& base : queries) {
        LocalizedQuery constrained = base;
        constrained.constraints = scenario.constraints;

        Timer push_timer;
        auto pushed = engine->Execute(constrained);
        if (!pushed.ok()) {
          std::fprintf(stderr, "constrained query failed: %s\n",
                       pushed.status().ToString().c_str());
          return 1;
        }
        push.ms += push_timer.ElapsedMillis();

        // The post-filter client: full unconstrained mine, then apply the
        // constraint set to the finished rules (DQ rescan included — the
        // consequent counts need it).
        Timer post_timer;
        auto plain = engine->Execute(base);
        if (!plain.ok()) {
          std::fprintf(stderr, "unconstrained query failed: %s\n",
                       plain.status().ToString().c_str());
          return 1;
        }
        std::vector<Tid> dq = DqTids(data, base);
        RuleSet filtered =
            FilterRules(data, dq, plain->rules, scenario.constraints);
        post.ms += post_timer.ElapsedMillis();

        if (rep == 0) {
          Accumulate(&push, pushed->stats);
          Accumulate(&post, plain->stats);
          push.rules += pushed->rules.rules.size();
          if (!pushed->rules.SameAs(filtered)) {
            std::fprintf(stderr,
                         "EQUIVALENCE VIOLATION in scenario %s — pushdown "
                         "and post-filter disagree\n",
                         scenario.name);
            return 1;
          }
        }
      }
    }
    push.ms /= kReps;
    post.ms /= kReps;
    std::printf("%-16s %12.3f %12.3f %7.2fx %16llu %16llu\n", scenario.name,
                push.ms, post.ms, post.ms / std::max(push.ms, 1e-9),
                static_cast<unsigned long long>(push.rules_considered),
                static_cast<unsigned long long>(post.rules_considered));
    AppendJson(dataset, *engine, scenario.name, queries.size(), push, post);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace colarm

int main() { return colarm::bench::Main(); }
