// Figure 12 analog: % execution-time gain of each optimized plan over the
// basic S-E-V plan, per dataset and overall, aggregated across the
// Figure 9-11 scenario grid. Paper shape: selection push-up (S-VS) gains
// are minor; plans using the supported R-tree filter (SS-*) gain 8-44%,
// with SS-E-U-V the strongest.
#include <cstdio>

#include "harness.h"

namespace colarm {
namespace bench {
namespace {

struct GainAccumulator {
  double sev_ms = 0.0;
  double plan_ms[6] = {0, 0, 0, 0, 0, 0};

  void Add(const ScenarioResult& r) {
    sev_ms += r.avg_ms[static_cast<size_t>(PlanKind::kSEV)];
    for (size_t i = 0; i < 6; ++i) plan_ms[i] += r.avg_ms[i];
  }

  double GainPercent(PlanKind kind) const {
    if (sev_ms <= 0.0) return 0.0;
    return (sev_ms - plan_ms[static_cast<size_t>(kind)]) / sev_ms * 100.0;
  }
};

constexpr PlanKind kOptimizedPlans[] = {PlanKind::kSVS, PlanKind::kSSEV,
                                        PlanKind::kSSVS, PlanKind::kSSEUV};

void Run() {
  std::printf(
      "Figure 12 analog: %% gain over the basic S-E-V plan (aggregated over "
      "DQ x minsupp grid)\n\n");
  std::printf("  %-14s %10s %10s %10s %10s\n", "dataset", "S-VS", "SS-E-V",
              "SS-VS", "SS-E-U-V");

  GainAccumulator overall;
  BenchDataset datasets[] = {MakeChess(), MakeMushroom(), MakePumsb()};
  for (const BenchDataset& dataset : datasets) {
    auto engine = BuildEngine(dataset);
    GainAccumulator acc;
    for (double dq : kDqFractions) {
      for (double minsupp : dataset.minsupps) {
        ScenarioResult r = RunScenario(*engine, dq, minsupp, dataset.minconf,
                                       /*placements=*/1);
        acc.Add(r);
        overall.Add(r);
      }
    }
    std::printf("  %-14s %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n",
                dataset.name.c_str(), acc.GainPercent(kOptimizedPlans[0]),
                acc.GainPercent(kOptimizedPlans[1]),
                acc.GainPercent(kOptimizedPlans[2]),
                acc.GainPercent(kOptimizedPlans[3]));
  }
  std::printf("  %-14s %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n", "overall",
              overall.GainPercent(kOptimizedPlans[0]),
              overall.GainPercent(kOptimizedPlans[1]),
              overall.GainPercent(kOptimizedPlans[2]),
              overall.GainPercent(kOptimizedPlans[3]));
}

}  // namespace
}  // namespace bench
}  // namespace colarm

int main() {
  colarm::bench::Run();
  return 0;
}
