// Per-kernel, per-ISA throughput of the dispatched bitmap kernels: every
// BitmapKernels entry timed at every SIMD level the host supports, with
// ns/word, effective GB/s, and speedup over the scalar reference. One JSON
// row per (kernel, level, size) goes to the shared bench sink so the
// committed BENCH_plans.json records which ISA produced the plan tables
// next to it. Window sizes cover the L1-resident case the counting plans
// live in and an L2/L3-sized case for the streaming boolean kernels.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bitmap/kernels.h"
#include "common/cpu_features.h"
#include "common/rng.h"
#include "common/timer.h"
#include "harness.h"

namespace colarm {
namespace bench {
namespace {

// Median-of-reps wall time for one kernel invocation, in nanoseconds.
template <typename F>
double TimeNs(F&& fn, int reps = 9) {
  std::vector<double> samples;
  samples.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    fn();
    samples.push_back(static_cast<double>(timer.ElapsedNanos()));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct KernelRow {
  const char* kernel;
  // Bytes moved per word processed (reads + writes), for the GB/s figure.
  double bytes_per_word;
  double (*run)(const BitmapKernels& k, std::vector<uint64_t>& a,
                std::vector<uint64_t>& b, std::vector<uint64_t>& c,
                int iters);
};

uint64_t g_sink = 0;  // defeats dead-code elimination of the count kernels

const KernelRow kRows[] = {
    {"popcount", 8.0,
     [](const BitmapKernels& k, std::vector<uint64_t>& a,
        std::vector<uint64_t>&, std::vector<uint64_t>&, int iters) {
       return TimeNs([&] {
         for (int i = 0; i < iters; ++i) g_sink += k.popcount(a.data(),
                                                             a.size());
       });
     }},
    {"and_count", 16.0,
     [](const BitmapKernels& k, std::vector<uint64_t>& a,
        std::vector<uint64_t>& b, std::vector<uint64_t>&, int iters) {
       return TimeNs([&] {
         for (int i = 0; i < iters; ++i) {
           g_sink += k.and_count(a.data(), b.data(), a.size());
         }
       });
     }},
    {"and3_count", 24.0,
     [](const BitmapKernels& k, std::vector<uint64_t>& a,
        std::vector<uint64_t>& b, std::vector<uint64_t>& c, int iters) {
       return TimeNs([&] {
         for (int i = 0; i < iters; ++i) {
           g_sink += k.and3_count(a.data(), b.data(), c.data(), a.size());
         }
       });
     }},
    {"and_inplace", 24.0,
     [](const BitmapKernels& k, std::vector<uint64_t>& a,
        std::vector<uint64_t>& b, std::vector<uint64_t>&, int iters) {
       return TimeNs([&] {
         for (int i = 0; i < iters; ++i) {
           k.and_inplace(a.data(), b.data(), a.size());
         }
       });
     }},
    {"or_inplace", 24.0,
     [](const BitmapKernels& k, std::vector<uint64_t>& a,
        std::vector<uint64_t>& b, std::vector<uint64_t>&, int iters) {
       return TimeNs([&] {
         for (int i = 0; i < iters; ++i) {
           k.or_inplace(a.data(), b.data(), a.size());
         }
       });
     }},
    {"andnot_inplace", 24.0,
     [](const BitmapKernels& k, std::vector<uint64_t>& a,
        std::vector<uint64_t>& b, std::vector<uint64_t>&, int iters) {
       return TimeNs([&] {
         for (int i = 0; i < iters; ++i) {
           k.andnot_inplace(a.data(), b.data(), a.size());
         }
       });
     }},
    {"and_into", 24.0,
     [](const BitmapKernels& k, std::vector<uint64_t>& a,
        std::vector<uint64_t>& b, std::vector<uint64_t>& c, int iters) {
       return TimeNs([&] {
         for (int i = 0; i < iters; ++i) {
           k.and_into(a.data(), b.data(), c.data(), a.size());
         }
       });
     }},
};

void AppendJsonRow(const char* kernel, SimdLevel level, size_t words,
                   double ns_per_word, double gbps, double speedup) {
  std::string path = JsonSinkPath();
  if (path.empty()) return;
  std::FILE* out = std::fopen(path.c_str(), "a");
  if (out == nullptr) return;
  std::fprintf(out,
               "{\"micro\":\"bitmap_kernel\",\"kernel\":\"%s\","
               "\"simd\":\"%s\",\"words\":%zu,\"ns_per_word\":%.5f,"
               "\"gbps\":%.2f,\"speedup_vs_scalar\":%.2f}\n",
               kernel, SimdLevelName(level), words, ns_per_word, gbps,
               speedup);
  std::fclose(out);
}

void AppendLowerBoundJsonRow(SimdLevel level, size_t window,
                             double ns_per_probe, double speedup) {
  std::string path = JsonSinkPath();
  if (path.empty()) return;
  std::FILE* out = std::fopen(path.c_str(), "a");
  if (out == nullptr) return;
  std::fprintf(out,
               "{\"micro\":\"bitmap_kernel\",\"kernel\":\"lower_bound\","
               "\"simd\":\"%s\",\"window\":%zu,\"ns_per_probe\":%.2f,"
               "\"speedup_vs_scalar\":%.2f}\n",
               SimdLevelName(level), window, ns_per_probe, speedup);
  std::fclose(out);
}

void RunWordKernels(size_t words) {
  Rng rng(42);
  std::vector<uint64_t> a(words), b(words), c(words);
  for (auto& w : a) w = rng.Next();
  for (auto& w : b) w = rng.Next();
  for (auto& w : c) w = rng.Next();
  // Enough iterations that even the fastest level accumulates ~1 ms.
  const int iters = static_cast<int>(std::max<size_t>(1, (1u << 22) / words));

  std::printf("window = %zu words (%zu KiB per operand)\n", words,
              words * 8 / 1024);
  std::printf("  %-16s", "kernel");
  for (int l = 0; l <= static_cast<int>(MaxSupportedSimdLevel()); ++l) {
    std::printf(" %9s(GB/s)", SimdLevelName(static_cast<SimdLevel>(l)));
  }
  std::printf("  best-speedup\n");

  for (const KernelRow& row : kRows) {
    double scalar_ns_word = 0.0;
    double best_speedup = 1.0;
    std::printf("  %-16s", row.kernel);
    for (int l = 0; l <= static_cast<int>(MaxSupportedSimdLevel()); ++l) {
      const SimdLevel level = static_cast<SimdLevel>(l);
      const BitmapKernels* table = KernelsForLevel(level);
      if (table == nullptr) continue;
      // Fresh operands per level so in-place kernels see identical bytes.
      std::vector<uint64_t> la = a, lb = b, lc = c;
      const double ns = row.run(*table, la, lb, lc, iters) / iters;
      const double ns_word = ns / static_cast<double>(words);
      const double gbps = row.bytes_per_word / ns_word;
      if (level == SimdLevel::kScalar) scalar_ns_word = ns_word;
      const double speedup =
          ns_word > 0.0 ? scalar_ns_word / ns_word : 0.0;
      best_speedup = std::max(best_speedup, speedup);
      std::printf(" %15.1f", gbps);
      AppendJsonRow(row.kernel, level, words, ns_word, gbps, speedup);
    }
    std::printf("  %9.2fx\n", best_speedup);
  }
  std::printf("\n");
}

// The galloping probe's terminal window: sorted tid runs of the size the
// binary narrowing leaves behind, probed with keys spread over the run.
void RunLowerBound() {
  Rng rng(7);
  std::printf("lower_bound probe (sorted tid window)\n");
  for (size_t window : {64ul, 256ul, 4096ul}) {
    std::vector<Tid> data(window);
    Tid v = 0;
    for (auto& t : data) {
      v += 1 + static_cast<Tid>(rng.Uniform(7));
      t = v;
    }
    const int probes = 4096;
    std::vector<Tid> keys(probes);
    for (auto& key : keys) key = static_cast<Tid>(rng.Uniform(v + 2));

    double scalar_ns = 0.0;
    std::printf("  window=%-6zu", window);
    for (int l = 0; l <= static_cast<int>(MaxSupportedSimdLevel()); ++l) {
      const SimdLevel level = static_cast<SimdLevel>(l);
      const BitmapKernels* table = KernelsForLevel(level);
      if (table == nullptr) continue;
      volatile size_t sink = 0;
      const double ns = TimeNs([&] {
                          size_t acc = 0;
                          for (Tid key : keys) {
                            acc += table->lower_bound(data.data(),
                                                      data.size(), key);
                          }
                          sink = acc;
                        }) /
                        probes;
      (void)sink;
      if (level == SimdLevel::kScalar) scalar_ns = ns;
      const double speedup = ns > 0.0 ? scalar_ns / ns : 0.0;
      std::printf("  %s=%6.1fns (%4.2fx)", SimdLevelName(level), ns,
                  speedup);
      AppendLowerBoundJsonRow(level, window, ns, speedup);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void Run() {
  std::printf("Dispatched bitmap kernel throughput — host max: %s%s\n\n",
              SimdLevelName(MaxSupportedSimdLevel()),
              Avx512HasVpopcntdq() ? " (+vpopcntdq)" : "");
  RunWordKernels(512);     // 4 KiB operands: L1-resident counting
  RunWordKernels(131072);  // 1 MiB operands: streaming boolean ops
  RunLowerBound();
  if (g_sink == 0xdeadbeef) std::printf("(unreachable sink)\n");
}

}  // namespace
}  // namespace bench
}  // namespace colarm

int main() {
  colarm::bench::Run();
  return 0;
}
