// Section 5.1 analog ("plan selection accuracy of COLARM optimizer"):
// over 3 datasets x 36 parameter settings (4 DQ sizes x 3 minsupports x 3
// minconfidences) the optimizer's pick is compared against the measured
// fastest plan. The paper reports >93% accuracy with <=5% extra cost on
// misses; we report the same two metrics plus a near-miss rate (chosen
// plan within 25% of the best), which is the robust statistic on a noisy
// single-core container.
//
// The whole table runs twice when the host has vector kernels: once with
// SIMD forced off (scalar kernels) and once at the best supported level.
// Calibration happens per engine build, so each pass prices the bitmap
// word cost for the kernels it actually runs — the accuracy figures prove
// the cost model keeps picking the measured-best plan as the kernel
// speeds shift underneath it.
#include <cstdio>
#include <iterator>
#include <vector>

#include "common/cpu_features.h"
#include "harness.h"

namespace colarm {
namespace bench {
namespace {

struct Tally {
  int scenarios = 0;
  int exact_hits = 0;
  int near_hits = 0;  // chosen within 25% of measured best
  double total_regret = 0.0;
};

void RunAtLevel(const BenchDataset* datasets, size_t num_datasets) {
  const double minconfs[] = {0.85, 0.90, 0.95};

  Tally overall;
  for (size_t d = 0; d < num_datasets; ++d) {
    const BenchDataset& dataset = datasets[d];
    auto engine = BuildEngine(dataset);
    Tally tally;
    for (double dq : kDqFractions) {
      for (double minsupp : dataset.minsupps) {
        for (double minconf : minconfs) {
          ScenarioResult r =
              RunScenario(*engine, dq, minsupp, minconf, /*placements=*/1);
          ++tally.scenarios;
          double regret =
              r.measured_best_ms <= 0.0
                  ? 0.0
                  : (r.optimizer_pick_ms - r.measured_best_ms) /
                        r.measured_best_ms;
          tally.total_regret += regret;
          if (r.optimizer_pick == r.measured_best) ++tally.exact_hits;
          if (regret <= 0.25) ++tally.near_hits;
        }
      }
    }
    std::printf("%-14s exact=%2d/%2d (%.0f%%)  within-25%%=%2d/%2d (%.0f%%)  "
                "avg extra cost on all=%.1f%%\n",
                dataset.name.c_str(), tally.exact_hits, tally.scenarios,
                100.0 * tally.exact_hits / tally.scenarios, tally.near_hits,
                tally.scenarios, 100.0 * tally.near_hits / tally.scenarios,
                100.0 * tally.total_regret / tally.scenarios);
    overall.scenarios += tally.scenarios;
    overall.exact_hits += tally.exact_hits;
    overall.near_hits += tally.near_hits;
    overall.total_regret += tally.total_regret;
  }
  std::printf("%-14s exact=%2d/%2d (%.0f%%)  within-25%%=%2d/%2d (%.0f%%)  "
              "avg extra cost on all=%.1f%%\n",
              "overall", overall.exact_hits, overall.scenarios,
              100.0 * overall.exact_hits / overall.scenarios,
              overall.near_hits, overall.scenarios,
              100.0 * overall.near_hits / overall.scenarios,
              100.0 * overall.total_regret / overall.scenarios);
}

void Run() {
  std::printf("COLARM optimizer plan-selection accuracy "
              "(3 datasets x 36 settings)\n\n");
  BenchDataset datasets[] = {MakeChess(), MakeMushroom(), MakePumsb()};

  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (MaxSupportedSimdLevel() != SimdLevel::kScalar) {
    levels.push_back(MaxSupportedSimdLevel());
  }
  const SimdLevel entry_level = ActiveSimdLevel();
  for (SimdLevel level : levels) {
    if (!SetActiveSimdLevel(level)) continue;
    std::printf("-- SIMD %s --\n", SimdLevelName(level));
    RunAtLevel(datasets, std::size(datasets));
    std::printf("\n");
  }
  SetActiveSimdLevel(entry_level);
}

}  // namespace
}  // namespace bench
}  // namespace colarm

int main() {
  colarm::bench::Run();
  return 0;
}
