// fig_server_load — what the multi-tenant server costs over direct calls.
//
// One in-process Server over the chess analog; N ∈ {1, 8, 32} concurrent
// loopback clients, each HELLOing as its own tenant and running the
// drill-down workload (progressively narrower focal boxes, so after the
// first query every SELECT is a containment derivation in that tenant's
// session cache) in strict request-response style for several rounds.
//
// Reported per client count: request latency p50/p99 and aggregate
// throughput. BUSY fast-fails are counted separately — admission control
// shedding load is the designed behaviour, not a latency sample. One JSON
// line per client count lands in the bench sink (BENCH_plans.json) with
// `clients` and `p99_ms` fields alongside the usual run attribution.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "core/query_parser.h"
#include "harness.h"
#include "server/server.h"

namespace colarm {
namespace bench {
namespace {

constexpr int kClientCounts[] = {1, 8, 32};
constexpr int kRounds = 4;

std::vector<LocalizedQuery> DrillDown(const BenchDataset& dataset) {
  const Schema& schema = dataset.data->schema();
  const uint32_t domain = schema.attribute(0).domain_size();
  std::vector<LocalizedQuery> queries;
  for (double width_frac : {0.5, 0.4, 0.3, 0.2, 0.1}) {
    LocalizedQuery query;
    const auto width = std::max<uint32_t>(
        1, static_cast<uint32_t>(width_frac * domain + 0.5));
    query.ranges = {{0, 0, static_cast<ValueId>(width - 1)}};
    query.minsupp = dataset.minsupps.back();
    query.minconf = dataset.minconf;
    queries.push_back(query);
  }
  return queries;
}

/// Serializes a query back to the MINE wire form the parser accepts.
std::string MineLine(const Schema& schema, const LocalizedQuery& query) {
  const Attribute& attr = schema.attribute(query.ranges[0].attr);
  std::string values;
  for (ValueId v = query.ranges[0].lo; v <= query.ranges[0].hi; ++v) {
    if (!values.empty()) values += ", ";
    values += attr.values[v];
  }
  char tail[128];
  std::snprintf(tail, sizeof(tail),
                "} HAVING minsupport = %g AND minconfidence = %g;",
                query.minsupp, query.minconf);
  return "MINE REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE " + attr.name +
         " = {" + values + tail;
}

/// Blocking request-response client; returns false on connection failure.
class Client {
 public:
  explicit Client(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool ok() const { return fd_ >= 0; }

  /// Sends one request line, reads one framed response; returns the
  /// response header line ("OK <n>" or "ERR <CODE> ...").
  std::string Request(const std::string& line) {
    std::string bytes = line + "\n";
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off, 0);
      if (n <= 0) return "";
      off += static_cast<size_t>(n);
    }
    std::string header = ReadLine();
    if (header.rfind("OK ", 0) == 0) {
      size_t remaining = std::strtoull(header.c_str() + 3, nullptr, 10);
      char sink[4096];
      while (remaining > 0) {
        size_t want = std::min(remaining, sizeof(sink));
        ssize_t n = FillFrom(sink, want);
        if (n <= 0) return "";
        remaining -= static_cast<size_t>(n);
      }
    }
    return header;
  }

 private:
  std::string ReadLine() {
    std::string line;
    char c;
    for (;;) {
      if (pos_ >= len_) {
        ssize_t n = ::recv(fd_, buf_, sizeof(buf_), 0);
        if (n <= 0) return line;
        len_ = static_cast<size_t>(n);
        pos_ = 0;
      }
      c = buf_[pos_++];
      if (c == '\n') return line;
      line.push_back(c);
    }
  }
  /// Drains up to `want` payload bytes (buffered first, then the socket).
  ssize_t FillFrom(char* sink, size_t want) {
    if (pos_ < len_) {
      size_t take = std::min(want, len_ - pos_);
      std::memcpy(sink, buf_ + pos_, take);
      pos_ += take;
      return static_cast<ssize_t>(take);
    }
    return ::recv(fd_, sink, want, 0);
  }

  int fd_ = -1;
  char buf_[4096];
  size_t pos_ = 0;
  size_t len_ = 0;
};

struct LoadResult {
  std::vector<double> latencies_ms;  // OK responses only
  uint64_t ok = 0;
  uint64_t busy = 0;
  uint64_t errors = 0;
  double wall_ms = 0.0;
};

LoadResult RunClients(uint16_t port, int clients,
                      const std::vector<std::string>& mine_lines) {
  std::vector<LoadResult> per_client(clients);
  std::vector<std::thread> threads;
  Timer wall;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      LoadResult& r = per_client[c];
      Client client(port);
      if (!client.ok() ||
          client.Request("HELLO tenant" + std::to_string(c)).rfind("OK ", 0) !=
              0) {
        r.errors++;
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        for (const std::string& line : mine_lines) {
          Timer timer;
          std::string header = client.Request(line);
          double ms = timer.ElapsedMillis();
          if (header.rfind("OK ", 0) == 0) {
            r.ok++;
            r.latencies_ms.push_back(ms);
          } else if (header.rfind("ERR BUSY", 0) == 0) {
            r.busy++;
          } else {
            r.errors++;
          }
        }
      }
      client.Request("QUIT");
    });
  }
  for (auto& t : threads) t.join();
  LoadResult total;
  total.wall_ms = wall.ElapsedMillis();
  for (const LoadResult& r : per_client) {
    total.ok += r.ok;
    total.busy += r.busy;
    total.errors += r.errors;
    total.latencies_ms.insert(total.latencies_ms.end(), r.latencies_ms.begin(),
                              r.latencies_ms.end());
  }
  return total;
}

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  std::sort(sorted->begin(), sorted->end());
  size_t idx = static_cast<size_t>(p * (sorted->size() - 1) + 0.5);
  return (*sorted)[idx];
}

void AppendLoadJson(const BenchDataset& dataset, unsigned threads, int clients,
                    const LoadResult& r, double p50, double p99) {
  std::string path = JsonSinkPath();
  if (path.empty()) return;
  std::FILE* out = std::fopen(path.c_str(), "a");
  if (out == nullptr) {
    std::fprintf(stderr, "BENCH json sink %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return;
  }
  std::fprintf(out,
               "{\"figure\":\"server_load\",\"dataset\":\"%s\","
               "\"records\":%u,\"scale\":%g,\"num_threads\":%u,"
               "\"backend\":\"%s\",\"clients\":%d,\"requests\":%llu,"
               "\"busy\":%llu,\"errors\":%llu,\"p50_ms\":%.4f,"
               "\"p99_ms\":%.4f,\"throughput_rps\":%.1f}\n",
               dataset.name.c_str(), dataset.data->num_records(),
               ScaleFromEnv(), threads, ExecBackendName(BackendFromEnv()),
               clients, static_cast<unsigned long long>(r.ok),
               static_cast<unsigned long long>(r.busy),
               static_cast<unsigned long long>(r.errors), p50, p99,
               r.ok / (r.wall_ms / 1000.0));
  std::fclose(out);
}

}  // namespace
}  // namespace bench
}  // namespace colarm

int main() {
  using namespace colarm;
  using namespace colarm::bench;

  BenchDataset dataset = MakeChess();
  std::unique_ptr<Engine> engine = BuildEngine(dataset);
  const unsigned threads =
      engine->pool() != nullptr
          ? static_cast<unsigned>(engine->pool()->parallelism())
          : 1u;

  std::vector<std::string> mine_lines;
  for (const LocalizedQuery& query : DrillDown(dataset)) {
    mine_lines.push_back(MineLine(dataset.data->schema(), query));
  }

  ServerOptions options;
  Server server(*engine, options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  std::printf("server load — %s (%u records), drill-down x %d rounds, "
              "%u engine threads\n\n",
              dataset.name.c_str(), dataset.data->num_records(), kRounds,
              threads);
  std::printf("%8s %10s %10s %10s %8s %8s\n", "clients", "p50 ms", "p99 ms",
              "req/s", "ok", "busy");
  for (int clients : kClientCounts) {
    LoadResult result = RunClients(server.port(), clients, mine_lines);
    double p50 = Percentile(&result.latencies_ms, 0.50);
    double p99 = Percentile(&result.latencies_ms, 0.99);
    double rps = result.ok / (result.wall_ms / 1000.0);
    std::printf("%8d %10.3f %10.3f %10.1f %8llu %8llu\n", clients, p50, p99,
                rps, static_cast<unsigned long long>(result.ok),
                static_cast<unsigned long long>(result.busy));
    if (result.errors > 0) {
      std::fprintf(stderr, "clients=%d: %llu unexpected errors\n", clients,
                   static_cast<unsigned long long>(result.errors));
      server.Shutdown();
      return 1;
    }
    AppendLoadJson(dataset, threads, clients, result, p50, p99);
  }

  server.Shutdown();
  return 0;
}
