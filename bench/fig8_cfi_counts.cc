// Figure 8 analog: number of closed frequent itemsets stored in the
// MIP-index as the primary support threshold varies, for the three
// evaluation dataset analogs. The paper's shape: chess and PUMSB counts
// grow drastically as the primary threshold drops; mushroom grows more
// gradually.
#include <cstdio>

#include "harness.h"
#include "mining/charm.h"

namespace colarm {
namespace bench {
namespace {

void Sweep(const BenchDataset& dataset,
           const std::vector<double>& thresholds) {
  std::printf("%s (m=%u):\n", dataset.name.c_str(),
              dataset.data->num_records());
  std::printf("  %-14s %s\n", "primary supp", "# closed frequent itemsets");
  VerticalView vertical(*dataset.data);
  for (double threshold : thresholds) {
    size_t count = 0;
    MineCharm(vertical, MinCount(threshold, dataset.data->num_records()),
              [&count](const Itemset&, const Tidset&) { ++count; });
    std::printf("  %-14s %zu\n", FractionLabel(threshold).c_str(), count);
  }
  std::printf("\n");
}

void Run() {
  std::printf("Figure 8 analog: closed frequent itemsets vs primary "
              "support threshold\n\n");
  // Threshold ranges follow the spirit of [24]: down to where the counts
  // span several orders of magnitude.
  Sweep(MakeChess(), {0.90, 0.80, 0.70, 0.60, 0.50, 0.45});
  Sweep(MakeMushroom(), {0.40, 0.20, 0.10, 0.05, 0.04});
  Sweep(MakePumsb(), {0.95, 0.90, 0.85, 0.80, 0.75});
}

}  // namespace
}  // namespace bench
}  // namespace colarm

int main() {
  colarm::bench::Run();
  return 0;
}
