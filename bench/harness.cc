#include "harness.h"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>

#include "common/cpu_features.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "data/histogram.h"

namespace colarm {
namespace bench {

namespace {

// A benchmark knob that silently falls back to its default turns a typo
// into a wrong experiment: COLARM_BENCH_SCALE=O.5 quietly measuring the
// full dataset, or COLARM_BENCH_THREADS=1x publishing "sequential" numbers
// from a parallel run. Misparses are fatal; unset or empty means default.
[[noreturn]] void DieOnBadKnob(const char* name, const char* value,
                               const char* expected) {
  std::fprintf(stderr, "%s=\"%s\" is invalid: expected %s\n", name, value,
               expected);
  std::exit(2);
}

}  // namespace

double ScaleFromEnv() {
  const char* env = std::getenv("COLARM_BENCH_SCALE");
  if (env == nullptr || *env == '\0') return 1.0;
  double scale = 0.0;
  if (!ParseDouble(env, &scale) || scale <= 0.0) {
    DieOnBadKnob("COLARM_BENCH_SCALE", env, "a number > 0");
  }
  return scale;
}

unsigned ThreadsFromEnv() {
  const char* env = std::getenv("COLARM_BENCH_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  uint64_t threads = 0;
  if (!ParseUint64(env, &threads) ||
      threads > std::numeric_limits<unsigned>::max()) {
    DieOnBadKnob("COLARM_BENCH_THREADS", env,
                 "a non-negative integer (0 = hardware concurrency)");
  }
  return static_cast<unsigned>(threads);
}

ExecBackend BackendFromEnv() {
  const char* env = std::getenv("COLARM_BENCH_BACKEND");
  if (env == nullptr || *env == '\0') return ExecBackend::kScalar;
  if (std::strcmp(env, "bitmap") == 0) return ExecBackend::kBitmap;
  if (std::strcmp(env, "scalar") == 0) return ExecBackend::kScalar;
  DieOnBadKnob("COLARM_BENCH_BACKEND", env, "\"scalar\" or \"bitmap\"");
}

std::string JsonSinkPath() {
  const char* env = std::getenv("COLARM_BENCH_JSON");
  return env != nullptr ? std::string(env) : std::string("BENCH_plans.json");
}

namespace {

// Resolved degree of parallelism an engine actually runs with.
unsigned EngineThreads(const Engine& engine) {
  return engine.pool() != nullptr
             ? static_cast<unsigned>(engine.pool()->parallelism())
             : 1u;
}

// One JSON line per scenario: everything needed to compare runs across
// thread counts and scales without scraping the human-readable tables.
void AppendScenarioJson(const BenchDataset& dataset, const Engine& engine,
                        double index_build_ms, double dq, double minsupp,
                        const ScenarioResult& r) {
  std::string path = JsonSinkPath();
  if (path.empty()) return;
  std::FILE* out = std::fopen(path.c_str(), "a");
  if (out == nullptr) {
    std::fprintf(stderr, "BENCH json sink %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return;
  }
  std::fprintf(out,
               "{\"dataset\":\"%s\",\"records\":%u,\"scale\":%g,"
               "\"num_threads\":%u,\"backend\":\"%s\",\"simd\":\"%s\","
               "\"index_build_ms\":%.3f,"
               "\"dq\":%g,\"minsupp\":%g,\"minconf\":%g,\"avg_ms\":{",
               dataset.name.c_str(), dataset.data->num_records(),
               ScaleFromEnv(), EngineThreads(engine),
               ExecBackendName(engine.options().backend),
               SimdLevelName(ActiveSimdLevel()), index_build_ms, dq,
               minsupp, dataset.minconf);
  for (size_t i = 0; i < kAllPlans.size(); ++i) {
    std::fprintf(out, "%s\"%s\":%.4f", i == 0 ? "" : ",",
                 PlanKindName(kAllPlans[i]), r.avg_ms[i]);
  }
  std::fprintf(out,
               "},\"optimizer_pick\":\"%s\",\"optimizer_pick_ms\":%.4f,"
               "\"measured_best\":\"%s\",\"measured_best_ms\":%.4f,"
               "\"rules\":%zu}\n",
               PlanKindName(r.optimizer_pick), r.optimizer_pick_ms,
               PlanKindName(r.measured_best), r.measured_best_ms, r.rules);
  std::fclose(out);
}

BenchDataset Make(const SyntheticConfig& config, double primary,
                  std::vector<double> minsupps) {
  BenchDataset dataset;
  dataset.name = config.name;
  auto generated = GenerateSynthetic(config);
  if (!generated.ok()) {
    std::fprintf(stderr, "dataset %s: %s\n", config.name.c_str(),
                 generated.status().ToString().c_str());
    std::abort();
  }
  dataset.data = std::make_unique<Dataset>(std::move(generated.value()));
  dataset.primary_support = primary;
  dataset.minsupps = std::move(minsupps);
  dataset.minconf = 0.85;
  return dataset;
}

}  // namespace

BenchDataset MakeChess() {
  // Paper: chess at primary support 60%, minsupp in {80, 85, 90}%.
  return Make(ChessLikeConfig(1.0 * ScaleFromEnv()), 0.60, {0.80, 0.85, 0.90});
}

BenchDataset MakeMushroom() {
  // Paper: mushroom at primary support 5%, minsupp in {70, 75, 80}%.
  return Make(MushroomLikeConfig(0.5 * ScaleFromEnv()), 0.05,
              {0.70, 0.75, 0.80});
}

BenchDataset MakePumsb() {
  // Paper: PUMSB at primary support 80%, minsupp in {85, 88, 91}%.
  return Make(PumsbLikeConfig(0.25 * ScaleFromEnv()), 0.80,
              {0.85, 0.88, 0.91});
}

std::unique_ptr<Engine> BuildEngine(const BenchDataset& dataset) {
  EngineOptions options;
  options.index.primary_support = dataset.primary_support;
  options.calibrate = true;
  options.num_threads = ThreadsFromEnv();
  options.backend = BackendFromEnv();
  auto engine = Engine::Build(*dataset.data, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine build failed: %s\n",
                 engine.status().ToString().c_str());
    std::abort();
  }
  return std::move(engine.value());
}

std::vector<LocalizedQuery> MakeQueries(const Dataset& data,
                                        double dq_fraction, double minsupp,
                                        double minconf, int placements) {
  const Schema& schema = data.schema();

  // Queries mix a predicate on the first *leaning* attribute (range and
  // item attributes share one pool, so this lets the R-tree filter prune
  // MIPs fixing the other value) with a region interval for fine-grained
  // size control. Datasets without a leaning attribute fall back to a pure
  // region interval.
  AttrId leaning_attr = 0;
  for (AttrId a = 1; a < schema.num_attributes(); ++a) {
    if (schema.attribute(a).name.rfind("lean", 0) == 0) {
      leaning_attr = a;
      break;
    }
  }

  double region_fraction = dq_fraction;
  std::optional<RangeSelection> leaning_range;
  if (leaning_attr != 0) {
    ValueHistogram hist(data, leaning_attr);
    double sel_v1 = hist.Selectivity(1, 1);
    double sel_v0 = hist.Selectivity(0, 0);
    if (dq_fraction <= sel_v1 && sel_v1 > 0) {
      leaning_range = RangeSelection{leaning_attr, 1, 1};
      region_fraction = dq_fraction / sel_v1;
    } else if (dq_fraction <= sel_v0 && sel_v0 > 0) {
      leaning_range = RangeSelection{leaning_attr, 0, 0};
      region_fraction = dq_fraction / sel_v0;
    }
  }

  const uint32_t domain = schema.attribute(0).domain_size();
  const auto width = std::min<uint32_t>(
      domain, std::max<uint32_t>(
                  1, static_cast<uint32_t>(region_fraction * domain + 0.5)));
  std::vector<LocalizedQuery> queries;
  for (int p = 0; p < placements; ++p) {
    // Deterministic offsets spread across the region domain.
    uint32_t max_lo = domain - width;
    uint32_t lo = placements <= 1 ? 0 : (max_lo * p) / (placements - 1);
    LocalizedQuery query;
    query.ranges = {{0, static_cast<ValueId>(lo),
                     static_cast<ValueId>(lo + width - 1)}};
    if (leaning_range.has_value()) query.ranges.push_back(*leaning_range);
    query.minsupp = minsupp;
    query.minconf = minconf;
    queries.push_back(std::move(query));
  }
  return queries;
}

ScenarioResult RunScenario(const Engine& engine, double dq_fraction,
                           double minsupp, double minconf, int placements) {
  ScenarioResult result;
  auto queries = MakeQueries(engine.index().dataset(), dq_fraction, minsupp,
                             minconf, placements);

  // Majority vote over placements for the optimizer's pick.
  int votes[6] = {0, 0, 0, 0, 0, 0};
  for (const LocalizedQuery& query : queries) {
    auto decision = engine.Explain(query);
    if (decision.ok()) {
      ++votes[static_cast<size_t>(decision->chosen)];
    }
    for (PlanKind kind : kAllPlans) {
      auto run = engine.ExecuteWithPlan(query, kind);
      if (!run.ok()) {
        std::fprintf(stderr, "plan %s failed: %s\n", PlanKindName(kind),
                     run.status().ToString().c_str());
        std::abort();
      }
      result.avg_ms[static_cast<size_t>(kind)] += run->stats.total_ms;
      if (kind == PlanKind::kSEV) result.rules = run->rules.rules.size();
    }
  }
  for (double& ms : result.avg_ms) ms /= queries.size();

  int best_votes = -1;
  for (size_t i = 0; i < kAllPlans.size(); ++i) {
    if (votes[i] > best_votes) {
      best_votes = votes[i];
      result.optimizer_pick = kAllPlans[i];
    }
  }
  double best_ms = result.avg_ms[0];
  result.measured_best = kAllPlans[0];
  for (size_t i = 1; i < kAllPlans.size(); ++i) {
    if (result.avg_ms[i] < best_ms) {
      best_ms = result.avg_ms[i];
      result.measured_best = kAllPlans[i];
    }
  }
  result.measured_best_ms = best_ms;
  result.optimizer_pick_ms =
      result.avg_ms[static_cast<size_t>(result.optimizer_pick)];
  return result;
}

std::string FractionLabel(double fraction) {
  return StrFormat("%g%%", fraction * 100.0);
}

void RunPlanFigure(const BenchDataset& dataset, const char* figure_title) {
  std::printf("%s — %s analog (m=%u, primary=%g%%, minconf=%g%%)\n",
              figure_title, dataset.name.c_str(), dataset.data->num_records(),
              dataset.primary_support * 100.0, dataset.minconf * 100.0);
  Timer build_timer;
  auto engine = BuildEngine(dataset);
  const double index_build_ms = build_timer.ElapsedMillis();
  std::printf("MIP-index: %u MIPs, R-tree height %u (built in %.1f ms, %u thread%s)\n\n",
              engine->index().num_mips(), engine->index().rtree().height(),
              index_build_ms, EngineThreads(*engine),
              EngineThreads(*engine) == 1 ? "" : "s");

  for (double dq : kDqFractions) {
    std::printf("DQ = %s of D:\n", FractionLabel(dq).c_str());
    std::printf("  %-8s %10s %10s %10s %10s %10s %10s   %s\n", "minsupp",
                "S-E-V", "S-VS", "SS-E-V", "SS-VS", "SS-E-U-V", "ARM",
                "COLARM-pick");
    for (double minsupp : dataset.minsupps) {
      ScenarioResult r =
          RunScenario(*engine, dq, minsupp, dataset.minconf, /*placements=*/2);
      AppendScenarioJson(dataset, *engine, index_build_ms, dq, minsupp, r);
      std::printf(
          "  %-8s %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f   %s%s\n",
          FractionLabel(minsupp).c_str(), r.avg_ms[0], r.avg_ms[1],
          r.avg_ms[2], r.avg_ms[3], r.avg_ms[4], r.avg_ms[5],
          PlanKindName(r.optimizer_pick),
          r.optimizer_pick == r.measured_best ? " (= measured best)" : "");
    }
    std::printf("\n");
  }
}

}  // namespace bench
}  // namespace colarm
