// Micro-benchmarks for the R-tree substrate: dynamic insert, range search
// on dynamically built vs packed trees, and the supported filter's pruning
// effect (the ablation behind the SS-* plans).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "rtree/bulk_load.h"

namespace colarm {
namespace {

std::vector<RTreeEntry> MakeEntries(uint32_t count, uint32_t dims) {
  Rng rng(99);
  std::vector<RTreeEntry> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Rect box = Rect::MakeEmpty(dims);
    for (uint32_t d = 0; d < dims; ++d) {
      ValueId lo = static_cast<ValueId>(rng.Uniform(100));
      ValueId hi = static_cast<ValueId>(
          std::min<uint64_t>(99, lo + rng.Uniform(10)));
      box.SetInterval(d, lo, hi);
    }
    entries.push_back({box, i, static_cast<uint32_t>(rng.Uniform(10000))});
  }
  return entries;
}

Rect MakeQuery(uint32_t dims, ValueId lo, ValueId hi) {
  Rect box = Rect::MakeEmpty(dims);
  for (uint32_t d = 0; d < dims; ++d) box.SetInterval(d, lo, hi);
  return box;
}

void BM_RTreeDynamicInsert(benchmark::State& state) {
  const auto count = static_cast<uint32_t>(state.range(0));
  auto entries = MakeEntries(count, 4);
  for (auto _ : state) {
    RTree tree(4);
    for (const RTreeEntry& e : entries) tree.Insert(e);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_RTreeDynamicInsert)->Arg(1000)->Arg(10000);

void BM_RTreeBulkLoadSTR(benchmark::State& state) {
  const auto count = static_cast<uint32_t>(state.range(0));
  auto entries = MakeEntries(count, 4);
  for (auto _ : state) {
    RTree tree = BulkLoadSTR(4, entries);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_RTreeBulkLoadSTR)->Arg(1000)->Arg(10000);

void BM_RTreeSearchDynamic(benchmark::State& state) {
  auto entries = MakeEntries(20000, 4);
  RTree tree(4);
  for (const RTreeEntry& e : entries) tree.Insert(e);
  Rect query = MakeQuery(4, 20, 60);
  for (auto _ : state) {
    size_t hits = 0;
    tree.Search(query, [&hits](const RTreeEntry&, bool) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_RTreeSearchDynamic);

void BM_RTreeSearchPacked(benchmark::State& state) {
  auto entries = MakeEntries(20000, 4);
  RTree tree = BulkLoadSTR(4, entries);
  Rect query = MakeQuery(4, 20, 60);
  for (auto _ : state) {
    size_t hits = 0;
    tree.Search(query, [&hits](const RTreeEntry&, bool) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_RTreeSearchPacked);

void BM_RTreeSupportedSearch(benchmark::State& state) {
  auto entries = MakeEntries(20000, 4);
  RTree tree = BulkLoadSTR(4, entries);
  Rect query = MakeQuery(4, 20, 60);
  const auto min_count = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    size_t hits = 0;
    tree.SearchSupported(query, min_count,
                         [&hits](const RTreeEntry&, bool) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_RTreeSupportedSearch)->Arg(0)->Arg(5000)->Arg(9500);

}  // namespace
}  // namespace colarm

BENCHMARK_MAIN();
