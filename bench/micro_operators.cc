// Micro-benchmarks of the online plan operators (the ablation behind the
// plan cost model): SEARCH vs SUPPORTED-SEARCH, ELIMINATE, the fused
// SUPPORTED-VERIFY, and full plan executions on one mid-size scenario.
#include <benchmark/benchmark.h>

#include "core/batch.h"
#include "core/engine.h"
#include "data/synthetic.h"
#include "plans/operators.h"

namespace colarm {
namespace {

struct Env {
  std::unique_ptr<Dataset> data;
  std::unique_ptr<Engine> engine;
  LocalizedQuery query;

  static const Env& Get() {
    static Env* env = [] {
      auto* e = new Env();
      SyntheticConfig config = ChessLikeConfig(0.5);
      e->data = std::make_unique<Dataset>(GenerateSynthetic(config).value());
      EngineOptions options;
      options.index.primary_support = 0.6;
      options.calibrate = false;
      e->engine = std::move(Engine::Build(*e->data, options).value());
      e->query.ranges = {{0, 10, 39}};  // 30% of the region domain
      e->query.minsupp = 0.8;
      e->query.minconf = 0.85;
      return e;
    }();
    return *env;
  }
};

void BM_Search(benchmark::State& state) {
  const Env& env = Env::Get();
  for (auto _ : state) {
    PlanContext ctx(env.engine->index(), env.query, RuleGenOptions{});
    CandidateSet cands = OpSearch(&ctx);
    benchmark::DoNotOptimize(cands.total());
  }
}
BENCHMARK(BM_Search);

void BM_SupportedSearch(benchmark::State& state) {
  const Env& env = Env::Get();
  for (auto _ : state) {
    PlanContext ctx(env.engine->index(), env.query, RuleGenOptions{});
    CandidateSet cands = OpSupportedSearch(&ctx);
    benchmark::DoNotOptimize(cands.total());
  }
}
BENCHMARK(BM_SupportedSearch);

void BM_Eliminate(benchmark::State& state) {
  const Env& env = Env::Get();
  PlanContext ctx(env.engine->index(), env.query, RuleGenOptions{});
  CandidateSet cands = OpSearch(&ctx);
  std::vector<uint32_t> all = cands.contained;
  all.insert(all.end(), cands.overlapped.begin(), cands.overlapped.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(OpEliminate(&ctx, all).size());
  }
}
BENCHMARK(BM_Eliminate);

void BM_SupportedVerify(benchmark::State& state) {
  const Env& env = Env::Get();
  PlanContext ctx(env.engine->index(), env.query, RuleGenOptions{});
  CandidateSet cands = OpSupportedSearch(&ctx);
  std::vector<uint32_t> all = cands.contained;
  all.insert(all.end(), cands.overlapped.begin(), cands.overlapped.end());
  for (auto _ : state) {
    RuleSet rules;
    OpSupportedVerify(&ctx, all, &rules);
    benchmark::DoNotOptimize(rules.rules.size());
  }
}
BENCHMARK(BM_SupportedVerify);

void BM_FullPlan(benchmark::State& state) {
  const Env& env = Env::Get();
  const PlanKind kind = static_cast<PlanKind>(state.range(0));
  state.SetLabel(PlanKindName(kind));
  for (auto _ : state) {
    auto result = env.engine->ExecuteWithPlan(env.query, kind);
    benchmark::DoNotOptimize(result.value().rules.rules.size());
  }
}
BENCHMARK(BM_FullPlan)->DenseRange(0, 5);

// Multi-query ablation: an exploration session of 12 queries over 3
// focal boxes, executed naively vs through the batch executor (shared
// subset materializations + duplicate-result reuse).
std::vector<LocalizedQuery> SessionQueries() {
  std::vector<LocalizedQuery> queries;
  for (ValueId lo : {0, 25, 60}) {
    for (double minsupp : {0.75, 0.8, 0.85, 0.8}) {  // one duplicate per box
      LocalizedQuery query;
      query.ranges = {{0, lo, static_cast<ValueId>(lo + 19)}};
      query.minsupp = minsupp;
      query.minconf = 0.85;
      queries.push_back(query);
    }
  }
  return queries;
}

void BM_SessionNaive(benchmark::State& state) {
  const Env& env = Env::Get();
  auto queries = SessionQueries();
  for (auto _ : state) {
    size_t rules = 0;
    for (const LocalizedQuery& query : queries) {
      rules += env.engine->Execute(query).value().rules.rules.size();
    }
    benchmark::DoNotOptimize(rules);
  }
}
BENCHMARK(BM_SessionNaive);

void BM_SessionBatched(benchmark::State& state) {
  const Env& env = Env::Get();
  auto queries = SessionQueries();
  BatchExecutor executor(*env.engine);
  for (auto _ : state) {
    auto batch = executor.Execute(queries);
    benchmark::DoNotOptimize(batch.value().results.size());
  }
}
BENCHMARK(BM_SessionBatched);

void BM_OptimizerChoose(benchmark::State& state) {
  const Env& env = Env::Get();
  for (auto _ : state) {
    auto decision = env.engine->Explain(env.query);
    benchmark::DoNotOptimize(decision.value().chosen);
  }
}
BENCHMARK(BM_OptimizerChoose);

}  // namespace
}  // namespace colarm

BENCHMARK_MAIN();
