// fig_session_cache — what the session cache buys an exploration session.
//
// Three analyst workloads over the chess analog, each answered twice: by a
// cache-less engine (cold) and by a cache-enabled engine (first pass warm,
// second pass fully hot):
//
//   drill-down        progressively narrower focal boxes — after the first
//                     query every SELECT is a containment derivation over
//                     the previous subset instead of a relation scan
//   threshold-sweep   one box at several (minsupp, minconf) settings — the
//                     subset is an exact hit and ELIMINATE/VERIFY counts
//                     replay from the count memo
//   neighbouring-box  sliding windows inside one seeded wide box — every
//                     window derives by containment from the seed
//
// Results are identical by construction (the equivalence tests enforce it);
// this figure measures the wall-clock side and appends one JSON line per
// workload to the bench sink.
//
// At full scale (COLARM_BENCH_SCALE >= 1) a second section repeats the
// exercise on the PUMSB analog with a persisted restart in the middle:
// cold, then a fresh process-equivalent engine warm-started from the v4
// cache file (mmap-warm), then fully hot. Those rows land in the sink as
// "figure":"cache_scale".
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/timer.h"
#include "core/cache_persist.h"
#include "harness.h"

namespace colarm {
namespace bench {
namespace {

struct Workload {
  const char* name;
  std::vector<LocalizedQuery> queries;
};

std::vector<Workload> MakeWorkloads(const BenchDataset& dataset) {
  const Schema& schema = dataset.data->schema();
  const uint32_t domain = schema.attribute(0).domain_size();
  auto box = [&](double lo_frac, double width_frac, double minsupp,
                 double minconf) {
    LocalizedQuery query;
    const auto width = std::max<uint32_t>(
        1, static_cast<uint32_t>(width_frac * domain + 0.5));
    auto lo = static_cast<uint32_t>(lo_frac * domain);
    lo = std::min(lo, domain - width);
    query.ranges = {
        {0, static_cast<ValueId>(lo), static_cast<ValueId>(lo + width - 1)}};
    query.minsupp = minsupp;
    query.minconf = minconf;
    return query;
  };
  const double minsupp = dataset.minsupps.back();
  const double minconf = dataset.minconf;

  Workload drill{"drill-down", {}};
  for (double width : {0.5, 0.4, 0.3, 0.2, 0.1}) {
    drill.queries.push_back(box(0.0, width, minsupp, minconf));
  }

  Workload sweep{"threshold-sweep", {}};
  for (double ms : dataset.minsupps) {
    for (double mc : {minconf, minconf + 0.05}) {
      sweep.queries.push_back(box(0.0, 0.3, ms, mc));
    }
  }

  Workload neighbours{"neighbouring-box", {}};
  neighbours.queries.push_back(box(0.0, 0.6, minsupp, minconf));  // seed
  for (double lo : {0.0, 0.1, 0.2, 0.3, 0.4}) {
    neighbours.queries.push_back(box(lo, 0.15, minsupp, minconf));
  }

  // Union/difference-shaped session: adjacent slabs first, then boxes the
  // tier-2.5 planner can assemble from them (the union of the slabs, a
  // trimmed prefix of a wide box) instead of rescanning the relation.
  Workload overlap{"overlap-drill", {}};
  overlap.queries.push_back(box(0.0, 0.25, minsupp, minconf));
  overlap.queries.push_back(box(0.25, 0.25, minsupp, minconf));
  overlap.queries.push_back(box(0.0, 0.5, minsupp, minconf));   // union
  overlap.queries.push_back(box(0.0, 0.35, minsupp, minconf));  // trim
  overlap.queries.push_back(box(0.1, 0.4, minsupp, minconf));   // inner
  return {std::move(drill), std::move(sweep), std::move(neighbours),
          std::move(overlap)};
}

std::unique_ptr<Engine> BuildCachedEngine(const BenchDataset& dataset) {
  EngineOptions options;
  options.index.primary_support = dataset.primary_support;
  options.calibrate = true;
  options.num_threads = ThreadsFromEnv();
  options.backend = BackendFromEnv();
  options.cache.enabled = true;
  auto engine = Engine::Build(*dataset.data, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine build failed: %s\n",
                 engine.status().ToString().c_str());
    std::abort();
  }
  return std::move(engine.value());
}

// Wall time of one sequential pass over the workload (optimizer-picked
// plans, exactly the session an analyst would run).
double RunPass(const Engine& engine, const std::vector<LocalizedQuery>& qs) {
  Timer timer;
  for (const LocalizedQuery& query : qs) {
    auto result = engine.Execute(query);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      std::abort();
    }
  }
  return timer.ElapsedMillis();
}

void AppendJson(const BenchDataset& dataset, const Engine& warm,
                const char* workload, size_t queries, double cold_ms,
                double warm_ms, double hot_ms) {
  std::string path = JsonSinkPath();
  if (path.empty()) return;
  std::FILE* out = std::fopen(path.c_str(), "a");
  if (out == nullptr) {
    std::fprintf(stderr, "BENCH json sink %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return;
  }
  const CacheTelemetry t = warm.cache()->telemetry();
  std::fprintf(
      out,
      "{\"dataset\":\"%s\",\"figure\":\"session_cache\",\"records\":%u,"
      "\"scale\":%g,\"num_threads\":%u,\"backend\":\"%s\","
      "\"workload\":\"%s\",\"queries\":%zu,"
      "\"cold_ms\":%.3f,\"warm_ms\":%.3f,\"hot_ms\":%.3f,"
      "\"warm_speedup\":%.2f,\"hot_speedup\":%.2f,"
      "\"cache\":{\"exact\":%llu,\"containment\":%llu,\"compose\":%llu,"
      "\"memo\":%llu,\"misses\":%llu,\"bytes\":%llu}}\n",
      dataset.name.c_str(), dataset.data->num_records(), ScaleFromEnv(),
      warm.pool() != nullptr
          ? static_cast<unsigned>(warm.pool()->parallelism())
          : 1u,
      ExecBackendName(warm.options().backend), workload, queries, cold_ms,
      warm_ms, hot_ms, cold_ms / std::max(warm_ms, 1e-9),
      cold_ms / std::max(hot_ms, 1e-9),
      static_cast<unsigned long long>(t.hits_exact),
      static_cast<unsigned long long>(t.hits_containment),
      static_cast<unsigned long long>(t.hits_compose),
      static_cast<unsigned long long>(t.hits_count_memo),
      static_cast<unsigned long long>(t.misses),
      static_cast<unsigned long long>(t.bytes));
  std::fclose(out);
}

void AppendScaleJson(const BenchDataset& dataset, const Engine& restored,
                     const char* workload, size_t queries, double cold_ms,
                     double mmap_warm_ms, double hot_ms) {
  std::string path = JsonSinkPath();
  if (path.empty()) return;
  std::FILE* out = std::fopen(path.c_str(), "a");
  if (out == nullptr) {
    std::fprintf(stderr, "BENCH json sink %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return;
  }
  const CacheTelemetry t = restored.cache()->telemetry();
  std::fprintf(
      out,
      "{\"dataset\":\"%s\",\"figure\":\"cache_scale\",\"records\":%u,"
      "\"scale\":%g,\"num_threads\":%u,\"backend\":\"%s\","
      "\"workload\":\"%s\",\"queries\":%zu,"
      "\"cold_ms\":%.3f,\"mmap_warm_ms\":%.3f,\"hot_ms\":%.3f,"
      "\"mmap_warm_speedup\":%.2f,\"hot_speedup\":%.2f,"
      "\"cache\":{\"exact\":%llu,\"containment\":%llu,\"compose\":%llu,"
      "\"memo\":%llu,\"misses\":%llu,\"admitrej\":%llu,\"bytes\":%llu}}\n",
      dataset.name.c_str(), dataset.data->num_records(), ScaleFromEnv(),
      restored.pool() != nullptr
          ? static_cast<unsigned>(restored.pool()->parallelism())
          : 1u,
      ExecBackendName(restored.options().backend), workload, queries,
      cold_ms, mmap_warm_ms, hot_ms, cold_ms / std::max(mmap_warm_ms, 1e-9),
      cold_ms / std::max(hot_ms, 1e-9),
      static_cast<unsigned long long>(t.hits_exact),
      static_cast<unsigned long long>(t.hits_containment),
      static_cast<unsigned long long>(t.hits_compose),
      static_cast<unsigned long long>(t.hits_count_memo),
      static_cast<unsigned long long>(t.misses),
      static_cast<unsigned long long>(t.admission_rejects),
      static_cast<unsigned long long>(t.bytes));
  std::fclose(out);
}

// PUMSB-scale warm-restart figure: a session populates the cache, the v4
// file is persisted, and a fresh engine (the "restarted process") loads it
// before replaying the session. Three timings per workload: a cache-less
// engine (cold), the restored engine's first replay (mmap-warm), and its
// steady state (hot). Gated on full scale — at smoke scales the PUMSB
// analog is too small for the restart cost to mean anything.
void RunScaleFigure() {
  if (ScaleFromEnv() < 1.0) {
    std::printf(
        "\ncache_scale: skipped (COLARM_BENCH_SCALE=%g < 1; PUMSB-scale "
        "warm-restart rows need the full-size analog)\n",
        ScaleFromEnv());
    return;
  }
  BenchDataset dataset = MakePumsb();
  std::printf(
      "\nWarm restart at scale — %s analog (m=%u, primary=%g%%), cold vs "
      "mmap-warm vs hot\n\n",
      dataset.name.c_str(), dataset.data->num_records(),
      dataset.primary_support * 100.0);

  auto cold_engine = BuildEngine(dataset);
  const std::string cache_path = "BENCH_session.ccache";
  std::printf("%-18s %8s %10s %12s %10s %8s %8s\n", "workload", "queries",
              "cold ms", "mmapwarm ms", "hot ms", "warm x", "hot x");
  for (Workload& workload : MakeWorkloads(dataset)) {
    constexpr int kReps = 3;
    double cold_ms = 1e100;
    for (int r = 0; r < kReps; ++r) {
      cold_ms = std::min(cold_ms, RunPass(*cold_engine, workload.queries));
    }

    // Populate a session cache and persist it — this is the "previous
    // process" whose work the restart inherits.
    auto first_engine = BuildCachedEngine(dataset);
    RunPass(*first_engine, workload.queries);
    Status saved = SaveQueryCache(*first_engine->cache(),
                                  first_engine->index(), cache_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "cache save failed: %s\n",
                   saved.ToString().c_str());
      std::abort();
    }
    first_engine.reset();

    auto restored = BuildCachedEngine(dataset);
    Status loaded =
        LoadQueryCache(restored->index(), cache_path, restored->cache());
    if (!loaded.ok()) {
      std::fprintf(stderr, "cache load failed: %s\n",
                   loaded.ToString().c_str());
      std::abort();
    }
    const double mmap_warm_ms = RunPass(*restored, workload.queries);
    double hot_ms = 1e100;
    for (int r = 0; r < kReps; ++r) {
      hot_ms = std::min(hot_ms, RunPass(*restored, workload.queries));
    }
    std::printf("%-18s %8zu %10.2f %12.2f %10.2f %7.1fx %7.1fx\n",
                workload.name, workload.queries.size(), cold_ms,
                mmap_warm_ms, hot_ms, cold_ms / std::max(mmap_warm_ms, 1e-9),
                cold_ms / std::max(hot_ms, 1e-9));
    AppendScaleJson(dataset, *restored, workload.name,
                    workload.queries.size(), cold_ms, mmap_warm_ms, hot_ms);
  }
  std::remove(cache_path.c_str());
}

int Main() {
  BenchDataset dataset = MakeChess();
  std::printf(
      "Session cache — %s analog (m=%u, primary=%g%%), cold vs warm\n\n",
      dataset.name.c_str(), dataset.data->num_records(),
      dataset.primary_support * 100.0);

  auto cold_engine = BuildEngine(dataset);
  std::printf("%-18s %8s %10s %10s %10s %8s %8s\n", "workload", "queries",
              "cold ms", "warm ms", "hot ms", "warm x", "hot x");
  for (Workload& workload : MakeWorkloads(dataset)) {
    // Fresh cache per workload so the reuse pattern is the workload's own.
    auto warm_engine = BuildCachedEngine(dataset);
    constexpr int kReps = 3;
    double cold_ms = 1e100;
    for (int r = 0; r < kReps; ++r) {
      cold_ms = std::min(cold_ms, RunPass(*cold_engine, workload.queries));
    }
    const double warm_ms = RunPass(*warm_engine, workload.queries);
    double hot_ms = 1e100;
    for (int r = 0; r < kReps; ++r) {
      hot_ms = std::min(hot_ms, RunPass(*warm_engine, workload.queries));
    }
    std::printf("%-18s %8zu %10.2f %10.2f %10.2f %7.1fx %7.1fx\n",
                workload.name, workload.queries.size(), cold_ms, warm_ms,
                hot_ms, cold_ms / std::max(warm_ms, 1e-9),
                cold_ms / std::max(hot_ms, 1e-9));
    AppendJson(dataset, *warm_engine, workload.name, workload.queries.size(),
               cold_ms, warm_ms, hot_ms);
  }
  RunScaleFigure();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace colarm

int main() { return colarm::bench::Main(); }
