// Figure 11 analog: average execution time of the six mining plans on the
// pumsb-like dataset (primary support 80%), varying focal subset size and
// minsupport (85/88/91%) at minconf 85%. Paper shape: index plans win
// clearly at small DQ; at 50%/20% DQ there is no clear winner and ARM can
// edge out the index plans.
#include "harness.h"

int main() {
  colarm::bench::RunPlanFigure(colarm::bench::MakePumsb(),
                               "Figure 11 analog");
  return 0;
}
