#ifndef COLARM_BENCH_HARNESS_H_
#define COLARM_BENCH_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "data/synthetic.h"

namespace colarm {
namespace bench {

/// One evaluation dataset analog with its paper parameters (primary
/// support for the offline build, the minsupport sweep of Figures 9-11).
struct BenchDataset {
  std::string name;
  std::unique_ptr<Dataset> data;
  double primary_support = 0.6;
  std::vector<double> minsupps;
  double minconf = 0.85;
};

/// Scale factor for dataset sizes, read from COLARM_BENCH_SCALE (default
/// 1.0). Values < 1 shrink record counts for quick smoke runs. A value
/// that does not parse as a number > 0 is fatal (stderr + exit 2): a
/// silently defaulted knob mislabels the whole run.
double ScaleFromEnv();

/// Worker threads for the engine, read from COLARM_BENCH_THREADS: 0
/// (default) = hardware concurrency, 1 = the exact sequential path.
/// Misparses are fatal (stderr + exit 2).
unsigned ThreadsFromEnv();

/// Execution backend for the engine, read from COLARM_BENCH_BACKEND:
/// "scalar" (default) or "bitmap". Anything else is fatal (stderr +
/// exit 2). The backend also lands in the JSON sink so runs are
/// attributable after the fact.
ExecBackend BackendFromEnv();

/// Machine-readable sink for plan-figure runs: one JSON object per line
/// appended per (dataset, DQ, minsupp) scenario. Path comes from
/// COLARM_BENCH_JSON (default "BENCH_plans.json"; empty string disables).
std::string JsonSinkPath();

/// The three analogs of the paper's evaluation datasets (DESIGN.md §4),
/// at the paper's primary supports: chess 60%, mushroom 5%, PUMSB 80%.
BenchDataset MakeChess();
BenchDataset MakeMushroom();
BenchDataset MakePumsb();

/// Builds the engine for a bench dataset (calibrated cost constants).
std::unique_ptr<Engine> BuildEngine(const BenchDataset& dataset);

/// Queries selecting ~`dq_fraction` of the records: contiguous intervals
/// of the region attribute at `placements` deterministic offsets.
std::vector<LocalizedQuery> MakeQueries(const Dataset& data,
                                        double dq_fraction, double minsupp,
                                        double minconf, int placements);

/// Average per-plan execution times for one (DQ fraction, minsupp,
/// minconf) scenario, plus what the optimizer picked and what actually won.
struct ScenarioResult {
  double avg_ms[6] = {0, 0, 0, 0, 0, 0};
  PlanKind optimizer_pick = PlanKind::kSEV;
  PlanKind measured_best = PlanKind::kSEV;
  double optimizer_pick_ms = 0.0;
  double measured_best_ms = 0.0;
  size_t rules = 0;
};

ScenarioResult RunScenario(const Engine& engine, double dq_fraction,
                           double minsupp, double minconf, int placements);

/// "50%" / "1%" style labels used in the figure output.
std::string FractionLabel(double fraction);

/// Shared driver for the Figure 9/10/11 analogs: sweeps DQ size x minsupp
/// at fixed minconf and prints the per-plan average execution times with
/// the COLARM optimizer's pick marked.
void RunPlanFigure(const BenchDataset& dataset, const char* figure_title);

/// The paper's DQ sizes (Figures 9-13): 50%, 20%, 10%, 1% of |D|.
inline constexpr double kDqFractions[] = {0.5, 0.2, 0.1, 0.01};

}  // namespace bench
}  // namespace colarm

#endif  // COLARM_BENCH_HARNESS_H_
