// Micro-benchmarks comparing the mining substrates (Apriori vs Eclat vs
// FP-growth vs CHARM) on a common synthetic relation, plus tidset
// intersection throughput — the primitive the cost model calibrates.
#include <benchmark/benchmark.h>

#include "data/synthetic.h"
#include "mining/apriori.h"
#include "mining/charm.h"
#include "mining/declat.h"
#include "mining/eclat.h"
#include "mining/fpgrowth.h"
#include "mining/tidset.h"

namespace colarm {
namespace {

Dataset MakeData() {
  SyntheticConfig config;
  config.seed = 321;
  config.num_records = 2000;
  config.num_attributes = 10;
  config.values_per_attribute = 4;
  config.region_domain = 20;
  config.dominant_prob = 0.8;
  config.group_coherence = 0.5;
  return GenerateSynthetic(config).value();
}

void BM_Apriori(benchmark::State& state) {
  Dataset data = MakeData();
  const uint32_t min_count = MinCount(state.range(0) / 100.0, 2000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MineApriori(data, min_count).size());
  }
}
BENCHMARK(BM_Apriori)->Arg(50)->Arg(30);

void BM_Eclat(benchmark::State& state) {
  Dataset data = MakeData();
  const uint32_t min_count = MinCount(state.range(0) / 100.0, 2000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MineEclat(data, min_count).size());
  }
}
BENCHMARK(BM_Eclat)->Arg(50)->Arg(30)->Arg(10);

void BM_DEclat(benchmark::State& state) {
  Dataset data = MakeData();
  const uint32_t min_count = MinCount(state.range(0) / 100.0, 2000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MineDEclat(data, min_count).size());
  }
}
BENCHMARK(BM_DEclat)->Arg(50)->Arg(30)->Arg(10);

void BM_FpGrowth(benchmark::State& state) {
  Dataset data = MakeData();
  const uint32_t min_count = MinCount(state.range(0) / 100.0, 2000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MineFpGrowth(data, min_count).size());
  }
}
BENCHMARK(BM_FpGrowth)->Arg(50)->Arg(30)->Arg(10);

void BM_Charm(benchmark::State& state) {
  Dataset data = MakeData();
  VerticalView vertical(data);
  const uint32_t min_count = MinCount(state.range(0) / 100.0, 2000);
  for (auto _ : state) {
    size_t count = 0;
    MineCharm(vertical, min_count,
              [&count](const Itemset&, const Tidset&) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_Charm)->Arg(50)->Arg(30)->Arg(10);

void BM_TidsetIntersect(benchmark::State& state) {
  const auto n = static_cast<uint32_t>(state.range(0));
  Tidset a;
  Tidset b;
  for (uint32_t i = 0; i < n; ++i) {
    a.push_back(2 * i);
    b.push_back(3 * i);
  }
  Tidset out;
  for (auto _ : state) {
    TidsetIntersectInto(a, b, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_TidsetIntersect)->Arg(1000)->Arg(100000);

// Size-skewed intersections: the small side stays at 64 elements while
// the big side grows. Beyond a 32x skew TidsetIntersectSize switches from
// the linear merge to galloping probes, turning the cost from
// O(|small| + |big|) into O(|small| log |big|) — CHARM hits this shape
// constantly once the IT-tree search deepens past fat roots.
void BM_TidsetIntersectSkewed(benchmark::State& state) {
  const auto big_n = static_cast<uint32_t>(state.range(0));
  constexpr uint32_t kSmallN = 64;
  Tidset small;
  Tidset big;
  for (uint32_t i = 0; i < big_n; ++i) big.push_back(i);
  for (uint32_t i = 0; i < kSmallN; ++i) {
    small.push_back(i * (big_n / kSmallN) + (i % 7));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(TidsetIntersectSize(small, big));
  }
  state.SetItemsProcessed(state.iterations() * kSmallN);
}
BENCHMARK(BM_TidsetIntersectSkewed)
    ->Arg(1 << 11)   // 32x: the switch-over point
    ->Arg(1 << 14)   // 256x
    ->Arg(1 << 18);  // 4096x

void BM_TidsetIsSubsetSkewed(benchmark::State& state) {
  const auto big_n = static_cast<uint32_t>(state.range(0));
  constexpr uint32_t kSmallN = 64;
  Tidset big;
  Tidset sub;
  for (uint32_t i = 0; i < big_n; ++i) big.push_back(i);
  for (uint32_t i = 0; i < kSmallN; ++i) sub.push_back(i * (big_n / kSmallN));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TidsetIsSubset(sub, big));
  }
  state.SetItemsProcessed(state.iterations() * kSmallN);
}
BENCHMARK(BM_TidsetIsSubsetSkewed)->Arg(1 << 11)->Arg(1 << 14)->Arg(1 << 18);

}  // namespace
}  // namespace colarm

BENCHMARK_MAIN();
