// Regional trends: the workload the paper's introduction motivates — an
// analyst sweeping regions of a dataset looking for trends that hold
// locally but not globally. Generates an employment-like relation with
// three planted regional patterns, runs a localized query per region
// window, and reports fresh local rules (plus which plan the optimizer
// used for each request).
//
//   $ ./regional_trends
#include <cstdio>
#include <set>

#include "core/engine.h"
#include "core/explain.h"
#include "data/synthetic.h"

using namespace colarm;

int main() {
  SyntheticConfig config;
  config.name = "employment";
  config.seed = 20260705;
  config.num_records = 6000;
  config.num_attributes = 10;
  config.values_per_attribute = 4;
  config.region_domain = 30;
  config.dominant_prob = 0.88;
  config.num_groups = 3;
  config.group_coherence = 0.4;
  config.noise = 0.01;
  // Three regional economies with their own local trends.
  config.local_patterns = {
      {0, 5, {3, 4}, 2, 0.93},    // regions 0-5:   attrs 3,4 flip to v2
      {12, 17, {5, 6, 7}, 3, 0.9},  // regions 12-17: attrs 5-7 flip to v3
      {24, 29, {8, 9}, 1, 0.92},  // regions 24-29: attrs 8,9 flip to v1
  };
  auto data = GenerateSynthetic(config);
  if (!data.ok()) return 1;
  const Schema& schema = data->schema();

  EngineOptions options;
  options.index.primary_support = 0.04;  // low primary: keep local CFIs
  auto engine = Engine::Build(*data, options);
  if (!engine.ok()) return 1;
  std::printf("%u records, %u prestored MIPs (primary support 4%%).\n\n",
              data->num_records(), (*engine)->index().num_mips());

  const uint32_t m = data->num_records();
  // Slide a 6-region window across the region domain.
  for (ValueId lo = 0; lo + 6 <= 30; lo += 6) {
    LocalizedQuery query;
    query.ranges = {{0, lo, static_cast<ValueId>(lo + 5)}};
    query.minsupp = 0.8;
    query.minconf = 0.85;

    auto result = (*engine)->Execute(query);
    if (!result.ok()) continue;

    // "Strongly local" rules: the itemset's global support is not just
    // below the threshold, it misses it by 2x — trends that genuinely
    // belong to this window rather than diluted global structure.
    std::set<Itemset> strong_itemsets;
    size_t strong_rules = 0;
    for (const Rule& rule : result->rules.rules) {
      Itemset itemset = ItemsetUnion(rule.antecedent, rule.consequent);
      uint32_t global = (*engine)->index().GlobalCount(itemset);
      if (static_cast<double>(global) / m < query.minsupp / 2) {
        strong_itemsets.insert(itemset);
        ++strong_rules;
      }
    }
    std::printf("regions r%u..r%u  (|DQ|=%u, plan=%s): %zu rules, %zu "
                "strongly local (from %zu itemsets)\n",
                lo, lo + 5, result->stats.subset_size,
                PlanKindName(result->plan_used), result->rules.rules.size(),
                strong_rules, strong_itemsets.size());
    // Show one representative strongly-local itemset per window.
    if (!strong_itemsets.empty()) {
      std::printf("    e.g. %s\n",
                  ItemsetToString(schema, *strong_itemsets.begin()).c_str());
    }
  }

  std::printf(
      "\nWindows overlapping the planted economies (r0-r5, r12-r17,\n"
      "r24-r29) surface strongly local rules built from the planted\n"
      "pattern values; the windows in between carry none.\n");
  return 0;
}
