// Simpson's paradox walkthrough: mines the salary relation globally and
// then in every (Location, Gender) slice, printing the rules whose
// direction flips or that only exist locally — the phenomenon (Section 1.1
// of the paper) that motivates localized association rule mining.
//
//   $ ./salary_paradox
#include <cstdio>

#include "core/engine.h"
#include "core/explain.h"
#include "data/salary_dataset.h"

using namespace colarm;

int main() {
  Dataset data = MakeSalaryDataset();
  const Schema& schema = data.schema();

  EngineOptions options;
  options.index.primary_support = 0.18;  // 2 of 11 records
  auto engine = Engine::Build(data, options);
  if (!engine.ok()) return 1;

  // Global rules over Age/Salary at moderate thresholds.
  LocalizedQuery global;
  global.minsupp = 0.4;
  global.minconf = 0.8;
  auto global_result = (*engine)->Execute(global);
  std::printf("Global rules (minsupp 40%%, minconf 80%%):\n%s\n",
              FormatRules(schema, global_result->rules).c_str());

  // Localized mining in every (Location, Gender) slice.
  const AttrId location = 2;
  const AttrId gender = 3;
  for (ValueId loc = 0; loc < schema.attribute(location).domain_size();
       ++loc) {
    for (ValueId g = 0; g < schema.attribute(gender).domain_size(); ++g) {
      LocalizedQuery query;
      query.ranges = {{location, loc, loc}, {gender, g, g}};
      query.minsupp = 0.66;
      query.minconf = 0.99;
      auto result = (*engine)->Execute(query);
      if (!result.ok() || result->rules.rules.empty()) continue;
      if (result->stats.subset_size < 2) continue;

      std::printf("%s, %s employees (%u records):\n",
                  schema.attribute(location).values[loc].c_str(),
                  schema.attribute(gender).values[g].c_str(),
                  result->stats.subset_size);
      // Report only rules hidden globally: global support of the itemset
      // below the local threshold.
      const uint32_t m = data.num_records();
      size_t shown = 0;
      for (const Rule& rule : result->rules.rules) {
        Itemset itemset = ItemsetUnion(rule.antecedent, rule.consequent);
        uint32_t global_count = (*engine)->index().GlobalCount(itemset);
        if (static_cast<double>(global_count) / m >= query.minsupp) continue;
        if (++shown > 3) {
          std::printf("    ...\n");
          break;
        }
        std::printf("    fresh local: %s\n", rule.ToString(schema).c_str());
      }
      if (shown == 0) std::printf("    (no fresh local rules)\n");
    }
  }
  std::printf(
      "\nThe Seattle/F slice reproduces the paper's RL: a 30-40 age group\n"
      "earning 90K-120K with 100%% confidence, invisible at the same\n"
      "thresholds in the global rule list above.\n");
  return 0;
}
