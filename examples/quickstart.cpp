// Quickstart: build a COLARM engine over the paper's Table 1 salary
// relation and run the paper's running example — the localized rule for
// female Seattle employees that is invisible in the global context.
//
//   $ ./quickstart
#include <cstdio>

#include "core/engine.h"
#include "core/explain.h"
#include "data/salary_dataset.h"

using namespace colarm;

int main() {
  // 1. The dataset (11 records, 6 categorical attributes). Quantitative
  //    attributes (Age, Salary) are already discretized per the paper.
  Dataset data = MakeSalaryDataset();
  const Schema& schema = data.schema();

  // 2. Offline phase: mine closed frequent itemsets at the primary support
  //    threshold and build the two-level MIP-index.
  EngineOptions options;
  options.index.primary_support = 0.27;  // 3 of 11 records
  auto engine = Engine::Build(data, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::printf("Offline build done: %u MIPs prestored.\n\n",
              (*engine)->index().num_mips());

  // 3. Online phase: localized mining query for Seattle's female
  //    employees (the last four records of Table 1).
  LocalizedQuery query;
  query.ranges = {
      {2, 2, 2},  // Location = Seattle
      {3, 1, 1},  // Gender = F
  };
  query.minsupp = 0.75;
  query.minconf = 1.0;
  std::printf("Query: %s\n\n", query.ToString(schema).c_str());

  auto result = (*engine)->Execute(query);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", FormatQueryResult(schema, *result).c_str());

  // 4. The same thresholds globally: the localized trend disappears.
  LocalizedQuery global = query;
  global.ranges.clear();
  auto global_result = (*engine)->Execute(global);
  std::printf("Same thresholds over the full dataset:\n%s\n",
              FormatQueryResult(schema, *global_result).c_str());
  std::printf(
      "The Age=30-40 => Salary=90K-120K trend (75%% support, 100%%\n"
      "confidence among Seattle's female employees) is hidden globally —\n"
      "the Simpson's-paradox effect the paper is built around.\n");
  return 0;
}
