// Parameter recommendation (the paper's future-work item (a)): instead of
// the analyst guessing where local structure hides and which thresholds
// expose it, the recommender scans windows over every attribute domain and
// proposes ready-to-run localized queries ranked by how many fresh local
// itemsets they surface. The top suggestion is then executed, with
// null-invariant interestingness measures for each reported rule.
//
//   $ ./recommend_params
#include <cstdio>

#include "core/engine.h"
#include "core/recommender.h"
#include "data/synthetic.h"
#include "mining/measures.h"
#include "plans/focal_subset.h"

using namespace colarm;

int main() {
  // A sensor-fleet-like relation: two planted anomaly pockets.
  SyntheticConfig config;
  config.name = "sensor-fleet";
  config.seed = 909;
  config.num_records = 8000;
  config.num_attributes = 9;
  config.values_per_attribute = 4;
  config.region_domain = 48;
  config.dominant_prob = 0.9;
  config.group_coherence = 0.3;
  config.noise = 0.01;
  config.local_patterns = {
      {6, 11, {3, 4, 5}, 2, 0.94},   // overheating pocket
      {30, 35, {6, 7}, 3, 0.9},      // firmware-drift pocket
  };
  auto data = GenerateSynthetic(config);
  if (!data.ok()) return 1;
  const Schema& schema = data->schema();

  EngineOptions options;
  options.index.primary_support = 0.04;
  auto engine = Engine::Build(*data, options);
  if (!engine.ok()) return 1;
  std::printf("%u records indexed (%u MIPs). Asking the recommender where "
              "to look...\n\n",
              data->num_records(), (*engine)->index().num_mips());

  ParameterRecommender recommender((*engine)->index());
  auto suggestions = recommender.Suggest();
  if (suggestions.empty()) {
    std::printf("No localized structure found.\n");
    return 0;
  }
  for (size_t i = 0; i < suggestions.size(); ++i) {
    std::printf("%zu. %s\n", i + 1,
                suggestions[i].ToString(schema).c_str());
  }

  // Execute the top suggestion and annotate the strongest rules with the
  // null-invariant measures of Wu, Chen & Han.
  const RegionSuggestion& top = suggestions.front();
  std::printf("\nRunning suggestion #1...\n");
  auto result = (*engine)->Execute(top.query);
  if (!result.ok()) return 1;
  FocalSubset subset = FocalSubset::Materialize(
      *data, top.query.ToRect(schema));
  size_t shown = 0;
  for (const Rule& rule : result->rules.rules) {
    if (++shown > 5) break;
    RuleMeasures measures =
        ComputeMeasures(CountsForRule(*data, subset.tids, rule));
    std::printf("  %s\n      %s\n", rule.ToString(schema).c_str(),
                measures.ToString().c_str());
  }
  std::printf("\n%zu rules total from the suggested request.\n",
              result->rules.rules.size());
  return 0;
}
