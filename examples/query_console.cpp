// Query console: parse and execute the paper's textual query form against
// a CSV file (or the built-in salary dataset). Reads one query per line
// (';'-terminated statements may span lines) from stdin. Queries share a
// session cache, so drill-downs and threshold sweeps get warm answers;
// tier provenance prints per query and a summary at EOF, matching
// `colarm_cli session`.
//
//   $ ./query_console                      # built-in Table 1 salary data
//   $ ./query_console people.csv           # your own relation
//   $ echo 'REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE
//           Location = {Seattle} AND Gender = {F}
//           HAVING minsupport = 75% AND minconfidence = 100%;' \
//       | ./query_console
#include <cstdio>
#include <iostream>
#include <string>

#include "core/engine.h"
#include "core/explain.h"
#include "core/query_cache.h"
#include "core/query_parser.h"
#include "data/csv_reader.h"
#include "data/salary_dataset.h"

using namespace colarm;

int main(int argc, char** argv) {
  Dataset data = MakeSalaryDataset();
  if (argc > 1) {
    auto loaded = ReadCsvFile(argv[1], CsvOptions{});
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    data = std::move(loaded.value());
  }
  const Schema& schema = data.schema();

  EngineOptions options;
  options.index.primary_support = argc > 1 ? 0.1 : 0.27;
  // A console session is exactly the access pattern the session cache is
  // for: repeated drill-downs into overlapping focal boxes. Same budget as
  // `colarm_cli session` (64 MiB).
  options.cache.enabled = true;
  options.cache.byte_budget = 64u << 20;
  auto engine = Engine::Build(data, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  std::printf("COLARM console — %u records, %u attributes, %u MIPs.\n",
              data.num_records(), data.num_attributes(),
              (*engine)->index().num_mips());
  std::printf("Attributes:");
  for (AttrId a = 0; a < schema.num_attributes(); ++a) {
    std::printf(" %s(%u)", schema.attribute(a).name.c_str(),
                schema.attribute(a).domain_size());
  }
  std::printf("\nEnter queries terminated by ';' (EOF to quit).\n\n");

  std::string buffer;
  std::string line;
  while (std::getline(std::cin, line)) {
    buffer += line;
    buffer += '\n';
    size_t semi = buffer.find(';');
    while (semi != std::string::npos) {
      std::string statement = buffer.substr(0, semi + 1);
      buffer.erase(0, semi + 1);
      auto query = ParseQuery(schema, statement);
      if (!query.ok()) {
        std::printf("parse error: %s\n\n", query.status().ToString().c_str());
      } else {
        auto result = (*engine)->Execute(*query);
        if (!result.ok()) {
          std::printf("execution error: %s\n\n",
                      result.status().ToString().c_str());
        } else {
          // Tier provenance, matching `colarm_cli session` output.
          if (result->decision.cache.tier != CacheTier::kNone) {
            std::printf("[cache: %s hit, %.0f cached records]\n",
                        CacheTierName(result->decision.cache.tier),
                        result->decision.cache.cached_size);
          }
          std::printf("%s\n", FormatQueryResult(schema, *result).c_str());
        }
      }
      semi = buffer.find(';');
    }
  }
  if ((*engine)->cache() != nullptr) {
    CacheTelemetry t = (*engine)->cache()->telemetry();
    std::printf(
        "session summary: cache exact=%llu containment=%llu memo=%llu "
        "misses=%llu evictions=%llu resident=%llu bytes / %llu entries\n",
        static_cast<unsigned long long>(t.hits_exact),
        static_cast<unsigned long long>(t.hits_containment),
        static_cast<unsigned long long>(t.hits_count_memo),
        static_cast<unsigned long long>(t.misses),
        static_cast<unsigned long long>(t.evictions),
        static_cast<unsigned long long>(t.bytes),
        static_cast<unsigned long long>(t.entries));
  }
  return 0;
}
