// Plan explorer: an EXPLAIN-style tour of the six mining plans. Builds a
// mid-size synthetic dataset, then for several localized queries prints the
// optimizer's cost estimates next to the measured execution times of every
// plan — the paper's Table 4 brought to life.
//
//   $ ./plan_explorer
#include <cstdio>

#include "core/engine.h"
#include "core/explain.h"
#include "data/synthetic.h"

using namespace colarm;

namespace {

void Explore(const Engine& engine, const LocalizedQuery& query) {
  const Schema& schema = engine.index().dataset().schema();
  std::printf("Query: %s\n", query.ToString(schema).c_str());

  auto decision = engine.Explain(query);
  if (!decision.ok()) {
    std::printf("  explain failed: %s\n",
                decision.status().ToString().c_str());
    return;
  }
  std::printf("\nOptimizer estimates:\n%s\n",
              FormatDecision(*decision).c_str());

  std::printf("Measured:\n");
  std::printf("  %-9s %12s %10s %12s %8s\n", "plan", "total-ms", "cands",
              "qualified", "rules");
  for (PlanKind kind : kAllPlans) {
    auto run = engine.ExecuteWithPlan(query, kind);
    if (!run.ok()) continue;
    std::printf("  %-9s %12.2f %10llu %12llu %8zu%s\n", PlanKindName(kind),
                run->stats.total_ms,
                static_cast<unsigned long long>(run->stats.candidates_search),
                static_cast<unsigned long long>(
                    run->stats.candidates_qualified),
                run->rules.rules.size(),
                kind == decision->chosen ? "   <== optimizer's choice" : "");
  }
  std::printf("\n%s\n", std::string(72, '-').c_str());
}

}  // namespace

int main() {
  std::printf("The six COLARM mining plans (paper Table 4):\n\n%s\n",
              FormatPlanSummaryTable().c_str());

  SyntheticConfig config = ChessLikeConfig(0.5);
  auto data = GenerateSynthetic(config);
  if (!data.ok()) return 1;

  EngineOptions options;
  options.index.primary_support = 0.6;
  auto engine = Engine::Build(*data, options);
  if (!engine.ok()) return 1;
  std::printf("Dataset: %s, %u records; MIP-index holds %u closed frequent "
              "itemsets.\n\n",
              config.name.c_str(), data->num_records(),
              (*engine)->index().num_mips());

  // A large, an intermediate, and a tiny focal subset: different plans win.
  LocalizedQuery large;
  large.ranges = {{0, 0, 79}};
  large.minsupp = 0.62;
  large.minconf = 0.85;
  Explore(**engine, large);

  LocalizedQuery medium;
  medium.ranges = {{0, 20, 39}, {1, 1, 1}};
  medium.minsupp = 0.8;
  medium.minconf = 0.85;
  Explore(**engine, medium);

  LocalizedQuery tiny;
  tiny.ranges = {{0, 42, 43}};
  tiny.minsupp = 0.85;
  tiny.minconf = 0.9;
  Explore(**engine, tiny);
  return 0;
}
