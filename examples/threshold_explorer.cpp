// Threshold explorer: the PARAS-style interactive loop. One record-level
// pass materializes the full (support, confidence) parameter space of a
// focal subset; every threshold combination afterwards is answered
// instantly. Prints the rule-count map an exploration UI would render and
// drills into one cell.
//
//   $ ./threshold_explorer
#include <cstdio>

#include "common/timer.h"
#include "core/engine.h"
#include "core/explain.h"
#include "core/parameter_space.h"
#include "data/synthetic.h"

using namespace colarm;

int main() {
  auto data = GenerateSynthetic(ChessLikeConfig(0.5));
  if (!data.ok()) return 1;
  EngineOptions options;
  options.index.primary_support = 0.6;
  auto engine = Engine::Build(*data, options);
  if (!engine.ok()) return 1;

  LocalizedQuery base;
  base.ranges = {{0, 10, 49}};  // a 40%-of-domain region window
  std::printf("Focal selection: %s\n",
              base.ToString(data->schema()).c_str());

  Timer build_timer;
  auto view = ParameterSpaceView::Build((*engine)->index(), base,
                                        {.min_support_floor = 0.62});
  if (!view.ok()) {
    std::fprintf(stderr, "%s\n", view.status().ToString().c_str());
    return 1;
  }
  std::printf("Parameter space materialized in %.1f ms: |DQ|=%u, %zu rule "
              "points at floor %.0f%%.\n\n",
              build_timer.ElapsedMillis(), view->subset_size(),
              view->num_points(), view->floor() * 100.0);

  const std::vector<double> supps = {0.65, 0.70, 0.75, 0.80, 0.85, 0.90};
  const std::vector<double> confs = {0.70, 0.80, 0.90, 0.95, 0.99};
  Timer grid_timer;
  auto grid = view->CountGrid(supps, confs);
  std::printf("Rule counts by (minsupp x minconf) — %.2f ms for the whole "
              "grid:\n\n        ",
              grid_timer.ElapsedMillis());
  for (double conf : confs) std::printf("  conf>=%2.0f%%", conf * 100);
  std::printf("\n");
  for (size_t i = 0; i < supps.size(); ++i) {
    std::printf("supp>=%2.0f%%", supps[i] * 100);
    for (size_t j = 0; j < confs.size(); ++j) {
      std::printf("  %9u", grid[i][j]);
    }
    std::printf("\n");
  }

  // Drill into a cell of interest.
  std::printf("\nDrilling into (minsupp 80%%, minconf 95%%):\n");
  auto rules = view->RulesAt(0.80, 0.95);
  if (rules.ok()) {
    std::printf("%s", FormatRules(data->schema(), *rules, 8).c_str());
  }
  return 0;
}
