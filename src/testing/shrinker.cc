#include "testing/shrinker.h"

#include <algorithm>

#include "common/string_util.h"

namespace colarm {
namespace fuzzing {

namespace {

bool StillFails(const FuzzCase& fuzz_case, const CheckOptions& options) {
  return !CheckCase(fuzz_case, options).empty();
}

/// Copy of `base` keeping only the records whose index is in `keep`
/// (in order).
FuzzCase WithRecords(const FuzzCase& base, const std::vector<Tid>& keep) {
  FuzzCase out;
  out.seed = base.seed;
  out.primary_support = base.primary_support;
  out.queries = base.queries;
  out.dataset = Dataset{base.dataset.schema()};
  std::vector<ValueId> record(base.dataset.num_attributes());
  for (Tid t : keep) {
    for (AttrId a = 0; a < base.dataset.num_attributes(); ++a) {
      record[a] = base.dataset.Value(t, a);
    }
    if (!out.dataset.AddRecord(record).ok()) std::abort();
  }
  return out;
}

/// Copy of `base` without attribute `drop`; query attribute ids above it
/// shift down. Only called for attributes no query references.
FuzzCase WithoutAttribute(const FuzzCase& base, AttrId drop) {
  FuzzCase out;
  out.seed = base.seed;
  out.primary_support = base.primary_support;
  const Schema& schema = base.dataset.schema();
  std::vector<Attribute> attrs;
  for (AttrId a = 0; a < schema.num_attributes(); ++a) {
    if (a != drop) attrs.push_back(schema.attribute(a));
  }
  out.dataset = Dataset{Schema(std::move(attrs))};
  std::vector<ValueId> record;
  record.reserve(schema.num_attributes() - 1);
  for (Tid t = 0; t < base.dataset.num_records(); ++t) {
    record.clear();
    for (AttrId a = 0; a < schema.num_attributes(); ++a) {
      if (a != drop) record.push_back(base.dataset.Value(t, a));
    }
    if (!out.dataset.AddRecord(record).ok()) std::abort();
  }
  // Item ids are dense over (attribute, value): dropping an attribute
  // shifts every item of the attributes above it, so constraint item lists
  // must be remapped through the new schema (the dropped attribute itself
  // is never constraint-mentioned — QueryMentionsAttr guards it).
  const Schema& new_schema = out.dataset.schema();
  auto remap_items = [&](Itemset* items) {
    for (ItemId& item : *items) {
      const AttrId a = schema.AttrOfItem(item);
      const ValueId v = schema.ValueOfItem(item);
      item = new_schema.ItemOf(a > drop ? a - 1 : a, v);
    }
    std::sort(items->begin(), items->end());
  };
  for (LocalizedQuery query : base.queries) {
    for (auto& range : query.ranges) {
      if (range.attr > drop) --range.attr;
    }
    for (auto& a : query.item_attrs) {
      if (a > drop) --a;
    }
    remap_items(&query.constraints.must_contain);
    remap_items(&query.constraints.must_exclude);
    for (auto& a : query.constraints.antecedent_only) {
      if (a > drop) --a;
    }
    out.queries.push_back(std::move(query));
  }
  return out;
}

bool QueryMentionsAttr(const Schema& schema, const LocalizedQuery& query,
                       AttrId attr) {
  for (const auto& range : query.ranges) {
    if (range.attr == attr) return true;
  }
  for (ItemId item : query.constraints.must_contain) {
    if (schema.AttrOfItem(item) == attr) return true;
  }
  for (ItemId item : query.constraints.must_exclude) {
    if (schema.AttrOfItem(item) == attr) return true;
  }
  if (std::find(query.constraints.antecedent_only.begin(),
                query.constraints.antecedent_only.end(),
                attr) != query.constraints.antecedent_only.end()) {
    return true;
  }
  return std::find(query.item_attrs.begin(), query.item_attrs.end(), attr) !=
         query.item_attrs.end();
}

}  // namespace

FuzzCase ShrinkCase(const FuzzCase& failing, const CheckOptions& options) {
  FuzzCase current = failing;
  if (!StillFails(current, options)) return current;

  // 1. One query is almost always enough.
  if (current.queries.size() > 1) {
    for (size_t qi = 0; qi < current.queries.size(); ++qi) {
      FuzzCase candidate = current;
      candidate.queries = {current.queries[qi]};
      if (StillFails(candidate, options)) {
        current = std::move(candidate);
        break;
      }
    }
  }

  // 2. Delta-debug the records: remove ever-smaller chunks while the
  // violation persists.
  for (uint32_t chunk = std::max<uint32_t>(1, current.dataset.num_records() / 2);
       chunk >= 1; chunk /= 2) {
    bool removed_any = true;
    while (removed_any && current.dataset.num_records() > 1) {
      removed_any = false;
      const uint32_t n = current.dataset.num_records();
      for (uint32_t start = 0; start < n && current.dataset.num_records() > 1;
           start += chunk) {
        const uint32_t live = current.dataset.num_records();
        if (start >= live) break;
        std::vector<Tid> keep;
        for (Tid t = 0; t < live; ++t) {
          if (t < start || t >= start + chunk) keep.push_back(t);
        }
        if (keep.empty()) continue;
        FuzzCase candidate = WithRecords(current, keep);
        if (StillFails(candidate, options)) {
          current = std::move(candidate);
          removed_any = true;
        }
      }
    }
    if (chunk == 1) break;
  }

  // 3. Drop attributes no query mentions (their items may still matter via
  // closures, so every drop is re-verified).
  for (AttrId a = current.dataset.num_attributes(); a-- > 0;) {
    if (current.dataset.num_attributes() <= 2) break;
    bool mentioned = false;
    for (const auto& query : current.queries) {
      mentioned |= QueryMentionsAttr(current.dataset.schema(), query, a);
    }
    if (mentioned) continue;
    FuzzCase candidate = WithoutAttribute(current, a);
    if (StillFails(candidate, options)) current = std::move(candidate);
  }
  return current;
}

std::string FormatReproducer(const FuzzCase& fuzz_case) {
  const Dataset& dataset = fuzz_case.dataset;
  const Schema& schema = dataset.schema();
  std::string out = StrFormat(
      "// Shrunk reproducer: seed %llu, %u record(s), %u attribute(s).\n"
      "TEST(FuzzRegression, Seed%llu) {\n"
      "  std::vector<Attribute> attrs(%u);\n",
      static_cast<unsigned long long>(fuzz_case.seed), dataset.num_records(),
      dataset.num_attributes(),
      static_cast<unsigned long long>(fuzz_case.seed),
      dataset.num_attributes());
  for (AttrId a = 0; a < schema.num_attributes(); ++a) {
    const Attribute& attr = schema.attribute(a);
    out += StrFormat("  attrs[%u].name = \"%s\";\n", a, attr.name.c_str());
    out += StrFormat("  attrs[%u].values = {", a);
    for (uint32_t v = 0; v < attr.domain_size(); ++v) {
      out += StrFormat("%s\"%s\"", v ? ", " : "", attr.values[v].c_str());
    }
    out += "};\n";
  }
  out += "\n  fuzzing::FuzzCase fc;\n";
  out += StrFormat("  fc.seed = %llu;\n",
                   static_cast<unsigned long long>(fuzz_case.seed));
  out += StrFormat("  fc.primary_support = %.17g;\n",
                   fuzz_case.primary_support);
  out += "  fc.dataset = Dataset{Schema(std::move(attrs))};\n";
  for (Tid t = 0; t < dataset.num_records(); ++t) {
    out += "  ASSERT_TRUE(fc.dataset.AddRecord({";
    for (AttrId a = 0; a < dataset.num_attributes(); ++a) {
      out += StrFormat("%s%u", a ? ", " : "",
                       static_cast<unsigned>(dataset.Value(t, a)));
    }
    out += "}).ok());\n";
  }
  for (const LocalizedQuery& query : fuzz_case.queries) {
    out += "\n  LocalizedQuery query;\n";
    if (!query.ranges.empty()) {
      out += "  query.ranges = {";
      for (size_t i = 0; i < query.ranges.size(); ++i) {
        out += StrFormat("%s{%u, %u, %u}", i ? ", " : "",
                         query.ranges[i].attr,
                         static_cast<unsigned>(query.ranges[i].lo),
                         static_cast<unsigned>(query.ranges[i].hi));
      }
      out += "};\n";
    }
    if (!query.item_attrs.empty()) {
      out += "  query.item_attrs = {";
      for (size_t i = 0; i < query.item_attrs.size(); ++i) {
        out += StrFormat("%s%u", i ? ", " : "", query.item_attrs[i]);
      }
      out += "};\n";
    }
    out += StrFormat("  query.minsupp = %.17g;\n", query.minsupp);
    out += StrFormat("  query.minconf = %.17g;\n", query.minconf);
    const RuleConstraints& cons = query.constraints;
    auto print_ids = [&out](const char* field, const auto& ids) {
      if (ids.empty()) return;
      out += StrFormat("  query.constraints.%s = {", field);
      for (size_t i = 0; i < ids.size(); ++i) {
        out += StrFormat("%s%u", i ? ", " : "",
                         static_cast<unsigned>(ids[i]));
      }
      out += "};\n";
    };
    print_ids("must_contain", cons.must_contain);
    print_ids("must_exclude", cons.must_exclude);
    print_ids("antecedent_only", cons.antecedent_only);
    if (cons.min_lift > 0.0) {
      out += StrFormat("  query.constraints.min_lift = %.17g;\n",
                       cons.min_lift);
    }
    if (cons.min_cosine > 0.0) {
      out += StrFormat("  query.constraints.min_cosine = %.17g;\n",
                       cons.min_cosine);
    }
    if (cons.min_kulczynski > 0.0) {
      out += StrFormat("  query.constraints.min_kulczynski = %.17g;\n",
                       cons.min_kulczynski);
    }
    out += "  fc.queries.push_back(query);\n";
  }
  out +=
      "\n  for (const auto& violation : fuzzing::CheckCase(fc)) {\n"
      "    ADD_FAILURE() << violation.ToString();\n"
      "  }\n"
      "}\n";
  return out;
}

}  // namespace fuzzing
}  // namespace colarm
