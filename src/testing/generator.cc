#include "testing/generator.h"

#include <algorithm>
#include <string>

#include "common/rng.h"

namespace colarm {
namespace fuzzing {

namespace {

enum class Shape { kUniform, kZipf, kCorrelated, kSparse };

Schema GenSchema(Rng* rng, const FuzzLimits& limits) {
  const uint32_t n_attrs = static_cast<uint32_t>(rng->UniformRange(
      limits.min_attrs, limits.max_attrs));
  std::vector<Attribute> attrs;
  attrs.reserve(n_attrs);
  for (uint32_t a = 0; a < n_attrs; ++a) {
    Attribute attr;
    attr.name = "a" + std::to_string(a);
    const uint32_t domain = static_cast<uint32_t>(rng->UniformRange(
        limits.min_domain, limits.max_domain));
    for (uint32_t v = 0; v < domain; ++v) {
      attr.values.push_back("v" + std::to_string(v));
    }
    attrs.push_back(std::move(attr));
  }
  return Schema(std::move(attrs));
}

Dataset GenDataset(Rng* rng, const FuzzLimits& limits) {
  Schema schema = GenSchema(rng, limits);
  const uint32_t n_attrs = schema.num_attributes();
  const auto shape = static_cast<Shape>(rng->Uniform(4));
  const uint32_t records = static_cast<uint32_t>(rng->UniformRange(
      limits.min_records, limits.max_records));

  // Correlated shape: attributes share "groups" whose members copy one
  // per-record hidden value (modulo domain), creating closed-itemset
  // structure the MIP-index actually exercises.
  std::vector<uint32_t> group_of(n_attrs);
  const uint32_t n_groups = 1 + static_cast<uint32_t>(rng->Uniform(3));
  for (auto& g : group_of) g = static_cast<uint32_t>(rng->Uniform(n_groups));
  const double coherence = 0.5 + rng->NextDouble() * 0.4;
  const double dominant = 0.6 + rng->NextDouble() * 0.3;
  const double zipf_theta = 0.5 + rng->NextDouble() * 1.5;

  Dataset dataset{std::move(schema)};
  std::vector<ValueId> record(n_attrs);
  std::vector<uint64_t> group_state(n_groups);
  for (uint32_t r = 0; r < records; ++r) {
    for (auto& s : group_state) s = rng->Next();
    for (uint32_t a = 0; a < n_attrs; ++a) {
      const uint32_t domain = dataset.schema().attribute(a).domain_size();
      switch (shape) {
        case Shape::kUniform:
          record[a] = static_cast<ValueId>(rng->Uniform(domain));
          break;
        case Shape::kZipf:
          record[a] = static_cast<ValueId>(rng->Zipf(domain, zipf_theta));
          break;
        case Shape::kCorrelated:
          record[a] = rng->Bernoulli(coherence)
                          ? static_cast<ValueId>(group_state[group_of[a]] %
                                                 domain)
                          : static_cast<ValueId>(rng->Uniform(domain));
          break;
        case Shape::kSparse:
          record[a] = rng->Bernoulli(dominant)
                          ? 0
                          : static_cast<ValueId>(rng->Uniform(domain));
          break;
      }
    }
    if (!dataset.AddRecord(record).ok()) std::abort();
  }
  return dataset;
}

/// A threshold that is either an exact count ratio (the boundary the
/// >= vs > bugs live on), the 1.0 extreme, or a plain random fraction.
double GenThreshold(Rng* rng, uint32_t total) {
  switch (rng->Uniform(4)) {
    case 0: {  // exact k/total boundary
      if (total == 0) return 1.0;
      const auto k = static_cast<uint32_t>(rng->UniformRange(1, total));
      return static_cast<double>(k) / total;
    }
    case 1: {  // exact small-integer ratio p/q (confidence boundaries)
      const auto q = static_cast<uint32_t>(rng->UniformRange(2, 8));
      const auto p = static_cast<uint32_t>(rng->UniformRange(1, q));
      return static_cast<double>(p) / q;
    }
    case 2:
      return 1.0;
    default:
      return 0.05 + rng->NextDouble() * 0.9;
  }
}

// Sorted-unique canonical form Validate requires.
template <typename T>
void Canonicalize(std::vector<T>* ids) {
  std::sort(ids->begin(), ids->end());
  ids->erase(std::unique(ids->begin(), ids->end()), ids->end());
}

// Draws 1-2 items, biased toward items of a real record (satisfiable
// constraints) but often fully random — contradictory CONTAIN/EXCLUDE
// pairs, items outside the focal box, and pinned vocabularies all need
// fuzzing too.
Itemset GenItemList(Rng* rng, const Dataset& dataset) {
  const Schema& schema = dataset.schema();
  const uint32_t n_attrs = schema.num_attributes();
  Itemset items;
  const uint32_t count = 1 + static_cast<uint32_t>(rng->Uniform(2));
  const bool from_record =
      dataset.num_records() > 0 && rng->Bernoulli(0.5);
  const Tid t = from_record
                    ? static_cast<Tid>(rng->Uniform(dataset.num_records()))
                    : 0;
  for (uint32_t i = 0; i < count; ++i) {
    const AttrId a = static_cast<AttrId>(rng->Uniform(n_attrs));
    const ValueId v =
        from_record ? dataset.Value(t, a)
                    : static_cast<ValueId>(
                          rng->Uniform(schema.attribute(a).domain_size()));
    items.push_back(schema.ItemOf(a, v));
  }
  Canonicalize(&items);
  return items;
}

void GenConstraints(Rng* rng, const Dataset& dataset, LocalizedQuery* query) {
  const uint32_t n_attrs = dataset.schema().num_attributes();
  RuleConstraints& cons = query->constraints;
  if (rng->Bernoulli(0.5)) cons.must_contain = GenItemList(rng, dataset);
  if (rng->Bernoulli(0.4)) cons.must_exclude = GenItemList(rng, dataset);
  if (rng->Bernoulli(0.3)) {
    cons.antecedent_only.push_back(static_cast<AttrId>(rng->Uniform(n_attrs)));
    if (rng->Bernoulli(0.3)) {
      cons.antecedent_only.push_back(
          static_cast<AttrId>(rng->Uniform(n_attrs)));
    }
    Canonicalize(&cons.antecedent_only);
  }
  if (rng->Bernoulli(0.4)) {
    switch (rng->Uniform(3)) {
      case 0:  // lift floors straddle the independence point 1.0
        cons.min_lift = 0.5 + rng->NextDouble() * 1.5;
        break;
      case 1:
        cons.min_cosine = GenThreshold(rng, 0);
        break;
      default:
        cons.min_kulczynski = GenThreshold(rng, 0);
        break;
    }
  }
  if (rng->Bernoulli(0.3)) {
    // HAVING minantsupp: exercised with boundary-heavy thresholds so the
    // integer MinCount comparison hits exact-tie cases.
    cons.min_antecedent_supp = GenThreshold(rng, dataset.num_records());
  }
}

LocalizedQuery GenQuery(Rng* rng, const Dataset& dataset,
                        const FuzzLimits& limits) {
  const Schema& schema = dataset.schema();
  const uint32_t n_attrs = schema.num_attributes();
  LocalizedQuery query;

  const uint64_t flavor = rng->Uniform(6);
  if (flavor == 0) {
    // Full-domain box: no RANGE constraint at all (DQ = D).
  } else if (flavor == 1 && dataset.num_records() > 0) {
    // Point box on a real record: every attribute pinned to that record's
    // value, so DQ is small but guaranteed non-empty.
    const Tid t = static_cast<Tid>(rng->Uniform(dataset.num_records()));
    for (AttrId a = 0; a < n_attrs; ++a) {
      const ValueId v = dataset.Value(t, a);
      query.ranges.push_back({a, v, v});
    }
  } else {
    // Random box over a random subset of attributes; often empty or tiny.
    const uint32_t constrained =
        1 + static_cast<uint32_t>(rng->Uniform(n_attrs));
    for (uint32_t i = 0; i < constrained; ++i) {
      const AttrId attr = static_cast<AttrId>(rng->Uniform(n_attrs));
      bool dup = false;
      for (const auto& r : query.ranges) dup |= (r.attr == attr);
      if (dup) continue;
      const uint32_t domain = schema.attribute(attr).domain_size();
      const auto lo = static_cast<ValueId>(rng->Uniform(domain));
      const auto hi = static_cast<ValueId>(
          rng->UniformRange(lo, domain - 1));
      query.ranges.push_back({attr, lo, hi});
    }
  }

  switch (rng->Uniform(4)) {
    case 0:  // single-attribute vocabulary (rules are then impossible)
      query.item_attrs = {static_cast<AttrId>(rng->Uniform(n_attrs))};
      break;
    case 1: {  // random proper subset, at least one attribute
      for (AttrId a = 0; a < n_attrs; ++a) {
        if (rng->Bernoulli(0.6)) query.item_attrs.push_back(a);
      }
      if (query.item_attrs.empty()) {
        query.item_attrs.push_back(static_cast<AttrId>(rng->Uniform(n_attrs)));
      }
      break;
    }
    default:  // empty = all attributes
      break;
  }

  query.minsupp = GenThreshold(rng, dataset.num_records());
  query.minconf = GenThreshold(rng, 0);
  if (limits.constraints && rng->Bernoulli(0.5)) {
    GenConstraints(rng, dataset, &query);
  }
  return query;
}

}  // namespace

FuzzCase GenerateFuzzCase(uint64_t seed, const FuzzLimits& limits) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  FuzzCase fuzz_case;
  fuzz_case.seed = seed;
  fuzz_case.dataset = GenDataset(&rng, limits);
  // Primary support high enough to keep the oracle's enumeration small but
  // low enough that MIPs exist; occasionally an exact boundary ratio.
  fuzz_case.primary_support =
      rng.Bernoulli(0.25)
          ? GenThreshold(&rng, fuzz_case.dataset.num_records())
          : 0.2 + rng.NextDouble() * 0.5;
  for (uint32_t q = 0; q < limits.queries_per_case; ++q) {
    fuzz_case.queries.push_back(GenQuery(&rng, fuzz_case.dataset, limits));
  }
  return fuzz_case;
}

}  // namespace fuzzing
}  // namespace colarm
