#include "testing/oracle.h"

#include <algorithm>

#include "mining/constraints.h"

namespace colarm {
namespace fuzzing {

namespace {

/// Tids (within `tids`, or all records when `tids` is null) containing
/// every item of `items`, by raw column lookups.
std::vector<Tid> SupportingTids(const Dataset& dataset,
                                std::span<const ItemId> items,
                                const std::vector<Tid>* tids) {
  std::vector<Tid> out;
  auto contains = [&](Tid t) {
    for (ItemId item : items) {
      if (!dataset.ContainsItem(t, item)) return false;
    }
    return true;
  };
  if (tids == nullptr) {
    for (Tid t = 0; t < dataset.num_records(); ++t) {
      if (contains(t)) out.push_back(t);
    }
  } else {
    for (Tid t : *tids) {
      if (contains(t)) out.push_back(t);
    }
  }
  return out;
}

/// The closure of an itemset: every item present in all of `tids`. With at
/// least one supporting record this is well defined and contains `items`.
Itemset ClosureOf(const Dataset& dataset, std::span<const Tid> tids) {
  const Schema& schema = dataset.schema();
  Itemset closure;
  for (AttrId a = 0; a < schema.num_attributes(); ++a) {
    const ValueId v = dataset.Value(tids.front(), a);
    bool shared = true;
    for (Tid t : tids.subspan(1)) {
      if (dataset.Value(t, a) != v) {
        shared = false;
        break;
      }
    }
    if (shared) closure.push_back(schema.ItemOf(a, v));
  }
  return closure;
}

/// Depth-first enumeration of every globally frequent itemset at
/// `min_count`, keeping only the closed ones (itemset == its closure).
void EnumerateClosed(const Dataset& dataset, uint32_t min_count,
                     Itemset* prefix, const std::vector<Tid>& tids,
                     ItemId next_item, std::vector<FrequentItemset>* out) {
  if (!prefix->empty()) {
    Itemset closure = ClosureOf(dataset, tids);
    if (closure == *prefix) {
      out->push_back({*prefix, static_cast<uint32_t>(tids.size())});
    }
  }
  const ItemId num_items = dataset.schema().num_items();
  for (ItemId item = next_item; item < num_items; ++item) {
    prefix->push_back(item);
    std::vector<Tid> extended = SupportingTids(dataset, {&item, 1}, &tids);
    if (extended.size() >= min_count) {
      EnumerateClosed(dataset, min_count, prefix, extended, item + 1, out);
    }
    prefix->pop_back();
  }
}

}  // namespace

uint32_t OracleMinCount(double fraction, uint32_t total) {
  if (fraction <= 0.0 || total == 0) return 1;
  const double raw = fraction * static_cast<double>(total);
  for (uint32_t c = 1; c < total; ++c) {
    if (static_cast<double>(c) + 1e-9 >= raw) return c;
  }
  return total;
}

Result<RuleSet> OracleLocalizedRules(const Dataset& dataset,
                                     double primary_support,
                                     const LocalizedQuery& query,
                                     const OracleOptions& options) {
  const Schema& schema = dataset.schema();
  COLARM_RETURN_IF_ERROR(query.Validate(schema));

  // DQ straight from the RANGE predicates (no Rect, no FocalSubset).
  std::vector<Tid> dq;
  for (Tid t = 0; t < dataset.num_records(); ++t) {
    bool inside = true;
    for (const RangeSelection& range : query.ranges) {
      const ValueId v = dataset.Value(t, range.attr);
      if (v < range.lo || v > range.hi) {
        inside = false;
        break;
      }
    }
    if (inside) dq.push_back(t);
  }
  RuleSet out;
  if (dq.empty()) return out;

  // The prestored family from first principles: closed + globally frequent
  // at the primary threshold.
  const uint32_t primary_count =
      OracleMinCount(primary_support, dataset.num_records());
  std::vector<Tid> all(dataset.num_records());
  for (Tid t = 0; t < dataset.num_records(); ++t) all[t] = t;
  std::vector<FrequentItemset> closed;
  Itemset prefix;
  EnumerateClosed(dataset, primary_count, &prefix, all, 0, &closed);

  const std::vector<bool> allowed = query.ItemAttrMask(schema);
  int64_t min_count =
      static_cast<int64_t>(
          OracleMinCount(query.minsupp, static_cast<uint32_t>(dq.size()))) +
      options.inject_min_count_bias;
  if (min_count < 1) min_count = 1;

  for (const FrequentItemset& cfi : closed) {
    const size_t len = cfi.items.size();
    if (len < 2 || len > options.max_itemset_length || len > 31) continue;
    bool attrs_ok = true;
    for (ItemId item : cfi.items) {
      if (!allowed[schema.AttrOfItem(item)]) {
        attrs_ok = false;
        break;
      }
    }
    if (!attrs_ok) continue;
    // Exact at the itemset level: a rule's itemset is the full CFI.
    if (!ItemsetSatisfiesConstraints(cfi.items, query.constraints)) continue;
    const auto local =
        static_cast<uint32_t>(SupportingTids(dataset, cfi.items, &dq).size());
    if (local < min_count) continue;

    const uint32_t full_mask = (1u << len) - 1;
    for (uint32_t mask = 1; mask < full_mask; ++mask) {
      Itemset antecedent;
      Itemset consequent;
      for (size_t i = 0; i < len; ++i) {
        if (mask & (1u << i)) {
          antecedent.push_back(cfi.items[i]);
        } else {
          consequent.push_back(cfi.items[i]);
        }
      }
      if (!query.constraints.antecedent_only.empty()) {
        bool pinned_ok = true;
        for (ItemId item : consequent) {
          if (std::binary_search(query.constraints.antecedent_only.begin(),
                                 query.constraints.antecedent_only.end(),
                                 schema.AttrOfItem(item))) {
            pinned_ok = false;
            break;
          }
        }
        if (!pinned_ok) continue;
      }
      const auto acount = static_cast<uint32_t>(
          SupportingTids(dataset, antecedent, &dq).size());
      if (acount == 0) continue;
      const double confidence = static_cast<double>(local) / acount;
      if (confidence + 1e-12 < query.minconf) continue;
      if (query.constraints.HasMeasures()) {
        const auto ccount = static_cast<uint32_t>(
            SupportingTids(dataset, consequent, &dq).size());
        const RuleCounts counts{local, acount, ccount,
                                static_cast<uint32_t>(dq.size())};
        if (!PassesMeasureFloors(counts, query.constraints)) continue;
      }
      out.rules.push_back(Rule{std::move(antecedent), std::move(consequent),
                               local, acount,
                               static_cast<uint32_t>(dq.size())});
    }
  }
  out.Canonicalize();
  return out;
}

}  // namespace fuzzing
}  // namespace colarm
