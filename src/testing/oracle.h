#ifndef COLARM_TESTING_ORACLE_H_
#define COLARM_TESTING_ORACLE_H_

#include "common/status.h"
#include "data/dataset.h"
#include "mining/rule.h"
#include "plans/query.h"

namespace colarm {
namespace fuzzing {

/// Knobs of the reference oracle. `inject_min_count_bias` deliberately
/// perturbs the local minsupport threshold (simulating a `>` vs `>=`
/// off-by-one in the system under test); the differential checker must
/// catch the resulting divergence — see tests/prop/shrinker_test.cc.
struct OracleOptions {
  uint32_t max_itemset_length = 31;
  int32_t inject_min_count_bias = 0;
};

/// Brute-force reference implementation of the localized-mining contract
/// (DESIGN.md §2), independent of CHARM, the MIP-index, the R-tree, and
/// every plan operator:
///
///   1. DQ is found by scanning the raw records against the RANGE
///      predicates directly.
///   2. The prestored family is re-derived from first principles: every
///      globally frequent itemset at the primary threshold whose closure
///      (the set of items shared by all its supporting records) equals
///      itself.
///   3. Local supports and antecedent counts come from per-itemset scans
///      over DQ; thresholds use the contract's ceil semantics and the
///      contract's confidence tolerance (conf + 1e-12 >= minconf).
///
/// Exponential in the worst case — feed it the small datasets the fuzz
/// generator produces.
Result<RuleSet> OracleLocalizedRules(const Dataset& dataset,
                                     double primary_support,
                                     const LocalizedQuery& query,
                                     const OracleOptions& options = {});

/// The contract's threshold semantics, implemented independently of
/// MinCount (mining/itemset.h): the least count c >= 1 whose fraction of
/// `total` reaches `fraction`, found by linear scan.
uint32_t OracleMinCount(double fraction, uint32_t total);

}  // namespace fuzzing
}  // namespace colarm

#endif  // COLARM_TESTING_ORACLE_H_
