#include "testing/invariants.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <utility>

#include "common/cpu_features.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "core/cache_persist.h"
#include "core/engine.h"
#include "mining/constraints.h"
#include "mip/serialize.h"
#include "plans/plans.h"

namespace colarm {
namespace fuzzing {

namespace {

/// Match the oracle's exhaustive antecedent cap so both sides skip the
/// same (over-long) itemsets.
RuleGenOptions WideRuleGen(const OracleOptions& oracle) {
  RuleGenOptions options;
  options.max_itemset_length = oracle.max_itemset_length;
  return options;
}

/// First-difference summary between two canonicalized rule sets.
std::string DiffRuleSets(const Schema& schema, const RuleSet& got,
                         const RuleSet& want) {
  std::string out = StrFormat("%zu rules vs %zu expected", got.rules.size(),
                              want.rules.size());
  const size_t n = std::min(got.rules.size(), want.rules.size());
  for (size_t i = 0; i < n; ++i) {
    const Rule& g = got.rules[i];
    const Rule& w = want.rules[i];
    if (!g.SameRule(w) || g.itemset_count != w.itemset_count ||
        g.antecedent_count != w.antecedent_count ||
        g.base_count != w.base_count) {
      return out + "; first diff at #" + std::to_string(i) + ": got " +
             g.ToString(schema) + " want " + w.ToString(schema);
    }
  }
  if (got.rules.size() > want.rules.size()) {
    return out + "; first extra: " + got.rules[n].ToString(schema);
  }
  if (want.rules.size() > got.rules.size()) {
    return out + "; first missing: " + want.rules[n].ToString(schema);
  }
  return out;
}

/// First-difference summary between the deterministic effort counters of
/// two runs of the same plan (timings are excluded: they are the only
/// fields allowed to differ between backends).
std::string DiffEffort(const PlanStats& got, const PlanStats& want) {
  auto diff = [](const char* name, uint64_t g, uint64_t w) {
    return StrFormat("%s: %llu vs %llu expected", name,
                     static_cast<unsigned long long>(g),
                     static_cast<unsigned long long>(w));
  };
  if (got.subset_size != want.subset_size)
    return diff("subset_size", got.subset_size, want.subset_size);
  if (got.local_min_count != want.local_min_count)
    return diff("local_min_count", got.local_min_count, want.local_min_count);
  if (got.candidates_search != want.candidates_search)
    return diff("candidates_search", got.candidates_search,
                want.candidates_search);
  if (got.candidates_contained != want.candidates_contained)
    return diff("candidates_contained", got.candidates_contained,
                want.candidates_contained);
  if (got.candidates_qualified != want.candidates_qualified)
    return diff("candidates_qualified", got.candidates_qualified,
                want.candidates_qualified);
  if (got.record_checks != want.record_checks)
    return diff("record_checks", got.record_checks, want.record_checks);
  if (got.rtree_nodes_visited != want.rtree_nodes_visited)
    return diff("rtree_nodes_visited", got.rtree_nodes_visited,
                want.rtree_nodes_visited);
  if (got.rtree_pruned_by_support != want.rtree_pruned_by_support)
    return diff("rtree_pruned_by_support", got.rtree_pruned_by_support,
                want.rtree_pruned_by_support);
  if (got.rules_considered != want.rules_considered)
    return diff("rules_considered", got.rules_considered,
                want.rules_considered);
  if (got.rules_emitted != want.rules_emitted)
    return diff("rules_emitted", got.rules_emitted, want.rules_emitted);
  if (got.itemsets_skipped != want.itemsets_skipped)
    return diff("itemsets_skipped", got.itemsets_skipped,
                want.itemsets_skipped);
  return {};
}

using RuleKey = std::pair<Itemset, Itemset>;

std::map<RuleKey, const Rule*> IndexRules(const RuleSet& rules) {
  std::map<RuleKey, const Rule*> by_key;
  for (const Rule& rule : rules.rules) {
    by_key[{rule.antecedent, rule.consequent}] = &rule;
  }
  return by_key;
}

/// A strictly tighter focal box derived deterministically from `query`:
/// narrow the first shrinkable range, or constrain a fresh attribute.
/// Returns false when no tightening is possible (all ranges are points on
/// every attribute already).
bool TightenQuery(const Schema& schema, LocalizedQuery* query) {
  for (RangeSelection& range : query->ranges) {
    if (range.hi > range.lo) {
      --range.hi;
      return true;
    }
  }
  for (AttrId a = 0; a < schema.num_attributes(); ++a) {
    bool constrained = false;
    for (const auto& r : query->ranges) constrained |= (r.attr == a);
    if (constrained) continue;
    const uint32_t domain = schema.attribute(a).domain_size();
    if (domain < 2) continue;
    query->ranges.push_back({a, 0, static_cast<ValueId>(domain - 2)});
    return true;
  }
  return false;
}

}  // namespace

std::string Violation::ToString() const {
  return StrFormat("[%s] query #%zu: %s", invariant.c_str(), query_index,
                   detail.c_str());
}

std::vector<Violation> CheckCase(const FuzzCase& fuzz_case,
                                 const CheckOptions& options) {
  std::vector<Violation> violations;
  auto fail = [&](const char* invariant, size_t query_index,
                  std::string detail) {
    violations.push_back({invariant, query_index, std::move(detail)});
  };

  const Dataset& dataset = fuzz_case.dataset;
  const Schema& schema = dataset.schema();
  MipIndexOptions index_options;
  index_options.primary_support = fuzz_case.primary_support;
  auto index = MipIndex::Build(dataset, index_options);
  if (!index.ok()) {
    fail("index-build", 0, index.status().ToString());
    return violations;
  }
  const RuleGenOptions rulegen = WideRuleGen(options.oracle);

  auto run_plan = [&](const MipIndex& idx, PlanKind kind,
                      const LocalizedQuery& query, ThreadPool* pool,
                      ExecBackend backend =
                          ExecBackend::kScalar) -> Result<PlanResult> {
    PlanExecOptions exec;
    exec.rulegen = rulegen;
    exec.pool = pool;
    exec.backend = backend;
    return ExecutePlan(kind, idx, query, exec);
  };

  // Pools are created once; each sweep reuses them across queries/plans.
  std::vector<std::unique_ptr<ThreadPool>> pools;
  if (options.check_threads) {
    for (unsigned n : options.thread_counts) {
      if (n > 1) pools.push_back(std::make_unique<ThreadPool>(n));
    }
  }

  // Thread-invariance of the offline build itself (PR 1's contract).
  if (!pools.empty()) {
    auto parallel_index =
        MipIndex::Build(dataset, index_options, pools.back().get());
    if (!parallel_index.ok()) {
      fail("thread-invariance", 0,
           "parallel index build failed: " + parallel_index.status().ToString());
    } else if (parallel_index->num_mips() != index->num_mips()) {
      fail("thread-invariance", 0,
           StrFormat("parallel build has %u MIPs, sequential %u",
                     parallel_index->num_mips(), index->num_mips()));
    } else {
      for (uint32_t id = 0; id < index->num_mips(); ++id) {
        const Mip& a = parallel_index->mip(id);
        const Mip& b = index->mip(id);
        if (a.items != b.items || a.global_count != b.global_count ||
            a.bbox != b.bbox) {
          fail("thread-invariance", 0,
               StrFormat("parallel build diverges at MIP %u", id));
          break;
        }
      }
    }
  }

  // Serialize -> load round-trip: identical MIPs, identical answers.
  std::filesystem::path dump;
  Result<MipIndex> loaded = Status::OK();
  if (options.check_serialize) {
    dump = std::filesystem::temp_directory_path() /
           StrFormat("colarm_fuzz_%d_%llu.clrm", static_cast<int>(getpid()),
                     static_cast<unsigned long long>(fuzz_case.seed));
    Status saved = SaveMipIndex(*index, dump.string());
    if (!saved.ok()) {
      fail("serialize-roundtrip", 0, "save failed: " + saved.ToString());
    } else {
      loaded = LoadMipIndex(dataset, dump.string());
      if (!loaded.ok()) {
        fail("serialize-roundtrip", 0,
             "load failed: " + loaded.status().ToString());
      } else if (loaded->num_mips() != index->num_mips()) {
        fail("serialize-roundtrip", 0,
             StrFormat("loaded %u MIPs, saved %u", loaded->num_mips(),
                       index->num_mips()));
      }
      std::remove(dump.string().c_str());
    }
  }

  for (size_t qi = 0; qi < fuzz_case.queries.size(); ++qi) {
    const LocalizedQuery& query = fuzz_case.queries[qi];
    if (!query.Validate(schema).ok()) continue;

    auto baseline = run_plan(*index, PlanKind::kSEV, query, nullptr);
    if (!baseline.ok()) {
      fail("plan-execution", qi,
           std::string(PlanKindName(PlanKind::kSEV)) + ": " +
               baseline.status().ToString());
      continue;
    }

    // All six plans against the brute-force oracle (or, with the oracle
    // disabled, against each other via the S-E-V baseline).
    RuleSet expected = baseline->rules;
    if (options.check_oracle) {
      auto oracle = OracleLocalizedRules(dataset, fuzz_case.primary_support,
                                         query, options.oracle);
      if (!oracle.ok()) {
        fail("oracle", qi, oracle.status().ToString());
        continue;
      }
      expected = std::move(oracle.value());
    }
    for (PlanKind kind : kAllPlans) {
      Result<PlanResult> rerun = Status::OK();
      const PlanResult* result = &*baseline;
      if (kind != PlanKind::kSEV) {
        rerun = run_plan(*index, kind, query, nullptr);
        if (!rerun.ok()) {
          fail("plan-execution", qi,
               std::string(PlanKindName(kind)) + ": " +
                   rerun.status().ToString());
          continue;
        }
        result = &*rerun;
      }
      if (!result->rules.SameAs(expected)) {
        fail("plan-vs-oracle", qi,
             std::string(PlanKindName(kind)) + ": " +
                 DiffRuleSets(schema, result->rules, expected));
      }

      for (auto& pool : pools) {
        auto parallel = run_plan(*index, kind, query, pool.get());
        if (!parallel.ok()) {
          fail("thread-invariance", qi,
               StrFormat("%s with %u threads: %s", PlanKindName(kind),
                         pool->parallelism(),
                         parallel.status().ToString().c_str()));
        } else if (!parallel->rules.SameAs(expected)) {
          fail("thread-invariance", qi,
               StrFormat("%s with %u threads: %s", PlanKindName(kind),
                         pool->parallelism(),
                         DiffRuleSets(schema, parallel->rules, expected)
                             .c_str()));
        }
      }

      // Backend equivalence: the bitmap backend must match the scalar run
      // of the same plan byte-for-byte — rules *and* effort counters — at
      // every pool size.
      if (options.check_backends) {
        auto bitmap = run_plan(*index, kind, query, nullptr,
                               ExecBackend::kBitmap);
        if (!bitmap.ok()) {
          fail("backend-equivalence", qi,
               StrFormat("%s bitmap: %s", PlanKindName(kind),
                         bitmap.status().ToString().c_str()));
        } else {
          if (!bitmap->rules.SameAs(result->rules)) {
            fail("backend-equivalence", qi,
                 StrFormat("%s bitmap: %s", PlanKindName(kind),
                           DiffRuleSets(schema, bitmap->rules, result->rules)
                               .c_str()));
          }
          std::string effort = DiffEffort(bitmap->stats, result->stats);
          if (!effort.empty()) {
            fail("backend-equivalence", qi,
                 StrFormat("%s bitmap effort: %s", PlanKindName(kind),
                           effort.c_str()));
          }
        }
        for (auto& pool : pools) {
          auto parallel = run_plan(*index, kind, query, pool.get(),
                                   ExecBackend::kBitmap);
          if (!parallel.ok()) {
            fail("backend-equivalence", qi,
                 StrFormat("%s bitmap with %u threads: %s", PlanKindName(kind),
                           pool->parallelism(),
                           parallel.status().ToString().c_str()));
            continue;
          }
          if (!parallel->rules.SameAs(result->rules)) {
            fail("backend-equivalence", qi,
                 StrFormat("%s bitmap with %u threads: %s", PlanKindName(kind),
                           pool->parallelism(),
                           DiffRuleSets(schema, parallel->rules, result->rules)
                               .c_str()));
          }
          std::string effort = DiffEffort(parallel->stats, result->stats);
          if (!effort.empty()) {
            fail("backend-equivalence", qi,
                 StrFormat("%s bitmap effort with %u threads: %s",
                           PlanKindName(kind), pool->parallelism(),
                           effort.c_str()));
          }
        }
      }
    }

    if (options.check_serialize && loaded.ok()) {
      auto reloaded = run_plan(*loaded, PlanKind::kSEV, query, nullptr);
      if (!reloaded.ok()) {
        fail("serialize-roundtrip", qi, reloaded.status().ToString());
      } else if (!reloaded->rules.SameAs(baseline->rules)) {
        fail("serialize-roundtrip", qi,
             DiffRuleSets(schema, reloaded->rules, baseline->rules));
      }
      // The reloaded index carries the deserialized vertical bitmaps; a
      // bitmap-backend run over it exercises the v3 load path end to end.
      if (options.check_backends) {
        auto bitmap = run_plan(*loaded, PlanKind::kSEV, query, nullptr,
                               ExecBackend::kBitmap);
        if (!bitmap.ok()) {
          fail("serialize-roundtrip", qi,
               "bitmap on reloaded index: " + bitmap.status().ToString());
        } else if (!bitmap->rules.SameAs(baseline->rules)) {
          fail("serialize-roundtrip", qi,
               "bitmap on reloaded index: " +
                   DiffRuleSets(schema, bitmap->rules, baseline->rules));
        }
      }
    }

    // Differential constraint equivalence: the constrained baseline must
    // equal the post-filtered unconstrained twin. A single scalar S-E-V
    // comparison covers the full matrix because every invariant above
    // already checks each plan / backend / thread / SIMD / cache variant
    // against this same constrained baseline.
    if (options.check_constraints && !query.constraints.Empty()) {
      LocalizedQuery twin = query;
      twin.constraints = RuleConstraints{};
      auto unconstrained = run_plan(*index, PlanKind::kSEV, twin, nullptr);
      if (!unconstrained.ok()) {
        fail("constraint-equivalence", qi,
             "unconstrained twin: " + unconstrained.status().ToString());
      } else {
        std::vector<Tid> dq;
        for (Tid t = 0; t < dataset.num_records(); ++t) {
          bool inside = true;
          for (const RangeSelection& range : query.ranges) {
            const ValueId v = dataset.Value(t, range.attr);
            if (v < range.lo || v > range.hi) {
              inside = false;
              break;
            }
          }
          if (inside) dq.push_back(t);
        }
        const RuleSet filtered =
            FilterRules(dataset, dq, unconstrained->rules, query.constraints);
        if (!baseline->rules.SameAs(filtered)) {
          fail("constraint-equivalence", qi,
               DiffRuleSets(schema, baseline->rules, filtered));
        }
      }
    }

    // Monotonicity: raising either threshold can only drop rules, and the
    // survivors must keep their exact counts (counts are threshold-free).
    if (options.check_monotonic) {
      auto by_key = IndexRules(baseline->rules);
      for (int which = 0; which < 2; ++which) {
        LocalizedQuery raised = query;
        double& threshold = which == 0 ? raised.minsupp : raised.minconf;
        threshold = std::min(1.0, threshold + (1.0 - threshold) * 0.5 + 0.05);
        auto result = run_plan(*index, PlanKind::kSSVS, raised, nullptr);
        if (!result.ok()) {
          fail("monotonicity", qi, result.status().ToString());
          continue;
        }
        for (const Rule& rule : result->rules.rules) {
          auto it = by_key.find({rule.antecedent, rule.consequent});
          if (it == by_key.end()) {
            fail("monotonicity", qi,
                 StrFormat("raising %s surfaced new rule %s",
                           which == 0 ? "minsupp" : "minconf",
                           rule.ToString(schema).c_str()));
            break;
          }
          const Rule& base_rule = *it->second;
          if (rule.itemset_count != base_rule.itemset_count ||
              rule.antecedent_count != base_rule.antecedent_count ||
              rule.base_count != base_rule.base_count) {
            fail("monotonicity", qi,
                 "rule counts changed under a raised threshold: " +
                     rule.ToString(schema));
            break;
          }
        }
      }
    }

    // Focal-box containment: DQ' ⊆ DQ implies every absolute count of a
    // rule present in both answers can only shrink.
    if (options.check_containment) {
      LocalizedQuery inner = query;
      if (TightenQuery(schema, &inner) && inner.Validate(schema).ok()) {
        auto result = run_plan(*index, PlanKind::kSSEUV, inner, nullptr);
        if (!result.ok()) {
          fail("containment", qi, result.status().ToString());
        } else {
          auto by_key = IndexRules(baseline->rules);
          for (const Rule& rule : result->rules.rules) {
            if (rule.base_count > baseline->stats.subset_size) {
              fail("containment", qi,
                   StrFormat("inner |DQ|=%u exceeds outer |DQ|=%u",
                             rule.base_count, baseline->stats.subset_size));
              break;
            }
            auto it = by_key.find({rule.antecedent, rule.consequent});
            if (it == by_key.end()) continue;
            const Rule& outer = *it->second;
            if (rule.itemset_count > outer.itemset_count ||
                rule.antecedent_count > outer.antecedent_count ||
                rule.base_count > outer.base_count) {
              fail("containment", qi,
                   "count grew when the focal box shrank: " +
                       rule.ToString(schema) + " vs outer " +
                       outer.ToString(schema));
              break;
            }
          }
        }
      }
    }
  }

  // Session-cache equivalence: the whole query sequence replayed through a
  // cache-enabled engine — first pass (misses + containment derivations),
  // second pass (fully hot), and a deterministically shuffled order after
  // clearing the cache — must answer every query byte-identically to a
  // cache-less engine: same rules, same effort counters, same plan.
  if (options.check_session_cache) {
    std::vector<size_t> valid;
    for (size_t qi = 0; qi < fuzz_case.queries.size(); ++qi) {
      if (fuzz_case.queries[qi].Validate(schema).ok()) valid.push_back(qi);
    }
    std::vector<ExecBackend> backends{ExecBackend::kScalar};
    if (options.check_backends) backends.push_back(ExecBackend::kBitmap);
    for (ExecBackend backend : backends) {
      if (valid.empty()) break;
      const char* backend_name =
          backend == ExecBackend::kBitmap ? "bitmap" : "scalar";
      EngineOptions cold_options;
      cold_options.index.primary_support = fuzz_case.primary_support;
      cold_options.rulegen = rulegen;
      cold_options.calibrate = false;
      cold_options.backend = backend;
      cold_options.num_threads = 1;
      auto cold_engine = Engine::Build(dataset, cold_options);
      EngineOptions warm_options = cold_options;
      warm_options.cache.enabled = true;
      if (options.check_threads && !options.thread_counts.empty()) {
        warm_options.num_threads = options.thread_counts.back();
      }
      auto warm_engine = Engine::Build(dataset, warm_options);
      if (!cold_engine.ok() || !warm_engine.ok()) {
        fail("session-cache", 0,
             StrFormat("%s engine build failed", backend_name));
        continue;
      }

      std::vector<QueryResult> cold_results(fuzz_case.queries.size());
      bool engines_ok = true;
      for (size_t qi : valid) {
        auto cold = (*cold_engine)->Execute(fuzz_case.queries[qi]);
        if (!cold.ok()) {
          fail("session-cache", qi,
               StrFormat("%s cold: %s", backend_name,
                         cold.status().ToString().c_str()));
          engines_ok = false;
          break;
        }
        cold_results[qi] = std::move(cold.value());
      }
      if (!engines_ok) continue;

      auto check_pass = [&](const char* pass, size_t qi) {
        auto warm = (*warm_engine)->Execute(fuzz_case.queries[qi]);
        const QueryResult& cold = cold_results[qi];
        if (!warm.ok()) {
          fail("session-cache", qi,
               StrFormat("%s %s: %s", backend_name, pass,
                         warm.status().ToString().c_str()));
          return;
        }
        if (!warm->rules.SameAs(cold.rules)) {
          fail("session-cache", qi,
               StrFormat("%s %s: %s", backend_name, pass,
                         DiffRuleSets(schema, warm->rules, cold.rules)
                             .c_str()));
        }
        std::string effort = DiffEffort(warm->stats, cold.stats);
        if (!effort.empty()) {
          fail("session-cache", qi,
               StrFormat("%s %s effort: %s", backend_name, pass,
                         effort.c_str()));
        }
        if (warm->plan_used != cold.plan_used ||
            warm->decision.chosen != cold.decision.chosen) {
          fail("session-cache", qi,
               StrFormat("%s %s: plan %s vs cold %s", backend_name, pass,
                         PlanKindName(warm->plan_used),
                         PlanKindName(cold.plan_used)));
        }
      };

      for (size_t qi : valid) check_pass("warm", qi);
      for (size_t qi : valid) check_pass("hot", qi);

      // Shuffled order from a cleared cache: reuse opportunities differ
      // (drill-downs may now run before their outer box), answers may not.
      (*warm_engine)->cache()->Clear();
      std::vector<size_t> shuffled = valid;
      Rng rng(fuzz_case.seed ^ 0x5e55u);
      for (size_t i = shuffled.size(); i > 1; --i) {
        std::swap(shuffled[i - 1], shuffled[rng.Uniform(i)]);
      }
      for (size_t qi : shuffled) check_pass("shuffled", qi);
    }
  }

  // Cache-persistence round-trip: run the sequence warm, save the session
  // cache to the v4 file, load it into a FRESH engine, and replay. The
  // persisted-warm pass must answer every query byte-identically to a
  // cache-less engine — rules, effort counters, and plan choice — i.e. a
  // restart with a warm file is semantically invisible.
  if (options.check_cache_persistence) {
    std::vector<size_t> valid;
    for (size_t qi = 0; qi < fuzz_case.queries.size(); ++qi) {
      if (fuzz_case.queries[qi].Validate(schema).ok()) valid.push_back(qi);
    }
    std::vector<ExecBackend> backends{ExecBackend::kScalar};
    if (options.check_backends) backends.push_back(ExecBackend::kBitmap);
    for (ExecBackend backend : backends) {
      if (valid.empty()) break;
      const char* backend_name =
          backend == ExecBackend::kBitmap ? "bitmap" : "scalar";
      EngineOptions cold_options;
      cold_options.index.primary_support = fuzz_case.primary_support;
      cold_options.rulegen = rulegen;
      cold_options.calibrate = false;
      cold_options.backend = backend;
      cold_options.num_threads = 1;
      auto cold_engine = Engine::Build(dataset, cold_options);
      EngineOptions warm_options = cold_options;
      warm_options.cache.enabled = true;
      auto warm_engine = Engine::Build(dataset, warm_options);
      auto fresh_engine = Engine::Build(dataset, warm_options);
      if (!cold_engine.ok() || !warm_engine.ok() || !fresh_engine.ok()) {
        fail("cache-persistence", 0,
             StrFormat("%s engine build failed", backend_name));
        continue;
      }

      std::vector<QueryResult> cold_results(fuzz_case.queries.size());
      bool engines_ok = true;
      for (size_t qi : valid) {
        auto cold = (*cold_engine)->Execute(fuzz_case.queries[qi]);
        auto warm = (*warm_engine)->Execute(fuzz_case.queries[qi]);
        if (!cold.ok() || !warm.ok()) {
          fail("cache-persistence", qi,
               StrFormat("%s populate: %s", backend_name,
                         (!cold.ok() ? cold.status() : warm.status())
                             .ToString()
                             .c_str()));
          engines_ok = false;
          break;
        }
        cold_results[qi] = std::move(cold.value());
      }
      if (!engines_ok) continue;

      const std::filesystem::path cache_dump =
          std::filesystem::temp_directory_path() /
          StrFormat("colarm_fuzz_cache_%d_%llu_%s.ccache",
                    static_cast<int>(getpid()),
                    static_cast<unsigned long long>(fuzz_case.seed),
                    backend_name);
      Status saved = SaveQueryCache(*(*warm_engine)->cache(),
                                    (*warm_engine)->index(),
                                    cache_dump.string());
      if (!saved.ok()) {
        fail("cache-persistence", 0,
             StrFormat("%s save failed: %s", backend_name,
                       saved.ToString().c_str()));
        continue;
      }
      Status restored =
          LoadQueryCache((*fresh_engine)->index(), cache_dump.string(),
                         (*fresh_engine)->cache());
      std::remove(cache_dump.string().c_str());
      if (!restored.ok()) {
        fail("cache-persistence", 0,
             StrFormat("%s load failed: %s", backend_name,
                       restored.ToString().c_str()));
        continue;
      }

      for (size_t qi : valid) {
        auto warm = (*fresh_engine)->Execute(fuzz_case.queries[qi]);
        const QueryResult& cold = cold_results[qi];
        if (!warm.ok()) {
          fail("cache-persistence", qi,
               StrFormat("%s replay: %s", backend_name,
                         warm.status().ToString().c_str()));
          continue;
        }
        if (!warm->rules.SameAs(cold.rules)) {
          fail("cache-persistence", qi,
               StrFormat("%s replay: %s", backend_name,
                         DiffRuleSets(schema, warm->rules, cold.rules)
                             .c_str()));
        }
        std::string effort = DiffEffort(warm->stats, cold.stats);
        if (!effort.empty()) {
          fail("cache-persistence", qi,
               StrFormat("%s replay effort: %s", backend_name,
                         effort.c_str()));
        }
        if (warm->plan_used != cold.plan_used ||
            warm->decision.chosen != cold.decision.chosen) {
          fail("cache-persistence", qi,
               StrFormat("%s replay: plan %s vs cold %s", backend_name,
                         PlanKindName(warm->plan_used),
                         PlanKindName(cold.plan_used)));
        }
      }
    }
  }

  // SIMD equivalence: re-run representative plans at every kernel ISA level
  // this host can execute and require byte-identical rules AND effort
  // counters against the forced-scalar kernels. kSEV on the scalar backend
  // drives the galloping lower-bound probe; the bitmap backend drives the
  // word kernels; kARM stresses tidset intersection hardest. Levels switch
  // only between runs (pools quiescent), and the entry level is restored
  // before returning so later invariants see the caller's configuration.
  if (options.check_simd) {
    const SimdLevel original = ActiveSimdLevel();
    const int max_level = static_cast<int>(MaxSupportedSimdLevel());
    const PlanKind simd_plans[] = {PlanKind::kSEV, PlanKind::kARM};
    ThreadPool* shared_pool = pools.empty() ? nullptr : pools.back().get();
    for (size_t qi = 0; max_level > 0 && qi < fuzz_case.queries.size(); ++qi) {
      const LocalizedQuery& query = fuzz_case.queries[qi];
      if (!query.Validate(schema).ok()) continue;
      for (PlanKind kind : simd_plans) {
        for (ExecBackend backend :
             {ExecBackend::kScalar, ExecBackend::kBitmap}) {
          if (backend == ExecBackend::kBitmap && !options.check_backends) {
            continue;
          }
          const char* backend_name =
              backend == ExecBackend::kBitmap ? "bitmap" : "scalar";
          SetActiveSimdLevel(SimdLevel::kScalar);
          auto baseline = run_plan(*index, kind, query, nullptr, backend);
          if (!baseline.ok()) {
            fail("simd-equivalence", qi,
                 StrFormat("%s %s scalar baseline: %s", PlanKindName(kind),
                           backend_name, baseline.status().ToString().c_str()));
            continue;
          }
          std::vector<ThreadPool*> run_pools{nullptr};
          if (shared_pool != nullptr) run_pools.push_back(shared_pool);
          for (int l = 1; l <= max_level; ++l) {
            const SimdLevel level = static_cast<SimdLevel>(l);
            if (!SetActiveSimdLevel(level)) continue;
            for (ThreadPool* pool : run_pools) {
              const unsigned threads = pool ? pool->parallelism() : 1;
              auto got = run_plan(*index, kind, query, pool, backend);
              if (!got.ok()) {
                fail("simd-equivalence", qi,
                     StrFormat("%s %s @%s x%u: %s", PlanKindName(kind),
                               backend_name, SimdLevelName(level), threads,
                               got.status().ToString().c_str()));
                continue;
              }
              if (!got->rules.SameAs(baseline->rules)) {
                fail("simd-equivalence", qi,
                     StrFormat("%s %s @%s x%u: %s", PlanKindName(kind),
                               backend_name, SimdLevelName(level), threads,
                               DiffRuleSets(schema, got->rules,
                                            baseline->rules)
                                   .c_str()));
              }
              std::string effort = DiffEffort(got->stats, baseline->stats);
              if (!effort.empty()) {
                fail("simd-equivalence", qi,
                     StrFormat("%s %s @%s x%u effort: %s", PlanKindName(kind),
                               backend_name, SimdLevelName(level), threads,
                               effort.c_str()));
              }
            }
          }
        }
      }
    }
    SetActiveSimdLevel(original);
  }
  return violations;
}

}  // namespace fuzzing
}  // namespace colarm
