#ifndef COLARM_TESTING_INVARIANTS_H_
#define COLARM_TESTING_INVARIANTS_H_

#include <string>
#include <vector>

#include "testing/generator.h"
#include "testing/oracle.h"

namespace colarm {
namespace fuzzing {

/// One invariant violation: which property broke, on which query of the
/// case, and a human-readable diff summary.
struct Violation {
  std::string invariant;   // "plan-vs-oracle", "thread-invariance", ...
  size_t query_index = 0;  // index into FuzzCase::queries
  std::string detail;

  std::string ToString() const;
};

struct CheckOptions {
  /// Degrees of parallelism to sweep; 1 is the sequential baseline and is
  /// always implied.
  std::vector<unsigned> thread_counts = {2, 8};
  bool check_oracle = true;
  bool check_threads = true;
  bool check_serialize = true;
  bool check_monotonic = true;
  bool check_containment = true;
  bool check_backends = true;
  /// Replay the case's query sequence through a session-cache-enabled
  /// engine — cold vs. warm, a second cache-hot pass, and a deterministic
  /// shuffled order — requiring byte-identical rules, effort counters, and
  /// plan decisions against a cache-less engine.
  bool check_session_cache = true;
  /// Re-run representative plans at every SIMD kernel level the host can
  /// execute (AVX2, AVX-512) and require byte-identical rules and effort
  /// counters against the forced-scalar kernels, on both execution
  /// backends and thread counts. No-op on hosts without vector ISAs.
  bool check_simd = true;
  /// Differential constraint equivalence: for every constrained query, a
  /// constrained run must equal post-filtering the unconstrained twin's
  /// rules. One scalar S-E-V comparison covers the whole matrix — every
  /// other invariant already cross-checks each backend / thread / SIMD /
  /// cache variant against the constrained baseline.
  bool check_constraints = true;
  /// Cache-persistence round-trip: run the sequence warm, save the session
  /// cache (v4 file), load it into a fresh engine, and replay — the
  /// persisted-warm pass must answer every query byte-identically (rules,
  /// effort counters, plan choice) to a cache-less engine.
  bool check_cache_persistence = true;
  OracleOptions oracle;
};

/// Runs every enabled metamorphic invariant over one case and returns all
/// violations found (empty = the case passes):
///
///   plan-vs-oracle      all six plans equal the brute-force oracle
///   thread-invariance   rules identical under every pool size (and a
///                       parallel index build equals the sequential one)
///   serialize-roundtrip save -> load preserves MIPs and query answers
///   monotonicity        raising minsupp or minconf never adds rules, and
///                       surviving rules keep their exact counts
///   containment         shrinking the focal box never increases any
///                       absolute count of a rule present in both results
///   backend-equivalence the bitmap execution backend returns byte-
///                       identical rules AND effort counters to the scalar
///                       one, at every pool size and on a reloaded index
///   session-cache       replaying the query sequence through the session
///                       cache (warm, cache-hot, and shuffled-order passes,
///                       on both backends) answers every query exactly like
///                       a cache-less engine
///   simd-equivalence    every SIMD level the host supports (scalar, AVX2,
///                       AVX-512) yields byte-identical rules and effort
///                       counters on both backends, at 1 and N threads
///   constraint-equivalence  constraints pushed into execution return
///                       exactly FilterRules(unconstrained twin) — the
///                       post-filter reference semantics
///   cache-persistence   save -> load -> replay of the session cache
///                       answers every query exactly like a cache-less
///                       engine (rules, effort counters, plan choice)
std::vector<Violation> CheckCase(const FuzzCase& fuzz_case,
                                 const CheckOptions& options = {});

}  // namespace fuzzing
}  // namespace colarm

#endif  // COLARM_TESTING_INVARIANTS_H_
