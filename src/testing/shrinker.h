#ifndef COLARM_TESTING_SHRINKER_H_
#define COLARM_TESTING_SHRINKER_H_

#include <string>

#include "testing/invariants.h"

namespace colarm {
namespace fuzzing {

/// Greedy delta-debugging over a failing case: drops whole queries, then
/// record chunks (halving pass sizes down to single records), then unused
/// attributes — keeping each reduction only while CheckCase still reports
/// a violation. The result is a minimal reproducer, typically a handful of
/// records and one query.
FuzzCase ShrinkCase(const FuzzCase& failing, const CheckOptions& options);

/// Renders a shrunk case as a ready-to-paste GoogleTest fixture: schema
/// construction, AddRecord lines, the query, and a CheckCase assertion.
std::string FormatReproducer(const FuzzCase& fuzz_case);

}  // namespace fuzzing
}  // namespace colarm

#endif  // COLARM_TESTING_SHRINKER_H_
