#ifndef COLARM_TESTING_GENERATOR_H_
#define COLARM_TESTING_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "plans/query.h"

namespace colarm {
namespace fuzzing {

/// Size envelope for generated cases. The defaults keep one case cheap
/// enough for the oracle (exponential!) while still covering skew,
/// correlation, sparsity, and every query boundary.
struct FuzzLimits {
  uint32_t min_records = 8;
  uint32_t max_records = 120;
  uint32_t min_attrs = 3;
  uint32_t max_attrs = 6;
  uint32_t min_domain = 2;
  uint32_t max_domain = 5;
  uint32_t queries_per_case = 4;
  /// Draw item constraints / measure floors on ~half the queries. Off
  /// reproduces the pre-constraint query stream shape (different RNG
  /// consumption, so cases differ from constraints=true runs).
  bool constraints = true;
};

/// One self-contained differential-testing case: a dataset, the offline
/// primary support, and a batch of localized queries. Everything is a pure
/// function of `seed` (given equal limits), so any case can be replayed
/// from its one-line identity.
struct FuzzCase {
  uint64_t seed = 0;
  Dataset dataset{Schema(std::vector<Attribute>{})};
  double primary_support = 0.3;
  std::vector<LocalizedQuery> queries;
};

/// Deterministically expands `seed` into a case. Dataset shapes rotate
/// through uniform, Zipf-skewed, correlated-group, and sparse-dominant
/// column distributions; queries mix random focal boxes with the boundary
/// shapes that historically break support/confidence semantics: empty DQ,
/// point boxes on a real record, full-domain boxes, single-attribute item
/// vocabularies, and thresholds sitting exactly on count ratios
/// (minsupp = k/n, minconf = p/q, and the 1.0 extremes).
FuzzCase GenerateFuzzCase(uint64_t seed, const FuzzLimits& limits = {});

}  // namespace fuzzing
}  // namespace colarm

#endif  // COLARM_TESTING_GENERATOR_H_
