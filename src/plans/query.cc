#include "plans/query.h"

#include <algorithm>

#include "common/string_util.h"

namespace colarm {

Rect LocalizedQuery::ToRect(const Schema& schema) const {
  Rect box = Rect::FullDomain(schema);
  for (const RangeSelection& range : ranges) {
    box.SetInterval(range.attr, range.lo, range.hi);
  }
  return box;
}

std::vector<bool> LocalizedQuery::ItemAttrMask(const Schema& schema) const {
  if (item_attrs.empty()) {
    return std::vector<bool>(schema.num_attributes(), true);
  }
  std::vector<bool> mask(schema.num_attributes(), false);
  for (AttrId a : item_attrs) mask[a] = true;
  return mask;
}

Status LocalizedQuery::Validate(const Schema& schema) const {
  std::vector<bool> seen(schema.num_attributes(), false);
  for (const RangeSelection& range : ranges) {
    if (range.attr >= schema.num_attributes()) {
      return Status::OutOfRange(
          StrFormat("range attribute %u out of range", range.attr));
    }
    if (seen[range.attr]) {
      return Status::InvalidArgument(
          StrFormat("attribute %u appears in RANGE twice", range.attr));
    }
    seen[range.attr] = true;
    if (range.lo > range.hi) {
      return Status::InvalidArgument(
          StrFormat("inverted interval on attribute %u", range.attr));
    }
    if (range.hi >= schema.attribute(range.attr).domain_size()) {
      return Status::OutOfRange(
          StrFormat("interval exceeds domain of attribute %u", range.attr));
    }
  }
  std::vector<bool> seen_item(schema.num_attributes(), false);
  for (AttrId a : item_attrs) {
    if (a >= schema.num_attributes()) {
      return Status::OutOfRange(
          StrFormat("item attribute %u out of range", a));
    }
    if (seen_item[a]) {
      return Status::InvalidArgument(
          StrFormat("attribute %u appears in ITEM ATTRIBUTES twice", a));
    }
    seen_item[a] = true;
  }
  if (minsupp <= 0.0 || minsupp > 1.0) {
    return Status::InvalidArgument("minsupport must be in (0, 1]");
  }
  if (minconf <= 0.0 || minconf > 1.0) {
    return Status::InvalidArgument("minconfidence must be in (0, 1]");
  }
  return constraints.Validate(schema);
}

bool LocalizedQuery::ConstraintsPrecludeRules(const Schema& schema) const {
  if (constraints.must_contain.empty()) return false;
  if (!ItemsetDisjoint(constraints.must_contain, constraints.must_exclude)) {
    return true;
  }
  const std::vector<bool> vocabulary = ItemAttrMask(schema);
  const Rect box = ToRect(schema);
  AttrId prev_attr = 0;
  bool have_prev = false;
  for (ItemId item : constraints.must_contain) {
    const AttrId attr = schema.AttrOfItem(item);
    // Two required items on one attribute: no record holds both values.
    if (have_prev && attr == prev_attr) return true;
    prev_attr = attr;
    have_prev = true;
    if (!vocabulary[attr]) return true;
    const ValueId value = schema.ValueOfItem(item);
    if (value < box.lo(attr) || value > box.hi(attr)) return true;
  }
  return false;
}

std::string LocalizedQuery::ToString(const Schema& schema) const {
  std::string out = "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE ";
  if (ranges.empty()) out += "<full dataset>";
  for (size_t i = 0; i < ranges.size(); ++i) {
    if (i > 0) out += " AND ";
    const Attribute& attr = schema.attribute(ranges[i].attr);
    out += StrFormat("%s=[%s..%s]", attr.name.c_str(),
                     attr.values[ranges[i].lo].c_str(),
                     attr.values[ranges[i].hi].c_str());
  }
  if (!item_attrs.empty()) {
    out += " AND ITEM ATTRIBUTES {";
    for (size_t i = 0; i < item_attrs.size(); ++i) {
      if (i > 0) out += ", ";
      out += schema.attribute(item_attrs[i]).name;
    }
    out += "}";
  }
  out += StrFormat(" HAVING minsupport=%.2f AND minconfidence=%.2f", minsupp,
                   minconf);
  out += constraints.ToString(schema);
  return out;
}

}  // namespace colarm
