#ifndef COLARM_PLANS_OPERATORS_H_
#define COLARM_PLANS_OPERATORS_H_

#include <vector>

#include "common/cancel.h"
#include "common/thread_pool.h"
#include "mining/rule_generator.h"
#include "mip/mip_index.h"
#include "plans/focal_subset.h"
#include "plans/query.h"

namespace colarm {

class QueryCache;   // core/query_cache.h
class CountMemoTxn;  // core/query_cache.h

/// Output of the SEARCH / SUPPORTED-SEARCH operators: MIP ids whose
/// bounding boxes intersect the focal box, split by full containment
/// (Lemma 4.5) vs. partial overlap. Plans that do not exploit the split
/// simply process the concatenation.
struct CandidateSet {
  std::vector<uint32_t> contained;
  std::vector<uint32_t> overlapped;

  size_t total() const { return contained.size() + overlapped.size(); }
};

/// A candidate itemset that passed the local minsupport check, with its
/// exact local support count.
struct QualifiedItemset {
  uint32_t mip_id = 0;
  uint32_t local_count = 0;
};

/// Record-level execution backend. kScalar runs the row scans (horizontal
/// layout); kBitmap runs the same operators word-parallel on the vertical
/// bitmap index (DQ as an AND of range-ORs, support counts as popcounts).
/// Both produce byte-identical rule sets and effort counters — the
/// counters price semantic record checks, not machine operations, so
/// explain output and optimizer-accuracy comparisons stay backend-free.
enum class ExecBackend {
  kScalar,
  kBitmap,
};

const char* ExecBackendName(ExecBackend backend);

/// Which algorithm the ARM baseline plan mines the focal subset with.
/// CHARM (closed itemsets) is the paper's choice; the FP-growth variant
/// mines all frequent itemsets and intersects them with the prestored
/// family — same results, different cost profile (see the ablation in
/// bench/micro_operators.cc).
enum class ArmMinerKind {
  kCharm,
  kFpGrowth,
};

/// Mutable per-query state shared by the operators of one plan execution:
/// the query, the materialized focal subset, and the effort counters the
/// plan statistics report.
struct PlanContext {
  const MipIndex& index;
  const LocalizedQuery& query;
  RuleGenOptions rulegen;
  ArmMinerKind arm_miner = ArmMinerKind::kCharm;

  /// Worker pool for the record-level operators (ELIMINATE / VERIFY /
  /// SUPPORTED-VERIFY partition their candidate lists across it). Null or
  /// 1-thread pools take the exact sequential code path. Parallel runs
  /// merge per-chunk buffers and counters in deterministic chunk order, so
  /// rules, their order before canonicalization, and every effort counter
  /// are byte-identical to the sequential execution.
  ThreadPool* pool = nullptr;

  /// Non-null iff this execution runs on the kBitmap backend; points at
  /// the index's vertical bitmap form, with `dq_bitmap` the materialized
  /// focal subset over the same universe.
  const VerticalIndex* vertical = nullptr;
  Bitmap dq_bitmap;

  /// Session cache wiring (both null when caching is off). When both are
  /// set, ELIMINATE / VERIFY / SUPPORTED-VERIFY serve per-(box, itemset)
  /// counts from the committed memo — charging the cold semantic record-
  /// check price so effort counters stay byte-identical — and record their
  /// cold-computed counts into the transaction for later queries.
  QueryCache* cache = nullptr;
  CountMemoTxn* memo_txn = nullptr;

  /// Cooperative cancellation: the per-candidate operator loops poll it
  /// (each candidate costs a focal-subset pass, so the poll is amortized)
  /// and unwind with CancelledException — inside a ParallelChunks shard the
  /// region rethrows it to the plan driver. Null = never cancelled.
  const CancelToken* cancel = nullptr;

  std::vector<bool> item_attr_mask;
  FocalSubset subset;
  uint32_t local_min_count = 0;

  /// Constraint pushdown state, derived once from query.constraints:
  /// `search_box` is the focal box with each CONTAIN item's attribute
  /// narrowed to its value (sound R-tree descent pruning — a MIP holding
  /// item (a, v) has a tight bbox pinned to [v, v] on a, so every
  /// CONTAIN-satisfying MIP survives the narrowed search);
  /// `item_constrained` gates the per-MIP CONTAIN/EXCLUDE filter; and
  /// `constraints_precluded` marks queries whose constraints guarantee an
  /// empty answer, which the plan driver short-circuits.
  Rect search_box;
  bool item_constrained = false;
  bool constraints_precluded = false;

  // Effort counters (accumulated across operators).
  uint64_t record_checks = 0;
  RTree::SearchStats rtree_stats;
  RuleGenStats rule_stats;
  uint64_t local_cfis = 0;  // ARM plan only

  /// Materializes DQ and derives the absolute local support threshold.
  /// kBitmap materializes through the vertical index (word-range sharded
  /// on `pool`); the resulting tid list — and the record-check price —
  /// is identical to the scalar scan's.
  PlanContext(const MipIndex& index, const LocalizedQuery& query,
              const RuleGenOptions& rulegen, ThreadPool* pool = nullptr,
              ExecBackend backend = ExecBackend::kScalar);

  /// Reuses an already-materialized focal subset (multi-query execution:
  /// queries sharing a RANGE share one SELECT pass). `shared.box` must
  /// equal the query's box. kBitmap re-derives the DQ bitmap from the
  /// shared tid list (cheap: one pass over the tids).
  PlanContext(const MipIndex& index, const LocalizedQuery& query,
              const RuleGenOptions& rulegen, FocalSubset shared,
              ThreadPool* pool = nullptr,
              ExecBackend backend = ExecBackend::kScalar);

  /// True iff every item of the MIP lies on an allowed item attribute.
  bool MipAttrsAllowed(uint32_t mip_id) const;

  /// MipAttrsAllowed plus the CONTAIN/EXCLUDE item constraints. Exact (not
  /// merely a pruning bound) because a rule's itemset is always the full
  /// MIP itemset, so ELIMINATE / VERIFY skip disallowed candidates before
  /// any record scan.
  bool MipConstraintAllowed(uint32_t mip_id) const;

  /// Rule-generation pushdown for one itemset: the positions of
  /// ANTECEDENT-ATTRIBUTES items (pinned to the antecedent side) plus the
  /// query's measure floors. Default-empty when the query is unconstrained.
  RuleGenFilter FilterForItemset(const Itemset& items) const;

 private:
  /// Shared tail of both constructors: derives the constraint state above
  /// (requires `subset` to be materialized first).
  void InitConstraints();
};

/// SEARCH: R-tree range search with the focal box (coarse filter).
CandidateSet OpSearch(PlanContext* ctx);

/// SUPPORTED-SEARCH: range search + the supported R-tree filter pruning
/// entries whose global count cannot reach the local minsupport.
CandidateSet OpSupportedSearch(PlanContext* ctx);

/// ELIMINATE: record-level local support check (plus item-attribute
/// filter) over the given candidates.
std::vector<QualifiedItemset> OpEliminate(PlanContext* ctx,
                                          std::span<const uint32_t> candidates);

/// Lemma 4.5 shortcut used by SS-E-U-V: contained MIPs qualify with
/// local count == global count, no record scan (item filter still applies).
std::vector<QualifiedItemset> QualifyContained(
    PlanContext* ctx, std::span<const uint32_t> contained);

/// UNION: merges mutually exclusive qualified lists (constant-time per
/// element, no dedup needed).
std::vector<QualifiedItemset> OpUnion(std::vector<QualifiedItemset> a,
                                      std::vector<QualifiedItemset> b);

/// VERIFY: generates rules from each qualified itemset and keeps those
/// meeting minconfidence (record-level antecedent counting).
void OpVerify(PlanContext* ctx, std::span<const QualifiedItemset> qualified,
              RuleSet* out);

/// SUPPORTED-VERIFY: fused ELIMINATE+VERIFY — one record-level pass per
/// candidate does both the minsupport check and rule generation.
void OpSupportedVerify(PlanContext* ctx, std::span<const uint32_t> candidates,
                       RuleSet* out);

/// ARM: the traditional baseline — mines the focal subset from scratch
/// with CHARM, intersects the local CFIs with the prestored family (the
/// POQM contract), and verifies rules. Returns the qualified list so the
/// caller can pass it to OpVerify.
std::vector<QualifiedItemset> OpArmMine(PlanContext* ctx);

}  // namespace colarm

#endif  // COLARM_PLANS_OPERATORS_H_
