#include "plans/focal_subset.h"

namespace colarm {

FocalSubset FocalSubset::Materialize(const Dataset& dataset, const Rect& box,
                                     uint64_t* record_checks) {
  FocalSubset subset;
  subset.box = box;

  // Only attributes with a real restriction need record-level tests.
  std::vector<AttrId> constrained;
  for (AttrId a = 0; a < dataset.num_attributes(); ++a) {
    if (box.lo(a) != 0 ||
        box.hi(a) != dataset.schema().attribute(a).domain_size() - 1) {
      constrained.push_back(a);
    }
  }
  if (constrained.empty()) {
    subset.tids.resize(dataset.num_records());
    for (Tid t = 0; t < dataset.num_records(); ++t) subset.tids[t] = t;
    return subset;
  }

  for (Tid t = 0; t < dataset.num_records(); ++t) {
    bool inside = true;
    for (AttrId a : constrained) {
      ValueId v = dataset.Value(t, a);
      if (v < box.lo(a) || v > box.hi(a)) {
        inside = false;
        break;
      }
    }
    if (inside) subset.tids.push_back(t);
  }
  if (record_checks != nullptr) {
    *record_checks += dataset.num_records();
  }
  return subset;
}

}  // namespace colarm
