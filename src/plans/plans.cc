#include "plans/plans.h"

#include "common/string_util.h"
#include "common/timer.h"
#include "core/query_cache.h"

namespace colarm {

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kSEV:
      return "S-E-V";
    case PlanKind::kSVS:
      return "S-VS";
    case PlanKind::kSSEV:
      return "SS-E-V";
    case PlanKind::kSSVS:
      return "SS-VS";
    case PlanKind::kSSEUV:
      return "SS-E-U-V";
    case PlanKind::kARM:
      return "ARM";
  }
  return "?";
}

std::string PlanStats::ToString() const {
  return StrFormat(
      "%s: total=%.3fms (select=%.3f search=%.3f eliminate=%.3f "
      "verify=%.3f mine=%.3f) |DQ|=%u minCount=%u cands=%llu "
      "(contained=%llu) qualified=%llu recChecks=%llu rtreeNodes=%llu "
      "rules=%llu",
      PlanKindName(plan), total_ms, select_ms, search_ms, eliminate_ms,
      verify_ms, mine_ms, subset_size, local_min_count,
      static_cast<unsigned long long>(candidates_search),
      static_cast<unsigned long long>(candidates_contained),
      static_cast<unsigned long long>(candidates_qualified),
      static_cast<unsigned long long>(record_checks),
      static_cast<unsigned long long>(rtree_nodes_visited),
      static_cast<unsigned long long>(rules_emitted));
}

namespace {

// Concatenation used by plans that ignore the contained/overlapped split.
std::vector<uint32_t> AllCandidates(const CandidateSet& set) {
  std::vector<uint32_t> all = set.contained;
  all.insert(all.end(), set.overlapped.begin(), set.overlapped.end());
  return all;
}

}  // namespace

Result<PlanResult> ExecutePlan(PlanKind kind, const MipIndex& index,
                               const LocalizedQuery& query,
                               const RuleGenOptions& rulegen,
                               const FocalSubset* shared_subset,
                               ArmMinerKind arm_miner) {
  PlanExecOptions exec;
  exec.rulegen = rulegen;
  exec.arm_miner = arm_miner;
  exec.shared_subset = shared_subset;
  return ExecutePlan(kind, index, query, exec);
}

Result<PlanResult> ExecutePlan(PlanKind kind, const MipIndex& index,
                               const LocalizedQuery& query,
                               const PlanExecOptions& exec) {
  COLARM_RETURN_IF_ERROR(query.Validate(index.dataset().schema()));

  PlanResult result;
  PlanStats& stats = result.stats;
  stats.plan = kind;

  Timer total_timer;
  Timer stage;
  uint64_t select_checks = 0;
  auto make_context = [&]() -> PlanContext {
    if (exec.shared_subset != nullptr) {
      return PlanContext(index, query, exec.rulegen, *exec.shared_subset,
                         exec.pool, exec.backend);
    }
    if (exec.cache != nullptr) {
      // SELECT through the session cache: exact hit, containment
      // derivation, or cold materialize-and-insert — always priced at the
      // cold record-check cost.
      QueryCache::Lease lease =
          exec.cache->Acquire(query.ToRect(index.dataset().schema()),
                              exec.backend, exec.pool, &select_checks);
      return PlanContext(index, query, exec.rulegen, std::move(lease.subset),
                         exec.pool, exec.backend);
    }
    return PlanContext(index, query, exec.rulegen, exec.pool, exec.backend);
  };
  PlanContext ctx = make_context();
  ctx.record_checks += select_checks;
  ctx.cache = exec.cache;
  ctx.memo_txn = exec.memo_txn;
  ctx.arm_miner = exec.arm_miner;
  ctx.cancel = exec.cancel;
  stats.select_ms = stage.ElapsedMillis();
  stats.subset_size = ctx.subset.size();
  stats.local_min_count = ctx.local_min_count;

  // Cooperative cancellation: the operator loops poll the token per
  // candidate and unwind with CancelledException (rethrown by
  // ParallelChunks when the poll fires inside a shard); the catch below
  // converts the unwind into a Status so callers never see an exception.
  try {
  // Constraints that preclude every rule (contradictory CONTAIN/EXCLUDE, a
  // CONTAIN item outside the vocabulary or the focal box) short-circuit
  // the whole pipeline: the answer is empty before any search or scan.
  if (ctx.subset.size() > 0 && !ctx.constraints_precluded) {
    switch (kind) {
      case PlanKind::kSEV: {
        stage.Restart();
        CandidateSet cands = OpSearch(&ctx);
        stats.search_ms = stage.ElapsedMillis();
        stats.candidates_search = cands.total();
        stats.candidates_contained = cands.contained.size();

        stage.Restart();
        std::vector<uint32_t> all = AllCandidates(cands);
        std::vector<QualifiedItemset> qualified = OpEliminate(&ctx, all);
        stats.eliminate_ms = stage.ElapsedMillis();
        stats.candidates_qualified = qualified.size();

        stage.Restart();
        OpVerify(&ctx, qualified, &result.rules);
        stats.verify_ms = stage.ElapsedMillis();
        break;
      }
      case PlanKind::kSVS: {
        stage.Restart();
        CandidateSet cands = OpSearch(&ctx);
        stats.search_ms = stage.ElapsedMillis();
        stats.candidates_search = cands.total();
        stats.candidates_contained = cands.contained.size();

        stage.Restart();
        std::vector<uint32_t> all = AllCandidates(cands);
        OpSupportedVerify(&ctx, all, &result.rules);
        stats.verify_ms = stage.ElapsedMillis();
        break;
      }
      case PlanKind::kSSEV: {
        stage.Restart();
        CandidateSet cands = OpSupportedSearch(&ctx);
        stats.search_ms = stage.ElapsedMillis();
        stats.candidates_search = cands.total();
        stats.candidates_contained = cands.contained.size();

        stage.Restart();
        std::vector<uint32_t> all = AllCandidates(cands);
        std::vector<QualifiedItemset> qualified = OpEliminate(&ctx, all);
        stats.eliminate_ms = stage.ElapsedMillis();
        stats.candidates_qualified = qualified.size();

        stage.Restart();
        OpVerify(&ctx, qualified, &result.rules);
        stats.verify_ms = stage.ElapsedMillis();
        break;
      }
      case PlanKind::kSSVS: {
        stage.Restart();
        CandidateSet cands = OpSupportedSearch(&ctx);
        stats.search_ms = stage.ElapsedMillis();
        stats.candidates_search = cands.total();
        stats.candidates_contained = cands.contained.size();

        stage.Restart();
        std::vector<uint32_t> all = AllCandidates(cands);
        OpSupportedVerify(&ctx, all, &result.rules);
        stats.verify_ms = stage.ElapsedMillis();
        break;
      }
      case PlanKind::kSSEUV: {
        stage.Restart();
        CandidateSet cands = OpSupportedSearch(&ctx);
        stats.search_ms = stage.ElapsedMillis();
        stats.candidates_search = cands.total();
        stats.candidates_contained = cands.contained.size();

        // Contained MIPs skip the record-level support scan (Lemma 4.5);
        // only partially overlapped ones pass through ELIMINATE.
        stage.Restart();
        std::vector<QualifiedItemset> from_contained =
            QualifyContained(&ctx, cands.contained);
        std::vector<QualifiedItemset> from_overlap =
            OpEliminate(&ctx, cands.overlapped);
        std::vector<QualifiedItemset> qualified =
            OpUnion(std::move(from_contained), std::move(from_overlap));
        stats.eliminate_ms = stage.ElapsedMillis();
        stats.candidates_qualified = qualified.size();

        stage.Restart();
        OpVerify(&ctx, qualified, &result.rules);
        stats.verify_ms = stage.ElapsedMillis();
        break;
      }
      case PlanKind::kARM: {
        stage.Restart();
        std::vector<QualifiedItemset> qualified = OpArmMine(&ctx);
        stats.mine_ms = stage.ElapsedMillis();
        stats.candidates_qualified = qualified.size();
        stats.local_cfis = ctx.local_cfis;

        stage.Restart();
        OpVerify(&ctx, qualified, &result.rules);
        stats.verify_ms = stage.ElapsedMillis();
        break;
      }
    }
  }
  } catch (const CancelledException&) {
    return Status::DeadlineExceeded(
        StrFormat("plan %s cancelled mid-execution", PlanKindName(kind)));
  }

  stats.record_checks = ctx.record_checks;
  stats.rtree_nodes_visited = ctx.rtree_stats.nodes_visited;
  stats.rtree_pruned_by_support = ctx.rtree_stats.entries_pruned_by_support;
  stats.rules_considered = ctx.rule_stats.rules_considered;
  stats.rules_emitted = ctx.rule_stats.rules_emitted;
  stats.itemsets_skipped = ctx.rule_stats.itemsets_skipped;
  stats.total_ms = total_timer.ElapsedMillis();
  result.rules.Canonicalize();
  return result;
}

}  // namespace colarm
