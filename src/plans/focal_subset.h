#ifndef COLARM_PLANS_FOCAL_SUBSET_H_
#define COLARM_PLANS_FOCAL_SUBSET_H_

#include <vector>

#include "data/dataset.h"
#include "rtree/rect.h"

namespace colarm {

/// The materialized focal subset DQ: its selection box and the sorted tid
/// list of records falling inside it. Every plan materializes DQ exactly
/// once per query (the ARM plan's SELECT operator is the same scan).
struct FocalSubset {
  Rect box;
  std::vector<Tid> tids;

  uint32_t size() const { return static_cast<uint32_t>(tids.size()); }

  /// Scans the relation once, testing only the constrained attributes.
  /// `record_checks`, when given, is incremented by the number of
  /// record-level membership tests performed.
  static FocalSubset Materialize(const Dataset& dataset, const Rect& box,
                                 uint64_t* record_checks = nullptr);
};

}  // namespace colarm

#endif  // COLARM_PLANS_FOCAL_SUBSET_H_
