#ifndef COLARM_PLANS_PLANS_H_
#define COLARM_PLANS_PLANS_H_

#include <array>
#include <string>

#include "common/cancel.h"
#include "common/status.h"
#include "mining/rule.h"
#include "plans/operators.h"

namespace colarm {

/// The six alternative mining plans of Table 4.
enum class PlanKind {
  kSEV = 0,    // SEARCH + ELIMINATE + VERIFY
  kSVS = 1,    // selection push-up: SEARCH + SUPPORTED-VERIFY
  kSSEV = 2,   // supported R-tree filter: SS + ELIMINATE + VERIFY
  kSSVS = 3,   // supported filter + push-up: SS + SUPPORTED-VERIFY
  kSSEUV = 4,  // supported filter + contained/overlap split: SS+E+U+V
  kARM = 5,    // traditional mining over the extracted focal subset
};

inline constexpr std::array<PlanKind, 6> kAllPlans = {
    PlanKind::kSEV,  PlanKind::kSVS,   PlanKind::kSSEV,
    PlanKind::kSSVS, PlanKind::kSSEUV, PlanKind::kARM,
};

const char* PlanKindName(PlanKind kind);

/// Per-execution instrumentation: stage wall times plus operator effort
/// counters (candidate counts, record-level checks, R-tree node visits).
struct PlanStats {
  PlanKind plan = PlanKind::kSEV;

  double total_ms = 0.0;
  double select_ms = 0.0;     // focal subset materialization / SELECT
  double search_ms = 0.0;     // SEARCH or SUPPORTED-SEARCH
  double eliminate_ms = 0.0;  // ELIMINATE (incl. contained qualification)
  double verify_ms = 0.0;     // VERIFY or SUPPORTED-VERIFY
  double mine_ms = 0.0;       // ARM's from-scratch mining

  uint32_t subset_size = 0;
  uint32_t local_min_count = 0;
  uint64_t candidates_search = 0;
  uint64_t candidates_contained = 0;
  uint64_t candidates_qualified = 0;
  uint64_t record_checks = 0;
  uint64_t rtree_nodes_visited = 0;
  uint64_t rtree_pruned_by_support = 0;
  uint64_t rules_considered = 0;
  uint64_t rules_emitted = 0;
  uint64_t itemsets_skipped = 0;
  uint64_t local_cfis = 0;  // ARM only

  std::string ToString() const;
};

struct PlanResult {
  RuleSet rules;
  PlanStats stats;
};

/// Everything that shapes one plan execution besides the query itself.
struct PlanExecOptions {
  RuleGenOptions rulegen;
  ArmMinerKind arm_miner = ArmMinerKind::kCharm;
  /// When non-null it must hold the query's focal box already materialized;
  /// the SELECT pass is then skipped (multi-query optimization, see
  /// core/batch.h).
  const FocalSubset* shared_subset = nullptr;
  /// Worker pool for the record-level operators; null runs the exact
  /// sequential path. Parallel execution is byte-identical to sequential
  /// (rules, canonical order, and every effort counter).
  ThreadPool* pool = nullptr;
  /// Record-level execution backend; kBitmap runs the operators on the
  /// index's vertical bitmaps. Backends are byte-identical in results and
  /// effort counters, differing only in wall time.
  ExecBackend backend = ExecBackend::kScalar;
  /// Session cache (core/query_cache.h). When set and `shared_subset` is
  /// null, the SELECT stage acquires the focal subset through the cache
  /// (exact hit / containment derivation / cold materialize-and-insert)
  /// while charging the cold record-check price. Must only be passed from
  /// sequential acquisition points (the Engine, or the batch executor's
  /// planning phase).
  QueryCache* cache = nullptr;
  /// Count-memo transaction for this query; reads come from the cache's
  /// committed state, writes buffer here until the owner commits them at a
  /// deterministic point. Both must be set for the memo tier to engage.
  CountMemoTxn* memo_txn = nullptr;
  /// Cooperative cancellation (per-request deadlines, server shutdown).
  /// The record-level operators poll it at candidate granularity and the
  /// plan driver at stage boundaries; when it fires, ExecutePlan returns
  /// Status kDeadlineExceeded instead of a result. Null = never cancelled.
  const CancelToken* cancel = nullptr;
};

/// Executes one plan end to end. All six plans return the same rule set
/// (the plan-equivalence invariant); they differ only in cost profile.
Result<PlanResult> ExecutePlan(PlanKind kind, const MipIndex& index,
                               const LocalizedQuery& query,
                               const PlanExecOptions& exec);

/// Legacy-parameter convenience overload (tests and benches).
Result<PlanResult> ExecutePlan(PlanKind kind, const MipIndex& index,
                               const LocalizedQuery& query,
                               const RuleGenOptions& rulegen = {},
                               const FocalSubset* shared_subset = nullptr,
                               ArmMinerKind arm_miner = ArmMinerKind::kCharm);

}  // namespace colarm

#endif  // COLARM_PLANS_PLANS_H_
