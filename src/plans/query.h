#ifndef COLARM_PLANS_QUERY_H_
#define COLARM_PLANS_QUERY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/schema.h"
#include "mining/constraints.h"
#include "rtree/rect.h"

namespace colarm {

/// One RANGE predicate: attribute value restricted to the inclusive value-id
/// interval [lo, hi]. Intervals align with the prestored cell granularity
/// (the paper's simplifying assumption in Section 3.4).
struct RangeSelection {
  AttrId attr = 0;
  ValueId lo = 0;
  ValueId hi = 0;
};

/// An online localized rule mining query Q (Section 2.2):
///
///   REPORT LOCALIZED ASSOCIATION RULES FROM D
///   WHERE RANGE  <ranges>                 -- defines the focal subset DQ
///   [AND ITEM ATTRIBUTES <item_attrs>]    -- rule vocabulary (default: all)
///   [AND CONTAIN <items>] [AND EXCLUDE <items>]
///   [AND ANTECEDENT ATTRIBUTES <attrs>]   -- rule constraints (optional)
///   HAVING minsupport = ... AND minconfidence = ...
///   [AND minlift = ...] [AND mincosine = ...] [AND minkulczynski = ...];
struct LocalizedQuery {
  std::vector<RangeSelection> ranges;  // unconstrained attrs span their domain
  std::vector<AttrId> item_attrs;      // empty = all attributes
  double minsupp = 0.5;
  double minconf = 0.5;
  RuleConstraints constraints;         // default-empty: unconstrained

  /// The focal-subset box: query intervals on constrained attributes, full
  /// domain elsewhere.
  Rect ToRect(const Schema& schema) const;

  /// Per-attribute mask of the item vocabulary.
  std::vector<bool> ItemAttrMask(const Schema& schema) const;

  /// Rejects duplicate/out-of-range attributes, inverted or out-of-domain
  /// intervals, thresholds outside (0, 1], and malformed constraints.
  Status Validate(const Schema& schema) const;

  /// True iff the constraints guarantee an empty rule set regardless of the
  /// data: contradictory CONTAIN/EXCLUDE, two CONTAIN items on one
  /// attribute, a CONTAIN item outside the item vocabulary, or a CONTAIN
  /// item whose value the focal box excludes. Execution short-circuits
  /// these instead of scanning.
  bool ConstraintsPrecludeRules(const Schema& schema) const;

  std::string ToString(const Schema& schema) const;
};

}  // namespace colarm

#endif  // COLARM_PLANS_QUERY_H_
