#include "plans/operators.h"

#include <algorithm>

#include "bitmap/bitmap_counter.h"
#include "core/query_cache.h"
#include "mining/fpgrowth.h"
#include "mining/local_counter.h"

namespace colarm {

const char* ExecBackendName(ExecBackend backend) {
  switch (backend) {
    case ExecBackend::kScalar:
      return "scalar";
    case ExecBackend::kBitmap:
      return "bitmap";
  }
  return "?";
}

namespace {

// True iff the box restricts any attribute below its full domain — the
// condition under which the scalar SELECT scans (and prices) the relation.
bool BoxIsConstrained(const Schema& schema, const Rect& box) {
  for (AttrId a = 0; a < schema.num_attributes(); ++a) {
    if (box.lo(a) != 0 || box.hi(a) != schema.attribute(a).domain_size() - 1) {
      return true;
    }
  }
  return false;
}

}  // namespace

PlanContext::PlanContext(const MipIndex& index, const LocalizedQuery& query,
                         const RuleGenOptions& rulegen, ThreadPool* pool,
                         ExecBackend backend)
    : index(index), query(query), rulegen(rulegen), pool(pool) {
  const Schema& schema = index.dataset().schema();
  item_attr_mask = query.ItemAttrMask(schema);
  const Rect box = query.ToRect(schema);
  if (backend == ExecBackend::kBitmap && !index.vertical().empty()) {
    vertical = &index.vertical();
    dq_bitmap = vertical->MaterializeDq(schema, box, pool);
    subset.box = box;
    subset.tids = dq_bitmap.ToTids();
    // Same record-check price as the scalar scan, which touches every
    // record only when the box constrains something.
    if (BoxIsConstrained(schema, box)) {
      record_checks += index.dataset().num_records();
    }
  } else {
    subset = FocalSubset::Materialize(index.dataset(), box, &record_checks);
  }
  local_min_count =
      subset.size() == 0 ? 1 : MinCount(query.minsupp, subset.size());
  InitConstraints();
}

PlanContext::PlanContext(const MipIndex& index, const LocalizedQuery& query,
                         const RuleGenOptions& rulegen, FocalSubset shared,
                         ThreadPool* pool, ExecBackend backend)
    : index(index), query(query), rulegen(rulegen), pool(pool) {
  item_attr_mask = query.ItemAttrMask(index.dataset().schema());
  subset = std::move(shared);
  if (backend == ExecBackend::kBitmap && !index.vertical().empty()) {
    vertical = &index.vertical();
    dq_bitmap = Bitmap::FromTids(subset.tids, index.dataset().num_records());
  }
  local_min_count =
      subset.size() == 0 ? 1 : MinCount(query.minsupp, subset.size());
  InitConstraints();
}

void PlanContext::InitConstraints() {
  search_box = subset.box;
  const RuleConstraints& constraints = query.constraints;
  if (constraints.Empty()) return;
  const Schema& schema = index.dataset().schema();
  item_constrained = constraints.HasItemConstraints();
  constraints_precluded = query.ConstraintsPrecludeRules(schema);
  if (constraints_precluded) return;
  for (ItemId item : constraints.must_contain) {
    const ValueId value = schema.ValueOfItem(item);
    search_box.SetInterval(schema.AttrOfItem(item), value, value);
  }
}

bool PlanContext::MipAttrsAllowed(uint32_t mip_id) const {
  const Schema& schema = index.dataset().schema();
  for (ItemId item : index.mip(mip_id).items) {
    if (!item_attr_mask[schema.AttrOfItem(item)]) return false;
  }
  return true;
}

bool PlanContext::MipConstraintAllowed(uint32_t mip_id) const {
  if (!MipAttrsAllowed(mip_id)) return false;
  if (!item_constrained) return true;
  return ItemsetSatisfiesConstraints(index.mip(mip_id).items,
                                     query.constraints);
}

RuleGenFilter PlanContext::FilterForItemset(const Itemset& items) const {
  RuleGenFilter filter;
  const RuleConstraints& constraints = query.constraints;
  if (constraints.Empty()) return filter;
  filter.min_lift = constraints.min_lift;
  filter.min_cosine = constraints.min_cosine;
  filter.min_kulczynski = constraints.min_kulczynski;
  filter.min_antecedent_supp = constraints.min_antecedent_supp;
  if (!constraints.antecedent_only.empty()) {
    const Schema& schema = index.dataset().schema();
    // Positions past 31 cannot occur in enumeration (the generator skips
    // such itemsets), so the mask safely stops there.
    const size_t len = std::min<size_t>(items.size(), 31);
    for (size_t i = 0; i < len; ++i) {
      if (std::binary_search(constraints.antecedent_only.begin(),
                             constraints.antecedent_only.end(),
                             schema.AttrOfItem(items[i]))) {
        filter.pinned_mask |= 1u << i;
      }
    }
  }
  return filter;
}

namespace {

// Chunk count for the record-level operator loops: a few chunks per worker
// for load balance (candidate costs vary with tidset sizes), coarse enough
// that per-chunk buffers stay cheap. 1 means "run the sequential path".
size_t OperatorChunks(const PlanContext& ctx, size_t n) {
  if (!IsParallel(ctx.pool) || n <= 1) return 1;
  return std::min(n, static_cast<size_t>(ctx.pool->parallelism()) * 4);
}

CandidateSet RunSearch(PlanContext* ctx, bool supported) {
  CandidateSet out;
  auto visitor = [&out](const RTreeEntry& entry, bool contained) {
    (contained ? out.contained : out.overlapped).push_back(entry.id);
  };
  // The CONTAIN-narrowed search box: contained-vs-overlapped stays sound
  // because containment in the narrowed box implies containment in the
  // focal box (Lemma 4.5 still applies).
  if (supported) {
    ctx->index.rtree().SearchSupported(ctx->search_box, ctx->local_min_count,
                                       visitor, &ctx->rtree_stats);
  } else {
    ctx->index.rtree().Search(ctx->search_box, visitor, &ctx->rtree_stats);
  }
  // Deterministic candidate order regardless of tree layout.
  std::sort(out.contained.begin(), out.contained.end());
  std::sort(out.overlapped.begin(), out.overlapped.end());
  return out;
}

}  // namespace

CandidateSet OpSearch(PlanContext* ctx) {
  return RunSearch(ctx, /*supported=*/false);
}

CandidateSet OpSupportedSearch(PlanContext* ctx) {
  return RunSearch(ctx, /*supported=*/true);
}

namespace {

// Sequential ELIMINATE body over one candidate range; the parallel path
// runs it per chunk with chunk-local outputs. The bitmap backend computes
// each candidate's local count as popcount(item-AND ∩ DQ) — one scratch
// bitmap per range keeps the candidate loop allocation-free — while
// charging the same record-check price as the scalar row scan.
// True when this execution both reads and records the session cache's
// per-(box, itemset) count memo.
bool MemoActive(const PlanContext& ctx) {
  return ctx.cache != nullptr && ctx.memo_txn != nullptr;
}

void EliminateRange(PlanContext* ctx, std::span<const uint32_t> candidates,
                    std::vector<QualifiedItemset>* qualified,
                    uint64_t* record_checks) {
  const Dataset& dataset = ctx->index.dataset();
  const bool memo = MemoActive(*ctx);
  Bitmap scratch;
  if (ctx->vertical != nullptr) {
    scratch = Bitmap(ctx->vertical->num_records());
  }
  for (uint32_t id : candidates) {
    ThrowIfCancelled(ctx->cancel);
    if (!ctx->MipConstraintAllowed(id)) continue;
    const Mip& mip = ctx->index.mip(id);
    uint32_t count = 0;
    if (memo) {
      auto hit = ctx->cache->MemoLookup(ctx->memo_txn->box_key(),
                                        ctx->memo_txn->constraint_key(), id);
      if (hit != nullptr) {
        // The memoized count replaces the scan; the semantic price (one
        // pass over the focal subset) is charged as if it ran, keeping the
        // effort counters byte-identical to cold execution.
        ctx->cache->NoteMemoServed();
        *record_checks += ctx->subset.tids.size();
        if (hit->full_count >= ctx->local_min_count) {
          qualified->push_back({id, hit->full_count});
        }
        continue;
      }
    }
    if (ctx->vertical != nullptr) {
      count = BitmapLocalCount(*ctx->vertical, ctx->dq_bitmap, mip.items,
                               &scratch);
    } else {
      for (Tid t : ctx->subset.tids) {
        if (dataset.ContainsAll(t, mip.items)) ++count;
      }
    }
    *record_checks += ctx->subset.tids.size();
    if (memo) ctx->memo_txn->RecordFull(id, count);
    if (count >= ctx->local_min_count) {
      qualified->push_back({id, count});
    }
  }
}

}  // namespace

std::vector<QualifiedItemset> OpEliminate(
    PlanContext* ctx, std::span<const uint32_t> candidates) {
  std::vector<QualifiedItemset> qualified;
  const size_t chunks = OperatorChunks(*ctx, candidates.size());
  if (chunks <= 1) {
    EliminateRange(ctx, candidates, &qualified, &ctx->record_checks);
    return qualified;
  }

  // Candidates are sorted by mip_id, so concatenating chunk outputs in
  // chunk order reproduces the sequential qualified order exactly.
  std::vector<std::vector<QualifiedItemset>> parts(chunks);
  std::vector<uint64_t> checks(chunks, 0);
  ParallelChunks(ctx->pool, candidates.size(), chunks,
                 [&](size_t chunk, size_t begin, size_t end) {
                   EliminateRange(ctx, candidates.subspan(begin, end - begin),
                                  &parts[chunk], &checks[chunk]);
                 });
  for (size_t chunk = 0; chunk < chunks; ++chunk) {
    qualified.insert(qualified.end(), parts[chunk].begin(),
                     parts[chunk].end());
    ctx->record_checks += checks[chunk];
  }
  return qualified;
}

std::vector<QualifiedItemset> QualifyContained(
    PlanContext* ctx, std::span<const uint32_t> contained) {
  std::vector<QualifiedItemset> qualified;
  for (uint32_t id : contained) {
    if (!ctx->MipConstraintAllowed(id)) continue;
    const uint32_t count = ctx->index.mip(id).global_count;
    // Lemma 4.5: containment makes the local count equal the global one.
    // SUPPORTED-SEARCH already pruned counts below the threshold, but a
    // plain SEARCH caller still needs the comparison.
    if (count >= ctx->local_min_count) {
      qualified.push_back({id, count});
    }
  }
  return qualified;
}

std::vector<QualifiedItemset> OpUnion(std::vector<QualifiedItemset> a,
                                      std::vector<QualifiedItemset> b) {
  a.reserve(a.size() + b.size());
  for (QualifiedItemset& q : b) a.push_back(q);
  std::sort(a.begin(), a.end(),
            [](const QualifiedItemset& x, const QualifiedItemset& y) {
              return x.mip_id < y.mip_id;
            });
  return a;
}

namespace {

// Per-chunk state of the parallel VERIFY operators: each worker generates
// into its own rule buffer with its own effort counters, merged in chunk
// order (rules) and by summation (counters) — both reproduce the
// sequential result exactly.
struct VerifyShard {
  RuleSet rules;
  RuleGenStats rule_stats;
  uint64_t record_checks = 0;
};

// Records one cold-computed counter into the query's memo transaction: the
// subset table when the counter ran the mask route, otherwise just the
// full count (which still settles later ELIMINATE / disqualification).
template <typename Counter>
void RecordCounter(PlanContext* ctx, uint32_t mip_id, const Counter& counter) {
  if (counter.has_subset_table()) {
    ctx->memo_txn->RecordTable(mip_id, counter.CountFull(),
                               counter.subset_table());
  } else {
    ctx->memo_txn->RecordFull(mip_id, counter.CountFull());
  }
}

// Replays a memoized subset-count table for one itemset: rule generation
// runs against O(1) lookups, charging the cold counter's one-pass price.
// False when the memo has no table for it (the cold path must run).
bool TryMemoVerify(PlanContext* ctx, uint32_t mip_id, const Itemset& items,
                   RuleSet* out, RuleGenStats* rule_stats,
                   uint64_t* record_checks) {
  auto hit = ctx->cache->MemoLookup(ctx->memo_txn->box_key(),
                                    ctx->memo_txn->constraint_key(), mip_id);
  if (hit == nullptr || hit->superset_counts.empty()) return false;
  ctx->cache->NoteMemoServed();
  MemoSubsetCounter counter(items, std::move(hit),
                            static_cast<uint32_t>(ctx->subset.tids.size()));
  GenerateRulesForItemset(counter, ctx->query.minconf, ctx->rulegen,
                          ctx->FilterForItemset(items), out, rule_stats);
  *record_checks += counter.record_checks();
  return true;
}

// Rule generation + memo recording for one cold-computed counter.
template <typename Counter>
void VerifyColdOne(PlanContext* ctx, uint32_t mip_id, const Counter& counter,
                   bool memo, RuleSet* out, RuleGenStats* rule_stats,
                   uint64_t* record_checks) {
  GenerateRulesForItemset(counter, ctx->query.minconf, ctx->rulegen,
                          ctx->FilterForItemset(counter.itemset()), out,
                          rule_stats);
  *record_checks += counter.record_checks();
  if (memo) RecordCounter(ctx, mip_id, counter);
}

void VerifyRange(PlanContext* ctx, std::span<const QualifiedItemset> qualified,
                 RuleSet* out, RuleGenStats* rule_stats,
                 uint64_t* record_checks) {
  const Dataset& dataset = ctx->index.dataset();
  const bool memo = MemoActive(*ctx);
  for (const QualifiedItemset& q : qualified) {
    ThrowIfCancelled(ctx->cancel);
    const Itemset& items = ctx->index.mip(q.mip_id).items;
    if (memo && TryMemoVerify(ctx, q.mip_id, items, out, rule_stats,
                              record_checks)) {
      continue;
    }
    if (ctx->vertical != nullptr) {
      BitmapSubsetCounter counter(*ctx->vertical, ctx->dq_bitmap, items,
                                  ctx->subset.tids);
      VerifyColdOne(ctx, q.mip_id, counter, memo, out, rule_stats,
                    record_checks);
    } else {
      LocalSubsetCounter counter(dataset, items, ctx->subset.tids);
      VerifyColdOne(ctx, q.mip_id, counter, memo, out, rule_stats,
                    record_checks);
    }
  }
}

// One SUPPORTED-VERIFY candidate, shared by both backends: the counter's
// full count decides qualification, then the same counter feeds rule
// generation — one pass does both jobs.
template <typename Counter>
void SupportedVerifyOne(PlanContext* ctx, const Counter& counter, RuleSet* out,
                        RuleGenStats* rule_stats, uint64_t* record_checks) {
  *record_checks += counter.record_checks();
  if (counter.CountFull() < ctx->local_min_count) return;
  GenerateRulesForItemset(counter, ctx->query.minconf, ctx->rulegen,
                          ctx->FilterForItemset(counter.itemset()), out,
                          rule_stats);
}

void SupportedVerifyRange(PlanContext* ctx,
                          std::span<const uint32_t> candidates, RuleSet* out,
                          RuleGenStats* rule_stats, uint64_t* record_checks) {
  const Dataset& dataset = ctx->index.dataset();
  const bool memo = MemoActive(*ctx);
  for (uint32_t id : candidates) {
    ThrowIfCancelled(ctx->cancel);
    if (!ctx->MipConstraintAllowed(id)) continue;
    const Itemset& items = ctx->index.mip(id).items;
    if (memo) {
      auto hit = ctx->cache->MemoLookup(ctx->memo_txn->box_key(),
                                        ctx->memo_txn->constraint_key(), id);
      if (hit != nullptr && !hit->superset_counts.empty()) {
        ctx->cache->NoteMemoServed();
        MemoSubsetCounter counter(
            items, std::move(hit),
            static_cast<uint32_t>(ctx->subset.tids.size()));
        SupportedVerifyOne(ctx, counter, out, rule_stats, record_checks);
        continue;
      }
      if (hit != nullptr && hit->full_count < ctx->local_min_count) {
        // A full-count-only memo (ELIMINATE's) still settles
        // disqualification; only a qualifying candidate needs the table
        // and falls through to the cold pass.
        ctx->cache->NoteMemoServed();
        *record_checks += ctx->subset.tids.size();
        continue;
      }
    }
    if (ctx->vertical != nullptr) {
      BitmapSubsetCounter counter(*ctx->vertical, ctx->dq_bitmap, items,
                                  ctx->subset.tids);
      SupportedVerifyOne(ctx, counter, out, rule_stats, record_checks);
      if (memo) RecordCounter(ctx, id, counter);
    } else {
      LocalSubsetCounter counter(dataset, items, ctx->subset.tids);
      SupportedVerifyOne(ctx, counter, out, rule_stats, record_checks);
      if (memo) RecordCounter(ctx, id, counter);
    }
  }
}

void MergeShards(PlanContext* ctx, std::vector<VerifyShard> shards,
                 RuleSet* out) {
  for (VerifyShard& shard : shards) {
    out->rules.insert(out->rules.end(),
                      std::make_move_iterator(shard.rules.rules.begin()),
                      std::make_move_iterator(shard.rules.rules.end()));
    ctx->rule_stats.rules_considered += shard.rule_stats.rules_considered;
    ctx->rule_stats.rules_emitted += shard.rule_stats.rules_emitted;
    ctx->rule_stats.itemsets_skipped += shard.rule_stats.itemsets_skipped;
    ctx->record_checks += shard.record_checks;
  }
}

}  // namespace

void OpVerify(PlanContext* ctx, std::span<const QualifiedItemset> qualified,
              RuleSet* out) {
  const size_t chunks = OperatorChunks(*ctx, qualified.size());
  if (chunks <= 1) {
    VerifyRange(ctx, qualified, out, &ctx->rule_stats, &ctx->record_checks);
    return;
  }
  std::vector<VerifyShard> shards(chunks);
  ParallelChunks(ctx->pool, qualified.size(), chunks,
                 [&](size_t chunk, size_t begin, size_t end) {
                   VerifyShard& shard = shards[chunk];
                   VerifyRange(ctx, qualified.subspan(begin, end - begin),
                               &shard.rules, &shard.rule_stats,
                               &shard.record_checks);
                 });
  MergeShards(ctx, std::move(shards), out);
}

void OpSupportedVerify(PlanContext* ctx, std::span<const uint32_t> candidates,
                       RuleSet* out) {
  const size_t chunks = OperatorChunks(*ctx, candidates.size());
  if (chunks <= 1) {
    SupportedVerifyRange(ctx, candidates, out, &ctx->rule_stats,
                         &ctx->record_checks);
    return;
  }
  std::vector<VerifyShard> shards(chunks);
  ParallelChunks(ctx->pool, candidates.size(), chunks,
                 [&](size_t chunk, size_t begin, size_t end) {
                   VerifyShard& shard = shards[chunk];
                   SupportedVerifyRange(
                       ctx, candidates.subspan(begin, end - begin),
                       &shard.rules, &shard.rule_stats, &shard.record_checks);
                 });
  MergeShards(ctx, std::move(shards), out);
}

namespace {

// ARM via FP-growth: mine every locally frequent itemset, then keep the
// ones that are prestored CFIs (exact trie lookups). Because the frequent
// list is complete above the threshold, the qualified set and its counts
// are identical to the CHARM path's.
std::vector<QualifiedItemset> ArmMineFpGrowth(PlanContext* ctx,
                                              std::span<const Tid> mine_tids) {
  std::vector<QualifiedItemset> qualified;
  std::vector<FrequentItemset> frequent =
      MineFpGrowth(ctx->index.dataset(), mine_tids, ctx->local_min_count);
  ctx->local_cfis = frequent.size();
  for (const FrequentItemset& f : frequent) {
    ThrowIfCancelled(ctx->cancel);
    auto id = ctx->index.ittree().Find(f.items);
    if (!id.has_value()) continue;
    if (!ctx->MipConstraintAllowed(*id)) continue;
    qualified.push_back({*id, f.count});
  }
  std::sort(qualified.begin(), qualified.end(),
            [](const QualifiedItemset& a, const QualifiedItemset& b) {
              return a.mip_id < b.mip_id;
            });
  return qualified;
}

// The cold mining pass behind OpArmMine; its (deterministic) qualified set
// and local-CFI tally are what the ARM memo records and replays.
std::vector<QualifiedItemset> ArmMineCold(PlanContext* ctx) {
  std::vector<QualifiedItemset> qualified;

  // CONTAIN seeding: qualifying itemsets are supersets of must_contain, so
  // their supports within DQ equal their supports within the records of DQ
  // holding every CONTAIN item — mining that (often much smaller) seed
  // subset yields identical counts for every constraint-allowed MIP. The
  // restriction pass charges one focal-subset scan on either backend.
  std::span<const Tid> mine_tids = ctx->subset.tids;
  std::vector<Tid> seeded;
  if (ctx->item_constrained && !ctx->query.constraints.must_contain.empty()) {
    const Dataset& dataset = ctx->index.dataset();
    for (Tid t : ctx->subset.tids) {
      if (dataset.ContainsAll(t, ctx->query.constraints.must_contain)) {
        seeded.push_back(t);
      }
    }
    ctx->record_checks += ctx->subset.tids.size();
    if (seeded.empty()) return qualified;
    mine_tids = seeded;
  }

  if (ctx->arm_miner == ArmMinerKind::kFpGrowth) {
    return ArmMineFpGrowth(ctx, mine_tids);
  }

  // Traditional two-step mining over the extracted focal subset, with
  // EXCLUDE items dropped from the vertical view: they cannot appear in
  // any qualifying itemset, and projection preserves the support of every
  // itemset that avoids them, so CHARM skips their lattice branches.
  VerticalView local_view(ctx->index.dataset(), mine_tids);
  if (ctx->item_constrained && !ctx->query.constraints.must_exclude.empty()) {
    local_view.DropItems(ctx->query.constraints.must_exclude);
  }
  ITTree local_tree;
  std::vector<bool> seen(ctx->index.num_mips(), false);
  std::vector<uint32_t> hits;

  // The miner's closure callback is the finest interruption point the ARM
  // plan has — CHARM's recursion itself is not resumable.
  MineCharm(local_view, ctx->local_min_count,
            [&](const Itemset& items, const Tidset& tids) {
              ThrowIfCancelled(ctx->cancel);
              ++ctx->local_cfis;
              local_tree.Insert(items, static_cast<uint32_t>(tids.size()));
              // Intersect with the prestored family: every globally stored
              // CFI contained in this local CFI is locally frequent.
              ctx->index.ittree().ForEachSubsetOf(items, [&](uint32_t id) {
                if (!seen[id]) {
                  seen[id] = true;
                  hits.push_back(id);
                }
              });
            });

  std::sort(hits.begin(), hits.end());
  for (uint32_t id : hits) {
    if (!ctx->MipConstraintAllowed(id)) continue;
    // Local support of a stored CFI = support of its local closure.
    uint32_t count = local_tree.MaxSupersetCount(ctx->index.mip(id).items);
    qualified.push_back({id, count});
  }
  return qualified;
}

}  // namespace

std::vector<QualifiedItemset> OpArmMine(PlanContext* ctx) {
  if (ctx->subset.tids.empty()) return {};
  const bool memo = MemoActive(*ctx);
  if (memo) {
    auto hit = ctx->cache->ArmMemoLookup(ctx->memo_txn->box_key(),
                                         ctx->memo_txn->constraint_key(),
                                         ctx->local_min_count);
    if (hit != nullptr) {
      ctx->cache->NoteMemoServed();
      // The replay charges the cold pass's only record-level price: the
      // CONTAIN seeding scan over the focal subset.
      if (ctx->item_constrained &&
          !ctx->query.constraints.must_contain.empty()) {
        ctx->record_checks += ctx->subset.tids.size();
      }
      ctx->local_cfis = hit->local_cfis;
      std::vector<QualifiedItemset> qualified;
      qualified.reserve(hit->qualified.size());
      for (const auto& [id, count] : hit->qualified) {
        qualified.push_back({id, count});
      }
      return qualified;
    }
  }
  std::vector<QualifiedItemset> qualified = ArmMineCold(ctx);
  if (memo) {
    std::vector<std::pair<uint32_t, uint32_t>> pairs;
    pairs.reserve(qualified.size());
    for (const QualifiedItemset& q : qualified) {
      pairs.emplace_back(q.mip_id, q.local_count);
    }
    ctx->memo_txn->RecordArmMine(ctx->local_min_count, ctx->local_cfis,
                                 std::move(pairs));
  }
  return qualified;
}

}  // namespace colarm
