#include "mip/serialize.h"

#include <cstring>
#include <fstream>

#include "common/string_util.h"

namespace colarm {

namespace {

constexpr uint32_t kMagic = 0x434c524d;  // "CLRM"
constexpr uint32_t kVersion = 1;

class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  void U8(uint8_t v) { Raw(&v, 1); }
  void U16(uint16_t v) { Raw(&v, 2); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void F64(double v) { Raw(&v, 8); }

  bool ok() const { return static_cast<bool>(out_); }

 private:
  void Raw(const void* data, size_t size) {
    out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
  }
  std::ostream& out_;
};

class Reader {
 public:
  explicit Reader(std::istream& in) : in_(in) {}

  uint8_t U8() { return Raw<uint8_t>(); }
  uint16_t U16() { return Raw<uint16_t>(); }
  uint32_t U32() { return Raw<uint32_t>(); }
  uint64_t U64() { return Raw<uint64_t>(); }
  double F64() { return Raw<double>(); }

  bool ok() const { return static_cast<bool>(in_); }

 private:
  template <typename T>
  T Raw() {
    T value{};
    in_.read(reinterpret_cast<char*>(&value), sizeof(T));
    return value;
  }
  std::istream& in_;
};

}  // namespace

uint64_t DatasetFingerprint(const Dataset& dataset) {
  // FNV-1a over the schema shape, record count, and a deterministic cell
  // sample. Cheap, stable, and sensitive to reordering or edits.
  uint64_t hash = 1469598103934665603ULL;
  auto mix = [&hash](uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xff;
      hash *= 1099511628211ULL;
    }
  };
  const Schema& schema = dataset.schema();
  mix(schema.num_attributes());
  mix(dataset.num_records());
  for (AttrId a = 0; a < schema.num_attributes(); ++a) {
    mix(schema.attribute(a).domain_size());
    for (char c : schema.attribute(a).name) mix(static_cast<uint64_t>(c));
  }
  const uint32_t m = dataset.num_records();
  const uint32_t step = std::max<uint32_t>(1, m / 64);
  for (Tid t = 0; t < m; t += step) {
    for (AttrId a = 0; a < schema.num_attributes(); ++a) {
      mix((static_cast<uint64_t>(t) << 32) ^ (a << 16) ^
          dataset.Value(t, a));
    }
  }
  return hash;
}

Status SaveMipIndex(const MipIndex& index, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  Writer w(out);
  w.U32(kMagic);
  w.U32(kVersion);
  w.U64(DatasetFingerprint(index.dataset()));
  w.F64(index.options().primary_support);
  w.U32(index.options().rtree.max_entries);
  w.U32(index.options().rtree.min_entries);
  w.U8(index.options().use_str_packing ? 1 : 0);
  w.U32(index.primary_count());
  const uint32_t dims = index.dataset().num_attributes();
  w.U32(dims);
  w.U32(index.num_mips());
  for (uint32_t id = 0; id < index.num_mips(); ++id) {
    const Mip& mip = index.mip(id);
    w.U32(static_cast<uint32_t>(mip.items.size()));
    for (ItemId item : mip.items) w.U32(item);
    w.U32(mip.global_count);
    for (uint32_t d = 0; d < dims; ++d) {
      w.U16(mip.bbox.lo(d));
      w.U16(mip.bbox.hi(d));
    }
  }
  if (!w.ok()) return Status::IoError("short write to '" + path + "'");
  return Status::OK();
}

Result<MipIndex> LoadMipIndex(const Dataset& dataset,
                              const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  Reader r(in);
  if (r.U32() != kMagic) {
    return Status::ParseError("'" + path + "' is not a COLARM index file");
  }
  uint32_t version = r.U32();
  if (version != kVersion) {
    return Status::ParseError(
        StrFormat("unsupported index version %u", version));
  }
  if (r.U64() != DatasetFingerprint(dataset)) {
    return Status::FailedPrecondition(
        "index file was built from a different dataset");
  }
  MipIndexOptions options;
  options.primary_support = r.F64();
  options.rtree.max_entries = r.U32();
  options.rtree.min_entries = r.U32();
  options.use_str_packing = r.U8() != 0;
  uint32_t primary_count = r.U32();
  uint32_t dims = r.U32();
  if (dims != dataset.num_attributes()) {
    return Status::ParseError("index dimensionality mismatch");
  }
  uint32_t num_mips = r.U32();
  if (!r.ok()) return Status::ParseError("truncated index header");

  const ItemId max_item = dataset.schema().num_items();
  std::vector<Mip> mips;
  mips.reserve(num_mips);
  for (uint32_t i = 0; i < num_mips; ++i) {
    Mip mip;
    uint32_t len = r.U32();
    if (len > max_item) return Status::ParseError("corrupt itemset length");
    mip.items.reserve(len);
    for (uint32_t j = 0; j < len; ++j) {
      ItemId item = r.U32();
      if (item >= max_item) return Status::ParseError("item id out of range");
      mip.items.push_back(item);
    }
    if (!ItemsetIsValid(mip.items)) {
      return Status::ParseError("corrupt itemset ordering");
    }
    mip.global_count = r.U32();
    mip.bbox = Rect::MakeEmpty(dims);
    for (uint32_t d = 0; d < dims; ++d) {
      ValueId lo = r.U16();
      ValueId hi = r.U16();
      mip.bbox.SetInterval(d, lo, hi);
    }
    if (!r.ok()) return Status::ParseError("truncated MIP record");
    mips.push_back(std::move(mip));
  }
  return MipIndex::Assemble(dataset, options, primary_count, std::move(mips));
}

}  // namespace colarm
