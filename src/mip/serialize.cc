#include "mip/serialize.h"

#include <cmath>
#include <cstring>
#include <fstream>

#include "common/string_util.h"

namespace colarm {

namespace {

constexpr uint32_t kMagic = 0x434c524d;  // "CLRM"
// Version 2 appends an FNV-1a checksum of the whole payload, so corruption
// that survives the structural checks (bit flips in counts, boxes, item
// ids that stay in range) is still rejected deterministically. Version 3
// persists the vertical bitmap index between the MIP records and the
// checksum, so the kBitmap backend skips its rebuild on cache load; v2
// files are rejected (the engine falls back to a rebuild).
constexpr uint32_t kVersion = 3;
constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  void U8(uint8_t v) { Raw(&v, 1); }
  void U16(uint16_t v) { Raw(&v, 2); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void F64(double v) { Raw(&v, 8); }

  /// Writes the running checksum of every byte emitted so far. Must be the
  /// last write: the checksum bytes themselves are not accumulated.
  void Checksum() {
    const uint64_t hash = hash_;
    out_.write(reinterpret_cast<const char*>(&hash), sizeof(hash));
  }

  bool ok() const { return static_cast<bool>(out_); }

 private:
  void Raw(const void* data, size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      hash_ = (hash_ ^ bytes[i]) * kFnvPrime;
    }
    out_.write(reinterpret_cast<const char*>(data),
               static_cast<std::streamsize>(size));
  }
  std::ostream& out_;
  uint64_t hash_ = kFnvOffset;
};

class Reader {
 public:
  explicit Reader(std::istream& in) : in_(in) {}

  uint8_t U8() { return Raw<uint8_t>(); }
  uint16_t U16() { return Raw<uint16_t>(); }
  uint32_t U32() { return Raw<uint32_t>(); }
  uint64_t U64() { return Raw<uint64_t>(); }
  double F64() { return Raw<double>(); }

  /// True iff the next 8 bytes equal the checksum of everything read so
  /// far and the file ends right after them.
  bool ChecksumMatches() {
    const uint64_t expected = hash_;
    uint64_t stored = 0;
    in_.read(reinterpret_cast<char*>(&stored), sizeof(stored));
    if (!in_ || stored != expected) return false;
    return in_.peek() == std::char_traits<char>::eof();
  }

  bool ok() const { return static_cast<bool>(in_); }

 private:
  template <typename T>
  T Raw() {
    T value{};
    in_.read(reinterpret_cast<char*>(&value), sizeof(T));
    if (in_) {
      unsigned char bytes[sizeof(T)];
      std::memcpy(bytes, &value, sizeof(T));
      for (unsigned char b : bytes) hash_ = (hash_ ^ b) * kFnvPrime;
    }
    return value;
  }
  std::istream& in_;
  uint64_t hash_ = kFnvOffset;
};

Status Corrupt(const std::string& what) {
  return Status::ParseError("corrupt index file: " + what);
}

}  // namespace

uint64_t DatasetFingerprint(const Dataset& dataset) {
  // FNV-1a over the schema shape, record count, and a deterministic cell
  // sample. Cheap, stable, and sensitive to reordering or edits.
  uint64_t hash = kFnvOffset;
  auto mix = [&hash](uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xff;
      hash *= kFnvPrime;
    }
  };
  const Schema& schema = dataset.schema();
  mix(schema.num_attributes());
  mix(dataset.num_records());
  for (AttrId a = 0; a < schema.num_attributes(); ++a) {
    mix(schema.attribute(a).domain_size());
    for (char c : schema.attribute(a).name) mix(static_cast<uint64_t>(c));
  }
  const uint32_t m = dataset.num_records();
  const uint32_t step = std::max<uint32_t>(1, m / 64);
  for (Tid t = 0; t < m; t += step) {
    for (AttrId a = 0; a < schema.num_attributes(); ++a) {
      mix((static_cast<uint64_t>(t) << 32) ^ (a << 16) ^
          dataset.Value(t, a));
    }
  }
  return hash;
}

uint64_t IndexFingerprint(const MipIndex& index) {
  uint64_t hash = kFnvOffset;
  auto mix = [&hash](uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xff;
      hash *= kFnvPrime;
    }
  };
  mix(DatasetFingerprint(index.dataset()));
  mix(static_cast<uint64_t>(index.options().primary_support * 1e9));
  mix(index.options().rtree.max_entries);
  mix(index.options().rtree.min_entries);
  mix(index.options().use_str_packing ? 1 : 0);
  mix(index.primary_count());
  mix(index.num_mips());
  const uint32_t dims = index.dataset().num_attributes();
  for (uint32_t id = 0; id < index.num_mips(); ++id) {
    const Mip& mip = index.mip(id);
    mix(mip.items.size());
    for (ItemId item : mip.items) mix(item);
    mix(mip.global_count);
    for (uint32_t d = 0; d < dims; ++d) {
      mix((static_cast<uint64_t>(mip.bbox.lo(d)) << 16) ^ mip.bbox.hi(d));
    }
  }
  return hash;
}

Status SaveMipIndex(const MipIndex& index, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  Writer w(out);
  w.U32(kMagic);
  w.U32(kVersion);
  w.U64(DatasetFingerprint(index.dataset()));
  w.F64(index.options().primary_support);
  w.U32(index.options().rtree.max_entries);
  w.U32(index.options().rtree.min_entries);
  w.U8(index.options().use_str_packing ? 1 : 0);
  w.U32(index.primary_count());
  const uint32_t dims = index.dataset().num_attributes();
  w.U32(dims);
  w.U32(index.num_mips());
  for (uint32_t id = 0; id < index.num_mips(); ++id) {
    const Mip& mip = index.mip(id);
    w.U32(static_cast<uint32_t>(mip.items.size()));
    for (ItemId item : mip.items) w.U32(item);
    w.U32(mip.global_count);
    for (uint32_t d = 0; d < dims; ++d) {
      w.U16(mip.bbox.lo(d));
      w.U16(mip.bbox.hi(d));
    }
  }
  // Vertical bitmap section (v3): raw words, one run per item.
  const VerticalIndex& vertical = index.vertical();
  w.U32(vertical.num_records());
  w.U32(vertical.num_items());
  const uint32_t words_per_item =
      vertical.num_items() == 0 ? 0 : vertical.item(0).num_words();
  w.U32(words_per_item);
  for (ItemId item = 0; item < vertical.num_items(); ++item) {
    const Bitmap& bits = vertical.item(item);
    for (uint32_t word = 0; word < bits.num_words(); ++word) {
      w.U64(bits.words()[word]);
    }
  }
  w.Checksum();
  if (!w.ok()) return Status::IoError("short write to '" + path + "'");
  return Status::OK();
}

Result<MipIndex> LoadMipIndex(const Dataset& dataset,
                              const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  in.seekg(0, std::ios::end);
  const auto file_size = in.tellg();
  in.seekg(0, std::ios::beg);
  if (file_size < 0) return Status::IoError("cannot stat '" + path + "'");

  Reader r(in);
  if (r.U32() != kMagic) {
    return Status::ParseError("'" + path + "' is not a COLARM index file");
  }
  uint32_t version = r.U32();
  if (version != kVersion) {
    return Status::ParseError(
        StrFormat("unsupported index version %u", version));
  }
  if (r.U64() != DatasetFingerprint(dataset)) {
    return Status::FailedPrecondition(
        "index file was built from a different dataset");
  }
  // Every header field is validated before use: a corrupted file must
  // produce a Status, never an out-of-range value that reaches an assert,
  // an unbounded allocation, or float UB downstream.
  MipIndexOptions options;
  options.primary_support = r.F64();
  if (!std::isfinite(options.primary_support) ||
      options.primary_support <= 0.0 || options.primary_support > 1.0) {
    return Corrupt("primary support outside (0, 1]");
  }
  options.rtree.max_entries = r.U32();
  options.rtree.min_entries = r.U32();
  if (options.rtree.max_entries < 2 || options.rtree.min_entries < 1 ||
      options.rtree.min_entries > options.rtree.max_entries / 2) {
    return Corrupt("invalid R-tree fanout bounds");
  }
  options.use_str_packing = r.U8() != 0;
  uint32_t primary_count = r.U32();
  if (primary_count < 1 || primary_count > dataset.num_records()) {
    return Corrupt("primary count outside [1, num_records]");
  }
  uint32_t dims = r.U32();
  if (dims != dataset.num_attributes()) {
    return Status::ParseError("index dimensionality mismatch");
  }
  uint32_t num_mips = r.U32();
  if (!r.ok()) return Status::ParseError("truncated index header");

  // Bound the MIP count by what the file could possibly hold before
  // reserving anything: each MIP takes at least 12 + 4*dims bytes
  // (length, one item, global count, bounding box), and the header plus
  // trailing checksum account for 53 bytes.
  const uint64_t min_mip_bytes = 12 + 4ull * dims;
  const uint64_t payload =
      static_cast<uint64_t>(file_size) > 53
          ? static_cast<uint64_t>(file_size) - 53
          : 0;
  if (num_mips > payload / min_mip_bytes) {
    return Corrupt("MIP count exceeds file size");
  }

  const Schema& schema = dataset.schema();
  const ItemId max_item = schema.num_items();
  std::vector<Mip> mips;
  mips.reserve(num_mips);
  for (uint32_t i = 0; i < num_mips; ++i) {
    Mip mip;
    uint32_t len = r.U32();
    if (len < 1 || len > max_item) return Corrupt("itemset length");
    mip.items.reserve(len);
    for (uint32_t j = 0; j < len; ++j) {
      ItemId item = r.U32();
      if (item >= max_item) return Corrupt("item id out of range");
      mip.items.push_back(item);
    }
    if (!ItemsetIsValid(mip.items)) return Corrupt("itemset ordering");
    for (size_t j = 1; j < mip.items.size(); ++j) {
      if (schema.AttrOfItem(mip.items[j - 1]) ==
          schema.AttrOfItem(mip.items[j])) {
        return Corrupt("two items on one attribute");
      }
    }
    mip.global_count = r.U32();
    if (mip.global_count < primary_count ||
        mip.global_count > dataset.num_records()) {
      return Corrupt("MIP support outside [primary_count, num_records]");
    }
    mip.bbox = Rect::MakeEmpty(dims);
    for (uint32_t d = 0; d < dims; ++d) {
      ValueId lo = r.U16();
      ValueId hi = r.U16();
      if (lo > hi || hi >= schema.attribute(d).domain_size()) {
        return Corrupt("bounding box outside the attribute domain");
      }
      mip.bbox.SetInterval(d, lo, hi);
    }
    if (!r.ok()) return Status::ParseError("truncated MIP record");
    mips.push_back(std::move(mip));
  }
  // Vertical bitmap section (v3). Shape must match the dataset exactly;
  // the per-attribute partition check below additionally rejects payloads
  // whose bits cannot be a one-hot re-encoding of *some* relation (wrong
  // cardinalities, overlapping value bitmaps, stray slack bits).
  const uint32_t vertical_records = r.U32();
  const uint32_t vertical_items = r.U32();
  const uint32_t words_per_item = r.U32();
  if (!r.ok()) return Status::ParseError("truncated vertical header");
  if (vertical_records != dataset.num_records() ||
      vertical_items != max_item) {
    return Corrupt("vertical index shape mismatch");
  }
  const uint32_t expected_words =
      (vertical_records + Bitmap::kBitsPerWord - 1) / Bitmap::kBitsPerWord;
  if (words_per_item != expected_words) {
    return Corrupt("vertical word count mismatch");
  }
  std::vector<Bitmap> bitmaps;
  bitmaps.reserve(vertical_items);
  for (ItemId item = 0; item < vertical_items; ++item) {
    Bitmap bits(vertical_records);
    for (uint32_t word = 0; word < bits.num_words(); ++word) {
      bits.mutable_words()[word] = r.U64();
    }
    if (!r.ok()) return Status::ParseError("truncated vertical bitmap");
    bitmaps.push_back(std::move(bits));
  }
  for (AttrId a = 0; a < schema.num_attributes(); ++a) {
    const ItemId base = schema.item_base(a);
    Bitmap seen(vertical_records);
    uint64_t total = 0;
    for (ValueId v = 0; v < schema.attribute(a).domain_size(); ++v) {
      total += bitmaps[base + v].Count();
      seen.OrWith(bitmaps[base + v]);
    }
    // Exactly one value per record and attribute, and nothing outside the
    // record universe (a set slack bit inflates `total` past m).
    if (total != vertical_records || seen.Count() != vertical_records) {
      return Corrupt("vertical bitmaps are not a record partition");
    }
  }
  if (!r.ChecksumMatches()) return Corrupt("checksum mismatch");
  return MipIndex::Assemble(
      dataset, options, primary_count, std::move(mips), nullptr,
      VerticalIndex::FromBitmaps(std::move(bitmaps), vertical_records));
}

}  // namespace colarm
