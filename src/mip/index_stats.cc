#include "mip/index_stats.h"

#include <algorithm>

#include "common/string_util.h"
#include "mip/mip_index.h"

namespace colarm {

double IndexStats::FractionWithCountAtLeast(uint32_t count) const {
  if (sorted_counts.empty()) return 0.0;
  auto it =
      std::lower_bound(sorted_counts.begin(), sorted_counts.end(), count);
  size_t passing = static_cast<size_t>(sorted_counts.end() - it);
  return static_cast<double>(passing) / sorted_counts.size();
}

std::string IndexStats::ToString() const {
  std::string out = StrFormat(
      "MIP-index: %u MIPs over %u records x %u attributes\n"
      "  primary count: %u, R-tree height: %u\n"
      "  itemset length: avg %.2f, max %u\n"
      "  avg MIP support fraction: %.3f\n",
      num_mips, num_records, num_attributes, primary_count, rtree_height,
      avg_itemset_length, max_itemset_length, avg_support_fraction);
  for (size_t level = 0; level < levels.size(); ++level) {
    double mean_extent = 0.0;
    for (double e : levels[level].avg_extent) mean_extent += e;
    if (!levels[level].avg_extent.empty()) {
      mean_extent /= static_cast<double>(levels[level].avg_extent.size());
    }
    out += StrFormat("  level %zu: %u nodes, mean extent %.3f\n", level,
                     levels[level].num_nodes, mean_extent);
  }
  return out;
}

IndexStats ComputeIndexStats(const MipIndex& index) {
  IndexStats stats;
  const Dataset& dataset = index.dataset();
  const Schema& schema = dataset.schema();
  const uint32_t n = schema.num_attributes();

  stats.num_records = dataset.num_records();
  stats.num_attributes = n;
  stats.num_mips = index.num_mips();
  stats.primary_count = index.primary_count();
  stats.rtree_height = index.rtree().height();
  stats.rtree_fanout = index.rtree().options().max_entries;

  // Per-level node counts and average normalized extents.
  stats.levels.assign(stats.rtree_height, RTreeLevelStats{});
  for (auto& level : stats.levels) level.avg_extent.assign(n, 0.0);
  index.rtree().ForEachNode(
      [&](uint32_t level, const Rect& mbr, bool /*leaf*/, uint32_t /*fanout*/) {
        RTreeLevelStats& ls = stats.levels[level];
        ++ls.num_nodes;
        for (uint32_t d = 0; d < n; ++d) {
          ls.avg_extent[d] +=
              mbr.NormalizedExtent(d, schema.attribute(d).domain_size());
        }
      });
  for (auto& level : stats.levels) {
    if (level.num_nodes > 0) {
      for (double& e : level.avg_extent) e /= level.num_nodes;
    }
  }

  // MIP-level aggregates.
  stats.mip_avg_extent.assign(n, 0.0);
  stats.sorted_counts.reserve(index.num_mips());
  uint64_t length_sum = 0;
  for (const Mip& mip : index.mips()) {
    for (uint32_t d = 0; d < n; ++d) {
      stats.mip_avg_extent[d] +=
          mip.bbox.NormalizedExtent(d, schema.attribute(d).domain_size());
    }
    const auto len = static_cast<uint32_t>(mip.items.size());
    length_sum += len;
    stats.max_itemset_length = std::max(stats.max_itemset_length, len);
    if (stats.length_histogram.size() <= len) {
      stats.length_histogram.resize(len + 1, 0);
    }
    ++stats.length_histogram[len];
    stats.sorted_counts.push_back(mip.global_count);
    stats.avg_support_fraction +=
        static_cast<double>(mip.global_count) / stats.num_records;
  }
  if (index.num_mips() > 0) {
    for (double& e : stats.mip_avg_extent) e /= index.num_mips();
    stats.avg_itemset_length =
        static_cast<double>(length_sum) / index.num_mips();
    stats.avg_support_fraction /= index.num_mips();
  }
  std::sort(stats.sorted_counts.begin(), stats.sorted_counts.end());
  return stats;
}

}  // namespace colarm
