#ifndef COLARM_MIP_SERIALIZE_H_
#define COLARM_MIP_SERIALIZE_H_

#include <string>

#include "mip/mip_index.h"

namespace colarm {

/// Persistence for the offline-built MIP-index, so the expensive
/// preprocess-once phase really runs once per dataset across process
/// lifetimes (the POQM contract taken seriously).
///
/// The file stores the build options, the dataset fingerprint, the MIP
/// array (itemsets, global counts, bounding boxes), and a trailing FNV-1a
/// checksum of the payload; the R-tree, IT-tree and statistics are rebuilt
/// deterministically on load, which keeps the format small and
/// version-stable. Loading verifies the fingerprint (so an index cannot
/// silently be attached to different data), validates every field against
/// the schema before using it, and rejects any truncation or bit flip via
/// the checksum — a corrupted file yields a Status, never undefined
/// behavior.
Status SaveMipIndex(const MipIndex& index, const std::string& path);

Result<MipIndex> LoadMipIndex(const Dataset& dataset, const std::string& path);

/// Cheap structural fingerprint of a dataset (schema shape + record count
/// + sampled cells). Exposed for tests.
uint64_t DatasetFingerprint(const Dataset& dataset);

/// Fingerprint of a *built* index: the dataset fingerprint mixed with the
/// build options and the full MIP content. The v4 session-cache
/// persistence (core/cache_persist.h) embeds it so a saved cache can only
/// ever warm an engine holding the identical index.
uint64_t IndexFingerprint(const MipIndex& index);

}  // namespace colarm

#endif  // COLARM_MIP_SERIALIZE_H_
