#ifndef COLARM_MIP_INDEX_STATS_H_
#define COLARM_MIP_INDEX_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace colarm {

class MipIndex;

/// Aggregates of one R-tree level (0 = root) used by the cost model's
/// node-access estimate (Theodoridis & Sellis style, Eq. 1 of the paper).
struct RTreeLevelStats {
  uint32_t num_nodes = 0;
  /// Average normalized MBR extent per attribute at this level.
  std::vector<double> avg_extent;
};

/// Precomputed statistics of a MIP-index, gathered once offline. Together
/// with the query parameters these make every plan-cost estimate a
/// constant-time formula evaluation.
struct IndexStats {
  uint32_t num_records = 0;
  uint32_t num_attributes = 0;
  uint32_t num_mips = 0;
  uint32_t primary_count = 0;
  uint32_t rtree_height = 0;
  uint32_t rtree_fanout = 16;  // node capacity (avg work per node visit)

  std::vector<RTreeLevelStats> levels;  // levels[0] = root

  /// Average normalized bbox extent per attribute over all MIPs (the
  /// paper's D^P_avg).
  std::vector<double> mip_avg_extent;

  double avg_itemset_length = 0.0;
  uint32_t max_itemset_length = 0;
  std::vector<uint32_t> length_histogram;  // index = itemset length

  /// MIP global support counts, ascending (for pass-fraction lookups).
  std::vector<uint32_t> sorted_counts;
  double avg_support_fraction = 0.0;

  /// Fraction of MIPs whose global count is >= `count`.
  double FractionWithCountAtLeast(uint32_t count) const;

  std::string ToString() const;
};

IndexStats ComputeIndexStats(const MipIndex& index);

}  // namespace colarm

#endif  // COLARM_MIP_INDEX_STATS_H_
