#ifndef COLARM_MIP_MIP_INDEX_H_
#define COLARM_MIP_MIP_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "bitmap/vertical_index.h"
#include "common/status.h"
#include "data/dataset.h"
#include "data/histogram.h"
#include "ittree/ittree.h"
#include "mining/charm.h"
#include "mip/index_stats.h"
#include "rtree/bulk_load.h"
#include "rtree/rtree.h"

namespace colarm {

/// One Multidimensional Itemset Partition: a prestored closed frequent
/// itemset together with its global support count and the *tight* bounding
/// box of its supporting records (per attribute: the [min, max] value over
/// records containing the itemset). Tight boxes are what make Lemma 4.5
/// sound: box ⊆ DQ implies every supporting record is in DQ, so the local
/// support equals the global one.
struct Mip {
  Itemset items;
  uint32_t global_count = 0;
  Rect bbox;
};

struct MipIndexOptions {
  /// Primary support threshold (fraction of |D|) used for the offline
  /// CHARM run; itemsets below it are not prestored (POQM contract).
  double primary_support = 0.6;
  RTree::Options rtree;
  /// STR packing vs. packing in itemset-lexicographic order.
  bool use_str_packing = true;

  /// Full-struct equality: every field shapes the built index, so cache
  /// compatibility (core/engine.cc) must compare all of them.
  friend bool operator==(const MipIndexOptions&,
                         const MipIndexOptions&) = default;
};

/// The paper's two-level MIP-index: a Supported R-tree over MIP bounding
/// boxes (with global support counts) plus a closed IT-tree over the items.
/// Built offline once; shared by every online plan.
class MipIndex {
 public:
  /// Mines CFIs at the primary threshold and assembles both index levels.
  /// The dataset must outlive the index. When `pool` can run concurrently,
  /// the CHARM prefix branches, their bounding-box derivations, and the
  /// R-tree bulk-load sort are parallelized; the resulting index is
  /// byte-identical to a sequential build.
  static Result<MipIndex> Build(const Dataset& dataset,
                                const MipIndexOptions& options,
                                ThreadPool* pool = nullptr);

  const Dataset& dataset() const { return *dataset_; }
  const MipIndexOptions& options() const { return options_; }
  uint32_t primary_count() const { return primary_count_; }

  uint32_t num_mips() const { return static_cast<uint32_t>(mips_.size()); }
  const Mip& mip(uint32_t id) const { return mips_[id]; }
  const std::vector<Mip>& mips() const { return mips_; }

  const RTree& rtree() const { return *rtree_; }
  const ITTree& ittree() const { return ittree_; }
  const IndexStats& stats() const { return stats_; }
  const DatasetHistograms& histograms() const { return histograms_; }

  /// The vertical bitmap form of the dataset, built (or cache-loaded)
  /// alongside the index; the kBitmap execution backend runs on it.
  const VerticalIndex& vertical() const { return vertical_; }

  /// Global support count of an arbitrary itemset via the closed-superset
  /// property; 0 if the itemset is below the primary threshold.
  uint32_t GlobalCount(std::span<const ItemId> items) const {
    return ittree_.MaxSupersetCount(items);
  }

 private:
  friend Result<MipIndex> LoadMipIndex(const Dataset& dataset,
                                       const std::string& path);

  MipIndex() = default;

  /// Assembles both index levels and the statistics from a ready MIP
  /// array (shared by Build and the deserializer). A non-empty `vertical`
  /// (the cache loader's validated bitmaps) is adopted as-is; otherwise
  /// the vertical index is rebuilt from the dataset on `pool`.
  static MipIndex Assemble(const Dataset& dataset,
                           const MipIndexOptions& options,
                           uint32_t primary_count, std::vector<Mip> mips,
                           ThreadPool* pool = nullptr,
                           VerticalIndex vertical = VerticalIndex());

  const Dataset* dataset_ = nullptr;
  MipIndexOptions options_;
  uint32_t primary_count_ = 0;
  std::vector<Mip> mips_;
  std::unique_ptr<RTree> rtree_;
  ITTree ittree_;
  IndexStats stats_;
  DatasetHistograms histograms_;
  VerticalIndex vertical_;
};

/// Computes the tight bounding box of a tidset (exposed for tests).
Rect TightBoundingBox(const Dataset& dataset, std::span<const ItemId> items,
                      std::span<const Tid> tids);

}  // namespace colarm

#endif  // COLARM_MIP_MIP_INDEX_H_
