#include "mip/mip_index.h"

#include <algorithm>
#include <limits>

#include "common/string_util.h"

namespace colarm {

Rect TightBoundingBox(const Dataset& dataset, std::span<const ItemId> items,
                      std::span<const Tid> tids) {
  const Schema& schema = dataset.schema();
  const uint32_t n = schema.num_attributes();
  Rect box = Rect::MakeEmpty(n);
  // Attributes fixed by the itemset contribute a degenerate interval.
  std::vector<bool> fixed(n, false);
  for (ItemId item : items) {
    AttrId a = schema.AttrOfItem(item);
    ValueId v = schema.ValueOfItem(item);
    box.SetInterval(a, v, v);
    fixed[a] = true;
  }
  // Remaining attributes: min/max over the supporting records, scanned
  // column-wise with early exit once the full domain is covered.
  for (AttrId a = 0; a < n; ++a) {
    if (fixed[a]) continue;
    const std::vector<ValueId>& column = dataset.Column(a);
    const ValueId domain_max =
        static_cast<ValueId>(schema.attribute(a).domain_size() - 1);
    ValueId lo = std::numeric_limits<ValueId>::max();
    ValueId hi = 0;
    for (Tid t : tids) {
      ValueId v = column[t];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      if (lo == 0 && hi == domain_max) break;
    }
    if (tids.empty()) {
      lo = 1;
      hi = 0;  // keep the empty-interval convention
    }
    box.SetInterval(a, lo, hi);
  }
  return box;
}

Result<MipIndex> MipIndex::Build(const Dataset& dataset,
                                 const MipIndexOptions& options,
                                 ThreadPool* pool) {
  if (dataset.num_records() == 0) {
    return Status::InvalidArgument("cannot index an empty dataset");
  }
  if (options.primary_support <= 0.0 || options.primary_support > 1.0) {
    return Status::InvalidArgument(
        StrFormat("primary_support %.3f out of (0, 1]",
                  options.primary_support));
  }

  const uint32_t primary_count =
      MinCount(options.primary_support, dataset.num_records());

  // Offline CHARM run at the primary threshold; each emitted CFI yields a
  // MIP (itemset + count + tight bbox). Tidsets are dropped immediately.
  std::vector<Mip> mips;
  VerticalView vertical(dataset);
  // At the primary threshold every kept tidset has >= primary_count tids;
  // when that clears the bitmap density bar (one tid per 64-bit word), the
  // hybrid miner's near-root intersections all run word-parallel, so it
  // wins outright. Below the bar the list miner avoids paying bitmap
  // conversions for tidsets that would immediately sparsify.
  const bool use_hybrid =
      static_cast<uint64_t>(primary_count) * Bitmap::kBitsPerWord >=
      static_cast<uint64_t>(dataset.num_records());
  if (IsParallel(pool)) {
    // Prefix branches mine concurrently; the tight bounding box — the
    // dominant per-CFI cost — is derived on the worker inside the map
    // callback, while emission (and thus MIP order) stays sequential.
    const CharmMapFn map = [&](const Itemset& items, const Tidset& tids) {
      return std::any(TightBoundingBox(dataset, items, tids));
    };
    const CharmEmitFn emit = [&](const Itemset& items, uint32_t count,
                                 std::any payload) {
      Mip mip;
      mip.items = items;
      mip.global_count = count;
      mip.bbox = std::move(*std::any_cast<Rect>(&payload));
      mips.push_back(std::move(mip));
    };
    if (use_hybrid) {
      MineCharmHybridParallel(vertical, dataset.num_records(), primary_count,
                              pool, map, emit);
    } else {
      MineCharmParallel(vertical, primary_count, pool, map, emit);
    }
  } else {
    const ClosedItemsetSink sink = [&](const Itemset& items,
                                       const Tidset& tids) {
      Mip mip;
      mip.items = items;
      mip.global_count = static_cast<uint32_t>(tids.size());
      mip.bbox = TightBoundingBox(dataset, items, tids);
      mips.push_back(std::move(mip));
    };
    if (use_hybrid) {
      MineCharmHybrid(vertical, dataset.num_records(), primary_count, sink);
    } else {
      MineCharm(vertical, primary_count, sink);
    }
  }
  return Assemble(dataset, options, primary_count, std::move(mips), pool);
}

MipIndex MipIndex::Assemble(const Dataset& dataset,
                            const MipIndexOptions& options,
                            uint32_t primary_count, std::vector<Mip> mips,
                            ThreadPool* pool, VerticalIndex vertical) {
  MipIndex index;
  index.dataset_ = &dataset;
  index.options_ = options;
  index.primary_count_ = primary_count;
  index.mips_ = std::move(mips);
  index.vertical_ = vertical.empty() ? VerticalIndex::Build(dataset, pool)
                                     : std::move(vertical);

  // Deterministic id order: lexicographic by itemset. This also clusters
  // similar bounding boxes for the packed R-tree build.
  std::sort(index.mips_.begin(), index.mips_.end(),
            [](const Mip& a, const Mip& b) { return a.items < b.items; });

  // Level 2: the closed IT-tree.
  for (const Mip& mip : index.mips_) {
    index.ittree_.Insert(mip.items, mip.global_count);
  }

  // Level 1: the Supported R-tree over bounding boxes.
  std::vector<RTreeEntry> entries;
  entries.reserve(index.mips_.size());
  for (uint32_t id = 0; id < index.mips_.size(); ++id) {
    entries.push_back(
        {index.mips_[id].bbox, id, index.mips_[id].global_count});
  }
  const uint32_t dims = dataset.num_attributes();
  index.rtree_ = std::make_unique<RTree>(
      options.use_str_packing
          ? BulkLoadSTR(dims, std::move(entries), options.rtree, pool)
          : BulkLoadPacked(dims, std::move(entries), options.rtree));

  index.histograms_ = DatasetHistograms(dataset);
  index.stats_ = ComputeIndexStats(index);
  return index;
}

}  // namespace colarm
