#include "mining/tidset.h"

#include <algorithm>

#include "bitmap/kernels.h"

namespace colarm {

namespace {

// Size-skew ratio beyond which the merge loop loses to galloping probes:
// the merge walks every element of the big side, O(|a|+|b|), while
// galloping pays O(|a| log(|b|/|a|)) — a win once the big side dwarfs the
// small one by more than the probe overhead.
constexpr size_t kGallopSkewRatio = 32;

// First index i >= begin with b[i] >= key, found by exponential probing
// from `begin` followed by a lower-bound search inside the bracketed
// window. Cheap when consecutive keys land near each other in b. The
// window search goes through the dispatched SIMD kernel: binary steps down
// to a small window, then an 8/16-lane compare scan — same index on every
// ISA level (the lower bound is unique), only the probe cost changes.
size_t GallopLowerBound(std::span<const Tid> b, size_t begin, Tid key) {
  if (begin >= b.size() || b[begin] >= key) return begin;
  size_t bound = 1;
  while (begin + bound < b.size() && b[begin + bound] < key) bound <<= 1;
  // b[begin + bound/2] < key, so the answer lies in (begin + bound/2,
  // begin + bound].
  const size_t lo = begin + (bound >> 1) + 1;
  const size_t hi = std::min(begin + bound + 1, b.size());
  return lo + ActiveKernels().lower_bound(b.data() + lo, hi - lo, key);
}

uint32_t GallopIntersectSize(std::span<const Tid> small,
                             std::span<const Tid> big) {
  uint32_t count = 0;
  size_t j = 0;
  for (Tid key : small) {
    j = GallopLowerBound(big, j, key);
    if (j == big.size()) break;
    if (big[j] == key) {
      ++count;
      ++j;
    }
  }
  return count;
}

}  // namespace

Tidset TidsetIntersect(std::span<const Tid> a, std::span<const Tid> b) {
  Tidset out;
  TidsetIntersectInto(a, b, &out);
  return out;
}

void TidsetIntersectInto(std::span<const Tid> a, std::span<const Tid> b,
                         Tidset* out) {
  out->clear();
  out->reserve(std::min(a.size(), b.size()));
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      out->push_back(a[i]);
      ++i;
      ++j;
    }
  }
}

uint32_t TidsetIntersectSize(std::span<const Tid> a, std::span<const Tid> b) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.size() * kGallopSkewRatio < b.size()) {
    return GallopIntersectSize(a, b);
  }
  uint32_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

bool TidsetIsSubset(std::span<const Tid> a, std::span<const Tid> b) {
  if (a.size() > b.size()) return false;
  if (a.size() * kGallopSkewRatio < b.size()) {
    size_t j = 0;
    for (Tid key : a) {
      j = GallopLowerBound(b, j, key);
      if (j == b.size() || b[j] != key) return false;
      ++j;
    }
    return true;
  }
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

uint64_t TidsetSum(std::span<const Tid> tids) {
  uint64_t sum = 0;
  for (Tid t : tids) sum += t;
  return sum;
}

}  // namespace colarm
