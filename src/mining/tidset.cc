#include "mining/tidset.h"

#include <algorithm>

namespace colarm {

Tidset TidsetIntersect(std::span<const Tid> a, std::span<const Tid> b) {
  Tidset out;
  TidsetIntersectInto(a, b, &out);
  return out;
}

void TidsetIntersectInto(std::span<const Tid> a, std::span<const Tid> b,
                         Tidset* out) {
  out->clear();
  out->reserve(std::min(a.size(), b.size()));
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      out->push_back(a[i]);
      ++i;
      ++j;
    }
  }
}

uint32_t TidsetIntersectSize(std::span<const Tid> a, std::span<const Tid> b) {
  uint32_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

bool TidsetIsSubset(std::span<const Tid> a, std::span<const Tid> b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

uint64_t TidsetSum(std::span<const Tid> tids) {
  uint64_t sum = 0;
  for (Tid t : tids) sum += t;
  return sum;
}

}  // namespace colarm
