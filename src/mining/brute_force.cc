#include "mining/brute_force.h"

namespace colarm {

namespace {

void Enumerate(const Dataset& dataset, uint32_t min_count, ItemId next_item,
               Itemset* current, Tidset* tids,
               std::vector<FrequentItemset>* out) {
  const Schema& schema = dataset.schema();
  for (ItemId item = next_item; item < schema.num_items(); ++item) {
    Tidset extended;
    for (Tid t : *tids) {
      if (dataset.ContainsItem(t, item)) extended.push_back(t);
    }
    if (extended.size() < min_count) continue;
    current->push_back(item);
    out->push_back({*current, static_cast<uint32_t>(extended.size())});
    Enumerate(dataset, min_count, item + 1, current, &extended, out);
    current->pop_back();
  }
}

}  // namespace

std::vector<FrequentItemset> MineFrequentBruteForce(const Dataset& dataset,
                                                    uint32_t min_count) {
  Tidset all(dataset.num_records());
  for (Tid t = 0; t < dataset.num_records(); ++t) all[t] = t;
  Itemset current;
  std::vector<FrequentItemset> out;
  Enumerate(dataset, min_count, 0, &current, &all, &out);
  SortItemsets(&out);
  return out;
}

std::vector<ClosedItemset> MineClosedBruteForce(const Dataset& dataset,
                                                uint32_t min_count) {
  std::vector<FrequentItemset> frequent =
      MineFrequentBruteForce(dataset, min_count);
  std::vector<ClosedItemset> closed;
  for (const FrequentItemset& f : frequent) {
    bool is_closed = true;
    for (const FrequentItemset& g : frequent) {
      if (g.count == f.count && g.items.size() > f.items.size() &&
          ItemsetIsSubset(f.items, g.items)) {
        is_closed = false;
        break;
      }
    }
    if (!is_closed) continue;
    Tidset tids;
    for (Tid t = 0; t < dataset.num_records(); ++t) {
      if (dataset.ContainsAll(t, f.items)) tids.push_back(t);
    }
    closed.push_back({f.items, std::move(tids)});
  }
  SortClosedItemsets(&closed);
  return closed;
}

uint32_t CountSupport(const Dataset& dataset, std::span<const ItemId> items) {
  uint32_t count = 0;
  for (Tid t = 0; t < dataset.num_records(); ++t) {
    if (dataset.ContainsAll(t, items)) ++count;
  }
  return count;
}

}  // namespace colarm
