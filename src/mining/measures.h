#ifndef COLARM_MINING_MEASURES_H_
#define COLARM_MINING_MEASURES_H_

#include <string>

#include "data/dataset.h"
#include "mining/rule.h"

namespace colarm {

/// Interestingness measures beyond support/confidence. The paper (Section
/// 1.3) stresses *null-invariant* measures (Wu, Chen & Han, PKDD'07):
/// measures unaffected by the number of records containing neither side of
/// the rule, which is exactly what varies as the focal subset changes.
/// All functions take the three local counts a rule carries plus the
/// consequent's local count.
struct RuleCounts {
  uint32_t both = 0;        // |DQ_{X ∪ Y}|
  uint32_t antecedent = 0;  // |DQ_X|
  uint32_t consequent = 0;  // |DQ_Y|
  uint32_t base = 0;        // |DQ|
};

/// P(Y|X) / P(Y): > 1 means positive correlation. NOT null-invariant
/// (provided for completeness / comparison).
double Lift(const RuleCounts& counts);

/// supp(XY) / sqrt(supp(X) supp(Y)) — null-invariant; the geometric mean
/// of the two directional confidences.
double Cosine(const RuleCounts& counts);

/// (P(Y|X) + P(X|Y)) / 2 — null-invariant; the arithmetic mean of the two
/// directional confidences.
double Kulczynski(const RuleCounts& counts);

/// supp(XY) / max(supp(X), supp(Y)) — null-invariant; equals the smaller
/// directional confidence.
double AllConfidence(const RuleCounts& counts);

/// supp(XY) / min(supp(X), supp(Y)) — null-invariant; equals the larger
/// directional confidence.
double MaxConfidence(const RuleCounts& counts);

/// Piatetsky-Shapiro leverage supp(XY) - supp(X)supp(Y): co-occurrence
/// beyond independence. NOT null-invariant.
double Leverage(const RuleCounts& counts);

/// The imbalance ratio |supp(X) - supp(Y)| / (supp(X)+supp(Y)-supp(XY)) —
/// not an interestingness measure itself, but Wu et al.'s companion
/// statistic: high Kulczynski with high imbalance flags "one-sided" rules.
double ImbalanceRatio(const RuleCounts& counts);

/// All measures of one rule, ready for display.
struct RuleMeasures {
  double lift = 0.0;
  double cosine = 0.0;
  double kulczynski = 0.0;
  double all_confidence = 0.0;
  double max_confidence = 0.0;
  double leverage = 0.0;
  double imbalance = 0.0;

  std::string ToString() const;
};

RuleMeasures ComputeMeasures(const RuleCounts& counts);

/// Derives the counts for `rule` by scanning the focal subset `tids` of
/// `dataset` for the consequent's local support (the rule already carries
/// the other three counts).
RuleCounts CountsForRule(const Dataset& dataset, std::span<const Tid> tids,
                         const Rule& rule);

}  // namespace colarm

#endif  // COLARM_MINING_MEASURES_H_
