#include "mining/rule_generator.h"

namespace colarm {

void GenerateRulesForItemset(const LocalSubsetCounter& counter, double minconf,
                             const RuleGenOptions& options, RuleSet* out,
                             RuleGenStats* stats) {
  const Itemset& itemset = counter.itemset();
  const size_t len = itemset.size();
  if (len < 2) return;  // a rule needs a non-empty antecedent and consequent
  if (len > options.max_itemset_length || len > 31) {
    ++stats->itemsets_skipped;
    return;
  }
  const uint32_t itemset_count = counter.CountFull();
  const uint32_t base = counter.base_size();
  const uint32_t full_mask = (1u << len) - 1;

  Itemset antecedent;
  Itemset consequent;
  antecedent.reserve(len);
  consequent.reserve(len);
  for (uint32_t mask = 1; mask < full_mask; ++mask) {
    ++stats->rules_considered;
    antecedent.clear();
    consequent.clear();
    for (size_t i = 0; i < len; ++i) {
      if (mask & (1u << i)) {
        antecedent.push_back(itemset[i]);
      } else {
        consequent.push_back(itemset[i]);
      }
    }
    const uint32_t antecedent_count = counter.CountOf(antecedent);
    if (antecedent_count == 0) continue;
    const double confidence =
        static_cast<double>(itemset_count) / antecedent_count;
    if (confidence + 1e-12 < minconf) continue;
    out->rules.push_back(Rule{antecedent, consequent, itemset_count,
                              antecedent_count, base});
    ++stats->rules_emitted;
  }
}

}  // namespace colarm
