#ifndef COLARM_MINING_CONSTRAINTS_H_
#define COLARM_MINING_CONSTRAINTS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/schema.h"
#include "mining/itemset.h"
#include "mining/measures.h"
#include "mining/rule.h"

namespace colarm {

/// Item constraints and interestingness thresholds attached to a localized
/// query (the interactive constrained-mining loop of Goethals & Van den
/// Bussche). Semantics over a rule X => Y, whose itemset is always the full
/// mined itemset M = X ∪ Y:
///
///   - must_contain:    M ⊇ must_contain;
///   - must_exclude:    M ∩ must_exclude = ∅;
///   - antecedent_only: items of these attributes may appear in X only;
///   - min_lift / min_cosine / min_kulczynski: measure floors (0 = off),
///     compared with the same +1e-12 slack minconfidence uses;
///   - min_antecedent_supp: local-support floor on the antecedent alone
///     (HAVING minantsupp): |DQ_X| >= MinCount(floor, |DQ|). An integer
///     count comparison, so pushdown and post-filter agree bit-for-bit.
///
/// An empty RuleConstraints leaves execution byte-identical to the
/// unconstrained engine: every pushdown site is gated on Empty().
struct RuleConstraints {
  Itemset must_contain;                 // sorted, duplicate-free item ids
  Itemset must_exclude;                 // sorted, duplicate-free item ids
  std::vector<AttrId> antecedent_only;  // sorted, duplicate-free attr ids
  double min_lift = 0.0;
  double min_cosine = 0.0;
  double min_kulczynski = 0.0;
  double min_antecedent_supp = 0.0;  // fraction of |DQ|, in [0, 1]

  bool HasItemConstraints() const {
    return !must_contain.empty() || !must_exclude.empty() ||
           !antecedent_only.empty();
  }
  bool HasMeasures() const {
    return min_lift > 0.0 || min_cosine > 0.0 || min_kulczynski > 0.0 ||
           min_antecedent_supp > 0.0;
  }
  bool Empty() const { return !HasItemConstraints() && !HasMeasures(); }

  /// Rejects out-of-range/duplicate/unsorted ids and non-finite or negative
  /// thresholds. Contradictory-but-well-formed constraints (e.g. an item in
  /// both must_contain and must_exclude) are VALID: they denote the empty
  /// rule set, which execution short-circuits.
  Status Validate(const Schema& schema) const;

  /// Canonical byte string: equal constraints <=> equal keys, and "" iff
  /// Empty(). Used by the session cache and batch duplicate detection.
  std::string CacheKey() const;

  /// Query-text clause suffix (" AND CONTAIN {...} ..."); "" iff Empty().
  std::string ToString(const Schema& schema) const;

  bool operator==(const RuleConstraints& other) const = default;
};

/// True iff a mined itemset can yield any rule under the item constraints:
/// items ⊇ must_contain and items ∩ must_exclude = ∅. Exact (not just a
/// pruning bound) because a rule's itemset is the full mined itemset.
bool ItemsetSatisfiesConstraints(std::span<const ItemId> items,
                                 const RuleConstraints& constraints);

/// True iff the active measure floors pass, with the minconfidence slack.
bool PassesMeasureFloors(const RuleCounts& counts,
                         const RuleConstraints& constraints);

/// Post-filter reference semantics: applies the full constraint set to
/// rules mined WITHOUT constraints, deriving each consequent count by
/// scanning the focal subset `tids` (the same integer the pushdown gets
/// from its subset counter, so the measure doubles are bit-identical).
/// The differential constraint-equivalence invariant checks
/// pushdown == FilterRules(unconstrained).
RuleSet FilterRules(const Dataset& dataset, std::span<const Tid> tids,
                    const RuleSet& unconstrained,
                    const RuleConstraints& constraints);

}  // namespace colarm

#endif  // COLARM_MINING_CONSTRAINTS_H_
