#include "mining/fpgrowth.h"

#include <algorithm>
#include <map>

namespace colarm {

namespace {

// One FP-tree: a counted prefix tree whose transactions are inserted in a
// fixed frequency-descending item order, plus a header listing the nodes of
// every item.
class FpTree {
 public:
  FpTree() { nodes_.push_back({kInvalidItem, 0, 0, {}}); }

  // `items` must be sorted in this tree's insertion order already.
  void Insert(std::span<const ItemId> items, uint32_t count) {
    uint32_t node = 0;  // root
    for (ItemId item : items) {
      uint32_t child = FindChild(node, item);
      if (child == 0) {
        child = static_cast<uint32_t>(nodes_.size());
        nodes_.push_back({item, 0, node, {}});
        nodes_[node].children.push_back(child);
        header_[item].push_back(child);
      }
      nodes_[child].count += count;
      node = child;
    }
  }

  const std::map<ItemId, std::vector<uint32_t>>& header() const {
    return header_;
  }

  uint32_t ItemSupport(ItemId item) const {
    uint32_t total = 0;
    auto it = header_.find(item);
    if (it != header_.end()) {
      for (uint32_t node : it->second) total += nodes_[node].count;
    }
    return total;
  }

  // Prefix path of `node` (excluding the node itself), root-most first.
  std::vector<ItemId> PathTo(uint32_t node) const {
    std::vector<ItemId> path;
    uint32_t cur = nodes_[node].parent;
    while (cur != 0) {
      path.push_back(nodes_[cur].item);
      cur = nodes_[cur].parent;
    }
    std::reverse(path.begin(), path.end());
    return path;
  }

  uint32_t NodeCount(uint32_t node) const { return nodes_[node].count; }

 private:
  struct Node {
    ItemId item;
    uint32_t count;
    uint32_t parent;
    std::vector<uint32_t> children;
  };

  uint32_t FindChild(uint32_t node, ItemId item) const {
    for (uint32_t child : nodes_[node].children) {
      if (nodes_[child].item == item) return child;
    }
    return 0;
  }

  std::vector<Node> nodes_;
  std::map<ItemId, std::vector<uint32_t>> header_;
};

// A weighted transaction of a conditional pattern base.
struct WeightedPattern {
  std::vector<ItemId> items;
  uint32_t count;
};

// Builds an FP-tree over weighted patterns, filtering and ordering items by
// their (weighted) frequency, then mines it recursively.
void MinePatterns(const std::vector<WeightedPattern>& patterns,
                  uint32_t min_count, const Itemset& suffix,
                  std::vector<FrequentItemset>* out) {
  // Weighted item counts for this projection.
  std::map<ItemId, uint32_t> counts;
  for (const WeightedPattern& p : patterns) {
    for (ItemId item : p.items) counts[item] += p.count;
  }
  std::vector<std::pair<ItemId, uint32_t>> frequent;
  for (const auto& [item, count] : counts) {
    if (count >= min_count) frequent.emplace_back(item, count);
  }
  if (frequent.empty()) return;

  // Frequency-descending rank (ties by item id for determinism).
  std::sort(frequent.begin(), frequent.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  std::map<ItemId, uint32_t> rank;
  for (uint32_t r = 0; r < frequent.size(); ++r) {
    rank.emplace(frequent[r].first, r);
  }

  FpTree tree;
  std::vector<ItemId> filtered;
  for (const WeightedPattern& p : patterns) {
    filtered.clear();
    for (ItemId item : p.items) {
      if (rank.contains(item)) filtered.push_back(item);
    }
    std::sort(filtered.begin(), filtered.end(),
              [&rank](ItemId a, ItemId b) { return rank.at(a) < rank.at(b); });
    if (!filtered.empty()) tree.Insert(filtered, p.count);
  }

  for (const auto& [item, nodes] : tree.header()) {
    uint32_t support = tree.ItemSupport(item);
    Itemset extended = ItemsetUnion(suffix, std::span<const ItemId>(&item, 1));
    out->push_back({extended, support});

    // Conditional pattern base for `item`.
    std::vector<WeightedPattern> conditional;
    conditional.reserve(nodes.size());
    for (uint32_t node : nodes) {
      std::vector<ItemId> path = tree.PathTo(node);
      if (!path.empty()) {
        conditional.push_back({std::move(path), tree.NodeCount(node)});
      }
    }
    if (!conditional.empty()) {
      MinePatterns(conditional, min_count, extended, out);
    }
  }
}

}  // namespace

std::vector<FrequentItemset> MineFpGrowth(const Dataset& dataset,
                                          uint32_t min_count) {
  std::vector<Tid> all(dataset.num_records());
  for (Tid t = 0; t < dataset.num_records(); ++t) all[t] = t;
  return MineFpGrowth(dataset, all, min_count);
}

std::vector<FrequentItemset> MineFpGrowth(const Dataset& dataset,
                                          std::span<const Tid> subset,
                                          uint32_t min_count) {
  std::vector<WeightedPattern> transactions;
  transactions.reserve(subset.size());
  for (Tid t : subset) {
    transactions.push_back({dataset.RecordItems(t), 1});
  }
  std::vector<FrequentItemset> out;
  MinePatterns(transactions, min_count, {}, &out);
  SortItemsets(&out);
  return out;
}

}  // namespace colarm
