#ifndef COLARM_MINING_RULE_GENERATOR_H_
#define COLARM_MINING_RULE_GENERATOR_H_

#include <cstdint>

#include "mining/constraints.h"
#include "mining/local_counter.h"
#include "mining/rule.h"

namespace colarm {

/// Limits and bookkeeping for rule enumeration.
struct RuleGenOptions {
  /// Antecedent enumeration is 2^L per itemset; itemsets longer than this
  /// are skipped (and counted in RuleGenStats::itemsets_skipped) rather
  /// than blowing up a query.
  uint32_t max_itemset_length = 16;
};

struct RuleGenStats {
  uint64_t rules_considered = 0;
  uint64_t rules_emitted = 0;
  uint64_t itemsets_skipped = 0;
};

/// Per-itemset constraint pushdown for the rule enumeration: antecedent
/// partitions that leave a pinned item in the consequent are skipped before
/// they are counted (the ANTECEDENT-ATTRIBUTES prune of the 2^L lattice),
/// and measure floors reject rules before materialization. A
/// default-constructed filter leaves enumeration byte-identical.
struct RuleGenFilter {
  /// Bits (by itemset position) of items that must stay in the antecedent.
  uint32_t pinned_mask = 0;
  double min_lift = 0.0;
  double min_cosine = 0.0;
  double min_kulczynski = 0.0;
  /// HAVING minantsupp: antecedent partitions below
  /// MinCount(min_antecedent_supp, base) are pruned before the
  /// rules_considered tick. Deliberately not part of HasMeasures(): the
  /// floor needs only the antecedent count, never the consequent's.
  double min_antecedent_supp = 0.0;

  bool HasMeasures() const {
    return min_lift > 0.0 || min_cosine > 0.0 || min_kulczynski > 0.0;
  }
};

/// Emits into `out` every rule X => Y with X ∪ Y = counter.itemset(),
/// X, Y non-empty, and local confidence >= minconf. The itemset itself is
/// assumed to already satisfy the local minsupport check (the ELIMINATE /
/// SUPPORTED-VERIFY operators guarantee that).
///
/// Templated over the subset counter so both execution backends share the
/// enumeration: LocalSubsetCounter (row scans) and BitmapSubsetCounter
/// (word-parallel) expose the same CountOf/CountFull/itemset/base_size
/// contract and identical counts, so the emitted rules are byte-identical.
template <typename Counter>
void GenerateRulesForItemset(const Counter& counter, double minconf,
                             const RuleGenOptions& options,
                             const RuleGenFilter& filter, RuleSet* out,
                             RuleGenStats* stats) {
  const Itemset& itemset = counter.itemset();
  const size_t len = itemset.size();
  if (len < 2) return;  // a rule needs a non-empty antecedent and consequent
  if (len > options.max_itemset_length || len > 31) {
    ++stats->itemsets_skipped;
    return;
  }
  const uint32_t itemset_count = counter.CountFull();
  const uint32_t base = counter.base_size();
  const uint32_t full_mask = (1u << len) - 1;
  const bool measures = filter.HasMeasures();
  const uint32_t min_antecedent_count =
      filter.min_antecedent_supp > 0.0
          ? MinCount(filter.min_antecedent_supp, base)
          : 0;

  Itemset antecedent;
  Itemset consequent;
  antecedent.reserve(len);
  consequent.reserve(len);
  for (uint32_t mask = 1; mask < full_mask; ++mask) {
    // Pinned items belong in the antecedent: partitions that put one in the
    // consequent are pruned before they cost a count or a counter tick.
    if ((mask & filter.pinned_mask) != filter.pinned_mask) continue;
    antecedent.clear();
    consequent.clear();
    for (size_t i = 0; i < len; ++i) {
      if (mask & (1u << i)) {
        antecedent.push_back(itemset[i]);
      } else {
        consequent.push_back(itemset[i]);
      }
    }
    const uint32_t antecedent_count = counter.CountOf(antecedent);
    // HAVING minantsupp prunes the partition before it counts as
    // considered — pushdown strictly shrinks the enumeration the counters
    // report, and exactly matches the post-filter's integer comparison.
    if (antecedent_count < min_antecedent_count) continue;
    ++stats->rules_considered;
    if (antecedent_count == 0) continue;
    const double confidence =
        static_cast<double>(itemset_count) / antecedent_count;
    if (confidence + 1e-12 < minconf) continue;
    if (measures) {
      // Same integer the post-filter derives by scanning the focal subset,
      // so the measure doubles (and thus keep/drop) are bit-identical.
      const RuleCounts counts{itemset_count, antecedent_count,
                              counter.CountOf(consequent), base};
      if ((filter.min_lift > 0.0 &&
           Lift(counts) + 1e-12 < filter.min_lift) ||
          (filter.min_cosine > 0.0 &&
           Cosine(counts) + 1e-12 < filter.min_cosine) ||
          (filter.min_kulczynski > 0.0 &&
           Kulczynski(counts) + 1e-12 < filter.min_kulczynski)) {
        continue;
      }
    }
    out->rules.push_back(Rule{antecedent, consequent, itemset_count,
                              antecedent_count, base});
    ++stats->rules_emitted;
  }
}

/// Unconstrained overload (the pre-constraint signature): kept so direct
/// callers and tests enumerate without building a filter.
template <typename Counter>
void GenerateRulesForItemset(const Counter& counter, double minconf,
                             const RuleGenOptions& options, RuleSet* out,
                             RuleGenStats* stats) {
  GenerateRulesForItemset(counter, minconf, options, RuleGenFilter{}, out,
                          stats);
}

}  // namespace colarm

#endif  // COLARM_MINING_RULE_GENERATOR_H_
