#ifndef COLARM_MINING_RULE_GENERATOR_H_
#define COLARM_MINING_RULE_GENERATOR_H_

#include <cstdint>

#include "mining/local_counter.h"
#include "mining/rule.h"

namespace colarm {

/// Limits and bookkeeping for rule enumeration.
struct RuleGenOptions {
  /// Antecedent enumeration is 2^L per itemset; itemsets longer than this
  /// are skipped (and counted in RuleGenStats::itemsets_skipped) rather
  /// than blowing up a query.
  uint32_t max_itemset_length = 16;
};

struct RuleGenStats {
  uint64_t rules_considered = 0;
  uint64_t rules_emitted = 0;
  uint64_t itemsets_skipped = 0;
};

/// Emits into `out` every rule X => Y with X ∪ Y = counter.itemset(),
/// X, Y non-empty, and local confidence >= minconf. The itemset itself is
/// assumed to already satisfy the local minsupport check (the ELIMINATE /
/// SUPPORTED-VERIFY operators guarantee that).
void GenerateRulesForItemset(const LocalSubsetCounter& counter, double minconf,
                             const RuleGenOptions& options, RuleSet* out,
                             RuleGenStats* stats);

}  // namespace colarm

#endif  // COLARM_MINING_RULE_GENERATOR_H_
