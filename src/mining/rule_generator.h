#ifndef COLARM_MINING_RULE_GENERATOR_H_
#define COLARM_MINING_RULE_GENERATOR_H_

#include <cstdint>

#include "mining/local_counter.h"
#include "mining/rule.h"

namespace colarm {

/// Limits and bookkeeping for rule enumeration.
struct RuleGenOptions {
  /// Antecedent enumeration is 2^L per itemset; itemsets longer than this
  /// are skipped (and counted in RuleGenStats::itemsets_skipped) rather
  /// than blowing up a query.
  uint32_t max_itemset_length = 16;
};

struct RuleGenStats {
  uint64_t rules_considered = 0;
  uint64_t rules_emitted = 0;
  uint64_t itemsets_skipped = 0;
};

/// Emits into `out` every rule X => Y with X ∪ Y = counter.itemset(),
/// X, Y non-empty, and local confidence >= minconf. The itemset itself is
/// assumed to already satisfy the local minsupport check (the ELIMINATE /
/// SUPPORTED-VERIFY operators guarantee that).
///
/// Templated over the subset counter so both execution backends share the
/// enumeration: LocalSubsetCounter (row scans) and BitmapSubsetCounter
/// (word-parallel) expose the same CountOf/CountFull/itemset/base_size
/// contract and identical counts, so the emitted rules are byte-identical.
template <typename Counter>
void GenerateRulesForItemset(const Counter& counter, double minconf,
                             const RuleGenOptions& options, RuleSet* out,
                             RuleGenStats* stats) {
  const Itemset& itemset = counter.itemset();
  const size_t len = itemset.size();
  if (len < 2) return;  // a rule needs a non-empty antecedent and consequent
  if (len > options.max_itemset_length || len > 31) {
    ++stats->itemsets_skipped;
    return;
  }
  const uint32_t itemset_count = counter.CountFull();
  const uint32_t base = counter.base_size();
  const uint32_t full_mask = (1u << len) - 1;

  Itemset antecedent;
  Itemset consequent;
  antecedent.reserve(len);
  consequent.reserve(len);
  for (uint32_t mask = 1; mask < full_mask; ++mask) {
    ++stats->rules_considered;
    antecedent.clear();
    consequent.clear();
    for (size_t i = 0; i < len; ++i) {
      if (mask & (1u << i)) {
        antecedent.push_back(itemset[i]);
      } else {
        consequent.push_back(itemset[i]);
      }
    }
    const uint32_t antecedent_count = counter.CountOf(antecedent);
    if (antecedent_count == 0) continue;
    const double confidence =
        static_cast<double>(itemset_count) / antecedent_count;
    if (confidence + 1e-12 < minconf) continue;
    out->rules.push_back(Rule{antecedent, consequent, itemset_count,
                              antecedent_count, base});
    ++stats->rules_emitted;
  }
}

}  // namespace colarm

#endif  // COLARM_MINING_RULE_GENERATOR_H_
