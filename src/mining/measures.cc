#include "mining/measures.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "data/dataset.h"

namespace colarm {

namespace {

double Frac(uint32_t count, uint32_t base) {
  return base == 0 ? 0.0 : static_cast<double>(count) / base;
}

}  // namespace

double Lift(const RuleCounts& counts) {
  double px = Frac(counts.antecedent, counts.base);
  double py = Frac(counts.consequent, counts.base);
  double pxy = Frac(counts.both, counts.base);
  if (px <= 0.0 || py <= 0.0) return 0.0;
  return pxy / (px * py);
}

double Cosine(const RuleCounts& counts) {
  double denom = std::sqrt(static_cast<double>(counts.antecedent) *
                           counts.consequent);
  return denom <= 0.0 ? 0.0 : counts.both / denom;
}

double Kulczynski(const RuleCounts& counts) {
  if (counts.antecedent == 0 || counts.consequent == 0) return 0.0;
  double conf_xy = static_cast<double>(counts.both) / counts.antecedent;
  double conf_yx = static_cast<double>(counts.both) / counts.consequent;
  return (conf_xy + conf_yx) / 2.0;
}

double AllConfidence(const RuleCounts& counts) {
  uint32_t larger = std::max(counts.antecedent, counts.consequent);
  return larger == 0 ? 0.0 : static_cast<double>(counts.both) / larger;
}

double MaxConfidence(const RuleCounts& counts) {
  uint32_t smaller = std::min(counts.antecedent, counts.consequent);
  return smaller == 0 ? 0.0 : static_cast<double>(counts.both) / smaller;
}

double Leverage(const RuleCounts& counts) {
  double lev_xy = Frac(counts.both, counts.base) -
                  Frac(counts.antecedent, counts.base) *
                      Frac(counts.consequent, counts.base);
  // Symmetric leverage; positive means the sides co-occur more than
  // independence predicts.
  return lev_xy;
}

double ImbalanceRatio(const RuleCounts& counts) {
  double denom = static_cast<double>(counts.antecedent) + counts.consequent -
                 counts.both;
  if (denom <= 0.0) return 0.0;
  return std::abs(static_cast<double>(counts.antecedent) -
                  counts.consequent) /
         denom;
}

RuleMeasures ComputeMeasures(const RuleCounts& counts) {
  RuleMeasures measures;
  measures.lift = Lift(counts);
  measures.cosine = Cosine(counts);
  measures.kulczynski = Kulczynski(counts);
  measures.all_confidence = AllConfidence(counts);
  measures.max_confidence = MaxConfidence(counts);
  measures.leverage = Leverage(counts);
  measures.imbalance = ImbalanceRatio(counts);
  return measures;
}

std::string RuleMeasures::ToString() const {
  return StrFormat(
      "lift=%.2f cosine=%.2f kulc=%.2f allconf=%.2f maxconf=%.2f "
      "leverage=%.3f ir=%.2f",
      lift, cosine, kulczynski, all_confidence, max_confidence, leverage,
      imbalance);
}

RuleCounts CountsForRule(const Dataset& dataset, std::span<const Tid> tids,
                         const Rule& rule) {
  RuleCounts counts;
  counts.both = rule.itemset_count;
  counts.antecedent = rule.antecedent_count;
  counts.base = rule.base_count;
  for (Tid t : tids) {
    if (dataset.ContainsAll(t, rule.consequent)) ++counts.consequent;
  }
  return counts;
}

}  // namespace colarm
