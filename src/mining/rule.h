#ifndef COLARM_MINING_RULE_H_
#define COLARM_MINING_RULE_H_

#include <string>
#include <vector>

#include "data/schema.h"
#include "mining/itemset.h"

namespace colarm {

/// An association rule X => Y evaluated against a focal subset: supports
/// are absolute counts relative to base_count = |DQ| (the full relation for
/// global rules).
struct Rule {
  Itemset antecedent;   // X
  Itemset consequent;   // Y (disjoint from X)
  uint32_t itemset_count = 0;     // |DQ_{X∪Y}|
  uint32_t antecedent_count = 0;  // |DQ_X|
  uint32_t base_count = 0;        // |DQ|

  double support() const {
    return base_count == 0
               ? 0.0
               : static_cast<double>(itemset_count) / base_count;
  }
  double confidence() const {
    return antecedent_count == 0
               ? 0.0
               : static_cast<double>(itemset_count) / antecedent_count;
  }

  /// Identity is the (X, Y) pair; counts are derived data.
  bool SameRule(const Rule& other) const {
    return antecedent == other.antecedent && consequent == other.consequent;
  }

  std::string ToString(const Schema& schema) const;
};

/// Result set of a localized mining query.
struct RuleSet {
  std::vector<Rule> rules;

  /// Sorts by (antecedent, consequent) for stable output and comparisons.
  void Canonicalize();

  /// True when both sets contain the same (X => Y) pairs with the same
  /// counts, regardless of order.
  bool SameAs(const RuleSet& other) const;
};

}  // namespace colarm

#endif  // COLARM_MINING_RULE_H_
