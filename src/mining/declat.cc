#include "mining/declat.h"

#include <algorithm>

#include "mining/tidset.h"

namespace colarm {

namespace {

// Sorted-merge set difference a \ b.
Tidset TidsetDifference(std::span<const Tid> a, std::span<const Tid> b) {
  Tidset out;
  out.reserve(a.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

struct DeclatNode {
  Itemset items;
  Tidset diffset;  // relative to the class prefix
  uint32_t support = 0;
};

void DeclatExtend(const std::vector<DeclatNode>& klass, uint32_t min_count,
                  std::vector<FrequentItemset>* out) {
  for (size_t i = 0; i < klass.size(); ++i) {
    out->push_back({klass[i].items, klass[i].support});
    std::vector<DeclatNode> next;
    for (size_t j = i + 1; j < klass.size(); ++j) {
      // d(PXY) = d(PY) \ d(PX); supp drops by the surviving difference.
      Tidset diff = TidsetDifference(klass[j].diffset, klass[i].diffset);
      uint32_t support =
          klass[i].support - static_cast<uint32_t>(diff.size());
      if (support >= min_count) {
        next.push_back({ItemsetUnion(klass[i].items, klass[j].items),
                        std::move(diff), support});
      }
    }
    if (!next.empty()) DeclatExtend(next, min_count, out);
  }
}

}  // namespace

std::vector<FrequentItemset> MineDEclat(const VerticalView& vertical,
                                        uint32_t min_count) {
  // Root classes are per-item; their children convert tidsets to diffsets:
  // d(xy) = t(x) \ t(y), supp(xy) = supp(x) - |d(xy)|.
  std::vector<ItemId> roots;
  for (ItemId i = 0; i < vertical.num_items(); ++i) {
    if (vertical.support(i) >= min_count) roots.push_back(i);
  }
  std::vector<FrequentItemset> out;
  for (size_t i = 0; i < roots.size(); ++i) {
    const ItemId x = roots[i];
    out.push_back({{x}, vertical.support(x)});
    std::vector<DeclatNode> klass;
    for (size_t j = i + 1; j < roots.size(); ++j) {
      const ItemId y = roots[j];
      Tidset diff = TidsetDifference(vertical.tidset(x), vertical.tidset(y));
      uint32_t support =
          vertical.support(x) - static_cast<uint32_t>(diff.size());
      if (support >= min_count) {
        klass.push_back({{x, y}, std::move(diff), support});
      }
    }
    if (!klass.empty()) DeclatExtend(klass, min_count, &out);
  }
  SortItemsets(&out);
  return out;
}

std::vector<FrequentItemset> MineDEclat(const Dataset& dataset,
                                        uint32_t min_count) {
  return MineDEclat(VerticalView(dataset), min_count);
}

}  // namespace colarm
