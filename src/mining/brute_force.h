#ifndef COLARM_MINING_BRUTE_FORCE_H_
#define COLARM_MINING_BRUTE_FORCE_H_

#include <vector>

#include "data/dataset.h"
#include "mining/charm.h"
#include "mining/itemset.h"

namespace colarm {

/// Reference miners used only by tests: straightforward depth-first
/// enumeration with per-itemset counting scans. Exponential in the worst
/// case — feed them small datasets.

/// All itemsets with support >= min_count.
std::vector<FrequentItemset> MineFrequentBruteForce(const Dataset& dataset,
                                                    uint32_t min_count);

/// All *closed* frequent itemsets: frequent itemsets with no strict
/// superset of equal support.
std::vector<ClosedItemset> MineClosedBruteForce(const Dataset& dataset,
                                                uint32_t min_count);

/// Exact support count of an itemset by a full relation scan.
uint32_t CountSupport(const Dataset& dataset, std::span<const ItemId> items);

}  // namespace colarm

#endif  // COLARM_MINING_BRUTE_FORCE_H_
