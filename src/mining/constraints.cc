#include "mining/constraints.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/string_util.h"

namespace colarm {

namespace {

bool SortedDupFree(std::span<const AttrId> ids) {
  for (size_t i = 1; i < ids.size(); ++i) {
    if (ids[i - 1] >= ids[i]) return false;
  }
  return true;
}

Status ValidateItemList(const Schema& schema, const Itemset& items,
                        const char* clause) {
  for (ItemId item : items) {
    if (item >= schema.num_items()) {
      return Status::OutOfRange(
          StrFormat("%s item %u out of range", clause, item));
    }
  }
  if (!ItemsetIsValid(items)) {
    return Status::InvalidArgument(
        StrFormat("%s items must be sorted and duplicate-free", clause));
  }
  return Status::OK();
}

Status ValidateMeasure(double value, const char* name) {
  if (!std::isfinite(value) || value < 0.0) {
    return Status::InvalidArgument(
        StrFormat("%s must be finite and >= 0", name));
  }
  return Status::OK();
}

void AppendU32(std::string* out, uint32_t v) {
  char bytes[4];
  std::memcpy(bytes, &v, sizeof(v));
  out->append(bytes, sizeof(bytes));
}

void AppendDouble(std::string* out, double v) {
  char bytes[8];
  std::memcpy(bytes, &v, sizeof(v));
  out->append(bytes, sizeof(bytes));
}

void AppendItemList(const Schema& schema, const Itemset& items,
                    std::string* out) {
  out->push_back('{');
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out->append(", ");
    out->append(schema.ItemToString(items[i]));
  }
  out->push_back('}');
}

}  // namespace

Status RuleConstraints::Validate(const Schema& schema) const {
  Status status = ValidateItemList(schema, must_contain, "CONTAIN");
  if (!status.ok()) return status;
  status = ValidateItemList(schema, must_exclude, "EXCLUDE");
  if (!status.ok()) return status;
  for (AttrId a : antecedent_only) {
    if (a >= schema.num_attributes()) {
      return Status::OutOfRange(
          StrFormat("ANTECEDENT attribute %u out of range", a));
    }
  }
  if (!SortedDupFree(antecedent_only)) {
    return Status::InvalidArgument(
        "ANTECEDENT ATTRIBUTES must be sorted and duplicate-free");
  }
  status = ValidateMeasure(min_lift, "minlift");
  if (!status.ok()) return status;
  status = ValidateMeasure(min_cosine, "mincosine");
  if (!status.ok()) return status;
  status = ValidateMeasure(min_kulczynski, "minkulczynski");
  if (!status.ok()) return status;
  status = ValidateMeasure(min_antecedent_supp, "minantsupp");
  if (!status.ok()) return status;
  if (min_antecedent_supp > 1.0) {
    return Status::InvalidArgument("minantsupp must be at most 1");
  }
  return Status::OK();
}

std::string RuleConstraints::CacheKey() const {
  if (Empty()) return {};
  // Length-prefixed binary layout: unambiguous, so equal keys <=> equal
  // constraints (fields are kept sorted by Validate).
  std::string key;
  AppendU32(&key, static_cast<uint32_t>(must_contain.size()));
  for (ItemId item : must_contain) AppendU32(&key, item);
  AppendU32(&key, static_cast<uint32_t>(must_exclude.size()));
  for (ItemId item : must_exclude) AppendU32(&key, item);
  AppendU32(&key, static_cast<uint32_t>(antecedent_only.size()));
  for (AttrId a : antecedent_only) AppendU32(&key, a);
  AppendDouble(&key, min_lift);
  AppendDouble(&key, min_cosine);
  AppendDouble(&key, min_kulczynski);
  AppendDouble(&key, min_antecedent_supp);
  return key;
}

std::string RuleConstraints::ToString(const Schema& schema) const {
  std::string out;
  if (!must_contain.empty()) {
    out += " AND CONTAIN ";
    AppendItemList(schema, must_contain, &out);
  }
  if (!must_exclude.empty()) {
    out += " AND EXCLUDE ";
    AppendItemList(schema, must_exclude, &out);
  }
  if (!antecedent_only.empty()) {
    out += " AND ANTECEDENT ATTRIBUTES {";
    for (size_t i = 0; i < antecedent_only.size(); ++i) {
      if (i > 0) out += ", ";
      out += schema.attribute(antecedent_only[i]).name;
    }
    out += "}";
  }
  if (min_lift > 0.0) out += StrFormat(" AND minlift=%.2f", min_lift);
  if (min_cosine > 0.0) out += StrFormat(" AND mincosine=%.2f", min_cosine);
  if (min_kulczynski > 0.0) {
    out += StrFormat(" AND minkulczynski=%.2f", min_kulczynski);
  }
  if (min_antecedent_supp > 0.0) {
    out += StrFormat(" AND minantsupp=%.2f", min_antecedent_supp);
  }
  return out;
}

bool ItemsetSatisfiesConstraints(std::span<const ItemId> items,
                                 const RuleConstraints& constraints) {
  if (!constraints.must_contain.empty() &&
      !ItemsetIsSubset(constraints.must_contain, items)) {
    return false;
  }
  if (!constraints.must_exclude.empty() &&
      !ItemsetDisjoint(constraints.must_exclude, items)) {
    return false;
  }
  return true;
}

bool PassesMeasureFloors(const RuleCounts& counts,
                         const RuleConstraints& constraints) {
  // The antecedent floor is an exact integer comparison against the local
  // threshold, mirroring the minsupport convention (MinCount of the focal
  // subset), so every evaluation site agrees bit-for-bit.
  if (constraints.min_antecedent_supp > 0.0 &&
      counts.antecedent <
          MinCount(constraints.min_antecedent_supp, counts.base)) {
    return false;
  }
  // Same slack as the minconfidence comparison, so a floor set to the
  // exact measure value of a rule keeps that rule.
  if (constraints.min_lift > 0.0 &&
      Lift(counts) + 1e-12 < constraints.min_lift) {
    return false;
  }
  if (constraints.min_cosine > 0.0 &&
      Cosine(counts) + 1e-12 < constraints.min_cosine) {
    return false;
  }
  if (constraints.min_kulczynski > 0.0 &&
      Kulczynski(counts) + 1e-12 < constraints.min_kulczynski) {
    return false;
  }
  return true;
}

RuleSet FilterRules(const Dataset& dataset, std::span<const Tid> tids,
                    const RuleSet& unconstrained,
                    const RuleConstraints& constraints) {
  const Schema& schema = dataset.schema();
  RuleSet out;
  for (const Rule& rule : unconstrained.rules) {
    const Itemset itemset = ItemsetUnion(rule.antecedent, rule.consequent);
    if (!ItemsetSatisfiesConstraints(itemset, constraints)) continue;
    if (!constraints.antecedent_only.empty()) {
      bool pinned_in_consequent = false;
      for (ItemId item : rule.consequent) {
        if (std::binary_search(constraints.antecedent_only.begin(),
                               constraints.antecedent_only.end(),
                               schema.AttrOfItem(item))) {
          pinned_in_consequent = true;
          break;
        }
      }
      if (pinned_in_consequent) continue;
    }
    if (constraints.HasMeasures() &&
        !PassesMeasureFloors(CountsForRule(dataset, tids, rule),
                             constraints)) {
      continue;
    }
    out.rules.push_back(rule);
  }
  out.Canonicalize();
  return out;
}

}  // namespace colarm
