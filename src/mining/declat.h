#ifndef COLARM_MINING_DECLAT_H_
#define COLARM_MINING_DECLAT_H_

#include <vector>

#include "data/dataset.h"
#include "mining/itemset.h"
#include "mining/vertical.h"

namespace colarm {

/// dEclat (Zaki & Gouda, KDD'03): Eclat over *diffsets*. Instead of the
/// tidset t(PX), each node keeps d(PX) = t(P) \ t(PX); then
///
///   d(PXY)    = d(PY) \ d(PX)
///   supp(PXY) = supp(PX) - |d(PXY)|
///
/// Diffsets shrink as the search deepens on dense data (exactly the
/// chess/PUMSB regime this system indexes), trading the root-level
/// conversion cost for much smaller set operations below. Output is
/// identical to MineEclat.
std::vector<FrequentItemset> MineDEclat(const Dataset& dataset,
                                        uint32_t min_count);

std::vector<FrequentItemset> MineDEclat(const VerticalView& vertical,
                                        uint32_t min_count);

}  // namespace colarm

#endif  // COLARM_MINING_DECLAT_H_
