#include "mining/apriori.h"

#include <algorithm>
#include <map>

namespace colarm {

namespace {

// Generates level-(k+1) candidates from sorted level-k frequent itemsets by
// joining itemsets sharing a (k-1)-prefix, then pruning candidates with an
// infrequent k-subset.
std::vector<Itemset> GenerateCandidates(
    const std::vector<FrequentItemset>& level) {
  std::vector<Itemset> candidates;
  const size_t k = level.empty() ? 0 : level[0].items.size();

  // Frequent-set membership for the prune step.
  std::map<Itemset, bool> frequent;
  for (const FrequentItemset& f : level) frequent.emplace(f.items, true);

  for (size_t i = 0; i < level.size(); ++i) {
    for (size_t j = i + 1; j < level.size(); ++j) {
      const Itemset& a = level[i].items;
      const Itemset& b = level[j].items;
      if (!std::equal(a.begin(), a.end() - 1, b.begin(), b.end() - 1)) {
        // Level itemsets are sorted, so once prefixes diverge no later j
        // can share i's prefix.
        break;
      }
      Itemset candidate = a;
      candidate.push_back(b.back());
      // Prune: every k-subset must be frequent. Dropping position p yields
      // a k-subset; positions k-1 and k are the join parents.
      bool all_frequent = true;
      for (size_t drop = 0; drop + 2 < candidate.size() && all_frequent;
           ++drop) {
        Itemset sub;
        sub.reserve(k);
        for (size_t p = 0; p < candidate.size(); ++p) {
          if (p != drop) sub.push_back(candidate[p]);
        }
        all_frequent = frequent.contains(sub);
      }
      if (all_frequent) candidates.push_back(std::move(candidate));
    }
  }
  return candidates;
}

}  // namespace

std::vector<FrequentItemset> MineApriori(const Dataset& dataset,
                                         uint32_t min_count) {
  std::vector<FrequentItemset> result;
  const Schema& schema = dataset.schema();

  // Level 1: count singletons by a single relation scan.
  std::vector<uint32_t> singleton_counts(schema.num_items(), 0);
  for (AttrId a = 0; a < dataset.num_attributes(); ++a) {
    const ItemId base = schema.item_base(a);
    for (ValueId v : dataset.Column(a)) ++singleton_counts[base + v];
  }
  std::vector<FrequentItemset> level;
  std::vector<bool> item_frequent(schema.num_items(), false);
  for (ItemId i = 0; i < schema.num_items(); ++i) {
    if (singleton_counts[i] >= min_count) {
      level.push_back({{i}, singleton_counts[i]});
      item_frequent[i] = true;
    }
  }

  std::vector<ItemId> record_items;
  while (!level.empty()) {
    result.insert(result.end(), level.begin(), level.end());
    std::vector<Itemset> candidates = GenerateCandidates(level);
    if (candidates.empty()) break;
    const size_t k = candidates[0].size();

    std::map<Itemset, uint32_t> counts;
    for (const Itemset& c : candidates) counts.emplace(c, 0);

    // Horizontal counting: enumerate each record's k-subsets over its
    // frequent items and bump matching candidates.
    for (Tid t = 0; t < dataset.num_records(); ++t) {
      record_items.clear();
      for (AttrId a = 0; a < dataset.num_attributes(); ++a) {
        ItemId item = schema.ItemOf(a, dataset.Value(t, a));
        if (item_frequent[item]) record_items.push_back(item);
      }
      if (record_items.size() < k) continue;
      // Iterative k-combination enumeration over record_items.
      std::vector<size_t> idx(k);
      for (size_t i = 0; i < k; ++i) idx[i] = i;
      Itemset probe(k);
      while (true) {
        for (size_t i = 0; i < k; ++i) probe[i] = record_items[idx[i]];
        auto it = counts.find(probe);
        if (it != counts.end()) ++it->second;
        // Advance combination: find rightmost index not yet at its cap.
        size_t pos = k;
        while (pos > 0 &&
               idx[pos - 1] == record_items.size() - k + (pos - 1)) {
          --pos;
        }
        if (pos == 0) break;  // all k-combinations enumerated
        --pos;
        ++idx[pos];
        for (size_t i = pos + 1; i < k; ++i) idx[i] = idx[i - 1] + 1;
      }
    }

    level.clear();
    for (const auto& [items, count] : counts) {
      if (count >= min_count) level.push_back({items, count});
    }
    // std::map iteration already yields sorted itemsets for the next join.
  }
  SortItemsets(&result);
  return result;
}

}  // namespace colarm
