#ifndef COLARM_MINING_LOCAL_COUNTER_H_
#define COLARM_MINING_LOCAL_COUNTER_H_

#include <span>
#include <vector>

#include "data/dataset.h"
#include "mining/itemset.h"
#include "mining/tidset.h"

namespace colarm {

/// Counts, within a focal subset, the local support of *every* subset of a
/// candidate itemset in a single scan — the record-level workhorse of the
/// VERIFY operator (rule confidence needs antecedent counts for all
/// partitions of the itemset).
///
/// For itemsets up to kMaxMaskItems items the counter builds a
/// 2^L mask histogram (which record carries which sub-pattern) and applies
/// a superset-sum (zeta) transform so each CountOf() is O(1); longer
/// itemsets fall back to per-query scans over the stored tid list.
class LocalSubsetCounter {
 public:
  static constexpr size_t kMaxMaskItems = 20;

  /// `itemset` must be sorted; `tids` is the focal subset's tid list. The
  /// counter spans it rather than copying — the caller's tid storage must
  /// outlive the counter, which every call site guarantees (the
  /// FocalSubset lives in the plan context, the counter in a loop body).
  LocalSubsetCounter(const Dataset& dataset, Itemset itemset,
                     std::span<const Tid> tids);

  /// Local support count of a subset of the constructor itemset. `subset`
  /// must be sorted and a subset of `itemset()`; unknown items count as
  /// never-present (returns 0).
  uint32_t CountOf(std::span<const ItemId> subset) const;

  /// Local support count of the full itemset.
  uint32_t CountFull() const { return full_count_; }

  const Itemset& itemset() const { return itemset_; }
  uint32_t base_size() const { return static_cast<uint32_t>(tids_.size()); }

  /// Number of record-level containment checks performed so far (feeds the
  /// plan cost statistics).
  uint64_t record_checks() const { return record_checks_; }

  /// True iff the counter took the mask route, i.e. subset_table() holds
  /// all 2^L subset counts (the session cache's count-memo payload).
  bool has_subset_table() const { return use_mask_; }
  std::span<const uint32_t> subset_table() const { return superset_counts_; }

 private:
  uint32_t MaskOf(std::span<const ItemId> subset) const;

  const Dataset& dataset_;
  Itemset itemset_;
  std::span<const Tid> tids_;
  bool use_mask_ = false;
  std::vector<uint32_t> superset_counts_;  // after zeta transform
  uint32_t full_count_ = 0;
  mutable uint64_t record_checks_ = 0;
};

}  // namespace colarm

#endif  // COLARM_MINING_LOCAL_COUNTER_H_
