#ifndef COLARM_MINING_ECLAT_H_
#define COLARM_MINING_ECLAT_H_

#include <vector>

#include "data/dataset.h"
#include "mining/itemset.h"
#include "mining/vertical.h"

namespace colarm {

/// Eclat (Zaki, 1997): depth-first frequent itemset mining over the
/// vertical representation using tidset intersections within prefix-based
/// equivalence classes. Returns every itemset with support >= min_count.
std::vector<FrequentItemset> MineEclat(const Dataset& dataset,
                                       uint32_t min_count);

/// Overload mining an existing vertical view (lets callers reuse one view
/// across thresholds).
std::vector<FrequentItemset> MineEclat(const VerticalView& vertical,
                                       uint32_t min_count);

}  // namespace colarm

#endif  // COLARM_MINING_ECLAT_H_
