#include "mining/local_counter.h"

#include <algorithm>

namespace colarm {

LocalSubsetCounter::LocalSubsetCounter(const Dataset& dataset, Itemset itemset,
                                       std::span<const Tid> tids)
    : dataset_(dataset), itemset_(std::move(itemset)), tids_(tids) {
  const size_t len = itemset_.size();
  use_mask_ = len <= kMaxMaskItems;
  if (use_mask_) {
    superset_counts_.assign(size_t{1} << len, 0);
    for (Tid t : tids_) {
      uint32_t mask = 0;
      for (size_t i = 0; i < len; ++i) {
        if (dataset_.ContainsItem(t, itemset_[i])) mask |= (1u << i);
      }
      ++superset_counts_[mask];
    }
    record_checks_ += tids_.size();
    // Zeta transform over the superset lattice: after this,
    // superset_counts_[m] = #records whose item mask is a superset of m.
    for (size_t bit = 0; bit < len; ++bit) {
      const uint32_t bitmask = 1u << bit;
      for (uint32_t m = 0; m < superset_counts_.size(); ++m) {
        if ((m & bitmask) == 0) {
          superset_counts_[m] += superset_counts_[m | bitmask];
        }
      }
    }
    full_count_ = superset_counts_.empty()
                      ? 0
                      : superset_counts_[superset_counts_.size() - 1];
  } else {
    full_count_ = 0;
    for (Tid t : tids_) {
      if (dataset_.ContainsAll(t, itemset_)) ++full_count_;
    }
    record_checks_ += tids_.size();
  }
}

uint32_t LocalSubsetCounter::MaskOf(std::span<const ItemId> subset) const {
  uint32_t mask = 0;
  size_t pos = 0;
  for (ItemId item : subset) {
    while (pos < itemset_.size() && itemset_[pos] < item) ++pos;
    if (pos == itemset_.size() || itemset_[pos] != item) {
      return UINT32_MAX;  // item not part of the base itemset
    }
    mask |= (1u << pos);
    ++pos;
  }
  return mask;
}

uint32_t LocalSubsetCounter::CountOf(std::span<const ItemId> subset) const {
  if (use_mask_) {
    uint32_t mask = MaskOf(subset);
    if (mask == UINT32_MAX) return 0;
    return superset_counts_[mask];
  }
  uint32_t count = 0;
  for (Tid t : tids_) {
    if (dataset_.ContainsAll(t, subset)) ++count;
  }
  record_checks_ += tids_.size();
  return count;
}

}  // namespace colarm
