#ifndef COLARM_MINING_VERTICAL_H_
#define COLARM_MINING_VERTICAL_H_

#include <vector>

#include "data/dataset.h"
#include "mining/tidset.h"

namespace colarm {

/// Vertical (item -> tidset) representation of a dataset, the input format
/// for Eclat and CHARM. tidset(i) lists the records carrying item i.
class VerticalView {
 public:
  explicit VerticalView(const Dataset& dataset);

  /// Vertical view restricted to a subset of records (used by the ARM plan
  /// to mine a focal subset from scratch). Tids keep their original ids.
  VerticalView(const Dataset& dataset, std::span<const Tid> subset);

  /// Empties the tidsets of the given items, removing them from every
  /// record of the view. Used by the ARM plan's EXCLUDE pushdown: an
  /// excluded item can never appear in a qualifying itemset, so dropping
  /// it prunes the mining lattice instead of filtering afterwards.
  /// Projection preserves the support and enumeration of every itemset
  /// that avoids the dropped items.
  void DropItems(std::span<const ItemId> items);

  uint32_t num_items() const { return static_cast<uint32_t>(tidsets_.size()); }
  uint32_t num_records() const { return num_records_; }
  const Tidset& tidset(ItemId item) const { return tidsets_[item]; }
  uint32_t support(ItemId item) const {
    return static_cast<uint32_t>(tidsets_[item].size());
  }

 private:
  std::vector<Tidset> tidsets_;
  uint32_t num_records_ = 0;
};

}  // namespace colarm

#endif  // COLARM_MINING_VERTICAL_H_
