#ifndef COLARM_MINING_TIDSET_H_
#define COLARM_MINING_TIDSET_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/types.h"

namespace colarm {

/// A tidset is the sorted list of record ids supporting an itemset. All
/// vertical miners (Eclat, CHARM) operate on tidset intersections.
using Tidset = std::vector<Tid>;

/// Sorted-merge intersection a ∩ b.
Tidset TidsetIntersect(std::span<const Tid> a, std::span<const Tid> b);

/// Intersection into a caller-provided buffer (cleared first); avoids
/// allocation churn in hot mining loops.
void TidsetIntersectInto(std::span<const Tid> a, std::span<const Tid> b,
                         Tidset* out);

/// |a ∩ b| without materializing the intersection.
uint32_t TidsetIntersectSize(std::span<const Tid> a, std::span<const Tid> b);

/// True iff sorted a ⊆ sorted b.
bool TidsetIsSubset(std::span<const Tid> a, std::span<const Tid> b);

/// Sum of tids — the cheap hash CHARM uses to bucket equal tidsets.
uint64_t TidsetSum(std::span<const Tid> tids);

}  // namespace colarm

#endif  // COLARM_MINING_TIDSET_H_
