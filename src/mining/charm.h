#ifndef COLARM_MINING_CHARM_H_
#define COLARM_MINING_CHARM_H_

#include <any>
#include <functional>
#include <vector>

#include "common/thread_pool.h"
#include "data/dataset.h"
#include "mining/itemset.h"
#include "mining/tidset.h"
#include "mining/vertical.h"

namespace colarm {

/// A closed frequent itemset (CFI) with its tidset. An itemset is closed
/// when no strict superset has the same support.
struct ClosedItemset {
  Itemset items;
  Tidset tids;

  uint32_t count() const { return static_cast<uint32_t>(tids.size()); }
};

/// Streaming sink for mined CFIs. The tidset is only valid for the duration
/// of the call — the MIP-index builder derives bounding boxes from it and
/// drops it, keeping memory proportional to the number of CFIs, not to
/// sum-of-tidset sizes.
using ClosedItemsetSink =
    std::function<void(const Itemset& items, const Tidset& tids)>;

/// CHARM (Zaki & Hsiao, SDM'02): mines all closed itemsets with support >=
/// min_count by a depth-first IT-tree search over (itemset, tidset) pairs,
/// using the subsumption properties on equal/contained tidsets and a
/// tidset-hash based non-closure check.
void MineCharm(const VerticalView& vertical, uint32_t min_count,
               const ClosedItemsetSink& sink);

/// Per-candidate computation run on a *worker thread* by MineCharmParallel
/// (e.g. the MIP builder's bounding-box derivation). Like ClosedItemsetSink,
/// the tidset is only valid for the duration of the call — payloads are what
/// outlives the branch, tidsets never do. Called for every candidate the
/// search discovers, including the few a later closedness check discards.
using CharmMapFn =
    std::function<std::any(const Itemset& items, const Tidset& tids)>;

/// Emission callback of MineCharmParallel, invoked on the *calling* thread
/// for every closed itemset, in exactly the sequential MineCharm order,
/// with the payload CharmMapFn computed for it.
using CharmEmitFn =
    std::function<void(const Itemset& items, uint32_t count,
                       std::any payload)>;

/// Parallel CHARM. The depth-first search never reads the closedness
/// registry (the registry only gates emission), so the first-level prefix
/// branches are data-independent: after a sequential top-level closure pass
/// over the root class, each branch subtree is mined concurrently on
/// `pool`, and the closedness filter is replayed over the recombined
/// candidate streams in sequential emission order. The emitted (itemset,
/// count) sequence is byte-identical to MineCharm's. A null or 1-thread
/// pool runs the same staged algorithm inline.
void MineCharmParallel(const VerticalView& vertical, uint32_t min_count,
                       ThreadPool* pool, const CharmMapFn& map,
                       const CharmEmitFn& emit);

/// CHARM over density-adaptive hybrid tidsets (bitmap when fat, tid list
/// when thin — see bitmap/hybrid_tidset.h): near-root intersections run
/// word-parallel, and the emitted (itemset, tidset) stream is
/// byte-identical to MineCharm's. `universe` is the record-id universe the
/// tids index into — pass the *full* dataset's record count even for a
/// subset VerticalView, whose tids keep their original ids.
void MineCharmHybrid(const VerticalView& vertical, uint32_t universe,
                     uint32_t min_count, const ClosedItemsetSink& sink);

/// Hybrid-tidset twin of MineCharmParallel; same emission contract.
void MineCharmHybridParallel(const VerticalView& vertical, uint32_t universe,
                             uint32_t min_count, ThreadPool* pool,
                             const CharmMapFn& map, const CharmEmitFn& emit);

/// Convenience overloads materializing the result.
std::vector<ClosedItemset> MineCharm(const VerticalView& vertical,
                                     uint32_t min_count);
std::vector<ClosedItemset> MineCharm(const Dataset& dataset,
                                     uint32_t min_count);

/// Canonical ordering for test comparisons.
void SortClosedItemsets(std::vector<ClosedItemset>* itemsets);

}  // namespace colarm

#endif  // COLARM_MINING_CHARM_H_
