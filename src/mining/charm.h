#ifndef COLARM_MINING_CHARM_H_
#define COLARM_MINING_CHARM_H_

#include <functional>
#include <vector>

#include "data/dataset.h"
#include "mining/itemset.h"
#include "mining/tidset.h"
#include "mining/vertical.h"

namespace colarm {

/// A closed frequent itemset (CFI) with its tidset. An itemset is closed
/// when no strict superset has the same support.
struct ClosedItemset {
  Itemset items;
  Tidset tids;

  uint32_t count() const { return static_cast<uint32_t>(tids.size()); }
};

/// Streaming sink for mined CFIs. The tidset is only valid for the duration
/// of the call — the MIP-index builder derives bounding boxes from it and
/// drops it, keeping memory proportional to the number of CFIs, not to
/// sum-of-tidset sizes.
using ClosedItemsetSink =
    std::function<void(const Itemset& items, const Tidset& tids)>;

/// CHARM (Zaki & Hsiao, SDM'02): mines all closed itemsets with support >=
/// min_count by a depth-first IT-tree search over (itemset, tidset) pairs,
/// using the subsumption properties on equal/contained tidsets and a
/// tidset-hash based non-closure check.
void MineCharm(const VerticalView& vertical, uint32_t min_count,
               const ClosedItemsetSink& sink);

/// Convenience overloads materializing the result.
std::vector<ClosedItemset> MineCharm(const VerticalView& vertical,
                                     uint32_t min_count);
std::vector<ClosedItemset> MineCharm(const Dataset& dataset,
                                     uint32_t min_count);

/// Canonical ordering for test comparisons.
void SortClosedItemsets(std::vector<ClosedItemset>* itemsets);

}  // namespace colarm

#endif  // COLARM_MINING_CHARM_H_
