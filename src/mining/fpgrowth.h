#ifndef COLARM_MINING_FPGROWTH_H_
#define COLARM_MINING_FPGROWTH_H_

#include <vector>

#include "data/dataset.h"
#include "mining/itemset.h"

namespace colarm {

/// FP-growth (Han, Pei & Yin, SIGMOD'00): builds a frequency-descending
/// prefix tree (FP-tree) of the relation and mines frequent itemsets by
/// recursive conditional-pattern-base projection, with the single-path
/// shortcut. Returns every itemset with support >= min_count.
std::vector<FrequentItemset> MineFpGrowth(const Dataset& dataset,
                                          uint32_t min_count);

/// FP-growth restricted to a subset of records (used by the ARM plan's
/// FP-growth variant to mine a focal subset from scratch).
std::vector<FrequentItemset> MineFpGrowth(const Dataset& dataset,
                                          std::span<const Tid> subset,
                                          uint32_t min_count);

}  // namespace colarm

#endif  // COLARM_MINING_FPGROWTH_H_
