#ifndef COLARM_MINING_APRIORI_H_
#define COLARM_MINING_APRIORI_H_

#include <vector>

#include "data/dataset.h"
#include "mining/itemset.h"

namespace colarm {

/// Classic level-wise Apriori (Agrawal & Srikant, VLDB'94) over the
/// relational dataset: candidate generation by prefix join + downward-
/// closure pruning, horizontal support counting. Returns every itemset with
/// absolute support >= min_count. Intended as a well-understood baseline
/// and cross-check for the vertical miners; Eclat/FP-growth are faster.
std::vector<FrequentItemset> MineApriori(const Dataset& dataset,
                                         uint32_t min_count);

}  // namespace colarm

#endif  // COLARM_MINING_APRIORI_H_
