#include "mining/eclat.h"

namespace colarm {

namespace {

struct EclatNode {
  Itemset items;
  Tidset tids;
};

void EclatExtend(const std::vector<EclatNode>& klass, uint32_t min_count,
                 std::vector<FrequentItemset>* out) {
  for (size_t i = 0; i < klass.size(); ++i) {
    out->push_back({klass[i].items,
                    static_cast<uint32_t>(klass[i].tids.size())});
    std::vector<EclatNode> next;
    for (size_t j = i + 1; j < klass.size(); ++j) {
      Tidset shared = TidsetIntersect(klass[i].tids, klass[j].tids);
      if (shared.size() >= min_count) {
        next.push_back({ItemsetUnion(klass[i].items, klass[j].items),
                        std::move(shared)});
      }
    }
    if (!next.empty()) EclatExtend(next, min_count, out);
  }
}

}  // namespace

std::vector<FrequentItemset> MineEclat(const VerticalView& vertical,
                                       uint32_t min_count) {
  std::vector<EclatNode> roots;
  for (ItemId i = 0; i < vertical.num_items(); ++i) {
    if (vertical.support(i) >= min_count) {
      roots.push_back({{i}, vertical.tidset(i)});
    }
  }
  std::vector<FrequentItemset> out;
  EclatExtend(roots, min_count, &out);
  SortItemsets(&out);
  return out;
}

std::vector<FrequentItemset> MineEclat(const Dataset& dataset,
                                       uint32_t min_count) {
  return MineEclat(VerticalView(dataset), min_count);
}

}  // namespace colarm
