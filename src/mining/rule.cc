#include "mining/rule.h"

#include <algorithm>

#include "common/string_util.h"

namespace colarm {

std::string Rule::ToString(const Schema& schema) const {
  std::string out = ItemsetToString(schema, antecedent);
  out += " => ";
  out += ItemsetToString(schema, consequent);
  out += StrFormat(" (supp=%.1f%%, conf=%.1f%%)", support() * 100.0,
                   confidence() * 100.0);
  return out;
}

void RuleSet::Canonicalize() {
  std::sort(rules.begin(), rules.end(), [](const Rule& a, const Rule& b) {
    if (a.antecedent != b.antecedent) return a.antecedent < b.antecedent;
    return a.consequent < b.consequent;
  });
}

bool RuleSet::SameAs(const RuleSet& other) const {
  if (rules.size() != other.rules.size()) return false;
  RuleSet a = *this;
  RuleSet b = other;
  a.Canonicalize();
  b.Canonicalize();
  for (size_t i = 0; i < a.rules.size(); ++i) {
    const Rule& x = a.rules[i];
    const Rule& y = b.rules[i];
    if (!x.SameRule(y) || x.itemset_count != y.itemset_count ||
        x.antecedent_count != y.antecedent_count ||
        x.base_count != y.base_count) {
      return false;
    }
  }
  return true;
}

}  // namespace colarm
