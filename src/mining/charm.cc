#include "mining/charm.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "bitmap/hybrid_tidset.h"

namespace colarm {

namespace {

template <typename TidsetT>
struct CharmNodeT {
  Itemset items;
  TidsetT tids;
  bool erased = false;
};

// Hash table used for the closedness check: candidates are bucketed by the
// sum of their tids; a candidate X is subsumed iff some already-emitted C
// in its bucket has the same support and X ⊂ C (equal support + subset
// implies equal tidsets by downward closure).
class ClosedSetRegistry {
 public:
  bool IsSubsumed(const Itemset& items, size_t support,
                  uint64_t tidsum) const {
    auto it = buckets_.find(tidsum);
    if (it == buckets_.end()) return false;
    for (const auto& entry : it->second) {
      if (entry.support == support && ItemsetIsSubset(items, entry.items)) {
        return true;
      }
    }
    return false;
  }

  void Add(Itemset items, size_t support, uint64_t tidsum) {
    buckets_[tidsum].push_back({std::move(items), support});
  }

 private:
  struct Entry {
    Itemset items;
    size_t support;
  };
  std::unordered_map<uint64_t, std::vector<Entry>> buckets_;
};

// The CHARM depth-first search, decoupled from the closedness registry: it
// streams *candidate* closed itemsets (pre-filter) to a callback in a
// deterministic DFS order. The registry never influences the search, which
// is what makes branch-parallel mining possible — sequential and parallel
// callers apply the same filter to the same stream.
//
// Templated over the tidset container so the same search runs on sorted
// tid lists (Tidset) or density-adaptive bitmaps (HybridTidset). Ordering
// depends only on sizes and items — values a representation cannot change
// — so every instantiation emits the identical candidate stream.
template <typename TidsetT>
class CharmSearchT {
 public:
  using CandidateFn = std::function<void(const Itemset&, const TidsetT&)>;

  CharmSearchT(uint32_t min_count, CandidateFn fn)
      : min_count_(min_count), fn_(std::move(fn)) {}

  void Run(std::vector<CharmNodeT<TidsetT>> roots) {
    SortBySupport(&roots);
    Extend(&roots);
  }

  static void SortBySupport(std::vector<CharmNodeT<TidsetT>>* klass) {
    std::sort(klass->begin(), klass->end(),
              [](const CharmNodeT<TidsetT>& a, const CharmNodeT<TidsetT>& b) {
                if (a.tids.size() != b.tids.size()) {
                  return a.tids.size() < b.tids.size();
                }
                return a.items < b.items;
              });
  }

  // Processes one prefix-equivalence class. Nodes are support-ascending, so
  // for j > i only the tidset relations t(Xi)==t(Xj), t(Xi)⊂t(Xj) and
  // "overlap" can occur (t(Xj)⊂t(Xi) would force supp(Xj) < supp(Xi)).
  void Extend(std::vector<CharmNodeT<TidsetT>>* klass) {
    const size_t size = klass->size();
    std::vector<TidsetT> cached(size);
    for (size_t i = 0; i < size; ++i) {
      CharmNodeT<TidsetT>& x = (*klass)[i];
      if (x.erased) continue;

      // Pass 1: absorb closure items from siblings whose tidsets contain
      // t(Xi) (properties 1 and 2), caching intersections for pass 2.
      for (size_t j = i + 1; j < size; ++j) {
        CharmNodeT<TidsetT>& y = (*klass)[j];
        if (y.erased) continue;
        TidsetT shared = TidsetIntersect(x.tids, y.tids);
        if (shared.size() == x.tids.size()) {
          // t(Xi) ⊆ t(Xj): Xj's items belong to closure(Xi).
          x.items = ItemsetUnion(x.items, y.items);
          if (shared.size() == y.tids.size()) {
            y.erased = true;  // property 1: identical tidsets
          }
          cached[j].clear();
        } else {
          cached[j] = std::move(shared);
        }
      }

      // Pass 2: spawn the child class from the cached proper overlaps,
      // now that x.items carries its full closure w.r.t. this class.
      std::vector<CharmNodeT<TidsetT>> children;
      for (size_t j = i + 1; j < size; ++j) {
        if ((*klass)[j].erased || cached[j].size() < min_count_) continue;
        children.push_back({ItemsetUnion(x.items, (*klass)[j].items),
                            std::move(cached[j]), false});
        cached[j].clear();
      }
      if (!children.empty()) {
        SortBySupport(&children);
        Extend(&children);
      }

      fn_(x.items, x.tids);
      x.tids.clear();
      x.tids.shrink_to_fit();
    }
  }

 private:
  const uint32_t min_count_;
  const CandidateFn fn_;
};

std::vector<CharmNodeT<Tidset>> FrequentRoots(const VerticalView& vertical,
                                              uint32_t min_count) {
  std::vector<CharmNodeT<Tidset>> roots;
  for (ItemId i = 0; i < vertical.num_items(); ++i) {
    if (vertical.support(i) >= min_count) {
      roots.push_back({{i}, vertical.tidset(i), false});
    }
  }
  return roots;
}

std::vector<CharmNodeT<HybridTidset>> HybridRoots(const VerticalView& vertical,
                                                  uint32_t universe,
                                                  uint32_t min_count) {
  std::vector<CharmNodeT<HybridTidset>> roots;
  for (ItemId i = 0; i < vertical.num_items(); ++i) {
    if (vertical.support(i) >= min_count) {
      roots.push_back(
          {{i}, HybridTidset::FromTids(vertical.tidset(i), universe), false});
    }
  }
  return roots;
}

// The CharmMapFn / ClosedItemsetSink contracts hand callers a Tidset; a
// hybrid run materializes into a caller-scoped scratch at the boundary.
const Tidset& AsTidList(const Tidset& tids, Tidset* /*scratch*/) {
  return tids;
}
const Tidset& AsTidList(const HybridTidset& tids, Tidset* scratch) {
  *scratch = tids.ToTids();
  return *scratch;
}

template <typename TidsetT>
void MineCharmImpl(std::vector<CharmNodeT<TidsetT>> roots, uint32_t min_count,
                   const ClosedItemsetSink& sink) {
  ClosedSetRegistry registry;
  Tidset scratch;
  CharmSearchT<TidsetT> search(
      min_count, [&](const Itemset& items, const TidsetT& tids) {
        const uint64_t tidsum = TidsetSum(tids);
        if (registry.IsSubsumed(items, tids.size(), tidsum)) {
          return;
        }
        registry.Add(items, tids.size(), tidsum);
        sink(items, AsTidList(tids, &scratch));
      });
  search.Run(std::move(roots));
}

template <typename TidsetT>
void MineCharmParallelImpl(std::vector<CharmNodeT<TidsetT>> roots,
                           uint32_t min_count, ThreadPool* pool,
                           const CharmMapFn& map, const CharmEmitFn& emit) {
  // One first-level prefix branch: the closure-absorbed root plus its child
  // equivalence class, whose subtree is independent of every other branch.
  struct Branch {
    CharmNodeT<TidsetT> root;
    std::vector<CharmNodeT<TidsetT>> children;
  };

  CharmSearchT<TidsetT>::SortBySupport(&roots);

  // Sequential top-level pass: exactly CharmSearchT::Extend's outer loop,
  // but capturing each branch instead of recursing into it. Subtree
  // recursion never mutates the root class, so hoisting all top-level
  // closure work in front of the (parallel) recursions is equivalent.
  std::vector<Branch> branches;
  const size_t size = roots.size();
  std::vector<TidsetT> cached(size);
  for (size_t i = 0; i < size; ++i) {
    CharmNodeT<TidsetT>& x = roots[i];
    if (x.erased) continue;
    for (size_t j = i + 1; j < size; ++j) {
      CharmNodeT<TidsetT>& y = roots[j];
      if (y.erased) continue;
      TidsetT shared = TidsetIntersect(x.tids, y.tids);
      if (shared.size() == x.tids.size()) {
        x.items = ItemsetUnion(x.items, y.items);
        if (shared.size() == y.tids.size()) y.erased = true;
        cached[j].clear();
      } else {
        cached[j] = std::move(shared);
      }
    }
    Branch branch;
    for (size_t j = i + 1; j < size; ++j) {
      if (roots[j].erased || cached[j].size() < min_count) continue;
      branch.children.push_back({ItemsetUnion(x.items, roots[j].items),
                                 std::move(cached[j]), false});
      cached[j].clear();
    }
    // roots[i] is never read by later iterations (they only touch j > i).
    branch.root = std::move(x);
    branches.push_back(std::move(branch));
  }

  // Branch subtrees mine concurrently; each worker maps tidsets to payloads
  // immediately so per-branch memory stays proportional to its CFI count.
  struct Candidate {
    Itemset items;
    uint32_t count = 0;
    uint64_t tidsum = 0;
    std::any payload;
  };
  std::vector<std::vector<Candidate>> streams(branches.size());
  ParallelFor(pool, branches.size(), [&](size_t b) {
    std::vector<Candidate>& out = streams[b];
    Branch& branch = branches[b];
    Tidset scratch;
    CharmSearchT<TidsetT> search(
        min_count, [&](const Itemset& items, const TidsetT& tids) {
          out.push_back({items, static_cast<uint32_t>(tids.size()),
                         TidsetSum(tids),
                         map(items, AsTidList(tids, &scratch))});
        });
    if (!branch.children.empty()) {
      CharmSearchT<TidsetT>::SortBySupport(&branch.children);
      search.Extend(&branch.children);
    }
    // The root follows its subtree, as in the sequential DFS.
    out.push_back({branch.root.items,
                   static_cast<uint32_t>(branch.root.tids.size()),
                   TidsetSum(branch.root.tids),
                   map(branch.root.items, AsTidList(branch.root.tids,
                                                    &scratch))});
    branch.root.tids = TidsetT();
    branch.children.clear();
    branch.children.shrink_to_fit();
  });

  // Closedness filter over the recombined stream, in sequential order.
  ClosedSetRegistry registry;
  for (std::vector<Candidate>& stream : streams) {
    for (Candidate& candidate : stream) {
      if (registry.IsSubsumed(candidate.items, candidate.count,
                              candidate.tidsum)) {
        continue;
      }
      registry.Add(candidate.items, candidate.count, candidate.tidsum);
      emit(candidate.items, candidate.count, std::move(candidate.payload));
    }
  }
}

}  // namespace

void MineCharm(const VerticalView& vertical, uint32_t min_count,
               const ClosedItemsetSink& sink) {
  MineCharmImpl(FrequentRoots(vertical, min_count), min_count, sink);
}

void MineCharmParallel(const VerticalView& vertical, uint32_t min_count,
                       ThreadPool* pool, const CharmMapFn& map,
                       const CharmEmitFn& emit) {
  MineCharmParallelImpl(FrequentRoots(vertical, min_count), min_count, pool,
                        map, emit);
}

void MineCharmHybrid(const VerticalView& vertical, uint32_t universe,
                     uint32_t min_count, const ClosedItemsetSink& sink) {
  MineCharmImpl(HybridRoots(vertical, universe, min_count), min_count, sink);
}

void MineCharmHybridParallel(const VerticalView& vertical, uint32_t universe,
                             uint32_t min_count, ThreadPool* pool,
                             const CharmMapFn& map, const CharmEmitFn& emit) {
  MineCharmParallelImpl(HybridRoots(vertical, universe, min_count), min_count,
                        pool, map, emit);
}

std::vector<ClosedItemset> MineCharm(const VerticalView& vertical,
                                     uint32_t min_count) {
  std::vector<ClosedItemset> out;
  MineCharm(vertical, min_count,
            [&out](const Itemset& items, const Tidset& tids) {
              out.push_back({items, tids});
            });
  return out;
}

std::vector<ClosedItemset> MineCharm(const Dataset& dataset,
                                     uint32_t min_count) {
  return MineCharm(VerticalView(dataset), min_count);
}

void SortClosedItemsets(std::vector<ClosedItemset>* itemsets) {
  std::sort(itemsets->begin(), itemsets->end(),
            [](const ClosedItemset& a, const ClosedItemset& b) {
              return a.items < b.items;
            });
}

}  // namespace colarm
