#include "mining/charm.h"

#include <algorithm>
#include <unordered_map>

namespace colarm {

namespace {

struct CharmNode {
  Itemset items;
  Tidset tids;
  bool erased = false;
};

// Hash table used for the closedness check: candidates are bucketed by the
// sum of their tids; a candidate X is subsumed iff some already-emitted C
// in its bucket has the same support and X ⊂ C (equal support + subset
// implies equal tidsets by downward closure).
class ClosedSetRegistry {
 public:
  bool IsSubsumed(const Itemset& items, const Tidset& tids,
                  uint64_t tidsum) const {
    auto it = buckets_.find(tidsum);
    if (it == buckets_.end()) return false;
    for (const auto& entry : it->second) {
      if (entry.support == tids.size() && ItemsetIsSubset(items, entry.items)) {
        return true;
      }
    }
    return false;
  }

  void Add(Itemset items, size_t support, uint64_t tidsum) {
    buckets_[tidsum].push_back({std::move(items), support});
  }

 private:
  struct Entry {
    Itemset items;
    size_t support;
  };
  std::unordered_map<uint64_t, std::vector<Entry>> buckets_;
};

class CharmMiner {
 public:
  CharmMiner(uint32_t min_count, const ClosedItemsetSink& sink)
      : min_count_(min_count), sink_(sink) {}

  void Run(std::vector<CharmNode> roots) {
    SortBySupport(&roots);
    Extend(&roots);
  }

 private:
  static void SortBySupport(std::vector<CharmNode>* klass) {
    std::sort(klass->begin(), klass->end(),
              [](const CharmNode& a, const CharmNode& b) {
                if (a.tids.size() != b.tids.size()) {
                  return a.tids.size() < b.tids.size();
                }
                return a.items < b.items;
              });
  }

  // Processes one prefix-equivalence class. Nodes are support-ascending, so
  // for j > i only the tidset relations t(Xi)==t(Xj), t(Xi)⊂t(Xj) and
  // "overlap" can occur (t(Xj)⊂t(Xi) would force supp(Xj) < supp(Xi)).
  void Extend(std::vector<CharmNode>* klass) {
    const size_t size = klass->size();
    std::vector<Tidset> cached(size);
    for (size_t i = 0; i < size; ++i) {
      CharmNode& x = (*klass)[i];
      if (x.erased) continue;

      // Pass 1: absorb closure items from siblings whose tidsets contain
      // t(Xi) (properties 1 and 2), caching intersections for pass 2.
      for (size_t j = i + 1; j < size; ++j) {
        CharmNode& y = (*klass)[j];
        if (y.erased) continue;
        Tidset shared = TidsetIntersect(x.tids, y.tids);
        if (shared.size() == x.tids.size()) {
          // t(Xi) ⊆ t(Xj): Xj's items belong to closure(Xi).
          x.items = ItemsetUnion(x.items, y.items);
          if (shared.size() == y.tids.size()) {
            y.erased = true;  // property 1: identical tidsets
          }
          cached[j].clear();
        } else {
          cached[j] = std::move(shared);
        }
      }

      // Pass 2: spawn the child class from the cached proper overlaps,
      // now that x.items carries its full closure w.r.t. this class.
      std::vector<CharmNode> children;
      for (size_t j = i + 1; j < size; ++j) {
        if ((*klass)[j].erased || cached[j].size() < min_count_) continue;
        children.push_back({ItemsetUnion(x.items, (*klass)[j].items),
                            std::move(cached[j]), false});
        cached[j].clear();
      }
      if (!children.empty()) {
        SortBySupport(&children);
        Extend(&children);
      }

      Emit(x);
      x.tids.clear();
      x.tids.shrink_to_fit();
    }
  }

  void Emit(const CharmNode& node) {
    const uint64_t tidsum = TidsetSum(node.tids);
    if (registry_.IsSubsumed(node.items, node.tids, tidsum)) return;
    registry_.Add(node.items, node.tids.size(), tidsum);
    sink_(node.items, node.tids);
  }

  const uint32_t min_count_;
  const ClosedItemsetSink& sink_;
  ClosedSetRegistry registry_;
};

}  // namespace

void MineCharm(const VerticalView& vertical, uint32_t min_count,
               const ClosedItemsetSink& sink) {
  std::vector<CharmNode> roots;
  for (ItemId i = 0; i < vertical.num_items(); ++i) {
    if (vertical.support(i) >= min_count) {
      roots.push_back({{i}, vertical.tidset(i), false});
    }
  }
  CharmMiner miner(min_count, sink);
  miner.Run(std::move(roots));
}

std::vector<ClosedItemset> MineCharm(const VerticalView& vertical,
                                     uint32_t min_count) {
  std::vector<ClosedItemset> out;
  MineCharm(vertical, min_count,
            [&out](const Itemset& items, const Tidset& tids) {
              out.push_back({items, tids});
            });
  return out;
}

std::vector<ClosedItemset> MineCharm(const Dataset& dataset,
                                     uint32_t min_count) {
  return MineCharm(VerticalView(dataset), min_count);
}

void SortClosedItemsets(std::vector<ClosedItemset>* itemsets) {
  std::sort(itemsets->begin(), itemsets->end(),
            [](const ClosedItemset& a, const ClosedItemset& b) {
              return a.items < b.items;
            });
}

}  // namespace colarm
