#include "mining/itemset.h"

#include <algorithm>
#include <cmath>

namespace colarm {

bool ItemsetIsValid(std::span<const ItemId> items) {
  for (size_t i = 1; i < items.size(); ++i) {
    if (items[i - 1] >= items[i]) return false;
  }
  return true;
}

Itemset ItemsetUnion(std::span<const ItemId> a, std::span<const ItemId> b) {
  Itemset out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

bool ItemsetIsSubset(std::span<const ItemId> sub,
                     std::span<const ItemId> super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

bool ItemsetDisjoint(std::span<const ItemId> a, std::span<const ItemId> b) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      return false;
    }
  }
  return true;
}

std::string ItemsetToString(const Schema& schema,
                            std::span<const ItemId> items) {
  std::string out = "{";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.ItemToString(items[i]);
  }
  out += "}";
  return out;
}

void SortItemsets(std::vector<FrequentItemset>* itemsets) {
  std::sort(itemsets->begin(), itemsets->end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              return a.items < b.items;
            });
}

uint32_t MinCount(double fraction, uint32_t total) {
  if (fraction <= 0.0 || total == 0) return 1;
  double raw = fraction * static_cast<double>(total);
  auto count = static_cast<uint32_t>(std::ceil(raw - 1e-9));
  return std::max<uint32_t>(1, count);
}

}  // namespace colarm
