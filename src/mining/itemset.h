#ifndef COLARM_MINING_ITEMSET_H_
#define COLARM_MINING_ITEMSET_H_

#include <span>
#include <string>
#include <vector>

#include "data/schema.h"
#include "data/types.h"

namespace colarm {

/// An itemset is a set of items (attribute=value pairs) kept as a sorted,
/// duplicate-free vector of item ids. Because item ids are grouped by
/// attribute, a valid itemset has at most one item per attribute.
using Itemset = std::vector<ItemId>;

/// True iff `items` is strictly increasing (the representation invariant).
bool ItemsetIsValid(std::span<const ItemId> items);

/// Set union of two sorted itemsets.
Itemset ItemsetUnion(std::span<const ItemId> a, std::span<const ItemId> b);

/// True iff sorted `sub` ⊆ sorted `super`.
bool ItemsetIsSubset(std::span<const ItemId> sub, std::span<const ItemId> super);

/// True iff the two sorted itemsets share no item.
bool ItemsetDisjoint(std::span<const ItemId> a, std::span<const ItemId> b);

/// "{Age=20-30, Salary=90K-120K}" rendering.
std::string ItemsetToString(const Schema& schema, std::span<const ItemId> items);

/// A frequent itemset together with its (global or local) absolute support
/// count.
struct FrequentItemset {
  Itemset items;
  uint32_t count = 0;

  bool operator==(const FrequentItemset& other) const = default;
};

/// Canonical ordering used to compare miner outputs in tests.
void SortItemsets(std::vector<FrequentItemset>* itemsets);

/// Converts a fractional support threshold into the smallest absolute count
/// that satisfies it: the least c with c / total >= fraction (at least 1).
uint32_t MinCount(double fraction, uint32_t total);

}  // namespace colarm

#endif  // COLARM_MINING_ITEMSET_H_
