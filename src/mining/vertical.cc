#include "mining/vertical.h"

namespace colarm {

VerticalView::VerticalView(const Dataset& dataset)
    : tidsets_(dataset.schema().num_items()),
      num_records_(dataset.num_records()) {
  const Schema& schema = dataset.schema();
  for (AttrId a = 0; a < dataset.num_attributes(); ++a) {
    const std::vector<ValueId>& column = dataset.Column(a);
    const ItemId base = schema.item_base(a);
    for (Tid t = 0; t < column.size(); ++t) {
      tidsets_[base + column[t]].push_back(t);
    }
  }
}

VerticalView::VerticalView(const Dataset& dataset, std::span<const Tid> subset)
    : tidsets_(dataset.schema().num_items()),
      num_records_(static_cast<uint32_t>(subset.size())) {
  const Schema& schema = dataset.schema();
  for (AttrId a = 0; a < dataset.num_attributes(); ++a) {
    const std::vector<ValueId>& column = dataset.Column(a);
    const ItemId base = schema.item_base(a);
    for (Tid t : subset) {
      tidsets_[base + column[t]].push_back(t);
    }
  }
}

void VerticalView::DropItems(std::span<const ItemId> items) {
  for (ItemId item : items) {
    if (item < tidsets_.size()) {
      tidsets_[item].clear();
      tidsets_[item].shrink_to_fit();
    }
  }
}

}  // namespace colarm
