#ifndef COLARM_SERVER_SERVICE_H_
#define COLARM_SERVER_SERVICE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/batch.h"
#include "core/engine.h"
#include "server/protocol.h"

namespace colarm {

struct ServiceOptions {
  /// Session cache built per tenant over the shared engine's index; each
  /// tenant's drill-down sequence hits its own containment tiers. Set
  /// enabled=false (or byte_budget=0) for cache-less tenants.
  QueryCacheOptions tenant_cache = {.enabled = true,
                                    .byte_budget = size_t{16} << 20,
                                    .count_memo = true};
  /// Admission control: total MINEs admitted but not yet answered, across
  /// all tenants. Excess requests fast-fail with ERR BUSY.
  uint32_t max_inflight = 64;
  /// Per-tenant share of the in-flight bound, so one chatty tenant cannot
  /// starve the rest (fairness: a tenant is rejected once it alone holds
  /// this many slots, even when the global bound has room).
  uint32_t max_tenant_inflight = 16;
  /// Per-request deadline in milliseconds; 0 = none. The clock starts at
  /// admission, so queue wait counts against it.
  double deadline_ms = 0.0;
  /// Warm-start directory: when non-empty, each tenant's session cache is
  /// loaded from `<cache_dir>/<tenant>.ccache` at creation (silently cold
  /// on missing/corrupt/mismatched files) and PersistCaches() writes the
  /// same files back at drain. Empty = no persistence.
  std::string cache_dir;
};

/// Counters one tenant accumulates across its connections. Guarded by the
/// owning Tenant's mutex.
struct TenantStats {
  uint64_t mines = 0;             // MINE commands that reached execution
  uint64_t mine_errors = 0;       // of which failed (EXEC / DEADLINE)
  uint64_t rules = 0;             // total rules returned
  uint64_t explains = 0;
  uint64_t busy_rejections = 0;   // MINEs refused by admission control
};

/// Deterministic STATS payload for one tenant. Exposed as a free function
/// so the smoke test can render its expectation from a direct-engine
/// replay's counters. `telemetry` may be null (cache disabled).
std::string RenderStatsPayload(const std::string& tenant_name,
                               const TenantStats& stats,
                               const CacheTelemetry* telemetry,
                               uint32_t tenant_inflight,
                               uint64_t global_inflight);

/// One tenant: a name, a private session cache over the shared index, and
/// usage counters. Tenants are created on first HELLO and live for the
/// server's lifetime; several connections may share one tenant.
class Tenant {
 public:
  Tenant(const Engine& engine, std::string name,
         const QueryCacheOptions& cache_options);

  const std::string& name() const { return name_; }

  /// The tenant's session cache; null when disabled by options.
  QueryCache* cache() const { return cache_.get(); }

  uint32_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }

 private:
  friend class Service;

  std::string name_;
  std::unique_ptr<QueryCache> cache_;
  std::atomic<uint32_t> inflight_{0};

  mutable std::mutex stats_mutex_;
  TenantStats stats_;
};

/// The tenant registry plus everything request handling needs besides the
/// event loop: admission control, batched execution against the shared
/// engine with per-tenant cache override, and deterministic response
/// rendering. Thread-safe; the epoll loops call Admit/Release/GetTenant
/// while the dispatcher calls the Execute* methods.
class Service {
 public:
  Service(const Engine& engine, ServiceOptions options);

  const Engine& engine() const { return *engine_; }
  const ServiceOptions& options() const { return options_; }

  /// Finds or creates the tenant (HELLO).
  std::shared_ptr<Tenant> GetTenant(const std::string& name);

  /// Tries to admit one MINE for the tenant; false = fast-fail BUSY.
  /// Each successful Admit must be paired with a Release once the
  /// response is rendered.
  bool Admit(Tenant* tenant);
  void Release(Tenant* tenant);

  uint64_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }

  /// One admitted MINE awaiting execution.
  struct MineRequest {
    LocalizedQuery query;
    /// Absolute deadline (admission time + deadline_ms); unset when the
    /// service has no deadline configured.
    bool has_deadline = false;
    CancelToken::Clock::time_point deadline{};
  };

  /// Executes a group of same-tenant MINEs — batched through the
  /// BatchExecutor when there are 2+ (subset sharing + duplicate reuse
  /// against the tenant's cache), single-query otherwise — and renders one
  /// full response (OK payload or ERR line) per request, in order. On a
  /// batch-level failure the group falls back to per-request execution so
  /// one poisoned query cannot fail its neighbours. `kill` is the server's
  /// drain kill-switch (may be null).
  std::vector<std::string> ExecuteMineGroup(Tenant* tenant,
                                            std::span<const MineRequest> group,
                                            const CancelToken* kill);

  /// Executes EXPLAIN (nothing runs; cheap enough for inline handling).
  std::string ExecuteExplain(Tenant* tenant, const LocalizedQuery& query);

  /// Renders the STATS payload: tenant counters + cache telemetry +
  /// global admission state.
  std::string RenderStats(Tenant* tenant) const;

  /// Telemetry hook for admission rejections (counts into STATS).
  void NoteBusy(Tenant* tenant);

  /// Saves every tenant's cache into options().cache_dir (v4 format, one
  /// file per tenant). Best-effort: returns how many tenants persisted
  /// cleanly; no-op returning 0 when cache_dir is empty. Call at drain,
  /// after the event loops stop.
  size_t PersistCaches() const;

 private:
  /// `<cache_dir>/<sanitized tenant name>.ccache`.
  std::string CachePathFor(const std::string& tenant_name) const;
  std::string ExecuteSingleMine(Tenant* tenant, const MineRequest& request,
                                const CancelToken* kill);

  const Engine* engine_;
  ServiceOptions options_;

  mutable std::mutex tenants_mutex_;
  std::map<std::string, std::shared_ptr<Tenant>> tenants_;

  std::atomic<uint64_t> inflight_{0};
};

}  // namespace colarm

#endif  // COLARM_SERVER_SERVICE_H_
