#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "common/string_util.h"
#include "core/query_parser.h"

namespace colarm {

namespace {

std::string ErrnoMessage(const char* what) {
  return StrFormat("%s: %s", what, strerror(errno));
}

}  // namespace

/// Per-connection state. The framer, tenant binding, and quit bookkeeping
/// are touched only by the owning event-loop thread; everything under
/// `mutex` is shared with the dispatcher (response delivery).
struct Server::Conn {
  explicit Conn(size_t max_line_bytes) : framer(max_line_bytes) {}

  int fd = -1;
  IoLoop* loop = nullptr;

  // IO-thread only.
  LineFramer framer;
  std::shared_ptr<Tenant> tenant;
  bool saw_quit = false;
  bool quit_requested = false;  // arm close_after_flush at read-batch end

  std::mutex mutex;
  // Guarded by mutex.
  uint32_t pending = 0;  // queued dispatcher items not yet answered
  std::string outbox;
  size_t out_pos = 0;
  bool want_write = false;        // EPOLLOUT armed
  bool read_closed = false;       // peer EOF seen; EPOLLIN deregistered
  bool close_after_flush = false;
  bool closed = false;

  // Caller holds mutex for both methods below.

  void SetEpollEventsLocked(int epfd) {
    epoll_event ev{};
    ev.events = (read_closed ? 0u : static_cast<uint32_t>(EPOLLIN)) |
                (want_write ? static_cast<uint32_t>(EPOLLOUT) : 0u);
    ev.data.fd = fd;
    (void)epoll_ctl(epfd, EPOLL_CTL_MOD, fd, &ev);
  }

  /// Flushes as much of the outbox as the socket accepts. On a write
  /// error the socket is shut down, which surfaces as EPOLLHUP on the
  /// owning loop and closes the connection there.
  void FlushLocked(int epfd) {
    if (closed) return;
    while (out_pos < outbox.size()) {
      const ssize_t n = ::send(fd, outbox.data() + out_pos,
                               outbox.size() - out_pos, MSG_NOSIGNAL);
      if (n >= 0) {
        out_pos += static_cast<size_t>(n);
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!want_write) {
          want_write = true;
          SetEpollEventsLocked(epfd);
        }
        return;
      }
      // Peer gone (EPIPE, ECONNRESET, ...): surface EPOLLHUP to the loop.
      ::shutdown(fd, SHUT_RDWR);
      return;
    }
    outbox.clear();
    out_pos = 0;
    if (want_write) {
      want_write = false;
      SetEpollEventsLocked(epfd);
    }
    if (close_after_flush && pending == 0) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
};

struct Server::IoLoop {
  Server* server = nullptr;
  unsigned index = 0;
  int epfd = -1;
  int listen_fd = -1;
  int wake_fd = -1;
  bool listener_open = false;
  std::thread thread;
  // IO-thread only.
  std::unordered_map<int, std::shared_ptr<Conn>> conns;

  ~IoLoop() {
    if (listen_fd >= 0) ::close(listen_fd);
    if (wake_fd >= 0) ::close(wake_fd);
    if (epfd >= 0) ::close(epfd);
  }

  void Wake() const {
    const uint64_t one = 1;
    if (wake_fd >= 0) {
      [[maybe_unused]] ssize_t n = ::write(wake_fd, &one, sizeof(one));
    }
  }
};

struct Server::Pending {
  enum class Kind { kMine, kExplain, kStats, kPrebuilt };
  Kind kind = Kind::kPrebuilt;
  std::shared_ptr<Conn> conn;
  std::shared_ptr<Tenant> tenant;
  LocalizedQuery query;
  bool has_deadline = false;
  CancelToken::Clock::time_point deadline{};
  std::string prebuilt;
  bool quit_after = false;
};

Server::Server(const Engine& engine, ServerOptions options)
    : engine_(&engine),
      options_(std::move(options)),
      service_(engine, options_.service) {}

Server::~Server() { Shutdown(); }

Status Server::StartListener(IoLoop* loop, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
  if (fd < 0) return Status::IoError(ErrnoMessage("socket"));
  loop->listen_fd = fd;
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  // One listener per event loop on the same port: the kernel shards
  // incoming connections across the acceptors.
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::IoError("bad host address: " + options_.host);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IoError(ErrnoMessage("bind"));
  }
  if (::listen(fd, 128) != 0) {
    return Status::IoError(ErrnoMessage("listen"));
  }
  loop->listener_open = true;
  return Status::OK();
}

Status Server::Start() {
  unsigned threads = options_.io_threads;
  if (threads == 0) {
    threads = std::min(4u, std::max(1u, std::thread::hardware_concurrency()));
  }
  uint16_t port = options_.port;
  for (unsigned i = 0; i < threads; ++i) {
    auto loop = std::make_unique<IoLoop>();
    loop->server = this;
    loop->index = i;
    loop->epfd = ::epoll_create1(EPOLL_CLOEXEC);
    if (loop->epfd < 0) return Status::IoError(ErrnoMessage("epoll_create1"));
    loop->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (loop->wake_fd < 0) return Status::IoError(ErrnoMessage("eventfd"));
    COLARM_RETURN_IF_ERROR(StartListener(loop.get(), port));
    if (i == 0) {
      // An ephemeral bind resolves here; the remaining listeners share it.
      sockaddr_in bound{};
      socklen_t len = sizeof(bound);
      if (::getsockname(loop->listen_fd,
                        reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
        return Status::IoError(ErrnoMessage("getsockname"));
      }
      port_ = ntohs(bound.sin_port);
      port = port_;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = loop->listen_fd;
    (void)::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, loop->listen_fd, &ev);
    ev.data.fd = loop->wake_fd;
    (void)::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, loop->wake_fd, &ev);
    loops_.push_back(std::move(loop));
  }
  for (auto& loop : loops_) {
    loop->thread = std::thread(&Server::IoLoopMain, this, loop.get());
  }
  dispatcher_ = std::thread(&Server::DispatcherMain, this);
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    started_ = true;
  }
  return Status::OK();
}

void Server::AcceptReady(IoLoop* loop) {
  for (;;) {
    const int fd = ::accept4(loop->listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN, or the listener is closing
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>(options_.max_line_bytes);
    conn->fd = fd;
    conn->loop = loop;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    (void)::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, fd, &ev);
    loop->conns.emplace(fd, std::move(conn));
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::CloseConn(IoLoop* loop, const std::shared_ptr<Conn>& conn) {
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->closed) return;
    conn->closed = true;
    fd = conn->fd;
    (void)::epoll_ctl(loop->epfd, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
  }
  loop->conns.erase(fd);
}

void Server::WriteReady(const std::shared_ptr<Conn>& conn) {
  std::lock_guard<std::mutex> lock(conn->mutex);
  conn->FlushLocked(conn->loop->epfd);
}

void Server::ReadReady(IoLoop* loop, const std::shared_ptr<Conn>& conn) {
  char buf[16384];
  for (;;) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->framer.Append(buf, static_cast<size_t>(n));
      std::string line;
      for (;;) {
        const LineFramer::Event event = conn->framer.Next(&line);
        if (event == LineFramer::Event::kNeedMore) break;
        if (event == LineFramer::Event::kOversized) {
          stats_.oversized_lines.fetch_add(1, std::memory_order_relaxed);
          RespondOrdered(conn,
                         ErrResponse("TOOLONG",
                                     StrFormat("request line exceeds %zu bytes",
                                               options_.max_line_bytes)));
          continue;
        }
        HandleLine(loop, conn, line);
      }
      if (conn->quit_requested) {
        // QUIT (or an error after it) was answered inline during this read
        // batch; arm the close now that every pipelined line got its
        // response appended in order.
        conn->quit_requested = false;
        std::lock_guard<std::mutex> lock(conn->mutex);
        conn->close_after_flush = true;
        conn->FlushLocked(loop->epfd);
      }
      continue;
    }
    if (n == 0) {
      // Peer finished sending (nc-style half close). Keep the connection
      // until every pending response is delivered and flushed.
      bool close_now = false;
      {
        std::lock_guard<std::mutex> lock(conn->mutex);
        conn->read_closed = true;
        conn->close_after_flush = true;
        close_now =
            conn->pending == 0 && conn->out_pos >= conn->outbox.size();
        if (!close_now) conn->SetEpollEventsLocked(loop->epfd);
      }
      if (close_now) CloseConn(loop, conn);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    CloseConn(loop, conn);
    return;
  }
}

void Server::RespondOrdered(const std::shared_ptr<Conn>& conn,
                            std::string response, bool quit_after) {
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->pending == 0) {
      // Nothing queued ahead: answer inline on the event loop.
      if (!conn->closed) {
        conn->outbox += response;
        if (quit_after) conn->quit_requested = true;
        conn->FlushLocked(conn->loop->epfd);
      }
      return;
    }
    conn->pending++;
  }
  Pending item;
  item.kind = Pending::Kind::kPrebuilt;
  item.conn = conn;
  item.prebuilt = std::move(response);
  item.quit_after = quit_after;
  EnqueuePending(std::move(item));
}

void Server::EnqueuePending(Pending item) {
  bool accepted = false;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!queue_closing_) {
      queue_.push_back(std::move(item));
      accepted = true;
    }
  }
  if (accepted) {
    queue_cv_.notify_one();
    return;
  }
  // Shutdown race: the queue closed between the admission check and the
  // push. Answer directly and roll back the admission slot.
  if (item.kind == Pending::Kind::kMine) service_.Release(item.tenant.get());
  Deliver(item.conn, ErrResponse("SHUTDOWN", "server is shutting down"),
          item.quit_after);
}

void Server::Deliver(const std::shared_ptr<Conn>& conn,
                     const std::string& response, bool quit_after) {
  std::lock_guard<std::mutex> lock(conn->mutex);
  if (conn->pending > 0) conn->pending--;
  if (conn->closed) return;
  conn->outbox += response;
  if (quit_after) conn->close_after_flush = true;
  conn->FlushLocked(conn->loop->epfd);
}

void Server::HandleLine(IoLoop* loop, const std::shared_ptr<Conn>& conn,
                        const std::string& line) {
  if (StripWhitespace(line).empty()) return;  // blank keep-alive lines

  Result<Command> cmd = ParseCommandLine(line);
  if (!cmd.ok()) {
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    RespondOrdered(conn, ErrResponse("BADCMD", cmd.status().message()));
    return;
  }

  switch (cmd->verb) {
    case Verb::kHello: {
      if (conn->tenant != nullptr) {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        RespondOrdered(conn, ErrResponse("REHELLO",
                                         "connection already identified as "
                                         "tenant " +
                                             conn->tenant->name()));
        return;
      }
      conn->tenant = service_.GetTenant(cmd->arg);
      RespondOrdered(conn, OkResponse("hello " + cmd->arg + "\n"));
      return;
    }

    case Verb::kQuit: {
      if (conn->saw_quit) {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        RespondOrdered(conn, ErrResponse("BADCMD",
                                         "connection already closing"));
        return;
      }
      conn->saw_quit = true;
      RespondOrdered(conn, OkResponse("bye\n"), /*quit_after=*/true);
      return;
    }

    case Verb::kStats: {
      if (conn->tenant == nullptr) {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        RespondOrdered(conn,
                       ErrResponse("NOHELLO", "say HELLO <tenant> first"));
        return;
      }
      bool inline_now;
      {
        std::lock_guard<std::mutex> lock(conn->mutex);
        inline_now = conn->pending == 0;
        if (!inline_now) conn->pending++;
      }
      if (inline_now) {
        // pending can only grow on this thread, so the snapshot holds.
        RespondOrdered(conn, service_.RenderStats(conn->tenant.get()));
        return;
      }
      Pending item;
      item.kind = Pending::Kind::kStats;
      item.conn = conn;
      item.tenant = conn->tenant;
      EnqueuePending(std::move(item));
      return;
    }

    case Verb::kExplain:
    case Verb::kMine: {
      if (conn->tenant == nullptr) {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        RespondOrdered(conn,
                       ErrResponse("NOHELLO", "say HELLO <tenant> first"));
        return;
      }
      Result<LocalizedQuery> query = ParseQuery(
          engine_->index().dataset().schema(), cmd->arg);
      if (!query.ok()) {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        RespondOrdered(conn,
                       ErrResponse("PARSE", query.status().message()));
        return;
      }

      if (cmd->verb == Verb::kExplain) {
        bool inline_now;
        {
          std::lock_guard<std::mutex> lock(conn->mutex);
          inline_now = conn->pending == 0;
          if (!inline_now) conn->pending++;
        }
        if (inline_now) {
          RespondOrdered(conn,
                         service_.ExecuteExplain(conn->tenant.get(),
                                                 query.value()));
          return;
        }
        Pending item;
        item.kind = Pending::Kind::kExplain;
        item.conn = conn;
        item.tenant = conn->tenant;
        item.query = std::move(query.value());
        EnqueuePending(std::move(item));
        return;
      }

      // MINE: admission, then hand to the dispatcher.
      if (draining_.load(std::memory_order_acquire)) {
        RespondOrdered(conn,
                       ErrResponse("SHUTDOWN", "server is shutting down"));
        return;
      }
      if (!service_.Admit(conn->tenant.get())) {
        stats_.busy_rejections.fetch_add(1, std::memory_order_relaxed);
        service_.NoteBusy(conn->tenant.get());
        RespondOrdered(conn, ErrResponse("BUSY",
                                         "admission limit reached; retry"));
        return;
      }
      stats_.requests_admitted.fetch_add(1, std::memory_order_relaxed);
      Pending item;
      item.kind = Pending::Kind::kMine;
      item.conn = conn;
      item.tenant = conn->tenant;
      item.query = std::move(query.value());
      if (options_.service.deadline_ms > 0) {
        item.has_deadline = true;
        item.deadline =
            CancelToken::Clock::now() +
            std::chrono::duration_cast<CancelToken::Clock::duration>(
                std::chrono::duration<double, std::milli>(
                    options_.service.deadline_ms));
      }
      {
        std::lock_guard<std::mutex> lock(conn->mutex);
        conn->pending++;
      }
      EnqueuePending(std::move(item));
      return;
    }
  }
  (void)loop;
}

void Server::DispatcherMain() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return queue_closing_ || !queue_.empty(); });
      if (queue_.empty()) return;  // queue_closing_ and drained
      while (!queue_.empty() && batch.size() < options_.batch_max) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    size_t i = 0;
    while (i < batch.size()) {
      Pending& item = batch[i];
      if (item.kind == Pending::Kind::kMine) {
        // Maximal run of same-tenant mines executes as one batch: subset
        // sharing and duplicate reuse across the tenant's pipelined
        // requests. Per-connection response order is preserved because
        // the run keeps queue order.
        size_t j = i;
        while (j < batch.size() &&
               batch[j].kind == Pending::Kind::kMine &&
               batch[j].tenant == item.tenant) {
          j++;
        }
        std::vector<Service::MineRequest> group;
        group.reserve(j - i);
        for (size_t k = i; k < j; ++k) {
          Service::MineRequest request;
          request.query = batch[k].query;
          request.has_deadline = batch[k].has_deadline;
          request.deadline = batch[k].deadline;
          group.push_back(std::move(request));
        }
        const std::vector<std::string> responses =
            service_.ExecuteMineGroup(item.tenant.get(), group, &kill_);
        for (size_t k = i; k < j; ++k) {
          Deliver(batch[k].conn, responses[k - i]);
          service_.Release(batch[k].tenant.get());
        }
        i = j;
        continue;
      }
      switch (item.kind) {
        case Pending::Kind::kPrebuilt:
          Deliver(item.conn, item.prebuilt, item.quit_after);
          break;
        case Pending::Kind::kExplain:
          Deliver(item.conn,
                  service_.ExecuteExplain(item.tenant.get(), item.query));
          break;
        case Pending::Kind::kStats:
          Deliver(item.conn, service_.RenderStats(item.tenant.get()));
          break;
        case Pending::Kind::kMine:
          break;  // handled above
      }
      i++;
    }
  }
}

void Server::IoLoopMain(IoLoop* loop) {
  epoll_event events[64];
  for (;;) {
    const bool stopping = io_stop_.load(std::memory_order_acquire);
    const int timeout_ms = stopping ? 20 : -1;
    const int n = ::epoll_wait(loop->epfd, events, 64, timeout_ms);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < std::max(n, 0); ++i) {
      const int fd = events[i].data.fd;
      if (fd == loop->wake_fd) {
        uint64_t drain;
        while (::read(loop->wake_fd, &drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (fd == loop->listen_fd) {
        AcceptReady(loop);
        continue;
      }
      auto it = loop->conns.find(fd);
      if (it == loop->conns.end()) continue;
      std::shared_ptr<Conn> conn = it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConn(loop, conn);
        continue;
      }
      if (events[i].events & EPOLLOUT) WriteReady(conn);
      if (events[i].events & EPOLLIN) ReadReady(loop, conn);
    }
    if (draining_.load(std::memory_order_acquire) && loop->listener_open) {
      (void)::epoll_ctl(loop->epfd, EPOLL_CTL_DEL, loop->listen_fd, nullptr);
      ::close(loop->listen_fd);
      loop->listen_fd = -1;
      loop->listener_open = false;
    }
    if (stopping) {
      // The dispatcher has already drained (Shutdown joins it before
      // setting io_stop_), so pending counts are final; keep polling only
      // until the outboxes flush or the drain budget lapses.
      bool idle = true;
      for (const auto& [cfd, conn] : loop->conns) {
        std::lock_guard<std::mutex> lock(conn->mutex);
        if (conn->pending > 0 || conn->out_pos < conn->outbox.size()) {
          idle = false;
          break;
        }
      }
      if (idle || CancelToken::Clock::now() >= drain_deadline_) {
        while (!loop->conns.empty()) {
          CloseConn(loop, loop->conns.begin()->second);
        }
        return;
      }
    }
  }
}

void Server::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(lifecycle_mutex_);
    if (!started_) {
      stopped_ = true;
      stopped_cv_.notify_all();
      return;
    }
    if (stop_initiated_) {
      stopped_cv_.wait(lock, [this] { return stopped_; });
      return;
    }
    stop_initiated_ = true;
  }

  // Phase 1: stop accepting; new MINEs answer ERR SHUTDOWN.
  draining_.store(true, std::memory_order_release);
  for (auto& loop : loops_) loop->Wake();

  // Phase 2: let admitted work finish, bounded by the drain budget; past
  // it, the kill-switch unwinds in-flight plans at their poll points.
  const auto drain_deadline =
      CancelToken::Clock::now() +
      std::chrono::duration_cast<CancelToken::Clock::duration>(
          std::chrono::duration<double, std::milli>(options_.drain_timeout_ms));
  while (service_.inflight() > 0 &&
         CancelToken::Clock::now() < drain_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (service_.inflight() > 0) kill_.Cancel();

  // Phase 3: close the queue; the dispatcher drains what is left (the
  // killed work included) and exits.
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_closing_ = true;
  }
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();

  // Phase 4: flush outboxes and stop the event loops.
  drain_deadline_ =
      CancelToken::Clock::now() +
      std::chrono::duration_cast<CancelToken::Clock::duration>(
          std::chrono::duration<double, std::milli>(options_.drain_timeout_ms));
  io_stop_.store(true, std::memory_order_release);
  for (auto& loop : loops_) loop->Wake();
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }

  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    stopped_ = true;
  }
  stopped_cv_.notify_all();
}

void Server::Wait() {
  std::unique_lock<std::mutex> lock(lifecycle_mutex_);
  stopped_cv_.wait(lock, [this] { return stopped_; });
}

}  // namespace colarm
