#include "server/service.h"

#include <algorithm>

#include "common/string_util.h"
#include "core/cache_persist.h"

namespace colarm {

std::string RenderStatsPayload(const std::string& tenant_name,
                               const TenantStats& stats,
                               const CacheTelemetry* telemetry,
                               uint32_t tenant_inflight,
                               uint64_t global_inflight) {
  std::string out = StrFormat(
      "tenant %s\n"
      "mines %llu errors %llu rules %llu explains %llu busy %llu\n",
      tenant_name.c_str(), static_cast<unsigned long long>(stats.mines),
      static_cast<unsigned long long>(stats.mine_errors),
      static_cast<unsigned long long>(stats.rules),
      static_cast<unsigned long long>(stats.explains),
      static_cast<unsigned long long>(stats.busy_rejections));
  if (telemetry != nullptr) {
    out += StrFormat(
        "cache exact %llu containment %llu compose %llu memo %llu "
        "misses %llu evictions %llu admitrej %llu bytes %llu entries %llu\n",
        static_cast<unsigned long long>(telemetry->hits_exact),
        static_cast<unsigned long long>(telemetry->hits_containment),
        static_cast<unsigned long long>(telemetry->hits_compose),
        static_cast<unsigned long long>(telemetry->hits_count_memo),
        static_cast<unsigned long long>(telemetry->misses),
        static_cast<unsigned long long>(telemetry->evictions),
        static_cast<unsigned long long>(telemetry->admission_rejects),
        static_cast<unsigned long long>(telemetry->bytes),
        static_cast<unsigned long long>(telemetry->entries));
  } else {
    out += "cache disabled\n";
  }
  out += StrFormat("inflight tenant %u global %llu\n", tenant_inflight,
                   static_cast<unsigned long long>(global_inflight));
  return out;
}

Tenant::Tenant(const Engine& engine, std::string name,
               const QueryCacheOptions& cache_options)
    : name_(std::move(name)) {
  if (cache_options.enabled && cache_options.byte_budget > 0) {
    cache_ = std::make_unique<QueryCache>(engine.index(), cache_options);
  }
}

Service::Service(const Engine& engine, ServiceOptions options)
    : engine_(&engine), options_(options) {}

std::shared_ptr<Tenant> Service::GetTenant(const std::string& name) {
  std::lock_guard<std::mutex> lock(tenants_mutex_);
  auto it = tenants_.find(name);
  if (it != tenants_.end()) return it->second;
  auto tenant =
      std::make_shared<Tenant>(*engine_, name, options_.tenant_cache);
  if (!options_.cache_dir.empty() && tenant->cache() != nullptr) {
    // Warm start is strictly best-effort: a missing, corrupt, or
    // index-mismatched file leaves the tenant on a cold cache.
    (void)LoadQueryCache(engine_->index(), CachePathFor(name),
                         tenant->cache());
  }
  tenants_.emplace(name, tenant);
  return tenant;
}

std::string Service::CachePathFor(const std::string& tenant_name) const {
  // Tenant names come off the wire; anything outside [A-Za-z0-9_-] is
  // mapped to '_' so a hostile HELLO cannot traverse out of cache_dir.
  std::string file;
  file.reserve(tenant_name.size());
  for (char c : tenant_name) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_';
    file.push_back(safe ? c : '_');
  }
  return options_.cache_dir + "/" + file + ".ccache";
}

size_t Service::PersistCaches() const {
  if (options_.cache_dir.empty()) return 0;
  std::lock_guard<std::mutex> lock(tenants_mutex_);
  size_t saved = 0;
  for (const auto& [name, tenant] : tenants_) {
    if (tenant->cache() == nullptr) continue;
    if (SaveQueryCache(*tenant->cache(), engine_->index(), CachePathFor(name))
            .ok()) {
      ++saved;
    }
  }
  return saved;
}

bool Service::Admit(Tenant* tenant) {
  // Optimistic increments with rollback: both bounds are advisory load
  // limits, so a transient overshoot by a concurrent admitter is
  // harmless — the rollback keeps the steady-state counts exact.
  const uint64_t global = inflight_.fetch_add(1, std::memory_order_relaxed);
  if (global >= options_.max_inflight) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  const uint32_t mine =
      tenant->inflight_.fetch_add(1, std::memory_order_relaxed);
  if (mine >= options_.max_tenant_inflight) {
    tenant->inflight_.fetch_sub(1, std::memory_order_relaxed);
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void Service::Release(Tenant* tenant) {
  tenant->inflight_.fetch_sub(1, std::memory_order_relaxed);
  inflight_.fetch_sub(1, std::memory_order_relaxed);
}

void Service::NoteBusy(Tenant* tenant) {
  std::lock_guard<std::mutex> lock(tenant->stats_mutex_);
  tenant->stats_.busy_rejections++;
}

std::string Service::ExecuteSingleMine(Tenant* tenant,
                                       const MineRequest& request,
                                       const CancelToken* kill) {
  CancelToken token;
  token.SetParent(kill);
  if (request.has_deadline) token.SetDeadline(request.deadline);

  // A request whose deadline lapsed while queued fails here instead of
  // charging the engine for work the client already gave up on.
  if (token.Cancelled()) {
    std::lock_guard<std::mutex> lock(tenant->stats_mutex_);
    tenant->stats_.mines++;
    tenant->stats_.mine_errors++;
    return ErrResponse("DEADLINE", "deadline expired before execution");
  }

  SessionContext session;
  session.cache = tenant->cache();
  session.cancel = &token;
  Result<QueryResult> result = engine_->Execute(request.query, session);

  std::lock_guard<std::mutex> lock(tenant->stats_mutex_);
  tenant->stats_.mines++;
  if (!result.ok()) {
    tenant->stats_.mine_errors++;
    return ErrResponse(StatusErrCode(result.status()),
                       result.status().message());
  }
  tenant->stats_.rules += result->rules.rules.size();
  return OkResponse(
      RenderMineResult(engine_->index().dataset().schema(), *result));
}

std::vector<std::string> Service::ExecuteMineGroup(
    Tenant* tenant, std::span<const MineRequest> group,
    const CancelToken* kill) {
  std::vector<std::string> responses;
  responses.reserve(group.size());
  if (group.size() >= 2) {
    // Batch the group: subset sharing and duplicate reuse across the
    // tenant's pipelined requests, against the tenant's own cache. The
    // batch runs under the earliest deadline in the group; a batch-level
    // failure (one poisoned query fails the whole batch) falls through to
    // the per-request path below, which also honours each request's own
    // deadline.
    CancelToken token;
    token.SetParent(kill);
    for (const MineRequest& request : group) {
      if (!request.has_deadline) continue;
      if (!token.has_deadline() || request.deadline < token.deadline()) {
        token.SetDeadline(request.deadline);
      }
    }
    std::vector<LocalizedQuery> queries;
    queries.reserve(group.size());
    for (const MineRequest& request : group) queries.push_back(request.query);

    BatchOptions options;
    options.cache_override = tenant->cache();
    options.cancel = &token;
    BatchExecutor executor(*engine_);
    Result<BatchResult> batch = executor.Execute(queries, options);
    if (batch.ok()) {
      std::lock_guard<std::mutex> lock(tenant->stats_mutex_);
      for (const QueryResult& result : batch->results) {
        tenant->stats_.mines++;
        tenant->stats_.rules += result.rules.rules.size();
        responses.push_back(OkResponse(
            RenderMineResult(engine_->index().dataset().schema(), result)));
      }
      return responses;
    }
  }
  for (const MineRequest& request : group) {
    responses.push_back(ExecuteSingleMine(tenant, request, kill));
  }
  return responses;
}

std::string Service::ExecuteExplain(Tenant* tenant,
                                    const LocalizedQuery& query) {
  SessionContext session;
  session.cache = tenant->cache();
  Result<OptimizerDecision> decision = engine_->Explain(query, session);
  std::lock_guard<std::mutex> lock(tenant->stats_mutex_);
  tenant->stats_.explains++;
  if (!decision.ok()) {
    return ErrResponse(StatusErrCode(decision.status()),
                       decision.status().message());
  }
  return OkResponse(RenderExplain(*decision));
}

std::string Service::RenderStats(Tenant* tenant) const {
  CacheTelemetry telemetry;
  const bool has_cache = tenant->cache() != nullptr;
  if (has_cache) telemetry = tenant->cache()->telemetry();
  TenantStats stats;
  {
    std::lock_guard<std::mutex> lock(tenant->stats_mutex_);
    stats = tenant->stats_;
  }
  return OkResponse(RenderStatsPayload(
      tenant->name(), stats, has_cache ? &telemetry : nullptr,
      tenant->inflight(), inflight_.load(std::memory_order_relaxed)));
}

}  // namespace colarm
