#ifndef COLARM_SERVER_PROTOCOL_H_
#define COLARM_SERVER_PROTOCOL_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/engine.h"

namespace colarm {

/// The wire protocol of colarm_server: a line-oriented text dialect an
/// analyst can drive with `nc`.
///
/// Requests are single `\n`-terminated lines (a trailing `\r` is
/// stripped, so `telnet`-style CRLF clients work):
///
///   HELLO <tenant>          open / resume the tenant's session
///   MINE <query>            run a localized-rule query (paper §2.2 text)
///   EXPLAIN <query>         optimizer cost table, nothing executes
///   STATS                   tenant counters + session-cache telemetry
///   QUIT                    close the connection
///
/// Responses are length-delimited so clients can frame them without
/// sniffing payload content:
///
///   OK <nbytes>\n<nbytes of payload>
///   ERR <CODE> <message>\n
///
/// Every payload byte is deterministic — no wall-clock times, no
/// pointers — so a response can be diffed against a direct Engine
/// replay (the server_smoke contract).
///
/// Error codes:
///   BADCMD    unknown verb or malformed command line
///   NOHELLO   MINE/EXPLAIN/STATS before HELLO
///   REHELLO   second HELLO on the same connection
///   PARSE     query text rejected by ParseQuery
///   EXEC      execution failed (validation, internal)
///   BUSY      admission control rejected the request (fast-fail)
///   DEADLINE  per-request deadline expired (queued or mid-plan)
///   SHUTDOWN  server is draining; no new work accepted
///   TOOLONG   request line exceeded the size cap (line discarded,
///             session stays usable)

/// Incremental splitter of a TCP byte stream into protocol lines with an
/// upper bound on line length. Oversized lines are reported once, then
/// discarded through the next `\n`, after which framing resumes — a
/// misbehaving client cannot balloon server memory or wedge the session.
class LineFramer {
 public:
  explicit LineFramer(size_t max_line_bytes) : max_(max_line_bytes) {}

  /// Feeds freshly read bytes.
  void Append(const char* data, size_t n);

  enum class Event {
    kLine,      // *line holds a complete line (terminator stripped)
    kOversized, // a line blew the cap; it is being discarded
    kNeedMore,  // no complete line buffered
  };

  /// Pulls the next framing event. Call until kNeedMore.
  Event Next(std::string* line);

  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  size_t max_;
  std::string buffer_;
  bool discarding_ = false;
};

enum class Verb { kHello, kMine, kExplain, kStats, kQuit };

struct Command {
  Verb verb = Verb::kQuit;
  /// HELLO: tenant name. MINE/EXPLAIN: query text. Else empty.
  std::string arg;
};

/// Parses one request line (already stripped of the terminator). Verbs are
/// case-insensitive; arguments keep their case. Fails with kParseError on
/// unknown verbs, missing or extra arguments, and invalid tenant names
/// (tenants match [A-Za-z0-9_.-]{1,64}).
Result<Command> ParseCommandLine(std::string_view line);

/// "OK <nbytes>\n<payload>".
std::string OkResponse(std::string_view payload);

/// "ERR <CODE> <message>\n" — newlines in `message` become spaces so the
/// error always frames as one line.
std::string ErrResponse(std::string_view code, std::string_view message);

/// Protocol code for a failed Status (kParseError → PARSE,
/// kDeadlineExceeded → DEADLINE, everything else → EXEC).
const char* StatusErrCode(const Status& status);

/// Deterministic MINE payload: a one-line plan/cache summary followed by
/// the full rule listing. Excludes timings so server output is
/// byte-comparable with a direct-engine replay.
std::string RenderMineResult(const Schema& schema, const QueryResult& result);

/// Deterministic EXPLAIN payload (the optimizer's per-plan cost table).
std::string RenderExplain(const OptimizerDecision& decision);

}  // namespace colarm

#endif  // COLARM_SERVER_PROTOCOL_H_
