#ifndef COLARM_SERVER_SERVER_H_
#define COLARM_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/service.h"

namespace colarm {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; the bound port is available from port() after Start.
  uint16_t port = 0;
  /// Event-loop threads, each with its own epoll instance and its own
  /// SO_REUSEPORT listener (thread-per-core accept sharding). 0 = one per
  /// hardware thread, capped at 4.
  unsigned io_threads = 0;
  /// Request-line size cap; longer lines answer ERR TOOLONG and are
  /// discarded without desynchronizing the stream.
  size_t max_line_bytes = size_t{64} << 10;
  /// Most requests one dispatch takes off the queue at once; consecutive
  /// same-tenant MINEs within it execute as one BatchExecutor batch.
  uint32_t batch_max = 16;
  /// Graceful-shutdown budget: how long Shutdown waits for admitted work
  /// to finish before firing the kill-switch and force-closing.
  double drain_timeout_ms = 5000.0;
  ServiceOptions service;
};

/// Whole-server counters (monotonic; approximate under concurrency).
struct ServerStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> requests_admitted{0};
  std::atomic<uint64_t> busy_rejections{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> oversized_lines{0};
};

/// The multi-tenant COLARM query server (tools/colarm_server): epoll event
/// loops own the sockets and the protocol state machine; mining work is
/// admitted under the Service's bounds and handed to a dispatcher thread
/// that groups consecutive same-tenant requests into BatchExecutor batches
/// running against the tenant's own session cache. Responses are delivered
/// strictly in per-connection request order; cheap commands (HELLO,
/// EXPLAIN, STATS, QUIT) run inline on the event loop when the connection
/// has nothing in flight, and are queued behind its pending mines
/// otherwise.
///
/// Shutdown() drains gracefully: listeners close, new MINEs answer
/// ERR SHUTDOWN, admitted work finishes (bounded by drain_timeout_ms, then
/// the cooperative kill-switch unwinds in-flight plans as DEADLINE), the
/// outboxes flush, and every thread joins. Idempotent; the destructor
/// calls it.
class Server {
 public:
  /// The engine (and its dataset) must outlive the server.
  Server(const Engine& engine, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, spawns the event loops and the dispatcher. Fails with kIoError
  /// when the address cannot be bound.
  Status Start();

  /// The bound TCP port (after a successful Start).
  uint16_t port() const { return port_; }

  /// Blocks until a Shutdown (from any thread) has fully completed.
  void Wait();

  /// Graceful stop; safe to call from any thread, more than once.
  void Shutdown();

  Service& service() { return service_; }
  const ServerStats& stats() const { return stats_; }

 private:
  struct Conn;
  struct IoLoop;
  struct Pending;

  Status StartListener(IoLoop* loop, uint16_t port);
  void IoLoopMain(IoLoop* loop);
  void DispatcherMain();

  void AcceptReady(IoLoop* loop);
  void ReadReady(IoLoop* loop, const std::shared_ptr<Conn>& conn);
  void WriteReady(const std::shared_ptr<Conn>& conn);
  void CloseConn(IoLoop* loop, const std::shared_ptr<Conn>& conn);

  void HandleLine(IoLoop* loop, const std::shared_ptr<Conn>& conn,
                  const std::string& line);
  /// Routes a prebuilt response in per-connection order: inline when
  /// nothing is pending, queued behind the pending work otherwise.
  void RespondOrdered(const std::shared_ptr<Conn>& conn, std::string response,
                      bool quit_after = false);
  void EnqueuePending(Pending item);
  /// Appends one rendered response to the connection's outbox (dispatcher
  /// side) and flushes what the socket accepts.
  void Deliver(const std::shared_ptr<Conn>& conn, const std::string& response,
               bool quit_after = false);

  const Engine* engine_;
  ServerOptions options_;
  Service service_;
  ServerStats stats_;

  uint16_t port_ = 0;
  std::vector<std::unique_ptr<IoLoop>> loops_;
  std::thread dispatcher_;

  /// Drain kill-switch: parented by every request token; fired when the
  /// drain timeout lapses so stuck plans unwind cooperatively.
  CancelToken kill_;

  std::atomic<bool> draining_{false};  // listeners close, MINE -> SHUTDOWN
  std::atomic<bool> io_stop_{false};   // event loops flush and exit

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool queue_closing_ = false;  // guarded by queue_mutex_

  /// Budget for the final outbox-flush pass of the event loops; set by
  /// Shutdown before io_stop_ (release/acquire ordered).
  CancelToken::Clock::time_point drain_deadline_{};

  std::mutex lifecycle_mutex_;
  std::condition_variable stopped_cv_;
  bool started_ = false;
  bool stop_initiated_ = false;
  bool stopped_ = false;
};

}  // namespace colarm

#endif  // COLARM_SERVER_SERVER_H_
