#include "server/protocol.h"

#include <cstring>

#include "common/string_util.h"
#include "core/explain.h"

namespace colarm {

void LineFramer::Append(const char* data, size_t n) {
  if (discarding_) {
    // Keep only bytes past the next newline; everything before it belongs
    // to the oversized line being dropped.
    const char* end = data + n;
    const char* nl = static_cast<const char*>(memchr(data, '\n', n));
    if (nl == nullptr) return;
    discarding_ = false;
    data = nl + 1;
    n = static_cast<size_t>(end - data);
  }
  buffer_.append(data, n);
}

LineFramer::Event LineFramer::Next(std::string* line) {
  // While discarding, the oversize was already reported at the transition;
  // framing resumes once Append sees the terminating newline.
  if (discarding_) return Event::kNeedMore;
  const size_t nl = buffer_.find('\n');
  if (nl == std::string::npos) {
    if (buffer_.size() > max_) {
      buffer_.clear();
      discarding_ = true;
      return Event::kOversized;
    }
    return Event::kNeedMore;
  }
  if (nl > max_) {
    // Complete line, but over the cap: drop it whole and report.
    buffer_.erase(0, nl + 1);
    return Event::kOversized;
  }
  line->assign(buffer_, 0, nl);
  buffer_.erase(0, nl + 1);
  if (!line->empty() && line->back() == '\r') line->pop_back();
  return Event::kLine;
}

namespace {

bool ValidTenantName(std::string_view name) {
  if (name.empty() || name.size() > 64) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

Result<Command> ParseCommandLine(std::string_view line) {
  const std::string_view stripped = StripWhitespace(line);
  if (stripped.empty()) {
    return Status::ParseError("empty command line");
  }
  const size_t space = stripped.find_first_of(" \t");
  const std::string_view verb_text = stripped.substr(0, space);
  const std::string_view rest =
      space == std::string_view::npos
          ? std::string_view{}
          : StripWhitespace(stripped.substr(space + 1));

  Command cmd;
  if (EqualsIgnoreCase(verb_text, "HELLO")) {
    cmd.verb = Verb::kHello;
    if (!ValidTenantName(rest)) {
      return Status::ParseError(
          "HELLO needs a tenant name matching [A-Za-z0-9_.-]{1,64}");
    }
    cmd.arg = std::string(rest);
    return cmd;
  }
  if (EqualsIgnoreCase(verb_text, "MINE") ||
      EqualsIgnoreCase(verb_text, "EXPLAIN")) {
    cmd.verb =
        EqualsIgnoreCase(verb_text, "MINE") ? Verb::kMine : Verb::kExplain;
    if (rest.empty()) {
      return Status::ParseError(
          std::string(verb_text) + " needs a query argument");
    }
    cmd.arg = std::string(rest);
    return cmd;
  }
  if (EqualsIgnoreCase(verb_text, "STATS") ||
      EqualsIgnoreCase(verb_text, "QUIT")) {
    cmd.verb = EqualsIgnoreCase(verb_text, "STATS") ? Verb::kStats : Verb::kQuit;
    if (!rest.empty()) {
      return Status::ParseError(
          std::string(verb_text) + " takes no argument");
    }
    return cmd;
  }
  return Status::ParseError("unknown command: " + std::string(verb_text));
}

std::string OkResponse(std::string_view payload) {
  std::string out = StrFormat("OK %zu\n", payload.size());
  out.append(payload);
  return out;
}

std::string ErrResponse(std::string_view code, std::string_view message) {
  std::string flat(message);
  for (char& c : flat) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  std::string out = "ERR ";
  out.append(code);
  out.push_back(' ');
  out.append(flat);
  out.push_back('\n');
  return out;
}

const char* StatusErrCode(const Status& status) {
  switch (status.code()) {
    case StatusCode::kParseError:
      return "PARSE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE";
    default:
      return "EXEC";
  }
}

std::string RenderMineResult(const Schema& schema, const QueryResult& result) {
  std::string out = StrFormat(
      "plan %s rules %zu subset %u cache %s\n",
      PlanKindName(result.plan_used), result.rules.rules.size(),
      result.stats.subset_size, CacheTierName(result.decision.cache.tier));
  if (!result.decision.constraints.empty()) {
    std::string clauses = result.decision.constraints;
    if (clauses.rfind(" AND ", 0) == 0) clauses.erase(0, 5);
    out += "constraints " + clauses + "\n";
  }
  out += FormatRules(schema, result.rules, /*limit=*/0);
  return out;
}

std::string RenderExplain(const OptimizerDecision& decision) {
  return FormatDecision(decision);
}

}  // namespace colarm
