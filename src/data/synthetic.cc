#include "data/synthetic.h"

#include <algorithm>

#include "common/rng.h"
#include "common/string_util.h"

namespace colarm {

namespace {

// Sentinel group state meaning "use the attribute's dominant value".
constexpr uint32_t kDominantState = UINT32_MAX;

Status ValidateConfig(const SyntheticConfig& config) {
  if (config.num_records == 0) {
    return Status::InvalidArgument("num_records must be > 0");
  }
  if (config.num_attributes < 2) {
    return Status::InvalidArgument(
        "need at least the region attribute plus one item attribute");
  }
  if (config.values_per_attribute < 2) {
    return Status::InvalidArgument("values_per_attribute must be >= 2");
  }
  if (config.region_domain < 1) {
    return Status::InvalidArgument("region_domain must be >= 1");
  }
  if (config.num_modes < 1) {
    return Status::InvalidArgument("num_modes must be >= 1");
  }
  if (config.num_leaning >= config.num_attributes) {
    return Status::InvalidArgument(
        "num_leaning must leave at least one regular item attribute");
  }
  if (config.leaning_prob <= 0.0 || config.leaning_prob >= 1.0) {
    return Status::InvalidArgument("leaning_prob must be in (0, 1)");
  }
  for (const LocalPattern& p : config.local_patterns) {
    if (p.region_lo > p.region_hi || p.region_hi >= config.region_domain) {
      return Status::InvalidArgument("pattern region out of range");
    }
    for (AttrId a : p.attrs) {
      if (a == 0 || a >= config.num_attributes) {
        return Status::InvalidArgument(
            "pattern attributes must be item attributes (1..n-1)");
      }
      const uint32_t domain =
          (a <= config.num_leaning) ? 2 : config.values_per_attribute;
      if (p.pattern_value >= domain) {
        return Status::InvalidArgument("pattern value out of domain");
      }
    }
  }
  return Status::OK();
}

Schema MakeSchema(const SyntheticConfig& config) {
  std::vector<Attribute> attrs;
  attrs.reserve(config.num_attributes);
  Attribute region;
  region.name = "region";
  for (uint32_t v = 0; v < config.region_domain; ++v) {
    region.values.push_back(StrFormat("r%u", v));
  }
  attrs.push_back(std::move(region));
  for (uint32_t a = 1; a < config.num_attributes; ++a) {
    Attribute attr;
    const bool leaning = a <= config.num_leaning;
    attr.name = StrFormat(leaning ? "lean%u" : "a%u", a);
    const uint32_t domain = leaning ? 2 : config.values_per_attribute;
    for (uint32_t v = 0; v < domain; ++v) {
      attr.values.push_back(StrFormat("v%u", v));
    }
    attrs.push_back(std::move(attr));
  }
  return Schema(std::move(attrs));
}

}  // namespace

Result<Dataset> GenerateSynthetic(const SyntheticConfig& config) {
  COLARM_RETURN_IF_ERROR(ValidateConfig(config));
  Rng rng(config.seed);

  const uint32_t n = config.num_attributes;
  const uint32_t vals = config.values_per_attribute;

  // Per-attribute, per-mode dominant value. Mode 0 always dominates with
  // value 0; an attribute either shares that value across modes or gives
  // each mode its own dominant value.
  std::vector<std::vector<ValueId>> dominant(n,
                                             std::vector<ValueId>(config.num_modes, 0));
  for (uint32_t a = 1; a < n; ++a) {
    bool shared = rng.Bernoulli(config.mode_share_prob);
    for (uint32_t m = 1; m < config.num_modes; ++m) {
      dominant[a][m] = shared ? 0 : static_cast<ValueId>(m % vals);
    }
  }

  // Round-robin assignment of the regular item attributes to correlated
  // groups (leaning attributes are sampled independently).
  const uint32_t groups = std::max<uint32_t>(1, config.num_groups);
  std::vector<uint32_t> group_of(n, 0);
  for (uint32_t a = config.num_leaning + 1; a < n; ++a) {
    group_of[a] = (a - config.num_leaning - 1) % groups;
  }

  // Pattern lookup: patterns_by_attr[a] lists indexes of patterns touching a.
  std::vector<std::vector<size_t>> patterns_by_attr(n);
  for (size_t p = 0; p < config.local_patterns.size(); ++p) {
    for (AttrId a : config.local_patterns[p].attrs) {
      patterns_by_attr[a].push_back(p);
    }
  }

  Dataset dataset{MakeSchema(config)};
  std::vector<ValueId> record(n);
  std::vector<uint32_t> group_state(groups);

  for (uint32_t r = 0; r < config.num_records; ++r) {
    const ValueId region =
        static_cast<ValueId>(rng.Uniform(config.region_domain));
    record[0] = region;
    const uint32_t mode = static_cast<uint32_t>(rng.Uniform(config.num_modes));

    for (uint32_t g = 0; g < groups; ++g) {
      group_state[g] = rng.Bernoulli(config.dominant_prob)
                           ? kDominantState
                           : static_cast<uint32_t>(rng.Uniform(vals));
    }

    for (uint32_t a = 1; a < n; ++a) {
      const bool leaning = a <= config.num_leaning;
      const uint32_t domain = leaning ? 2 : vals;
      ValueId value = 0;
      bool from_pattern = false;
      for (size_t pi : patterns_by_attr[a]) {
        const LocalPattern& p = config.local_patterns[pi];
        if (region >= p.region_lo && region <= p.region_hi &&
            rng.Bernoulli(p.strength)) {
          value = p.pattern_value;
          from_pattern = true;
          break;
        }
      }
      if (!from_pattern) {
        if (leaning) {
          value = rng.Bernoulli(config.leaning_prob) ? 0 : 1;
        } else if (rng.Bernoulli(config.group_coherence)) {
          uint32_t state = group_state[group_of[a]];
          value = (state == kDominantState) ? dominant[a][mode]
                                            : static_cast<ValueId>(state);
        } else if (rng.Bernoulli(config.dominant_prob)) {
          value = dominant[a][mode];
        } else {
          value = static_cast<ValueId>(rng.Uniform(vals));
        }
      }
      if (config.noise > 0 && rng.Bernoulli(config.noise)) {
        value = static_cast<ValueId>(rng.Uniform(domain));
      }
      record[a] = value;
    }
    COLARM_RETURN_IF_ERROR(dataset.AddRecord(record));
  }
  return dataset;
}

SyntheticConfig ChessLikeConfig(double scale) {
  // Chess: 3196 records, 37 near-binary attributes, dense, unimodal CFI
  // length distribution; the paper builds its index at primary support 60%.
  SyntheticConfig config;
  config.name = "chess-like";
  config.seed = 7001;
  config.num_records =
      std::max<uint32_t>(64, static_cast<uint32_t>(3196 * scale));
  config.num_attributes = 26;
  config.num_leaning = 6;
  config.leaning_prob = 0.7;
  config.values_per_attribute = 3;
  config.region_domain = 100;
  config.num_modes = 1;
  config.dominant_prob = 0.92;
  config.num_groups = 4;
  config.group_coherence = 0.8;
  config.noise = 0.02;
  // Localized trends in three disjoint regions.
  config.local_patterns = {
      {0, 9, {8, 9, 10}, 2, 0.92},
      {40, 54, {14, 15}, 1, 0.9},
      {80, 99, {20, 21, 22}, 2, 0.88},
  };
  return config;
}

SyntheticConfig MushroomLikeConfig(double scale) {
  // Mushroom: 8124 records, 22 attributes, bi-modal CFI distribution
  // (edible/poisonous clusters); paper primary support 5%.
  SyntheticConfig config;
  config.name = "mushroom-like";
  config.seed = 7002;
  config.num_records =
      std::max<uint32_t>(64, static_cast<uint32_t>(8124 * scale));
  config.num_attributes = 14;
  config.num_leaning = 3;
  config.leaning_prob = 0.7;
  config.values_per_attribute = 5;
  config.region_domain = 100;
  config.num_modes = 2;
  config.mode_share_prob = 0.35;
  config.dominant_prob = 0.9;
  config.num_groups = 3;
  config.group_coherence = 0.9;
  config.noise = 0.015;
  config.local_patterns = {
      {10, 24, {5, 6}, 3, 0.9},
      {60, 79, {8, 9, 10}, 4, 0.85},
  };
  return config;
}

SyntheticConfig PumsbLikeConfig(double scale) {
  // PUMSB: 49046 records, 74 attributes, very dense; paper primary support
  // 80%. We keep the high density and large cardinality, with a wider
  // attribute set than the other two analogs.
  SyntheticConfig config;
  config.name = "pumsb-like";
  config.seed = 7003;
  config.num_records =
      std::max<uint32_t>(64, static_cast<uint32_t>(49046 * scale));
  config.num_attributes = 40;
  config.num_leaning = 6;
  config.leaning_prob = 0.7;
  config.values_per_attribute = 6;
  config.region_domain = 100;
  config.num_modes = 1;
  config.dominant_prob = 0.94;
  config.num_groups = 8;
  config.group_coherence = 0.65;
  config.noise = 0.01;
  config.local_patterns = {
      {0, 14, {10, 11, 12, 13}, 2, 0.9},
      {50, 69, {20, 21}, 3, 0.88},
  };
  return config;
}

}  // namespace colarm
