#ifndef COLARM_DATA_DATASET_H_
#define COLARM_DATA_DATASET_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "data/schema.h"
#include "data/types.h"

namespace colarm {

/// Column-major relational dataset. Every record has exactly one value per
/// attribute (the paper's relational model after discretization), so the
/// storage is one dense ValueId column per attribute.
class Dataset {
 public:
  explicit Dataset(Schema schema)
      : schema_(std::move(schema)), columns_(schema_.num_attributes()) {}

  const Schema& schema() const { return schema_; }
  uint32_t num_records() const { return num_records_; }
  uint32_t num_attributes() const { return schema_.num_attributes(); }

  /// Appends a record given one ValueId per attribute, in schema order.
  Status AddRecord(std::span<const ValueId> values);
  Status AddRecord(std::initializer_list<ValueId> values) {
    return AddRecord(std::span<const ValueId>(values.begin(), values.size()));
  }

  ValueId Value(Tid record, AttrId attr) const {
    return columns_[attr][record];
  }

  const std::vector<ValueId>& Column(AttrId attr) const {
    return columns_[attr];
  }

  /// True iff `record` carries item (attribute, value).
  bool ContainsItem(Tid record, ItemId item) const {
    AttrId a = schema_.AttrOfItem(item);
    return columns_[a][record] == schema_.ValueOfItem(item);
  }

  /// True iff `record` carries every item of the (sorted) itemset.
  bool ContainsAll(Tid record, std::span<const ItemId> itemset) const {
    for (ItemId item : itemset) {
      if (!ContainsItem(record, item)) return false;
    }
    return true;
  }

  /// Materializes one record as item ids (one per attribute, sorted).
  std::vector<ItemId> RecordItems(Tid record) const;

 private:
  Schema schema_;
  std::vector<std::vector<ValueId>> columns_;
  uint32_t num_records_ = 0;
};

}  // namespace colarm

#endif  // COLARM_DATA_DATASET_H_
