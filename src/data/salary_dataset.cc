#include "data/salary_dataset.h"

#include <cstdlib>

namespace colarm {

Dataset MakeSalaryDataset() {
  std::vector<Attribute> attrs = {
      {"Company", {"IBM", "Google", "Microsoft", "Facebook"}},
      {"Title",
       {"QA Lead", "Sw Engg", "Engg Mgr", "Tech Arch", "QA Mgr", "QA Engg"}},
      {"Location", {"Boston", "SFO", "Seattle"}},
      {"Gender", {"M", "F"}},
      {"Age", {"20-30", "30-40", "40-50"}},
      {"Salary", {"30K-60K", "60K-90K", "90K-120K", "120K-150K"}},
  };
  Dataset dataset{Schema(std::move(attrs))};
  // Rows exactly as printed in Table 1 of the paper.
  const ValueId rows[][6] = {
      {0, 0, 0, 0, 1, 1},  // IBM, QA Lead, Boston, M, 30-40, 60K-90K
      {0, 1, 0, 1, 0, 2},  // IBM, Sw Engg, Boston, F, 20-30, 90K-120K
      {0, 2, 1, 0, 0, 2},  // IBM, Engg Mgr, SFO, M, 20-30, 90K-120K
      {1, 1, 1, 1, 0, 2},  // Google, Sw Engg, SFO, F, 20-30, 90K-120K
      {1, 1, 0, 1, 0, 2},  // Google, Sw Engg, Boston, F, 20-30, 90K-120K
      {1, 1, 0, 0, 0, 2},  // Google, Sw Engg, Boston, M, 20-30, 90K-120K
      {1, 3, 0, 0, 2, 3},  // Google, Tech Arch, Boston, M, 40-50, 120K-150K
      {2, 2, 2, 1, 1, 2},  // Microsoft, Engg Mgr, Seattle, F, 30-40, 90K-120K
      {2, 1, 2, 1, 1, 2},  // Microsoft, Sw Engg, Seattle, F, 30-40, 90K-120K
      {3, 4, 2, 1, 1, 2},  // Facebook, QA Mgr, Seattle, F, 30-40, 90K-120K
      {3, 5, 2, 1, 0, 0},  // Facebook, QA Engg, Seattle, F, 20-30, 30K-60K
  };
  for (const auto& row : rows) {
    Status st = dataset.AddRecord(std::span<const ValueId>(row, 6));
    if (!st.ok()) std::abort();  // table is a compile-time constant
  }
  return dataset;
}

}  // namespace colarm
