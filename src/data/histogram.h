#ifndef COLARM_DATA_HISTOGRAM_H_
#define COLARM_DATA_HISTOGRAM_H_

#include <vector>

#include "data/dataset.h"
#include "data/types.h"

namespace colarm {

/// Exact per-value frequency histogram for one attribute. Because domains
/// are small categorical sets, we keep exact counts rather than bucketed
/// approximations; interval selectivity lookups are O(1) via prefix sums.
class ValueHistogram {
 public:
  ValueHistogram() = default;
  ValueHistogram(const Dataset& dataset, AttrId attr);

  uint32_t domain_size() const {
    return static_cast<uint32_t>(counts_.size());
  }
  uint64_t total() const { return total_; }
  uint64_t count(ValueId v) const { return counts_[v]; }

  /// Number of records with value in [lo, hi] (inclusive).
  uint64_t RangeCount(ValueId lo, ValueId hi) const;

  /// Fraction of records with value in [lo, hi]; 0 if the relation is empty.
  double Selectivity(ValueId lo, ValueId hi) const;

 private:
  std::vector<uint64_t> counts_;
  std::vector<uint64_t> prefix_;  // prefix_[v] = sum of counts_[0..v-1]
  uint64_t total_ = 0;
};

/// Exact joint frequency histogram for one attribute *pair* — the
/// correlation-aware refinement of the independence assumption. Kept only
/// for pairs whose domain product is small (configurable budget), which is
/// exactly where correlation errors hurt most.
class JointHistogram {
 public:
  JointHistogram() = default;
  JointHistogram(const Dataset& dataset, AttrId a, AttrId b);

  AttrId attr_a() const { return attr_a_; }
  AttrId attr_b() const { return attr_b_; }

  /// Records with value(a) in [alo, ahi] and value(b) in [blo, bhi].
  uint64_t RangeCount(ValueId alo, ValueId ahi, ValueId blo,
                      ValueId bhi) const;
  double Selectivity(ValueId alo, ValueId ahi, ValueId blo,
                     ValueId bhi) const;

 private:
  AttrId attr_a_ = 0;
  AttrId attr_b_ = 0;
  uint32_t domain_b_ = 0;
  std::vector<uint64_t> counts_;  // row-major [value_a][value_b]
  uint64_t total_ = 0;
};

struct HistogramOptions {
  /// Build a JointHistogram for every attribute pair whose domain product
  /// is at most this bound (0 disables joint histograms entirely).
  uint32_t max_joint_cells = 256;
};

/// Histograms for every attribute of a dataset, plus joint histograms for
/// small-domain attribute pairs. The cardinality estimator prefers joint
/// statistics where available and falls back to independence.
class DatasetHistograms {
 public:
  DatasetHistograms() = default;
  explicit DatasetHistograms(const Dataset& dataset,
                             const HistogramOptions& options = {});

  const ValueHistogram& attribute(AttrId a) const { return per_attr_[a]; }
  uint32_t num_attributes() const {
    return static_cast<uint32_t>(per_attr_.size());
  }

  /// Joint histogram for the (unordered) pair {a, b}, or nullptr when the
  /// pair exceeded the build budget.
  const JointHistogram* joint(AttrId a, AttrId b) const;
  size_t num_joint() const { return joint_.size(); }

 private:
  std::vector<ValueHistogram> per_attr_;
  // Sorted by (min attr, max attr) for binary search.
  std::vector<JointHistogram> joint_;
};

}  // namespace colarm

#endif  // COLARM_DATA_HISTOGRAM_H_
