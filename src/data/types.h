#ifndef COLARM_DATA_TYPES_H_
#define COLARM_DATA_TYPES_H_

#include <cstdint>

namespace colarm {

/// Index of an attribute (column) in a relation.
using AttrId = uint32_t;

/// Index of a discretized value within one attribute's domain.
using ValueId = uint16_t;

/// Global identifier of an item (one (attribute, value) pair). Item ids are
/// dense: items of attribute a occupy [item_base(a), item_base(a+1)).
using ItemId = uint32_t;

/// Record (tuple) identifier, dense in [0, num_records).
using Tid = uint32_t;

inline constexpr ItemId kInvalidItem = UINT32_MAX;

}  // namespace colarm

#endif  // COLARM_DATA_TYPES_H_
