#include "data/discretizer.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace colarm {

namespace {

std::vector<std::string> MakeLabels(const std::vector<double>& edges) {
  std::vector<std::string> labels;
  labels.reserve(edges.size() - 1);
  for (size_t i = 0; i + 1 < edges.size(); ++i) {
    const char* close = (i + 2 == edges.size()) ? "]" : ")";
    labels.push_back(
        StrFormat("[%g,%g%s", edges[i], edges[i + 1], close));
  }
  return labels;
}

}  // namespace

Result<Discretizer> Discretizer::Fit(const std::vector<double>& column,
                                     uint32_t num_bins, BinningScheme scheme) {
  if (column.empty()) {
    return Status::InvalidArgument("cannot discretize an empty column");
  }
  if (num_bins == 0) {
    return Status::InvalidArgument("num_bins must be >= 1");
  }
  for (double v : column) {
    if (std::isnan(v)) {
      return Status::InvalidArgument("column contains NaN");
    }
  }
  auto [min_it, max_it] = std::minmax_element(column.begin(), column.end());
  double lo = *min_it;
  double hi = *max_it;

  std::vector<double> edges;
  if (lo == hi) {
    edges = {lo, hi + 1.0};
  } else if (scheme == BinningScheme::kEquiWidth) {
    edges.reserve(num_bins + 1);
    for (uint32_t i = 0; i <= num_bins; ++i) {
      edges.push_back(lo + (hi - lo) * static_cast<double>(i) / num_bins);
    }
  } else {
    std::vector<double> sorted = column;
    std::sort(sorted.begin(), sorted.end());
    edges.push_back(lo);
    for (uint32_t i = 1; i < num_bins; ++i) {
      size_t idx = sorted.size() * i / num_bins;
      double edge = sorted[idx];
      if (edge > edges.back()) edges.push_back(edge);  // collapse ties
    }
    if (hi > edges.back()) {
      edges.push_back(hi);
    } else {
      // Degenerate tail: widen the last edge so the final bin is non-empty.
      edges.push_back(edges.back() + 1.0);
    }
  }
  std::vector<std::string> labels = MakeLabels(edges);
  return Discretizer(std::move(edges), std::move(labels));
}

ValueId Discretizer::Bin(double value) const {
  // upper_bound over interior edges gives the bin; clamp out-of-range.
  auto it = std::upper_bound(edges_.begin() + 1, edges_.end() - 1, value);
  size_t bin = static_cast<size_t>(it - (edges_.begin() + 1));
  if (bin >= labels_.size()) bin = labels_.size() - 1;
  return static_cast<ValueId>(bin);
}

}  // namespace colarm
