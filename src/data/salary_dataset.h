#ifndef COLARM_DATA_SALARY_DATASET_H_
#define COLARM_DATA_SALARY_DATASET_H_

#include "data/dataset.h"

namespace colarm {

/// The 11-record IT-salary example relation from Table 1 of the paper
/// (attributes Company, Title, Location, Gender, Age, Salary). It exhibits
/// the paper's running Simpson's-paradox example: globally Age=20-30 =>
/// Salary=90K-120K (45% support, 83% confidence), while for the female
/// Seattle subset the localized rule Age=30-40 => Salary=90K-120K holds
/// with 75% support and 100% confidence.
Dataset MakeSalaryDataset();

}  // namespace colarm

#endif  // COLARM_DATA_SALARY_DATASET_H_
