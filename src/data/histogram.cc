#include "data/histogram.h"

#include <algorithm>

namespace colarm {

ValueHistogram::ValueHistogram(const Dataset& dataset, AttrId attr) {
  counts_.assign(dataset.schema().attribute(attr).domain_size(), 0);
  for (ValueId v : dataset.Column(attr)) {
    ++counts_[v];
  }
  prefix_.resize(counts_.size() + 1, 0);
  for (size_t v = 0; v < counts_.size(); ++v) {
    prefix_[v + 1] = prefix_[v] + counts_[v];
  }
  total_ = prefix_.back();
}

uint64_t ValueHistogram::RangeCount(ValueId lo, ValueId hi) const {
  if (counts_.empty() || lo > hi) return 0;
  size_t hi_clamped = std::min<size_t>(hi, counts_.size() - 1);
  return prefix_[hi_clamped + 1] - prefix_[lo];
}

double ValueHistogram::Selectivity(ValueId lo, ValueId hi) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(RangeCount(lo, hi)) / static_cast<double>(total_);
}

JointHistogram::JointHistogram(const Dataset& dataset, AttrId a, AttrId b)
    : attr_a_(a),
      attr_b_(b),
      domain_b_(dataset.schema().attribute(b).domain_size()) {
  const uint32_t domain_a = dataset.schema().attribute(a).domain_size();
  counts_.assign(static_cast<size_t>(domain_a) * domain_b_, 0);
  const std::vector<ValueId>& col_a = dataset.Column(a);
  const std::vector<ValueId>& col_b = dataset.Column(b);
  for (Tid t = 0; t < dataset.num_records(); ++t) {
    ++counts_[static_cast<size_t>(col_a[t]) * domain_b_ + col_b[t]];
  }
  total_ = dataset.num_records();
}

uint64_t JointHistogram::RangeCount(ValueId alo, ValueId ahi, ValueId blo,
                                    ValueId bhi) const {
  if (alo > ahi || blo > bhi || domain_b_ == 0) return 0;
  const size_t domain_a = counts_.size() / domain_b_;
  const size_t a_end = std::min<size_t>(ahi, domain_a - 1);
  const size_t b_end = std::min<size_t>(bhi, domain_b_ - 1);
  uint64_t count = 0;
  for (size_t va = alo; va <= a_end; ++va) {
    for (size_t vb = blo; vb <= b_end; ++vb) {
      count += counts_[va * domain_b_ + vb];
    }
  }
  return count;
}

double JointHistogram::Selectivity(ValueId alo, ValueId ahi, ValueId blo,
                                   ValueId bhi) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(RangeCount(alo, ahi, blo, bhi)) /
         static_cast<double>(total_);
}

DatasetHistograms::DatasetHistograms(const Dataset& dataset,
                                     const HistogramOptions& options) {
  per_attr_.reserve(dataset.num_attributes());
  for (AttrId a = 0; a < dataset.num_attributes(); ++a) {
    per_attr_.emplace_back(dataset, a);
  }
  if (options.max_joint_cells == 0) return;
  const Schema& schema = dataset.schema();
  for (AttrId a = 0; a < dataset.num_attributes(); ++a) {
    for (AttrId b = a + 1; b < dataset.num_attributes(); ++b) {
      uint64_t cells = static_cast<uint64_t>(schema.attribute(a).domain_size()) *
                       schema.attribute(b).domain_size();
      if (cells <= options.max_joint_cells) {
        joint_.emplace_back(dataset, a, b);
      }
    }
  }
}

const JointHistogram* DatasetHistograms::joint(AttrId a, AttrId b) const {
  if (a > b) std::swap(a, b);
  for (const JointHistogram& jh : joint_) {
    if (jh.attr_a() == a && jh.attr_b() == b) return &jh;
  }
  return nullptr;
}

}  // namespace colarm
