#include "data/dataset.h"

#include "common/string_util.h"

namespace colarm {

Status Dataset::AddRecord(std::span<const ValueId> values) {
  if (values.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(StrFormat(
        "record has %zu values, schema has %u attributes", values.size(),
        schema_.num_attributes()));
  }
  for (AttrId a = 0; a < values.size(); ++a) {
    if (values[a] >= schema_.attribute(a).domain_size()) {
      return Status::OutOfRange(StrFormat(
          "value %u out of domain for attribute '%s' (size %u)", values[a],
          schema_.attribute(a).name.c_str(),
          schema_.attribute(a).domain_size()));
    }
  }
  for (AttrId a = 0; a < values.size(); ++a) {
    columns_[a].push_back(values[a]);
  }
  ++num_records_;
  return Status::OK();
}

std::vector<ItemId> Dataset::RecordItems(Tid record) const {
  std::vector<ItemId> items;
  items.reserve(schema_.num_attributes());
  for (AttrId a = 0; a < schema_.num_attributes(); ++a) {
    items.push_back(schema_.ItemOf(a, columns_[a][record]));
  }
  return items;  // item_base is increasing per attribute, so already sorted.
}

}  // namespace colarm
