#ifndef COLARM_DATA_SYNTHETIC_H_
#define COLARM_DATA_SYNTHETIC_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace colarm {

/// A planted localized pattern: records whose region value (attribute 0)
/// falls in [region_lo, region_hi] use `pattern_value` on each attribute in
/// `attrs` with probability `strength`. Because `pattern_value` is chosen
/// away from the global dominant value, the pattern is locally frequent but
/// globally rare — the Simpson's-paradox structure the paper studies.
struct LocalPattern {
  ValueId region_lo = 0;
  ValueId region_hi = 0;
  std::vector<AttrId> attrs;
  ValueId pattern_value = 1;
  double strength = 0.9;
};

/// Configuration for the deterministic relational generator that stands in
/// for the UCI chess / mushroom / PUMSB benchmark files (see DESIGN.md §4).
///
/// Attribute 0 is the "region" attribute: uniformly distributed over
/// `region_domain` values, so a focal subset covering k% of the region
/// domain selects ~k% of the records. Attributes 1..n-1 are skewed
/// categorical columns with a per-mode dominant value, organized into
/// correlated groups (which creates non-trivial closed-itemset structure).
struct SyntheticConfig {
  std::string name = "synthetic";
  uint64_t seed = 42;
  uint32_t num_records = 2000;
  uint32_t num_attributes = 12;  // including the region attribute
  uint32_t values_per_attribute = 4;
  uint32_t region_domain = 20;

  /// Global record modes. One mode gives chess/PUMSB-style unimodal CFI
  /// length distributions; two modes give mushroom-style bi-modal ones.
  uint32_t num_modes = 1;
  /// Probability that an attribute keeps the same dominant value in every
  /// mode (shared attributes glue the modes together).
  double mode_share_prob = 0.5;

  /// Attributes 1..num_leaning are "leaning" attributes: two values with
  /// P(v0) = leaning_prob, P(v1) = 1 - leaning_prob, sampled independently.
  /// They mimic the near-balanced features of chess/PUMSB: both values can
  /// be frequent, so prestored itemsets fix them to concrete values and
  /// range predicates over them let the R-tree filter prune candidates
  /// (range and item attributes share one pool, Section 1.2 of the paper).
  uint32_t num_leaning = 0;
  double leaning_prob = 0.6;

  /// Probability a cell takes its (mode-specific) dominant value.
  double dominant_prob = 0.85;

  /// Correlated attribute groups among attributes 1..n-1.
  uint32_t num_groups = 3;
  /// Probability a cell copies its group's per-record state instead of
  /// sampling independently; high coherence collapses many itemsets into
  /// few closed ones.
  double group_coherence = 0.5;

  /// Probability a cell is resampled uniformly at random at the end.
  double noise = 0.02;

  std::vector<LocalPattern> local_patterns;
};

/// Generates the dataset described by `config`. Deterministic in
/// `config.seed`. Returns InvalidArgument for inconsistent configs (e.g.
/// pattern attribute out of range).
Result<Dataset> GenerateSynthetic(const SyntheticConfig& config);

/// Presets mirroring the paper's three evaluation datasets. `scale`
/// multiplies the record count (1.0 = the UCI cardinalities: 3196 / 8124 /
/// 49046); attribute structure is tuned so closed-itemset counts span the
/// same orders of magnitude as the paper's Figure 8 when sweeping the
/// primary support thresholds the paper uses.
SyntheticConfig ChessLikeConfig(double scale = 1.0);
SyntheticConfig MushroomLikeConfig(double scale = 1.0);
SyntheticConfig PumsbLikeConfig(double scale = 1.0);

}  // namespace colarm

#endif  // COLARM_DATA_SYNTHETIC_H_
