#ifndef COLARM_DATA_CSV_READER_H_
#define COLARM_DATA_CSV_READER_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"
#include "data/discretizer.h"

namespace colarm {

/// Options controlling CSV ingestion.
struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
  /// Number of bins for columns inferred as numeric.
  uint32_t numeric_bins = 5;
  BinningScheme binning = BinningScheme::kEquiWidth;
};

/// Loads a relational CSV into a Dataset. Column types are inferred: a
/// column whose every non-empty field parses as a double is treated as
/// quantitative and discretized with `options.binning`; all other columns
/// are categorical with values ordered by first appearance. Empty fields
/// become the value "<missing>" (categorical) or the first bin (numeric).
Result<Dataset> ReadCsvFile(const std::string& path, const CsvOptions& options);

/// Same, parsing from an in-memory buffer (used by tests).
Result<Dataset> ReadCsvString(const std::string& contents,
                              const CsvOptions& options);

}  // namespace colarm

#endif  // COLARM_DATA_CSV_READER_H_
