#include "data/csv_reader.h"

#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/string_util.h"

namespace colarm {

namespace {

constexpr const char* kMissingLabel = "<missing>";

struct RawTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;  // row-major cells
};

Result<RawTable> ParseCells(const std::string& contents,
                            const CsvOptions& options) {
  RawTable table;
  std::istringstream in(contents);
  std::string line;
  bool saw_header = !options.has_header;
  size_t expected_cols = 0;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    std::vector<std::string> cells = SplitString(stripped, options.delimiter);
    for (std::string& cell : cells) {
      cell = std::string(StripWhitespace(cell));
    }
    if (!saw_header) {
      table.header = std::move(cells);
      expected_cols = table.header.size();
      saw_header = true;
      continue;
    }
    if (expected_cols == 0) {
      expected_cols = cells.size();
      // Synthesize header names col0..colN-1 when no header row exists.
      for (size_t i = 0; i < expected_cols; ++i) {
        table.header.push_back(StrFormat("col%zu", i));
      }
    }
    if (cells.size() != expected_cols) {
      return Status::ParseError(
          StrFormat("line %zu has %zu fields, expected %zu", line_no,
                    cells.size(), expected_cols));
    }
    table.rows.push_back(std::move(cells));
  }
  if (table.rows.empty()) {
    return Status::ParseError("CSV contains no data rows");
  }
  return table;
}

bool ColumnIsNumeric(const RawTable& table, size_t col) {
  bool any_value = false;
  for (const auto& row : table.rows) {
    const std::string& cell = row[col];
    if (cell.empty()) continue;
    double unused;
    if (!ParseDouble(cell, &unused)) return false;
    any_value = true;
  }
  return any_value;
}

}  // namespace

Result<Dataset> ReadCsvString(const std::string& contents,
                              const CsvOptions& options) {
  Result<RawTable> parsed = ParseCells(contents, options);
  if (!parsed.ok()) return parsed.status();
  const RawTable& table = parsed.value();
  const size_t num_cols = table.header.size();
  const size_t num_rows = table.rows.size();

  std::vector<bool> numeric(num_cols);
  for (size_t c = 0; c < num_cols; ++c) numeric[c] = ColumnIsNumeric(table, c);

  // Per-column encoders.
  std::vector<Attribute> attrs(num_cols);
  std::vector<Discretizer> discretizers;
  std::vector<int> discretizer_of(num_cols, -1);
  std::vector<std::map<std::string, ValueId>> cat_codes(num_cols);

  for (size_t c = 0; c < num_cols; ++c) {
    attrs[c].name = table.header[c];
    if (numeric[c]) {
      std::vector<double> column;
      column.reserve(num_rows);
      for (const auto& row : table.rows) {
        double v = 0.0;
        if (!row[c].empty()) ParseDouble(row[c], &v);
        column.push_back(v);
      }
      Result<Discretizer> disc =
          Discretizer::Fit(column, options.numeric_bins, options.binning);
      if (!disc.ok()) return disc.status();
      attrs[c].values = disc->labels();
      discretizer_of[c] = static_cast<int>(discretizers.size());
      discretizers.push_back(std::move(disc.value()));
    } else {
      for (const auto& row : table.rows) {
        const std::string& label = row[c].empty() ? kMissingLabel : row[c];
        auto [it, inserted] = cat_codes[c].try_emplace(
            label, static_cast<ValueId>(attrs[c].values.size()));
        if (inserted) attrs[c].values.push_back(label);
      }
    }
  }

  Dataset dataset{Schema(std::move(attrs))};
  std::vector<ValueId> record(num_cols);
  for (const auto& row : table.rows) {
    for (size_t c = 0; c < num_cols; ++c) {
      if (numeric[c]) {
        double v = 0.0;
        if (!row[c].empty()) ParseDouble(row[c], &v);
        record[c] = discretizers[discretizer_of[c]].Bin(v);
      } else {
        const std::string& label = row[c].empty() ? kMissingLabel : row[c];
        record[c] = cat_codes[c].at(label);
      }
    }
    COLARM_RETURN_IF_ERROR(dataset.AddRecord(record));
  }
  return dataset;
}

Result<Dataset> ReadCsvFile(const std::string& path,
                            const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadCsvString(buffer.str(), options);
}

}  // namespace colarm
