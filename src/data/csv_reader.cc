#include "data/csv_reader.h"

#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/string_util.h"

namespace colarm {

namespace {

constexpr const char* kMissingLabel = "<missing>";

struct RawTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;  // row-major cells
};

// RFC-4180 cell scanner. A field may be double-quoted, in which case it
// can carry the delimiter, newlines, and escaped quotes (`""`); whitespace
// around an unquoted cell is stripped (legacy behaviour), whitespace
// around a quoted section is ignored, whitespace inside quotes is
// preserved. Blank lines are skipped; a quote opening mid-field, content
// after a closing quote, and an unterminated quote are structured parse
// errors carrying the offending line number.
Result<RawTable> ParseCells(const std::string& contents,
                            const CsvOptions& options) {
  RawTable table;
  bool saw_header = !options.has_header;
  size_t expected_cols = 0;

  std::vector<std::string> cells;
  std::string cell;
  bool in_quotes = false;
  bool after_quote = false;    // closing quote seen; only ws may follow
  bool cell_was_quoted = false;
  bool record_meaningful = false;  // a delimiter, a quote, or non-ws content
  size_t line_no = 1;
  size_t record_line = 1;  // line the current record started on
  size_t quote_line = 0;   // line the current quoted section opened on

  auto finish_cell = [&] {
    if (!cell_was_quoted) cell = std::string(StripWhitespace(cell));
    cells.push_back(std::move(cell));
    cell.clear();
    cell_was_quoted = false;
    after_quote = false;
  };
  auto emit_record = [&]() -> Status {
    finish_cell();
    std::vector<std::string> row = std::move(cells);
    cells.clear();
    if (!saw_header) {
      table.header = std::move(row);
      expected_cols = table.header.size();
      saw_header = true;
      return Status::OK();
    }
    if (expected_cols == 0) {
      expected_cols = row.size();
      // Synthesize header names col0..colN-1 when no header row exists.
      for (size_t i = 0; i < expected_cols; ++i) {
        table.header.push_back(StrFormat("col%zu", i));
      }
    }
    if (row.size() != expected_cols) {
      return Status::ParseError(
          StrFormat("line %zu has %zu fields, expected %zu", record_line,
                    row.size(), expected_cols));
    }
    table.rows.push_back(std::move(row));
    return Status::OK();
  };

  const size_t n = contents.size();
  size_t i = 0;
  while (i < n) {
    const char c = contents[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && contents[i + 1] == '"') {
          cell.push_back('"');  // escaped quote
          i += 2;
          continue;
        }
        in_quotes = false;
        after_quote = true;
        ++i;
        continue;
      }
      if (c == '\n') ++line_no;
      cell.push_back(c);
      ++i;
      continue;
    }
    if (c == '"') {
      if (after_quote) {
        return Status::ParseError(StrFormat(
            "line %zu: content after closing quote", line_no));
      }
      if (!StripWhitespace(cell).empty() || cell_was_quoted) {
        return Status::ParseError(StrFormat(
            "line %zu: quote opens in the middle of a field", line_no));
      }
      cell.clear();  // drop the whitespace preceding the quoted section
      in_quotes = true;
      cell_was_quoted = true;
      record_meaningful = true;
      quote_line = line_no;
      ++i;
      continue;
    }
    if (after_quote && c != options.delimiter && c != '\n' &&
        !(c == '\r' && i + 1 < n && contents[i + 1] == '\n')) {
      if (c == ' ' || c == '\t') {
        ++i;
        continue;
      }
      return Status::ParseError(
          StrFormat("line %zu: content after closing quote", line_no));
    }
    if (c == options.delimiter) {
      record_meaningful = true;
      finish_cell();
      ++i;
      continue;
    }
    if (c == '\r' && i + 1 < n && contents[i + 1] == '\n') {
      ++i;  // CRLF: the newline branch below consumes the '\n'
      continue;
    }
    if (c == '\n') {
      ++line_no;
      ++i;
      if (!record_meaningful) {
        // Blank (or all-whitespace) line: skip without emitting.
        cell.clear();
        record_line = line_no;
        continue;
      }
      COLARM_RETURN_IF_ERROR(emit_record());
      record_meaningful = false;
      record_line = line_no;
      continue;
    }
    cell.push_back(c);
    if (c != ' ' && c != '\t' && c != '\r') record_meaningful = true;
    ++i;
  }
  if (in_quotes) {
    return Status::ParseError(
        StrFormat("line %zu: unterminated quoted field", quote_line));
  }
  if (record_meaningful) {
    COLARM_RETURN_IF_ERROR(emit_record());  // no trailing newline
  }

  if (table.rows.empty()) {
    return Status::ParseError("CSV contains no data rows");
  }
  return table;
}

bool ColumnIsNumeric(const RawTable& table, size_t col) {
  bool any_value = false;
  for (const auto& row : table.rows) {
    const std::string& cell = row[col];
    if (cell.empty()) continue;
    double unused;
    if (!ParseDouble(cell, &unused)) return false;
    any_value = true;
  }
  return any_value;
}

}  // namespace

Result<Dataset> ReadCsvString(const std::string& contents,
                              const CsvOptions& options) {
  Result<RawTable> parsed = ParseCells(contents, options);
  if (!parsed.ok()) return parsed.status();
  const RawTable& table = parsed.value();
  const size_t num_cols = table.header.size();
  const size_t num_rows = table.rows.size();

  std::vector<bool> numeric(num_cols);
  for (size_t c = 0; c < num_cols; ++c) numeric[c] = ColumnIsNumeric(table, c);

  // Per-column encoders.
  std::vector<Attribute> attrs(num_cols);
  std::vector<Discretizer> discretizers;
  std::vector<int> discretizer_of(num_cols, -1);
  std::vector<std::map<std::string, ValueId>> cat_codes(num_cols);

  for (size_t c = 0; c < num_cols; ++c) {
    attrs[c].name = table.header[c];
    if (numeric[c]) {
      std::vector<double> column;
      column.reserve(num_rows);
      for (const auto& row : table.rows) {
        double v = 0.0;
        if (!row[c].empty()) ParseDouble(row[c], &v);
        column.push_back(v);
      }
      Result<Discretizer> disc =
          Discretizer::Fit(column, options.numeric_bins, options.binning);
      if (!disc.ok()) return disc.status();
      attrs[c].values = disc->labels();
      discretizer_of[c] = static_cast<int>(discretizers.size());
      discretizers.push_back(std::move(disc.value()));
    } else {
      for (const auto& row : table.rows) {
        const std::string& label = row[c].empty() ? kMissingLabel : row[c];
        auto [it, inserted] = cat_codes[c].try_emplace(
            label, static_cast<ValueId>(attrs[c].values.size()));
        if (inserted) attrs[c].values.push_back(label);
      }
    }
  }

  Dataset dataset{Schema(std::move(attrs))};
  std::vector<ValueId> record(num_cols);
  for (const auto& row : table.rows) {
    for (size_t c = 0; c < num_cols; ++c) {
      if (numeric[c]) {
        double v = 0.0;
        if (!row[c].empty()) ParseDouble(row[c], &v);
        record[c] = discretizers[discretizer_of[c]].Bin(v);
      } else {
        const std::string& label = row[c].empty() ? kMissingLabel : row[c];
        record[c] = cat_codes[c].at(label);
      }
    }
    COLARM_RETURN_IF_ERROR(dataset.AddRecord(record));
  }
  return dataset;
}

Result<Dataset> ReadCsvFile(const std::string& path,
                            const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadCsvString(buffer.str(), options);
}

}  // namespace colarm
