#ifndef COLARM_DATA_DISCRETIZER_H_
#define COLARM_DATA_DISCRETIZER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/types.h"

namespace colarm {

/// How numeric columns are partitioned into ordered bins. Discretization is
/// an offline, orthogonal step in the paper (Srikant & Agrawal style); both
/// standard schemes are provided.
enum class BinningScheme {
  kEquiWidth,  // bins of equal numeric width
  kEquiDepth,  // bins holding (approximately) equal record counts
};

/// Maps a numeric column to ordered ValueIds via precomputed bin edges.
/// Bin i covers [edge(i), edge(i+1)), with the final bin closed on the
/// right so the column maximum lands in the last bin.
class Discretizer {
 public:
  /// Computes bin edges from the data. Requires num_bins >= 1 and a
  /// non-empty column. Equi-depth edges are taken at quantile boundaries;
  /// duplicate edges (heavy ties) are collapsed, so the realized bin count
  /// can be smaller than requested.
  static Result<Discretizer> Fit(const std::vector<double>& column,
                                 uint32_t num_bins, BinningScheme scheme);

  /// Bin index for a value (values outside the fitted range clamp to the
  /// first/last bin).
  ValueId Bin(double value) const;

  uint32_t num_bins() const { return static_cast<uint32_t>(labels_.size()); }

  /// Human-readable bin labels, e.g. "[20.0,30.0)".
  const std::vector<std::string>& labels() const { return labels_; }
  const std::vector<double>& edges() const { return edges_; }

 private:
  Discretizer(std::vector<double> edges, std::vector<std::string> labels)
      : edges_(std::move(edges)), labels_(std::move(labels)) {}

  std::vector<double> edges_;  // size num_bins()+1, strictly increasing
  std::vector<std::string> labels_;
};

}  // namespace colarm

#endif  // COLARM_DATA_DISCRETIZER_H_
