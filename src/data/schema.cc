#include "data/schema.h"

namespace colarm {

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {
  item_base_.reserve(attributes_.size() + 1);
  ItemId next = 0;
  for (const Attribute& attr : attributes_) {
    item_base_.push_back(next);
    next += attr.domain_size();
  }
  item_base_.push_back(next);
  num_items_ = next;
  item_attr_.resize(num_items_);
  for (AttrId a = 0; a < attributes_.size(); ++a) {
    for (ItemId i = item_base_[a]; i < item_base_[a + 1]; ++i) {
      item_attr_[i] = a;
    }
  }
}

Result<AttrId> Schema::AttrIdByName(const std::string& name) const {
  for (AttrId a = 0; a < attributes_.size(); ++a) {
    if (attributes_[a].name == name) return a;
  }
  return Status::NotFound("no attribute named '" + name + "'");
}

Result<ValueId> Schema::ValueIdByLabel(AttrId a,
                                       const std::string& label) const {
  if (a >= attributes_.size()) {
    return Status::OutOfRange("attribute id out of range");
  }
  const Attribute& attr = attributes_[a];
  for (uint32_t v = 0; v < attr.values.size(); ++v) {
    if (attr.values[v] == label) return static_cast<ValueId>(v);
  }
  return Status::NotFound("attribute '" + attr.name + "' has no value '" +
                          label + "'");
}

std::string Schema::ItemToString(ItemId item) const {
  AttrId a = AttrOfItem(item);
  ValueId v = ValueOfItem(item);
  return attributes_[a].name + "=" + attributes_[a].values[v];
}

}  // namespace colarm
