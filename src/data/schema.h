#ifndef COLARM_DATA_SCHEMA_H_
#define COLARM_DATA_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/types.h"

namespace colarm {

/// One categorical (or discretized quantitative) attribute: a name plus an
/// ordered list of value labels. Value order matters: focal subsets select
/// contiguous value-id intervals, so discretizers emit bins in domain order.
struct Attribute {
  std::string name;
  std::vector<std::string> values;

  uint32_t domain_size() const { return static_cast<uint32_t>(values.size()); }
};

/// Relation schema: the attribute list plus the global item-id space that
/// maps every (attribute, value) pair to a dense ItemId. Items of attribute
/// `a` occupy the contiguous id range [item_base(a), item_base(a+1)).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes);

  uint32_t num_attributes() const {
    return static_cast<uint32_t>(attributes_.size());
  }
  uint32_t num_items() const { return num_items_; }

  const Attribute& attribute(AttrId a) const { return attributes_[a]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Dense item id of (attribute a, value v).
  ItemId ItemOf(AttrId a, ValueId v) const { return item_base_[a] + v; }
  ItemId item_base(AttrId a) const { return item_base_[a]; }

  /// Inverse mapping: which attribute / value an item id denotes.
  AttrId AttrOfItem(ItemId item) const { return item_attr_[item]; }
  ValueId ValueOfItem(ItemId item) const {
    return static_cast<ValueId>(item - item_base_[item_attr_[item]]);
  }

  /// Attribute index by name; kInvalidItem-like sentinel via Result.
  Result<AttrId> AttrIdByName(const std::string& name) const;
  /// Value index of `label` within attribute `a`.
  Result<ValueId> ValueIdByLabel(AttrId a, const std::string& label) const;

  /// "Attr=value" rendering of an item, e.g. "Age=20-30".
  std::string ItemToString(ItemId item) const;

 private:
  std::vector<Attribute> attributes_;
  std::vector<ItemId> item_base_;   // size num_attributes()+1
  std::vector<AttrId> item_attr_;   // size num_items()
  uint32_t num_items_ = 0;
};

}  // namespace colarm

#endif  // COLARM_DATA_SCHEMA_H_
