#include "cost/calibration.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "bitmap/bitmap.h"
#include "common/timer.h"
#include "mining/itemset.h"
#include "mining/tidset.h"
#include "rtree/rect.h"

namespace colarm {

namespace {

// Per-iteration cost in nanoseconds: after one warm-up call (cache and
// frequency ramp), the *minimum* of several repetitions — the standard
// robust micro-benchmark estimator, so plan selection does not wobble with
// transient machine load.
template <typename Op>
double MeasureNs(uint64_t iters_per_call, uint64_t calls, Op op) {
  uint64_t guard = op();  // warm-up
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 5; ++rep) {
    Timer timer;
    for (uint64_t c = 0; c < calls; ++c) guard += op();
    best = std::min(best, static_cast<double>(timer.ElapsedNanos()));
  }
  // Keep the side effect alive without printing it.
  if (guard == UINT64_MAX) best += 1.0;
  double denom = static_cast<double>(iters_per_call * calls);
  return denom > 0 ? best / denom : 0.0;
}

}  // namespace

CostConstants Calibrate(const Dataset& dataset) {
  CostConstants constants;
  const uint32_t m = dataset.num_records();
  const uint32_t n = dataset.num_attributes();
  if (m < 4 || n < 2) return constants;
  const Schema& schema = dataset.schema();

  // Record-level containment probes mimicking ELIMINATE's real access
  // pattern: a multi-item itemset checked over a strided (non-contiguous)
  // tid sample, which is what a focal subset's tid list looks like.
  const uint32_t sample = std::min<uint32_t>(m, 4096);
  std::vector<Tid> strided;
  strided.reserve(sample / 2 + 1);
  for (uint32_t i = 0; i < sample / 2; ++i) {
    strided.push_back((i * 2 + i % 3) % m);
  }
  if (strided.empty()) strided.push_back(0);
  // Early exit means a typical candidate costs ~2 item probes per record
  // (the cost model's kAvgEliminateChecks); normalize accordingly so the
  // constant stays "ns per item probe".
  Itemset probe_items = {schema.ItemOf(n / 2, 0), schema.ItemOf(n - 1, 0)};
  constants.record_item_check_ns = std::max(
      0.2, MeasureNs(strided.size() * 2, 16, [&]() -> uint64_t {
        uint64_t hits = 0;
        for (Tid t : strided) {
          hits += dataset.ContainsAll(t, probe_items) ? 1 : 0;
        }
        return hits;
      }));
  constants.select_record_ns = constants.record_item_check_ns * 1.5;

  // Box-vs-box intersection tests at the schema's dimensionality.
  Rect full = Rect::FullDomain(schema);
  Rect half = full;
  for (uint32_t d = 0; d < n; ++d) {
    half.SetInterval(d, 0, static_cast<ValueId>(full.hi(d) / 2));
  }
  constants.rtree_box_check_ns = std::max(
      1.0, MeasureNs(1024, 64, [&]() -> uint64_t {
        uint64_t hits = 0;
        for (uint32_t i = 0; i < 1024; ++i) {
          hits += full.Intersects(half) ? 1 : 0;
        }
        return hits;
      }));

  // Tidset intersection throughput stands in for CHARM's per-cell work.
  Tidset a(2048);
  Tidset b(2048);
  for (uint32_t i = 0; i < 2048; ++i) {
    a[i] = 2 * i;
    b[i] = 3 * i;
  }
  constants.mine_cell_ns = std::max(
      0.3, MeasureNs(4096, 32, [&]() -> uint64_t {
        return TidsetIntersectSize(a, b);
      }));

  // Word-parallel AND+popcount throughput, the unit of every kBitmap
  // operator (DQ materialization, ELIMINATE counts, VERIFY subset DFS).
  // Bitmap::AndCount routes through the dispatched SIMD kernel table, so
  // this constant automatically prices the ISA level active at build time
  // (COLARM_SIMD / SetActiveSimdLevel) — a vectorized host calibrates a
  // proportionally cheaper bitmap backend, a forced-scalar run a dearer
  // one, and the optimizer's crossover points move with it.
  constexpr uint32_t kBitmapBits = 512 * Bitmap::kBitsPerWord;
  Bitmap bits_a(kBitmapBits);
  Bitmap bits_b(kBitmapBits);
  for (uint32_t i = 0; i < kBitmapBits; i += 3) bits_a.Set(i);
  for (uint32_t i = 0; i < kBitmapBits; i += 5) bits_b.Set(i);
  constants.bitmap_word_ns = std::max(
      0.05, MeasureNs(bits_a.num_words(), 64, [&]() -> uint64_t {
        return Bitmap::AndCount(bits_a, bits_b);
      }));

  // Rule checks are dominated by a subset lookup plus a division; model as
  // a small multiple of the containment probe.
  constants.rule_check_ns = 12.0 * constants.record_item_check_ns;
  return constants;
}

}  // namespace colarm
