#ifndef COLARM_COST_CARDINALITY_H_
#define COLARM_COST_CARDINALITY_H_

#include "data/histogram.h"
#include "plans/query.h"

namespace colarm {

/// Estimates |DQ| and per-attribute selectivities from the offline value
/// histograms under attribute independence — the constant-time inputs the
/// optimizer needs without touching the records.
class CardinalityEstimator {
 public:
  CardinalityEstimator(const Schema& schema,
                       const DatasetHistograms& histograms,
                       uint32_t num_records)
      : schema_(&schema), histograms_(&histograms), num_records_(num_records) {}

  /// Fraction of records expected to satisfy every range predicate.
  double SubsetFraction(const LocalizedQuery& query) const;

  /// Estimated |DQ| (>= 1 whenever any record can match).
  double SubsetSize(const LocalizedQuery& query) const;

  /// Per-attribute normalized query extents (1.0 for unconstrained
  /// attributes) — the D^Q_avg terms of the cost formulas.
  std::vector<double> QueryExtents(const LocalizedQuery& query) const;

  const Schema& schema() const { return *schema_; }

 private:
  const Schema* schema_;
  const DatasetHistograms* histograms_;
  uint32_t num_records_;
};

}  // namespace colarm

#endif  // COLARM_COST_CARDINALITY_H_
