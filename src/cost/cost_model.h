#ifndef COLARM_COST_COST_MODEL_H_
#define COLARM_COST_COST_MODEL_H_

#include <array>
#include <string>

#include "cost/calibration.h"
#include "cost/cardinality.h"
#include "mip/index_stats.h"
#include "plans/plans.h"

namespace colarm {

/// How the session cache would serve a query's focal subset.
enum class CacheTier {
  kNone,         // cold: full relation scan
  kExact,        // a cached subset with the identical box
  kContainment,  // a cached subset whose box contains the query's
  kCompose,      // tier 2.5: assembled from several overlapping entries
};

const char* CacheTierName(CacheTier tier);

/// What the session cache reports to the optimizer before planning: the
/// reuse tier the SELECT stage would hit, and the size of the cached
/// subset a containment hit would filter instead of scanning the
/// relation. Recorded in the decision as the cache-provenance field.
struct CacheHint {
  CacheTier tier = CacheTier::kNone;
  /// |cached subset| the derive step touches (exact: the subset itself;
  /// compose: the summed tid-run length the combine walks).
  double cached_size = 0.0;
  /// Attributes whose interval actually narrowed (containment only) —
  /// the bitmap delta-filter ANDs one range-OR per such attribute.
  uint32_t delta_attrs = 0;
  /// Resident entries a tier-2.5 composition combines (compose only).
  uint32_t compose_sources = 0;
};

/// Constant-time cost estimate of one plan for one query, in pseudo-
/// nanoseconds, with the operator breakdown the paper's Equations 1-6
/// prescribe.
struct PlanCostEstimate {
  PlanKind plan = PlanKind::kSEV;
  double total = 0.0;

  double select = 0.0;
  double search = 0.0;
  double eliminate = 0.0;
  double verify = 0.0;
  double mine = 0.0;

  // Intermediate cardinalities (exposed for EXPLAIN output and tests).
  double est_subset_size = 0.0;
  double est_candidates = 0.0;
  double est_contained = 0.0;
  double est_qualified = 0.0;

  std::string ToString() const;
};

/// Implements the paper's plan cost formulas over the precomputed
/// IndexStats, the histogram-based cardinality estimator, and calibrated
/// unit costs. Estimating all six plans is a handful of closed-form
/// evaluations — no data access.
class CostModel {
 public:
  /// `backend` selects which per-operator unit costs price the record-level
  /// terms: row scans (kScalar) or word-parallel bitmap kernels (kBitmap).
  /// Cardinalities and formulas are backend-free; only the unit costs move.
  CostModel(const IndexStats& stats, const CardinalityEstimator& cardinality,
            CostConstants constants,
            ExecBackend backend = ExecBackend::kScalar)
      : stats_(&stats),
        cardinality_(&cardinality),
        constants_(constants),
        backend_(backend) {}

  /// `hint` (when non-null) reprices the SELECT term with what the session
  /// cache would actually do — an exact-hit copy or a containment delta
  /// filter instead of the cold relation scan. SELECT is additive and
  /// plan-uniform across all six plans, so the repricing moves every total
  /// by the same amount and provably never changes which plan wins; it only
  /// makes the absolute estimates honest for EXPLAIN and accuracy studies.
  PlanCostEstimate Estimate(PlanKind kind, const LocalizedQuery& query,
                            const CacheHint* hint = nullptr) const;

  std::array<PlanCostEstimate, 6> EstimateAll(
      const LocalizedQuery& query, const CacheHint* hint = nullptr) const;

  const CostConstants& constants() const { return constants_; }
  const CardinalityEstimator& cardinality() const { return *cardinality_; }

 private:
  /// Expected R-tree node accesses (Theodoridis & Sellis / Lemma 4.1
  /// machinery). `pass_fraction` < 1 models the supported filter.
  double ExpectedNodeAccesses(const std::vector<double>& query_extents,
                              double pass_fraction) const;

  /// Lemma 4.1: expected number of MIPs intersecting the focal box.
  double ExpectedCandidates(const std::vector<double>& query_extents) const;

  /// Probability a MIP bbox is fully contained in the focal box under the
  /// uniform-position model.
  double ContainedFraction(const std::vector<double>& query_extents) const;

  /// Fraction of candidates surviving the *local* minsupport check
  /// (Lemma 4.2 refinement via the stored support distribution).
  double QualifiedFraction(const LocalizedQuery& query) const;

  /// Fraction of MIPs whose items all lie on allowed item attributes.
  double ItemAttrFraction(const LocalizedQuery& query) const;

  double RulesPerItemset() const;

  const IndexStats* stats_;
  const CardinalityEstimator* cardinality_;
  CostConstants constants_;
  ExecBackend backend_ = ExecBackend::kScalar;
};

}  // namespace colarm

#endif  // COLARM_COST_COST_MODEL_H_
