#include "cost/cardinality.h"

#include <algorithm>

namespace colarm {

double CardinalityEstimator::SubsetFraction(const LocalizedQuery& query) const {
  // Greedily cover constrained attributes with joint (pairwise)
  // histograms where available — exact for the covered pair, independence
  // across the remaining factors.
  const auto& ranges = query.ranges;
  std::vector<bool> used(ranges.size(), false);
  double fraction = 1.0;
  for (size_t i = 0; i < ranges.size(); ++i) {
    if (used[i]) continue;
    bool paired = false;
    for (size_t j = i + 1; j < ranges.size() && !paired; ++j) {
      if (used[j]) continue;
      const JointHistogram* joint =
          histograms_->joint(ranges[i].attr, ranges[j].attr);
      if (joint == nullptr) continue;
      // RangeCount expects (attr_a, attr_b) in the histogram's order.
      const RangeSelection& first =
          joint->attr_a() == ranges[i].attr ? ranges[i] : ranges[j];
      const RangeSelection& second =
          joint->attr_a() == ranges[i].attr ? ranges[j] : ranges[i];
      fraction *= joint->Selectivity(first.lo, first.hi, second.lo,
                                     second.hi);
      used[i] = used[j] = true;
      paired = true;
    }
    if (!paired) {
      fraction *= histograms_->attribute(ranges[i].attr)
                      .Selectivity(ranges[i].lo, ranges[i].hi);
      used[i] = true;
    }
  }
  return fraction;
}

double CardinalityEstimator::SubsetSize(const LocalizedQuery& query) const {
  double size = SubsetFraction(query) * num_records_;
  return std::max(size, 0.0);
}

std::vector<double> CardinalityEstimator::QueryExtents(
    const LocalizedQuery& query) const {
  std::vector<double> extents(schema_->num_attributes(), 1.0);
  for (const RangeSelection& range : query.ranges) {
    uint32_t domain = schema_->attribute(range.attr).domain_size();
    extents[range.attr] =
        static_cast<double>(range.hi - range.lo + 1) / domain;
  }
  return extents;
}

}  // namespace colarm
