#ifndef COLARM_COST_CALIBRATION_H_
#define COLARM_COST_CALIBRATION_H_

#include "data/dataset.h"

namespace colarm {

/// Unit costs (nanoseconds per primitive operation) that scale the paper's
/// cost formulas into comparable time estimates. Defaults approximate a
/// modern core; Calibrate() refines them with short micro-measurements on
/// the actual machine and data at index-build time.
struct CostConstants {
  double rtree_box_check_ns = 25.0;    // one box-vs-box intersection test
  double record_item_check_ns = 2.5;   // one record/item containment probe
  double rule_check_ns = 40.0;         // one antecedent lookup + compare
  double select_record_ns = 4.0;       // SELECT membership test per record
  double mine_cell_ns = 6.0;           // CHARM work per record-item cell
  double union_const_ns = 500.0;       // the UNION operator's fixed cost
  double bitmap_word_ns = 1.0;         // one 64-bit AND+popcount word op
};

/// Micro-benchmarks the primitive operations on `dataset` (a few
/// milliseconds total) and returns measured constants. Deterministic
/// record sampling; falls back to defaults for degenerate datasets.
CostConstants Calibrate(const Dataset& dataset);

}  // namespace colarm

#endif  // COLARM_COST_CALIBRATION_H_
