#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>

#include "bitmap/bitmap.h"
#include "common/string_util.h"

namespace colarm {

const char* CacheTierName(CacheTier tier) {
  switch (tier) {
    case CacheTier::kNone:
      return "none";
    case CacheTier::kExact:
      return "exact";
    case CacheTier::kContainment:
      return "containment";
    case CacheTier::kCompose:
      return "compose";
  }
  return "?";
}

std::string PlanCostEstimate::ToString() const {
  return StrFormat(
      "%-8s est=%.3fms (select=%.3f search=%.3f eliminate=%.3f verify=%.3f "
      "mine=%.3f) estQ=%.0f cands=%.1f contained=%.1f qualified=%.1f",
      PlanKindName(plan), total / 1e6, select / 1e6, search / 1e6,
      eliminate / 1e6, verify / 1e6, mine / 1e6, est_subset_size,
      est_candidates, est_contained, est_qualified);
}

double CostModel::ExpectedNodeAccesses(
    const std::vector<double>& query_extents, double pass_fraction) const {
  // Root is always read; each deeper level contributes the expected number
  // of its nodes whose MBR intersects the query box, scaled by the
  // supported filter's pass fraction.
  double accesses = 0.0;
  for (size_t level = 0; level < stats_->levels.size(); ++level) {
    const RTreeLevelStats& ls = stats_->levels[level];
    double overlap = 1.0;
    for (size_t d = 0; d < query_extents.size(); ++d) {
      overlap *= std::min(1.0, ls.avg_extent[d] + query_extents[d]);
    }
    double level_accesses = (level == 0)
                                ? 1.0
                                : std::min<double>(ls.num_nodes,
                                                   ls.num_nodes * overlap *
                                                       pass_fraction);
    accesses += level_accesses;
  }
  return accesses;
}

double CostModel::ExpectedCandidates(
    const std::vector<double>& query_extents) const {
  double overlap = 1.0;
  for (size_t d = 0; d < query_extents.size(); ++d) {
    overlap *= std::min(1.0, stats_->mip_avg_extent[d] + query_extents[d]);
  }
  return std::min<double>(stats_->num_mips, stats_->num_mips * overlap);
}

double CostModel::ContainedFraction(
    const std::vector<double>& query_extents) const {
  double prob = 1.0;
  for (size_t d = 0; d < query_extents.size(); ++d) {
    const double q = query_extents[d];
    const double p = stats_->mip_avg_extent[d];
    if (q >= 1.0) continue;  // unconstrained: always contained
    const double denom = std::max(1e-9, 1.0 - p);
    prob *= std::clamp((q - p) / denom, 0.0, 1.0);
  }
  return prob;
}

double CostModel::QualifiedFraction(const LocalizedQuery& query) const {
  // Under uniform overlap, a MIP's local support fraction tracks its global
  // one, so the local check passes for the MIPs whose *global* fraction
  // clears minsupp.
  uint32_t global_equiv = MinCount(query.minsupp, stats_->num_records);
  return stats_->FractionWithCountAtLeast(global_equiv);
}

double CostModel::ItemAttrFraction(const LocalizedQuery& query) const {
  if (query.item_attrs.empty() || stats_->num_attributes == 0) return 1.0;
  double allowed = static_cast<double>(query.item_attrs.size()) /
                   stats_->num_attributes;
  return std::pow(allowed, stats_->avg_itemset_length);
}

double CostModel::RulesPerItemset() const {
  double len = std::min(stats_->avg_itemset_length, 16.0);
  return std::max(0.0, std::pow(2.0, len) - 2.0);
}

PlanCostEstimate CostModel::Estimate(PlanKind kind, const LocalizedQuery& query,
                                     const CacheHint* hint) const {
  PlanCostEstimate est;
  est.plan = kind;

  std::vector<double> extQ = cardinality_->QueryExtents(query);
  const double subset = std::max(1.0, cardinality_->SubsetSize(query));
  const auto min_count =
      MinCount(query.minsupp, static_cast<uint32_t>(subset));
  est.est_subset_size = subset;

  // The supported filter prunes on *global* counts vs. the absolute local
  // threshold (Lemma 4.4): its pass fraction is exact given the stored
  // support distribution.
  const double ss_pass = stats_->FractionWithCountAtLeast(min_count);
  const double qualified_frac = QualifiedFraction(query);
  double attr_frac = ItemAttrFraction(query);
  double rules_per = RulesPerItemset();
  const double avg_len = std::max(1.0, stats_->avg_itemset_length);
  const double m = stats_->num_records;

  // Constraint selectivity. Pushdown changes where work stops, and these
  // terms let the optimizer see that before running anything: CONTAIN pins
  // the search box to one cell per constrained attribute (the execution
  // narrows the R-tree descent the same way), EXCLUDE thins the surviving
  // candidate pool like the attribute filter does, and ANTECEDENT
  // ATTRIBUTES halves the viable antecedent/consequent partitions per item
  // expected to be pinned. All no-ops for unconstrained queries.
  const RuleConstraints& cons = query.constraints;
  if (!cons.Empty()) {
    const Schema& schema = cardinality_->schema();
    for (ItemId item : cons.must_contain) {
      const AttrId a = schema.AttrOfItem(item);
      const double domain =
          std::max<double>(1.0, schema.attribute(a).domain_size());
      if (a < extQ.size()) extQ[a] = std::min(extQ[a], 1.0 / domain);
    }
    if (!cons.must_exclude.empty()) {
      // A MIP avoids one excluded item with probability 1 - avg_len/|items|
      // under the uniform-item model; survivors multiply into the same
      // per-candidate filter term the attribute mask uses.
      const double num_items = std::max<double>(1.0, schema.num_items());
      const double per_item = std::min(1.0, avg_len / num_items);
      attr_frac *= std::pow(1.0 - per_item,
                            static_cast<double>(cons.must_exclude.size()));
    }
    if (!cons.antecedent_only.empty() && stats_->num_attributes > 0) {
      const double pinned_est =
          avg_len * static_cast<double>(cons.antecedent_only.size()) /
          static_cast<double>(stats_->num_attributes);
      rules_per *= std::pow(2.0, -pinned_est);
    }
    if (cons.min_antecedent_supp > 0.0) {
      // The antecedent floor prunes rule partitions before the confidence
      // check; under uniform overlap the antecedent's local support tracks
      // its global one, so the survival fraction comes straight off the
      // stored support distribution — same machinery as minsupp.
      rules_per *= stats_->FractionWithCountAtLeast(
          MinCount(cons.min_antecedent_supp, stats_->num_records));
    }
  }

  // Words per bitmap — the unit every kBitmap kernel is priced in.
  const double words =
      std::ceil(m / static_cast<double>(Bitmap::kBitsPerWord));

  // SELECT. Scalar: one relation scan. Bitmap: per attribute a range-OR
  // plus an AND over the word array, then one pass converting DQ to tids.
  // The term is plan-independent either way, so its accuracy never sways
  // plan choice — only the absolute estimate. A session-cache hint replaces
  // the cold scan with what actually runs: copying the cached tid list on
  // an exact hit, or filtering the cached (containing) subset on a
  // containment hit — scalar re-tests each cached record on the narrowed
  // attributes, bitmap ANDs one range-OR per narrowed attribute.
  constexpr double kAvgOrWidth = 3.0;  // value bitmaps OR'd per attribute
  if (hint != nullptr && hint->tier == CacheTier::kExact) {
    est.select = hint->cached_size * constants_.select_record_ns;
  } else if (hint != nullptr && hint->tier == CacheTier::kContainment) {
    if (backend_ == ExecBackend::kBitmap) {
      est.select = hint->delta_attrs * (kAvgOrWidth + 1.0) * words *
                       constants_.bitmap_word_ns +
                   subset * constants_.select_record_ns;
    } else {
      est.select = hint->cached_size * constants_.select_record_ns;
    }
  } else if (hint != nullptr && hint->tier == CacheTier::kCompose) {
    // Tier 2.5: combine `compose_sources` resident tid lists (union /
    // difference / intersection) plus a residual delta filter. Bitmap
    // prices one word pass per source; scalar walks the summed sorted
    // runs (hint->cached_size). Like every SELECT reprice this is
    // plan-uniform, so composition never sways which plan wins.
    if (backend_ == ExecBackend::kBitmap) {
      est.select = hint->compose_sources * words * constants_.bitmap_word_ns +
                   hint->delta_attrs * (kAvgOrWidth + 1.0) * words *
                       constants_.bitmap_word_ns +
                   subset * constants_.select_record_ns;
    } else {
      est.select = hint->cached_size * constants_.select_record_ns;
    }
  } else if (backend_ == ExecBackend::kBitmap) {
    est.select = stats_->num_attributes * (kAvgOrWidth + 1.0) * words *
                     constants_.bitmap_word_ns +
                 subset * constants_.select_record_ns;
  } else {
    est.select = m * constants_.select_record_ns;
  }

  const bool supported = kind == PlanKind::kSSEV || kind == PlanKind::kSSVS ||
                         kind == PlanKind::kSSEUV;

  // ELIMINATE's containment scan exits on the first mismatching item, so
  // it averages ~2 probes per record; VERIFY's subset-mask pass must test
  // every item of the itemset on every record. The bitmap backend prices
  // the same work in word passes: an AND-chain of avg_len item bitmaps
  // plus the popcount against DQ per ELIMINATE candidate, and one AND per
  // subset of the itemset (the lattice DFS, ~2^len = rules_per + 2 nodes)
  // per VERIFY itemset — floored at its per-record probe fallback, which
  // the counter switches to when the lattice is the costlier route.
  constexpr double kAvgEliminateChecks = 2.0;
  const double eliminate_per_cand =
      backend_ == ExecBackend::kBitmap
          ? (avg_len + 1.0) * words * constants_.bitmap_word_ns
          : subset * kAvgEliminateChecks * constants_.record_item_check_ns;
  const double scalar_verify_scan =
      subset * avg_len * constants_.record_item_check_ns;
  const double verify_scan_per_itemset =
      backend_ == ExecBackend::kBitmap
          ? std::min((rules_per + 2.0) * words * constants_.bitmap_word_ns,
                     scalar_verify_scan)
          : scalar_verify_scan;
  const double verify_per_itemset =
      verify_scan_per_itemset + rules_per * constants_.rule_check_ns;

  double candidates = ExpectedCandidates(extQ);
  if (supported) candidates *= ss_pass;
  est.est_candidates = candidates;
  est.est_contained = candidates * ContainedFraction(extQ);
  est.est_qualified = candidates * qualified_frac * attr_frac;

  switch (kind) {
    case PlanKind::kSEV:
    case PlanKind::kSSEV: {
      est.search = ExpectedNodeAccesses(extQ, supported ? ss_pass : 1.0) *
                   constants_.rtree_box_check_ns * stats_->rtree_fanout;
      est.eliminate = candidates * attr_frac * eliminate_per_cand;
      est.verify = est.est_qualified * verify_per_itemset;
      break;
    }
    case PlanKind::kSVS:
    case PlanKind::kSSVS: {
      est.search = ExpectedNodeAccesses(extQ, supported ? ss_pass : 1.0) *
                   constants_.rtree_box_check_ns * stats_->rtree_fanout;
      // Fused pass: one full-itemset record-level scan per candidate does
      // the support and confidence work together.
      est.verify = candidates * attr_frac * verify_scan_per_itemset +
                   est.est_qualified * rules_per * constants_.rule_check_ns;
      break;
    }
    case PlanKind::kSSEUV: {
      est.search = ExpectedNodeAccesses(extQ, ss_pass) *
                   constants_.rtree_box_check_ns * stats_->rtree_fanout;
      const double overlapped = std::max(0.0, candidates - est.est_contained);
      est.eliminate = overlapped * attr_frac * eliminate_per_cand +
                      constants_.union_const_ns;
      est.verify = est.est_qualified * verify_per_itemset;
      break;
    }
    case PlanKind::kARM: {
      // Eq. 6 refined: besides the |DQ| x width term (vertical-view build
      // and base scans), from-scratch mining explores the local closed-
      // itemset lattice, whose size we estimate from the stored support
      // distribution (local support fractions track global ones under
      // uniform overlap). Each lattice node costs a few tidset
      // intersections of length O(|DQ|).
      constexpr double kLatticeBranching = 8.0;
      const double est_local_cfis = stats_->num_mips * qualified_frac;
      est.mine = subset * stats_->num_attributes * constants_.mine_cell_ns +
                 (est_local_cfis + 1.0) * kLatticeBranching * subset *
                     constants_.mine_cell_ns;
      est.verify = est.est_qualified * verify_per_itemset;
      break;
    }
  }

  est.total = est.select + est.search + est.eliminate + est.verify + est.mine;
  return est;
}

std::array<PlanCostEstimate, 6> CostModel::EstimateAll(
    const LocalizedQuery& query, const CacheHint* hint) const {
  std::array<PlanCostEstimate, 6> all;
  for (size_t i = 0; i < kAllPlans.size(); ++i) {
    all[i] = Estimate(kAllPlans[i], query, hint);
  }
  return all;
}

}  // namespace colarm
