#include "common/cpu_features.h"

#include <atomic>
#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define COLARM_CPU_X86 1
#endif

namespace colarm {

namespace {

#ifdef COLARM_CPU_X86

struct HostFeatures {
  bool avx2 = false;
  bool avx512f = false;
  bool avx512vpopcntdq = false;
};

// XGETBV(0) via inline asm: the <immintrin.h> _xgetbv wrapper demands
// -mxsave, which would defeat the portable-baseline build of this TU. Only
// executed after CPUID confirmed OSXSAVE, so the instruction exists.
uint64_t Xgetbv0() {
  uint32_t eax = 0, edx = 0;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0u));
  return (static_cast<uint64_t>(edx) << 32) | eax;
}

// CPUID feature bits plus the XGETBV check that the OS actually saves the
// wider register state — an AVX2 CPUID bit alone does not make YMM usable
// (e.g. under a hypervisor with XSAVE masked off).
HostFeatures DetectHost() {
  HostFeatures features;
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return features;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;
  if (!osxsave || !avx) return features;
  const uint64_t xcr0 = Xgetbv0();
  const bool ymm_state = (xcr0 & 0x6) == 0x6;          // XMM + YMM
  const bool zmm_state = (xcr0 & 0xe6) == 0xe6;        // + opmask, ZMM hi
  if (!ymm_state) return features;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return features;
  features.avx2 = (ebx & (1u << 5)) != 0;
  features.avx512f = zmm_state && (ebx & (1u << 16)) != 0;
  features.avx512vpopcntdq = features.avx512f && (ecx & (1u << 14)) != 0;
  return features;
}

const HostFeatures& Host() {
  static const HostFeatures features = DetectHost();
  return features;
}

#endif  // COLARM_CPU_X86

// Relaxed is enough: switches happen only between kernel runs (see the
// SetActiveSimdLevel contract) and any load observes a valid level.
std::atomic<int>& ActiveLevelStorage() {
  static std::atomic<int> level{
      static_cast<int>(ResolveSimdLevel(std::getenv("COLARM_SIMD"),
                                        MaxSupportedSimdLevel()))};
  return level;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "scalar";
}

std::optional<SimdLevel> SimdLevelFromName(const std::string& name) {
  if (name == "scalar") return SimdLevel::kScalar;
  if (name == "avx2") return SimdLevel::kAvx2;
  if (name == "avx512") return SimdLevel::kAvx512;
  return std::nullopt;
}

SimdLevel MaxSupportedSimdLevel() {
#ifdef COLARM_CPU_X86
#ifdef COLARM_HAVE_AVX512_TU
  if (Host().avx512f) return SimdLevel::kAvx512;
#endif
#ifdef COLARM_HAVE_AVX2_TU
  if (Host().avx2) return SimdLevel::kAvx2;
#endif
#endif
  return SimdLevel::kScalar;
}

bool SimdLevelSupported(SimdLevel level) {
  return static_cast<int>(level) <= static_cast<int>(MaxSupportedSimdLevel());
}

bool Avx512HasVpopcntdq() {
#ifdef COLARM_CPU_X86
  return Host().avx512vpopcntdq;
#else
  return false;
#endif
}

SimdLevel ResolveSimdLevel(const char* env_value, SimdLevel max) {
  if (env_value == nullptr || *env_value == '\0') return max;
  std::optional<SimdLevel> named = SimdLevelFromName(env_value);
  if (!named.has_value()) return max;
  return static_cast<int>(*named) < static_cast<int>(max) ? *named : max;
}

SimdLevel ActiveSimdLevel() {
  return static_cast<SimdLevel>(
      ActiveLevelStorage().load(std::memory_order_relaxed));
}

bool SetActiveSimdLevel(SimdLevel level) {
  if (!SimdLevelSupported(level)) return false;
  ActiveLevelStorage().store(static_cast<int>(level),
                             std::memory_order_relaxed);
  return true;
}

}  // namespace colarm
