#include "common/status.h"

namespace colarm {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace colarm
