#ifndef COLARM_COMMON_THREAD_POOL_H_
#define COLARM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace colarm {

/// A fixed-size worker pool shared by every parallel stage of the engine
/// (online VERIFY partitioning, the multi-query batch executor, and the
/// offline MIP-index build). The pool itself is deliberately dumb — a FIFO
/// task queue — because all scheduling intelligence lives in ParallelChunks
/// below, whose caller always participates in the work. That property makes
/// nested parallel regions safe: an inner region on a saturated pool simply
/// runs on the thread that entered it, so no task ever blocks waiting for a
/// worker that cannot be scheduled.
class ThreadPool {
 public:
  /// `num_threads` is the total degree of parallelism *including* the
  /// calling thread: the pool spawns `num_threads - 1` workers. 0 resolves
  /// to the hardware concurrency; 1 spawns no workers at all (parallel
  /// helpers then run fully inline — the exact sequential code path).
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Degree of parallelism (worker threads + the caller), always >= 1.
  unsigned parallelism() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Enqueues a task. Tasks must not throw (ParallelChunks wraps user code
  /// in its own exception capture before submitting).
  void Submit(std::function<void()> task);

  /// std::thread::hardware_concurrency() with a floor of 1.
  static unsigned DefaultThreads();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

/// Runs `fn(chunk, begin, end)` for `num_chunks` contiguous ranges covering
/// [0, n). Chunks are claimed dynamically by pool workers *and* by the
/// calling thread, which always participates — progress is guaranteed even
/// when the pool is saturated or `pool` is null (then everything runs
/// inline, in chunk order, on the caller).
///
/// Determinism contract: chunk boundaries depend only on (n, num_chunks),
/// never on thread count or timing, so per-chunk outputs indexed by `chunk`
/// can be merged in chunk order to reproduce the sequential result exactly.
///
/// The first exception thrown by `fn` is rethrown on the caller after all
/// in-flight chunks finish; remaining unclaimed chunks are abandoned.
void ParallelChunks(ThreadPool* pool, size_t n, size_t num_chunks,
                    const std::function<void(size_t chunk, size_t begin,
                                             size_t end)>& fn);

/// ParallelChunks with one chunk per index: runs `fn(i)` for i in [0, n)
/// with dynamic load balancing (used for coarse units such as whole
/// queries or CHARM prefix branches).
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t i)>& fn);

/// True when `pool` can actually run anything concurrently; parallel code
/// paths use this to fall back to their exact sequential implementation.
inline bool IsParallel(const ThreadPool* pool) {
  return pool != nullptr && pool->parallelism() > 1;
}

}  // namespace colarm

#endif  // COLARM_COMMON_THREAD_POOL_H_
