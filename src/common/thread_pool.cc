#include "common/thread_pool.h"

#include <algorithm>
#include <exception>
#include <memory>

namespace colarm {

unsigned ThreadPool::DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) num_threads = DefaultThreads();
  workers_.reserve(num_threads - 1);
  for (unsigned i = 1; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

// Shared state of one ParallelChunks region. Helper tasks hold a
// shared_ptr, so the region call may return (all chunks done) while stale
// helpers are still queued behind other work; they wake up, fail to claim
// a chunk, and drop their reference without ever touching `fn` — which is
// only valid while the caller is inside ParallelChunks.
struct ChunkRegion {
  size_t n = 0;
  size_t num_chunks = 0;
  const std::function<void(size_t, size_t, size_t)>* fn = nullptr;

  std::mutex mutex;
  std::condition_variable cv;
  size_t next = 0;     // next chunk index to hand out
  size_t claimed = 0;  // chunks handed out (each will reach `done`)
  size_t done = 0;     // chunks whose body finished (or threw)
  bool cancelled = false;
  std::exception_ptr error;

  bool Claim(size_t* chunk) {
    std::lock_guard<std::mutex> lock(mutex);
    if (cancelled || next >= num_chunks) return false;
    *chunk = next++;
    ++claimed;
    return true;
  }

  // All handed-out chunks finished and no further claims can succeed.
  bool Drained() const {
    return done == claimed && (cancelled || next >= num_chunks);
  }

  void RunChunks() {
    size_t chunk;
    while (Claim(&chunk)) {
      try {
        (*fn)(chunk, n * chunk / num_chunks, n * (chunk + 1) / num_chunks);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
        cancelled = true;  // abandon unclaimed chunks
      }
      std::lock_guard<std::mutex> lock(mutex);
      ++done;
      if (Drained()) cv.notify_all();
    }
  }
};

}  // namespace

void ParallelChunks(ThreadPool* pool, size_t n, size_t num_chunks,
                    const std::function<void(size_t chunk, size_t begin,
                                             size_t end)>& fn) {
  if (n == 0 || num_chunks == 0) return;
  num_chunks = std::min(num_chunks, n);

  if (!IsParallel(pool) || num_chunks == 1) {
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      fn(chunk, n * chunk / num_chunks, n * (chunk + 1) / num_chunks);
    }
    return;
  }

  auto region = std::make_shared<ChunkRegion>();
  region->n = n;
  region->num_chunks = num_chunks;
  region->fn = &fn;

  const size_t helpers =
      std::min<size_t>(pool->parallelism() - 1, num_chunks - 1);
  for (size_t i = 0; i < helpers; ++i) {
    pool->Submit([region] { region->RunChunks(); });
  }
  region->RunChunks();

  std::unique_lock<std::mutex> lock(region->mutex);
  region->cv.wait(lock, [&] { return region->Drained(); });
  if (region->error) std::rethrow_exception(region->error);
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t i)>& fn) {
  ParallelChunks(pool, n, n, [&fn](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

}  // namespace colarm
