#ifndef COLARM_COMMON_STRING_UTIL_H_
#define COLARM_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace colarm {

/// Splits `input` on `delim`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view input, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

/// ASCII lower-casing (locale independent).
std::string ToLowerAscii(std::string_view input);

/// Case-insensitive ASCII comparison.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Parses a double; returns false on malformed or trailing garbage.
bool ParseDouble(std::string_view input, double* out);

/// Parses a non-negative integer; returns false on malformed input.
bool ParseUint64(std::string_view input, uint64_t* out);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace colarm

#endif  // COLARM_COMMON_STRING_UTIL_H_
