#ifndef COLARM_COMMON_CANCEL_H_
#define COLARM_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <exception>

namespace colarm {

/// Cooperative cancellation handle for one request: an absolute deadline
/// plus an external kill switch (server shutdown, client disconnect). The
/// record-level operators poll Cancelled() at candidate granularity — each
/// candidate costs a full focal-subset pass, so the poll is amortized to
/// noise — and unwind via CancelledException, which ExecutePlan converts
/// into Status kDeadlineExceeded. A default-constructed token never fires.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;

  /// Token expiring `ms` milliseconds from now; ms <= 0 = no deadline.
  /// (The atomic flag makes tokens immovable, so this is a constructor
  /// rather than a factory.)
  explicit CancelToken(double ms) {
    if (ms > 0) {
      deadline_ = Clock::now() +
                  std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(ms));
      has_deadline_ = true;
    }
  }

  void SetDeadline(Clock::time_point at) {
    deadline_ = at;
    has_deadline_ = true;
  }

  /// Chains this token to a longer-lived one (e.g. a per-request token to
  /// the server's shutdown kill-switch): Cancelled() also fires when the
  /// parent fires. The parent must outlive this token. Not thread-safe —
  /// set before sharing the token.
  void SetParent(const CancelToken* parent) { parent_ = parent; }

  /// External kill switch; safe to call from any thread.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool Cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (parent_ != nullptr && parent_->Cancelled()) return true;
    return has_deadline_ && Clock::now() >= deadline_;
  }

  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  const CancelToken* parent_ = nullptr;
};

/// Thrown by operator loops when their CancelToken fires. ParallelChunks
/// propagates the first shard's exception to the region caller (siblings
/// finish their claimed chunk and unclaimed chunks are abandoned), so one
/// expired shard unwinds the whole plan without stranding the pool.
class CancelledException : public std::exception {
 public:
  const char* what() const noexcept override {
    return "query cancelled (deadline exceeded or connection dropped)";
  }
};

/// Poll-point helper for operator loops.
inline void ThrowIfCancelled(const CancelToken* cancel) {
  if (cancel != nullptr && cancel->Cancelled()) throw CancelledException();
}

}  // namespace colarm

#endif  // COLARM_COMMON_CANCEL_H_
