#ifndef COLARM_COMMON_RNG_H_
#define COLARM_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace colarm {

/// Deterministic 64-bit random number generator (xoshiro256** core seeded
/// with splitmix64). All synthetic data generation flows through this class
/// so datasets and benchmarks reproduce bit-for-bit across runs and
/// platforms, independent of libstdc++'s distribution implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Approximately Gaussian(0, 1) via the sum of 12 uniforms
  /// (Irwin–Hall); adequate for workload shaping.
  double Gaussian() {
    double sum = 0.0;
    for (int i = 0; i < 12; ++i) sum += NextDouble();
    return sum - 6.0;
  }

  /// Zipf-like rank selection over [0, n): rank r drawn with probability
  /// proportional to 1/(r+1)^theta. Used for skewed value popularity.
  uint64_t Zipf(uint64_t n, double theta);

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

inline uint64_t Rng::Zipf(uint64_t n, double theta) {
  // Inverse-CDF on the harmonic-like weights; linear scan is fine for the
  // small domains (tens of values) used by the generators.
  double total = 0.0;
  for (uint64_t i = 0; i < n; ++i) total += 1.0 / std::pow(i + 1.0, theta);
  double u = NextDouble() * total;
  double acc = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(i + 1.0, theta);
    if (u <= acc) return i;
  }
  return n - 1;
}

}  // namespace colarm

#endif  // COLARM_COMMON_RNG_H_
