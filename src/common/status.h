#ifndef COLARM_COMMON_STATUS_H_
#define COLARM_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace colarm {

/// Error category of a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kIoError,
  kParseError,
  kDeadlineExceeded,
};

/// Returns a human-readable name for `code` ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Lightweight error value used throughout the library instead of
/// exceptions. A default-constructed Status is OK.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Value-or-error holder (a minimal absl::StatusOr analog).
///
/// A Result constructed from a T is OK; a Result constructed from a non-OK
/// Status carries the error. Accessing value() on an error aborts.
template <typename T>
class Result {
 public:
  /* implicit */ Result(T value) : data_(std::move(value)) {}
  /* implicit */ Result(Status status) : data_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define COLARM_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::colarm::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (false)

}  // namespace colarm

#endif  // COLARM_COMMON_STATUS_H_
