#ifndef COLARM_COMMON_CPU_FEATURES_H_
#define COLARM_COMMON_CPU_FEATURES_H_

#include <optional>
#include <string>

namespace colarm {

/// SIMD instruction-set tiers the bitmap kernel layer dispatches between.
/// Ordered: a level implies every lower one, so "clamp to the host's best"
/// is a simple min. kAvx512 means AVX-512F; whether the VPOPCNTDQ popcount
/// refinement is used within that tier is a separate CPUID sub-feature
/// (Avx512HasVpopcntdq) resolved inside the dispatch table.
enum class SimdLevel : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// "scalar" / "avx2" / "avx512" — the COLARM_SIMD vocabulary.
const char* SimdLevelName(SimdLevel level);

/// Parses a COLARM_SIMD value; nullopt on anything unrecognized.
std::optional<SimdLevel> SimdLevelFromName(const std::string& name);

/// The best level this binary can actually execute: the CPUID-detected
/// host capability (with OS XSAVE state checks for YMM/ZMM) intersected
/// with what the build compiled in (non-x86 builds carry only scalar).
SimdLevel MaxSupportedSimdLevel();

/// True iff `level` is executable here (level <= MaxSupportedSimdLevel()).
bool SimdLevelSupported(SimdLevel level);

/// Host has the AVX-512 VPOPCNTDQ extension (vpopcntq); only meaningful
/// when MaxSupportedSimdLevel() == kAvx512.
bool Avx512HasVpopcntdq();

/// Pure resolution rule for the initial dispatch level, exposed for tests:
/// no override -> `max`; a recognized name -> min(named, max) so asking
/// for an unavailable tier degrades gracefully; an unrecognized name is
/// ignored (-> `max`).
SimdLevel ResolveSimdLevel(const char* env_value, SimdLevel max);

/// The level the kernel dispatch table currently targets. Resolved once on
/// first use from ResolveSimdLevel(getenv("COLARM_SIMD"), max); later
/// changed only by SetActiveSimdLevel.
SimdLevel ActiveSimdLevel();

/// Re-points the dispatch at `level` (tests, benches, and the fuzzer's
/// simd-equivalence sweep). Returns false — and changes nothing — when the
/// level is not executable here. Takes effect for subsequent kernel calls;
/// callers must not switch concurrently with running kernels (the sweep
/// harnesses switch only between runs, while worker pools are quiescent).
bool SetActiveSimdLevel(SimdLevel level);

}  // namespace colarm

#endif  // COLARM_COMMON_CPU_FEATURES_H_
