#ifndef COLARM_COMMON_TIMER_H_
#define COLARM_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace colarm {

/// Monotonic wall-clock stopwatch used by plan executors and benchmarks.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Nanoseconds since construction or the last Restart().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedMicros() const { return ElapsedNanos() / 1e3; }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }
  double ElapsedSeconds() const { return ElapsedNanos() / 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace colarm

#endif  // COLARM_COMMON_TIMER_H_
