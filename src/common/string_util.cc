#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>

namespace colarm {

std::vector<std::string> SplitString(std::string_view input, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(input.substr(start));
      break;
    }
    parts.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         (input[begin] == ' ' || input[begin] == '\t' || input[begin] == '\r' ||
          input[begin] == '\n')) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin &&
         (input[end - 1] == ' ' || input[end - 1] == '\t' ||
          input[end - 1] == '\r' || input[end - 1] == '\n')) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string ToLowerAscii(std::string_view input) {
  std::string out(input);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    char ca = a[i];
    char cb = b[i];
    if (ca >= 'A' && ca <= 'Z') ca = static_cast<char>(ca - 'A' + 'a');
    if (cb >= 'A' && cb <= 'Z') cb = static_cast<char>(cb - 'A' + 'a');
    if (ca != cb) return false;
  }
  return true;
}

bool ParseDouble(std::string_view input, double* out) {
  std::string buf(StripWhitespace(input));
  if (buf.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = value;
  return true;
}

bool ParseUint64(std::string_view input, uint64_t* out) {
  std::string buf(StripWhitespace(input));
  if (buf.empty()) return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long value = std::strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  if (!buf.empty() && buf[0] == '-') return false;
  *out = value;
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace colarm
