#include "core/query_cache.h"

#include <algorithm>

#include "bitmap/bitmap.h"

namespace colarm {

namespace {

// Fixed per-structure overheads folded into the byte accounting: map node,
// key, bookkeeping. Exactness does not matter — determinism across
// backends and thread counts does, and both terms depend only on logical
// content.
constexpr size_t kEntryOverhead = 64;
constexpr size_t kMemoOverhead = 48;

size_t SubsetBytes(const FocalSubset& subset) {
  return kEntryOverhead + subset.box.dims() * 2 * sizeof(ValueId) +
         subset.tids.size() * sizeof(Tid);
}

size_t MemoBytes(const std::string& constraint_key,
                 const CountMemoEntry& memo) {
  return kMemoOverhead + constraint_key.size() +
         memo.superset_counts.size() * sizeof(uint32_t);
}

// Same condition FocalSubset::Materialize scans (and prices) under.
bool BoxIsConstrained(const Schema& schema, const Rect& box) {
  for (AttrId a = 0; a < schema.num_attributes(); ++a) {
    if (box.lo(a) != 0 || box.hi(a) != schema.attribute(a).domain_size() - 1) {
      return true;
    }
  }
  return false;
}

// Attributes whose interval in `box` is strictly narrower than in `outer`
// (the only ones a containment filter has to re-test).
std::vector<AttrId> NarrowedAttrs(const Rect& box, const Rect& outer) {
  std::vector<AttrId> narrowed;
  for (uint32_t d = 0; d < box.dims(); ++d) {
    if (box.lo(d) != outer.lo(d) || box.hi(d) != outer.hi(d)) {
      narrowed.push_back(static_cast<AttrId>(d));
    }
  }
  return narrowed;
}

}  // namespace

std::string CanonicalBoxKey(const Rect& box) {
  std::string key;
  key.reserve(box.dims() * 2 * sizeof(ValueId));
  for (uint32_t d = 0; d < box.dims(); ++d) {
    ValueId lo = box.lo(d);
    ValueId hi = box.hi(d);
    key.append(reinterpret_cast<const char*>(&lo), sizeof(ValueId));
    key.append(reinterpret_cast<const char*>(&hi), sizeof(ValueId));
  }
  return key;
}

uint32_t MemoSubsetCounter::CountOf(std::span<const ItemId> subset) const {
  // MaskOf contract of the cold counters: position mask within the base
  // itemset, unknown items count as never-present.
  uint32_t mask = 0;
  size_t pos = 0;
  for (ItemId item : subset) {
    while (pos < itemset_.size() && itemset_[pos] < item) ++pos;
    if (pos == itemset_.size() || itemset_[pos] != item) return 0;
    mask |= (1u << pos);
    ++pos;
  }
  return memo_->superset_counts[mask];
}

void CountMemoTxn::RecordFull(uint32_t mip_id, uint32_t full_count) {
  std::lock_guard<std::mutex> lock(mutex_);
  CountMemoEntry& entry = writes_[mip_id];
  if (entry.superset_counts.empty()) entry.full_count = full_count;
}

void CountMemoTxn::RecordTable(uint32_t mip_id, uint32_t full_count,
                               std::span<const uint32_t> superset_counts) {
  std::lock_guard<std::mutex> lock(mutex_);
  CountMemoEntry& entry = writes_[mip_id];
  entry.full_count = full_count;
  entry.superset_counts.assign(superset_counts.begin(), superset_counts.end());
}

QueryCache::QueryCache(const MipIndex& index, QueryCacheOptions options)
    : index_(&index), options_(options) {}

std::map<std::string, QueryCache::Entry>::const_iterator
QueryCache::FindContaining(const Rect& box) const {
  auto best = entries_.end();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (!it->second.box.Contains(box)) continue;
    if (best == entries_.end() ||
        it->second.subset->tids.size() < best->second.subset->tids.size()) {
      best = it;
    }
  }
  return best;
}

CacheHint QueryCache::Probe(const Rect& box) const {
  CacheHint hint;
  std::string key = CanonicalBoxKey(box);
  std::lock_guard<std::mutex> lock(mutex_);
  auto exact = entries_.find(key);
  if (exact != entries_.end()) {
    hint.tier = CacheTier::kExact;
    hint.cached_size = static_cast<double>(exact->second.subset->tids.size());
    return hint;
  }
  auto containing = FindContaining(box);
  if (containing != entries_.end()) {
    hint.tier = CacheTier::kContainment;
    hint.cached_size =
        static_cast<double>(containing->second.subset->tids.size());
    hint.delta_attrs = static_cast<uint32_t>(
        NarrowedAttrs(box, containing->second.box).size());
  }
  return hint;
}

QueryCache::Lease QueryCache::Acquire(const Rect& box, ExecBackend backend,
                                      ThreadPool* pool,
                                      uint64_t* record_checks) {
  const Dataset& dataset = index_->dataset();
  const Schema& schema = dataset.schema();

  // The cold semantic price, regardless of which tier actually serves the
  // subset — the same convention that keeps the bitmap backend's counters
  // byte-identical to the scalar scan's.
  if (record_checks != nullptr && BoxIsConstrained(schema, box)) {
    *record_checks += dataset.num_records();
  }

  Lease lease;
  std::string key = CanonicalBoxKey(box);
  std::lock_guard<std::mutex> lock(mutex_);

  auto exact = entries_.find(key);
  if (exact != entries_.end()) {
    ++counters_.hits_exact;
    exact->second.last_used = ++clock_;
    lease.subset = *exact->second.subset;
    lease.tier = CacheTier::kExact;
    return lease;
  }

  auto containing = FindContaining(box);
  if (containing != entries_.end()) {
    ++counters_.hits_containment;
    const FocalSubset& src = *containing->second.subset;
    const std::vector<AttrId> narrowed = NarrowedAttrs(box, src.box);
    FocalSubset derived;
    derived.box = box;
    const bool bitmap_route =
        backend == ExecBackend::kBitmap && !index_->vertical().empty();
    if (bitmap_route) {
      // AND the cached subset's bitmap with one range-OR per narrowed
      // attribute — the incremental form of MaterializeDq.
      Bitmap dq = Bitmap::FromTids(src.tids, dataset.num_records());
      index_->vertical().NarrowDq(schema, box, src.box, &dq, pool);
      derived.tids = dq.ToTids();
    } else {
      // Re-test only the narrowed attributes over the cached tid list.
      derived.tids.reserve(src.tids.size());
      for (Tid t : src.tids) {
        bool inside = true;
        for (AttrId a : narrowed) {
          ValueId v = dataset.Value(t, a);
          if (v < box.lo(a) || v > box.hi(a)) {
            inside = false;
            break;
          }
        }
        if (inside) derived.tids.push_back(t);
      }
    }
    lease.subset = derived;
    lease.tier = CacheTier::kContainment;
    InsertLocked(std::move(key), box,
                 std::make_shared<const FocalSubset>(std::move(derived)));
    return lease;
  }

  ++counters_.misses;
  FocalSubset cold;
  if (backend == ExecBackend::kBitmap && !index_->vertical().empty()) {
    cold.box = box;
    cold.tids = index_->vertical().MaterializeDq(schema, box, pool).ToTids();
  } else {
    cold = FocalSubset::Materialize(dataset, box);
  }
  lease.subset = cold;
  lease.tier = CacheTier::kNone;
  InsertLocked(std::move(key), box,
               std::make_shared<const FocalSubset>(std::move(cold)));
  return lease;
}

std::shared_ptr<const CountMemoEntry> QueryCache::MemoLookup(
    const std::string& box_key, const std::string& constraint_key,
    uint32_t mip_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto entry = entries_.find(box_key);
  if (entry == entries_.end()) return nullptr;
  auto memo = entry->second.memo.find({constraint_key, mip_id});
  return memo != entry->second.memo.end() ? memo->second : nullptr;
}

void QueryCache::NoteMemoServed() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.hits_count_memo;
}

std::unique_ptr<CountMemoTxn> QueryCache::BeginTxn(
    const Rect& box, std::string constraint_key) const {
  return std::make_unique<CountMemoTxn>(CanonicalBoxKey(box),
                                        std::move(constraint_key));
}

void QueryCache::Commit(CountMemoTxn* txn) {
  if (txn == nullptr) return;
  std::lock_guard<std::mutex> txn_lock(txn->mutex_);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(txn->box_key_);
  if (it == entries_.end()) return;  // box evicted mid-flight: drop writes
  Entry& entry = it->second;
  for (auto& [mip_id, write] : txn->writes_) {
    const std::pair<std::string, uint32_t> memo_key{txn->constraint_key_,
                                                    mip_id};
    auto existing = entry.memo.find(memo_key);
    if (existing != entry.memo.end()) {
      // Only an upgrade from full-count-only to a full table is worth a
      // republish; counts themselves are deterministic and identical.
      if (!existing->second->superset_counts.empty() ||
          write.superset_counts.empty()) {
        continue;
      }
      const size_t old_bytes =
          MemoBytes(txn->constraint_key_, *existing->second);
      entry.bytes -= old_bytes;
      counters_.bytes -= old_bytes;
      entry.memo.erase(existing);
    }
    auto published = std::make_shared<const CountMemoEntry>(std::move(write));
    const size_t new_bytes = MemoBytes(txn->constraint_key_, *published);
    entry.memo.emplace(memo_key, std::move(published));
    entry.bytes += new_bytes;
    counters_.bytes += new_bytes;
  }
  txn->writes_.clear();
  entry.last_used = ++clock_;
  EvictOverBudgetLocked();
}

CacheTelemetry QueryCache::telemetry() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

void QueryCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  counters_.bytes = 0;
  counters_.entries = 0;
}

void QueryCache::InsertLocked(std::string key, const Rect& box,
                              std::shared_ptr<const FocalSubset> subset) {
  Entry& entry = entries_[key];
  if (entry.subset != nullptr) {
    // Refresh (possible only via concurrent standalone callers): replace
    // the subset, keep the memo.
    counters_.bytes -= SubsetBytes(*entry.subset);
  } else {
    entry.box = box;
    ++counters_.entries;
  }
  counters_.bytes += SubsetBytes(*subset);
  entry.bytes = SubsetBytes(*subset);
  for (const auto& [memo_key, memo] : entry.memo) {
    entry.bytes += MemoBytes(memo_key.first, *memo);
  }
  entry.subset = std::move(subset);
  entry.last_used = ++clock_;
  EvictOverBudgetLocked();
}

void QueryCache::EvictOverBudgetLocked() {
  while (counters_.bytes > options_.byte_budget && !entries_.empty()) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_used < victim->second.last_used) victim = it;
    }
    counters_.bytes -= victim->second.bytes;
    --counters_.entries;
    ++counters_.evictions;
    entries_.erase(victim);
  }
}

}  // namespace colarm
