#include "core/query_cache.h"

#include <algorithm>
#include <cstdint>

#include "bitmap/bitmap.h"

namespace colarm {

namespace {

// Fixed per-structure overheads folded into the byte accounting: map node,
// key, bookkeeping. Exactness does not matter — determinism across
// backends and thread counts does, and both terms depend only on logical
// content.
constexpr size_t kEntryOverhead = 64;
constexpr size_t kMemoOverhead = 48;

size_t SubsetBytes(const FocalSubset& subset) {
  return kEntryOverhead + subset.box.dims() * 2 * sizeof(ValueId) +
         subset.tids.size() * sizeof(Tid);
}

size_t MemoBytes(const std::string& constraint_key,
                 const CountMemoEntry& memo) {
  return kMemoOverhead + constraint_key.size() +
         memo.superset_counts.size() * sizeof(uint32_t);
}

size_t ArmMemoBytes(const std::string& constraint_key,
                    const ArmMemoEntry& memo) {
  return kMemoOverhead + constraint_key.size() +
         memo.qualified.size() * sizeof(std::pair<uint32_t, uint32_t>);
}

// Same condition FocalSubset::Materialize scans (and prices) under.
bool BoxIsConstrained(const Schema& schema, const Rect& box) {
  for (AttrId a = 0; a < schema.num_attributes(); ++a) {
    if (box.lo(a) != 0 || box.hi(a) != schema.attribute(a).domain_size() - 1) {
      return true;
    }
  }
  return false;
}

// Attributes whose interval in `box` is strictly narrower than in `outer`
// (the only ones a containment filter has to re-test).
std::vector<AttrId> NarrowedAttrs(const Rect& box, const Rect& outer) {
  std::vector<AttrId> narrowed;
  for (uint32_t d = 0; d < box.dims(); ++d) {
    if (box.lo(d) != outer.lo(d) || box.hi(d) != outer.hi(d)) {
      narrowed.push_back(static_cast<AttrId>(d));
    }
  }
  return narrowed;
}

// True iff `a` and `b` carry identical intervals on every axis except `d`.
bool EqualExceptAxis(const Rect& a, const Rect& b, uint32_t d) {
  for (uint32_t e = 0; e < a.dims(); ++e) {
    if (e == d) continue;
    if (a.lo(e) != b.lo(e) || a.hi(e) != b.hi(e)) return false;
  }
  return true;
}

uint64_t HashKey(const std::string& key) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// One slab candidate for the greedy interval cover.
struct SlabCandidate {
  int64_t lo = 0;
  int64_t hi = 0;
  const std::string* key = nullptr;
  size_t tids = 0;
};

// Deterministic greedy cover of [lo, hi] from `slabs` (each already known
// to lie inside the allowed region): at each sweep position take the
// reachable slab extending furthest right, key order breaking ties.
// Returns false when a gap is uncoverable. Overlap between chosen slabs is
// fine — both union and difference semantics tolerate it.
bool GreedyCover(int64_t lo, int64_t hi,
                 const std::vector<SlabCandidate>& slabs,
                 std::vector<const SlabCandidate*>* chosen) {
  int64_t cursor = lo;
  while (cursor <= hi) {
    const SlabCandidate* best = nullptr;
    for (const SlabCandidate& slab : slabs) {
      if (slab.lo > cursor || slab.hi < cursor) continue;
      if (best == nullptr || slab.hi > best->hi ||
          (slab.hi == best->hi && *slab.key < *best->key)) {
        best = &slab;
      }
    }
    if (best == nullptr) return false;
    chosen->push_back(best);
    cursor = best->hi + 1;
  }
  return true;
}

Rect IntersectionBox(const Rect& a, const Rect& b) {
  Rect out = a;
  for (uint32_t d = 0; d < a.dims(); ++d) {
    out.SetInterval(d, std::max(a.lo(d), b.lo(d)), std::min(a.hi(d), b.hi(d)));
  }
  return out;
}

}  // namespace

std::string CanonicalBoxKey(const Rect& box) {
  std::string key;
  key.reserve(box.dims() * 2 * sizeof(ValueId));
  for (uint32_t d = 0; d < box.dims(); ++d) {
    ValueId lo = box.lo(d);
    ValueId hi = box.hi(d);
    key.append(reinterpret_cast<const char*>(&lo), sizeof(ValueId));
    key.append(reinterpret_cast<const char*>(&hi), sizeof(ValueId));
  }
  return key;
}

uint32_t MemoSubsetCounter::CountOf(std::span<const ItemId> subset) const {
  // MaskOf contract of the cold counters: position mask within the base
  // itemset, unknown items count as never-present.
  uint32_t mask = 0;
  size_t pos = 0;
  for (ItemId item : subset) {
    while (pos < itemset_.size() && itemset_[pos] < item) ++pos;
    if (pos == itemset_.size() || itemset_[pos] != item) return 0;
    mask |= (1u << pos);
    ++pos;
  }
  return memo_->superset_counts[mask];
}

void CountMemoTxn::RecordFull(uint32_t mip_id, uint32_t full_count) {
  std::lock_guard<std::mutex> lock(mutex_);
  CountMemoEntry& entry = writes_[mip_id];
  if (entry.superset_counts.empty()) entry.full_count = full_count;
}

void CountMemoTxn::RecordTable(uint32_t mip_id, uint32_t full_count,
                               std::span<const uint32_t> superset_counts) {
  std::lock_guard<std::mutex> lock(mutex_);
  CountMemoEntry& entry = writes_[mip_id];
  entry.full_count = full_count;
  entry.superset_counts.assign(superset_counts.begin(), superset_counts.end());
}

void CountMemoTxn::RecordArmMine(
    uint32_t min_count, uint64_t local_cfis,
    std::vector<std::pair<uint32_t, uint32_t>> qualified) {
  std::lock_guard<std::mutex> lock(mutex_);
  arm_writes_.emplace(min_count,
                      ArmMemoEntry{local_cfis, std::move(qualified)});
}

void QueryCache::FrequencySketch::Record(uint64_t hash) {
  for (uint32_t r = 0; r < kRows; ++r) {
    uint8_t& cell = counters[r][(hash >> (r * 16)) & (kColumns - 1)];
    if (cell < 255) ++cell;
  }
  if (++recordings >= kSketchDecayPeriod) {
    for (auto& row : counters) {
      for (uint8_t& cell : row) cell >>= 1;
    }
    recordings = 0;
  }
}

uint32_t QueryCache::FrequencySketch::Estimate(uint64_t hash) const {
  uint32_t freq = 255;
  for (uint32_t r = 0; r < kRows; ++r) {
    freq = std::min<uint32_t>(freq, counters[r][(hash >> (r * 16)) &
                                                (kColumns - 1)]);
  }
  return freq;
}

QueryCache::QueryCache(const MipIndex& index, QueryCacheOptions options)
    : index_(&index), options_(options) {}

QueryCache::ComposePlan QueryCache::PlanComposeLocked(const Rect& box) const {
  ComposePlan best;
  const double cold_cost = static_cast<double>(index_->dataset().num_records());

  // Tier 2: single-source containment filter — the resident containing
  // entry with the smallest subset (cheapest filter), key order breaking
  // ties. Stays ungated against the cold scan (pre-2.5 behavior).
  double filter_cost = 0.0;
  bool has_filter = false;
  {
    const Entry* src = nullptr;
    const std::string* src_key = nullptr;
    for (const auto& [key, entry] : entries_) {
      if (!entry.box.Contains(box)) continue;
      if (src == nullptr || entry.subset->tids.size() < src->subset->tids.size()) {
        src = &entry;
        src_key = &key;
      }
    }
    if (src != nullptr) {
      const std::vector<AttrId> narrowed = NarrowedAttrs(box, src->box);
      has_filter = true;
      filter_cost = static_cast<double>(src->subset->tids.size()) *
                    static_cast<double>(narrowed.size() + 1);
      best.shape = ComposePlan::Shape::kFilter;
      best.sources = {*src_key};
      best.residual_outer = src->box;
      best.delta_attrs = static_cast<uint32_t>(narrowed.size());
      best.summed_runs = static_cast<double>(src->subset->tids.size());
      best.cost = filter_cost;
    }
  }

  // Multi-source shapes enter only when strictly cheaper than both the
  // filter and the cold scan; ties keep the earlier (simpler) route. The
  // enumeration order (union by axis, difference by axis and outer key,
  // intersection by key-ordered pair) plus strict `<` makes the choice
  // deterministic.
  ComposePlan multi;
  double multi_cost = cold_cost;
  if (has_filter) multi_cost = std::min(multi_cost, filter_cost);
  auto consider = [&](ComposePlan&& plan) {
    if (plan.cost < multi_cost) {
      multi_cost = plan.cost;
      multi = std::move(plan);
    }
  };

  for (uint32_t d = 0; d < box.dims(); ++d) {
    // Axis union: resident slabs equal to `box` on every other axis whose
    // d-intervals lie inside and together cover box's d-interval — the
    // union of their tid lists is exactly T_box.
    std::vector<SlabCandidate> inside;
    for (const auto& [key, entry] : entries_) {
      if (!EqualExceptAxis(entry.box, box, d)) continue;
      if (entry.box.lo(d) >= box.lo(d) && entry.box.hi(d) <= box.hi(d)) {
        inside.push_back({entry.box.lo(d), entry.box.hi(d), &key,
                          entry.subset->tids.size()});
      }
    }
    if (!inside.empty()) {
      std::vector<const SlabCandidate*> chosen;
      if (GreedyCover(box.lo(d), box.hi(d), inside, &chosen)) {
        ComposePlan plan;
        plan.shape = ComposePlan::Shape::kUnion;
        double runs = 0.0;
        for (const SlabCandidate* slab : chosen) {
          plan.sources.push_back(*slab->key);
          runs += static_cast<double>(slab->tids);
        }
        plan.summed_runs = runs;
        plan.cost = runs;
        consider(std::move(plan));
      }
    }

    // Axis difference: an outer entry equal on the other axes whose
    // d-interval strictly contains box's, minus resident slabs exactly
    // tiling the two complement side intervals — T_outer stripped of every
    // record outside box's d-interval, i.e. exactly T_box.
    for (const auto& [outer_key, outer] : entries_) {
      if (!EqualExceptAxis(outer.box, box, d)) continue;
      if (outer.box.lo(d) > box.lo(d) || outer.box.hi(d) < box.hi(d)) continue;
      if (outer.box.lo(d) == box.lo(d) && outer.box.hi(d) == box.hi(d)) {
        continue;  // exact on this axis too: that is a tier-1 entry
      }
      std::vector<SlabCandidate> complement;
      for (const auto& [key, entry] : entries_) {
        if (!EqualExceptAxis(entry.box, box, d)) continue;
        const int64_t lo = entry.box.lo(d);
        const int64_t hi = entry.box.hi(d);
        const bool left = lo >= outer.box.lo(d) &&
                          hi < static_cast<int64_t>(box.lo(d));
        const bool right = lo > static_cast<int64_t>(box.hi(d)) &&
                           hi <= outer.box.hi(d);
        if (left || right) {
          complement.push_back({lo, hi, &key, entry.subset->tids.size()});
        }
      }
      std::vector<const SlabCandidate*> chosen;
      bool covered = true;
      if (outer.box.lo(d) < box.lo(d)) {
        covered = GreedyCover(outer.box.lo(d),
                              static_cast<int64_t>(box.lo(d)) - 1, complement,
                              &chosen);
      }
      if (covered && outer.box.hi(d) > box.hi(d)) {
        covered = GreedyCover(static_cast<int64_t>(box.hi(d)) + 1,
                              outer.box.hi(d), complement, &chosen);
      }
      if (!covered) continue;
      ComposePlan plan;
      plan.shape = ComposePlan::Shape::kDifference;
      plan.sources.push_back(outer_key);
      double runs = static_cast<double>(outer.subset->tids.size());
      for (const SlabCandidate* slab : chosen) {
        plan.sources.push_back(*slab->key);
        runs += static_cast<double>(slab->tids);
      }
      plan.summed_runs = runs;
      plan.cost = runs;
      consider(std::move(plan));
    }
  }

  // Pair intersection: two containing entries whose intersection box
  // narrows more axes than either alone — AND the tid lists, then re-test
  // only the attributes still wider than box. A sorted-merge alternative
  // to the per-record single-source filter.
  {
    std::vector<const std::string*> containing;
    for (const auto& [key, entry] : entries_) {
      if (entry.box.Contains(box)) containing.push_back(&key);
    }
    for (size_t i = 0; i + 1 < containing.size(); ++i) {
      for (size_t j = i + 1; j < containing.size(); ++j) {
        const Entry& a = entries_.at(*containing[i]);
        const Entry& b = entries_.at(*containing[j]);
        const Rect meet = IntersectionBox(a.box, b.box);
        const size_t residual = NarrowedAttrs(box, meet).size();
        const double runs =
            static_cast<double>(a.subset->tids.size()) +
            static_cast<double>(b.subset->tids.size()) +
            static_cast<double>(
                std::min(a.subset->tids.size(), b.subset->tids.size())) *
                static_cast<double>(residual + 1);
        ComposePlan plan;
        plan.shape = ComposePlan::Shape::kIntersect;
        plan.sources = {*containing[i], *containing[j]};
        plan.residual_outer = meet;
        plan.delta_attrs = static_cast<uint32_t>(residual);
        plan.summed_runs = runs;
        plan.cost = runs;
        consider(std::move(plan));
      }
    }
  }

  if (multi.shape != ComposePlan::Shape::kNone) return multi;
  return best;  // the filter, or an empty kNone plan
}

std::vector<Tid> QueryCache::ExecuteComposeLocked(const ComposePlan& plan,
                                                  const Rect& box,
                                                  ExecBackend backend,
                                                  ThreadPool* pool) const {
  const Dataset& dataset = index_->dataset();
  const Schema& schema = dataset.schema();
  const uint32_t m = dataset.num_records();
  const bool bitmap_route =
      backend == ExecBackend::kBitmap && !index_->vertical().empty();
  auto tids_of = [&](const std::string& key) -> const std::vector<Tid>& {
    return entries_.at(key).subset->tids;
  };

  switch (plan.shape) {
    case ComposePlan::Shape::kUnion: {
      if (bitmap_route) {
        Bitmap acc(m);
        for (const std::string& key : plan.sources) {
          acc.OrWith(Bitmap::FromTids(tids_of(key), m));
        }
        return acc.ToTids();
      }
      std::vector<Tid> out = tids_of(plan.sources.front());
      std::vector<Tid> merged;
      for (size_t i = 1; i < plan.sources.size(); ++i) {
        const std::vector<Tid>& next = tids_of(plan.sources[i]);
        merged.clear();
        merged.reserve(out.size() + next.size());
        std::set_union(out.begin(), out.end(), next.begin(), next.end(),
                       std::back_inserter(merged));
        out.swap(merged);
      }
      return out;
    }
    case ComposePlan::Shape::kDifference: {
      if (bitmap_route) {
        Bitmap acc = Bitmap::FromTids(tids_of(plan.sources.front()), m);
        for (size_t i = 1; i < plan.sources.size(); ++i) {
          acc.AndNotWith(Bitmap::FromTids(tids_of(plan.sources[i]), m));
        }
        return acc.ToTids();
      }
      std::vector<Tid> strip;
      std::vector<Tid> merged;
      for (size_t i = 1; i < plan.sources.size(); ++i) {
        const std::vector<Tid>& next = tids_of(plan.sources[i]);
        merged.clear();
        merged.reserve(strip.size() + next.size());
        std::set_union(strip.begin(), strip.end(), next.begin(), next.end(),
                       std::back_inserter(merged));
        strip.swap(merged);
      }
      const std::vector<Tid>& outer = tids_of(plan.sources.front());
      std::vector<Tid> out;
      out.reserve(outer.size());
      std::set_difference(outer.begin(), outer.end(), strip.begin(),
                          strip.end(), std::back_inserter(out));
      return out;
    }
    case ComposePlan::Shape::kIntersect: {
      const std::vector<Tid>& a = tids_of(plan.sources[0]);
      const std::vector<Tid>& b = tids_of(plan.sources[1]);
      if (bitmap_route) {
        Bitmap ba = Bitmap::FromTids(a, m);
        Bitmap bb = Bitmap::FromTids(b, m);
        Bitmap acc(m);
        Bitmap::AndInto(ba, bb, &acc);
        if (plan.delta_attrs > 0) {
          index_->vertical().NarrowDq(schema, box, plan.residual_outer, &acc,
                                      pool);
        }
        return acc.ToTids();
      }
      std::vector<Tid> meet;
      meet.reserve(std::min(a.size(), b.size()));
      std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                            std::back_inserter(meet));
      if (plan.delta_attrs == 0) return meet;
      const std::vector<AttrId> narrowed =
          NarrowedAttrs(box, plan.residual_outer);
      std::vector<Tid> out;
      out.reserve(meet.size());
      for (Tid t : meet) {
        bool inside = true;
        for (AttrId attr : narrowed) {
          ValueId v = dataset.Value(t, attr);
          if (v < box.lo(attr) || v > box.hi(attr)) {
            inside = false;
            break;
          }
        }
        if (inside) out.push_back(t);
      }
      return out;
    }
    case ComposePlan::Shape::kNone:
    case ComposePlan::Shape::kFilter:
      break;  // not a multi-source composition
  }
  return {};
}

CacheHint QueryCache::Probe(const Rect& box) const {
  CacheHint hint;
  std::string key = CanonicalBoxKey(box);
  std::lock_guard<std::mutex> lock(mutex_);
  auto exact = entries_.find(key);
  if (exact != entries_.end()) {
    hint.tier = CacheTier::kExact;
    hint.cached_size = static_cast<double>(exact->second.subset->tids.size());
    return hint;
  }
  const ComposePlan plan = PlanComposeLocked(box);
  if (plan.shape == ComposePlan::Shape::kFilter) {
    hint.tier = CacheTier::kContainment;
    hint.cached_size = plan.summed_runs;
    hint.delta_attrs = plan.delta_attrs;
  } else if (plan.shape != ComposePlan::Shape::kNone) {
    hint.tier = CacheTier::kCompose;
    hint.cached_size = plan.summed_runs;
    hint.delta_attrs = plan.delta_attrs;
    hint.compose_sources = static_cast<uint32_t>(plan.sources.size());
  }
  return hint;
}

QueryCache::Lease QueryCache::Acquire(const Rect& box, ExecBackend backend,
                                      ThreadPool* pool,
                                      uint64_t* record_checks) {
  const Dataset& dataset = index_->dataset();
  const Schema& schema = dataset.schema();

  // The cold semantic price, regardless of which tier actually serves the
  // subset — the same convention that keeps the bitmap backend's counters
  // byte-identical to the scalar scan's.
  if (record_checks != nullptr && BoxIsConstrained(schema, box)) {
    *record_checks += dataset.num_records();
  }

  Lease lease;
  std::string key = CanonicalBoxKey(box);
  std::lock_guard<std::mutex> lock(mutex_);
  sketch_.Record(HashKey(key));

  auto exact = entries_.find(key);
  if (exact != entries_.end()) {
    ++counters_.hits_exact;
    ++exact->second.hits;
    PromoteLocked(&exact->second);
    lease.subset = *exact->second.subset;
    lease.tier = CacheTier::kExact;
    return lease;
  }

  const ComposePlan plan = PlanComposeLocked(box);
  if (plan.shape == ComposePlan::Shape::kFilter) {
    ++counters_.hits_containment;
    const Entry& source = entries_.at(plan.sources.front());
    const FocalSubset& src = *source.subset;
    const std::vector<AttrId> narrowed = NarrowedAttrs(box, src.box);
    FocalSubset derived;
    derived.box = box;
    const bool bitmap_route =
        backend == ExecBackend::kBitmap && !index_->vertical().empty();
    if (bitmap_route) {
      // AND the cached subset's bitmap with one range-OR per narrowed
      // attribute — the incremental form of MaterializeDq.
      Bitmap dq = Bitmap::FromTids(src.tids, dataset.num_records());
      index_->vertical().NarrowDq(schema, box, src.box, &dq, pool);
      derived.tids = dq.ToTids();
    } else {
      // Re-test only the narrowed attributes over the cached tid list.
      derived.tids.reserve(src.tids.size());
      for (Tid t : src.tids) {
        bool inside = true;
        for (AttrId a : narrowed) {
          ValueId v = dataset.Value(t, a);
          if (v < box.lo(a) || v > box.hi(a)) {
            inside = false;
            break;
          }
        }
        if (inside) derived.tids.push_back(t);
      }
    }
    NoteDerivationSourceLocked(plan.sources.front());
    lease.subset = derived;
    lease.tier = CacheTier::kContainment;
    InsertLocked(std::move(key), box,
                 std::make_shared<const FocalSubset>(std::move(derived)));
    return lease;
  }

  if (plan.shape != ComposePlan::Shape::kNone) {
    ++counters_.hits_compose;
    FocalSubset derived;
    derived.box = box;
    derived.tids = ExecuteComposeLocked(plan, box, backend, pool);
    for (const std::string& source : plan.sources) {
      NoteDerivationSourceLocked(source);
    }
    lease.subset = derived;
    lease.tier = CacheTier::kCompose;
    InsertLocked(std::move(key), box,
                 std::make_shared<const FocalSubset>(std::move(derived)));
    return lease;
  }

  ++counters_.misses;
  FocalSubset cold;
  if (backend == ExecBackend::kBitmap && !index_->vertical().empty()) {
    cold.box = box;
    cold.tids = index_->vertical().MaterializeDq(schema, box, pool).ToTids();
  } else {
    cold = FocalSubset::Materialize(dataset, box);
  }
  lease.subset = cold;
  lease.tier = CacheTier::kNone;
  InsertLocked(std::move(key), box,
               std::make_shared<const FocalSubset>(std::move(cold)));
  return lease;
}

std::shared_ptr<const CountMemoEntry> QueryCache::MemoLookup(
    const std::string& box_key, const std::string& constraint_key,
    uint32_t mip_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto entry = entries_.find(box_key);
  if (entry == entries_.end()) return nullptr;
  auto memo = entry->second.memo.find({constraint_key, mip_id});
  return memo != entry->second.memo.end() ? memo->second : nullptr;
}

std::shared_ptr<const ArmMemoEntry> QueryCache::ArmMemoLookup(
    const std::string& box_key, const std::string& constraint_key,
    uint32_t min_count) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto entry = entries_.find(box_key);
  if (entry == entries_.end()) return nullptr;
  auto memo = entry->second.arm_memo.find({constraint_key, min_count});
  return memo != entry->second.arm_memo.end() ? memo->second : nullptr;
}

void QueryCache::NoteMemoServed() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.hits_count_memo;
}

std::unique_ptr<CountMemoTxn> QueryCache::BeginTxn(
    const Rect& box, std::string constraint_key) const {
  return std::make_unique<CountMemoTxn>(CanonicalBoxKey(box),
                                        std::move(constraint_key));
}

void QueryCache::Commit(CountMemoTxn* txn) {
  if (txn == nullptr) return;
  std::lock_guard<std::mutex> txn_lock(txn->mutex_);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(txn->box_key_);
  if (it == entries_.end()) return;  // box evicted mid-flight: drop writes
  Entry& entry = it->second;
  for (auto& [mip_id, write] : txn->writes_) {
    const std::pair<std::string, uint32_t> memo_key{txn->constraint_key_,
                                                    mip_id};
    auto existing = entry.memo.find(memo_key);
    if (existing != entry.memo.end()) {
      // Only an upgrade from full-count-only to a full table is worth a
      // republish; counts themselves are deterministic and identical.
      if (!existing->second->superset_counts.empty() ||
          write.superset_counts.empty()) {
        continue;
      }
      const size_t old_bytes =
          MemoBytes(txn->constraint_key_, *existing->second);
      entry.bytes -= old_bytes;
      counters_.bytes -= old_bytes;
      entry.memo.erase(existing);
    }
    auto published = std::make_shared<const CountMemoEntry>(std::move(write));
    const size_t new_bytes = MemoBytes(txn->constraint_key_, *published);
    entry.memo.emplace(memo_key, std::move(published));
    entry.bytes += new_bytes;
    counters_.bytes += new_bytes;
  }
  for (auto& [min_count, write] : txn->arm_writes_) {
    const std::pair<std::string, uint32_t> arm_key{txn->constraint_key_,
                                                   min_count};
    // First publication wins: ARM results are deterministic per triple, so
    // a second run can only produce the identical record.
    if (entry.arm_memo.count(arm_key) > 0) continue;
    auto published = std::make_shared<const ArmMemoEntry>(std::move(write));
    const size_t new_bytes = ArmMemoBytes(txn->constraint_key_, *published);
    entry.arm_memo.emplace(arm_key, std::move(published));
    entry.bytes += new_bytes;
    counters_.bytes += new_bytes;
  }
  txn->writes_.clear();
  txn->arm_writes_.clear();
  entry.last_used = ++clock_;
  EvictOverBudgetLocked(nullptr);
}

CacheTelemetry QueryCache::telemetry() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

void QueryCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  counters_.bytes = 0;
  counters_.entries = 0;
}

std::vector<CacheEntrySnapshot> QueryCache::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const Entry*> ordered;
  ordered.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) ordered.push_back(&entry);
  std::sort(ordered.begin(), ordered.end(),
            [](const Entry* a, const Entry* b) {
              return a->last_used < b->last_used;
            });
  std::vector<CacheEntrySnapshot> out;
  out.reserve(ordered.size());
  for (const Entry* entry : ordered) {
    CacheEntrySnapshot snap;
    snap.box = entry->box;
    snap.subset = entry->subset;
    snap.is_protected = entry->is_protected;
    snap.hits = entry->hits;
    snap.derivations = entry->derivations;
    snap.memos.assign(entry->memo.begin(), entry->memo.end());
    snap.arm_memos.assign(entry->arm_memo.begin(), entry->arm_memo.end());
    out.push_back(std::move(snap));
  }
  return out;
}

void QueryCache::Restore(std::vector<CacheEntrySnapshot> entries) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  counters_.bytes = 0;
  counters_.entries = 0;
  for (CacheEntrySnapshot& snap : entries) {
    if (snap.subset == nullptr) continue;
    Entry entry;
    entry.box = snap.box;
    entry.subset = std::move(snap.subset);
    entry.is_protected = snap.is_protected;
    entry.hits = snap.hits;
    entry.derivations = snap.derivations;
    entry.bytes = SubsetBytes(*entry.subset);
    for (auto& [memo_key, memo] : snap.memos) {
      entry.bytes += MemoBytes(memo_key.first, *memo);
      entry.memo.emplace(memo_key, std::move(memo));
    }
    for (auto& [arm_key, memo] : snap.arm_memos) {
      entry.bytes += ArmMemoBytes(arm_key.first, *memo);
      entry.arm_memo.emplace(arm_key, std::move(memo));
    }
    entry.last_used = ++clock_;
    counters_.bytes += entry.bytes;
    ++counters_.entries;
    entries_[CanonicalBoxKey(entry.box)] = std::move(entry);
  }
  EvictOverBudgetLocked(nullptr);
}

void QueryCache::NoteDerivationSourceLocked(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  ++it->second.derivations;
  PromoteLocked(&it->second);
}

void QueryCache::PromoteLocked(Entry* entry) {
  entry->last_used = ++clock_;
  if (entry->is_protected) return;
  entry->is_protected = true;
  // Protected segment caps at ~80% of the budget so probation always has
  // room to establish new entries; over the cap, demote protected LRUs
  // back to probation (the just-promoted entry last).
  const size_t cap = options_.byte_budget - options_.byte_budget / 5;
  while (ProtectedBytesLocked() > cap) {
    Entry* lru = nullptr;
    for (auto& [key, candidate] : entries_) {
      if (!candidate.is_protected || &candidate == entry) continue;
      if (lru == nullptr || candidate.last_used < lru->last_used) {
        lru = &candidate;
      }
    }
    if (lru == nullptr) {
      entry->is_protected = false;
      break;
    }
    lru->is_protected = false;
  }
}

size_t QueryCache::ProtectedBytesLocked() const {
  size_t bytes = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry.is_protected) bytes += entry.bytes;
  }
  return bytes;
}

void QueryCache::InsertLocked(std::string key, const Rect& box,
                              std::shared_ptr<const FocalSubset> subset) {
  Entry& entry = entries_[key];
  if (entry.subset != nullptr) {
    // Refresh (possible only via concurrent standalone callers): replace
    // the subset, keep the memo and segment/accounting state.
    counters_.bytes -= SubsetBytes(*entry.subset);
  } else {
    entry.box = box;
    ++counters_.entries;
  }
  counters_.bytes += SubsetBytes(*subset);
  entry.bytes = SubsetBytes(*subset);
  for (const auto& [memo_key, memo] : entry.memo) {
    entry.bytes += MemoBytes(memo_key.first, *memo);
  }
  entry.subset = std::move(subset);
  entry.last_used = ++clock_;
  EvictOverBudgetLocked(&key);
}

void QueryCache::EvictOverBudgetLocked(const std::string* incoming_key) {
  auto remove = [&](std::map<std::string, Entry>::iterator victim) {
    counters_.bytes -= victim->second.bytes;
    --counters_.entries;
    entries_.erase(victim);
  };
  while (counters_.bytes > options_.byte_budget && !entries_.empty()) {
    // Victim: probation LRU first (2Q), protected LRU only when probation
    // is empty, the incoming entry itself only when nothing else remains.
    auto victim = entries_.end();
    for (bool protected_pass : {false, true}) {
      for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->second.is_protected != protected_pass) continue;
        if (incoming_key != nullptr && it->first == *incoming_key) continue;
        if (victim == entries_.end() ||
            it->second.last_used < victim->second.last_used) {
          victim = it;
        }
      }
      if (victim != entries_.end()) break;
    }
    if (victim == entries_.end()) {
      // Only the incoming entry is resident and it alone busts the budget.
      victim = entries_.find(*incoming_key);
      incoming_key = nullptr;
      ++counters_.evictions;
      remove(victim);
      continue;
    }
    if (incoming_key != nullptr) {
      // TinyLFU admission gate: keep the victim when its request frequency
      // strictly exceeds the incoming box's — a one-off sweep entry loses
      // to an established hot one. Ties admit the newcomer (plain LRU).
      auto incoming = entries_.find(*incoming_key);
      if (incoming != entries_.end() &&
          sketch_.Estimate(HashKey(victim->first)) >
              sketch_.Estimate(HashKey(*incoming_key))) {
        ++counters_.admission_rejects;
        remove(incoming);
        incoming_key = nullptr;
        continue;
      }
    }
    ++counters_.evictions;
    remove(victim);
  }
}

}  // namespace colarm
