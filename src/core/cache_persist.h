#ifndef COLARM_CORE_CACHE_PERSIST_H_
#define COLARM_CORE_CACHE_PERSIST_H_

#include <string>

#include "core/query_cache.h"

namespace colarm {

/// Session-cache persistence (format v4) — the warm-restart half of the
/// POQM story: hot focal subsets and their upgrade-only count memos are
/// saved next to the MIP-index cache so a restarted `colarm_server` serves
/// drill-down traffic from the page cache instead of re-paying relation
/// scans.
///
/// Layout: a header (magic "CLRM", version 4, the owning engine's
/// IndexFingerprint, entry count), then one self-checksummed section per
/// entry — segment/accounting metadata, the box bounds, a tid payload
/// padded to a 64-byte file offset (so an mmap'ed load hands the engine
/// cache-line-aligned runs straight from the page cache), and the entry's
/// memo records — and a trailing whole-file FNV-1a checksum that must sit
/// exactly at EOF. Versioning is disjoint from the MIP-index format (v3),
/// so the two files can never be confused for one another.
///
/// The load path follows the serialize v3 hardening discipline: every
/// field is validated against the index before any allocation or use,
/// truncations and bit flips are rejected via the checksums, and *any*
/// failure — including an index-fingerprint mismatch after a rebuild —
/// returns a Status and leaves the cache untouched, so callers degrade to
/// a cold cache, never to undefined behavior. The TinyLFU frequency
/// sketch is deliberately not persisted (admission history restarts cold;
/// residency does not).
Status SaveQueryCache(const QueryCache& cache, const MipIndex& index,
                      const std::string& path);

/// Restores `cache` from `path` (replacing its residency, keeping its
/// monotonic telemetry totals). Reads via mmap when the platform allows,
/// buffered I/O otherwise — the parse and its validation are identical.
Status LoadQueryCache(const MipIndex& index, const std::string& path,
                      QueryCache* cache);

}  // namespace colarm

#endif  // COLARM_CORE_CACHE_PERSIST_H_
