#include "core/optimizer.h"

namespace colarm {

OptimizerDecision Optimizer::Choose(const LocalizedQuery& query,
                                    const CacheHint* hint) const {
  OptimizerDecision decision;
  if (hint != nullptr) decision.cache = *hint;
  if (!query.constraints.Empty()) {
    decision.constraints =
        query.constraints.ToString(model_.cardinality().schema());
  }
  decision.estimates = model_.EstimateAll(query, hint);
  double best = decision.estimates[0].total;
  decision.chosen = decision.estimates[0].plan;
  for (const PlanCostEstimate& est : decision.estimates) {
    if (est.total < best) {
      best = est.total;
      decision.chosen = est.plan;
    }
  }
  return decision;
}

}  // namespace colarm
