#include "core/explain.h"

#include <algorithm>

#include "common/string_util.h"

namespace colarm {

std::string FormatDecision(const OptimizerDecision& decision) {
  std::string out =
      "plan      est-total-ms   search-ms  eliminate-ms  verify-ms   mine-ms\n";
  for (const PlanCostEstimate& est : decision.estimates) {
    out += StrFormat("%-9s %12.4f %11.4f %13.4f %10.4f %9.4f%s\n",
                     PlanKindName(est.plan), est.total / 1e6, est.search / 1e6,
                     est.eliminate / 1e6, est.verify / 1e6, est.mine / 1e6,
                     est.plan == decision.chosen ? "   <== chosen" : "");
  }
  if (!decision.constraints.empty()) {
    std::string clauses = decision.constraints;
    if (clauses.rfind(" AND ", 0) == 0) clauses.erase(0, 5);
    out += "constraints pushed into plan: " + clauses + "\n";
  }
  if (decision.cache.tier != CacheTier::kNone) {
    out += StrFormat(
        "select served by session cache: %s of a %.0f-record cached subset",
        CacheTierName(decision.cache.tier), decision.cache.cached_size);
    if (decision.cache.tier == CacheTier::kContainment) {
      out += StrFormat(" (%u narrowed attribute(s))",
                       decision.cache.delta_attrs);
    }
    out += "\n";
  }
  return out;
}

std::string FormatPlanSummaryTable() {
  return
      "Mining Plan | Optimization                                        | "
      "Query Cost\n"
      "------------+-----------------------------------------------------+----"
      "-----------------------------\n"
      "S-E-V       | Basic SEARCH+ELIMINATE+VERIFY plan                  | "
      "COST(S) + COST(E) + COST(V)\n"
      "S-VS        | Selection push-up                                   | "
      "COST(S) + COST(VS)\n"
      "SS-E-V      | Supported R-tree filter                             | "
      "COST(SS) + COST(E) + COST(V)\n"
      "SS-VS       | Supported filter + selection push-up                | "
      "COST(SS) + COST(VS)\n"
      "SS-E-U-V    | Supported filter + containment/overlap distinction  | "
      "COST(SS) + COST(E) + COST(U) + COST(V)\n"
      "ARM         | Traditional rule mining over focal subset           | "
      "COST(sel) + COST(ARM)\n";
}

std::string FormatRules(const Schema& schema, const RuleSet& rules,
                        size_t limit) {
  std::vector<const Rule*> ordered;
  ordered.reserve(rules.rules.size());
  for (const Rule& rule : rules.rules) ordered.push_back(&rule);
  std::sort(ordered.begin(), ordered.end(), [](const Rule* a, const Rule* b) {
    if (a->support() != b->support()) return a->support() > b->support();
    return a->confidence() > b->confidence();
  });
  if (limit == 0) limit = ordered.size();
  std::string out;
  for (size_t i = 0; i < std::min(limit, ordered.size()); ++i) {
    out += "  " + ordered[i]->ToString(schema) + "\n";
  }
  if (ordered.size() > limit) {
    out += StrFormat("  ... and %zu more rules\n", ordered.size() - limit);
  }
  return out;
}

std::string FormatQueryResult(const Schema& schema,
                              const QueryResult& result) {
  std::string out = StrFormat(
      "%zu localized rule(s) via plan %s%s in %.3f ms "
      "(|DQ|=%u, candidates=%llu, qualified=%llu)\n",
      result.rules.rules.size(), PlanKindName(result.plan_used),
      result.chosen_by_optimizer ? " (optimizer)" : " (forced)",
      result.stats.total_ms, result.stats.subset_size,
      static_cast<unsigned long long>(result.stats.candidates_search),
      static_cast<unsigned long long>(result.stats.candidates_qualified));
  if (!result.decision.constraints.empty()) {
    std::string clauses = result.decision.constraints;
    if (clauses.rfind(" AND ", 0) == 0) clauses.erase(0, 5);
    out += "  constraints: " + clauses + "\n";
  }
  const CacheTelemetry& c = result.cache;
  if (c.hits_exact + c.hits_containment + c.hits_compose + c.hits_count_memo +
          c.misses >
      0) {
    out += StrFormat(
        "  session cache: exact=%llu containment=%llu compose=%llu memo=%llu "
        "misses=%llu resident=%llu bytes / %llu entries\n",
        static_cast<unsigned long long>(c.hits_exact),
        static_cast<unsigned long long>(c.hits_containment),
        static_cast<unsigned long long>(c.hits_compose),
        static_cast<unsigned long long>(c.hits_count_memo),
        static_cast<unsigned long long>(c.misses),
        static_cast<unsigned long long>(c.bytes),
        static_cast<unsigned long long>(c.entries));
  }
  out += FormatRules(schema, result.rules, 10);
  return out;
}

}  // namespace colarm
