#include "core/engine.h"

#include "mip/serialize.h"

namespace colarm {

namespace {

// Loads the cached index when compatible with the requested options;
// otherwise mines it (and refreshes the cache, best effort). Compatibility
// compares the *entire* options struct: every field shapes the built index
// (serialize.cc round-trips them all), so a partial comparison would
// silently serve an index built with different parameters.
Result<MipIndex> BuildOrLoadIndex(const Dataset& dataset,
                                  const EngineOptions& options,
                                  ThreadPool* pool) {
  if (!options.index_cache_path.empty()) {
    Result<MipIndex> loaded = LoadMipIndex(dataset, options.index_cache_path);
    if (loaded.ok() && loaded->options() == options.index) {
      return loaded;
    }
  }
  Result<MipIndex> built = MipIndex::Build(dataset, options.index, pool);
  if (built.ok() && !options.index_cache_path.empty()) {
    // A failed cache write must not fail the build.
    (void)SaveMipIndex(built.value(), options.index_cache_path);
  }
  return built;
}

}  // namespace

Result<std::unique_ptr<Engine>> Engine::Build(const Dataset& dataset,
                                              const EngineOptions& options) {
  auto engine = std::unique_ptr<Engine>(new Engine());
  engine->options_ = options;
  const unsigned threads =
      options.num_threads == 0 ? ThreadPool::DefaultThreads()
                               : options.num_threads;
  if (threads > 1) engine->pool_ = std::make_unique<ThreadPool>(threads);

  Result<MipIndex> index =
      BuildOrLoadIndex(dataset, options, engine->pool_.get());
  if (!index.ok()) return index.status();
  engine->index_ = std::make_unique<MipIndex>(std::move(index.value()));

  CostConstants constants =
      options.calibrate ? Calibrate(dataset) : options.cost_constants;
  engine->cardinality_ = std::make_unique<CardinalityEstimator>(
      dataset.schema(), engine->index_->histograms(), dataset.num_records());
  engine->optimizer_ = std::make_unique<Optimizer>(
      CostModel(engine->index_->stats(), *engine->cardinality_, constants,
                options.backend));
  return engine;
}

Result<QueryResult> Engine::Execute(const LocalizedQuery& query) const {
  COLARM_RETURN_IF_ERROR(query.Validate(index_->dataset().schema()));
  OptimizerDecision decision = optimizer_->Choose(query);
  PlanExecOptions exec;
  exec.rulegen = options_.rulegen;
  exec.arm_miner = options_.arm_miner;
  exec.pool = pool_.get();
  exec.backend = options_.backend;
  Result<PlanResult> plan = ExecutePlan(decision.chosen, *index_, query, exec);
  if (!plan.ok()) return plan.status();
  QueryResult result;
  result.rules = std::move(plan->rules);
  result.plan_used = decision.chosen;
  result.chosen_by_optimizer = true;
  result.stats = plan->stats;
  result.decision = decision;
  return result;
}

Result<QueryResult> Engine::ExecuteWithPlan(const LocalizedQuery& query,
                                            PlanKind kind) const {
  COLARM_RETURN_IF_ERROR(query.Validate(index_->dataset().schema()));
  PlanExecOptions exec;
  exec.rulegen = options_.rulegen;
  exec.arm_miner = options_.arm_miner;
  exec.pool = pool_.get();
  exec.backend = options_.backend;
  Result<PlanResult> plan = ExecutePlan(kind, *index_, query, exec);
  if (!plan.ok()) return plan.status();
  QueryResult result;
  result.rules = std::move(plan->rules);
  result.plan_used = kind;
  result.chosen_by_optimizer = false;
  result.stats = plan->stats;
  result.decision = optimizer_->Choose(query);
  return result;
}

Result<OptimizerDecision> Engine::Explain(const LocalizedQuery& query) const {
  COLARM_RETURN_IF_ERROR(query.Validate(index_->dataset().schema()));
  return optimizer_->Choose(query);
}

}  // namespace colarm
