#include "core/engine.h"

#include "mip/serialize.h"

namespace colarm {

namespace {

// Loads the cached index when compatible with the requested options;
// otherwise mines it (and refreshes the cache, best effort). Compatibility
// compares the *entire* options struct: every field shapes the built index
// (serialize.cc round-trips them all), so a partial comparison would
// silently serve an index built with different parameters.
Result<MipIndex> BuildOrLoadIndex(const Dataset& dataset,
                                  const EngineOptions& options,
                                  ThreadPool* pool) {
  if (!options.index_cache_path.empty()) {
    Result<MipIndex> loaded = LoadMipIndex(dataset, options.index_cache_path);
    if (loaded.ok() && loaded->options() == options.index) {
      return loaded;
    }
  }
  Result<MipIndex> built = MipIndex::Build(dataset, options.index, pool);
  if (built.ok() && !options.index_cache_path.empty()) {
    // A failed cache write must not fail the build.
    (void)SaveMipIndex(built.value(), options.index_cache_path);
  }
  return built;
}

}  // namespace

Result<std::unique_ptr<Engine>> Engine::Build(const Dataset& dataset,
                                              const EngineOptions& options) {
  auto engine = std::unique_ptr<Engine>(new Engine());
  engine->options_ = options;
  const unsigned threads =
      options.num_threads == 0 ? ThreadPool::DefaultThreads()
                               : options.num_threads;
  if (threads > 1) engine->pool_ = std::make_unique<ThreadPool>(threads);

  Result<MipIndex> index =
      BuildOrLoadIndex(dataset, options, engine->pool_.get());
  if (!index.ok()) return index.status();
  engine->index_ = std::make_unique<MipIndex>(std::move(index.value()));

  CostConstants constants =
      options.calibrate ? Calibrate(dataset) : options.cost_constants;
  engine->cardinality_ = std::make_unique<CardinalityEstimator>(
      dataset.schema(), engine->index_->histograms(), dataset.num_records());
  engine->optimizer_ = std::make_unique<Optimizer>(
      CostModel(engine->index_->stats(), *engine->cardinality_, constants,
                options.backend));
  if (options.cache.enabled && options.cache.byte_budget > 0) {
    engine->cache_ =
        std::make_unique<QueryCache>(*engine->index_, options.cache);
  }
  return engine;
}

Result<QueryResult> Engine::Run(const LocalizedQuery& query, PlanKind forced,
                                bool use_optimizer,
                                const SessionContext& session) const {
  COLARM_RETURN_IF_ERROR(query.Validate(index_->dataset().schema()));

  // A session may carry its own cache (per-tenant serving); otherwise the
  // engine-owned one (possibly null = caching off) applies.
  QueryCache* cache = session.cache != nullptr ? session.cache : cache_.get();

  // Probe before planning so the decision records what the SELECT stage
  // will actually do; the memo transaction buffers this query's count
  // discoveries and commits them after execution (standalone queries are
  // the sequential points the cache's determinism contract requires).
  CacheHint hint;
  CacheTelemetry before;
  std::unique_ptr<CountMemoTxn> txn;
  if (cache != nullptr) {
    const Rect box = query.ToRect(index_->dataset().schema());
    hint = cache->Probe(box);
    before = cache->telemetry();
    if (cache->options().count_memo) {
      txn = cache->BeginTxn(box, query.constraints.CacheKey());
    }
  }

  OptimizerDecision decision =
      optimizer_->Choose(query, cache != nullptr ? &hint : nullptr);
  const PlanKind kind = use_optimizer ? decision.chosen : forced;

  PlanExecOptions exec;
  exec.rulegen = options_.rulegen;
  exec.arm_miner = options_.arm_miner;
  exec.pool = pool_.get();
  exec.backend = options_.backend;
  exec.cache = cache;
  exec.memo_txn = txn.get();
  exec.cancel = session.cancel;
  Result<PlanResult> plan = ExecutePlan(kind, *index_, query, exec);
  if (!plan.ok()) return plan.status();
  if (txn != nullptr) cache->Commit(txn.get());

  QueryResult result;
  result.rules = std::move(plan->rules);
  result.plan_used = kind;
  result.chosen_by_optimizer = use_optimizer;
  result.stats = plan->stats;
  result.decision = decision;
  if (cache != nullptr) {
    const CacheTelemetry after = cache->telemetry();
    result.cache.hits_exact = after.hits_exact - before.hits_exact;
    result.cache.hits_containment =
        after.hits_containment - before.hits_containment;
    result.cache.hits_count_memo =
        after.hits_count_memo - before.hits_count_memo;
    result.cache.hits_compose = after.hits_compose - before.hits_compose;
    result.cache.misses = after.misses - before.misses;
    result.cache.evictions = after.evictions - before.evictions;
    result.cache.admission_rejects =
        after.admission_rejects - before.admission_rejects;
    result.cache.bytes = after.bytes;
    result.cache.entries = after.entries;
  }
  return result;
}

Result<QueryResult> Engine::Execute(const LocalizedQuery& query) const {
  return Run(query, PlanKind::kSEV, /*use_optimizer=*/true);
}

Result<QueryResult> Engine::Execute(const LocalizedQuery& query,
                                    const SessionContext& session) const {
  return Run(query, PlanKind::kSEV, /*use_optimizer=*/true, session);
}

Result<QueryResult> Engine::ExecuteWithPlan(const LocalizedQuery& query,
                                            PlanKind kind) const {
  return Run(query, kind, /*use_optimizer=*/false);
}

Result<OptimizerDecision> Engine::Explain(const LocalizedQuery& query) const {
  return Explain(query, SessionContext{});
}

Result<OptimizerDecision> Engine::Explain(const LocalizedQuery& query,
                                          const SessionContext& session) const {
  COLARM_RETURN_IF_ERROR(query.Validate(index_->dataset().schema()));
  QueryCache* cache = session.cache != nullptr ? session.cache : cache_.get();
  if (cache != nullptr) {
    CacheHint hint = cache->Probe(query.ToRect(index_->dataset().schema()));
    return optimizer_->Choose(query, &hint);
  }
  return optimizer_->Choose(query);
}

}  // namespace colarm
