#include "core/engine.h"

#include "mip/serialize.h"

namespace colarm {

namespace {

// Loads the cached index when compatible with the requested options;
// otherwise mines it (and refreshes the cache, best effort).
Result<MipIndex> BuildOrLoadIndex(const Dataset& dataset,
                                  const EngineOptions& options) {
  if (!options.index_cache_path.empty()) {
    Result<MipIndex> loaded = LoadMipIndex(dataset, options.index_cache_path);
    if (loaded.ok() &&
        loaded->options().primary_support == options.index.primary_support &&
        loaded->options().rtree.max_entries ==
            options.index.rtree.max_entries) {
      return loaded;
    }
  }
  Result<MipIndex> built = MipIndex::Build(dataset, options.index);
  if (built.ok() && !options.index_cache_path.empty()) {
    // A failed cache write must not fail the build.
    (void)SaveMipIndex(built.value(), options.index_cache_path);
  }
  return built;
}

}  // namespace

Result<std::unique_ptr<Engine>> Engine::Build(const Dataset& dataset,
                                              const EngineOptions& options) {
  Result<MipIndex> index = BuildOrLoadIndex(dataset, options);
  if (!index.ok()) return index.status();

  auto engine = std::unique_ptr<Engine>(new Engine());
  engine->options_ = options;
  engine->index_ = std::make_unique<MipIndex>(std::move(index.value()));

  CostConstants constants =
      options.calibrate ? Calibrate(dataset) : options.cost_constants;
  engine->cardinality_ = std::make_unique<CardinalityEstimator>(
      dataset.schema(), engine->index_->histograms(), dataset.num_records());
  engine->optimizer_ = std::make_unique<Optimizer>(
      CostModel(engine->index_->stats(), *engine->cardinality_, constants));
  return engine;
}

Result<QueryResult> Engine::Execute(const LocalizedQuery& query) const {
  COLARM_RETURN_IF_ERROR(query.Validate(index_->dataset().schema()));
  OptimizerDecision decision = optimizer_->Choose(query);
  Result<PlanResult> plan =
      ExecutePlan(decision.chosen, *index_, query, options_.rulegen,
                  /*shared_subset=*/nullptr, options_.arm_miner);
  if (!plan.ok()) return plan.status();
  QueryResult result;
  result.rules = std::move(plan->rules);
  result.plan_used = decision.chosen;
  result.chosen_by_optimizer = true;
  result.stats = plan->stats;
  result.decision = decision;
  return result;
}

Result<QueryResult> Engine::ExecuteWithPlan(const LocalizedQuery& query,
                                            PlanKind kind) const {
  COLARM_RETURN_IF_ERROR(query.Validate(index_->dataset().schema()));
  Result<PlanResult> plan =
      ExecutePlan(kind, *index_, query, options_.rulegen,
                  /*shared_subset=*/nullptr, options_.arm_miner);
  if (!plan.ok()) return plan.status();
  QueryResult result;
  result.rules = std::move(plan->rules);
  result.plan_used = kind;
  result.chosen_by_optimizer = false;
  result.stats = plan->stats;
  result.decision = optimizer_->Choose(query);
  return result;
}

Result<OptimizerDecision> Engine::Explain(const LocalizedQuery& query) const {
  COLARM_RETURN_IF_ERROR(query.Validate(index_->dataset().schema()));
  return optimizer_->Choose(query);
}

}  // namespace colarm
