#include "core/batch.h"

#include <map>

#include "common/timer.h"

namespace colarm {

namespace {

// Order-sensitive byte key of a query (duplicate detection).
std::string QueryKey(const LocalizedQuery& query) {
  std::string key;
  auto push32 = [&key](uint32_t v) {
    key.append(reinterpret_cast<const char*>(&v), 4);
  };
  for (const RangeSelection& range : query.ranges) {
    push32(range.attr);
    push32(range.lo);
    push32(range.hi);
  }
  key.push_back('|');
  for (AttrId a : query.item_attrs) push32(a);
  key.push_back('|');
  key.append(reinterpret_cast<const char*>(&query.minsupp), sizeof(double));
  key.append(reinterpret_cast<const char*>(&query.minconf), sizeof(double));
  return key;
}

// Box key: canonical per-attribute intervals (so range order and redundant
// full-domain selections do not defeat sharing).
std::string BoxKey(const Rect& box) {
  std::string key;
  for (uint32_t d = 0; d < box.dims(); ++d) {
    ValueId lo = box.lo(d);
    ValueId hi = box.hi(d);
    key.append(reinterpret_cast<const char*>(&lo), sizeof(ValueId));
    key.append(reinterpret_cast<const char*>(&hi), sizeof(ValueId));
  }
  return key;
}

}  // namespace

Result<BatchResult> BatchExecutor::Execute(
    std::span<const LocalizedQuery> queries,
    const BatchOptions& options) const {
  Timer timer;
  BatchResult batch;
  batch.results.reserve(queries.size());

  const MipIndex& index = engine_->index();
  const Schema& schema = index.dataset().schema();
  for (const LocalizedQuery& query : queries) {
    COLARM_RETURN_IF_ERROR(query.Validate(schema));
  }

  std::map<std::string, size_t> duplicate_of;
  std::map<std::string, FocalSubset> subsets;

  for (size_t i = 0; i < queries.size(); ++i) {
    const LocalizedQuery& query = queries[i];
    if (options.reuse_duplicate_results) {
      auto [it, inserted] = duplicate_of.try_emplace(QueryKey(query), i);
      if (!inserted) {
        batch.results.push_back(batch.results[it->second]);
        ++batch.duplicates_reused;
        continue;
      }
    }

    const FocalSubset* shared = nullptr;
    if (options.share_subsets) {
      Rect box = query.ToRect(schema);
      std::string key = BoxKey(box);
      auto it = subsets.find(key);
      if (it == subsets.end()) {
        it = subsets
                 .emplace(std::move(key),
                          FocalSubset::Materialize(index.dataset(), box))
                 .first;
      } else {
        ++batch.subsets_shared;
      }
      shared = &it->second;
    }

    OptimizerDecision decision = engine_->optimizer().Choose(query);
    PlanKind kind =
        options.use_optimizer ? decision.chosen : options.forced_plan;
    Result<PlanResult> plan =
        ExecutePlan(kind, index, query, engine_->options().rulegen, shared,
                    engine_->options().arm_miner);
    if (!plan.ok()) return plan.status();

    QueryResult result;
    result.rules = std::move(plan->rules);
    result.plan_used = kind;
    result.chosen_by_optimizer = options.use_optimizer;
    result.stats = plan->stats;
    result.decision = decision;
    batch.results.push_back(std::move(result));
  }

  batch.total_ms = timer.ElapsedMillis();
  return batch;
}

}  // namespace colarm
